(* Static analysis: plan verifier (shape/dtype inference, miscompile
   snapshots), CSC-cache race detection and remedies, MiniVM scope/arity
   checking, abstract interpretation of the tier-1 encodings, and
   analyzer-driven ahead-of-time JIT warm-up. *)

open Gbtl
module Plan = Exec.Plan
module Verify = Analysis.Verify
module Races = Analysis.Races

let f64 = Dtype.FP64

let vec n x =
  Ogb.Container.of_svector (Svector.of_dense f64 (Array.make n x))

let leaf c = Ogb.Expr.of_container c

let with_arith f =
  Ogb.Context.with_ops
    [ Ogb.Context.semiring "Arithmetic"; Ogb.Context.binary "Plus" ]
    f

let expect_verify_error ~substr f =
  try
    ignore (f ());
    Alcotest.failf "expected a Verify_error mentioning %S" substr
  with Verify.Verify_error { message; _ } ->
    if not (Helpers.contains_substring message substr) then
      Alcotest.failf "diagnostic %S does not mention %S" message substr

(* -- seeded defects: each caught statically with the right message -- *)

let test_defect_ewise_dims () =
  let e = with_arith (fun () -> Ogb.Expr.add (leaf (vec 3 1.0)) (leaf (vec 4 1.0))) in
  let plan = Plan.of_expr e in
  expect_verify_error ~substr:"element-wise operation on vectors of sizes 3 and 4"
    (fun () -> Verify.check ~stage:"lower" plan)

let test_defect_mxv_dims () =
  let m =
    Ogb.Container.of_smatrix (Smatrix.of_coo f64 3 4 [ (0, 0, 1.0); (2, 3, 2.0) ])
  in
  let e = with_arith (fun () -> Ogb.Expr.matmul (leaf m) (leaf (vec 5 1.0))) in
  let plan = Plan.of_expr e in
  expect_verify_error ~substr:"mxv dimension mismatch"
    (fun () -> Verify.check ~stage:"lower" plan)

let test_defect_unknown_operator () =
  (* an operator name no dtype can instantiate: the static analogue of a
     dtype/operator clash, caught before any kernel is generated *)
  let e = with_arith (fun () -> Ogb.Expr.add (leaf (vec 4 1.0)) (leaf (vec 4 2.0))) in
  let plan = Plan.of_expr e in
  Verify.check ~stage:"lower" plan;
  let root = Plan.root plan in
  (match root.Plan.op with
  | Plan.Ewise { kind; op = _; transpose_a; transpose_b } ->
    root.Plan.op <- Plan.Ewise { kind; op = "NoSuchOp"; transpose_a; transpose_b }
  | _ -> Alcotest.fail "expected an ewise root");
  expect_verify_error ~substr:"unknown binary operator \"NoSuchOp\""
    (fun () -> Verify.check ~stage:"lower" plan)

let test_defect_miscompile_between_stages () =
  (* simulate a broken rewrite pass: if a node's inferred shape changes
     between two stages of the same plan, the snapshot comparison calls
     it a miscompile *)
  let e =
    Ogb.Expr.apply ~f:(Jit.Op_spec.Named "AdditiveInverse") (leaf (vec 4 1.0))
  in
  let plan = Plan.of_expr e in
  Verify.check ~stage:"lower" plan;
  let leaf_node =
    List.find
      (fun id ->
        match (Plan.node plan id).Plan.op with Plan.Leaf _ -> true | _ -> false)
      (Plan.topo plan)
  in
  (Plan.node plan leaf_node).Plan.op <- Plan.Leaf (vec 5 1.0);
  expect_verify_error ~substr:"miscompile"
    (fun () -> Verify.check ~stage:"sink_transpose" plan)

(* -- races: aliased concurrent CSC builds, and both remedies -- *)

let race_plan () =
  (* y = A.T@u + A.T@v: after transpose sinking both matmuls dispatch on
     A's lazily built CSC index, and the scheduler runs them
     concurrently.  The operands are filled-in 64-vectors so layout
     selection picks the pull direction (push never builds the index and
     the layout-aware analysis knows it); the plan is rewritten without
     the planner so the fixture's layouts are deterministic. *)
  let m = Smatrix.of_coo f64 64 64 [ (0, 1, 1.0); (3, 2, 2.0); (7, 5, 1.0) ] in
  let ac = Ogb.Container.of_smatrix m in
  let e =
    with_arith (fun () ->
        let a = leaf ac in
        Ogb.Expr.add
          (Ogb.Expr.matmul (Ogb.Expr.transpose a) (leaf (vec 64 1.0)))
          (Ogb.Expr.matmul (Ogb.Expr.transpose a) (leaf (vec 64 2.0))))
  in
  let plan = Plan.of_expr e in
  Exec.Rewrite.run plan;
  plan

let test_race_found () =
  let plan = race_plan () in
  (match Format_stats.with_enabled false (fun () -> Races.find plan) with
  | [] -> ()
  | _ -> Alcotest.fail "format layer disabled: no CSC build, no race");
  match Races.find ~assume_formats:true plan with
  | [ c ] ->
    (match c.Races.kind with
    | Races.Write_write -> ()
    | Races.Read_write -> Alcotest.fail "expected a write-write conflict");
    if not (Helpers.contains_substring (Races.describe c) "CSC cache") then
      Alcotest.failf "describe: %s" (Races.describe c)
  | cs -> Alcotest.failf "expected exactly one conflict, got %d" (List.length cs)

let test_race_remedy_prebuild () =
  Format_stats.with_enabled true (fun () ->
      let plan = race_plan () in
      (match Races.enforce ~strategy:Races.Prebuild plan with
      | [ _ ] -> ()
      | cs -> Alcotest.failf "expected one conflict, got %d" (List.length cs));
      Alcotest.(check int) "prebuild clears the conflict" 0
        (List.length (Races.find plan)))

let test_race_remedy_edge () =
  Format_stats.with_enabled true (fun () ->
      let plan = race_plan () in
      (match Races.enforce ~strategy:Races.Edge plan with
      | [ _ ] -> ()
      | cs -> Alcotest.failf "expected one conflict, got %d" (List.length cs));
      Alcotest.(check int) "edge serializes the pair" 0
        (List.length (Races.find plan));
      (* the extra dependency edge must not have broken verification *)
      Verify.check ~stage:"query" plan)

(* -- MiniVM static checking -- *)

let test_vm_scope_tier1_clean () =
  List.iter
    (fun (e : Analysis.Tier1.entry) ->
      match Analysis.Vm_check.check e.Analysis.Tier1.program with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "%s: unexpected finding: %s" e.Analysis.Tier1.name
          (Analysis.Vm_check.describe f))
    Analysis.Tier1.all

let test_vm_unbound_agreement () =
  (* the static diagnostic is verbatim the message the interpreter
     raises for the same defect *)
  let open Minivm.Ast in
  let program =
    [ Def ("f", [], [ Return (Var "nope") ]); ExprStmt (Call (Var "f", [])) ]
  in
  let static =
    match Analysis.Vm_check.check program with
    | [ f ] ->
      (match f.Analysis.Vm_check.what with
      | Analysis.Vm_check.Unbound -> f.Analysis.Vm_check.message
      | _ -> Alcotest.fail "expected an unbound-variable finding")
    | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)
  in
  let dynamic =
    try
      ignore (Minivm.Interp.run ~env:(Analysis.Vm_check.default_env ()) program);
      Alcotest.fail "interpreter accepted the unbound variable"
    with Minivm.Vm_error.Unbound_variable _ as e ->
      Option.get (Minivm.Vm_error.to_string e)
  in
  Alcotest.(check string) "static and dynamic diagnostics agree" dynamic static

let test_vm_arity_and_method () =
  let open Minivm.Ast in
  let program =
    [ Def ("f", [ "x" ], [ Return (Var "x") ]);
      ExprStmt (Call (Var "f", [ Const (Minivm.Value.Int 1);
                                 Const (Minivm.Value.Int 2) ]));
      ExprStmt (Method (Var "AllIndices", "frobnicate", [])) ]
  in
  let whats = List.map (fun f -> f.Analysis.Vm_check.what)
      (Analysis.Vm_check.check program) in
  Alcotest.(check bool) "arity finding" true
    (List.mem Analysis.Vm_check.Arity whats);
  Alcotest.(check bool) "unknown-method finding" true
    (List.mem Analysis.Vm_check.Unknown_method whats)

(* -- abstract interpretation of tier-1 encodings -- *)

let keys entry n =
  List.map Jit.Kernel_sig.key
    (Analysis.Tier1.signatures entry ~n)

let find_entry name = Option.get (Analysis.Tier1.find name)

let test_abstract_bfs () =
  let ks = keys (find_entry "bfs") 64 in
  Alcotest.(check int) "bfs reaches two kernels" 2 (List.length ks);
  List.iter
    (fun k ->
      Alcotest.(check bool) ("mxv: " ^ k) true
        (Helpers.contains_substring k "mxv|T:bool"))
    ks

let test_abstract_pagerank () =
  let ks = keys (find_entry "pagerank") 64 in
  let has sub = List.exists (fun k -> Helpers.contains_substring k sub) ks in
  Alcotest.(check bool) "vxm reached" true (has "vxm|T:double");
  Alcotest.(check bool) "damping apply with bound constant" true
    (has "apply_m|T:double|f:Times$bind2nd:0.84999999999999998");
  Alcotest.(check bool) "teleport apply depends on n" true
    (has "Plus$bind2nd:0.0023437500000000003");
  Alcotest.(check bool) "convergence reduce" true
    (has "reduce_v_scalar|T:double")

let test_abstract_triangle () =
  let ks = keys (find_entry "triangle") 32 in
  let has sub = List.exists (fun k -> Helpers.contains_substring k sub) ks in
  Alcotest.(check bool) "masked mxm" true (has "mxm|T:int64_t");
  Alcotest.(check bool) "mask+transpose_b flags" true
    (has "mask,transpose_b");
  Alcotest.(check bool) "scalar reduce" true (has "reduce_m_scalar|T:int64_t")

(* -- ahead-of-time warm-up: the acceptance criterion -- *)

let test_warm_zero_first_iteration_compiles () =
  let n = 16 in
  let sigs =
    Analysis.Tier1.signatures (find_entry "bfs") ~n
    @ Analysis.Tier1.signatures (find_entry "pagerank") ~n
  in
  Jit.Dispatch.clear_memory_cache ();
  List.iter
    (fun (o : Analysis.Warmup.outcome) ->
      match o.Analysis.Warmup.status with
      | Analysis.Warmup.Skipped reason ->
        Alcotest.failf "warm-up skipped %s: %s"
          (Jit.Kernel_sig.key o.Analysis.Warmup.sig_)
          reason
      | _ -> ())
    (Analysis.Warmup.warm sigs);
  let before = Jit.Jit_stats.snapshot () in
  let g =
    Graphs.Convert.matrix_of_edges f64 (Graphs.Generators.complete n)
  in
  ignore
    (Algorithms.Bfs.vm_loops
       (Ogb.Container.of_smatrix (Smatrix.cast ~into:Dtype.Bool g))
       ~src:0);
  ignore (Algorithms.Pagerank.vm_loops (Ogb.Container.of_smatrix g));
  let after = Jit.Jit_stats.snapshot () in
  Alcotest.(check int) "zero first-iteration compiles" 0
    (after.Jit.Jit_stats.compiles - before.Jit.Jit_stats.compiles);
  Alcotest.(check int) "zero first-iteration disk loads" 0
    (after.Jit.Jit_stats.disk_hits - before.Jit.Jit_stats.disk_hits)

(* -- property: accepted random DAGs stay accepted through the whole
      rewrite pipeline (the hook re-verifies after every pass) -- *)

let qcheck_verifier_preserved =
  Helpers.qtest ~count:150
    "verifier-accepted random plans stay accepted after every fusion pass"
    (QCheck.make Test_expr_random.case_gen ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves =
        Array.map
          (fun m -> Ogb.Container.of_svector (Dense_ref.svector_of_vec f64 m))
          leaf_models
      in
      Analysis.Hook.install ();
      Fun.protect ~finally:Analysis.Hook.uninstall (fun () ->
          let expr = Test_expr_random.to_expr leaves e in
          (* plan_force verifies at "lower" and after each rewrite pass
             via the hook; a regression raises Verify_error and fails
             the property *)
          let plan = Exec.plan_force expr in
          ignore (Verify.root_info ~stage:"query" plan);
          (* and the verified plan still executes end to end *)
          ignore (Exec.force expr);
          true))

let suite =
  [ Alcotest.test_case "defect: ewise dimension mismatch" `Quick
      test_defect_ewise_dims;
    Alcotest.test_case "defect: mxv dimension mismatch" `Quick
      test_defect_mxv_dims;
    Alcotest.test_case "defect: unknown operator at dtype" `Quick
      test_defect_unknown_operator;
    Alcotest.test_case "defect: shape change between stages is a miscompile"
      `Quick test_defect_miscompile_between_stages;
    Alcotest.test_case "races: concurrent CSC builds detected" `Quick
      test_race_found;
    Alcotest.test_case "races: prebuild remedy" `Quick test_race_remedy_prebuild;
    Alcotest.test_case "races: edge remedy" `Quick test_race_remedy_edge;
    Alcotest.test_case "minivm: tier-1 encodings are scope/arity clean" `Quick
      test_vm_scope_tier1_clean;
    Alcotest.test_case "minivm: static unbound matches interpreter verbatim"
      `Quick test_vm_unbound_agreement;
    Alcotest.test_case "minivm: arity and unknown-method findings" `Quick
      test_vm_arity_and_method;
    Alcotest.test_case "abstract: bfs kernel set" `Quick test_abstract_bfs;
    Alcotest.test_case "abstract: pagerank kernel set" `Quick
      test_abstract_pagerank;
    Alcotest.test_case "abstract: triangle kernel set" `Quick
      test_abstract_triangle;
    Alcotest.test_case "warm-up: zero first-iteration compiles" `Quick
      test_warm_zero_first_iteration_compiles;
    Helpers.to_alcotest qcheck_verifier_preserved;
  ]
