(* mxv / vxm / mxm against the dense reference model, across random
   semirings, masks, accumulators, replace flags and transposes. *)

open Gbtl

let f64 = Dtype.FP64

let mk_vec = Dense_ref.svector_of_vec f64
let mk_mat = Dense_ref.smatrix_of_mat f64

(* Fixed small example: the BFS frontier step of the paper's Fig. 1. *)
let test_bfs_ply () =
  (* 7-vertex graph of Fig. 1; edge list of the directed adjacency. *)
  let edges =
    [ (0, 1); (0, 3); (1, 4); (1, 6); (2, 5); (3, 0); (3, 2); (4, 5);
      (5, 2); (6, 2); (6, 3); (6, 4) ]
  in
  let a =
    Smatrix.of_coo Dtype.Bool 7 7 (List.map (fun (r, c) -> (r, c, true)) edges)
  in
  let frontier = Svector.of_coo Dtype.Bool 7 [ (3, true) ] in
  let next = Svector.create Dtype.Bool 7 in
  (* next = Aᵀ ⊕.⊗ frontier over the logical semiring: vertices reachable
     from the frontier. *)
  Matmul.mxv ~transpose_a:true (Semiring.logical Dtype.Bool) ~out:next a
    frontier;
  Alcotest.check
    Alcotest.(list (pair int bool))
    "one ply from vertex 3"
    [ (0, true); (2, true) ]
    (Svector.to_alist next)

let test_mxv_simple () =
  let a = Smatrix.of_dense f64 [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let u = Svector.of_dense f64 [| 10.0; 100.0 |] in
  let w = Svector.create f64 2 in
  Matmul.mxv (Semiring.arithmetic f64) ~out:w a u;
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    "A*u" [ (0, 210.0); (1, 430.0) ] (Svector.to_alist w)

let test_mxv_empty_rows_produce_no_entries () =
  let a = Smatrix.of_coo f64 3 3 [ (0, 1, 2.0) ] in
  let u = Svector.of_coo f64 3 [ (1, 5.0) ] in
  let w = Svector.create f64 3 in
  Matmul.mxv (Semiring.arithmetic f64) ~out:w a u;
  Alcotest.check Alcotest.int "only one output entry" 1 (Svector.nvals w)

let test_mxm_simple () =
  let a = Smatrix.of_dense f64 [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Smatrix.of_dense f64 [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Smatrix.create f64 2 2 in
  Matmul.mxm (Semiring.arithmetic f64) ~out:c a b;
  Alcotest.check
    Alcotest.(array (array (float 0.0)))
    "A*B"
    [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]
    (Smatrix.to_dense ~fill:nan c)

let test_min_plus_shortest_path_step () =
  (* one relaxation of SSSP: path = Aᵀ min.+ path *)
  let a = Smatrix.of_coo f64 3 3 [ (0, 1, 5.0); (1, 2, 2.0); (0, 2, 9.0) ] in
  let path = Svector.of_coo f64 3 [ (0, 0.0) ] in
  let out = Svector.create f64 3 in
  Matmul.mxv ~transpose_a:true (Semiring.min_plus f64) ~out a path;
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    "distances after one hop"
    [ (1, 5.0); (2, 9.0) ]
    (Svector.to_alist out)

let test_dimension_errors () =
  let a = Smatrix.create f64 2 3 in
  let u = Svector.create f64 2 in
  let w = Svector.create f64 2 in
  Alcotest.check_raises "mxv inner mismatch"
    (Smatrix.Dimension_mismatch "mxv: expected vector size 3, actual size 2")
    (fun () -> Matmul.mxv (Semiring.arithmetic f64) ~out:w a u)

(* -- randomized equivalence -- *)

let param_gen =
  QCheck.Gen.(
    Helpers.semiring_gen >>= fun sr ->
    Helpers.accum_gen >>= fun accum ->
    bool >|= fun replace -> (sr, accum, replace))

let qcheck_mxv =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 5 6 >>= fun a ->
      Helpers.vec_gen 6 >>= fun u ->
      Helpers.vec_gen 5 >>= fun c ->
      Helpers.vmask_gen 5 >>= fun mask ->
      param_gen >|= fun p -> (a, u, c, mask, p))
  in
  Helpers.qtest ~count:400 "mxv matches dense model" (Helpers.arb gen)
    (fun (a, u, c, mask, (sr, accum, replace)) ->
      let out = mk_vec c in
      Matmul.mxv ~mask ?accum ~replace sr ~out (mk_mat 5 6 a) (mk_vec u);
      let t = Dense_ref.mxv_t sr a u in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_mxv_transposed =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 6 5 >>= fun a ->
      Helpers.vec_gen 6 >>= fun u ->
      Helpers.vec_gen 5 >>= fun c ->
      Helpers.vmask_gen 5 >>= fun mask ->
      param_gen >|= fun p -> (a, u, c, mask, p))
  in
  Helpers.qtest ~count:400 "mxv with transpose_a matches dense model"
    (Helpers.arb gen) (fun (a, u, c, mask, (sr, accum, replace)) ->
      let out = mk_vec c in
      Matmul.mxv ~mask ?accum ~replace ~transpose_a:true sr ~out (mk_mat 6 5 a)
        (mk_vec u);
      let t = Dense_ref.mxv_t sr (Dense_ref.transpose_mat a) u in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_vxm =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 5 6 >>= fun a ->
      Helpers.vec_gen 5 >>= fun u ->
      Helpers.vec_gen 6 >>= fun c ->
      Helpers.vmask_gen 6 >>= fun mask ->
      param_gen >|= fun p -> (a, u, c, mask, p))
  in
  Helpers.qtest ~count:400 "vxm matches dense model" (Helpers.arb gen)
    (fun (a, u, c, mask, (sr, accum, replace)) ->
      let out = mk_vec c in
      Matmul.vxm ~mask ?accum ~replace sr ~out (mk_vec u) (mk_mat 5 6 a);
      let t = Dense_ref.vxm_t sr u a in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_vxm_transposed =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 6 5 >>= fun a ->
      Helpers.vec_gen 5 >>= fun u ->
      Helpers.vec_gen 6 >>= fun c ->
      Helpers.vmask_gen 6 >>= fun mask ->
      param_gen >|= fun p -> (a, u, c, mask, p))
  in
  Helpers.qtest ~count:400 "vxm with transpose_a matches dense model"
    (Helpers.arb gen) (fun (a, u, c, mask, (sr, accum, replace)) ->
      let out = mk_vec c in
      Matmul.vxm ~mask ?accum ~replace ~transpose_a:true sr ~out (mk_vec u)
        (mk_mat 6 5 a);
      let t = Dense_ref.vxm_t sr u (Dense_ref.transpose_mat a) in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_mxm =
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 4 5 >>= fun a ->
      Helpers.mat_gen 5 4 >>= fun b ->
      Helpers.mat_gen 4 4 >>= fun c ->
      Helpers.mmask_gen 4 4 >>= fun mask ->
      pair bool bool >>= fun (ta, tb) ->
      param_gen >|= fun p -> (a, b, c, mask, ta, tb, p))
  in
  Helpers.qtest ~count:400
    "mxm matches dense model (all transpose combinations)" (Helpers.arb gen)
    (fun (a, b, c, mask, ta, tb, (sr, accum, replace)) ->
      (* logical product is a(4x5) * b(5x4); arguments are pre-transposed
         so the transpose flags undo it *)
      let a_sp =
        Dense_ref.smatrix_of_mat_auto f64
          (if ta then Dense_ref.transpose_mat a else a)
      and b_sp =
        Dense_ref.smatrix_of_mat_auto f64
          (if tb then Dense_ref.transpose_mat b else b)
      in
      let out = mk_mat 4 4 c in
      Matmul.mxm ~mask ?accum ~replace ~transpose_a:ta ~transpose_b:tb sr
        ~out a_sp b_sp;
      let t = Dense_ref.mxm_t sr a b in
      let expected =
        Dense_ref.write_mat ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Smatrix.equal out (mk_mat 4 4 expected))

let qcheck_mxm_masked_dot_path =
  (* pin the masked + transpose_b special kernel against the generic one *)
  let gen =
    QCheck.Gen.(
      Helpers.mat_gen 5 6 >>= fun a ->
      Helpers.mat_gen 5 6 >>= fun b ->
      Helpers.mat_gen 5 5 >>= fun c ->
      Helpers.mmask_gen 5 5 >|= fun mask -> (a, b, c, mask))
  in
  Helpers.qtest ~count:400 "masked dot-product mxm path" (Helpers.arb gen)
    (fun (a, b, c, mask) ->
      let sr = Semiring.arithmetic f64 in
      let out = mk_mat 5 5 c in
      Matmul.mxm ~mask ~transpose_b:true sr ~out (mk_mat 5 6 a) (mk_mat 5 6 b);
      let t = Dense_ref.mxm_t sr a (Dense_ref.transpose_mat b) in
      let expected = Dense_ref.write_mat ~mask ~accum:None ~replace:false c t in
      Smatrix.equal out (mk_mat 5 5 expected))

let suite =
  [ Alcotest.test_case "BFS ply (paper Fig. 1)" `Quick test_bfs_ply;
    Alcotest.test_case "mxv dense example" `Quick test_mxv_simple;
    Alcotest.test_case "mxv sparsity" `Quick
      test_mxv_empty_rows_produce_no_entries;
    Alcotest.test_case "mxm dense example" `Quick test_mxm_simple;
    Alcotest.test_case "min-plus relaxation" `Quick
      test_min_plus_shortest_path_step;
    Alcotest.test_case "dimension errors" `Quick test_dimension_errors;
    Helpers.to_alcotest qcheck_mxv;
    Helpers.to_alcotest qcheck_mxv_transposed;
    Helpers.to_alcotest qcheck_vxm;
    Helpers.to_alcotest qcheck_vxm_transposed;
    Helpers.to_alcotest qcheck_mxm;
    Helpers.to_alcotest qcheck_mxm_masked_dot_path;
  ]
