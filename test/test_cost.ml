(* Cost-model planning: schedule grammar round-trips, the planner's
   schedules stay bit-identical to the frozen greedy pipeline across
   random DAGs, calibration files survive reload and fail loudly on
   corruption, the calibration-aware pool grain only ever coarsens, and
   a shape-changing candidate is rejected by the verify gate instead of
   being adopted. *)

open Gbtl
module Sched = Cost.Schedule

let f64 = Dtype.FP64

let with_pin sched f =
  Exec.Planner.pin sched;
  Fun.protect ~finally:(fun () -> Exec.Planner.pin None) f

(* Fresh calibration rooted in a throwaway cache dir, global state
   restored (and reloaded from the real path) whatever happens. *)
let with_calib_dir f =
  let saved = Jit.Disk_cache.dir () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-cost-test-%d-%d" (Unix.getpid ())
         (Random.int 100000))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Jit.Disk_cache.set_dir dir;
  Cost.Calibration.reload ();
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Jit.Jit_stats.reset ();
      Jit.Disk_cache.set_dir saved;
      Cost.Calibration.reload ())
    (fun () -> f dir)

(* hand-rolled calibration file in the on-disk format (checksummed) *)
let write_calib ~gen coefs =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "ogb-calibration 1\ngeneration %d\n" gen);
  List.iter
    (fun (fam, ns, samples) ->
      Buffer.add_string b (Printf.sprintf "coef %s %.6f %d\n" fam ns samples))
    coefs;
  let body = Buffer.contents b in
  let oc = open_out_bin (Cost.Calibration.path ()) in
  output_string oc
    (body ^ Printf.sprintf "sum %s\n" (Digest.to_hex (Digest.string body)));
  close_out oc;
  Cost.Calibration.reload ()

(* ---- schedule grammar ---- *)

let sched_gen =
  let open QCheck.Gen in
  let choice = oneofl [ Sched.Auto; Sched.Pull; Sched.Push ] in
  let rules =
    (* at most one override per rule name: the canonical form orders and
       dedups, so duplicates would not be a round-trip property *)
    flatten_l
      (List.map
         (fun r ->
           frequency
             [ (2, return None); (1, map (fun b -> Some (r, b)) bool) ])
         Sched.rule_names)
    >|= List.filter_map Fun.id
  in
  let pins =
    flatten_l
      (List.map
         (fun id ->
           frequency
             [ (2, return None); (1, map (fun c -> Some (id, c)) choice) ])
         [ 0; 1; 2; 3; 7 ])
    >|= List.filter_map Fun.id
  in
  rules >>= fun rules ->
  choice >>= fun layout ->
  pins >|= fun node_layouts -> { Sched.rules; layout; node_layouts }

let print_sched s = Sched.to_string s

let qcheck_roundtrip =
  Helpers.qtest ~count:300 "schedule: parse inverts to_string"
    (QCheck.make sched_gen ~print:print_sched)
    (fun s ->
      match Sched.parse (Sched.to_string s) with
      | Error _ -> false
      | Ok t ->
        Sched.equal t (Sched.canonical s)
        && String.equal (Sched.to_string t) (Sched.to_string s))

let grammar_units () =
  let ok spec =
    match Sched.parse spec with
    | Ok t -> t
    | Error e -> Alcotest.failf "parse %S: %s" spec e
  in
  Alcotest.check Alcotest.bool "empty spec is the default schedule" true
    (Sched.is_default (ok ""));
  Alcotest.check Alcotest.bool "\"default\" is the default schedule" true
    (Sched.is_default (ok "default"));
  let off = ok "fuse=off" in
  List.iter
    (fun r ->
      Alcotest.check Alcotest.bool ("fuse=off disables " ^ r) false
        (Sched.rule_enabled off r))
    Sched.fusion_rules;
  Alcotest.check Alcotest.bool "fuse=off leaves push_mask alone" true
    (Sched.rule_enabled off "push_mask");
  Alcotest.check Alcotest.bool "csr is an alias for push" true
    ((ok "layout=csr").Sched.layout = Sched.Push);
  Alcotest.check Alcotest.bool "per-node pin overrides the global policy"
    true
    (Sched.node_layout (ok "layout=push,node3.layout=pull") 3 = Sched.Pull);
  Alcotest.check Alcotest.bool "missing node falls back to the policy" true
    (Sched.node_layout (ok "layout=push,node3.layout=pull") 4 = Sched.Push);
  (match Sched.parse "bogus=on" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted");
  (match Sched.parse "node3.layout=sideways" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad layout value accepted");
  match Sched.parse "fuse=maybe" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad toggle value accepted"

let of_env_units () =
  let set v = Unix.putenv "OGB_SCHEDULE" v in
  Fun.protect
    ~finally:(fun () -> set "")
    (fun () ->
      set "";
      Alcotest.check Alcotest.bool "unset/empty pins nothing" true
        (Sched.of_env () = None);
      set "layout=push";
      (match Sched.of_env () with
      | Some s -> Alcotest.check Alcotest.bool "env pin parsed" true
          (s.Sched.layout = Sched.Push)
      | None -> Alcotest.fail "valid OGB_SCHEDULE ignored");
      set "garbage";
      Alcotest.check Alcotest.bool "malformed env pin is a loud no-op" true
        (Sched.of_env () = None))

(* ---- planner vs greedy: bit-identical across random DAGs ---- *)

(* Degenerate pins cover the search space's corners: everything fused
   (the greedy baseline), nothing fused, and both forced directions.
   Whatever schedule the planner picks lives between these, and every
   one of them must produce the same entries to the last bit. *)
let corner_schedules =
  [ Sched.default;
    List.fold_left
      (fun s r -> Sched.with_rule s r false)
      Sched.default Sched.rule_names;
    { Sched.default with Sched.layout = Sched.Pull };
    { Sched.default with Sched.layout = Sched.Push } ]

let qcheck_planner_bit_identical =
  Helpers.qtest ~count:120
    "planner schedule bit-identical to greedy on random DAGs"
    (QCheck.make Test_expr_random.case_gen
       ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves () =
        Array.map
          (fun m ->
            Ogb.Container.of_svector (Dense_ref.svector_of_vec f64 m))
          leaf_models
      in
      let force sched =
        with_pin sched (fun () ->
            Ogb.Container.as_vector f64
              (Exec.force (Test_expr_random.to_expr (leaves ()) e)))
      in
      let planner = force None in
      List.for_all
        (fun s -> Svector.equal planner (force (Some s)))
        corner_schedules)

(* ---- candidate verification gate ---- *)

let tampered_candidate_rejected () =
  Analysis.Hook.install ();
  Exec.Planner.clear_cache ();
  Exec.Planner.reset_counters ();
  (* every candidate copy gets its root kind silently flipped — exactly
     the class of defect the verify gate exists to catch *)
  Exec.Planner.candidate_tamper :=
    Some (fun cand -> (Exec.Plan.root cand).Exec.Plan.kind <- Exec.Plan.K_mat);
  Fun.protect
    ~finally:(fun () ->
      Exec.Planner.candidate_tamper := None;
      Analysis.Hook.uninstall ();
      Exec.Planner.clear_cache ())
    (fun () ->
      let a =
        Ogb.Container.of_smatrix
          (Smatrix.of_coo f64 4 4
             [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 4.0); (3, 3, 1.0) ])
      in
      let u =
        Ogb.Container.of_svector
          (Svector.of_dense f64 [| 1.0; 2.0; 3.0; 4.0 |])
      in
      let expr () =
        Ogb.Expr.matmul
          (Ogb.Expr.transpose (Ogb.Expr.of_container a))
          (Ogb.Expr.of_container u)
      in
      let plan = Exec.plan_force (expr ()) in
      let rejected =
        Option.value ~default:0
          (List.assoc_opt "rejected" (Exec.Planner.counters ()))
      in
      Alcotest.check Alcotest.bool "at least one candidate was rejected" true
        (rejected > 0);
      Alcotest.check Alcotest.string
        "no tampered schedule adopted: fallback is the greedy default"
        "default" plan.Exec.Plan.schedule_desc;
      let with_tamper =
        Ogb.Container.as_vector f64 (Exec.force (expr ()))
      in
      Exec.Planner.candidate_tamper := None;
      Exec.Planner.clear_cache ();
      let without =
        Ogb.Container.as_vector f64 (Exec.force (expr ()))
      in
      Alcotest.check Alcotest.bool "result unaffected by rejected candidates"
        true
        (Svector.equal with_tamper without))

(* ---- calibration persistence ---- *)

let approx name expect got =
  Alcotest.check (Alcotest.float 1e-6) name expect got

let calibration_roundtrip () =
  (* [suspended]: a globally armed cost.calib.corrupt chaos spec would
     corrupt the very file whose round-trip this asserts *)
  with_calib_dir (fun _dir ->
      Fault.suspended @@ fun () ->
      Jit.Jit_stats.reset ();
      Alcotest.check Alcotest.bool "fresh state is uncalibrated" false
        (Cost.Calibration.calibrated ());
      Alcotest.check Alcotest.int "fresh generation" 0
        (Cost.Calibration.generation ());
      Jit.Jit_stats.record_kernel_time ~family:"mxv_pull" ~items:1000
        ~seconds:1.0e-4;
      (match Cost.Calibration.save () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      Alcotest.check Alcotest.int "save bumps the generation" 1
        (Cost.Calibration.generation ());
      approx "absorbed coefficient" 100.0
        (Option.get (Cost.Calibration.ns_per_item "mxv_pull"));
      Cost.Calibration.reload ();
      Alcotest.check Alcotest.int "generation survives reload" 1
        (Cost.Calibration.generation ());
      approx "coefficient survives reload" 100.0
        (Option.get (Cost.Calibration.ns_per_item "mxv_pull"));
      (* a second run blends instead of overwriting *)
      Jit.Jit_stats.reset ();
      Jit.Jit_stats.record_kernel_time ~family:"mxv_pull" ~items:1000
        ~seconds:3.0e-4;
      (match Cost.Calibration.save () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "second save: %s" e);
      Alcotest.check Alcotest.int "second save bumps again" 2
        (Cost.Calibration.generation ());
      approx "equal-weight blend of 100 and 300" 200.0
        (Option.get (Cost.Calibration.ns_per_item "mxv_pull"));
      Jit.Jit_stats.reset ())

let calibration_corruption () =
  with_calib_dir (fun _dir ->
      Jit.Jit_stats.reset ();
      Jit.Jit_stats.record_kernel_time ~family:"mxv_push" ~items:100
        ~seconds:1.0e-5;
      (match Cost.Calibration.save () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      let p = Cost.Calibration.path () in
      let q0 = Cost.Calibration.quarantines () in
      (* torn/garbage file: quarantined, loud, defaults *)
      let oc = open_out_bin p in
      output_string oc "not a calibration file";
      close_out oc;
      Cost.Calibration.reload ();
      Alcotest.check Alcotest.bool "garbage file falls back to defaults"
        false
        (Cost.Calibration.calibrated ());
      Alcotest.check Alcotest.int "garbage generation resets" 0
        (Cost.Calibration.generation ());
      Alcotest.check Alcotest.bool "garbage file moved aside" true
        (Sys.file_exists (p ^ ".bad"));
      Alcotest.check Alcotest.int "quarantine counted" (q0 + 1)
        (Cost.Calibration.quarantines ());
      Sys.remove (p ^ ".bad");
      (* same path through the chaos harness injection point *)
      Jit.Jit_stats.reset ();
      Jit.Jit_stats.record_kernel_time ~family:"mxv_push" ~items:100
        ~seconds:1.0e-5;
      (match Cost.Calibration.save () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "re-save: %s" e);
      Fault.arm [ ("cost.calib.corrupt", Fault.Always) ];
      Cost.Calibration.reload ();
      Alcotest.check Alcotest.bool "injected corruption falls back too"
        false
        (Cost.Calibration.calibrated ());
      Alcotest.check Alcotest.bool "injected corruption quarantined" true
        (Sys.file_exists (p ^ ".bad"));
      Alcotest.check Alcotest.int "second quarantine counted" (q0 + 2)
        (Cost.Calibration.quarantines ());
      Fault.disarm ())

(* ---- calibration-aware pool grain ---- *)

let grain_lookup () =
  with_calib_dir (fun _dir ->
      Fault.suspended @@ fun () ->
      (* 16384 items / divisor 16 -> 1024-item power-of-two base *)
      let base = Parallel.Pool.grain_for 16384 in
      Alcotest.check Alcotest.int "uncalibrated grain is the pow2 base" 1024
        base;
      (* 100ns/item: a 200µs chunk is 2000 items -> coarsened to 2048 *)
      write_calib ~gen:3 [ ("pool.chunk", 100.0, 10) ];
      Alcotest.check Alcotest.int "grain coarsens toward 200µs chunks" 2048
        (Parallel.Pool.grain_for 16384);
      (* slow items: the model wants finer than the base; the hook only
         ever coarsens, so the base stands *)
      write_calib ~gen:4 [ ("pool.chunk", 1.0e6, 10) ];
      Alcotest.check Alcotest.int "grain never drops below the base" 1024
        (Parallel.Pool.grain_for 16384);
      (* absurdly cheap items: the suggestion clamps to n *)
      write_calib ~gen:5 [ ("pool.chunk", 0.001, 10) ];
      Alcotest.check Alcotest.int "grain never exceeds the range" 16384
        (Parallel.Pool.grain_for 16384))

let suite =
  [ Helpers.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "schedule grammar corner cases" `Quick grammar_units;
    Alcotest.test_case "OGB_SCHEDULE pin parsing" `Quick of_env_units;
    Helpers.to_alcotest qcheck_planner_bit_identical;
    Alcotest.test_case "shape-changing candidate is rejected" `Quick
      tampered_candidate_rejected;
    Alcotest.test_case "calibration round-trips and blends" `Quick
      calibration_roundtrip;
    Alcotest.test_case "corrupt calibration quarantines loudly" `Quick
      calibration_corruption;
    Alcotest.test_case "calibrated pool grain only coarsens" `Quick
      grain_lookup ]
