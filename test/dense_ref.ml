(* Dense reference model of the GraphBLAS semantics: containers are
   ['a option] arrays (None = no stored entry), every operation is the
   naive O(n^2)/O(n^3) definition from the C API spec, including the full
   mask / accumulate / replace write step.  The sparse kernels are tested
   against this model. *)

open Gbtl

type 'a vec = 'a option array
type 'a mat = 'a option array array

let vec_of_svector v : 'a vec =
  let d = Array.make (Svector.size v) None in
  Svector.iter (fun i x -> d.(i) <- Some x) v;
  d

let svector_of_vec dt (d : 'a vec) =
  let v = Svector.create dt (Array.length d) in
  Array.iteri (fun i -> function Some x -> Svector.set v i x | None -> ()) d;
  v

let mat_of_smatrix m : 'a mat =
  let d = Array.make_matrix (Smatrix.nrows m) (Smatrix.ncols m) None in
  Smatrix.iter (fun r c x -> d.(r).(c) <- Some x) m;
  d

let smatrix_of_mat_auto dt (d : 'a mat) =
  let nrows = Array.length d in
  let ncols = if nrows = 0 then 0 else Array.length d.(0) in
  let triples = ref [] in
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c -> function
          | Some x -> triples := (r, c, x) :: !triples
          | None -> ())
        row)
    d;
  Smatrix.of_coo dt nrows ncols (List.rev !triples)

let smatrix_of_mat dt nrows ncols (d : 'a mat) =
  let triples = ref [] in
  for r = nrows - 1 downto 0 do
    for c = ncols - 1 downto 0 do
      match d.(r).(c) with
      | Some x -> triples := (r, c, x) :: !triples
      | None -> ()
    done
  done;
  Smatrix.of_coo dt nrows ncols !triples

let entries_of_vec (d : 'a vec) =
  let e = Entries.create () in
  Array.iteri (fun i -> function Some x -> Entries.push e i x | None -> ()) d;
  e

let rows_of_mat (d : 'a mat) = Array.map entries_of_vec d

(* Reference masks: a dense boolean "allowed" array. *)
let v_allowed_of_mask mask n =
  match mask with
  | Mask.No_vmask -> Array.make n true
  | Mask.Vmask { dense; complemented } ->
    Array.map (fun b -> b <> complemented) dense
  | Mask.Vmask_sparse { size; idx; complemented } ->
    let dense = Array.make size false in
    Array.iter (fun i -> dense.(i) <- true) idx;
    Array.map (fun b -> b <> complemented) dense

let m_allowed_of_mask mask nrows ncols =
  match mask with
  | Mask.No_mmask -> Array.make_matrix nrows ncols true
  | Mask.Mmask { m; complemented } ->
    let d = Array.make_matrix nrows ncols false in
    Smatrix.iter (fun r c b -> d.(r).(c) <- b) m;
    Array.map (Array.map (fun b -> b <> complemented)) d

(* The write step C<M,z> = C (.) T on one cell. *)
let write_cell ~allowed ~accum ~replace c t =
  let z =
    match accum with
    | None -> t
    | Some f -> (
      match c, t with
      | None, None -> None
      | Some x, None -> Some x
      | None, Some y -> Some y
      | Some x, Some y -> Some (f x y))
  in
  if allowed then z else if replace then None else c

let write_vec ~mask ~accum ~replace (c : 'a vec) (t : 'a vec) : 'a vec =
  let allowed = v_allowed_of_mask mask (Array.length c) in
  Array.init (Array.length c) (fun i ->
      write_cell ~allowed:allowed.(i) ~accum ~replace c.(i) t.(i))

let write_mat ~mask ~accum ~replace (c : 'a mat) (t : 'a mat) : 'a mat =
  let nrows = Array.length c in
  let ncols = if nrows = 0 then 0 else Array.length c.(0) in
  let allowed = m_allowed_of_mask mask nrows ncols in
  Array.init nrows (fun r ->
      Array.init ncols (fun cl ->
          write_cell ~allowed:allowed.(r).(cl) ~accum ~replace c.(r).(cl)
            t.(r).(cl)))

let accum_f op = Option.map (fun (op : _ Binop.t) -> op.Binop.f) op

(* Raw results (the "T" of each operation). *)

let mxv_t sr (a : 'a mat) (u : 'a vec) : 'a vec =
  Array.map
    (fun row ->
      let acc = ref None in
      Array.iteri
        (fun j aij ->
          match aij, u.(j) with
          | Some x, Some y ->
            let p = Semiring.mul sr x y in
            acc :=
              (match !acc with
              | None -> Some p
              | Some s -> Some (Semiring.add sr s p))
          | _, _ -> ())
        row;
      !acc)
    a

let transpose_mat (a : 'a mat) : 'a mat =
  let nrows = Array.length a in
  let ncols = if nrows = 0 then 0 else Array.length a.(0) in
  Array.init ncols (fun c -> Array.init nrows (fun r -> a.(r).(c)))

let vxm_t sr (u : 'a vec) (a : 'a mat) : 'a vec =
  let nrows = Array.length a in
  let ncols = if nrows = 0 then 0 else Array.length a.(0) in
  Array.init ncols (fun j ->
      let acc = ref None in
      for i = 0 to nrows - 1 do
        match u.(i), a.(i).(j) with
        | Some x, Some y ->
          let p = Semiring.mul sr x y in
          acc :=
            (match !acc with
            | None -> Some p
            | Some s -> Some (Semiring.add sr s p))
        | _, _ -> ()
      done;
      !acc)

let mxm_t sr (a : 'a mat) (b : 'a mat) : 'a mat =
  let n = Array.length a in
  let inner = if n = 0 then 0 else Array.length a.(0) in
  let p = if Array.length b = 0 then 0 else Array.length b.(0) in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let acc = ref None in
          for k = 0 to inner - 1 do
            match a.(i).(k), b.(k).(j) with
            | Some x, Some y ->
              let v = Semiring.mul sr x y in
              acc :=
                (match !acc with
                | None -> Some v
                | Some s -> Some (Semiring.add sr s v))
            | _, _ -> ()
          done;
          !acc))

let ewise_vec_t ~union (op : 'a Binop.t) (u : 'a vec) (v : 'a vec) : 'a vec =
  Array.init (Array.length u) (fun i ->
      match u.(i), v.(i) with
      | Some x, Some y -> Some (op.Binop.f x y)
      | Some x, None -> if union then Some x else None
      | None, Some y -> if union then Some y else None
      | None, None -> None)

let ewise_mat_t ~union op (a : 'a mat) (b : 'a mat) : 'a mat =
  Array.init (Array.length a) (fun r -> ewise_vec_t ~union op a.(r) b.(r))

let apply_vec_t (f : 'a Unaryop.t) (u : 'a vec) : 'a vec =
  Array.map (Option.map f.Unaryop.f) u

let reduce_rows_t (m : 'a Monoid.t) (a : 'a mat) : 'a vec =
  Array.map
    (fun row ->
      Array.fold_left
        (fun acc x ->
          match acc, x with
          | None, Some v -> Some (Monoid.reduce m m.Monoid.identity v)
          | Some s, Some v -> Some (Monoid.reduce m s v)
          | acc, None -> acc)
        None row)
    a

let reduce_scalar_t (m : 'a Monoid.t) (a : 'a mat) : 'a =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc -> function Some v -> Monoid.reduce m acc v | None -> acc)
        acc row)
    m.Monoid.identity a

(* Equality helpers for alcotest. *)

let vec_testable dt =
  let pp fmt (v : 'a vec) =
    Array.iteri
      (fun i -> function
        | Some x -> Format.fprintf fmt "%d:%s " i (Dtype.to_string dt x)
        | None -> ())
      v
  in
  let eq a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y ->
           match x, y with
           | None, None -> true
           | Some x, Some y -> Dtype.equal_values dt x y
           | _, _ -> false)
         a b
  in
  Alcotest.testable pp eq

let mat_testable dt =
  let vt = vec_testable dt in
  Alcotest.(array vt)
