(* Exhaustive equivalence of the two JIT backends: for every operator and
   dtype combination the codegen supports, the natively compiled kernel
   must agree with the closure-specialized kernel on random inputs.
   This pins the generated OCaml source (Codegen) against the shared
   array algorithms (Array_kernels). *)

open Gbtl

let native_available = Jit.Native_backend.available ()

let with_backend backend f =
  let saved = Jit.Dispatch.backend () in
  Jit.Dispatch.set_backend backend;
  Fun.protect ~finally:(fun () -> Jit.Dispatch.set_backend saved) f

let run_both f =
  let n = with_backend Jit.Dispatch.Native f in
  Jit.Dispatch.clear_memory_cache ();
  let c = with_backend Jit.Dispatch.Closure f in
  Jit.Dispatch.clear_memory_cache ();
  (n, c)

(* random sparse data per dtype *)
let rand_vec (type a) (dt : a Dtype.t) rng size : a Svector.t =
  let v = Svector.create dt size in
  for i = 0 to size - 1 do
    if Graphs.Rng.float rng < 0.5 then
      Svector.set v i (Dtype.of_int dt (Graphs.Rng.int rng 9 - 4))
  done;
  v

let rand_mat (type a) (dt : a Dtype.t) rng nrows ncols : a Smatrix.t =
  let triples = ref [] in
  for r = 0 to nrows - 1 do
    for c = 0 to ncols - 1 do
      if Graphs.Rng.float rng < 0.35 then
        triples := (r, c, Dtype.of_int dt (Graphs.Rng.int rng 9 - 4)) :: !triples
    done
  done;
  Smatrix.of_coo dt nrows ncols !triples

let entries_list (type a) (dt : a Dtype.t) e =
  let acc = ref [] in
  Entries.iter (fun i v -> acc := (i, Dtype.to_string dt v) :: !acc) e;
  List.rev !acc

let codegen_semirings =
  (* semirings whose parts the codegen supports *)
  [ Jit.Op_spec.arithmetic; Jit.Op_spec.logical; Jit.Op_spec.min_plus;
    { Jit.Op_spec.add_op = "Max"; add_identity = "MaxIdentity"; mul_op = "Times" };
    { Jit.Op_spec.add_op = "Min"; add_identity = "MinIdentity"; mul_op = "Second" };
    { Jit.Op_spec.add_op = "Plus"; add_identity = "Zero"; mul_op = "First" };
  ]

let check_all _name checks () =
  if not native_available then Alcotest.skip ()
  else List.iter (fun f -> f ()) checks

let matvec_case (type a) (dt : a Dtype.t) sr transpose seed () =
  let rng = Graphs.Rng.create ~seed in
  let m = rand_mat dt rng 7 5 in
  let u = rand_vec dt rng (if transpose then 7 else 5) in
  let run () = entries_list dt (Jit.Kernels.mxv dt sr ~transpose m u) in
  let n, c = run_both run in
  Alcotest.check
    Alcotest.(list (pair int string))
    (Printf.sprintf "mxv %s %s/%s/%s transpose=%b" (Dtype.name dt)
       sr.Jit.Op_spec.add_op sr.Jit.Op_spec.add_identity sr.Jit.Op_spec.mul_op
       transpose)
    c n

let vxm_case (type a) (dt : a Dtype.t) sr transpose seed () =
  let rng = Graphs.Rng.create ~seed in
  let m = rand_mat dt rng 7 5 in
  let u = rand_vec dt rng (if transpose then 5 else 7) in
  let run () = entries_list dt (Jit.Kernels.vxm dt sr ~transpose u m) in
  let n, c = run_both run in
  Alcotest.check
    Alcotest.(list (pair int string))
    (Printf.sprintf "vxm %s %s transpose=%b" (Dtype.name dt)
       sr.Jit.Op_spec.mul_op transpose)
    c n

let test_matvec_combinations =
  check_all "matvec"
    (List.concat_map
       (fun sr ->
         List.concat_map
           (fun transpose ->
             [ matvec_case Dtype.FP64 sr transpose 11;
               matvec_case Dtype.Int64 sr transpose 12;
               matvec_case Dtype.Bool sr transpose 13;
               vxm_case Dtype.FP64 sr transpose 14;
               vxm_case Dtype.Int64 sr transpose 15;
             ])
           [ false; true ])
       codegen_semirings)

let mxm_case (type a) (dt : a Dtype.t) sr (ta, tb) seed () =
  let rng = Graphs.Rng.create ~seed in
  let a = rand_mat dt rng 6 5 in
  let b = rand_mat dt rng 5 7 in
  let a_arg = if ta then Smatrix.transpose a else a in
  let b_arg = if tb then Smatrix.transpose b else b in
  let run () =
    let m =
      Jit.Kernels.mxm dt sr ~transpose_a:ta ~transpose_b:tb
        ~mask:Gbtl.Mask.No_mmask a_arg b_arg
    in
    List.map
      (fun (r, c, x) -> (r, c, Dtype.to_string dt x))
      (Smatrix.to_coo m)
  in
  let n, c = run_both run in
  Alcotest.check
    Alcotest.(list (triple int int string))
    (Printf.sprintf "mxm %s %s ta=%b tb=%b" (Dtype.name dt)
       sr.Jit.Op_spec.mul_op ta tb)
    c n;
  (* and against the polymorphic library *)
  let expected = Smatrix.create dt 6 7 in
  Matmul.mxm
    (Jit.Op_spec.instantiate_semiring dt sr)
    ~out:expected a b;
  Alcotest.check
    Alcotest.(list (triple int int string))
    "mxm kernel = Gbtl.Matmul"
    (List.map
       (fun (r, c, x) -> (r, c, Dtype.to_string dt x))
       (Smatrix.to_coo expected))
    n

let test_mxm_combinations =
  check_all "mxm"
    (List.concat_map
       (fun sr ->
         [ mxm_case Dtype.FP64 sr (false, false) 91;
           mxm_case Dtype.Int64 sr (false, false) 92;
           mxm_case Dtype.Bool sr (false, false) 93;
           mxm_case Dtype.FP64 sr (true, false) 94;
           mxm_case Dtype.FP64 sr (false, true) 95;
           mxm_case Dtype.FP64 sr (true, true) 96;
         ])
       codegen_semirings)

let ewise_case (type a) (dt : a Dtype.t) kind op seed () =
  let rng = Graphs.Rng.create ~seed in
  let u = rand_vec dt rng 12 and v = rand_vec dt rng 12 in
  let run () = entries_list dt (Jit.Kernels.ewise_v kind dt ~op u v) in
  let n, c = run_both run in
  Alcotest.check
    Alcotest.(list (pair int string))
    (Printf.sprintf "ewise %s %s %s" (Dtype.name dt)
       (match kind with `Add -> "add" | `Mult -> "mult")
       op)
    c n

let test_ewise_all_ops =
  check_all "ewise"
    (List.concat_map
       (fun op ->
         List.concat_map
           (fun kind ->
             [ ewise_case Dtype.FP64 kind op 21;
               ewise_case Dtype.Int64 kind op 22;
               ewise_case Dtype.Bool kind op 23;
             ])
           [ `Add; `Mult ])
       Binop.names)

let apply_case (type a) (dt : a Dtype.t) f seed () =
  let rng = Graphs.Rng.create ~seed in
  let u = rand_vec dt rng 12 in
  let run () = entries_list dt (Jit.Kernels.apply_v dt f u) in
  let n, c = run_both run in
  Alcotest.check
    Alcotest.(list (pair int string))
    (Printf.sprintf "apply %s %s" (Dtype.name dt) (Jit.Op_spec.unary_name f))
    c n

let test_apply_all_ops =
  check_all "apply"
    (List.concat_map
       (fun f ->
         [ apply_case Dtype.FP64 f 31; apply_case Dtype.Int64 f 32;
           apply_case Dtype.Bool f 33 ])
       ([ Jit.Op_spec.Named "Identity"; Named "AdditiveInverse";
          Named "LogicalNot"; Named "MultiplicativeInverse";
          Bound { op = "Times"; side = `Second; const = 3.0 };
          Bound { op = "Plus"; side = `First; const = -2.0 };
          Bound { op = "Minus"; side = `Second; const = 1.0 };
          Bound { op = "Max"; side = `Second; const = 0.0 } ]
         : Jit.Op_spec.unary list))

let reduce_case (type a) (dt : a Dtype.t) op identity seed () =
  let rng = Graphs.Rng.create ~seed in
  let u = rand_vec dt rng 12 in
  let run () =
    Dtype.to_string dt (Jit.Kernels.reduce_v_scalar dt ~op ~identity u)
  in
  let n, c = run_both run in
  Alcotest.check Alcotest.string
    (Printf.sprintf "reduce %s %s/%s" (Dtype.name dt) op identity)
    c n

let test_reduce_all_monoids =
  check_all "reduce"
    (List.concat_map
       (fun (op, identity) ->
         [ reduce_case Dtype.FP64 op identity 41;
           reduce_case Dtype.Int64 op identity 42;
           reduce_case Dtype.Bool op identity 43 ])
       [ ("Plus", "Zero"); ("Times", "One"); ("Min", "MinIdentity");
         ("Max", "MaxIdentity"); ("LogicalOr", "False");
         ("LogicalAnd", "True") ])

let test_disk_cache_roundtrip () =
  if not native_available then Alcotest.skip ()
  else
    (* asserts exact disk-hit bookkeeping, which a globally armed chaos
       spec (OGB_FAULTS corrupting the artifact) legitimately breaks *)
    Fault.suspended @@ fun () ->
    begin
    (* a natively compiled kernel must load back from the .cmxs on disk *)
    let saved_dir = Jit.Disk_cache.dir () in
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ogb-dcache-%d" (Unix.getpid ()))
    in
    Jit.Disk_cache.set_dir dir;
    Jit.Disk_cache.clear ();
    Jit.Dispatch.clear_memory_cache ();
    Fun.protect
      ~finally:(fun () ->
        Jit.Disk_cache.clear ();
        Jit.Disk_cache.set_dir saved_dir;
        Jit.Dispatch.clear_memory_cache ())
      (fun () ->
        with_backend Jit.Dispatch.Native (fun () ->
            let rng = Graphs.Rng.create ~seed:5 in
            let m = rand_mat Dtype.FP64 rng 6 6 in
            let u = rand_vec Dtype.FP64 rng 6 in
            let first =
              entries_list Dtype.FP64
                (Jit.Kernels.mxv Dtype.FP64 Jit.Op_spec.arithmetic
                   ~transpose:false m u)
            in
            Jit.Jit_stats.reset ();
            Jit.Dispatch.clear_memory_cache ();
            let second =
              entries_list Dtype.FP64
                (Jit.Kernels.mxv Dtype.FP64 Jit.Op_spec.arithmetic
                   ~transpose:false m u)
            in
            let stats = Jit.Jit_stats.snapshot () in
            Alcotest.check Alcotest.int "served from disk" 1
              stats.Jit.Jit_stats.disk_hits;
            Alcotest.check Alcotest.int "no recompilation" 0
              stats.Jit.Jit_stats.compiles;
            Alcotest.check
              Alcotest.(list (pair int string))
              "same result" first second))
  end

let suite =
  [ Alcotest.test_case "matvec: native = closure (all combos)" `Quick
      test_matvec_combinations;
    Alcotest.test_case "mxm: native = closure = library" `Quick
      test_mxm_combinations;
    Alcotest.test_case "ewise: native = closure (17 ops x 3 dtypes)" `Quick
      test_ewise_all_ops;
    Alcotest.test_case "apply: native = closure (incl. bound ops)" `Quick
      test_apply_all_ops;
    Alcotest.test_case "reduce: native = closure (6 monoids)" `Quick
      test_reduce_all_monoids;
    Alcotest.test_case "disk cache roundtrip" `Quick test_disk_cache_roundtrip;
  ]
