(* Workload-breadth suite for the three newest tier-1 workloads: label
   propagation, k-truss and single-source betweenness centrality.  Each
   workload is checked four ways — deterministic cross-tier agreement
   against its tier-3 reference, qcheck blocking≡nonblocking
   bit-identity, parallel-twin bit-identity across grain and domain
   settings, and chaos-matrix equivalence under one OGB_FAULTS spec. *)

open Gbtl
module C = Ogb.Container
module Pool = Parallel.Pool

(* ---- fixtures ---- *)

(* Symmetric loop-free adjacency (labelprop / ktruss operate on
   undirected graphs). *)
let sym_graph ~seed ~n ~m =
  let rng = Graphs.Rng.create ~seed in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:n ~nedges:m in
  Graphs.Convert.bool_adjacency (Graphs.Edge_list.symmetrize g)

(* Directed loop-free adjacency plus its edge pairs (bc). *)
let digraph ~seed ~n ~m =
  let rng = Graphs.Rng.create ~seed in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:n ~nedges:m in
  ( Graphs.Convert.bool_adjacency g,
    List.map (fun (s, d, _) -> (s, d)) g.Graphs.Edge_list.edges )

let int_svector_alist sv =
  List.rev (Svector.fold (fun acc i l -> (i, l) :: acc) [] sv)

let float_svector_alist sv =
  List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] sv)

let int_labels_of_container c =
  List.map (fun (v, l) -> (v, int_of_float l)) (C.vector_entries c)

(* ---- label propagation ---- *)

let test_labelprop_tiers_agree () =
  List.iter
    (fun seed ->
      let adj = sym_graph ~seed ~n:18 ~m:30 in
      let expected = int_svector_alist (Algorithms.Labelprop.native adj) in
      let gc = C.of_smatrix adj in
      let check name labels =
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s agrees (seed %d)" name seed)
          expected
          (int_labels_of_container labels)
      in
      let blocking, rounds_b = Algorithms.Labelprop.dsl gc in
      let nonblocking, rounds_n = Algorithms.Labelprop.nonblocking gc in
      check "dsl" blocking;
      check "nonblocking" nonblocking;
      Alcotest.(check int)
        (Printf.sprintf "round counts agree (seed %d)" seed)
        rounds_b rounds_n;
      check "vm_loops" (Algorithms.Labelprop.vm_loops gc))
    [ 81; 82; 83 ]

let test_labelprop_two_cliques () =
  (* two disjoint 4-cliques: propagation settles on one label per
     clique (the smallest member), so exactly two communities *)
  let clique base = List.concat_map (fun i ->
      List.filter_map (fun j ->
          if i <> j then Some (base + i, base + j, true) else None)
        [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let adj = Smatrix.of_coo Dtype.Bool 8 8 (clique 0 @ clique 4) in
  let labels = Algorithms.Labelprop.native adj in
  Alcotest.(check int) "two communities" 2
    (Algorithms.Labelprop.community_count labels);
  Alcotest.(check (list (pair int int)))
    "each clique adopts its smallest label"
    [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 4); (5, 4); (6, 4); (7, 4) ]
    (int_svector_alist labels)

let test_labelprop_isolated_keep_labels () =
  (* an edgeless graph is already at its fixpoint *)
  let adj = Smatrix.create Dtype.Bool 5 5 in
  let labels = Algorithms.Labelprop.native adj in
  Alcotest.(check (list (pair int int)))
    "isolated vertices keep their seed label"
    [ (0, 0); (1, 1); (2, 2); (3, 3); (4, 4) ]
    (int_svector_alist labels)

(* ---- k-truss ---- *)

let truss_alist c =
  List.map (fun (i, j, _) -> (i, j)) (C.matrix_entries c)

let test_ktruss_tiers_agree () =
  List.iter
    (fun (seed, k) ->
      let adj = sym_graph ~seed ~n:16 ~m:44 in
      let expected =
        List.map (fun (i, j, _) -> (i, j))
          (List.sort compare
             (Smatrix.fold
                (fun acc i j v -> (i, j, v) :: acc)
                [] (Algorithms.Ktruss.native ~k adj)))
      in
      let gc = C.of_smatrix adj in
      let check name edges =
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s agrees (seed %d, k=%d)" name seed k)
          expected
          (List.sort compare edges)
      in
      check "dsl" (truss_alist (Algorithms.Ktruss.dsl ~k gc));
      check "nonblocking" (truss_alist (Algorithms.Ktruss.nonblocking ~k gc));
      check "vm_loops" (truss_alist (Algorithms.Ktruss.vm_loops ~k gc)))
    [ (91, 3); (92, 3); (93, 4); (94, 4) ]

let test_ktruss_two_triangles () =
  (* two triangles sharing edge (0,1): every edge sits in >= 1 triangle
     so the 3-truss keeps everything; only (0,1) has support 2, and once
     its companions are pruned it loses them too, so the 4-truss is
     empty *)
  let edges =
    [ (0, 1); (0, 2); (1, 2); (0, 3); (1, 3) ]
  in
  let coo =
    List.concat_map (fun (i, j) -> [ (i, j, true); (j, i, true) ]) edges
  in
  let adj = Smatrix.of_coo Dtype.Bool 4 4 coo in
  Alcotest.(check int) "3-truss keeps all 5 edges" 5
    (Algorithms.Ktruss.edge_count (Algorithms.Ktruss.native ~k:3 adj));
  Alcotest.(check int) "4-truss is empty" 0
    (Algorithms.Ktruss.edge_count (Algorithms.Ktruss.native ~k:4 adj))

(* ---- betweenness centrality (single source) ---- *)

(* One Brandes sweep: the dependency contribution delta_s(v) of a
   single source, the ground truth for [Bc.single_source]. *)
let ref_brandes_single edges n s =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  let sigma = Array.make n 0.0 and dist = Array.make n (-1) in
  let delta = Array.make n 0.0 in
  sigma.(s) <- 1.0;
  dist.(s) <- 0;
  let order = ref [] in
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := v :: !order;
    List.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end;
        if dist.(w) = dist.(v) + 1 then sigma.(w) <- sigma.(w) +. sigma.(v))
      adj.(v)
  done;
  List.iter
    (fun w ->
      List.iter
        (fun x ->
          if dist.(x) = dist.(w) + 1 then
            delta.(w) <-
              delta.(w) +. (sigma.(w) /. sigma.(x) *. (1.0 +. delta.(x))))
        adj.(w))
    !order;
  (* the GraphBLAS decode is dense: zeros stored, source pinned to 0 *)
  List.init n (fun v -> (v, if v = s then 0.0 else delta.(v)))

let test_bc_single_source_against_brandes () =
  List.iter
    (fun seed ->
      let adj, edges = digraph ~seed ~n:16 ~m:40 in
      List.iter
        (fun src ->
          let expected = ref_brandes_single edges 16 src in
          let got =
            float_svector_alist (Algorithms.Bc.single_source adj ~src)
          in
          Alcotest.check
            Alcotest.(list (pair int (float 1e-9)))
            (Printf.sprintf "single_source matches Brandes (seed %d, src %d)"
               seed src)
            expected got)
        [ 0; 3; 7 ])
    [ 95; 96; 97 ]

let test_bc_tiers_agree () =
  List.iter
    (fun seed ->
      let adj, _ = digraph ~seed ~n:14 ~m:36 in
      let src = 0 in
      let expected = float_svector_alist (Algorithms.Bc.single_source adj ~src) in
      let gc = C.of_smatrix adj in
      let check name c =
        Alcotest.check
          Alcotest.(list (pair int (float 1e-9)))
          (Printf.sprintf "%s agrees (seed %d)" name seed)
          expected (C.vector_entries c)
      in
      check "dsl" (Algorithms.Bc.dsl gc ~src);
      check "nonblocking" (Algorithms.Bc.nonblocking gc ~src);
      check "vm_loops" (Algorithms.Bc.vm_loops gc ~src))
    [ 101; 102; 103 ]

let test_bc_single_vs_batched () =
  let adj, _ = digraph ~seed:104 ~n:12 ~m:30 in
  List.iter
    (fun src ->
      let batched = Algorithms.Bc.native ~sources:[ src ] adj in
      let single = Algorithms.Bc.single_source adj ~src in
      Alcotest.check
        Alcotest.(list (pair int (float 1e-9)))
        (Printf.sprintf "single_source = native ~sources:[%d]" src)
        (float_svector_alist batched)
        (float_svector_alist single))
    [ 0; 5; 11 ]

(* ---- qcheck: blocking ≡ nonblocking bit-identity ---- *)

(* A generated undirected instance: vertex count and an edge budget,
   realized through the seeded graph generator so shrinking stays
   meaningful. *)
let graph_case_gen =
  let open QCheck.Gen in
  int_range 4 16 >>= fun n ->
  int_range n (3 * n) >>= fun m ->
  int_bound 10_000 >|= fun seed -> (n, m, seed)

let graph_case_arb =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "n=%d m=%d seed=%d" n m seed)
    graph_case_gen

let qtest name law = Helpers.qtest ~count:40 name graph_case_arb law

let qcheck_labelprop_nonblocking =
  qtest "labelprop: blocking ≡ nonblocking (bit-identical)"
    (fun (n, m, seed) ->
      let gc = C.of_smatrix (sym_graph ~seed ~n ~m) in
      let lb, rb = Algorithms.Labelprop.dsl gc in
      let ln, rn = Algorithms.Labelprop.nonblocking gc in
      rb = rn && C.equal lb ln)

let qcheck_ktruss_nonblocking =
  qtest "ktruss: blocking ≡ nonblocking (bit-identical)"
    (fun (n, m, seed) ->
      let gc = C.of_smatrix (sym_graph ~seed ~n ~m) in
      List.for_all
        (fun k ->
          C.equal (Algorithms.Ktruss.dsl ~k gc)
            (Algorithms.Ktruss.nonblocking ~k gc))
        [ 3; 4 ])

let qcheck_bc_nonblocking =
  qtest "bc: blocking ≡ nonblocking (bit-identical)"
    (fun (n, m, seed) ->
      let adj, _ = digraph ~seed ~n ~m in
      let gc = C.of_smatrix adj in
      C.equal (Algorithms.Bc.dsl gc ~src:0) (Algorithms.Bc.nonblocking gc ~src:0))

(* ---- qcheck: parallel-twin bit-identity across grains ---- *)

(* Force a specific chunk grain through the pool's grain hook (clamped
   to the legal [base, pow2_ceil n] band — small requests exercise the
   finest legal decomposition, large ones merge chunks), pin a 4-domain
   budget and a zero threshold so every kernel takes its parallel twin,
   and require bit-identity with the fully sequential run. *)
let with_forced_grain grain f =
  Pool.set_domains 4;
  Fun.protect
    ~finally:(fun () -> Pool.clear_domains_override ())
    (fun () ->
      Pool.with_grain_hook
        (fun ~n:_ ~base:_ -> Some grain)
        (fun () -> Pool.with_threshold 0 f))

let grain_case_gen =
  let open QCheck.Gen in
  graph_case_gen >>= fun g ->
  oneofl [ 1; 2; 3; 7; 16 ] >|= fun grain -> (g, grain)

let grain_case_arb =
  QCheck.make
    ~print:(fun ((n, m, seed), grain) ->
      Printf.sprintf "n=%d m=%d seed=%d grain=%d" n m seed grain)
    grain_case_gen

let qgrain name law = Helpers.qtest ~count:25 name grain_case_arb law

let qcheck_labelprop_parallel_twin =
  qgrain "labelprop: parallel twin bit-identical at every grain"
    (fun ((n, m, seed), grain) ->
      let gc = C.of_smatrix (sym_graph ~seed ~n ~m) in
      let seq, sr = Pool.with_threshold max_int (fun () -> Algorithms.Labelprop.dsl gc) in
      let par, pr = with_forced_grain grain (fun () -> Algorithms.Labelprop.dsl gc) in
      sr = pr && C.equal seq par)

let qcheck_ktruss_parallel_twin =
  qgrain "ktruss: parallel twin bit-identical at every grain"
    (fun ((n, m, seed), grain) ->
      let gc = C.of_smatrix (sym_graph ~seed ~n ~m) in
      let seq = Pool.with_threshold max_int (fun () -> Algorithms.Ktruss.dsl ~k:3 gc) in
      let par = with_forced_grain grain (fun () -> Algorithms.Ktruss.dsl ~k:3 gc) in
      C.equal seq par)

let qcheck_bc_parallel_twin =
  qgrain "bc: parallel twin bit-identical at every grain"
    (fun ((n, m, seed), grain) ->
      let adj, _ = digraph ~seed ~n ~m in
      let gc = C.of_smatrix adj in
      let seq = Pool.with_threshold max_int (fun () -> Algorithms.Bc.dsl gc ~src:0) in
      let par = with_forced_grain grain (fun () -> Algorithms.Bc.dsl gc ~src:0) in
      C.equal seq par)

(* ---- chaos: one OGB_FAULTS spec per workload ---- *)

(* Faults may only show up in the resilience counters: the nonblocking
   run under an armed spec must be bit-identical to the clean blocking
   result.  Scheduler faults need a multi-domain scheduler; the pool
   fault needs pool workers plus a zero threshold to reach the chunked
   twins at these sizes. *)
let with_chaos spec f =
  (match Fault.arm_spec spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad chaos spec %S: %s" spec e);
  Exec.Scheduler.set_domains 2;
  Pool.set_domains 4;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Pool.clear_domains_override ();
      Exec.Scheduler.clear_domains_override ())
    (fun () -> Pool.with_threshold 0 f)

let test_labelprop_chaos () =
  let gc = C.of_smatrix (sym_graph ~seed:111 ~n:24 ~m:60) in
  let clean, rounds = Algorithms.Labelprop.dsl gc in
  let chaos, chaos_rounds =
    with_chaos "sched.worker.exn=p0.4,seed=11" (fun () ->
        Algorithms.Labelprop.nonblocking gc)
  in
  Alcotest.(check int) "round counts identical" rounds chaos_rounds;
  Alcotest.(check bool) "labels identical under worker exceptions" true
    (C.equal clean chaos)

let test_ktruss_chaos () =
  let gc = C.of_smatrix (sym_graph ~seed:112 ~n:20 ~m:70) in
  let clean = Algorithms.Ktruss.dsl ~k:3 gc in
  let chaos =
    with_chaos "sched.worker.slow=p0.5,seed=5" (fun () ->
        Algorithms.Ktruss.nonblocking ~k:3 gc)
  in
  Alcotest.(check bool) "truss identical under slow workers" true
    (C.equal clean chaos)

let test_bc_chaos () =
  let adj, _ = digraph ~seed:113 ~n:24 ~m:70 in
  let gc = C.of_smatrix adj in
  let clean = Algorithms.Bc.dsl gc ~src:0 in
  let chaos =
    with_chaos "par.worker.exn=p0.3,seed=7" (fun () ->
        Algorithms.Bc.nonblocking gc ~src:0)
  in
  Alcotest.(check bool) "centrality identical under pool faults" true
    (C.equal clean chaos)

let suite =
  [ Alcotest.test_case "labelprop: tiers agree" `Quick
      test_labelprop_tiers_agree;
    Alcotest.test_case "labelprop: two cliques" `Quick
      test_labelprop_two_cliques;
    Alcotest.test_case "labelprop: isolated vertices" `Quick
      test_labelprop_isolated_keep_labels;
    Alcotest.test_case "ktruss: tiers agree" `Quick test_ktruss_tiers_agree;
    Alcotest.test_case "ktruss: two triangles" `Quick
      test_ktruss_two_triangles;
    Alcotest.test_case "bc: single source vs Brandes" `Quick
      test_bc_single_source_against_brandes;
    Alcotest.test_case "bc: tiers agree" `Quick test_bc_tiers_agree;
    Alcotest.test_case "bc: single vs batched" `Quick
      test_bc_single_vs_batched;
    Helpers.to_alcotest qcheck_labelprop_nonblocking;
    Helpers.to_alcotest qcheck_ktruss_nonblocking;
    Helpers.to_alcotest qcheck_bc_nonblocking;
    Helpers.to_alcotest qcheck_labelprop_parallel_twin;
    Helpers.to_alcotest qcheck_ktruss_parallel_twin;
    Helpers.to_alcotest qcheck_bc_parallel_twin;
    Alcotest.test_case "chaos: labelprop under sched.worker.exn" `Quick
      test_labelprop_chaos;
    Alcotest.test_case "chaos: ktruss under sched.worker.slow" `Quick
      test_ktruss_chaos;
    Alcotest.test_case "chaos: bc under par.worker.exn" `Quick test_bc_chaos ]
