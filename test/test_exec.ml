(* Nonblocking execution engine: equivalence with the blocking
   evaluator on random expression trees (bit-identical containers), plus
   unit tests for the plan rewrites (CSE, apply-chain fusion,
   apply-over-ewise, mult-reduce, transpose sinking, mask push-down) on
   hand-built expressions, and the domain-pool scheduler. *)

open Gbtl

let f64 = Dtype.FP64

let leaves_of_models models =
  Array.map
    (fun m -> Ogb.Container.of_svector (Dense_ref.svector_of_vec f64 m))
    models

(* -- property: Nonblocking ≡ Blocking on random trees -- *)

let qcheck_equivalence =
  Helpers.qtest ~count:300 "nonblocking matches blocking bit-for-bit"
    (QCheck.make Test_expr_random.case_gen ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves = leaves_of_models leaf_models in
      let expr = Test_expr_random.to_expr leaves e in
      let blocking = Ogb.Expr.force_blocking expr in
      let nonblocking = Exec.force expr in
      Ogb.Container.equal blocking nonblocking)

let qcheck_equivalence_via_hook =
  Helpers.qtest ~count:150 "Expr.force diverts through the mode hook"
    (QCheck.make Test_expr_random.case_gen ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves = leaves_of_models leaf_models in
      let expr = Test_expr_random.to_expr leaves e in
      let blocking = Ogb.Expr.force_blocking expr in
      let nonblocking =
        Exec.with_mode Exec.Nonblocking (fun () -> Ogb.Expr.force expr)
      in
      Ogb.Container.equal blocking nonblocking)

let qcheck_equivalence_unfused =
  Helpers.qtest ~count:150 "equivalence holds with fusion disabled"
    (QCheck.make Test_expr_random.case_gen ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves = leaves_of_models leaf_models in
      let expr = Test_expr_random.to_expr leaves e in
      Ogb.Expr.set_fusion false;
      Fun.protect
        ~finally:(fun () -> Ogb.Expr.set_fusion true)
        (fun () ->
          Ogb.Container.equal
            (Ogb.Expr.force_blocking expr)
            (Exec.force expr)))

let qcheck_reduce_equivalence =
  Helpers.qtest ~count:200 "scalar reduction matches blocking bit-for-bit"
    (QCheck.make Test_expr_random.case_gen ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves = leaves_of_models leaf_models in
      let expr = Test_expr_random.to_expr leaves e in
      let blocking =
        Ogb.Expr.reduce_scalar_blocking ~op:"Plus" ~identity:"0" expr
      in
      let nonblocking = Exec.reduce ~op:"Plus" ~identity:"0" expr in
      Float.equal blocking nonblocking)

let qcheck_parallel_equivalence =
  Helpers.qtest ~count:100 "domain-pool execution matches blocking"
    (QCheck.make Test_expr_random.case_gen ~print:Test_expr_random.print_case)
    (fun (e, leaf_models) ->
      let leaves = leaves_of_models leaf_models in
      let expr = Test_expr_random.to_expr leaves e in
      let blocking = Ogb.Expr.force_blocking expr in
      Exec.Scheduler.set_domains 3;
      Fun.protect
        ~finally:(fun () -> Exec.Scheduler.clear_domains_override ())
        (fun () -> Ogb.Container.equal blocking (Exec.force expr)))

(* -- unit tests: rewrites on hand-built expressions -- *)

let vec_a () =
  Ogb.Container.of_svector
    (Dense_ref.svector_of_vec f64
       [| Some 1.; None; Some 2.; Some (-3.); None; Some 4. |])

let vec_b () =
  Ogb.Container.of_svector
    (Dense_ref.svector_of_vec f64
       [| None; Some 5.; Some (-1.); None; Some 2.; Some 0.5 |])

let mat_a () = Lazy.force Test_expr_random.fixed_matrix_cont

let with_plus f = Ogb.Context.with_ops [ Ogb.Context.binary "Plus" ] f
let with_times f = Ogb.Context.with_ops [ Ogb.Context.binary "Times" ] f

let count_ops plan pred =
  List.fold_left
    (fun acc id ->
      if pred (Exec.Plan.node plan id).Exec.Plan.op then acc + 1 else acc)
    0
    (Exec.Plan.topo plan)

let test_cse () =
  let a = vec_a () and b = vec_b () in
  let s = with_plus (fun () -> Ogb.Expr.add (Ogb.Expr.of_container a) (Ogb.Expr.of_container b)) in
  let e = with_times (fun () -> Ogb.Expr.mult s s) in
  let plan = Exec.plan_force e in
  Alcotest.(check int) "shared subtree lowers once" 4 (Exec.Plan.size plan);
  Alcotest.(check bool) "cse recorded" true (Exec.Plan.cse_merged plan >= 1);
  let root = Exec.Plan.root plan in
  Alcotest.(check bool) "root consumes the shared node twice" true
    (root.Exec.Plan.deps.(0) = root.Exec.Plan.deps.(1))

let test_apply_chain_fusion () =
  let a = vec_a () in
  let e =
    Ogb.Expr.apply ~f:(Jit.Op_spec.Named "AdditiveInverse")
      (Ogb.Expr.apply ~f:(Jit.Op_spec.Named "Identity")
         (Ogb.Expr.of_container a))
  in
  let plan = Exec.plan_force e in
  Alcotest.(check int) "two applies collapse to one node" 2
    (Exec.Plan.size plan);
  match (Exec.Plan.root plan).Exec.Plan.op with
  | Exec.Plan.ApplyChain { chain; transpose = false } ->
    Alcotest.(check (list string))
      "chain is innermost-first"
      [ "Identity"; "AdditiveInverse" ]
      (List.map Jit.Op_spec.unary_name chain)
  | op -> Alcotest.failf "expected ApplyChain, got %s" (Exec.Plan.op_label op)

let test_apply_ewise_fusion () =
  let a = vec_a () and b = vec_b () in
  let e =
    Ogb.Expr.apply ~f:(Jit.Op_spec.Named "AdditiveInverse")
      (with_plus (fun () ->
           Ogb.Expr.add (Ogb.Expr.of_container a) (Ogb.Expr.of_container b)))
  in
  let plan = Exec.plan_force e in
  Alcotest.(check int) "apply folds into the ewise node" 3
    (Exec.Plan.size plan);
  match (Exec.Plan.root plan).Exec.Plan.op with
  | Exec.Plan.EwiseApply { kind = `Add; op = "Plus"; chain = [ f ] } ->
    Alcotest.(check string) "chain" "AdditiveInverse" (Jit.Op_spec.unary_name f)
  | op -> Alcotest.failf "expected EwiseApply, got %s" (Exec.Plan.op_label op)

let test_mult_reduce_fusion () =
  let a = vec_a () and b = vec_b () in
  let e =
    with_times (fun () ->
        Ogb.Expr.mult (Ogb.Expr.of_container a) (Ogb.Expr.of_container b))
  in
  let plan = Exec.plan_reduce ~op:"Plus" ~identity:"0" e in
  Alcotest.(check int) "reduce folds into the mult node" 3
    (Exec.Plan.size plan);
  match (Exec.Plan.root plan).Exec.Plan.op with
  | Exec.Plan.EwiseMultReduce { op = "Times"; monoid_op = "Plus"; identity = "0" }
    ->
    ()
  | op ->
    Alcotest.failf "expected EwiseMultReduce, got %s" (Exec.Plan.op_label op)

let test_transpose_sink () =
  let a = mat_a () and x = vec_a () in
  let e =
    Ogb.Expr.matmul
      (Ogb.Expr.transpose (Ogb.Expr.of_container a))
      (Ogb.Expr.of_container x)
  in
  let plan = Exec.plan_force e in
  Alcotest.(check int) "transpose absorbed into the matmul flag" 0
    (count_ops plan (function Exec.Plan.Transpose -> true | _ -> false));
  (match (Exec.Plan.root plan).Exec.Plan.op with
  | Exec.Plan.MatMul { transpose_a = true; transpose_b = false; _ } -> ()
  | op -> Alcotest.failf "expected MatMul[Ta], got %s" (Exec.Plan.op_label op));
  (* double transpose cancels entirely *)
  let e2 =
    Ogb.Expr.matmul
      (Ogb.Expr.transpose (Ogb.Expr.transpose (Ogb.Expr.of_container a)))
      (Ogb.Expr.of_container x)
  in
  let plan2 = Exec.plan_force e2 in
  Alcotest.(check int) "double transpose erased" 0
    (count_ops plan2 (function Exec.Plan.Transpose -> true | _ -> false));
  match (Exec.Plan.root plan2).Exec.Plan.op with
  | Exec.Plan.MatMul { transpose_a = false; _ } -> ()
  | op -> Alcotest.failf "expected MatMul, got %s" (Exec.Plan.op_label op)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_select_layout () =
  let a = mat_a () and x = vec_a () in
  let e =
    Ogb.Expr.matmul
      (Ogb.Expr.transpose (Ogb.Expr.of_container a))
      (Ogb.Expr.of_container x)
  in
  let plan = Exec.plan_force e in
  (match (Exec.Plan.root plan).Exec.Plan.op with
  | Exec.Plan.MatMul { layout = Exec.Plan.L_csc_push; _ } ->
    (* the leaf vector has 6 slots (< 32), so the kernel will push *)
    ()
  | op ->
    Alcotest.failf "expected csc push layout, got %s" (Exec.Plan.op_label op));
  Alcotest.(check bool) "csc_dispatch event recorded" true
    (List.mem_assoc "csc_dispatch" (Exec.Plan.events plan));
  Alcotest.(check bool) "dir_push event recorded" true
    (List.mem_assoc "dir_push" (Exec.Plan.events plan));
  Alcotest.(check bool) "plan dump shows the CSC dispatch" true
    (contains_sub (Exec.Plan.to_string plan) "[a:csc]");
  (* with the format layer off the annotation never fires *)
  Format_stats.with_enabled false (fun () ->
      let plan = Exec.plan_force e in
      match (Exec.Plan.root plan).Exec.Plan.op with
      | Exec.Plan.MatMul { layout = Exec.Plan.L_default; _ } -> ()
      | op ->
        Alcotest.failf "expected default layout, got %s"
          (Exec.Plan.op_label op))

let test_mask_push () =
  let a = mat_a () in
  let spec = { Ogb.Expr.container = a; complemented = false } in
  let e =
    Ogb.Expr.matmul (Ogb.Expr.of_container a)
      (Ogb.Expr.transpose (Ogb.Expr.of_container a))
  in
  let plan = Exec.plan_force ~mask:spec e in
  (match (Exec.Plan.root plan).Exec.Plan.op with
  | Exec.Plan.MatMul { masked = Some m; transpose_b = true; _ } ->
    Alcotest.(check bool) "mask container preserved" true
      (m.Ogb.Expr.container == a)
  | op ->
    Alcotest.failf "expected masked MatMul[Tb], got %s" (Exec.Plan.op_label op));
  Alcotest.(check bool) "sink mask consumed" true (plan.Exec.Plan.sink_mask = None);
  (* a vector-result matmul keeps the mask at the sink, like blocking *)
  let ev =
    Ogb.Expr.matmul (Ogb.Expr.of_container a)
      (Ogb.Expr.of_container (vec_a ()))
  in
  let planv = Exec.plan_force ~mask:spec ev in
  match (Exec.Plan.root planv).Exec.Plan.op with
  | Exec.Plan.MatMul { masked = None; _ } -> ()
  | op -> Alcotest.failf "expected unmasked MatMul, got %s" (Exec.Plan.op_label op)

let test_ops_set_routing () =
  let a = mat_a () in
  let target_b = Ogb.Container.dup a and target_nb = Ogb.Container.dup a in
  let expr () =
    let open Ogb.Ops.Infix in
    !!a @. tr !!a
  in
  Ogb.Ops.set ~mask:(Ogb.Ops.Mask a) target_b (expr ());
  Exec.with_mode Exec.Nonblocking (fun () ->
      Ogb.Ops.set ~mask:(Ogb.Ops.Mask a) target_nb (expr ()));
  Alcotest.(check bool) "masked matmul assignment identical" true
    (Ogb.Container.equal target_b target_nb)

let test_trace () =
  (* asserts exact per-node trace bookkeeping, which a globally armed
     chaos spec (OGB_FAULTS worker faults) legitimately perturbs *)
  Fault.suspended @@ fun () ->
  let a = vec_a () and b = vec_b () in
  let e =
    Ogb.Expr.apply ~f:(Jit.Op_spec.Named "AdditiveInverse")
      (with_plus (fun () ->
           Ogb.Expr.add (Ogb.Expr.of_container a) (Ogb.Expr.of_container b)))
  in
  ignore (Exec.force e);
  match Exec.last_trace () with
  | None -> Alcotest.fail "no trace recorded"
  | Some t ->
    Alcotest.(check int) "one event per executed node" 3
      (List.length t.Exec.Trace.nodes);
    Alcotest.(check bool) "apply_ewise rewrite recorded" true
      (List.mem_assoc "apply_ewise" t.Exec.Trace.rewrites);
    Alcotest.(check bool) "kernel lookups attributed" true
      (t.Exec.Trace.lookups >= 1)

let test_sequential_fallback () =
  Exec.Scheduler.clear_domains_override ();
  Ogb.Exec_hook.with_sequential (fun () ->
      Alcotest.(check int) "MiniVM guard forces one domain" 1
        (Exec.Scheduler.domain_count ()))

let suite =
  [ Helpers.to_alcotest qcheck_equivalence;
    Helpers.to_alcotest qcheck_equivalence_via_hook;
    Helpers.to_alcotest qcheck_equivalence_unfused;
    Helpers.to_alcotest qcheck_reduce_equivalence;
    Helpers.to_alcotest qcheck_parallel_equivalence;
    Alcotest.test_case "CSE shares structurally equal subtrees" `Quick test_cse;
    Alcotest.test_case "apply chains fuse to one kernel" `Quick
      test_apply_chain_fusion;
    Alcotest.test_case "apply over ewise fuses to one kernel" `Quick
      test_apply_ewise_fusion;
    Alcotest.test_case "mult feeding reduce fuses to one pass" `Quick
      test_mult_reduce_fusion;
    Alcotest.test_case "transposes sink into kernel flags" `Quick
      test_transpose_sink;
    Alcotest.test_case "sink mask pushes into the root matmul" `Quick
      test_mask_push;
    Alcotest.test_case "transposed mxv annotated with CSC dispatch" `Quick
      test_select_layout;
    Alcotest.test_case "Ops.set routes through the engine" `Quick
      test_ops_set_routing;
    Alcotest.test_case "execution trace records nodes and rewrites" `Quick
      test_trace;
    Alcotest.test_case "sequential fallback under the VM guard" `Quick
      test_sequential_fallback;
  ]
