(* Server suite: the daemon's in-process core driven from concurrent
   domains — shared JIT cache across sessions (bit-identical results,
   no duplicate compiles), operator-context isolation between sessions,
   request batching, admission shed, the serve.* fault containment
   points, the wire codec, and one real socket round trip. *)

open Gbtl
module Pool = Parallel.Pool
module J = Server.Json
module D = Server.Daemon

let f64 = Dtype.FP64

(* Fresh cache + closure backend (fast deterministic compiles), restored
   afterwards; stats reset so compile counters start at zero. *)
let with_fresh_jit f =
  let saved_dir = Jit.Disk_cache.dir () in
  let saved_backend = Jit.Dispatch.backend () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-serve-test-%d-%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Jit.Disk_cache.set_dir dir;
  Jit.Dispatch.set_backend Jit.Dispatch.Closure;
  Jit.Dispatch.clear_memory_cache ();
  Jit.Jit_stats.reset ();
  Fun.protect
    ~finally:(fun () ->
      Jit.Disk_cache.clear ();
      Jit.Disk_cache.set_dir saved_dir;
      Jit.Dispatch.set_backend saved_backend;
      Jit.Dispatch.clear_memory_cache ();
      Jit.Jit_stats.reset ())
    f

let with_domains n f =
  Pool.set_domains n;
  Fun.protect ~finally:Pool.clear_domains_override f

let mk_state ?(warm = false) ?(window = 0.0) ?(budget = 4) () =
  D.create_state
    { D.sock_path = "/tmp/ogb-serve-test-unused.sock";
      tcp_addr = None;
      workers = 2;
      queue_cap = 16;
      session_budget = budget;
      batch_window = window;
      warm_n = 32;
      warm }

let handle st sess s = D.handle st sess (J.parse s)

let status resp =
  match J.str_field "status" resp with Some s -> s | None -> "?"

let check_ok what resp =
  if status resp <> "ok" then
    Alcotest.failf "%s: expected ok, got %s" what (J.to_string resp)

let result_of resp =
  match J.member "result" resp with
  | Some r -> J.to_string r
  | None -> (
    match J.member "value" resp with
    | Some v -> J.to_string v
    | None -> Alcotest.failf "no result in %s" (J.to_string resp))

(* ---- json codec ---- *)

let test_json_roundtrip () =
  let cases =
    [ "{\"op\": \"ping\", \"id\": 3}";
      "{\"a\": [1, 2.5, -3], \"b\": {\"c\": true, \"d\": null}}";
      "{\"s\": \"line\\nbreak \\\"quoted\\\"\"}";
      "[]";
      "{\"neg\": -0.125, \"big\": 1e6}" ]
  in
  List.iter
    (fun s ->
      let once = J.to_string (J.parse s) in
      let twice = J.to_string (J.parse once) in
      Alcotest.(check string) ("stable: " ^ s) once twice)
    cases;
  (match J.parse "{\"x\": 1}" with
  | J.Obj [ ("x", J.Num 1.0) ] -> ()
  | j -> Alcotest.failf "unexpected parse %s" (J.to_string j));
  List.iter
    (fun bad ->
      match J.parse bad with
      | exception J.Parse_error _ -> ()
      | j -> Alcotest.failf "accepted %S as %s" bad (J.to_string j))
    [ "{"; "{\"a\" 1}"; "tru"; "{\"a\": 1} extra" ]

(* ---- wire framing over a real socketpair ---- *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = Server.Wire.conn a and cb = Server.Wire.conn b in
  (match Server.Wire.send_line ca "{\"op\": \"ping\"}" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send failed: %s" e);
  ignore (Server.Wire.send_line ca "second");
  (match Server.Wire.recv_line cb with
  | `Line l -> Alcotest.(check string) "first line" "{\"op\": \"ping\"}" l
  | _ -> Alcotest.fail "expected first line");
  (match Server.Wire.recv_line cb with
  | `Line l -> Alcotest.(check string) "second line" "second" l
  | _ -> Alcotest.fail "expected second line");
  (match Server.Wire.recv_line ~timeout_s:0.05 cb with
  | `Timeout -> ()
  | _ -> Alcotest.fail "expected timeout on idle socket");
  (* a final unterminated line is still delivered before EOF *)
  let partial = Bytes.of_string "tail-no-newline" in
  ignore (Unix.write a partial 0 (Bytes.length partial));
  Unix.close a;
  (match Server.Wire.recv_line cb with
  | `Line l -> Alcotest.(check string) "partial tail" "tail-no-newline" l
  | _ -> Alcotest.fail "expected trailing partial line");
  (match Server.Wire.recv_line cb with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected EOF");
  (* writing to a closed peer reports an error instead of raising *)
  Server.Wire.ignore_sigpipe ();
  (match Server.Wire.send_line cb "into the void" with
  | Ok () | Error _ -> ());
  (match Server.Wire.send_line cb "definitely gone" with
  | Error _ -> ()
  | Ok () -> ());
  Unix.close b

(* ---- admission queue ---- *)

let test_admission () =
  let module Q = Server.Admission in
  let q = Q.create ~cap:2 in
  Alcotest.(check bool) "offer 1" true (Q.offer q 1);
  Alcotest.(check bool) "offer 2" true (Q.offer q 2);
  Alcotest.(check bool) "offer 3 sheds" false (Q.offer q 3);
  Alcotest.(check int) "depth" 2 (Q.depth q);
  Alcotest.(check (option int)) "take 1" (Some 1) (Q.take q);
  Alcotest.(check bool) "offer 4 after drain" true (Q.offer q 4);
  Alcotest.(check (option int)) "take 2" (Some 2) (Q.take q);
  Alcotest.(check (option int)) "take 4" (Some 4) (Q.take q);
  (* a blocked taker wakes with None on close *)
  let got = Atomic.make (Some 99) in
  let d = Domain.spawn (fun () -> Atomic.set got (Q.take q)) in
  Unix.sleepf 0.05;
  Q.close q;
  Domain.join d;
  Alcotest.(check (option int)) "closed take" None (Atomic.get got);
  Alcotest.(check bool) "offer after close sheds" false (Q.offer q 5);
  let shed = List.assoc "shed" (Q.counters q) in
  Alcotest.(check int) "shed counter" 2 shed

(* ---- registry ---- *)

let test_registry () =
  let r = Server.Registry.create () in
  (match Server.Registry.load r ~name:"g" ~spec:"path:n=8" ~symmetrize:false with
  | Ok m -> Alcotest.(check int) "vertices" 8 (Smatrix.nrows m)
  | Error e -> Alcotest.fail e);
  (match Server.Registry.load r ~name:"g" ~spec:"path:n=4" ~symmetrize:false with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rebinding a live graph name must be refused");
  (match Server.Registry.load r ~name:"bad" ~spec:"zzz:n=4" ~symmetrize:false with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown generator must error");
  Alcotest.(check int) "one graph" 1 (List.length (Server.Registry.names r))

(* ---- multi-session shared cache: bit-identity + no duplicate compiles ---- *)

let mixed_requests =
  [ "{\"op\": \"mxv\", \"graph\": \"g\", \"vector\": \"ones\"}";
    "{\"op\": \"vxm\", \"graph\": \"g\", \"vector\": \"ones\"}";
    "{\"op\": \"mxv\", \"graph\": \"g\", \"vector\": \"ones\", \
     \"transpose\": true}";
    "{\"op\": \"run\", \"algo\": \"bfs\", \"tier\": \"vm\", \"graph\": \
     \"g\", \"src\": 0}";
    "{\"op\": \"run\", \"algo\": \"pagerank\", \"tier\": \"vm\", \"graph\": \
     \"g\"}" ]

let test_shared_cache_sessions () =
  Fault.suspended @@ fun () ->
  with_fresh_jit @@ fun () ->
  with_domains 4 @@ fun () ->
  let st = mk_state () in
  let loader = Server.Session.create () in
  check_ok "load"
    (handle st loader
       "{\"op\": \"load\", \"name\": \"g\", \"graph\": \"er:n=128\", \
        \"symmetrize\": true}");
  (* cold phase: 4 concurrent sessions, mixed signatures, one shared
     dispatch table *)
  let run_all () =
    List.map (fun r -> result_of (handle st (Server.Session.create ()) r))
      mixed_requests
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn run_all) in
  let concurrent = Array.map Domain.join doms in
  let compiles_cold = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.compiles in
  Alcotest.(check bool) "cold phase compiled something" true
    (compiles_cold > 0);
  (* warm phase: a fresh single session finds everything cached *)
  let sequential = run_all () in
  let compiles_warm = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.compiles in
  Alcotest.(check int) "no duplicate compiles after concurrent warm"
    compiles_cold compiles_warm;
  (* bit-identical results: every session of the concurrent fan-out
     matches the sequential single-session reference *)
  Array.iteri
    (fun d results ->
      List.iteri
        (fun i (seq, conc) ->
          Alcotest.(check string)
            (Printf.sprintf "session %d request %d" d i)
            seq conc)
        (List.combine sequential results))
    concurrent;
  let hits = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.memory_hits in
  Alcotest.(check bool) "shared memory cache hit" true (hits > 0)

(* ---- operator-context isolation between sessions ---- *)

let test_context_isolation () =
  Fault.suspended @@ fun () ->
  with_fresh_jit @@ fun () ->
  let st = mk_state () in
  let a = Server.Session.create () and b = Server.Session.create () in
  check_ok "load"
    (handle st a
       "{\"op\": \"load\", \"name\": \"k\", \"graph\": \"complete:n=16\"}");
  check_ok "push"
    (handle st a
       "{\"op\": \"context\", \"action\": \"push\", \"entry\": {\"kind\": \
        \"semiring\", \"name\": \"MinPlus\"}}");
  let mxv = "{\"op\": \"mxv\", \"graph\": \"k\", \"vector\": \"ones\"}" in
  let ra = handle st a mxv and rb = handle st b mxv in
  check_ok "mxv A" ra;
  check_ok "mxv B" rb;
  (* A computes under MinPlus (min over 1+1 = 2), B under the default
     Arithmetic (row sums = 15) — B must not see A's context *)
  Alcotest.(check bool) "different semirings, different results" true
    (result_of ra <> result_of rb);
  let expected_b =
    Entries.to_alist
      (Jit.Kernels.mxv f64 Jit.Op_spec.arithmetic ~transpose:false
         (match Server.Registry.find (D.registry st) "k" with
         | Some m -> m
         | None -> Alcotest.fail "graph lost")
         (Svector.of_dense f64 (Array.make 16 1.0)))
  in
  List.iter2
    (fun (i, x) (i', x') ->
      Alcotest.(check int) "idx" i i';
      Alcotest.(check (float 0.0)) "val" x x')
    expected_b
    (match J.member "result" rb with
    | Some (J.Arr l) ->
      List.map
        (fun e ->
          match e with
          | J.Arr [ J.Num i; J.Num x ] -> (int_of_float i, x)
          | _ -> Alcotest.fail "bad entry")
        l
    | _ -> Alcotest.fail "no result");
  (* the context survives across A's requests, stays at depth 1, and
     B's stack is empty *)
  let depth sess =
    match
      J.member "context_depth" (handle st sess "{\"op\": \"session\"}")
    with
    | Some (J.Num d) -> int_of_float d
    | _ -> Alcotest.fail "no context_depth"
  in
  Alcotest.(check int) "A depth" 1 (depth a);
  Alcotest.(check int) "B depth" 0 (depth b);
  check_ok "pop"
    (handle st a "{\"op\": \"context\", \"action\": \"pop\"}");
  Alcotest.(check int) "A depth after pop" 0 (depth a)

(* ---- request batching ---- *)

let test_batching () =
  Fault.suspended @@ fun () ->
  with_fresh_jit @@ fun () ->
  with_domains 4 @@ fun () ->
  let m =
    Graphs.Convert.matrix_of_edges f64
      (Graphs.Edge_list.symmetrize
         (Graphs.Generators.erdos_renyi_paper
            (Graphs.Rng.create ~seed:7) ~nvertices:128))
  in
  let sr = Jit.Op_spec.arithmetic in
  let u = Svector.of_dense f64 (Array.make 128 1.0) in
  let expected =
    Entries.to_alist (Jit.Kernels.mxv f64 sr ~transpose:false m u)
  in
  let bat = Server.Batcher.create ~window_s:0.3 () in
  let key = Server.Batcher.key_of ~op:`Mxv ~graph:"g" ~transpose:false ~sr ~u in
  let doms =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () -> Server.Batcher.run bat key ~sr ~m u))
  in
  let results = Array.map Domain.join doms in
  Array.iter
    (fun r ->
      match r with
      | Ok entries ->
        Alcotest.(check int) "same length" (List.length expected)
          (List.length entries);
        List.iter2
          (fun (i, x) (i', x') ->
            Alcotest.(check int) "idx" i i';
            Alcotest.(check (float 0.0)) "val" x x')
          expected entries
      | Error e -> Alcotest.fail e)
    results;
  let c = Server.Batcher.counters bat in
  Alcotest.(check bool) "requests coalesced" true
    (List.assoc "batched" c >= 2);
  Alcotest.(check bool) "fused dispatch happened" true
    (List.assoc "batches" c >= 1)

(* ---- update op: malformed coordinates are rejected, not truncated ---- *)

let test_update_rejects_fractional_coords () =
  with_fresh_jit @@ fun () ->
  let st = mk_state () in
  let sess = Server.Session.create () in
  check_ok "load"
    (handle st sess
       "{\"op\": \"load\", \"name\": \"g\", \"graph\": \"path:n=8\"}");
  (* int_of_float would have turned [1.7, 2.3] into edge (1, 2) *)
  let r =
    handle st sess
      "{\"op\": \"update\", \"name\": \"g\", \"edges\": [[1.7, 2.3, 1.0]]}"
  in
  Alcotest.(check string) "fractional coordinates rejected" "error" (status r);
  let r =
    handle st sess
      "{\"op\": \"update\", \"name\": \"g\", \"edges\": [[1, 2.5]]}"
  in
  Alcotest.(check string) "fractional delete rejected" "error" (status r);
  check_ok "integral coordinates accepted"
    (handle st sess
       "{\"op\": \"update\", \"name\": \"g\", \"edges\": [[1, 3, 1.0]]}")

(* ---- fault containment: serve.session.exn ---- *)

let test_session_exn_containment () =
  with_fresh_jit @@ fun () ->
  Fault.disarm ();
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let st = mk_state () in
  let sess = Server.Session.create () in
  Fault.arm [ ("serve.session.exn", Fault.Once) ];
  let r1 = handle st sess "{\"op\": \"ping\", \"id\": 1}" in
  Alcotest.(check string) "killed request errors" "error" (status r1);
  (match J.member "fatal" r1 with
  | Some (J.Bool true) -> ()
  | _ -> Alcotest.fail "session kill must be marked fatal");
  Alcotest.(check int) "session_kills counted" 1
    (List.assoc "session_kills" (D.serve_counters st));
  (* the daemon (state) survives: a fresh session works *)
  let r2 = handle st (Server.Session.create ()) "{\"op\": \"ping\", \"id\": 2}" in
  Alcotest.(check string) "next session fine" "ok" (status r2)

(* ---- fault containment: serve.batch.partial ---- *)

let test_batch_partial_containment () =
  with_fresh_jit @@ fun () ->
  with_domains 4 @@ fun () ->
  Fault.disarm ();
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let m =
    Graphs.Convert.matrix_of_edges f64 (Graphs.Generators.complete 64)
  in
  let sr = Jit.Op_spec.arithmetic in
  let u = Svector.of_dense f64 (Array.make 64 1.0) in
  let expected =
    Fault.suspended (fun () ->
        Entries.to_alist (Jit.Kernels.mxv f64 sr ~transpose:false m u))
  in
  let bat = Server.Batcher.create ~window_s:0.3 () in
  let key = Server.Batcher.key_of ~op:`Mxv ~graph:"g" ~transpose:false ~sr ~u in
  Fault.arm [ ("serve.batch.partial", Fault.Once) ];
  let doms =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () -> Server.Batcher.run bat key ~sr ~m u))
  in
  let results = Array.to_list (Array.map Domain.join doms) in
  let oks = List.filter Result.is_ok results in
  let errs = List.filter Result.is_error results in
  Alcotest.(check int) "exactly one member degraded" 1 (List.length errs);
  Alcotest.(check int) "the rest completed" 2 (List.length oks);
  List.iter
    (fun r ->
      match r with
      | Ok entries ->
        List.iter2
          (fun (i, x) (i', x') ->
            Alcotest.(check int) "idx" i i';
            Alcotest.(check (float 0.0)) "val" x x')
          expected entries
      | Error _ -> ())
    oks;
  Alcotest.(check int) "partial failure counted" 1
    (List.assoc "partial_failures" (Server.Batcher.counters bat))

(* ---- doctor --json / health body ---- *)

let test_health_json () =
  Fault.suspended @@ fun () ->
  let report = Jit.Health.collect ~probe:false () in
  let j = J.parse (Jit.Health.to_json report) in
  (match J.member "verdict" j with
  | Some (J.Str ("healthy" | "degraded" | "failed")) -> ()
  | _ -> Alcotest.fail "verdict missing from doctor json");
  (match J.member "stats" j with
  | Some (J.Obj kvs) ->
    Alcotest.(check bool) "stats.compiles present" true
      (List.mem_assoc "compiles" kvs)
  | _ -> Alcotest.fail "stats missing from doctor json");
  (* the server's health response embeds the same body *)
  with_fresh_jit @@ fun () ->
  let st = mk_state () in
  let resp = handle st (Server.Session.create ()) "{\"op\": \"health\", \"probe\": false}" in
  check_ok "health" resp;
  (match J.member "health" resp with
  | Some (J.Obj kvs) ->
    Alcotest.(check bool) "embedded cache section" true
      (List.mem_assoc "cache" kvs)
  | _ -> Alcotest.fail "health body not embedded");
  match J.member "serve" resp with
  | Some (J.Obj kvs) ->
    Alcotest.(check bool) "serve counters present" true
      (List.mem_assoc "requests" kvs)
  | _ -> Alcotest.fail "serve counters missing"

(* ---- one real socket round trip ---- *)

let test_socket_end_to_end () =
  Fault.suspended @@ fun () ->
  with_fresh_jit @@ fun () ->
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-serve-test-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { D.sock_path = sock;
      tcp_addr = None;
      workers = 2;
      queue_cap = 8;
      session_budget = 2;
      batch_window = 0.0;
      warm_n = 32;
      warm = false }
  in
  match D.start cfg with
  | Error e -> Alcotest.fail e
  | Ok running ->
    Fun.protect
      ~finally:(fun () ->
        D.stop running;
        D.wait running)
      (fun () ->
        let c1 =
          match Server.Client.connect ~sock () with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        (match Server.Client.request c1 (J.parse "{\"op\": \"ping\"}") with
        | Ok r -> check_ok "ping over socket" r
        | Error e -> Alcotest.fail e);
        (match
           Server.Client.request c1
             (J.parse
                "{\"op\": \"load\", \"name\": \"p\", \"graph\": \"path:n=32\"}")
         with
        | Ok r -> check_ok "load over socket" r
        | Error e -> Alcotest.fail e);
        (* second client sees the first client's graph *)
        let c2 =
          match Server.Client.connect ~sock () with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        (match
           Server.Client.request c2
             (J.parse "{\"op\": \"mxv\", \"graph\": \"p\", \"vector\": \"ones\"}")
         with
        | Ok r -> check_ok "cross-session graph visible" r
        | Error e -> Alcotest.fail e);
        (* a client that ships half a request and vanishes must not
           hurt anyone *)
        let c3 =
          match Server.Client.connect ~sock () with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        ignore (Server.Client.send_raw c3 "{\"op\": \"pi");
        Server.Client.close c3;
        Unix.sleepf 0.05;
        (match
           Server.Client.request c1 (J.parse "{\"op\": \"health\", \"probe\": false}")
         with
        | Ok r ->
          check_ok "health after disconnect" r;
          (match J.member "healthy" r with
          | Some (J.Bool true) -> ()
          | _ -> Alcotest.fail "daemon not healthy after disconnect")
        | Error e -> Alcotest.fail e);
        Server.Client.close c1;
        Server.Client.close c2);
    Alcotest.(check bool) "socket file removed on shutdown" false
      (Sys.file_exists sock)

let suite =
  [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "wire framing" `Quick test_wire_roundtrip;
    Alcotest.test_case "admission queue" `Quick test_admission;
    Alcotest.test_case "graph registry" `Quick test_registry;
    Alcotest.test_case "shared cache across sessions" `Slow
      test_shared_cache_sessions;
    Alcotest.test_case "context isolation" `Quick test_context_isolation;
    Alcotest.test_case "request batching" `Quick test_batching;
    Alcotest.test_case "update rejects non-integral coordinates" `Quick
      test_update_rejects_fractional_coords;
    Alcotest.test_case "serve.session.exn containment" `Quick
      test_session_exn_containment;
    Alcotest.test_case "serve.batch.partial containment" `Quick
      test_batch_partial_containment;
    Alcotest.test_case "doctor/health json" `Quick test_health_json;
    Alcotest.test_case "socket end-to-end" `Slow test_socket_end_to_end ]
