(* Chaos suite: every injection point in lib/fault is driven through the
   real pipeline and the observable result must be identical to the
   blocking closure path — faults may only show up in the resilience
   counters.  Also unit-tests the injection modes, the hardened disk
   cache, the circuit breaker and the scheduler degradation ladder. *)

open Gbtl

let f64 = Dtype.FP64

(* Fresh cache + pristine resilience state, restored on exit whatever
   the test does to backends, breaker tuning or fault arming. *)
let with_resilience f =
  let saved_dir = Jit.Disk_cache.dir () in
  let saved_backend = Jit.Dispatch.backend () in
  let saved_timeout = Jit.Native_backend.compile_timeout () in
  let saved_retries = Jit.Native_backend.compile_retries () in
  let saved_threshold = Jit.Breaker.get_threshold () in
  let saved_cooldown = Jit.Breaker.get_cooldown () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-fault-test-%d-%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Jit.Disk_cache.set_dir dir;
  Jit.Dispatch.clear_memory_cache ();
  Jit.Jit_stats.reset ();
  Jit.Breaker.reset ();
  Fault.disarm ();
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Jit.Breaker.set_threshold saved_threshold;
      Jit.Breaker.set_cooldown saved_cooldown;
      Jit.Breaker.reset ();
      Jit.Native_backend.set_compile_timeout saved_timeout;
      Jit.Native_backend.set_compile_retries saved_retries;
      Jit.Disk_cache.clear ();
      Jit.Disk_cache.set_dir saved_dir;
      Jit.Dispatch.set_backend saved_backend;
      Jit.Dispatch.clear_memory_cache ();
      Jit.Jit_stats.reset ())
    f

let entry_list e = List.sort compare (Entries.to_alist e)

(* one whole-pipeline native-eligible kernel invocation *)
let run_mxv ?(spec = Jit.Op_spec.arithmetic) ?(transpose = false) () =
  let a = Smatrix.of_dense f64 [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let u = Svector.of_dense f64 [| 10.0; 100.0 |] in
  entry_list (Jit.Kernels.mxv f64 spec ~transpose a u)

let mxv_expected = [ (0, 210.0); (1, 430.0) ]
let mxv_expected_t = [ (0, 310.0); (1, 420.0) ]

let check_mxv name got =
  Alcotest.check Alcotest.(list (pair int (float 0.0))) name mxv_expected got

let check_mxv_t name got =
  Alcotest.check Alcotest.(list (pair int (float 0.0))) name mxv_expected_t got

let stats () = Jit.Jit_stats.snapshot ()

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* -- injection modes and spec parsing -- *)

let fire_seq point n = List.init n (fun _ -> Fault.fire point)

let test_modes () =
  with_resilience (fun () ->
      let p = "sched.worker.exn" in
      Alcotest.(check bool) "disarmed never fires" false
        (List.mem true (fire_seq p 5));
      Fault.arm [ (p, Fault.Once) ];
      Alcotest.(check (list bool)) "once" [ true; false; false ] (fire_seq p 3);
      Fault.arm [ (p, Fault.Times 2) ];
      Alcotest.(check (list bool)) "x2" [ true; true; false; false ]
        (fire_seq p 4);
      Fault.arm [ (p, Fault.After 2) ];
      Alcotest.(check (list bool)) "after2" [ false; false; true; true ]
        (fire_seq p 4);
      Fault.arm [ (p, Fault.Always) ];
      Alcotest.(check (list bool)) "always" [ true; true ] (fire_seq p 2);
      Alcotest.(check int) "attempts counted" 2 (Fault.attempts p);
      Alcotest.(check int) "fires counted" 2 (Fault.fired p);
      Fault.arm ~seed:3 [ (p, Fault.Prob 0.5) ];
      let s1 = fire_seq p 40 in
      Fault.arm ~seed:3 [ (p, Fault.Prob 0.5) ];
      let s2 = fire_seq p 40 in
      Alcotest.(check (list bool)) "seeded Prob is reproducible" s1 s2;
      let fired = List.length (List.filter Fun.id s1) in
      Alcotest.(check bool) "p0.5 fires sometimes, not always" true
        (fired > 0 && fired < 40);
      Alcotest.check_raises "unknown point rejected"
        (Invalid_argument "Fault: unknown injection point \"no.such.point\"")
        (fun () -> ignore (Fault.fire "no.such.point")))

let test_spec_parsing () =
  with_resilience (fun () ->
      (match
         Fault.arm_spec "native.compile.exit=once,sched.worker.exn=p0.25,seed=9"
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "valid spec rejected: %s" e);
      Alcotest.(check bool) "armed" true (Fault.armed ());
      let d = Fault.describe () in
      Alcotest.(check bool) "describe echoes the spec" true
        (String.length d > 0 && d <> "disarmed");
      let bad s =
        match Fault.arm_spec s with
        | Ok () -> Alcotest.failf "bad spec %S accepted" s
        | Error _ -> ()
      in
      bad "bogus.point=always";
      bad "native.compile.exit=zap";
      bad "native.compile.exit=p1.5";
      bad "native.compile.exit";
      bad "seed=xyz";
      (match Fault.arm_spec "" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "empty spec should disarm: %s" e);
      Alcotest.(check bool) "empty spec disarms" false (Fault.armed ()))

(* -- hardened disk cache -- *)

let test_atomic_store () =
  with_resilience (fun () ->
      (match Jit.Disk_cache.store_source "cafe01" "let x = 1\n" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store failed: %s" e);
      Alcotest.(check (option string)) "roundtrip" (Some "let x = 1\n")
        (Jit.Disk_cache.read_source "cafe01");
      let leftovers =
        Array.to_list (Sys.readdir (Jit.Disk_cache.dir ()))
        |> List.filter (fun f ->
               (* any temp-file residue means the write was not atomic *)
               List.exists
                 (fun part -> part = "tmp")
                 (String.split_on_char '.' f))
      in
      Alcotest.(check (list string)) "no temp files left" [] leftovers)

let test_mkdir_race () =
  with_resilience (fun () ->
      Fault.arm [ ("cache.mkdir.race", Fault.Always) ];
      (* every dir() call now re-runs mkdir on an existing directory;
         the EEXIST must be absorbed *)
      ignore (Jit.Disk_cache.dir ());
      ignore (Jit.Disk_cache.dir ());
      match Jit.Disk_cache.store_source "cafe02" "x" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store under mkdir race: %s" e)

let test_write_failures_contained () =
  with_resilience (fun () ->
      Fault.arm [ ("cache.write.eacces", Fault.Always) ];
      (match Jit.Disk_cache.store_source "cafe03" "x" with
      | Ok () -> Alcotest.fail "EACCES write should report an error"
      | Error _ -> ());
      Alcotest.(check int) "write failure counted" 1
        (stats ()).Jit.Jit_stats.cache_write_failures;
      (* the whole pipeline still answers correctly *)
      check_mxv "mxv under EACCES cache" (run_mxv ());
      Fault.arm [ ("cache.write.enospc", Fault.Always) ];
      check_mxv_t "mxv under ENOSPC cache" (run_mxv ~transpose:true ()))

let test_clear_sweeps_everything () =
  with_resilience (fun () ->
      let d = Jit.Disk_cache.dir () in
      write_raw (Filename.concat d "Kern_aa.ml") "x";
      write_raw (Filename.concat d "Kern_aa.stderr") "boom";
      write_raw (Filename.concat d "probe_1234.ml") "x";
      write_raw (Filename.concat d "orphan.stderr") "boom";
      write_raw (Filename.concat d "unrelated.txt") "keep";
      Jit.Disk_cache.clear ();
      let left = List.sort compare (Array.to_list (Sys.readdir d)) in
      Alcotest.(check (list string))
        "only non-cache files survive" [ "unrelated.txt" ] left)

let test_integrity_scan_flags_corruption () =
  with_resilience (fun () ->
      let hash = "feedface" in
      write_raw (Jit.Disk_cache.cmxs_path hash) "plugin-bytes";
      write_raw (Jit.Disk_cache.sum_path hash)
        "cmxs:00000000000000000000000000000000\n";
      (match Jit.Disk_cache.integrity_scan () with
      | [ (h, `Mismatch) ] ->
        Alcotest.(check string) "scan names the entry" hash h
      | scan -> Alcotest.failf "unexpected scan size %d" (List.length scan));
      let r = Jit.Health.collect ~probe:false () in
      Alcotest.(check int) "doctor counts the corrupt entry" 1 r.cache_mismatch;
      Alcotest.(check bool) "doctor verdict degraded" false
        (Jit.Health.healthy r);
      Alcotest.(check bool) "report renders" true
        (String.length (Jit.Health.to_string r) > 0))

(* -- native pipeline faults (skip when no toolchain) -- *)

let native_or_skip () =
  if not (Jit.Native_backend.available ()) then Alcotest.skip ()

let test_compile_exit_falls_back () =
  native_or_skip ();
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Native;
      Fault.arm [ ("native.compile.exit", Fault.Always) ];
      check_mxv "correct via closure fallback" (run_mxv ());
      let s = stats () in
      Alcotest.(check int) "native failure counted" 1 s.native_failures;
      Alcotest.(check int) "no native compile" 0 s.native_compiles;
      Alcotest.(check int) "closure compile served it" 1 s.compiles)

let test_signal_retried () =
  native_or_skip ();
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Native;
      Jit.Native_backend.set_compile_retries 1;
      Fault.arm [ ("native.compile.signal", Fault.Once) ];
      check_mxv "correct after one retry" (run_mxv ());
      let s = stats () in
      Alcotest.(check int) "retry counted" 1 s.compile_retries;
      Alcotest.(check int) "retry succeeded natively" 1 s.native_compiles;
      Alcotest.(check int) "no failure recorded" 0 s.native_failures)

let test_hang_timed_out_then_retried () =
  native_or_skip ();
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Native;
      Jit.Native_backend.set_compile_timeout 0.3;
      Jit.Native_backend.set_compile_retries 1;
      Fault.arm [ ("native.compile.hang", Fault.Once) ];
      let t0 = Unix.gettimeofday () in
      check_mxv "correct after killing the hung compiler" (run_mxv ());
      let elapsed = Unix.gettimeofday () -. t0 in
      let s = stats () in
      Alcotest.(check int) "timeout counted" 1 s.compile_timeouts;
      Alcotest.(check int) "retry counted" 1 s.compile_retries;
      Alcotest.(check int) "retry succeeded natively" 1 s.native_compiles;
      Alcotest.(check bool) "runaway compiler killed promptly" true
        (elapsed < 15.0))

let test_load_faults_fall_back () =
  native_or_skip ();
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Native;
      Fault.arm [ ("native.load.dynlink", Fault.Always) ];
      check_mxv "dynlink refusal -> closure" (run_mxv ());
      Alcotest.(check bool) "failure counted" true
        ((stats ()).native_failures >= 1);
      Jit.Dispatch.clear_memory_cache ();
      Fault.arm [ ("native.load.unregistered", Fault.Always) ];
      check_mxv_t "unregistered key -> closure" (run_mxv ~transpose:true ()))

let test_corrupt_cmxs_quarantined () =
  native_or_skip ();
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Native;
      check_mxv "cold native compile" (run_mxv ());
      Alcotest.(check int) "compiled natively" 1 (stats ()).native_compiles;
      (* drop the in-memory kernel, then corrupt the on-disk artifact the
         next lookup would otherwise Dynlink *)
      Jit.Dispatch.clear_memory_cache ();
      Fault.arm [ ("cache.corrupt.cmxs", Fault.Once) ];
      check_mxv "recompiled after quarantine" (run_mxv ());
      let s = stats () in
      Alcotest.(check int) "quarantine counted" 1 s.checksum_quarantines;
      Alcotest.(check int) "recompiled" 2 s.native_compiles;
      let bads =
        Array.to_list (Sys.readdir (Jit.Disk_cache.dir ()))
        |> List.filter (fun f -> Filename.check_suffix f ".cmxs.bad")
      in
      Alcotest.(check int) "corrupt artifact kept for post-mortem" 1
        (List.length bads))

let test_probe_leaves_no_residue () =
  native_or_skip ();
  with_resilience (fun () ->
      ignore (Jit.Native_backend.available ());
      let residue =
        Array.to_list (Sys.readdir (Jit.Disk_cache.dir ()))
        |> List.filter (fun f ->
               String.length f >= 6 && String.sub f 0 6 = "probe_")
      in
      Alcotest.(check (list string)) "no probe_* files left" [] residue)

(* -- circuit breaker -- *)

let test_breaker_unit () =
  with_resilience (fun () ->
      Jit.Breaker.set_threshold 3;
      Jit.Breaker.set_cooldown 0.1;
      Alcotest.(check bool) "closed allows" true (Jit.Breaker.allow ());
      Jit.Breaker.failure ();
      Jit.Breaker.failure ();
      Alcotest.(check bool) "still closed below threshold" true
        (Jit.Breaker.state () = Jit.Breaker.Closed);
      Jit.Breaker.failure ();
      Alcotest.(check bool) "trips at threshold" true
        (Jit.Breaker.state () = Jit.Breaker.Open);
      Alcotest.(check int) "trip counted" 1 (stats ()).breaker_trips;
      Alcotest.(check bool) "open short-circuits" false (Jit.Breaker.allow ());
      Alcotest.(check bool) "short-circuit counted" true
        ((stats ()).breaker_short_circuits >= 1);
      Unix.sleepf 0.15;
      Alcotest.(check bool) "half-open trial after cooldown" true
        (Jit.Breaker.allow ());
      Alcotest.(check bool) "now half-open" true
        (Jit.Breaker.state () = Jit.Breaker.Half_open);
      Alcotest.(check bool) "only one trial at a time" false
        (Jit.Breaker.allow ());
      Jit.Breaker.failure ();
      Alcotest.(check bool) "failed trial re-opens" true
        (Jit.Breaker.state () = Jit.Breaker.Open);
      Unix.sleepf 0.15;
      ignore (Jit.Breaker.allow ());
      Jit.Breaker.success ();
      Alcotest.(check bool) "successful trial closes" true
        (Jit.Breaker.state () = Jit.Breaker.Closed))

let test_breaker_integration () =
  native_or_skip ();
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Native;
      Jit.Breaker.set_threshold 2;
      Jit.Breaker.set_cooldown 0.05;
      Fault.arm [ ("native.compile.exit", Fault.Always) ];
      (* distinct signatures so each lookup attempts a fresh compile *)
      check_mxv "failure 1 (closure)" (run_mxv ());
      check_mxv_t "failure 2 trips (closure)" (run_mxv ~transpose:true ());
      Alcotest.(check bool) "breaker open after threshold failures" true
        (Jit.Breaker.state () = Jit.Breaker.Open);
      (* a third distinct signature: the open breaker short-circuits it
         straight to the closure backend without attempting a compile *)
      let alt =
        { Jit.Op_spec.arithmetic with Jit.Op_spec.mul_op = "Plus" }
      in
      ignore (run_mxv ~spec:alt ());
      let s = stats () in
      Alcotest.(check int) "exactly two native attempts failed" 2
        s.native_failures;
      Alcotest.(check bool) "short circuits counted" true
        (s.breaker_short_circuits >= 1);
      Alcotest.(check int) "one trip" 1 s.breaker_trips;
      (* cooldown elapses, faults disarmed: the half-open trial compiles
         natively and closes the breaker *)
      Fault.disarm ();
      Jit.Dispatch.clear_memory_cache ();
      Unix.sleepf 0.1;
      check_mxv "half-open trial result" (run_mxv ());
      Alcotest.(check bool) "breaker closed after recovery" true
        (Jit.Breaker.state () = Jit.Breaker.Closed);
      Alcotest.(check bool) "recovered natively" true
        ((stats ()).native_compiles >= 1))

(* -- dispatch single-flight -- *)

let test_single_flight () =
  with_resilience (fun () ->
      Jit.Dispatch.set_backend Jit.Dispatch.Closure;
      let sig_ =
        Jit.Kernel_sig.make ~op:"slow_build" ~dtypes:[ ("T", "double") ] ()
      in
      let builds = Atomic.make 0 in
      let build () =
        Atomic.incr builds;
        Unix.sleepf 0.05;
        Obj.repr (fun (x : int) -> x + 1)
      in
      let other = Domain.spawn (fun () -> Jit.Dispatch.get sig_ ~build ()) in
      let k1 = Jit.Dispatch.get sig_ ~build () in
      let k2 = Domain.join other in
      Alcotest.(check int) "built exactly once" 1 (Atomic.get builds);
      Alcotest.(check bool) "both callers share the kernel" true (k1 == k2))

(* -- scheduler containment -- *)

let vec n f = Ogb.Container.of_svector (Svector.of_dense f64 (Array.init n f))

let sched_expr () =
  let a = vec 32 float_of_int and b = vec 32 (fun i -> float_of_int (2 * i)) in
  fun () ->
    Ogb.Context.with_ops
      [ Ogb.Context.binary "Plus" ]
      (fun () ->
        Ogb.Expr.apply
          ~f:(Jit.Op_spec.Named "AdditiveInverse")
          (Ogb.Expr.add (Ogb.Expr.of_container a) (Ogb.Expr.of_container b)))

let with_two_domains f =
  Exec.Scheduler.set_domains 2;
  Fun.protect ~finally:Exec.Scheduler.clear_domains_override f

let test_worker_exn_seq_rerun () =
  with_resilience (fun () ->
      with_two_domains (fun () ->
          let expr = sched_expr () in
          let baseline = Ogb.Expr.force (expr ()) in
          Fault.arm [ ("sched.worker.exn", Fault.Once) ];
          let faulted =
            Exec.with_mode Exec.Nonblocking (fun () ->
                Ogb.Expr.force (expr ()))
          in
          Alcotest.(check bool) "identical result after re-run" true
            (Ogb.Container.equal baseline faulted);
          let s = stats () in
          Alcotest.(check int) "worker failure counted" 1
            s.sched_worker_failures;
          Alcotest.(check int) "sequential re-run counted" 1 s.sched_seq_reruns;
          Alcotest.(check int) "no blocking fallback needed" 0
            s.blocking_fallbacks;
          match Exec.last_trace () with
          | Some t ->
            Alcotest.(check bool) "trace marked degraded" true
              t.Exec.Trace.degraded
          | None -> Alcotest.fail "no trace recorded"))

let test_worker_exn_blocking_fallback () =
  with_resilience (fun () ->
      with_two_domains (fun () ->
          let expr = sched_expr () in
          let baseline = Ogb.Expr.force (expr ()) in
          Fault.arm [ ("sched.worker.exn", Fault.Always) ];
          let faulted =
            Exec.with_mode Exec.Nonblocking (fun () ->
                Ogb.Expr.force (expr ()))
          in
          Alcotest.(check bool) "identical result via blocking path" true
            (Ogb.Container.equal baseline faulted);
          let s = stats () in
          Alcotest.(check bool) "worker failures counted" true
            (s.sched_worker_failures >= 1);
          Alcotest.(check int) "sequential re-run attempted" 1
            s.sched_seq_reruns;
          Alcotest.(check int) "blocking fallback counted" 1
            s.blocking_fallbacks))

let test_containment_off_raises () =
  with_resilience (fun () ->
      with_two_domains (fun () ->
          let expr = sched_expr () in
          Exec.set_containment false;
          Fun.protect
            ~finally:(fun () -> Exec.set_containment true)
            (fun () ->
              Fault.arm [ ("sched.worker.exn", Fault.Always) ];
              match
                Exec.with_mode Exec.Nonblocking (fun () ->
                    Ogb.Expr.force (expr ()))
              with
              | _ -> Alcotest.fail "expected a located Node_error"
              | exception Exec.Scheduler.Node_error { error; _ } -> (
                match error with
                | Fault.Injected _ -> ()
                | e ->
                  Alcotest.failf "wrong nested error: %s"
                    (Printexc.to_string e)))))

let test_worker_slow_is_harmless () =
  with_resilience (fun () ->
      with_two_domains (fun () ->
          let expr = sched_expr () in
          let baseline = Ogb.Expr.force (expr ()) in
          Fault.arm [ ("sched.worker.slow", Fault.Always) ];
          let slowed =
            Exec.with_mode Exec.Nonblocking (fun () ->
                Ogb.Expr.force (expr ()))
          in
          Alcotest.(check bool) "slow workers change nothing" true
            (Ogb.Container.equal baseline slowed);
          Alcotest.(check int) "no failures" 0
            (stats ()).sched_worker_failures))

(* -- tier-1 algorithms bit-identical under every fault class -- *)

let sorted l = List.sort compare l

type tier1 = {
  bfs : (int * int) list;
  sssp : (int * float) list;
  pr : (int * float) list;
  pr_iters : int;
  tri : float;
}

let tier1_fixture () =
  let rng = Graphs.Rng.create ~seed:77 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:16 in
  let gc = Ogb.Container.of_smatrix (Graphs.Convert.bool_adjacency g) in
  let sc =
    Ogb.Container.of_smatrix (Graphs.Convert.matrix_of_edges f64 g)
  in
  let sym = Graphs.Edge_list.symmetrize g in
  let lc =
    Ogb.Container.of_smatrix
      (Algorithms.Triangle.of_undirected (Graphs.Convert.bool_adjacency sym))
  in
  (gc, sc, lc)

let run_tier1 (gc, sc, lc) =
  let bfs =
    sorted (Algorithms.Bfs.levels_of_container (Algorithms.Bfs.dsl gc ~src:0))
  in
  let sssp =
    sorted
      (Algorithms.Sssp.distances_of_container (Algorithms.Sssp.dsl sc ~src:0))
  in
  let ranks, pr_iters = Algorithms.Pagerank.dsl sc in
  let pr = sorted (Algorithms.Pagerank.ranks_of_container ranks) in
  let tri = Algorithms.Triangle.dsl lc in
  { bfs; sssp; pr; pr_iters; tri }

let check_tier1 name baseline chaos =
  Alcotest.check
    Alcotest.(list (pair int int))
    (name ^ ": bfs levels identical") baseline.bfs chaos.bfs;
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    (name ^ ": sssp distances identical") baseline.sssp chaos.sssp;
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    (name ^ ": pagerank ranks identical") baseline.pr chaos.pr;
  Alcotest.(check int)
    (name ^ ": pagerank iterations identical")
    baseline.pr_iters chaos.pr_iters;
  Alcotest.check (Alcotest.float 0.0)
    (name ^ ": triangle count identical") baseline.tri chaos.tri

(* (name, OGB_FAULTS-style spec, wants the native backend) *)
let chaos_matrix =
  [ ("compile-exit", "native.compile.exit=always", true);
    ("corrupt-cmxs", "cache.corrupt.cmxs=always", true);
    ("cache-eacces", "cache.write.eacces=always", false);
    ("worker-exn", "sched.worker.exn=p0.4,seed=11", false);
    ("worker-slow", "sched.worker.slow=p0.5,seed=5", false) ]

let test_tier1_chaos (name, spec, wants_native) () =
  if wants_native then native_or_skip ();
  let fixture = tier1_fixture () in
  (* blocking closure path, no faults: the ground truth *)
  let baseline =
    with_resilience (fun () ->
        Jit.Dispatch.set_backend Jit.Dispatch.Closure;
        run_tier1 fixture)
  in
  let chaos =
    with_resilience (fun () ->
        Jit.Dispatch.set_backend
          (if wants_native then Jit.Dispatch.Native else Jit.Dispatch.Auto);
        (match Fault.arm_spec spec with
        | Ok () -> ()
        | Error e -> Alcotest.failf "bad chaos spec: %s" e);
        with_two_domains (fun () ->
            Exec.with_mode Exec.Nonblocking (fun () -> run_tier1 fixture)))
  in
  check_tier1 name baseline chaos

let suite =
  [ Alcotest.test_case "injection modes" `Quick test_modes;
    Alcotest.test_case "OGB_FAULTS spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "atomic source store" `Quick test_atomic_store;
    Alcotest.test_case "mkdir TOCTOU race absorbed" `Quick test_mkdir_race;
    Alcotest.test_case "cache write failures contained" `Quick
      test_write_failures_contained;
    Alcotest.test_case "clear sweeps stderr and probe files" `Quick
      test_clear_sweeps_everything;
    Alcotest.test_case "integrity scan flags corruption" `Quick
      test_integrity_scan_flags_corruption;
    Alcotest.test_case "compiler nonzero exit -> closure fallback" `Quick
      test_compile_exit_falls_back;
    Alcotest.test_case "compiler signal death retried" `Quick
      test_signal_retried;
    Alcotest.test_case "hung compiler killed and retried" `Quick
      test_hang_timed_out_then_retried;
    Alcotest.test_case "load failures fall back" `Quick
      test_load_faults_fall_back;
    Alcotest.test_case "corrupt plugin quarantined and recompiled" `Quick
      test_corrupt_cmxs_quarantined;
    Alcotest.test_case "availability probe cleans up" `Quick
      test_probe_leaves_no_residue;
    Alcotest.test_case "circuit breaker lifecycle" `Quick test_breaker_unit;
    Alcotest.test_case "breaker trips and recovers through dispatch" `Quick
      test_breaker_integration;
    Alcotest.test_case "concurrent lookups build once" `Quick
      test_single_flight;
    Alcotest.test_case "worker exception -> sequential re-run" `Quick
      test_worker_exn_seq_rerun;
    Alcotest.test_case "persistent worker failure -> blocking fallback" `Quick
      test_worker_exn_blocking_fallback;
    Alcotest.test_case "containment off surfaces located error" `Quick
      test_containment_off_raises;
    Alcotest.test_case "slow workers are harmless" `Quick
      test_worker_slow_is_harmless ]
  @ List.map
      (fun ((name, _, _) as case) ->
        Alcotest.test_case
          (Printf.sprintf "tier-1 bit-identical under %s" name)
          `Slow (test_tier1_chaos case))
      chaos_matrix
