(* Algorithm correctness: every tier against an independent reference
   implementation (plain-OCaml BFS queue, Bellman–Ford on adjacency
   lists, brute-force triangle enumeration, dense power iteration), and
   cross-tier agreement on random graphs. *)

open Gbtl

(* -- reference implementations (no GraphBLAS machinery) -- *)

let ref_bfs edges n src =
  let adj = Array.make n [] in
  List.iter (fun (s, d) -> adj.(s) <- d :: adj.(s)) edges;
  let level = Array.make n 0 in
  level.(src) <- 1;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if level.(w) = 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w q
        end)
      adj.(v)
  done;
  List.filter (fun (_, l) -> l > 0) (Array.to_list (Array.mapi (fun i l -> (i, l)) level))

let ref_bellman_ford edges n src =
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    List.iter
      (fun (s, d, w) ->
        if dist.(s) +. w < dist.(d) then dist.(d) <- dist.(s) +. w)
      edges
  done;
  List.filter
    (fun (_, d) -> d < infinity)
    (Array.to_list (Array.mapi (fun i d -> (i, d)) dist))

let ref_triangles pairs n =
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (s, d) ->
      adj.(s).(d) <- true;
      adj.(d).(s) <- true)
    pairs;
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        if adj.(i).(j) && adj.(j).(k) && adj.(i).(k) then incr count
      done
    done
  done;
  !count

let ref_components pairs n =
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  List.iter
    (fun (s, d) ->
      let rs = find s and rd = find d in
      if rs <> rd then parent.(rs) <- rd)
    pairs;
  let roots = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    Hashtbl.replace roots (find v) ()
  done;
  Hashtbl.length roots

(* -- fixtures -- *)

let random_digraph seed n =
  let rng = Graphs.Rng.create ~seed in
  Graphs.Generators.erdos_renyi_paper rng ~nvertices:n

let pairs_of g = List.map (fun (s, d, _) -> (s, d)) g.Graphs.Edge_list.edges

let sorted_alist l = List.sort compare l

(* -- BFS -- *)

let test_bfs_against_reference () =
  List.iter
    (fun seed ->
      let g = random_digraph seed 24 in
      let adj = Graphs.Convert.bool_adjacency g in
      let expected = ref_bfs (pairs_of g) 24 0 in
      let levels = Algorithms.Bfs.native adj ~src:0 in
      Alcotest.check
        Alcotest.(list (pair int int))
        (Printf.sprintf "bfs matches queue reference (seed %d)" seed)
        (sorted_alist expected)
        (sorted_alist (Algorithms.Bfs.levels_of_svector levels)))
    [ 1; 2; 3; 4; 5 ]

let test_bfs_tiers_agree () =
  let g = random_digraph 7 20 in
  let adj = Graphs.Convert.bool_adjacency g in
  let native =
    sorted_alist (Algorithms.Bfs.levels_of_svector (Algorithms.Bfs.native adj ~src:0))
  in
  let gc = Ogb.Container.of_smatrix adj in
  let check name levels =
    Alcotest.check
      Alcotest.(list (pair int int))
      (name ^ " agrees with native") native
      (sorted_alist (Algorithms.Bfs.levels_of_container levels))
  in
  check "dsl" (Algorithms.Bfs.dsl gc ~src:0);
  check "vm_loops" (Algorithms.Bfs.vm_loops gc ~src:0);
  check "vm_whole" (Algorithms.Bfs.vm_whole gc ~src:0);
  Alcotest.check
    Alcotest.(list (pair int int))
    "generic library tier agrees" native
    (sorted_alist
       (Algorithms.Bfs.levels_of_svector (Algorithms.Bfs.generic adj ~src:0)))

let test_bfs_disconnected () =
  let adj = Smatrix.of_coo Dtype.Bool 4 4 [ (0, 1, true) ] in
  let levels = Algorithms.Bfs.native adj ~src:0 in
  Alcotest.check
    Alcotest.(list (pair int int))
    "unreachable vertices have no level"
    [ (0, 1); (1, 2) ]
    (Algorithms.Bfs.levels_of_svector levels)

(* -- SSSP -- *)

let weighted_graph seed n =
  let rng = Graphs.Rng.create ~seed in
  let g =
    Graphs.Generators.erdos_renyi_gnm rng ~nvertices:n
      ~nedges:(3 * n)
      ~weight:(fun r -> 1.0 +. float_of_int (Graphs.Rng.int r 9))
  in
  g

let test_sssp_against_reference () =
  List.iter
    (fun seed ->
      let g = weighted_graph seed 20 in
      let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
      let expected = ref_bellman_ford g.Graphs.Edge_list.edges 20 0 in
      let dist = Algorithms.Sssp.native adj ~src:0 in
      let actual =
        List.rev (Svector.fold (fun acc i d -> (i, d) :: acc) [] dist)
      in
      Alcotest.check
        Alcotest.(list (pair int (float 1e-9)))
        (Printf.sprintf "sssp matches Bellman-Ford (seed %d)" seed)
        (sorted_alist expected) (sorted_alist actual))
    [ 11; 12; 13 ]

let test_sssp_tiers_agree () =
  let g = weighted_graph 21 16 in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let gc = Ogb.Container.of_smatrix adj in
  let native =
    List.rev
      (Svector.fold (fun acc i d -> (i, d) :: acc) [] (Algorithms.Sssp.native adj ~src:0))
  in
  let check name dist =
    Alcotest.check
      Alcotest.(list (pair int (float 1e-9)))
      (name ^ " agrees") (sorted_alist native)
      (sorted_alist (Algorithms.Sssp.distances_of_container dist))
  in
  check "dsl" (Algorithms.Sssp.dsl gc ~src:0);
  check "vm_loops" (Algorithms.Sssp.vm_loops gc ~src:0);
  check "vm_whole" (Algorithms.Sssp.vm_whole gc ~src:0);
  Alcotest.check
    Alcotest.(list (pair int (float 1e-9)))
    "generic library tier agrees" (sorted_alist native)
    (sorted_alist
       (List.rev
          (Svector.fold
             (fun acc i d -> (i, d) :: acc)
             []
             (Algorithms.Sssp.generic adj ~src:0))))

(* -- triangle counting -- *)

let test_triangles_against_reference () =
  List.iter
    (fun seed ->
      let rng = Graphs.Rng.create ~seed in
      let g =
        Graphs.Generators.erdos_renyi_gnm rng ~nvertices:16 ~nedges:40
      in
      let sym = Graphs.Edge_list.symmetrize g in
      let adj = Graphs.Convert.bool_adjacency sym in
      let l = Algorithms.Triangle.of_undirected adj in
      Alcotest.check Alcotest.int
        (Printf.sprintf "triangle count matches brute force (seed %d)" seed)
        (ref_triangles (pairs_of g) 16)
        (Algorithms.Triangle.native l))
    [ 31; 32; 33; 34 ]

let test_triangles_tiers_agree () =
  let rng = Graphs.Rng.create ~seed:35 in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:14 ~nedges:40 in
  let sym = Graphs.Edge_list.symmetrize g in
  let l = Algorithms.Triangle.of_undirected (Graphs.Convert.bool_adjacency sym) in
  let native = float_of_int (Algorithms.Triangle.native l) in
  let lc = Ogb.Container.of_smatrix l in
  Alcotest.check (Alcotest.float 0.0) "dsl" native (Algorithms.Triangle.dsl lc);
  Alcotest.check (Alcotest.float 0.0) "vm_loops" native
    (Algorithms.Triangle.vm_loops lc);
  Alcotest.check (Alcotest.float 0.0) "vm_whole" native
    (Algorithms.Triangle.vm_whole lc);
  Alcotest.check (Alcotest.float 0.0) "nonblocking" native
    (Algorithms.Triangle.nonblocking lc)

let test_known_triangle_counts () =
  let complete n = Graphs.Generators.complete n in
  let count g =
    Algorithms.Triangle.native
      (Algorithms.Triangle.of_undirected (Graphs.Convert.bool_adjacency g))
  in
  Alcotest.check Alcotest.int "K4 has 4 triangles" 4 (count (complete 4));
  Alcotest.check Alcotest.int "K5 has 10 triangles" 10 (count (complete 5));
  Alcotest.check Alcotest.int "a path has none" 0
    (count (Graphs.Edge_list.symmetrize (Graphs.Generators.path 6)))

(* -- PageRank -- *)

let ref_pagerank edges n damping iters =
  (* dense power iteration *)
  let out_deg = Array.make n 0 in
  List.iter (fun (s, _) -> out_deg.(s) <- out_deg.(s) + 1) edges;
  let rank = Array.make n (1.0 /. float_of_int n) in
  let teleport = (1.0 -. damping) /. float_of_int n in
  for _ = 1 to iters do
    let next = Array.make n 0.0 in
    List.iter
      (fun (s, d) ->
        next.(d) <- next.(d) +. (damping *. rank.(s) /. float_of_int out_deg.(s)))
      edges;
    Array.iteri (fun i x -> rank.(i) <- x +. teleport) next
  done;
  rank

let test_pagerank_against_reference () =
  let g = random_digraph 41 16 in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let ranks, _ = Algorithms.Pagerank.native ~threshold:1e-12 adj in
  let expected = ref_pagerank (pairs_of g) 16 0.85 200 in
  Svector.iter
    (fun i r ->
      if abs_float (r -. expected.(i)) > 1e-6 then
        Alcotest.failf "rank of %d: %f vs reference %f" i r expected.(i))
    ranks

let test_pagerank_tiers_agree () =
  let g = random_digraph 42 14 in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let gc = Ogb.Container.of_smatrix adj in
  let native, _ = Algorithms.Pagerank.native adj in
  let native_l =
    List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] native)
  in
  let check name ranks =
    Alcotest.check
      Alcotest.(list (pair int (float 1e-9)))
      (name ^ " agrees") (sorted_alist native_l)
      (sorted_alist (Algorithms.Pagerank.ranks_of_container ranks))
  in
  let dsl_ranks, _ = Algorithms.Pagerank.dsl gc in
  check "dsl" dsl_ranks;
  check "vm_loops" (Algorithms.Pagerank.vm_loops gc);
  check "vm_whole" (Algorithms.Pagerank.vm_whole gc);
  let nb_ranks, nb_iters = Algorithms.Pagerank.nonblocking gc in
  check "nonblocking" nb_ranks;
  let _, dsl_iters = Algorithms.Pagerank.dsl gc in
  Alcotest.check Alcotest.int "nonblocking converges in the same iterations"
    dsl_iters nb_iters;
  let generic_ranks, _ = Algorithms.Pagerank.generic adj in
  Alcotest.check
    Alcotest.(list (pair int (float 1e-9)))
    "generic library tier agrees" (sorted_alist native_l)
    (sorted_alist
       (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] generic_ranks)))

let test_pagerank_sums_to_one () =
  let g = random_digraph 43 20 in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let ranks, _ = Algorithms.Pagerank.native adj in
  let total = Svector.fold (fun acc _ x -> acc +. x) 0.0 ranks in
  (* rank mass is conserved up to dangling-node leakage; with the paper's
     teleport fill it stays close to 1 *)
  Alcotest.check Alcotest.bool "total rank near 1" true
    (total > 0.8 && total < 1.2)

(* -- connected components -- *)

let test_components_against_reference () =
  List.iter
    (fun seed ->
      let rng = Graphs.Rng.create ~seed in
      let g =
        Graphs.Generators.erdos_renyi_gnm rng ~nvertices:30 ~nedges:25
      in
      let sym = Graphs.Edge_list.symmetrize g in
      let adj = Graphs.Convert.bool_adjacency sym in
      let labels = Algorithms.Connected_components.native adj in
      Alcotest.check Alcotest.int
        (Printf.sprintf "component count matches union-find (seed %d)" seed)
        (ref_components (pairs_of g) 30)
        (Algorithms.Connected_components.component_count labels))
    [ 51; 52; 53 ]

let test_components_dsl_agrees () =
  let rng = Graphs.Rng.create ~seed:54 in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:20 ~nedges:15 in
  let sym = Graphs.Edge_list.symmetrize g in
  let adj = Graphs.Convert.bool_adjacency sym in
  let native = Algorithms.Connected_components.native adj in
  let dsl = Algorithms.Connected_components.dsl (Ogb.Container.of_smatrix adj) in
  Alcotest.check
    Alcotest.(list (pair int (float 0.0)))
    "labels agree"
    (List.rev (Svector.fold (fun acc i l -> (i, float_of_int l) :: acc) [] native))
    (Ogb.Container.vector_entries dsl)

(* -- betweenness centrality -- *)

(* classic Brandes on adjacency lists *)
let ref_brandes edges n =
  let adj = Array.make n [] in
  List.iter (fun (s, d) -> adj.(s) <- d :: adj.(s)) edges;
  let bc = Array.make n 0.0 in
  for s = 0 to n - 1 do
    let sigma = Array.make n 0.0 and dist = Array.make n (-1) in
    let delta = Array.make n 0.0 in
    sigma.(s) <- 1.0;
    dist.(s) <- 0;
    let order = ref [] in
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      order := v :: !order;
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end;
          if dist.(w) = dist.(v) + 1 then sigma.(w) <- sigma.(w) +. sigma.(v))
        adj.(v)
    done;
    List.iter
      (fun w ->
        List.iter
          (fun x ->
            if dist.(x) = dist.(w) + 1 then
              delta.(w) <-
                delta.(w) +. (sigma.(w) /. sigma.(x) *. (1.0 +. delta.(x))))
          adj.(w);
        if w <> s then bc.(w) <- bc.(w) +. delta.(w))
      !order
  done;
  bc

let test_bc_against_brandes () =
  List.iter
    (fun seed ->
      let rng = Graphs.Rng.create ~seed in
      let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:16 ~nedges:40 in
      let adj = Graphs.Convert.bool_adjacency g in
      let expected = ref_brandes (pairs_of g) 16 in
      let bc = Algorithms.Bc.native adj in
      Array.iteri
        (fun v e ->
          let got = Option.value ~default:0.0 (Svector.get bc v) in
          if abs_float (got -. e) > 1e-9 then
            Alcotest.failf "BC(%d) = %f, reference %f (seed %d)" v got e seed)
        expected)
    [ 71; 72; 73 ]

let test_bc_path_graph () =
  (* directed path 0->1->2->3: interior vertices lie on 0->k paths *)
  let p = Graphs.Convert.bool_adjacency (Graphs.Generators.path 4) in
  let bc = Algorithms.Bc.native p in
  Alcotest.check (Alcotest.float 1e-12) "BC(1) = 2" 2.0
    (Option.value ~default:0.0 (Svector.get bc 1));
  Alcotest.check (Alcotest.float 1e-12) "BC(2) = 2" 2.0
    (Option.value ~default:0.0 (Svector.get bc 2));
  Alcotest.check (Alcotest.float 1e-12) "BC(0) = 0" 0.0
    (Option.value ~default:0.0 (Svector.get bc 0))

let test_bc_batch_subset () =
  let rng = Graphs.Rng.create ~seed:74 in
  let g = Graphs.Generators.erdos_renyi_gnm rng ~nvertices:12 ~nedges:30 in
  let adj = Graphs.Convert.bool_adjacency g in
  let full = Algorithms.Bc.native adj in
  let batched =
    List.fold_left
      (fun acc s ->
        let part = Algorithms.Bc.native ~sources:[ s ] adj in
        Svector.iter
          (fun v x -> acc.(v) <- acc.(v) +. x)
          part;
        acc)
      (Array.make 12 0.0) (List.init 12 Fun.id)
  in
  Array.iteri
    (fun v x ->
      let f = Option.value ~default:0.0 (Svector.get full v) in
      if abs_float (f -. x) > 1e-9 then
        Alcotest.failf "batch sum mismatch at %d: %f vs %f" v x f)
    batched

(* -- maximal independent set -- *)

let test_mis_invariants () =
  List.iter
    (fun seed ->
      let rng = Graphs.Rng.create ~seed in
      let g =
        Graphs.Edge_list.symmetrize
          (Graphs.Generators.erdos_renyi_gnm rng ~nvertices:40 ~nedges:80)
      in
      let adj = Graphs.Convert.bool_adjacency g in
      let iset = Algorithms.Mis.native ~seed adj in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "independent (seed %d)" seed)
        true
        (Algorithms.Mis.is_independent adj iset);
      Alcotest.check Alcotest.bool
        (Printf.sprintf "maximal (seed %d)" seed)
        true
        (Algorithms.Mis.is_maximal adj iset))
    [ 61; 62; 63; 64; 65 ]

let test_mis_isolated_vertices () =
  (* vertices with no edges must be selected *)
  let adj = Smatrix.of_coo Dtype.Bool 5 5 [ (0, 1, true); (1, 0, true) ] in
  let iset = Algorithms.Mis.native adj in
  List.iter
    (fun v ->
      Alcotest.check Alcotest.(option bool)
        (Printf.sprintf "isolated %d in set" v)
        (Some true) (Svector.get iset v))
    [ 2; 3; 4 ]

let test_mis_complete_graph () =
  let g = Graphs.Generators.complete 6 in
  let adj = Graphs.Convert.bool_adjacency g in
  let iset = Algorithms.Mis.native adj in
  Alcotest.check Alcotest.int "exactly one vertex of a clique" 1
    (Svector.nvals iset)

let suite =
  [ Alcotest.test_case "bfs vs reference" `Quick test_bfs_against_reference;
    Alcotest.test_case "BC vs Brandes" `Quick test_bc_against_brandes;
    Alcotest.test_case "BC on a path" `Quick test_bc_path_graph;
    Alcotest.test_case "BC batch additivity" `Quick test_bc_batch_subset;
    Alcotest.test_case "MIS invariants" `Quick test_mis_invariants;
    Alcotest.test_case "MIS isolated vertices" `Quick
      test_mis_isolated_vertices;
    Alcotest.test_case "MIS on a clique" `Quick test_mis_complete_graph;
    Alcotest.test_case "bfs tiers agree" `Quick test_bfs_tiers_agree;
    Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
    Alcotest.test_case "sssp vs Bellman-Ford" `Quick
      test_sssp_against_reference;
    Alcotest.test_case "sssp tiers agree" `Quick test_sssp_tiers_agree;
    Alcotest.test_case "triangles vs brute force" `Quick
      test_triangles_against_reference;
    Alcotest.test_case "triangle tiers agree" `Quick
      test_triangles_tiers_agree;
    Alcotest.test_case "known triangle counts" `Quick
      test_known_triangle_counts;
    Alcotest.test_case "pagerank vs power iteration" `Quick
      test_pagerank_against_reference;
    Alcotest.test_case "pagerank tiers agree" `Quick
      test_pagerank_tiers_agree;
    Alcotest.test_case "pagerank mass" `Quick test_pagerank_sums_to_one;
    Alcotest.test_case "components vs union-find" `Quick
      test_components_against_reference;
    Alcotest.test_case "components dsl agrees" `Quick
      test_components_dsl_agrees;
  ]
