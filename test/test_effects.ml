(* Effect & disjointness analysis: adversarial plans with ground-truth
   hazard seeding driven through the footprint inference, the parallel-
   safety certifier's seeded-defect regressions (a broken chunk
   decomposition and a widened exact_assoc gate must both be located),
   and the degrade-loudly contract of the mandatory analysis hook. *)

open Gbtl
module Plan = Exec.Plan
module Effects = Analysis.Effects
module Certify = Analysis.Certify
module PK = Jit.Par_kernels.Certify

let f64 = Dtype.FP64

let with_arith f =
  Ogb.Context.with_ops
    [ Ogb.Context.semiring "Arithmetic"; Ogb.Context.binary "Plus" ]
    f

let mat n =
  Smatrix.of_coo f64 n n [ (0, 1, 1.0); (3, 2, 2.0); (7, 5, 1.0) ]

let vec n x = Ogb.Container.of_svector (Svector.of_dense f64 (Array.make n x))

(* -- adversarial scenarios, each with its ground-truth hazard class --

   Sizes stay >= 32 so the layout heuristic picks pull for filled
   vectors (the CSC-building direction); representation hazards are
   layout-independent.  Plans are lowered and rewritten without the
   planner so the seeded layout is deterministic. *)

type scenario =
  | Shared_uncached of int  (* y = A.T@u + A.T@v, one uncached A: CSC WW *)
  | Shared_cached of int  (* same, but the index is prebuilt: clean *)
  | Shared_dense_vec of int  (* (u+w1)+(u+w2): rep switch on shared u *)
  | Aliased_vec of int  (* two containers over one storage: rep switch *)
  | Inplace_accum of int  (* y = u + (A@u): consumers ordered, clean *)
  | Single_toucher of int  (* one transposed pull: no second toucher *)

let print_scenario = function
  | Shared_uncached n -> Printf.sprintf "shared-uncached-leaf(n=%d)" n
  | Shared_cached n -> Printf.sprintf "shared-cached-leaf(n=%d)" n
  | Shared_dense_vec n -> Printf.sprintf "shared-dense-vec(n=%d)" n
  | Aliased_vec n -> Printf.sprintf "aliased-operands(n=%d)" n
  | Inplace_accum n -> Printf.sprintf "in-place-accum(n=%d)" n
  | Single_toucher n -> Printf.sprintf "single-toucher(n=%d)" n

let expected_cls = function
  | Shared_uncached _ -> Some Effects.Csc_cache
  | Shared_dense_vec _ | Aliased_vec _ -> Some Effects.Rep_switch
  | Shared_cached _ | Inplace_accum _ | Single_toucher _ -> None

let expr_of sc =
  let open Ogb.Ops.Infix in
  with_arith (fun () ->
      match sc with
      | Shared_uncached n ->
        let a = Ogb.Container.of_smatrix (mat n) in
        (tr !!a @. !!(vec n 1.0)) +: (tr !!a @. !!(vec n 2.0))
      | Shared_cached n ->
        let sm = mat n in
        Smatrix.ensure_csc sm;
        let a = Ogb.Container.of_smatrix sm in
        (tr !!a @. !!(vec n 1.0)) +: (tr !!a @. !!(vec n 2.0))
      | Shared_dense_vec n ->
        let u = vec n 1.0 in
        (!!u +: !!(vec n 2.0)) +: (!!u +: !!(vec n 3.0))
      | Aliased_vec n ->
        let sv = Svector.of_dense f64 (Array.make n 1.0) in
        let u1 = Ogb.Container.of_svector sv
        and u2 = Ogb.Container.of_svector sv in
        (!!u1 +: !!(vec n 2.0)) +: (!!u2 +: !!(vec n 3.0))
      | Inplace_accum n ->
        let u = vec n 1.0 in
        !!u +: (!!(Ogb.Container.of_smatrix (mat n)) @. !!u)
      | Single_toucher n ->
        tr !!(Ogb.Container.of_smatrix (mat n)) @. !!(vec n 1.0))

let plan_of sc =
  let p = Plan.of_expr (expr_of sc) in
  Exec.Rewrite.run p;
  p

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 32 72 in
    oneofl
      [ Shared_uncached n; Shared_cached n; Shared_dense_vec n;
        Aliased_vec n; Inplace_accum n; Single_toucher n ])

let qcheck_ground_truth =
  QCheck.Test.make ~count:60 ~name:"adversarial plans match seeded ground truth"
    (QCheck.make scenario_gen ~print:print_scenario)
    (fun sc ->
      let hs = Effects.find ~assume_formats:true (plan_of sc) in
      match expected_cls sc with
      | Some cls ->
        List.exists (fun h -> h.Effects.cls = cls) hs
        || QCheck.Test.fail_reportf "seeded hazard not flagged (found: %s)"
             (String.concat "; " (List.map Effects.describe hs))
      | None ->
        hs = []
        || QCheck.Test.fail_reportf "false positive: %s"
             (Effects.describe (List.hd hs)))

(* every plan — hazardous or not — must come out of the mandatory hook +
   planner pipeline hazard-free: pre-schedule remediation repairs the
   seeded races, and planner-chosen schedules introduce none *)
let qcheck_planner_schedules_safe =
  QCheck.Test.make ~count:24
    ~name:"planner-chosen schedules are hazard-free after remediation"
    (QCheck.make scenario_gen ~print:print_scenario)
    (fun sc ->
      (* chaos runs arm analysis.effects.exn suite-wide; this property is
         about the un-degraded pipeline, the degrade path has its own test *)
      Fault.suspended @@ fun () ->
      Analysis.Hook.install ();
      Fun.protect ~finally:Analysis.Hook.uninstall (fun () ->
          let plan = Exec.plan_force (expr_of sc) in
          (* the mandatory gate [Exec.force] runs right before the
             scheduler starts: planning tolerates hazards, this remedies
             them (or raises on survivors) *)
          Exec.Verify_hook.run plan ~stage:"pre-schedule";
          match Effects.find ~assume_formats:true plan with
          | [] -> true
          | h :: _ ->
            QCheck.Test.fail_reportf "hazard survived the pipeline: %s"
              (Effects.describe h)))

(* -- seeded-defect regressions for the parallel-safety certifier -- *)

let test_certifier_clean () =
  match Certify.run () with
  | [] -> ()
  | f :: _ -> Alcotest.failf "clean registry flagged: %s" (Certify.describe f)

let test_broken_chunk_decomposition_caught () =
  (* hand-break one output-partitioned kernel: widen every chunk one
     slot to the right so neighbours share an output index *)
  PK.set_tamper
    (Some
       (fun d ->
         if d.PK.name = "mxv_gather" then
           { d with
             PK.chunks =
               (fun ~n ~grain ->
                 Array.map
                   (fun (lo, hi) -> (lo, min n (hi + 1)))
                   (PK.pool_chunks ~n ~grain))
           }
         else d));
  Fun.protect
    ~finally:(fun () -> PK.set_tamper None)
    (fun () ->
      let fs = Certify.run () in
      let located =
        List.filter
          (fun f ->
            f.Certify.kernel = "mxv_gather"
            && f.Certify.rule = "chunk disjointness")
          fs
      in
      if located = [] then
        Alcotest.fail "overlapping chunk decomposition was not located";
      (* the diagnostic names the size/grain that exposes the overlap *)
      let d = (List.hd located).Certify.detail in
      if not (Helpers.contains_substring d "n=") then
        Alcotest.failf "diagnostic not located: %s" d;
      (* only the tampered kernel is implicated *)
      List.iter
        (fun f ->
          if f.Certify.kernel <> "mxv_gather" then
            Alcotest.failf "untampered kernel implicated: %s"
              (Certify.describe f))
        fs)

let test_widened_assoc_gate_caught () =
  (* hand-break the exact_assoc gate: license every operator, so float
     reductions would regroup — the judgment probes must object *)
  Jit.Kernels.set_assoc_override (Some (fun ~dtype:_ ~op:_ -> true));
  Fun.protect
    ~finally:(fun () -> Jit.Kernels.set_assoc_override None)
    (fun () ->
      let fs = Certify.run () in
      let located =
        List.filter
          (fun f ->
            f.Certify.kernel = "exact_assoc"
            && f.Certify.rule = "associativity licence"
            && Helpers.contains_substring f.Certify.detail "double")
          fs
      in
      if located = [] then
        Alcotest.fail "widened associativity gate was not located")

let test_env_tamper_drives_lint () =
  (* the CI regression path: OGB_CERT_TAMPER seeds both defects and the
     lint entry point must come back with findings *)
  Unix.putenv "OGB_CERT_TAMPER" "chunks=mxv_gather,assoc";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "OGB_CERT_TAMPER" "";
      PK.set_tamper None;
      Jit.Kernels.set_assoc_override None)
    (fun () ->
      Analysis.Lint.apply_env_tamper ();
      let fs = Certify.run () in
      let has rule = List.exists (fun f -> f.Certify.rule = rule) fs in
      if not (has "chunk disjointness") then
        Alcotest.fail "env tamper: chunk defect not caught";
      if not (has "associativity licence") then
        Alcotest.fail "env tamper: assoc defect not caught")

(* -- lint aggregate and daemon audit stay clean on an untampered tree -- *)

let test_lint_clean () =
  match Analysis.Lint.run () with
  | [] -> ()
  | f :: _ -> Alcotest.failf "lint finding: %s" (Analysis.Lint.describe f)

let test_daemon_audit_clean () =
  Fault.suspended @@ fun () ->
  if Server.Audit.manifest = [] then Alcotest.fail "empty audit manifest";
  match Server.Audit.run () with
  | [] -> ()
  | f :: _ -> Alcotest.failf "audit finding: %s" (Server.Audit.describe f)

(* -- the hook degrades loudly: an analysis crash is contained, counted,
      and the plan still runs (unchecked) -- *)

let test_hook_degrades_loudly () =
  Fault.disarm ();
  Jit.Jit_stats.reset ();
  (* the qcheck property above may have cached a schedule for this exact
     shape digest (its generator draws Shared_uncached at random sizes);
     a cache hit skips candidate search and with it the effects hook *)
  Exec.Planner.clear_cache ();
  Fault.arm [ ("analysis.effects.exn", Fault.Always) ];
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Jit.Jit_stats.reset ())
    (fun () ->
      Analysis.Hook.install ();
      Fun.protect ~finally:Analysis.Hook.uninstall (fun () ->
          (* a hazardous plan: with the analysis crashing it must still
             plan and come back, un-remedied but alive *)
          ignore (Exec.plan_force (expr_of (Shared_uncached 40))));
      let st = Jit.Jit_stats.snapshot () in
      if st.Jit.Jit_stats.effects_degraded = 0 then
        Alcotest.fail "analysis crash was not counted as a degrade";
      if st.Jit.Jit_stats.effects_rejections <> 0 then
        Alcotest.fail "a degraded check must not reject candidates")

let suite =
  [ Helpers.to_alcotest qcheck_ground_truth;
    Helpers.to_alcotest qcheck_planner_schedules_safe;
    Alcotest.test_case "certifier: clean registry certifies" `Quick
      test_certifier_clean;
    Alcotest.test_case "certifier: broken chunk decomposition located" `Quick
      test_broken_chunk_decomposition_caught;
    Alcotest.test_case "certifier: widened exact_assoc gate located" `Quick
      test_widened_assoc_gate_caught;
    Alcotest.test_case "certifier: OGB_CERT_TAMPER drives the lint path"
      `Quick test_env_tamper_drives_lint;
    Alcotest.test_case "lint: clean tree has no findings" `Quick
      test_lint_clean;
    Alcotest.test_case "audit: daemon shared-state probes hold" `Quick
      test_daemon_audit_clean;
    Alcotest.test_case "hook: analysis crash degrades loudly" `Quick
      test_hook_degrades_loudly ]
