(* The storage-format layer: representation round-trips, layout-picked
   masks, the extract_col CSC regression, and bit-identity of every
   operation across operand-format combinations (sparse/dense vectors,
   CSR scatter vs cached-CSC pull). *)

open Gbtl

let f64 = Dtype.FP64
let svec = Helpers.svector_testable f64

(* -- extract_col regression: columns come from the cached CSC side -- *)

let test_extract_col_cached () =
  let m =
    Smatrix.of_coo f64 5 4
      [ (0, 1, 2.0); (1, 0, 3.0); (1, 1, 4.0); (3, 1, 5.0); (4, 3, 6.0) ]
  in
  Format_stats.with_enabled true (fun () ->
      let before = Format_stats.get_csc_builds () in
      for _ = 1 to 3 do
        for c = 0 to 3 do
          let col = Smatrix.extract_col m c in
          let expected =
            List.filter_map
              (fun (r, c', x) -> if c' = c then Some (r, x) else None)
              (Smatrix.to_coo m)
          in
          Alcotest.(check (list (pair int (float 0.))))
            (Printf.sprintf "column %d" c)
            expected (Svector.to_alist col)
        done
      done;
      Alcotest.(check int)
        "twelve extract_col calls build the CSC side exactly once"
        (before + 1)
        (Format_stats.get_csc_builds ());
      (* mutation invalidates the cache; the next column rebuilds *)
      Smatrix.set m 2 2 7.0;
      Alcotest.(check bool) "mutation dropped the cache" false
        (Smatrix.csc_cached m);
      Alcotest.(check (list (pair int (float 0.))))
        "column read-back after mutation"
        [ (2, 7.0) ]
        (Svector.to_alist (Smatrix.extract_col m 2));
      Alcotest.(check int) "rebuilt once more" (before + 2)
        (Format_stats.get_csc_builds ()))

(* -- mask layout selection -- *)

let frontier_like n stored =
  let v = Svector.create Dtype.Bool n in
  List.iter (fun i -> Svector.set v i true) stored;
  v

let test_vmask_layout () =
  let thin = frontier_like 128 [ 3; 40; 77 ] in
  (match Format_stats.with_enabled true (fun () -> Mask.vmask thin) with
  | Mask.Vmask_sparse { size; idx; complemented } ->
    Alcotest.(check int) "sparse mask size" 128 size;
    Alcotest.(check (array int)) "sparse mask indices" [| 3; 40; 77 |] idx;
    Alcotest.(check bool) "not complemented" false complemented
  | _ -> Alcotest.fail "low-fill mask should pick the sparse layout");
  (match Format_stats.with_enabled false (fun () -> Mask.vmask thin) with
  | Mask.Vmask _ -> ()
  | _ -> Alcotest.fail "format layer off: mask must stay dense");
  let thick = frontier_like 128 (List.init 100 (fun i -> i)) in
  match Format_stats.with_enabled true (fun () -> Mask.vmask thick) with
  | Mask.Vmask _ -> ()
  | _ -> Alcotest.fail "high-fill mask should pick the dense layout"

(* -- complemented + replace write semantics, both mask layouts --

   C<¬M, replace> = T: positions where M holds are cleared (replace),
   positions where M is absent take T exactly (including removals). *)

let test_complemented_replace () =
  let n = 96 in
  let mask_idx = [ 0; 10; 20; 30 ] in
  let check_variant name mask =
    let out = Svector.create f64 n in
    List.iter (fun (i, x) -> Svector.set out i x) [ (0, 1.0); (5, 2.0); (10, 3.0); (40, 4.0) ];
    let t =
      Entries.of_arrays_unsafe [| 5; 20; 50 |] [| 9.0; 8.0; 7.0 |] ~len:3
    in
    Output.write_vector ~mask ~accum:None ~replace:true ~out ~t;
    (* 0, 10: in M, so masked out under ¬M; replace clears them.
       20: in M too — T's value there is suppressed.
       5, 50: allowed, taken from T.
       40: allowed but absent from T → removed. *)
    Alcotest.(check (list (pair int (float 0.))))
      (name ^ ": C<¬M,replace> = T")
      [ (5, 9.0); (50, 7.0) ]
      (Svector.to_alist out)
  in
  let dense = Array.make n false in
  List.iter (fun i -> dense.(i) <- true) mask_idx;
  check_variant "dense" (Mask.Vmask { dense; complemented = true });
  check_variant "sparse"
    (Mask.Vmask_sparse
       { size = n; idx = Array.of_list mask_idx; complemented = true })

let test_merge_no_replace_both_layouts () =
  let n = 80 in
  let run mask =
    let out = Svector.create f64 n in
    List.iter (fun (i, x) -> Svector.set out i x) [ (1, 1.0); (2, 2.0) ];
    let t = Entries.of_arrays_unsafe [| 1; 3 |] [| 5.0; 6.0 |] ~len:2 in
    Output.write_vector ~mask ~accum:None ~replace:false ~out ~t;
    Svector.to_alist out
  in
  let dense = Array.make n false in
  dense.(1) <- true;
  dense.(3) <- true;
  let d = run (Mask.Vmask { dense; complemented = false }) in
  let s =
    run (Mask.Vmask_sparse { size = n; idx = [| 1; 3 |]; complemented = false })
  in
  Alcotest.(check (list (pair int (float 0.))))
    "merge keeps masked-out entries" [ (1, 5.0); (2, 2.0); (3, 6.0) ] d;
  Alcotest.(check (list (pair int (float 0.)))) "layouts agree" d s

(* -- qcheck: representation round-trips are identities -- *)

let qcheck_vector_roundtrip =
  Helpers.qtest ~count:200 "densify ∘ sparsify is the identity"
    (Helpers.arb ~print:Helpers.print_vec (Helpers.vec_gen 40))
    (fun model ->
      let v = Dense_ref.svector_of_vec f64 model in
      let d = Svector.dup v in
      Svector.densify d;
      let ok1 = Svector.is_dense d && Svector.equal v d in
      Svector.sparsify d;
      let ok2 = (not (Svector.is_dense d)) && Svector.equal v d in
      ok1 && ok2 && Svector.to_alist v = Svector.to_alist d)

let qcheck_csc_roundtrip =
  Helpers.qtest ~count:200 "CSC side reproduces the CSR entries"
    (Helpers.arb ~print:Helpers.print_mat (Helpers.mat_gen 12 9))
    (fun model ->
      let m = Dense_ref.smatrix_of_mat f64 12 9 model in
      let d = Smatrix.dup m in
      Smatrix.ensure_csc d;
      (* read every column back off the CSC arrays and compare the
         re-assembled triple set against the CSR iteration *)
      let from_csc = ref [] in
      for c = Smatrix.ncols d - 1 downto 0 do
        Smatrix.iter_col (fun r x -> from_csc := (r, c, x) :: !from_csc) d c
      done;
      let by_rc (r1, c1, _) (r2, c2, _) = compare (r1, c1) (r2, c2) in
      List.sort by_rc !from_csc = List.sort by_rc (Smatrix.to_coo m)
      && Smatrix.csc_cached d
      && Smatrix.equal (Smatrix.transpose (Smatrix.transpose d)) m)

(* -- qcheck: operations are bit-identical across format combinations -- *)

let qcheck_ewise_formats =
  Helpers.qtest ~count:150 "eWiseAdd/Mult agree across vector formats"
    (Helpers.arb
       ~print:(fun (u, v) -> Helpers.print_vec u ^ " / " ^ Helpers.print_vec v)
       QCheck.Gen.(pair (Helpers.vec_gen 40) (Helpers.vec_gen 40)))
    (fun (mu, mv) ->
      List.for_all
        (fun which ->
          List.for_all
            (fun (du, dv) ->
              let u = Dense_ref.svector_of_vec f64 mu
              and v = Dense_ref.svector_of_vec f64 mv in
              if du then Svector.densify u;
              if dv then Svector.densify v;
              let got = Jit.Kernels.ewise_v which f64 ~op:"Plus" u v in
              let reference =
                Jit.Kernels.ewise_v which f64 ~op:"Plus"
                  (Dense_ref.svector_of_vec f64 mu)
                  (Dense_ref.svector_of_vec f64 mv)
              in
              Entries.to_alist got = Entries.to_alist reference)
            [ (false, true); (true, false); (true, true) ])
        [ `Add; `Mult ])

let qcheck_mxv_pull_push =
  Helpers.qtest ~count:100 "transposed mxv: CSC pull ≡ CSR scatter"
    (Helpers.arb
       ~print:(fun (m, v) -> Helpers.print_mat m ^ "\n@ " ^ Helpers.print_vec v)
       QCheck.Gen.(
         pair (Helpers.mat_gen ~density:0.4 36 36)
           (Helpers.vec_gen ~density:0.6 36)))
    (fun (mm, mv) ->
      let a = Dense_ref.smatrix_of_mat f64 36 36 mm in
      let u = Dense_ref.svector_of_vec f64 mv in
      let push =
        Format_stats.with_enabled false (fun () ->
            Jit.Kernels.mxv f64 Jit.Op_spec.arithmetic ~transpose:true a u)
      in
      let pull =
        Format_stats.with_enabled true (fun () ->
            Jit.Kernels.mxv f64 Jit.Op_spec.arithmetic ~transpose:true a
              (Dense_ref.svector_of_vec f64 mv))
      in
      Entries.to_alist push = Entries.to_alist pull)

let dense_pair_of_vec model =
  let n = Array.length model in
  let vals = Array.make n 0.0 and occ = Array.make n false in
  Array.iteri
    (fun i cell ->
      match cell with
      | Some x ->
        vals.(i) <- x;
        occ.(i) <- true
      | None -> ())
    model;
  (vals, occ)

let qcheck_vxm_dense_pull =
  Helpers.qtest ~count:100 "dense vxm: pull ≡ scatter ≡ sparse"
    (Helpers.arb
       ~print:(fun (m, v) -> Helpers.print_mat m ^ "\n@ " ^ Helpers.print_vec v)
       QCheck.Gen.(
         pair (Helpers.mat_gen ~density:0.4 30 30)
           (* both fully-occupied (the branch-free pull path) and gappy
              (the guarded path) operands *)
           (oneof [ Helpers.vec_gen ~density:1.0 30; Helpers.vec_gen ~density:0.5 30 ])))
    (fun (mm, mv) ->
      let a = Dense_ref.smatrix_of_mat f64 30 30 mm in
      let sr = Jit.Op_spec.arithmetic in
      let scatter = Jit.Kernels.vxm_dense f64 sr (dense_pair_of_vec mv) a in
      let pull =
        Format_stats.with_enabled true (fun () ->
            Jit.Kernels.vxm_pull_dense f64 sr (dense_pair_of_vec mv) a)
      in
      let sparse =
        Jit.Kernels.vxm f64 sr ~transpose:false
          (Dense_ref.svector_of_vec f64 mv)
          a
      in
      let alist_of_pair (vals, occ) =
        let out = ref [] in
        for i = Array.length occ - 1 downto 0 do
          if occ.(i) then out := (i, vals.(i)) :: !out
        done;
        !out
      in
      alist_of_pair scatter = alist_of_pair pull
      && alist_of_pair scatter = Entries.to_alist sparse)

(* -- qcheck: whole algorithms agree across pipelines -- *)

let random_graph_gen n =
  QCheck.Gen.(
    list_size (int_range n (4 * n))
      (pair (int_bound (n - 1)) (int_bound (n - 1))))

let qcheck_bfs_pipelines =
  Helpers.qtest ~count:60 "BFS: dense direction-optimized ≡ sparse push"
    (Helpers.arb
       ~print:(fun edges ->
         String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) edges))
       (random_graph_gen 48))
    (fun edges ->
      let adj =
        Smatrix.of_coo Dtype.Bool 48 48
          (List.concat_map
             (fun (a, b) -> [ (a, b, true); (b, a, true) ])
             ((0, 1) :: edges))
      in
      let sparse =
        Format_stats.with_enabled false (fun () ->
            Algorithms.Bfs.native_sparse adj ~src:0)
      in
      let dense =
        Format_stats.with_enabled true (fun () ->
            Algorithms.Bfs.native_dense adj ~src:0)
      in
      Svector.equal sparse dense)

let qcheck_pagerank_pipelines =
  Helpers.qtest ~count:40 "PageRank: dense/CSC pipeline ≡ sparse/CSR"
    (Helpers.arb
       ~print:(fun edges ->
         String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) edges))
       (random_graph_gen 40))
    (fun edges ->
      let m =
        Smatrix.of_coo f64 40 40
          (List.map (fun (a, b) -> (a, b, 1.0)) ((0, 1) :: edges))
      in
      let r_sparse, i_sparse =
        Format_stats.with_enabled false (fun () ->
            Algorithms.Pagerank.native ~max_iters:15 m)
      in
      let r_dense, i_dense =
        Format_stats.with_enabled true (fun () ->
            Algorithms.Pagerank.native ~max_iters:15 m)
      in
      (* bit-identical: both pipelines fold contributions in the same
         order, so exact float equality is required, not approximate *)
      i_sparse = i_dense && Svector.equal r_sparse r_dense)

let test_pagerank_smoke () =
  let m =
    Smatrix.of_coo f64 4 4
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0); (2, 3, 1.0); (3, 0, 1.0) ]
  in
  let r0, _ =
    Format_stats.with_enabled false (fun () -> Algorithms.Pagerank.native m)
  in
  let r1, _ =
    Format_stats.with_enabled true (fun () -> Algorithms.Pagerank.native m)
  in
  Alcotest.check svec "small-graph ranks agree" r0 r1

let suite =
  [ Alcotest.test_case "extract_col is served from the cached CSC side" `Quick
      test_extract_col_cached;
    Alcotest.test_case "vmask layout picked by fill ratio" `Quick
      test_vmask_layout;
    Alcotest.test_case "complemented+replace write, both mask layouts" `Quick
      test_complemented_replace;
    Alcotest.test_case "merge write, both mask layouts" `Quick
      test_merge_no_replace_both_layouts;
    Alcotest.test_case "pagerank pipelines, smoke" `Quick test_pagerank_smoke;
    Helpers.to_alcotest qcheck_vector_roundtrip;
    Helpers.to_alcotest qcheck_csc_roundtrip;
    Helpers.to_alcotest qcheck_ewise_formats;
    Helpers.to_alcotest qcheck_mxv_pull_push;
    Helpers.to_alcotest qcheck_vxm_dense_pull;
    Helpers.to_alcotest qcheck_bfs_pipelines;
    Helpers.to_alcotest qcheck_pagerank_pipelines;
  ]
