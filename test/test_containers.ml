open Gbtl

let check = Alcotest.check
let f64 = Dtype.FP64
let vt = Helpers.svector_testable f64
let mt = Helpers.smatrix_testable f64

(* -- Svector -- *)

let test_vector_create () =
  let v = Svector.create f64 10 in
  check Alcotest.int "size" 10 (Svector.size v);
  check Alcotest.int "nvals" 0 (Svector.nvals v);
  check Alcotest.(option (float 0.0)) "get empty" None (Svector.get v 3)

let test_vector_set_get () =
  let v = Svector.create f64 10 in
  Svector.set v 5 1.5;
  Svector.set v 2 2.5;
  Svector.set v 8 3.5;
  check Alcotest.int "nvals after 3 sets" 3 (Svector.nvals v);
  check Alcotest.(option (float 0.0)) "get 5" (Some 1.5) (Svector.get v 5);
  Svector.set v 5 9.0;
  check Alcotest.int "overwrite keeps nvals" 3 (Svector.nvals v);
  check Alcotest.(option (float 0.0)) "overwritten" (Some 9.0)
    (Svector.get v 5);
  check
    Alcotest.(list (pair int (float 0.0)))
    "alist is index-sorted"
    [ (2, 2.5); (5, 9.0); (8, 3.5) ]
    (Svector.to_alist v)

let test_vector_stored_zero () =
  let v = Svector.create f64 4 in
  Svector.set v 1 0.0;
  check Alcotest.int "explicit zero is stored" 1 (Svector.nvals v);
  check Alcotest.bool "mem sees stored zero" true (Svector.mem v 1);
  check Alcotest.(list bool) "mask coercion treats stored 0 as false"
    [ false; false; false; false ]
    (Array.to_list (Svector.to_bool_dense v))

let test_vector_remove () =
  let v = Svector.of_coo f64 6 [ (0, 1.0); (3, 2.0); (5, 3.0) ] in
  Svector.remove v 3;
  check Alcotest.int "nvals" 2 (Svector.nvals v);
  Svector.remove v 3;
  check Alcotest.int "idempotent remove" 2 (Svector.nvals v);
  check
    Alcotest.(list (pair int (float 0.0)))
    "remaining" [ (0, 1.0); (5, 3.0) ] (Svector.to_alist v)

let test_vector_bounds () =
  let v = Svector.create f64 4 in
  Alcotest.check_raises "set out of bounds"
    (Svector.Index_out_of_bounds "Svector.set: index 4 outside [0, 4)")
    (fun () -> Svector.set v 4 1.0);
  Alcotest.check_raises "negative index"
    (Svector.Index_out_of_bounds "Svector.get: index -1 outside [0, 4)")
    (fun () -> ignore (Svector.get v (-1)))

let test_vector_of_coo_dup () =
  let v = Svector.of_coo f64 5 [ (1, 1.0); (1, 2.0); (1, 3.0) ] in
  check Alcotest.(option (float 0.0)) "default dup: last wins" (Some 3.0)
    (Svector.get v 1);
  let v2 =
    Svector.of_coo ~dup:(Binop.plus f64) f64 5 [ (1, 1.0); (1, 2.0); (1, 3.0) ]
  in
  check Alcotest.(option (float 0.0)) "Plus dup sums" (Some 6.0)
    (Svector.get v2 1)

let test_vector_dense_roundtrip () =
  let arr = [| 1.0; 0.0; 3.0; 0.0 |] in
  let v = Svector.of_dense f64 arr in
  check Alcotest.int "of_dense stores all (incl. zeros)" 4 (Svector.nvals v);
  check Alcotest.(array (float 0.0)) "to_dense roundtrip" arr
    (Svector.to_dense ~fill:nan v);
  let vz = Svector.of_dense_drop_zeros f64 arr in
  check Alcotest.int "drop_zeros stores 2" 2 (Svector.nvals vz)

let test_vector_dup_independent () =
  let v = Svector.of_coo f64 4 [ (1, 1.0) ] in
  let w = Svector.dup v in
  Svector.set w 2 9.0;
  check Alcotest.int "original untouched" 1 (Svector.nvals v);
  check vt "dup equals original before mutation" v
    (Svector.of_coo f64 4 [ (1, 1.0) ])

let test_vector_cast () =
  let v = Svector.of_coo f64 4 [ (0, 1.9); (2, -3.5) ] in
  let w = Svector.cast ~into:Dtype.Int32 v in
  check
    Alcotest.(list (pair int int))
    "cast truncates" [ (0, 1); (2, -3) ] (Svector.to_alist w)

(* -- Smatrix -- *)

let test_matrix_create () =
  let m = Smatrix.create f64 3 4 in
  check Alcotest.(pair int int) "shape" (3, 4) (Smatrix.shape m);
  check Alcotest.int "nvals" 0 (Smatrix.nvals m)

let test_matrix_set_get () =
  let m = Smatrix.create f64 3 3 in
  Smatrix.set m 1 2 5.0;
  Smatrix.set m 0 0 1.0;
  Smatrix.set m 2 1 7.0;
  Smatrix.set m 1 0 3.0;
  check Alcotest.int "nvals" 4 (Smatrix.nvals m);
  check Alcotest.(option (float 0.0)) "get" (Some 5.0) (Smatrix.get m 1 2);
  check Alcotest.(option (float 0.0)) "missing" None (Smatrix.get m 2 2);
  check
    Alcotest.(list (triple int int (float 0.0)))
    "coo is row-major sorted"
    [ (0, 0, 1.0); (1, 0, 3.0); (1, 2, 5.0); (2, 1, 7.0) ]
    (Smatrix.to_coo m)

let test_matrix_of_coo () =
  let m =
    Smatrix.of_coo f64 3 3 [ (2, 2, 1.0); (0, 1, 2.0); (1, 0, 3.0); (0, 1, 9.0) ]
  in
  check Alcotest.int "dedup" 3 (Smatrix.nvals m);
  check Alcotest.(option (float 0.0)) "last dup wins" (Some 9.0)
    (Smatrix.get m 0 1);
  let m2 =
    Smatrix.of_coo ~dup:(Binop.plus f64) f64 3 3 [ (0, 1, 2.0); (0, 1, 9.0) ]
  in
  check Alcotest.(option (float 0.0)) "plus dup" (Some 11.0)
    (Smatrix.get m2 0 1)

let test_matrix_rows () =
  let m = Smatrix.of_coo f64 3 4 [ (1, 0, 1.0); (1, 3, 2.0); (2, 2, 3.0) ] in
  check Alcotest.int "row 0 empty" 0 (Smatrix.row_nvals m 0);
  check Alcotest.int "row 1 has 2" 2 (Smatrix.row_nvals m 1);
  check
    Alcotest.(list (pair int (float 0.0)))
    "row 1 entries"
    [ (0, 1.0); (3, 2.0) ]
    (Svector.to_alist (Smatrix.extract_row m 1));
  check
    Alcotest.(list (pair int (float 0.0)))
    "col 3 entries" [ (1, 2.0) ]
    (Svector.to_alist (Smatrix.extract_col m 3))

let test_matrix_transpose () =
  let m = Smatrix.of_coo f64 2 3 [ (0, 1, 1.0); (0, 2, 2.0); (1, 0, 3.0) ] in
  let t = Smatrix.transpose m in
  check Alcotest.(pair int int) "transposed shape" (3, 2) (Smatrix.shape t);
  check
    Alcotest.(list (triple int int (float 0.0)))
    "transposed entries"
    [ (0, 1, 3.0); (1, 0, 1.0); (2, 0, 2.0) ]
    (Smatrix.to_coo t);
  check mt "transpose involution" m (Smatrix.transpose t)

let test_matrix_dense_roundtrip () =
  let d = [| [| 1.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let m = Smatrix.of_dense f64 d in
  check Alcotest.int "of_dense stores all" 4 (Smatrix.nvals m);
  check
    Alcotest.(array (array (float 0.0)))
    "to_dense roundtrip" d
    (Smatrix.to_dense ~fill:nan m);
  let mz = Smatrix.of_dense_drop_zeros f64 d in
  check Alcotest.int "drop zeros" 2 (Smatrix.nvals mz)

let test_matrix_bounds () =
  let m = Smatrix.create f64 2 2 in
  Alcotest.check_raises "row out of bounds"
    (Smatrix.Index_out_of_bounds "Smatrix.set: (2, 0) outside 2x2") (fun () ->
      Smatrix.set m 2 0 1.0);
  Alcotest.check_raises "ragged dense"
    (Gbtl.Error.Dim_mismatch
       "Smatrix.of_dense: expected row length 1, actual row length 2")
    (fun () ->
      ignore (Smatrix.of_dense f64 [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_matrix_remove () =
  let m = Smatrix.of_coo f64 2 2 [ (0, 0, 1.0); (1, 1, 2.0) ] in
  Smatrix.remove m 0 0;
  check Alcotest.int "nvals" 1 (Smatrix.nvals m);
  Smatrix.remove m 0 0;
  check Alcotest.int "idempotent" 1 (Smatrix.nvals m)

(* CSR structural invariant, checked after random construction. *)
let csr_well_formed m =
  let rowptr = Smatrix.unsafe_rowptr m in
  let colidx = Smatrix.unsafe_colidx m in
  let ok = ref (rowptr.(0) = 0) in
  for r = 0 to Smatrix.nrows m - 1 do
    if rowptr.(r) > rowptr.(r + 1) then ok := false;
    for p = rowptr.(r) to rowptr.(r + 1) - 2 do
      if colidx.(p) >= colidx.(p + 1) then ok := false
    done;
    for p = rowptr.(r) to rowptr.(r + 1) - 1 do
      if colidx.(p) < 0 || colidx.(p) >= Smatrix.ncols m then ok := false
    done
  done;
  !ok

let triples_gen =
  QCheck.Gen.(
    list_size (int_bound 60)
      (triple (int_bound 7) (int_bound 7) Helpers.small_float_gen))

let qcheck_csr_invariant =
  Helpers.qtest "of_coo yields well-formed CSR" (Helpers.arb triples_gen)
    (fun triples ->
      csr_well_formed (Smatrix.of_coo f64 8 8 triples))

let qcheck_transpose_involution =
  Helpers.qtest "transpose involution (random)" (Helpers.arb triples_gen)
    (fun triples ->
      let m = Smatrix.of_coo f64 8 8 triples in
      Smatrix.equal m (Smatrix.transpose (Smatrix.transpose m)))

let qcheck_transpose_entries =
  Helpers.qtest "transpose flips coordinates" (Helpers.arb triples_gen)
    (fun triples ->
      let m = Smatrix.of_coo f64 8 8 triples in
      let t = Smatrix.transpose m in
      Smatrix.fold (fun acc r c x -> acc && Smatrix.get t c r = Some x) true m)

let qcheck_set_then_get =
  Helpers.qtest "random set/get agree with a hashtable model"
    (Helpers.arb triples_gen) (fun triples ->
      let m = Smatrix.create f64 8 8 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (r, c, x) ->
          Smatrix.set m r c x;
          Hashtbl.replace model (r, c) x)
        triples;
      csr_well_formed m
      && Hashtbl.fold
           (fun (r, c) x acc -> acc && Smatrix.get m r c = Some x)
           model true
      && Smatrix.nvals m = Hashtbl.length model)

let suite =
  [ Alcotest.test_case "vector create" `Quick test_vector_create;
    Alcotest.test_case "vector set/get" `Quick test_vector_set_get;
    Alcotest.test_case "vector stored zero" `Quick test_vector_stored_zero;
    Alcotest.test_case "vector remove" `Quick test_vector_remove;
    Alcotest.test_case "vector bounds" `Quick test_vector_bounds;
    Alcotest.test_case "vector of_coo duplicates" `Quick test_vector_of_coo_dup;
    Alcotest.test_case "vector dense roundtrip" `Quick
      test_vector_dense_roundtrip;
    Alcotest.test_case "vector dup independence" `Quick
      test_vector_dup_independent;
    Alcotest.test_case "vector cast" `Quick test_vector_cast;
    Alcotest.test_case "matrix create" `Quick test_matrix_create;
    Alcotest.test_case "matrix set/get" `Quick test_matrix_set_get;
    Alcotest.test_case "matrix of_coo" `Quick test_matrix_of_coo;
    Alcotest.test_case "matrix rows/cols" `Quick test_matrix_rows;
    Alcotest.test_case "matrix transpose" `Quick test_matrix_transpose;
    Alcotest.test_case "matrix dense roundtrip" `Quick
      test_matrix_dense_roundtrip;
    Alcotest.test_case "matrix bounds" `Quick test_matrix_bounds;
    Alcotest.test_case "matrix remove" `Quick test_matrix_remove;
    Helpers.to_alcotest qcheck_csr_invariant;
    Helpers.to_alcotest qcheck_transpose_involution;
    Helpers.to_alcotest qcheck_transpose_entries;
    Helpers.to_alcotest qcheck_set_then_get;
  ]
