let () =
  Alcotest.run "ogb"
    [ ("internals", Test_internals.suite);
      ("dtype", Test_dtype.suite);
      ("operators", Test_operators.suite);
      ("containers", Test_containers.suite);
      ("output-write", Test_output.suite);
      ("ewise", Test_ewise.suite);
      ("matmul", Test_matmul.suite);
      ("apply-reduce", Test_apply_reduce.suite);
      ("extract-assign", Test_extract_assign.suite);
      ("utilities", Test_utilities.suite);
      ("matrix-market", Test_io.suite);
      ("graphs", Test_graphs.suite);
      ("jit", Test_jit.suite);
      ("jit-codegen", Test_jit_codegen.suite);
      ("minivm", Test_minivm.suite);
      ("dsl", Test_dsl.suite);
      ("vm-bridge", Test_vm_bridge.suite);
      ("expr-random", Test_expr_random.suite);
      ("exec", Test_exec.suite);
      ("pprint", Test_pprint.suite);
      ("notation (Table I)", Test_notation.suite);
      ("algorithms", Test_algorithms.suite);
      ("workloads", Test_workloads.suite);
      ("formats", Test_formats.suite);
      ("extensions", Test_extensions.suite);
      ("analysis", Test_analysis.suite);
      ("effects", Test_effects.suite);
      ("fault", Test_fault.suite);
      ("parallel", Test_parallel.suite);
      ("serve", Test_serve.suite);
      ("cost", Test_cost.suite);
      ("oocore", Test_oocore.suite);
    ]
