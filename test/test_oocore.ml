(* Out-of-core tiled storage (PR 9): bit-identity of the streamed
   kernels against the in-memory tier-1 path over random tile shapes,
   eviction under memory pressure, crash-safe tile I/O under armed
   fault points, checkpointed iteration resuming after a crash, and
   certified delta recompute ≡ full recompute for PageRank/BFS/CC. *)

open Gbtl

let f64 = Dtype.FP64

(* Every tiled matrix in this file gets its own store root so tests
   can't see each other's blobs (or a previous run's). *)
let fresh_dir =
  let k = ref 0 in
  fun () ->
    incr k;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ogb-test-tiles-%d-%d" (Unix.getpid ()) !k)
    in
    d

let with_tiled ?tile ?budget m f =
  let t = Tmatrix.of_smatrix ~dir:(fresh_dir ()) ?tile ?budget m in
  Fun.protect ~finally:(fun () -> Tmatrix.destroy t) (fun () -> f t)

let svec = Helpers.svector_testable f64

(* -- random graphs + tile shapes for qcheck -- *)

let graph_gen =
  let open QCheck.Gen in
  int_range 2 28 >>= fun n ->
  int_range 0 (3 * n) >>= fun ne ->
  list_repeat ne (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 4))
  >>= fun edges ->
  pair (int_range 1 (n + 3)) (int_range 1 (n + 3)) >>= fun tile ->
  oneofl [ 0; 1; 400; 4000 ] >|= fun budget ->
  let coo = List.map (fun (r, c, v) -> (r, c, float_of_int v)) edges in
  (n, coo, tile, budget)

let print_case (n, coo, (tr, tc), budget) =
  Printf.sprintf "n=%d nnz=%d tile=%dx%d budget=%d" n (List.length coo) tr tc
    budget

let graph_arb = QCheck.make graph_gen ~print:print_case

(* make a symmetric bool graph out of the same raw coo (for BFS/CC) *)
let sym_bool n coo =
  Smatrix.of_coo Dtype.Bool n n
    (List.concat_map
       (fun (r, c, _) -> if r = c then [] else [ (r, c, true); (c, r, true) ])
       coo)

(* -- 1. streamed vxm ≡ in-memory pull, bitwise, any tile shape -- *)

let qcheck_vxm_bit_identity =
  Helpers.qtest ~count:150 "tiled vxm bit-identical to vxm_pull_dense"
    graph_arb
    (fun (n, coo, tile, budget) ->
      let m = Smatrix.of_coo f64 n n coo in
      let u = Array.init n (fun i -> float_of_int ((i mod 5) + 1) /. 3.0) in
      let occ = Array.init n (fun i -> i mod 4 <> 3) in
      let sr = Jit.Op_spec.arithmetic in
      let ev, eo = Jit.Kernels.vxm_pull_dense f64 sr (u, occ) m in
      with_tiled ~tile ~budget m (fun t ->
          let gv, go = Oocore.Stream.vxm_tiled f64 sr (u, occ) t in
          gv = ev && go = eo))

(* -- 2. streamed PageRank ≡ in-memory PageRank, bitwise -- *)

let qcheck_pagerank_bit_identity =
  Helpers.qtest ~count:60 "tiled pagerank bit-identical to native"
    graph_arb
    (fun (n, coo, tile, budget) ->
      let m = Smatrix.of_coo f64 n n coo in
      let expect, eiters =
        Format_stats.with_enabled true (fun () -> Algorithms.Pagerank.native m)
      in
      with_tiled ~tile ~budget m (fun t ->
          let got, giters = Oocore.Stream.pagerank t in
          giters = eiters && Svector.equal got expect))

(* -- 3. eviction under pressure: budget forces tile streaming, the
   result does not change by a single bit -- *)

let test_eviction_under_pressure () =
  let n = 120 in
  let coo =
    List.init (n * 8) (fun k ->
        let r = (k * 37) mod n and c = (k * 17 + 5) mod n in
        (r, c, 1.0 +. float_of_int (k mod 7)))
  in
  let m = Smatrix.of_coo f64 n n coo in
  let expect, _ =
    Format_stats.with_enabled true (fun () -> Algorithms.Pagerank.native m)
  in
  let ev0 = Tile_stats.get_evictions () in
  let wf0 = List.assoc "tile_write_failures" (Tile_stats.counters ()) in
  with_tiled ~tile:(16, 16) ~budget:6_000 m (fun t ->
      let got, _ = Oocore.Stream.pagerank t in
      (* under an externally armed write fault (the CI ENOSPC run) dirty
         tiles refuse to evict rather than lose data, so the pressure
         shows up as write failures instead of evictions *)
      let failed =
        List.assoc "tile_write_failures" (Tile_stats.counters ()) > wf0
      in
      Alcotest.(check bool)
        "pressure observed (evictions or refused writebacks)" true
        (Tile_stats.get_evictions () > ev0 || failed);
      if not failed then
        Alcotest.(check bool)
          "stayed within budget" true
          (Tmatrix.resident_bytes t <= Tmatrix.budget t);
      Alcotest.check svec "bit-identical under pressure" expect got)

(* -- 4. crash-safe tile I/O under each armed fault point -- *)

let pagerank_under_fault point mode =
  let n = 60 in
  let coo =
    List.init (n * 6) (fun k -> ((k * 13) mod n, (k * 7 + 3) mod n, 2.0))
  in
  let m = Smatrix.of_coo f64 n n coo in
  let expect, _ =
    Format_stats.with_enabled true (fun () -> Algorithms.Pagerank.native m)
  in
  with_tiled ~tile:(9, 9) ~budget:4_000 m (fun t ->
      Fault.arm [ (point, mode) ];
      Fun.protect ~finally:Fault.disarm (fun () ->
          let got, _ = Oocore.Stream.pagerank t in
          Alcotest.check svec
            (Printf.sprintf "bit-identical under %s" point)
            expect got))

let counter name = List.assoc name (Tile_stats.counters ())

let test_fault_read_corrupt () =
  let q0 = counter "tile_quarantines" and r0 = counter "tile_rebuilds" in
  pagerank_under_fault "tile.read.corrupt" (Fault.Times 3);
  Alcotest.(check bool)
    "corrupt loads quarantined" true
    (counter "tile_quarantines" > q0);
  Alcotest.(check bool)
    "quarantined tiles rebuilt from source" true
    (counter "tile_rebuilds" > r0)

let test_fault_write_enospc () =
  pagerank_under_fault "tile.write.enospc" (Fault.Times 3)

let test_fault_io_exn () = pagerank_under_fault "tile.io.exn" (Fault.Times 2)
let test_fault_evict_slow () = pagerank_under_fault "tile.evict.slow" Fault.Once

(* a matrix built with [create] has no construction-time source: the
   per-tile edit journal must rebuild a corrupted tile instead of
   hard-failing, including overwrites and deletes *)
let test_create_rebuilds_from_journal () =
  let t =
    Tmatrix.create ~dir:(fresh_dir ()) ~tile:(4, 4) ~budget:1 f64 12 12
  in
  Fun.protect ~finally:(fun () -> Tmatrix.destroy t) @@ fun () ->
  ignore
    (Tmatrix.update_edges t
       (List.init 24 (fun k ->
            ((k * 5) mod 12, ((k * 7) + 1) mod 12, Some (float_of_int (k + 1))))));
  ignore (Tmatrix.update_edges t [ (0, 1, Some 99.0); (5, 8, None) ]);
  let expect = Tmatrix.to_smatrix t in
  Tmatrix.flush t;
  let r0 = counter "tile_rebuilds" in
  Fault.arm [ ("tile.read.corrupt", Fault.Times 4) ];
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let got = Tmatrix.to_smatrix t in
  Alcotest.(check bool)
    "journal rebuild happened" true
    (counter "tile_rebuilds" > r0);
  Alcotest.check (Helpers.smatrix_testable f64) "rebuilt content identical"
    expect got

(* -- 5. checkpointed iteration: a crash mid-run resumes from the last
   good checkpoint, and the resumed result equals the uninterrupted
   one -- *)

let test_checkpoint_resume_after_crash () =
  let store = Tile_store.open_store ~dir:(fresh_dir ()) "ckpt" in
  let codec = Exec.Iterate.marshal_codec () in
  let step ~crash_at ~iter st =
    if iter = crash_at then failwith "simulated crash";
    let st = st * 3 in
    if iter >= 9 then `Done st else `Continue st
  in
  let run ?(crash_at = -1) () =
    Exec.Iterate.run ~store ~name:"t" ~codec ~every:2 ~init:(fun () -> 1)
      ~step:(step ~crash_at) ~max_iters:50 ()
  in
  (* uninterrupted reference *)
  let straight = run () in
  Exec.Iterate.clear ~store ~name:"t" ();
  (* crash at iteration 6: checkpoints at 2 and 4 exist *)
  (match run ~crash_at:6 () with
  | _ -> Alcotest.fail "crash did not propagate"
  | exception Failure _ -> ());
  let resumed = run () in
  Alcotest.(check bool) "resumed past iteration 0" true
    (resumed.Exec.Iterate.resumed_from >= 2);
  Alcotest.(check int) "same fixed point" straight.Exec.Iterate.state
    resumed.Exec.Iterate.state;
  Alcotest.(check bool) "converged" true resumed.Exec.Iterate.converged

(* a checkpoint left by a different job under the same name (foreign
   fingerprint) must read as "no checkpoint" and be dropped, not
   resumed into the wrong run *)
let test_checkpoint_fingerprint_mismatch () =
  let store = Tile_store.open_store ~dir:(fresh_dir ()) "ckpt" in
  let codec = Exec.Iterate.marshal_codec () in
  let step ~crash_at ~iter st =
    if iter = crash_at then failwith "simulated crash";
    let st = st * 3 in
    if iter >= 9 then `Done st else `Continue st
  in
  let run ?(crash_at = -1) ~fingerprint () =
    Exec.Iterate.run ~store ~name:"t" ~codec ~every:2 ~fingerprint
      ~init:(fun () -> 1) ~step:(step ~crash_at) ~max_iters:50 ()
  in
  (* crash mid-run under job A: job A's checkpoints exist under "t" *)
  (match run ~crash_at:6 ~fingerprint:"job-a n=10" () with
  | _ -> Alcotest.fail "crash did not propagate"
  | exception Failure _ -> ());
  let fresh = run ~fingerprint:"job-b n=99" () in
  Alcotest.(check int) "foreign checkpoint not resumed" 0
    fresh.Exec.Iterate.resumed_from;
  Alcotest.(check int) "job B ran from scratch" 19683
    fresh.Exec.Iterate.state

let test_checkpointed_pagerank () =
  let n = 40 in
  let coo = List.init (n * 4) (fun k -> ((k * 11) mod n, (k * 5 + 1) mod n, 1.0)) in
  let m = Smatrix.of_coo f64 n n coo in
  let expect, eiters =
    Format_stats.with_enabled true (fun () -> Algorithms.Pagerank.native m)
  in
  with_tiled ~tile:(8, 8) m (fun t ->
      let got, giters = Oocore.Stream.pagerank ~ckpt:"pr-test" ~every:2 t in
      Alcotest.(check int) "same iterations" eiters giters;
      Alcotest.check svec "checkpointed run bit-identical" expect got)

(* -- 6. delta recompute ≡ full recompute -- *)

let qcheck_delta_bfs_cc =
  Helpers.qtest ~count:60 "delta BFS/CC additions equal full recompute"
    graph_arb
    (fun (n, coo, tile, budget) ->
      let m = sym_bool n coo in
      (* previous results on the pre-batch graph *)
      let t = Tmatrix.of_smatrix ~dir:(fresh_dir ()) ~tile ~budget m in
      Fun.protect ~finally:(fun () -> Tmatrix.destroy t) @@ fun () ->
      let prev_bfs =
        Oocore.Delta.dense_of_svector ~n ~fill:0
          (Algorithms.Bfs.native m ~src:0)
      in
      let prev_cc =
        Oocore.Delta.dense_of_svector ~n ~fill:0
          (Algorithms.Connected_components.native m)
      in
      (* additions-only symmetric batch derived from the seed *)
      let a = (List.length coo * 7 + 1) mod n
      and b = (List.length coo * 3 + n / 2) mod n in
      let batch = if a = b then [] else [ (a, b, Some true); (b, a, Some true) ] in
      let bfs, vb = Oocore.Delta.bfs_after ~src:0 ~prev:prev_bfs ~batch t in
      let cc, vc = Oocore.Delta.cc_after ~prev:prev_cc ~batch t in
      (batch = [] || Analysis.Incr.usable vb)
      && (batch = [] || Analysis.Incr.usable vc)
      && bfs = Oocore.Delta.bfs_full t ~src:0
      && cc = Oocore.Delta.cc_full t)

(* the same equivalence on directed (asymmetric) graphs with a one-way
   batch edge: the full algorithms only propagate labels along edge
   direction, so the delta seeding must not push backwards *)
let qcheck_delta_bfs_cc_directed =
  Helpers.qtest ~count:60
    "delta BFS/CC on asymmetric graphs equal full recompute" graph_arb
    (fun (n, coo, tile, budget) ->
      let m =
        Smatrix.of_coo Dtype.Bool n n
          (List.filter_map
             (fun (r, c, _) -> if r = c then None else Some (r, c, true))
             coo)
      in
      let t = Tmatrix.of_smatrix ~dir:(fresh_dir ()) ~tile ~budget m in
      Fun.protect ~finally:(fun () -> Tmatrix.destroy t) @@ fun () ->
      let prev_bfs =
        Oocore.Delta.dense_of_svector ~n ~fill:0
          (Algorithms.Bfs.native m ~src:0)
      in
      let prev_cc =
        Oocore.Delta.dense_of_svector ~n ~fill:0
          (Algorithms.Connected_components.native m)
      in
      (* a single directed edge, no reverse: label v's component must
         not leak back into u *)
      let a = (List.length coo * 5 + 2) mod n
      and b = (List.length coo * 11 + 3) mod n in
      let batch = if a = b then [] else [ (a, b, Some true) ] in
      let bfs, _ = Oocore.Delta.bfs_after ~src:0 ~prev:prev_bfs ~batch t in
      let cc, _ = Oocore.Delta.cc_after ~prev:prev_cc ~batch t in
      bfs = Oocore.Delta.bfs_full t ~src:0 && cc = Oocore.Delta.cc_full t)

let test_delta_deletion_falls_back () =
  let n = 10 in
  let m = sym_bool n (List.init n (fun i -> (i, (i + 1) mod n, 1.0))) in
  with_tiled ~tile:(4, 4) m (fun t ->
      let prev =
        Oocore.Delta.dense_of_svector ~n ~fill:0 (Algorithms.Bfs.native m ~src:0)
      in
      let batch = [ (0, 1, None); (1, 0, None) ] in
      let bfs, verdict = Oocore.Delta.bfs_after ~src:0 ~prev ~batch t in
      (match verdict with
      | Analysis.Incr.Full_recompute _ -> ()
      | v -> Alcotest.failf "expected rejection, got %s" (Analysis.Incr.explain v));
      Alcotest.(check (array int)) "full recompute after deletion"
        (Oocore.Delta.bfs_full t ~src:0)
        bfs)

let test_delta_pagerank_warm_restart () =
  let n = 50 in
  let threshold = 1.e-14 in
  let coo = List.init (n * 5) (fun k -> ((k * 7) mod n, (k * 3 + 1) mod n, 1.0)) in
  let m = Smatrix.of_coo f64 n n coo in
  with_tiled ~tile:(12, 12) m (fun t ->
      let prev, _ = Oocore.Stream.pagerank ~threshold t in
      let prev = Oocore.Delta.dense_of_svector ~n ~fill:0.0 prev in
      let batch = [ (1, n - 1, Some 1.0); (n - 1, 1, Some 1.0) ] in
      let (got, warm_iters), verdict =
        Oocore.Delta.pagerank_after ~threshold ~prev ~batch t
      in
      (match verdict with
      | Analysis.Incr.Warm_restart _ -> ()
      | v ->
        Alcotest.failf "expected warm restart, got %s" (Analysis.Incr.explain v));
      let full, full_iters =
        Format_stats.with_enabled true (fun () ->
            Algorithms.Pagerank.native ~threshold (Tmatrix.to_smatrix t))
      in
      Alcotest.(check bool)
        "warm restart no slower than cold" true (warm_iters <= full_iters);
      (* both runs are within the (tiny) convergence threshold of the
         same unique fixed point — the certifier's contraction
         argument *)
      Svector.iter
        (fun i v ->
          let w = Option.value ~default:0.0 (Svector.get full i) in
          if abs_float (v -. w) > 1.e-5 then
            Alcotest.failf "rank %d differs: %.17g vs %.17g" i v w)
        got)

(* -- 7. Matrix Market hardening: malformed inputs land as located
   errors, never exceptions or garbage -- *)

let err_check name content ~wants_line =
  Test_io.with_temp_file content (fun path ->
      match Matrix_market.read_result f64 path with
      | Ok _ -> Alcotest.failf "%s: malformed input accepted" name
      | Error e ->
        Alcotest.(check bool)
          (name ^ ": file located") true
          (e.Error.file = Some path);
        if wants_line then
          Alcotest.(check bool)
            (name ^ ": line located") true
            (e.Error.line <> None))

let test_mm_bad_header () =
  err_check "bad banner" "%%NotMatrixMarket nope\n1 1 0\n" ~wants_line:true;
  err_check "bad field"
    "%%MatrixMarket matrix coordinate quaternion general\n1 1 0\n"
    ~wants_line:true;
  err_check "bad symmetry"
    "%%MatrixMarket matrix coordinate real palindromic\n1 1 0\n"
    ~wants_line:true;
  err_check "bad size line"
    "%%MatrixMarket matrix coordinate real general\nthree by three\n"
    ~wants_line:true

let test_mm_bad_indices () =
  err_check "row out of range"
    "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1.0\n"
    ~wants_line:true;
  err_check "zero index"
    "%%MatrixMarket matrix coordinate real general\n3 3 1\n0 2 1.0\n"
    ~wants_line:true;
  err_check "overflowing index"
    "%%MatrixMarket matrix coordinate real general\n\
     3 3 1\n99999999999999999999999 1 1.0\n"
    ~wants_line:true;
  err_check "non-numeric value"
    "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 banana\n"
    ~wants_line:true

let test_mm_truncated () =
  err_check "truncated entries"
    "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n"
    ~wants_line:false;
  Test_io.with_temp_file
    "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n"
    (fun path ->
      match Matrix_market.read f64 path with
      | _ -> Alcotest.fail "legacy reader accepted truncated file"
      | exception Matrix_market.Parse_error msg ->
        Alcotest.(check bool)
          "legacy error carries location" true
          (Helpers.contains_substring msg path))

let test_mm_missing_file () =
  match Matrix_market.read_result f64 "/no/such/file.mtx" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error e ->
    Alcotest.(check bool) "file recorded" true (e.Error.file <> None)

(* -- 8. real graph through the tiled path -- *)

let find_karate () =
  (* dune runs the test binary from _build; the data file lives in the
     source tree *)
  let candidates =
    [ "data/karate.mtx"; "../data/karate.mtx"; "../../data/karate.mtx";
      "../../../data/karate.mtx"; "../../../../data/karate.mtx" ]
  in
  List.find_opt Sys.file_exists candidates

let test_karate_tiled_ingest () =
  match find_karate () with
  | None -> Alcotest.skip ()
  | Some path -> (
    match Tmatrix.of_mm_file ~dir:(fresh_dir ()) ~tile:(10, 10) ~budget:3_000 f64 path with
    | Error e -> Alcotest.failf "karate ingest failed: %s" (Error.to_string e)
    | Ok t ->
      Fun.protect ~finally:(fun () -> Tmatrix.destroy t) @@ fun () ->
      Alcotest.(check (pair int int)) "shape" (34, 34) (Tmatrix.shape t);
      Alcotest.(check int) "symmetric nvals" 156 (Tmatrix.nvals t);
      let expect, _ =
        Format_stats.with_enabled true (fun () ->
            Algorithms.Pagerank.native (Matrix_market.read f64 path))
      in
      let got, _ = Oocore.Stream.pagerank t in
      Alcotest.check svec "karate pagerank through tiles" expect got)

(* -- 9. health surface: the tile counters show up in doctor's report -- *)

let test_health_reports_tiles () =
  let report = Jit.Health.collect ~probe:false () in
  let json = Jit.Health.to_json report in
  Alcotest.(check bool) "tiles section present" true
    (Helpers.contains_substring json "\"tiles\"");
  Alcotest.(check bool) "eviction counter present" true
    (Helpers.contains_substring json "tile_evictions")

let suite =
  [ Helpers.to_alcotest qcheck_vxm_bit_identity;
    Helpers.to_alcotest qcheck_pagerank_bit_identity;
    Alcotest.test_case "eviction under pressure, bit-identical" `Quick
      test_eviction_under_pressure;
    Alcotest.test_case "fault: tile.read.corrupt quarantines + rebuilds" `Quick
      test_fault_read_corrupt;
    Alcotest.test_case "fault: tile.write.enospc keeps tile resident" `Quick
      test_fault_write_enospc;
    Alcotest.test_case "fault: tile.io.exn contained" `Quick test_fault_io_exn;
    Alcotest.test_case "fault: tile.evict.slow tolerated" `Quick
      test_fault_evict_slow;
    Alcotest.test_case "create-built tiles rebuild from edit journal" `Quick
      test_create_rebuilds_from_journal;
    Alcotest.test_case "checkpoint resumes after crash" `Quick
      test_checkpoint_resume_after_crash;
    Alcotest.test_case "foreign checkpoint fingerprint starts fresh" `Quick
      test_checkpoint_fingerprint_mismatch;
    Alcotest.test_case "checkpointed pagerank bit-identical" `Quick
      test_checkpointed_pagerank;
    Helpers.to_alcotest qcheck_delta_bfs_cc;
    Helpers.to_alcotest qcheck_delta_bfs_cc_directed;
    Alcotest.test_case "delta with deletions falls back to full" `Quick
      test_delta_deletion_falls_back;
    Alcotest.test_case "delta pagerank warm restart" `Quick
      test_delta_pagerank_warm_restart;
    Alcotest.test_case "matrix market: bad headers rejected" `Quick
      test_mm_bad_header;
    Alcotest.test_case "matrix market: bad indices rejected" `Quick
      test_mm_bad_indices;
    Alcotest.test_case "matrix market: truncation rejected" `Quick
      test_mm_truncated;
    Alcotest.test_case "matrix market: missing file is an error" `Quick
      test_mm_missing_file;
    Alcotest.test_case "karate club through the tiled path" `Quick
      test_karate_tiled_ingest;
    Alcotest.test_case "health report carries tile stats" `Quick
      test_health_reports_tiles ]
