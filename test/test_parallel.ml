(* Parallel-kernel suite: every chunked twin in Jit.Par_kernels must be
   bit-identical to its sequential original at any grain and any domain
   count; end-to-end DSL ops and tier-1 algorithms must be bit-identical
   across par thresholds; a failing pool worker must degrade to the
   sequential result; and the dispatch counters must not lose updates
   under concurrent domains (the Jit_stats atomic fix). *)

open Gbtl
module Pool = Parallel.Pool
module AK = Jit.Array_kernels
module PK = Jit.Par_kernels

(* The container runs single-core by default ([workers () = 0] inlines
   every parallel_for sequentially), so the pool tests pin a 4-domain
   budget to actually exercise concurrent chunk claiming. *)
let with_domains n f =
  Pool.set_domains n;
  Fun.protect ~finally:Pool.clear_domains_override f

(* ---- operand builders: dense option arrays -> kernel operands ---- *)

let csr_of_dense m =
  let nrows = Array.length m in
  let ncols = if nrows = 0 then 0 else Array.length m.(0) in
  let rp = Array.make (nrows + 1) 0 in
  let ci = ref [] and vs = ref [] in
  let k = ref 0 in
  for i = 0 to nrows - 1 do
    rp.(i) <- !k;
    for j = 0 to ncols - 1 do
      match m.(i).(j) with
      | Some v ->
        ci := j :: !ci;
        vs := v :: !vs;
        incr k
      | None -> ()
    done
  done;
  rp.(nrows) <- !k;
  (rp, Array.of_list (List.rev !ci), Array.of_list (List.rev !vs))

let transpose_dense m =
  let nrows = Array.length m in
  let ncols = if nrows = 0 then 0 else Array.length m.(0) in
  Array.init ncols (fun j -> Array.init nrows (fun i -> m.(i).(j)))

(* CSC of [m]: column pointers with rows ascending inside each column. *)
let csc_of_dense m = csr_of_dense (transpose_dense m)

let ventry_of_dense v =
  let idx = ref [] and vls = ref [] in
  let n = ref 0 in
  Array.iteri
    (fun i -> function
      | Some x ->
        idx := i :: !idx;
        vls := x :: !vls;
        incr n
      | None -> ())
    v;
  (Array.of_list (List.rev !idx), Array.of_list (List.rev !vls), !n)

let dense_of_opt ~default v =
  ( Array.map (function Some x -> x | None -> default) v,
    Array.map Option.is_some v )

let int_mat = Array.map (Array.map (Option.map int_of_float))
let int_vec = Array.map (Option.map int_of_float)

(* ---- qcheck case: square operands plus a chunk grain small enough to
   force several chunks (the interesting decompositions) ---- *)

let case_gen =
  let open QCheck.Gen in
  int_range 2 40 >>= fun n ->
  Helpers.mat_gen n n >>= fun a ->
  Helpers.mat_gen n n >>= fun b ->
  Helpers.vec_gen n >>= fun u ->
  oneofl [ 1; 2; 3; 7; 16 ] >|= fun grain -> (n, a, b, u, grain)

let case_arb =
  Helpers.arb
    ~print:(fun (n, _, _, _, grain) -> Printf.sprintf "n=%d grain=%d" n grain)
    case_gen

let qtest name law = Helpers.qtest ~count:60 name case_arb law

(* ---- output-partitioned kernels: exact for every operator, so they
   are checked with float arithmetic AND min-plus semirings ---- *)

let prop_mxv_gather (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csr = csr_of_dense a and ue = ventry_of_dense u in
  let same ~add ~mul ~dummy =
    PK.mxv_gather ~grain ~add ~mul ~dummy ~nrows:n ~ncols:n csr ue
    = AK.mxv ~add ~mul ~dummy ~nrows:n ~ncols:n ~transpose:false csr ue
  in
  same ~add:( +. ) ~mul:( *. ) ~dummy:0.
  && same ~add:min ~mul:( +. ) ~dummy:infinity

let prop_vxm_gather (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csr = csr_of_dense a and ue = ventry_of_dense u in
  let same ~add ~mul ~dummy =
    PK.vxm_gather ~grain ~add ~mul ~dummy ~nrows:n ~ncols:n csr ue
    = AK.vxm ~add ~mul ~dummy ~nrows:n ~ncols:n ~transpose:true ue csr
  in
  same ~add:( +. ) ~mul:( *. ) ~dummy:0.
  && same ~add:min ~mul:( +. ) ~dummy:infinity

let prop_mxv_pull_masked (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csc = csc_of_dense a in
  let du = dense_of_opt ~default:0. u in
  let visited = Array.init n (fun i -> i mod 3 = 0) in
  let same ~stop =
    PK.mxv_pull_masked ~grain ~add:( +. ) ~mul:( *. ) ~dummy:0. ~stop ~ncols:n
      ~visited csc du
    = AK.mxv_pull_masked ~add:( +. ) ~mul:( *. ) ~dummy:0. ~stop ~ncols:n
        ~visited csc du
  in
  (* both the full-fold and the early-exit (BFS LogicalOr-style) form *)
  same ~stop:(fun _ -> false) && same ~stop:(fun v -> v > 0.)

let prop_vxm_pull_dense (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csc = csc_of_dense a in
  let partial = dense_of_opt ~default:0. u in
  let full =
    (Array.map (function Some x -> x | None -> 1.) u, Array.make n true)
  in
  let same du =
    PK.vxm_pull_dense ~grain ~add:( +. ) ~mul:( *. ) ~dummy:0. ~ncols:n csc du
    = AK.vxm_pull_dense ~add:( +. ) ~mul:( *. ) ~dummy:0. ~ncols:n csc du
  in
  (* both occupancy branches: partial frontier and the PageRank-style
     fully dense one *)
  same partial && same full

let prop_mxm (n, a, b, _, grain) =
  with_domains 4 @@ fun () ->
  let ca = csr_of_dense a and cb = csr_of_dense b in
  PK.mxm_gustavson ~grain ~add:( +. ) ~mul:( *. ) ~dummy:0. ~nrows_a:n
    ~ncols_b:n ca cb
  = AK.mxm_gustavson ~add:( +. ) ~mul:( *. ) ~dummy:0. ~nrows_a:n ~ncols_b:n
      ca cb

let prop_dense_ewise_apply (n, _, _, u, grain) =
  with_domains 4 @@ fun () ->
  ignore n;
  let da = dense_of_opt ~default:0. u in
  let db =
    dense_of_opt ~default:0. (Array.of_list (List.rev (Array.to_list u)))
  in
  let f x = (2. *. x) +. 1. in
  PK.ewise_add_dense ~grain ~op:( +. ) ~dummy:0. da db
  = AK.ewise_add_dense ~op:( +. ) ~dummy:0. da db
  && PK.ewise_mult_dense ~grain ~op:( *. ) ~dummy:0. da db
     = AK.ewise_mult_dense ~op:( *. ) ~dummy:0. da db
  && PK.apply_dense ~grain ~f ~dummy:0. da = AK.apply_dense ~f ~dummy:0. da

let prop_apply_v (n, _, _, u, grain) =
  with_domains 4 @@ fun () ->
  ignore n;
  let ue = ventry_of_dense u in
  let f x = (x *. x) -. 3. in
  PK.apply_v ~grain ~f ue = AK.apply_v ~f ue

(* ---- chunk-combined kernels: gated to exactly associative ⊕ by the
   dispatcher, so they are checked with the operators that actually
   reach them (integer Plus/Times, Min/Max over floats) ---- *)

let prop_mxv_scatter (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csr = csr_of_dense (int_mat a) and ue = ventry_of_dense (int_vec u) in
  PK.mxv_scatter ~grain ~add:( + ) ~mul:( * ) ~dummy:0 ~ncols:n csr ue
  = AK.mxv ~add:( + ) ~mul:( * ) ~dummy:0 ~nrows:n ~ncols:n ~transpose:true
      csr ue

let prop_vxm_scatter (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csr = csr_of_dense (int_mat a) and ue = ventry_of_dense (int_vec u) in
  PK.vxm_scatter ~grain ~add:( + ) ~mul:( * ) ~dummy:0 ~ncols:n csr ue
  = AK.vxm ~add:( + ) ~mul:( * ) ~dummy:0 ~nrows:n ~ncols:n ~transpose:false
      ue csr

let prop_vxm_dense (n, a, _, u, grain) =
  with_domains 4 @@ fun () ->
  let csr = csr_of_dense (int_mat a) in
  let du = dense_of_opt ~default:0 (int_vec u) in
  PK.vxm_dense ~grain ~add:( + ) ~mul:( * ) ~dummy:0 ~nrows:n ~ncols:n du csr
  = AK.vxm_dense ~add:( + ) ~mul:( * ) ~dummy:0 ~nrows:n ~ncols:n du csr

let prop_reduce (n, _, _, u, grain) =
  with_domains 4 @@ fun () ->
  ignore n;
  let iu = int_vec u in
  let di = dense_of_opt ~default:0 iu in
  let df = dense_of_opt ~default:0. u in
  let ie = ventry_of_dense iu in
  PK.reduce_dense ~grain ~op:( + ) ~identity:0 di
  = AK.reduce_dense ~op:( + ) ~identity:0 di
  && PK.reduce_dense ~grain ~op:min ~identity:infinity df
     = AK.reduce_dense ~op:min ~identity:infinity df
  && PK.reduce_v ~grain ~op:( + ) ~identity:0 ie
     = AK.reduce_v ~op:( + ) ~identity:0 ie

(* Chunk boundaries are a pure function of the grain, never of the
   domain count: the same reduce at 1 and 4 domains is bit-identical. *)
let prop_domain_count_independence (n, _, _, u, grain) =
  ignore n;
  let df = dense_of_opt ~default:0. u in
  let at d =
    with_domains d @@ fun () ->
    PK.reduce_dense ~grain ~op:min ~identity:infinity df
  in
  at 1 = at 4

(* ---- pool plan gating ---- *)

let test_plan_gating () =
  with_domains 4 (fun () ->
      Pool.with_threshold 0 (fun () ->
          (match Pool.plan ~work:100_000 ~n:100_000 () with
          | Some g -> Alcotest.(check bool) "grain splits" true (g < 100_000)
          | None -> Alcotest.fail "expected a parallel plan");
          Alcotest.(check bool)
            "unsplittable loop stays sequential" true
            (Pool.plan ~work:100_000 ~n:1 () = None));
      Pool.with_threshold max_int (fun () ->
          Alcotest.(check bool)
            "threshold gates small work" true
            (Pool.plan ~work:100_000 ~n:100_000 () = None)));
  with_domains 1 (fun () ->
      Pool.with_threshold 0 (fun () ->
          Alcotest.(check bool)
            "single-domain budget stays sequential" true
            (Pool.plan ~work:100_000 ~n:100_000 () = None)))

let test_grain_purity () =
  let g1 = with_domains 1 (fun () -> Pool.grain_for 100_000) in
  let g4 = with_domains 4 (fun () -> Pool.grain_for 100_000) in
  Alcotest.(check int) "grain independent of domain count" g1 g4;
  Alcotest.(check bool)
    "grain is a power of two" true
    (g1 land (g1 - 1) = 0)

(* ---- end-to-end: DSL ops with mask and accumulator across par
   thresholds (threshold 0 forces every eligible kernel onto its
   parallel variant; max_int keeps everything sequential) ---- *)

let test_dsl_across_thresholds () =
  with_domains 4 @@ fun () ->
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = 96 in
  let triples =
    List.concat
      (List.init n (fun i ->
           [ (i, (i + 1) mod n, 1.0 +. float_of_int (i mod 5));
             (i, ((i * 7) + 3) mod n, 2.0) ]))
  in
  let u_entries = List.init n (fun i -> (i, float_of_int (i mod 7) +. 1.)) in
  let mask_entries =
    List.filter_map (fun i -> if i mod 2 = 0 then Some (i, 1.0) else None)
      (List.init n Fun.id)
  in
  let run () =
    let m = Container.matrix_coo ~nrows:n ~ncols:n triples in
    let u = Container.vector_coo ~size:n u_entries in
    let mask = Container.vector_coo ~size:n mask_entries in
    let w = Container.vector_coo ~size:n [ (0, 0.25) ] in
    Ops.set ~mask:(Ops.Mask mask) w (!!m @. !!u);
    let w2 = Container.vector_coo ~size:n (List.init n (fun i -> (i, 0.5))) in
    Ops.update w2 (!!m @. !!u);
    (Container.vector_entries w, Container.vector_entries w2)
  in
  let seq = Pool.with_threshold max_int run in
  let par = Pool.with_threshold 0 run in
  Alcotest.(check bool) "masked and accumulated results identical" true
    (seq = par)

(* ---- end-to-end: tier-1 algorithms bit-identical across thresholds
   (float Plus reductions are gated sequential; everything that does
   run in parallel partitions the output space) ---- *)

let test_algorithms_across_thresholds () =
  with_domains 4 @@ fun () ->
  let g =
    Graphs.Generators.erdos_renyi_paper
      (Graphs.Rng.create ~seed:42)
      ~nvertices:120
  in
  let adjb = Graphs.Convert.bool_adjacency g in
  let adjf = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let run () =
    let ranks, iters = Algorithms.Pagerank.native ~threshold:1e-12 adjf in
    let levels = Algorithms.Bfs.levels_of_svector (Algorithms.Bfs.native adjb ~src:0) in
    (ranks, iters, levels)
  in
  let r1, i1, l1 = Pool.with_threshold max_int run in
  let r2, i2, l2 = Pool.with_threshold 0 run in
  Alcotest.(check bool) "pagerank ranks bit-identical" true (Svector.equal r1 r2);
  Alcotest.(check int) "pagerank iteration count" i1 i2;
  Alcotest.(check (list (pair int int))) "bfs levels" l1 l2

(* ---- chaos: a worker that raises on every chunk degrades the job to
   a sequential re-run with the exact sequential result ---- *)

let test_worker_fault_degrades () =
  with_domains 4 @@ fun () ->
  Pool.reset_counters ();
  Fault.arm [ ("par.worker.exn", Fault.Always) ];
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let n = 256 in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if (i + j) mod 7 = 0 then Some (float_of_int ((i * j) mod 5))
            else None))
  in
  let u =
    Array.init n (fun i ->
        if i mod 3 = 0 then Some (float_of_int (i mod 4)) else None)
  in
  let csr = csr_of_dense a and ue = ventry_of_dense u in
  let pk =
    PK.mxv_gather ~grain:16 ~add:( +. ) ~mul:( *. ) ~dummy:0. ~nrows:n
      ~ncols:n csr ue
  in
  let ak =
    AK.mxv ~add:( +. ) ~mul:( *. ) ~dummy:0. ~nrows:n ~ncols:n
      ~transpose:false csr ue
  in
  Alcotest.(check bool) "degraded result identical" true (pk = ak);
  let degrades = List.assoc "degrades" (Pool.counters ()) in
  Alcotest.(check bool) "degrade recorded" true (degrades > 0)

(* ---- the Jit_stats bugfix: plain int-ref counters lost updates under
   concurrent domains; atomics must account for every increment ---- *)

let test_counter_race () =
  let before = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.lookups in
  let doms =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Jit.Jit_stats.record_lookup ()
            done))
  in
  Array.iter Domain.join doms;
  let after = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.lookups in
  Alcotest.(check int) "no lost increments" 40_000 (after - before)

(* ---- doctor surfaces the pool ---- *)

let test_doctor_reports_pool () =
  let s = Jit.Health.to_string (Jit.Health.collect ~probe:false ()) in
  Alcotest.(check bool) "doctor reports domain pool" true
    (Helpers.contains_substring s "domain pool");
  Alcotest.(check bool) "doctor reports pool stats" true
    (Helpers.contains_substring s "pool stats")

let suite =
  [ Helpers.to_alcotest (qtest "par mxv gather bit-identical" prop_mxv_gather);
    Helpers.to_alcotest (qtest "par vxm gather bit-identical" prop_vxm_gather);
    Helpers.to_alcotest
      (qtest "par masked pull bit-identical" prop_mxv_pull_masked);
    Helpers.to_alcotest
      (qtest "par dense pull bit-identical" prop_vxm_pull_dense);
    Helpers.to_alcotest (qtest "par mxm bit-identical" prop_mxm);
    Helpers.to_alcotest
      (qtest "par dense ewise/apply bit-identical" prop_dense_ewise_apply);
    Helpers.to_alcotest (qtest "par sparse apply bit-identical" prop_apply_v);
    Helpers.to_alcotest
      (qtest "par mxv scatter bit-identical (exact add)" prop_mxv_scatter);
    Helpers.to_alcotest
      (qtest "par vxm scatter bit-identical (exact add)" prop_vxm_scatter);
    Helpers.to_alcotest
      (qtest "par dense push bit-identical (exact add)" prop_vxm_dense);
    Helpers.to_alcotest
      (qtest "par reduce bit-identical (exact monoids)" prop_reduce);
    Helpers.to_alcotest
      (qtest "results independent of domain count"
         prop_domain_count_independence);
    Alcotest.test_case "plan gating (threshold, domains, splittability)"
      `Quick test_plan_gating;
    Alcotest.test_case "grain is pure and power-of-two" `Quick
      test_grain_purity;
    Alcotest.test_case "DSL mask+accum identical across thresholds" `Quick
      test_dsl_across_thresholds;
    Alcotest.test_case "algorithms bit-identical across thresholds" `Quick
      test_algorithms_across_thresholds;
    Alcotest.test_case "worker fault degrades to sequential result" `Quick
      test_worker_fault_degrades;
    Alcotest.test_case "stats counters survive a 4-domain race" `Quick
      test_counter_race;
    Alcotest.test_case "doctor reports pool stats" `Quick
      test_doctor_reports_pool ]
