open Minivm
open Minivm.Ast
open Minivm.Value

let run_expr ?(prelude = []) e =
  let env = Env.create () in
  Builtins.install env;
  Interp.exec_block env prelude;
  Interp.eval env e

let i n = Const (Int n)
let f x = Const (Float x)
let s x = Const (Str x)

let vcheck msg expected actual =
  Alcotest.check Alcotest.string msg (Value.to_string expected)
    (Value.to_string actual)

let test_arithmetic () =
  vcheck "int add" (Int 7) (run_expr (Binary ("+", i 3, i 4)));
  vcheck "int/float promotion" (Float 5.5)
    (run_expr (Binary ("+", i 3, f 2.5)));
  vcheck "true division" (Float 1.5) (run_expr (Binary ("/", i 3, i 2)));
  vcheck "floor division" (Int 1) (run_expr (Binary ("//", i 3, i 2)));
  vcheck "negative floor division" (Int (-2))
    (run_expr (Binary ("//", i (-3), i 2)));
  vcheck "modulo" (Int 1) (run_expr (Binary ("%", i 7, i 3)));
  vcheck "python-style modulo" (Int 2) (run_expr (Binary ("%", i (-7), i 3)));
  vcheck "string concat" (Str "ab") (run_expr (Binary ("+", s "a", s "b")))

let test_comparison_and_logic () =
  vcheck "lt" (Bool true) (run_expr (Binary ("<", i 1, i 2)));
  vcheck "eq across numeric types" (Bool true)
    (run_expr (Binary ("==", i 2, f 2.0)));
  vcheck "neq" (Bool true) (run_expr (Binary ("!=", s "a", s "b")));
  vcheck "and short-circuits" (Int 0)
    (run_expr (Binary ("and", i 0, Var "unbound_would_fail")));
  vcheck "or short-circuits" (Int 5)
    (run_expr (Binary ("or", i 5, Var "unbound_would_fail")));
  vcheck "not" (Bool false) (run_expr (Unary ("not", i 1)))

let test_variables_and_scope () =
  let prelude =
    [ Assign ("x", i 10);
      Def ("bump", [ "n" ], [ Return (Binary ("+", Var "n", Var "x")) ]) ]
  in
  vcheck "closure sees global" (Int 13)
    (run_expr ~prelude (Call (Var "bump", [ i 3 ])));
  let env = Interp.run [ Assign ("a", i 1); Assign ("a", i 2) ] in
  vcheck "assignment rebinds" (Int 2) (Env.lookup env "a")

let test_control_flow () =
  let program =
    [ Assign ("total", i 0);
      For
        ( "k",
          Call (Var "range", [ i 10 ]),
          [ If
              (Binary ("==", Var "k", i 5), [ Continue ], []);
            If (Binary ("==", Var "k", i 8), [ Break ], []);
            Assign ("total", Binary ("+", Var "total", Var "k")) ] ) ]
  in
  let env = Interp.run program in
  (* 0+1+2+3+4+6+7 = 23 *)
  vcheck "for with continue/break" (Int 23) (Env.lookup env "total")

let test_while () =
  let program =
    [ Assign ("n", i 0);
      While
        ( Binary ("<", Var "n", i 100),
          [ Assign ("n", Binary ("+", Var "n", i 7)) ] ) ]
  in
  vcheck "while" (Int 105) (Env.lookup (Interp.run program) "n")

let test_recursion () =
  let prelude =
    [ Def
        ( "fib",
          [ "n" ],
          [ If
              ( Binary ("<", Var "n", i 2),
                [ Return (Var "n") ],
                [ Return
                    (Binary
                       ( "+",
                         Call (Var "fib", [ Binary ("-", Var "n", i 1) ]),
                         Call (Var "fib", [ Binary ("-", Var "n", i 2) ]) ))
                ] ) ] ) ]
  in
  vcheck "fib 10" (Int 55) (run_expr ~prelude (Call (Var "fib", [ i 10 ])))

let test_lists_and_dicts () =
  let program =
    [ Assign ("l", ListLit [ i 1; i 2 ]);
      ExprStmt (Method (Var "l", "append", [ i 3 ]));
      SetIndex (Var "l", i 0, i 9);
      Assign ("first", Index (Var "l", i 0));
      Assign ("n", Call (Var "len", [ Var "l" ])) ]
  in
  let env = Interp.run program in
  vcheck "set/get" (Int 9) (Env.lookup env "first");
  vcheck "append extends" (Int 3) (Env.lookup env "n")

let test_lambda () =
  vcheck "lambda application" (Int 9)
    (run_expr
       (Call (Lambda ([ "x" ], [ Return (Binary ("*", Var "x", Var "x")) ]), [ i 3 ])))

let test_builtins () =
  vcheck "len str" (Int 5) (run_expr (Call (Var "len", [ s "hello" ])));
  vcheck "abs" (Int 4) (run_expr (Call (Var "abs", [ i (-4) ])));
  vcheck "min" (Int 1) (run_expr (Call (Var "min", [ i 1; i 2 ])));
  vcheck "int of float" (Int 3) (run_expr (Call (Var "int", [ f 3.9 ])));
  vcheck "str" (Str "42") (run_expr (Call (Var "str", [ i 42 ])))

let test_errors () =
  let expect_error e =
    match run_expr e with
    | exception Interp.Runtime_error _ -> ()
    | v -> Alcotest.failf "expected error, got %s" (Value.to_string v)
  in
  (match run_expr (Var "missing") with
  | exception Vm_error.Unbound_variable { name = "missing"; enclosing = None }
    -> ()
  | exception e ->
    Alcotest.failf "expected located unbound error, got %s"
      (Printexc.to_string e)
  | v -> Alcotest.failf "expected error, got %s" (Value.to_string v));
  (* inside a function the diagnostic carries the enclosing name *)
  (match
     run_expr
       ~prelude:[ Def ("probe", [], [ Return (Var "missing") ]) ]
       (Call (Var "probe", []))
   with
  | exception Vm_error.Unbound_variable
      { name = "missing"; enclosing = Some "probe" } -> ()
  | exception e ->
    Alcotest.failf "expected error located in probe, got %s"
      (Printexc.to_string e)
  | v -> Alcotest.failf "expected error, got %s" (Value.to_string v));
  expect_error (Binary ("+", i 1, s "x"));
  expect_error (Call (i 1, []));
  expect_error (Index (i 1, i 0));
  expect_error (Binary ("//", i 1, i 0))

(* context-manager protocol via custom hooks *)
type Value.foreign += Ctx of string

let test_with_hooks () =
  let log = ref [] in
  let hooks =
    { Interp.no_hooks with
      Interp.context_enter =
        (function
        | Foreign (Ctx name) ->
          log := ("enter " ^ name) :: !log;
          true
        | _ -> false);
      context_exit =
        (function
        | Foreign (Ctx name) -> log := ("exit " ^ name) :: !log
        | _ -> ()) }
  in
  let saved = Interp.hooks () in
  Interp.set_hooks hooks;
  Fun.protect
    ~finally:(fun () -> Interp.set_hooks saved)
    (fun () ->
      let env = Env.create () in
      Builtins.install env;
      Env.define env "a" (Foreign (Ctx "a"));
      Env.define env "b" (Foreign (Ctx "b"));
      Interp.exec_block env
        [ With ([ Var "a"; Var "b" ], [ Assign ("x", i 1) ]) ];
      Alcotest.check
        Alcotest.(list string)
        "enter in order, exit in reverse"
        [ "enter a"; "enter b"; "exit b"; "exit a" ]
        (List.rev !log))

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons and logic" `Quick
      test_comparison_and_logic;
    Alcotest.test_case "variables and scope" `Quick test_variables_and_scope;
    Alcotest.test_case "for/continue/break" `Quick test_control_flow;
    Alcotest.test_case "while" `Quick test_while;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "lists and dicts" `Quick test_lists_and_dicts;
    Alcotest.test_case "lambda" `Quick test_lambda;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "runtime errors" `Quick test_errors;
    Alcotest.test_case "with-context hooks" `Quick test_with_hooks;
  ]
