open Gbtl

let f64 = Dtype.FP64
let mk_vec = Dense_ref.svector_of_vec f64
let alist = Alcotest.(list (pair int (float 0.0)))

let test_add_union () =
  let u = Svector.of_coo f64 5 [ (0, 1.0); (2, 2.0) ] in
  let v = Svector.of_coo f64 5 [ (2, 10.0); (4, 20.0) ] in
  let w = Svector.create f64 5 in
  Ewise.vector_add (Binop.plus f64) ~out:w u v;
  Alcotest.check alist "union with op on intersection"
    [ (0, 1.0); (2, 12.0); (4, 20.0) ]
    (Svector.to_alist w)

let test_mult_intersection () =
  let u = Svector.of_coo f64 5 [ (0, 1.0); (2, 2.0) ] in
  let v = Svector.of_coo f64 5 [ (2, 10.0); (4, 20.0) ] in
  let w = Svector.create f64 5 in
  Ewise.vector_mult (Binop.times f64) ~out:w u v;
  Alcotest.check alist "intersection only" [ (2, 20.0) ] (Svector.to_alist w)

let test_add_with_minus_is_not_symmetric () =
  (* eWiseAdd with Minus: the operator applies only where both stored —
     singletons pass through unnegated (a classic GraphBLAS gotcha). *)
  let u = Svector.of_coo f64 3 [ (0, 5.0) ] in
  let v = Svector.of_coo f64 3 [ (0, 3.0); (1, 7.0) ] in
  let w = Svector.create f64 3 in
  Ewise.vector_add (Binop.minus f64) ~out:w u v;
  Alcotest.check alist "minus on both, passthrough on singleton"
    [ (0, 2.0); (1, 7.0) ]
    (Svector.to_alist w)

let test_matrix_add () =
  let a = Smatrix.of_coo f64 2 2 [ (0, 0, 1.0); (1, 1, 2.0) ] in
  let b = Smatrix.of_coo f64 2 2 [ (0, 0, 10.0); (0, 1, 20.0) ] in
  let c = Smatrix.create f64 2 2 in
  Ewise.matrix_add (Binop.plus f64) ~out:c a b;
  Alcotest.check
    Alcotest.(list (triple int int (float 0.0)))
    "matrix union"
    [ (0, 0, 11.0); (0, 1, 20.0); (1, 1, 2.0) ]
    (Smatrix.to_coo c)

let test_size_mismatch () =
  let u = Svector.create f64 3 and v = Svector.create f64 4 in
  let w = Svector.create f64 3 in
  Alcotest.check_raises "size mismatch"
    (Svector.Dimension_mismatch "eWiseAdd: expected size 3, actual size 4")
    (fun () ->
      Ewise.vector_add (Binop.plus f64) ~out:w u v)

let gen_pair_masked =
  QCheck.Gen.(
    Helpers.vec_gen 6 >>= fun u ->
    Helpers.vec_gen 6 >>= fun v ->
    Helpers.vec_gen 6 >>= fun c ->
    Helpers.vmask_gen 6 >>= fun mask ->
    Helpers.binop_gen >>= fun op ->
    Helpers.accum_gen >>= fun accum ->
    bool >|= fun replace -> (u, v, c, mask, op, accum, replace))

let qcheck_vector_add =
  Helpers.qtest ~count:400 "eWiseAdd vector matches dense model"
    (Helpers.arb gen_pair_masked)
    (fun (u, v, c, mask, op, accum, replace) ->
      let out = mk_vec c in
      Ewise.vector_add ~mask ?accum ~replace op ~out (mk_vec u) (mk_vec v);
      let t = Dense_ref.ewise_vec_t ~union:true op u v in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let qcheck_vector_mult =
  Helpers.qtest ~count:400 "eWiseMult vector matches dense model"
    (Helpers.arb gen_pair_masked)
    (fun (u, v, c, mask, op, accum, replace) ->
      let out = mk_vec c in
      Ewise.vector_mult ~mask ?accum ~replace op ~out (mk_vec u) (mk_vec v);
      let t = Dense_ref.ewise_vec_t ~union:false op u v in
      let expected =
        Dense_ref.write_vec ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Svector.equal out (mk_vec expected))

let gen_matrix_masked =
  QCheck.Gen.(
    Helpers.mat_gen 4 5 >>= fun a ->
    Helpers.mat_gen 4 5 >>= fun b ->
    Helpers.mat_gen 4 5 >>= fun c ->
    Helpers.mmask_gen 4 5 >>= fun mask ->
    Helpers.binop_gen >>= fun op ->
    Helpers.accum_gen >>= fun accum ->
    bool >|= fun replace -> (a, b, c, mask, op, accum, replace))

let qcheck_matrix_add =
  Helpers.qtest ~count:300 "eWiseAdd matrix matches dense model"
    (Helpers.arb gen_matrix_masked)
    (fun (a, b, c, mask, op, accum, replace) ->
      let out = Dense_ref.smatrix_of_mat f64 4 5 c in
      Ewise.matrix_add ~mask ?accum ~replace op
        ~out
        (Dense_ref.smatrix_of_mat f64 4 5 a)
        (Dense_ref.smatrix_of_mat f64 4 5 b);
      let t = Dense_ref.ewise_mat_t ~union:true op a b in
      let expected =
        Dense_ref.write_mat ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Smatrix.equal out (Dense_ref.smatrix_of_mat f64 4 5 expected))

let qcheck_matrix_mult =
  Helpers.qtest ~count:300 "eWiseMult matrix matches dense model"
    (Helpers.arb gen_matrix_masked)
    (fun (a, b, c, mask, op, accum, replace) ->
      let out = Dense_ref.smatrix_of_mat f64 4 5 c in
      Ewise.matrix_mult ~mask ?accum ~replace op
        ~out
        (Dense_ref.smatrix_of_mat f64 4 5 a)
        (Dense_ref.smatrix_of_mat f64 4 5 b);
      let t = Dense_ref.ewise_mat_t ~union:false op a b in
      let expected =
        Dense_ref.write_mat ~mask ~accum:(Dense_ref.accum_f accum) ~replace c t
      in
      Smatrix.equal out (Dense_ref.smatrix_of_mat f64 4 5 expected))

let qcheck_structural_laws =
  Helpers.qtest ~count:300 "pattern algebra: nvals(add) and nvals(mult)"
    (Helpers.arb QCheck.Gen.(pair (Helpers.vec_gen 8) (Helpers.vec_gen 8)))
    (fun (u, v) ->
      let su = mk_vec u and sv = mk_vec v in
      let add = Svector.create f64 8 and mult = Svector.create f64 8 in
      Ewise.vector_add (Binop.plus f64) ~out:add su sv;
      Ewise.vector_mult (Binop.times f64) ~out:mult su sv;
      Svector.nvals add + Svector.nvals mult
      = Svector.nvals su + Svector.nvals sv)

let suite =
  [ Alcotest.test_case "add is union" `Quick test_add_union;
    Alcotest.test_case "mult is intersection" `Quick test_mult_intersection;
    Alcotest.test_case "add with Minus passthrough" `Quick
      test_add_with_minus_is_not_symmetric;
    Alcotest.test_case "matrix add" `Quick test_matrix_add;
    Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
    Helpers.to_alcotest qcheck_vector_add;
    Helpers.to_alcotest qcheck_vector_mult;
    Helpers.to_alcotest qcheck_matrix_add;
    Helpers.to_alcotest qcheck_matrix_mult;
    Helpers.to_alcotest qcheck_structural_laws;
  ]
