(* ogb — command-line front end: generate graphs, inspect matrix-market
   files, run the paper's algorithms at any execution tier, and inspect
   the JIT backend. *)

open Cmdliner
open Gbtl

(* -- graph sources (spec parsing shared with the daemon's [load]) -- *)

let load_float_matrix spec symmetrize =
  Server.Graph_spec.load_fp64 spec ~symmetrize

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* -- run subcommand -- *)

let run_algorithm algo tier spec src symmetrize top =
  match load_float_matrix spec symmetrize with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok m ->
    let n = Smatrix.nrows m in
    Printf.printf "graph: %d vertices, %d edges; algorithm=%s tier=%s\n" n
      (Smatrix.nvals m) algo tier;
    let bool_m = Smatrix.cast ~into:Dtype.Bool m in
    let cont = Ogb.Container.of_smatrix m in
    let bool_cont = Ogb.Container.of_smatrix bool_m in
    let show_vector entries =
      let entries = List.filteri (fun i _ -> i < top) entries in
      List.iter (fun (i, x) -> Printf.printf "  %d: %g\n" i x) entries
    in
    let ok =
      match algo, tier with
      | "bfs", "native" ->
        let levels, dt = time (fun () -> Algorithms.Bfs.native bool_m ~src) in
        Printf.printf "reached %d vertices in %.3f ms\n" (Svector.nvals levels)
          (1000.0 *. dt);
        show_vector
          (List.map (fun (i, l) -> (i, float_of_int l))
             (Algorithms.Bfs.levels_of_svector levels));
        true
      | "bfs", "dsl" ->
        let levels, dt = time (fun () -> Algorithms.Bfs.dsl bool_cont ~src) in
        Printf.printf "reached %d vertices in %.3f ms\n"
          (Ogb.Container.nvals levels) (1000.0 *. dt);
        show_vector (Ogb.Container.vector_entries levels);
        true
      | "bfs", "vm" ->
        let levels, dt = time (fun () -> Algorithms.Bfs.vm_loops bool_cont ~src) in
        Printf.printf "reached %d vertices in %.3f ms\n"
          (Ogb.Container.nvals levels) (1000.0 *. dt);
        show_vector (Ogb.Container.vector_entries levels);
        true
      | "sssp", "native" ->
        let d, dt = time (fun () -> Algorithms.Sssp.native m ~src) in
        Printf.printf "solved in %.3f ms\n" (1000.0 *. dt);
        show_vector (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] d));
        true
      | "sssp", "dsl" ->
        let d, dt = time (fun () -> Algorithms.Sssp.dsl cont ~src) in
        Printf.printf "solved in %.3f ms\n" (1000.0 *. dt);
        show_vector (Algorithms.Sssp.distances_of_container d);
        true
      | "sssp", "vm" ->
        let d, dt = time (fun () -> Algorithms.Sssp.vm_loops cont ~src) in
        Printf.printf "solved in %.3f ms\n" (1000.0 *. dt);
        show_vector (Algorithms.Sssp.distances_of_container d);
        true
      | "pagerank", "native" ->
        let (ranks, iters), dt = time (fun () -> Algorithms.Pagerank.native m) in
        Printf.printf "converged in %d iterations, %.3f ms\n" iters
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] ranks)));
        true
      | "pagerank", "dsl" ->
        let (ranks, iters), dt = time (fun () -> Algorithms.Pagerank.dsl cont) in
        Printf.printf "converged in %d iterations, %.3f ms\n" iters
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Algorithms.Pagerank.ranks_of_container ranks));
        true
      | "pagerank", "nonblocking" ->
        let (ranks, iters), dt =
          time (fun () -> Algorithms.Pagerank.nonblocking cont)
        in
        Printf.printf "converged in %d iterations, %.3f ms\n" iters
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Algorithms.Pagerank.ranks_of_container ranks));
        true
      | "pagerank", "vm" ->
        let ranks, dt = time (fun () -> Algorithms.Pagerank.vm_loops cont) in
        Printf.printf "done in %.3f ms\n" (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Algorithms.Pagerank.ranks_of_container ranks));
        true
      | "tc", "native" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt = time (fun () -> Algorithms.Triangle.native l) in
        Printf.printf "triangles: %d (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "tc", "dsl" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt =
          time (fun () -> Algorithms.Triangle.dsl (Ogb.Container.of_smatrix l))
        in
        Printf.printf "triangles: %g (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "tc", "nonblocking" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt =
          time (fun () ->
              Algorithms.Triangle.nonblocking (Ogb.Container.of_smatrix l))
        in
        Printf.printf "triangles: %g (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "tc", "vm" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt =
          time (fun () ->
              Algorithms.Triangle.vm_loops (Ogb.Container.of_smatrix l))
        in
        Printf.printf "triangles: %g (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "cc", "native" ->
        let labels, dt =
          time (fun () -> Algorithms.Connected_components.native bool_m)
        in
        Printf.printf "components: %d (%.3f ms)\n"
          (Algorithms.Connected_components.component_count labels)
          (1000.0 *. dt);
        true
      | "bc", "native" ->
        let bc, dt =
          time (fun () -> Algorithms.Bc.native (Smatrix.cast ~into:Dtype.Bool m))
        in
        Printf.printf "betweenness centrality in %.3f ms; top vertices:\n"
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] bc)));
        true
      | "ktruss", "native" ->
        let adj = Smatrix.cast ~into:Dtype.Bool m in
        let truss, dt = time (fun () -> Algorithms.Ktruss.native ~k:4 adj) in
        Printf.printf "4-truss has %d edges (%.3f ms)\n"
          (Algorithms.Ktruss.edge_count truss) (1000.0 *. dt);
        true
      | "mis", "native" ->
        let iset, dt =
          time (fun () -> Algorithms.Mis.native (Smatrix.cast ~into:Dtype.Bool m))
        in
        Printf.printf "independent set of %d vertices (%.3f ms)\n"
          (Svector.nvals iset) (1000.0 *. dt);
        true
      | "cc", "dsl" ->
        let labels, dt =
          time (fun () -> Algorithms.Connected_components.dsl bool_cont)
        in
        ignore labels;
        Printf.printf "done (%.3f ms)\n" (1000.0 *. dt);
        true
      | "cc", "vm" ->
        let labels, dt =
          time (fun () -> Algorithms.Connected_components.vm_loops bool_cont)
        in
        Printf.printf "components: %d (%.3f ms)\n"
          (Algorithms.Connected_components.component_count
             (Ogb.Container.as_vector Dtype.Int64 labels))
          (1000.0 *. dt);
        true
      | "labelprop", "native" ->
        let labels, dt = time (fun () -> Algorithms.Labelprop.native bool_m) in
        Printf.printf "communities: %d (%.3f ms)\n"
          (Algorithms.Labelprop.community_count labels)
          (1000.0 *. dt);
        true
      | "labelprop", ("dsl" | "nonblocking") ->
        let runner =
          if tier = "dsl" then Algorithms.Labelprop.dsl
          else Algorithms.Labelprop.nonblocking
        in
        let (labels, rounds), dt = time (fun () -> runner bool_cont) in
        Printf.printf "%d communities after %d sweeps (%.3f ms)\n"
          (List.length
             (List.sort_uniq compare
                (List.map snd (Ogb.Container.vector_entries labels))))
          rounds (1000.0 *. dt);
        true
      | "labelprop", "vm" ->
        let labels, dt =
          time (fun () -> Algorithms.Labelprop.vm_loops bool_cont)
        in
        Printf.printf "communities: %d (%.3f ms)\n"
          (List.length
             (List.sort_uniq compare
                (List.map snd (Ogb.Container.vector_entries labels))))
          (1000.0 *. dt);
        true
      | "ktruss", ("dsl" | "nonblocking") ->
        let runner =
          if tier = "dsl" then Algorithms.Ktruss.dsl
          else Algorithms.Ktruss.nonblocking
        in
        let truss, dt = time (fun () -> runner ~k:4 bool_cont) in
        Printf.printf "4-truss has %d edges (%.3f ms)\n"
          (Ogb.Container.nvals truss / 2)
          (1000.0 *. dt);
        true
      | "ktruss", "vm" ->
        let truss, dt =
          time (fun () -> Algorithms.Ktruss.vm_loops ~k:4 bool_cont)
        in
        Printf.printf "4-truss has %d edges (%.3f ms)\n"
          (Ogb.Container.nvals truss / 2)
          (1000.0 *. dt);
        true
      | "bc", ("dsl" | "nonblocking") ->
        let runner =
          if tier = "dsl" then Algorithms.Bc.dsl else Algorithms.Bc.nonblocking
        in
        let c, dt = time (fun () -> runner bool_cont ~src) in
        Printf.printf
          "single-source betweenness from %d in %.3f ms; top vertices:\n" src
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Ogb.Container.vector_entries c));
        true
      | "bc", "vm" ->
        let c, dt = time (fun () -> Algorithms.Bc.vm_loops bool_cont ~src) in
        Printf.printf
          "single-source betweenness from %d in %.3f ms; top vertices:\n" src
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Ogb.Container.vector_entries c));
        true
      | _, _ ->
        Printf.eprintf "unsupported algorithm/tier combination %s/%s\n" algo
          tier;
        false
    in
    if ok then 0 else 1

let graph_arg =
  let doc =
    "Graph source: a generator spec (er:n=1024, rmat:scale=10,ef=8, \
     grid:rows=10,cols=10, tree:r=2,h=8, complete:n=16, path:n=100, \
     cycle:n=100, ws:n=1000,k=4,beta=0.1, ba:n=1000,m=3; all accept \
     seed=N) or a MatrixMarket file path."
  in
  Arg.(value & opt string "er:n=1024" & info [ "graph"; "g" ] ~doc)

let run_cmd =
  let algo =
    Arg.(
      required
      & pos 0 (some (enum [ ("bfs", "bfs"); ("sssp", "sssp");
                            ("pagerank", "pagerank"); ("tc", "tc");
                            ("cc", "cc"); ("mis", "mis"); ("bc", "bc");
                            ("ktruss", "ktruss");
                            ("labelprop", "labelprop") ])) None
      & info [] ~docv:"ALGORITHM")
  in
  let tier =
    Arg.(
      value
      & opt
          (enum
             [ ("native", "native"); ("dsl", "dsl"); ("vm", "vm");
               ("nonblocking", "nonblocking") ])
          "native"
      & info [ "tier"; "t" ]
          ~doc:"Execution tier: native, dsl, vm or nonblocking.")
  in
  let src =
    Arg.(value & opt int 0 & info [ "src"; "s" ] ~doc:"Source vertex.")
  in
  let sym =
    Arg.(value & flag & info [ "symmetrize" ] ~doc:"Mirror every edge.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Entries to print.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a graph algorithm at a chosen execution tier")
    Term.(const run_algorithm $ algo $ tier $ graph_arg $ src $ sym $ top)

(* -- gen subcommand -- *)

let generate spec out symmetrize =
  match Server.Graph_spec.parse spec with
  | `Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | `File _ ->
    Printf.eprintf "error: gen requires a generator spec, not a file\n";
    1
  | `Edges g ->
    let g = if symmetrize then Graphs.Edge_list.symmetrize g else g in
    let m = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
    Matrix_market.write ~comment:("generated from " ^ spec) m out;
    Printf.printf "wrote %d x %d matrix (%d entries) to %s\n"
      (Smatrix.nrows m) (Smatrix.ncols m) (Smatrix.nvals m) out;
    0

let gen_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~doc:"Output MatrixMarket file.")
  in
  let sym =
    Arg.(value & flag & info [ "symmetrize" ] ~doc:"Mirror every edge.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph and save it as MatrixMarket")
    Term.(const generate $ graph_arg $ out $ sym)

(* -- info subcommand -- *)

let info_file path =
  match Matrix_market.read Dtype.FP64 path with
  | exception (Matrix_market.Parse_error e | Sys_error e) ->
    Printf.eprintf "error: %s\n" e;
    1
  | m ->
    let degrees = Utilities.row_degrees m in
    let dmax = Array.fold_left max 0 degrees in
    let total = Array.fold_left ( + ) 0 degrees in
    Printf.printf "%s: %d x %d, %d stored entries\n" path (Smatrix.nrows m)
      (Smatrix.ncols m) (Smatrix.nvals m);
    Printf.printf "out-degree: max %d, mean %.2f\n" dmax
      (float_of_int total /. float_of_int (max 1 (Smatrix.nrows m)));
    0

let info_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "info" ~doc:"Inspect a MatrixMarket file")
    Term.(const info_file $ path)

(* -- jit subcommand -- *)

let print_dispatch_tables () =
  (match Jit.Jit_stats.fusions () with
  | [] -> ()
  | fusions ->
    Printf.printf "fusion rewrites fired:\n";
    List.iter
      (fun (name, count) -> Printf.printf "  %-20s %d\n" name count)
      fusions);
  (match Jit.Jit_stats.per_signature () with
  | [] -> ()
  | sigs ->
    Printf.printf
      "per-signature cache activity (hits+misses=dispatches, fmt=operand \
       layouts):\n";
    List.iter
      (fun (key, hits, misses) ->
        Printf.printf "  %-64s fmt:%-16s %d+%d\n" key
          (Jit.Kernel_sig.formats_of_key key)
          hits misses)
      sigs);
  match Jit.Jit_stats.formats () with
  | [] -> ()
  | counters ->
    Printf.printf "formats:";
    List.iter (fun (name, n) -> Printf.printf " %s=%d" name n) counters;
    print_newline ()

let jit_status action clear =
  match action with
  | Some a when a <> "status" ->
    Printf.eprintf "error: unknown jit action %S (expected \"status\")\n" a;
    1
  | _ ->
  if clear then begin
    Jit.Disk_cache.clear ();
    Printf.printf "cleared kernel cache at %s\n" (Jit.Disk_cache.dir ())
  end;
  Printf.printf "backend: %s\n" (Jit.Native_backend.explain ());
  Printf.printf "effective: %s\n"
    (match Jit.Dispatch.effective_backend () with
    | `Native -> "native"
    | `Closure -> "closure");
  Printf.printf "cache directory: %s\n" (Jit.Disk_cache.dir ());
  Format.printf "stats: %a@." Jit.Jit_stats.pp (Jit.Jit_stats.snapshot ());
  print_dispatch_tables ();
  0

let jit_cmd =
  let action =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ACTION" ~doc:"Optional action; only $(b,status).")
  in
  let clear =
    Arg.(value & flag & info [ "clear" ] ~doc:"Clear the on-disk kernel cache.")
  in
  Cmd.v
    (Cmd.info "jit" ~doc:"Show (or clear) the dynamic-compilation backend state")
    Term.(const jit_status $ action $ clear)

(* -- exec subcommand: dump nonblocking plans and execution traces -- *)

let print_last_trace () =
  match Exec.last_trace () with
  | None -> ()
  | Some t -> print_string (Exec.Trace.to_string t)

(* --schedule: pin the serialized schedule for every plan this process
   builds (the A/B benching hook; OGB_SCHEDULE is the env equivalent) *)
let apply_schedule_pin = function
  | None -> true
  | Some s -> (
    match Cost.Schedule.parse s with
    | Ok sch ->
      Exec.Planner.pin (Some sch);
      true
    | Error e ->
      Printf.eprintf "error: bad --schedule: %s\n" e;
      false)

let schedule_arg =
  let doc =
    "Pin the plan schedule instead of searching (same grammar as \
     $(b,OGB_SCHEDULE)): comma-separated $(b,fuse=on|off), \
     $(b,sink_transpose|apply_chain|apply_ewise|mult_reduce|push_mask=on|off), \
     $(b,layout=auto|pull|push|csr), $(b,node<i>.layout=...); \
     \"default\" is the greedy all-on schedule."
  in
  Arg.(value & opt (some string) None & info [ "schedule" ] ~doc)

let print_planner_summary () =
  Printf.printf "planner:";
  List.iter
    (fun (k, v) -> Printf.printf " %s=%d" k v)
    (Exec.Planner.counters () @ [ ("cached", Exec.Planner.cache_size ()) ]);
  Printf.printf "\ncalibration: generation %d (%s)\n"
    (Cost.Calibration.generation ())
    (if Cost.Calibration.calibrated () then "loaded" else "defaults")

let exec_demo demo spec symmetrize domains schedule =
  if not (apply_schedule_pin schedule) then 1 else
  match load_float_matrix spec symmetrize with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok m ->
    if domains > 0 then Exec.Scheduler.set_domains domains;
    Printf.printf "graph: %d vertices, %d edges; scheduler: %d domain(s)\n\n"
      (Smatrix.nrows m) (Smatrix.nvals m)
      (Exec.Scheduler.domain_count ());
    let open Ogb.Ops.Infix in
    let neg = Jit.Op_spec.Named "AdditiveInverse" in
    (* row-degree vectors of A and A.T as deferred subexpressions *)
    let ac = Ogb.Container.of_smatrix m in
    let u () = Ogb.Ops.reduce_rows !!ac in
    let v () = Ogb.Ops.reduce_rows (tr !!ac) in
    let run_tc () =
      let l =
        Algorithms.Triangle.of_undirected (Smatrix.cast ~into:Dtype.Bool m)
      in
      let lc = Ogb.Container.of_smatrix l in
      let expr () =
        Ogb.Context.with_ops
          [ Ogb.Context.semiring "Arithmetic" ]
          (fun () -> !!lc @. tr !!lc)
      in
      let mask = { Ogb.Expr.container = lc; complemented = false } in
      Printf.printf "== tc: B<L> = L @ L.T (transpose sink + mask push)\n%s"
        (Exec.explain ~mask (expr ()));
      ignore (Exec.force ~mask (expr ()));
      print_last_trace ()
    in
    let run_chain () =
      let base =
        Ogb.Context.with_ops
          [ Ogb.Context.binary "Plus" ]
          (fun () -> u () +: v ())
      in
      let e = Ogb.Ops.apply ~f:neg (Ogb.Ops.apply ~f:neg base) in
      Printf.printf
        "== chain: neg(neg(rowsum(A) + rowsum(A.T))) (apply∘apply, \
         apply∘ewise)\n%s"
        (Exec.explain e);
      ignore (Exec.force e);
      print_last_trace ()
    in
    let run_dot () =
      let diff =
        Ogb.Context.with_ops
          [ Ogb.Context.binary "Minus" ]
          (fun () -> u () +: v ())
      in
      let e =
        Ogb.Context.with_ops
          [ Ogb.Context.binary "Times" ]
          (fun () -> diff *: diff)
      in
      Printf.printf
        "== dot: reduce(d*d), d = rowsum(A)-rowsum(A.T) (CSE + mult∘reduce)\n%s"
        (Exec.explain_reduce ~op:"Plus" ~identity:"0" e);
      let s = Exec.reduce ~op:"Plus" ~identity:"0" e in
      print_last_trace ();
      Printf.printf "result: %g\n" s
    in
    let run_mxv () =
      (* a filled-in operand, so the layout pass can pick the pull
         direction at plan time *)
      let n = Smatrix.nrows m in
      let uc =
        Ogb.Container.of_svector
          (Svector.of_dense Dtype.FP64 (Array.make n 1.0))
      in
      let e =
        Ogb.Context.with_ops
          [ Ogb.Context.semiring "Arithmetic" ]
          (fun () -> tr !!ac @. !!uc)
      in
      Printf.printf
        "== mxv: y = A.T @ u (transpose sink -> cached-CSC dispatch)\n%s"
        (Exec.explain e);
      ignore (Exec.force e);
      print_last_trace ()
    in
    (match demo with
    | "tc" -> run_tc ()
    | "chain" -> run_chain ()
    | "dot" -> run_dot ()
    | "mxv" -> run_mxv ()
    | _ ->
      run_tc ();
      print_newline ();
      run_chain ();
      print_newline ();
      run_dot ();
      print_newline ();
      run_mxv ());
    print_newline ();
    print_dispatch_tables ();
    print_planner_summary ();
    0

let exec_cmd =
  let demo =
    Arg.(
      value
      & opt
          (enum
             [ ("all", "all"); ("tc", "tc"); ("chain", "chain");
               ("dot", "dot"); ("mxv", "mxv") ])
          "all"
      & info [ "demo"; "d" ]
          ~doc:
            "Which plan to dump: tc (masked matmul), chain (apply fusion), \
             dot (CSE + mult-reduce), mxv (transposed product on the cached \
             CSC side), or all.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:"Worker domains for the scheduler (0 = default/OGB_DOMAINS).")
  in
  let sym =
    Arg.(value & flag & info [ "symmetrize" ] ~doc:"Mirror every edge.")
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Dump nonblocking execution plans (DAG, fusion rewrites) and run \
          them with a per-node trace")
    Term.(const exec_demo $ demo $ graph_arg $ sym $ domains $ schedule_arg)

(* -- doctor subcommand: resilience-layer health report -- *)

let doctor no_probe json =
  let report = Jit.Health.collect ~probe:(not no_probe) () in
  if json then print_endline (Jit.Health.to_json report)
  else print_string (Jit.Health.to_string report);
  (* exit-code contract: 0 healthy, 1 degraded (breaker open — dispatch
     still works on closures), 2 hard-failed (corrupt cache plugins) *)
  match Jit.Health.verdict report with
  | `Healthy -> 0
  | `Degraded -> 1
  | `Failed -> 2

let doctor_cmd =
  let no_probe =
    Arg.(
      value & flag
      & info [ "no-probe" ]
          ~doc:
            "Skip the native-backend availability probe (which costs one \
             trivial compile on a cold cache).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as one JSON object — the same body the server's \
             $(b,health) request returns.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Check the JIT/execution resilience layer: backend probe, on-disk \
          cache integrity (checksums), circuit-breaker state, compile \
          timeout/retry configuration, fault-injection status and the \
          resilience counters.  Exits 1 when degraded (circuit breaker \
          open), 2 when hard-failed (corrupt cache plugins).")
    Term.(const doctor $ no_probe $ json)

(* -- serve subcommand: the multi-tenant graph-service daemon -- *)

let serve sock addr workers queue session_domains batch_window warm_n no_warm =
  let base = Server.Daemon.default_config () in
  let cfg =
    { Server.Daemon.sock_path =
        (match sock with Some p -> p | None -> base.Server.Daemon.sock_path);
      tcp_addr =
        (match addr with
        | Some a -> (
          match String.rindex_opt a ':' with
          | Some i ->
            let h = String.sub a 0 i in
            Some
              ( (if h = "" then "127.0.0.1" else h),
                int_of_string
                  (String.sub a (i + 1) (String.length a - i - 1)) )
          | None -> Some ("127.0.0.1", int_of_string a))
        | None -> base.Server.Daemon.tcp_addr);
      workers =
        (if workers > 0 then workers else base.Server.Daemon.workers);
      queue_cap = (if queue > 0 then queue else base.Server.Daemon.queue_cap);
      session_budget =
        (if session_domains > 0 then session_domains
         else base.Server.Daemon.session_budget);
      batch_window =
        (if batch_window >= 0.0 then batch_window
         else base.Server.Daemon.batch_window);
      warm_n = (if warm_n > 0 then warm_n else base.Server.Daemon.warm_n);
      warm = base.Server.Daemon.warm && not no_warm }
  in
  (* Block SIGTERM/SIGINT in every thread (domains and reader threads
     inherit this mask) and receive them on a dedicated sigwait thread
     below.  A Sys.set_signal handler would only run once some thread
     reaches an OCaml safe point — at idle they are all parked in C
     (Domain.join, pthread_cond_wait, select), which turns a SIGTERM
     into a minutes-long stall.  sigwait delivers regardless. *)
  ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
  (* every session plan runs under the analyzer: shape/dtype
     verification at each stage plus the mandatory effect/race stage
     with the Prebuild remedy at pre-schedule *)
  Analysis.Hook.install ();
  match Server.Daemon.start cfg with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok running ->
    let (_ : Thread.t) =
      Thread.create
        (fun () ->
          let (_ : int) = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
          Server.Daemon.stop running)
        ()
    in
    Printf.printf "ogb serve: listening on %s%s (%d workers, queue %d, \
                   session budget %d)\n%!"
      cfg.Server.Daemon.sock_path
      (match cfg.Server.Daemon.tcp_addr with
      | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p
      | None -> "")
      cfg.Server.Daemon.workers cfg.Server.Daemon.queue_cap
      cfg.Server.Daemon.session_budget;
    Server.Daemon.wait running;
    Printf.printf "ogb serve: stopped\n%!";
    0

let serve_cmd =
  let sock =
    Arg.(
      value
      & opt (some string) None
      & info [ "sock" ] ~doc:"Unix-socket path (default: \\$OGB_SERVE_SOCK).")
  in
  let addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr" ]
          ~doc:"Also listen on TCP host:port (default: \\$OGB_SERVE_ADDR).")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ]
          ~doc:"Worker domains draining the request queue (0 = env/default).")
  in
  let queue =
    Arg.(
      value & opt int 0
      & info [ "queue" ]
          ~doc:"Admission-queue bound; overflow is shed (0 = env/default).")
  in
  let session_domains =
    Arg.(
      value & opt int 0
      & info [ "session-domains" ]
          ~doc:"Pool-domain budget per session request (0 = whole pool).")
  in
  let batch_window =
    Arg.(
      value & opt float (-1.0)
      & info [ "batch-window" ]
          ~doc:"Seconds a batch leader holds same-signature products open.")
  in
  let warm_n =
    Arg.(
      value & opt int 0
      & info [ "warm-n" ]
          ~doc:"Vertex count the startup JIT warm-up assumes (0 = default).")
  in
  let no_warm =
    Arg.(value & flag & info [ "no-warm" ] ~doc:"Skip the startup warm-up.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant graph-service daemon: line-delimited JSON \
          over a Unix socket, shared warm JIT cache, per-session operator \
          contexts, admission control and same-signature request batching. \
          SIGTERM/SIGINT shut it down cleanly.")
    Term.(
      const serve $ sock $ addr $ workers $ queue $ session_domains
      $ batch_window $ warm_n $ no_warm)

(* -- client subcommand -- *)

let client sock addr abort requests =
  let addr =
    Option.bind addr (fun a ->
        match String.rindex_opt a ':' with
        | Some i ->
          let h = String.sub a 0 i in
          Option.map
            (fun p -> ((if h = "" then "127.0.0.1" else h), p))
            (int_of_string_opt
               (String.sub a (i + 1) (String.length a - i - 1)))
        | None -> Option.map (fun p -> ("127.0.0.1", p)) (int_of_string_opt a))
  in
  match Server.Client.connect ?sock ?addr () with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok c ->
    let to_line r =
      let r = String.trim r in
      if String.length r > 0 && r.[0] = '{' then r
      else Printf.sprintf "{\"op\": %S}" r
    in
    if abort then begin
      (* ship the requests and vanish without reading a byte back —
         the CI smoke test's mid-request disconnect *)
      List.iter (fun r -> ignore (Server.Client.send_raw c (to_line r))) requests;
      Server.Client.close c;
      0
    end
    else begin
      let failed = ref false in
      List.iter
        (fun r ->
          match Server.Client.request c (Server.Json.parse (to_line r)) with
          | Ok resp ->
            print_endline (Server.Json.to_string resp);
            (match Server.Json.str_field "status" resp with
            | Some "ok" -> ()
            | _ -> failed := true)
          | Error e ->
            Printf.eprintf "error: %s\n" e;
            failed := true)
        requests;
      Server.Client.close c;
      if !failed then 1 else 0
    end

let client_cmd =
  let sock =
    Arg.(
      value
      & opt (some string) None
      & info [ "sock" ] ~doc:"Unix-socket path of the daemon.")
  in
  let addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr" ] ~doc:"TCP host:port of the daemon.")
  in
  let abort =
    Arg.(
      value & flag
      & info [ "abort" ]
          ~doc:
            "Send the requests, then disconnect immediately without reading \
             any response (exercises the daemon's disconnect handling).")
  in
  let requests =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "A JSON request object, or a bare op name (wrapped as \
             {\"op\": ...}).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running $(b,ogb serve) daemon and print the \
             responses")
    Term.(const client $ sock $ addr $ abort $ requests)

(* -- analyze subcommand: static analysis + ahead-of-time warm-up -- *)

let analyze algo n warm effects schedule =
  if not (apply_schedule_pin schedule) then 1 else
  let module T1 = Analysis.Tier1 in
  let module Ks = Jit.Kernel_sig in
  let entries =
    match algo with
    | None -> Ok T1.all
    | Some a -> (
      match T1.find a with
      | Some e -> Ok [ e ]
      | None -> Error (Printf.sprintf "unknown tier-1 encoding %S" a))
  in
  match entries with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok entries ->
    let failed = ref false in
    let sigs = ref [] in
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (e : T1.entry) ->
        Printf.printf "== %s (entry point %s, n=%d)\n" e.name e.entrypoint n;
        (match Analysis.Vm_check.check e.program with
        | [] -> Printf.printf "scope/arity: ok\n"
        | findings ->
          failed := true;
          List.iter
            (fun f ->
              Printf.printf "  FINDING %s\n" (Analysis.Vm_check.describe f))
            findings);
        let ks = T1.signatures e ~n in
        Printf.printf "reachable kernel signatures: %d\n" (List.length ks);
        List.iter
          (fun s ->
            Printf.printf "  %s\n" (Ks.key s);
            if not (Hashtbl.mem seen (Ks.key s)) then begin
              Hashtbl.add seen (Ks.key s) ();
              sigs := s :: !sigs
            end)
          ks;
        print_newline ())
      entries;
    (* representative plan: a shape the scheduler runs concurrently and
       whose pull dispatch races on the shared CSC cache.  Filled-in
       64-vectors make layout selection choose pull (which builds the
       index); under the observe-only hook the planner rejects every
       racy candidate, so the rejection counter below is exercised *)
    let m =
      Graphs.Convert.matrix_of_edges Dtype.FP64 (Graphs.Generators.complete 64)
    in
    let ac = Ogb.Container.of_smatrix m in
    let dense x =
      Ogb.Container.of_svector (Svector.of_dense Dtype.FP64 (Array.make 64 x))
    in
    let uc = dense 1.0 and vc = dense 2.0 in
    let open Ogb.Ops.Infix in
    let e =
      Ogb.Context.with_ops
        [ Ogb.Context.semiring "Arithmetic"; Ogb.Context.binary "Plus" ]
        (fun () -> (tr !!ac @. !!uc) +: (tr !!ac @. !!vc))
    in
    Analysis.Hook.install ~fix_races:None ();
    let plan =
      Fun.protect
        ~finally:(fun () -> Analysis.Hook.uninstall ())
        (fun () -> Exec.plan_force e)
    in
    Printf.printf "== plan verification (y = A.T@u + A.T@v, verified at every \
                   rewrite stage)\n%s"
      (Analysis.Verify.report plan);
    (match Analysis.Races.find ~assume_formats:true plan with
    | [] -> Printf.printf "races: none\n"
    | conflicts ->
      List.iter
        (fun c -> Printf.printf "race: %s\n" (Analysis.Races.describe c))
        conflicts;
      ignore
        (Format_stats.with_enabled true (fun () ->
             Analysis.Races.enforce ~strategy:Analysis.Races.Prebuild plan));
      (match Analysis.Races.find ~assume_formats:true plan with
      | [] -> Printf.printf "remedied: CSC indexes prebuilt; scheduler-safe\n"
      | remaining ->
        failed := true;
        List.iter
          (fun c ->
            Printf.printf "UNREMEDIED race: %s\n" (Analysis.Races.describe c))
          remaining));
    if effects then begin
      Printf.printf
        "== effect footprints (per node, canonical by physical storage)\n%s"
        (Analysis.Effects.report ~assume_formats:true plan);
      match Analysis.Effects.find ~assume_formats:true plan with
      | [] -> Printf.printf "effect hazards: none\n"
      | hs ->
        List.iter
          (fun h ->
            Printf.printf "effect hazard: %s\n" (Analysis.Effects.describe h))
          hs
    end;
    (* execute the representative plan so predicted and measured cost
       appear side by side (the --schedule A/B hook reads these lines) *)
    Printf.printf "schedule: %s\n"
      (match plan.Exec.Plan.schedule_desc with "" -> "default" | s -> s);
    Printf.printf "predicted cost: %.6f ms\n"
      (plan.Exec.Plan.predicted_ns /. 1e6);
    let (_ : Ogb.Container.t), measured = time (fun () -> Exec.force e) in
    Printf.printf "measured cost: %.6f ms\n" (measured *. 1e3);
    print_planner_summary ();
    let st = Jit.Jit_stats.snapshot () in
    Printf.printf "effects: checks=%d hazards=%d rejections=%d degraded=%d\n"
      st.Jit.Jit_stats.effects_checks st.Jit.Jit_stats.effects_hazards
      st.Jit.Jit_stats.effects_rejections st.Jit.Jit_stats.effects_degraded;
    if warm then begin
      Printf.printf "\n== ahead-of-time warm-up (%d distinct signatures)\n"
        (List.length !sigs);
      let outcomes = Analysis.Warmup.warm (List.rev !sigs) in
      List.iter
        (fun (o : Analysis.Warmup.outcome) ->
          Printf.printf "  %-72s %s\n" (Ks.key o.Analysis.Warmup.sig_)
            (Analysis.Warmup.status_to_string o.Analysis.Warmup.status))
        outcomes;
      let st = Jit.Jit_stats.snapshot () in
      Printf.printf "warm requests: %d, warm compiles: %d\n"
        st.Jit.Jit_stats.warm_requests st.Jit.Jit_stats.warm_compiles
    end;
    (* perf trajectory: the cumulative per-workload series the bench
       harness folds into BENCH_history.json (bench/history.exe) *)
    if Sys.file_exists Bench_workloads.History_core.history_file then begin
      print_newline ();
      Bench_workloads.History_core.print_summary
        (Bench_workloads.History_core.load_history
           Bench_workloads.History_core.history_file)
    end;
    if !failed then 1 else 0

let analyze_cmd =
  let algo =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ALGORITHM"
          ~doc:
            "Restrict to one tier-1 encoding (bfs, pagerank, sssp, triangle, \
             cc, labelprop, ktruss, bc); default analyzes all of them.")
  in
  let n =
    Arg.(
      value & opt int 64
      & info [ "n" ]
          ~doc:
            "Vertex count the abstract stand-ins assume (bound constants such \
             as PageRank's teleport term depend on it).")
  in
  let warm =
    Arg.(
      value & flag
      & info [ "warm" ]
          ~doc:
            "After analysis, drive the JIT over every reachable kernel \
             signature so the first real iteration compiles nothing.")
  in
  let effects =
    Arg.(
      value & flag
      & info [ "effects" ]
          ~doc:
            "Print the representative plan's per-node effect footprints \
             (reads/writes per location, canonical by physical storage) and \
             any hazards the effect analysis finds between \
             scheduler-concurrent nodes.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically check the tier-1 MiniVM encodings (scope/arity), extract \
          reachable kernel signatures by abstract interpretation, verify a \
          representative plan (shapes, dtypes, effect footprints, scheduler \
          races) and report its schedule with predicted vs measured cost, and \
          optionally pre-warm the JIT")
    Term.(const analyze $ algo $ n $ warm $ effects $ schedule_arg)

(* -- lint subcommand: effect-analysis self-tests, parallel-kernel
   certification, and the daemon shared-state audit -- *)

let lint () =
  Analysis.Lint.apply_env_tamper ();
  let findings =
    List.map Analysis.Lint.describe (Analysis.Lint.run ())
    @ List.map Server.Audit.describe (Server.Audit.run ())
  in
  Printf.printf
    "lint: %d parallel kernel descriptor(s), %d audited handler state(s)\n"
    (List.length (Jit.Par_kernels.Certify.registry ()))
    (List.length Server.Audit.manifest);
  match findings with
  | [] ->
    Printf.printf "lint: ok (effects self-tests, parallel-safety \
                   certification, daemon audit)\n";
    0
  | fs ->
    List.iter (fun f -> Printf.printf "lint: FINDING %s\n" f) fs;
    Printf.printf "lint: %d finding(s)\n" (List.length fs);
    1

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Re-prove the static safety arguments: the effect analysis still \
          flags every seeded hazard class (and passes hazard-free plans), \
          every parallel kernel's chunk decomposition is disjoint and \
          covering with chunk-combined kernels gated on exact \
          associativity, and the serve daemon's handlers touch no shared \
          mutable state outside the immutable registry and per-session \
          context.  Exits nonzero on any finding.")
    Term.(const lint $ const ())

let () =
  (* a dying client mid-write must surface as EPIPE, not kill the
     process — applies to both serve and the plain subcommands, whose
     stdout may be a broken pipe under `ogb ... | head` *)
  Server.Wire.ignore_sigpipe ();
  let doc = "GraphBLAS DSL with dynamic kernel compilation (PyGB reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ogb" ~version:"1.0.0" ~doc)
          [ run_cmd; gen_cmd; info_cmd; jit_cmd; exec_cmd; analyze_cmd;
            lint_cmd; doctor_cmd; serve_cmd; client_cmd ]))
