(* ogb — command-line front end: generate graphs, inspect matrix-market
   files, run the paper's algorithms at any execution tier, and inspect
   the JIT backend. *)

open Cmdliner
open Gbtl

(* -- graph sources -- *)

let parse_graph_spec spec =
  (* "er:n=1024[,seed=7]" | "rmat:scale=10[,ef=8][,seed=7]" |
     "grid:rows=10,cols=10" | "tree:r=2,h=8" | "complete:n=16" |
     "path:n=100" | "cycle:n=100" | a matrix-market file path *)
  let params rest =
    List.filter_map
      (fun kv ->
        match String.split_on_char '=' kv with
        | [ k; v ] -> Some (k, v)
        | _ -> None)
      (String.split_on_char ',' rest)
  in
  let geti ps key default =
    match List.assoc_opt key ps with Some v -> int_of_string v | None -> default
  in
  match String.index_opt spec ':' with
  | None -> `File spec
  | Some i ->
    let kind = String.sub spec 0 i in
    let ps = params (String.sub spec (i + 1) (String.length spec - i - 1)) in
    let seed = geti ps "seed" 2018 in
    let rng = Graphs.Rng.create ~seed in
    (match kind with
    | "er" ->
      let n = geti ps "n" 1024 in
      `Edges (Graphs.Generators.erdos_renyi_paper rng ~nvertices:n)
    | "rmat" ->
      `Edges
        (Graphs.Generators.rmat rng ~scale:(geti ps "scale" 10)
           ~edge_factor:(geti ps "ef" 8))
    | "grid" ->
      `Edges
        (Graphs.Generators.grid2d ~rows:(geti ps "rows" 10)
           ~cols:(geti ps "cols" 10))
    | "tree" ->
      `Edges
        (Graphs.Generators.balanced_tree ~branching:(geti ps "r" 2)
           ~height:(geti ps "h" 8))
    | "complete" -> `Edges (Graphs.Generators.complete (geti ps "n" 16))
    | "path" -> `Edges (Graphs.Generators.path (geti ps "n" 100))
    | "cycle" -> `Edges (Graphs.Generators.cycle (geti ps "n" 100))
    | "ws" ->
      let beta =
        match List.assoc_opt "beta" ps with
        | Some v -> float_of_string v
        | None -> 0.1
      in
      `Edges
        (Graphs.Generators.watts_strogatz rng ~nvertices:(geti ps "n" 1000)
           ~k:(geti ps "k" 4) ~beta)
    | "ba" ->
      `Edges
        (Graphs.Generators.barabasi_albert rng ~nvertices:(geti ps "n" 1000)
           ~m:(geti ps "m" 3))
    | other -> `Error (Printf.sprintf "unknown generator %S" other))

let load_float_matrix spec symmetrize =
  match parse_graph_spec spec with
  | `Error e -> Error e
  | `File path -> (
    try Ok (Matrix_market.read Dtype.FP64 path) with
    | Matrix_market.Parse_error e -> Error e
    | Sys_error e -> Error e)
  | `Edges g ->
    let g = if symmetrize then Graphs.Edge_list.symmetrize g else g in
    Ok (Graphs.Convert.matrix_of_edges Dtype.FP64 g)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* -- run subcommand -- *)

let run_algorithm algo tier spec src symmetrize top =
  match load_float_matrix spec symmetrize with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok m ->
    let n = Smatrix.nrows m in
    Printf.printf "graph: %d vertices, %d edges; algorithm=%s tier=%s\n" n
      (Smatrix.nvals m) algo tier;
    let bool_m = Smatrix.cast ~into:Dtype.Bool m in
    let cont = Ogb.Container.of_smatrix m in
    let bool_cont = Ogb.Container.of_smatrix bool_m in
    let show_vector entries =
      let entries = List.filteri (fun i _ -> i < top) entries in
      List.iter (fun (i, x) -> Printf.printf "  %d: %g\n" i x) entries
    in
    let ok =
      match algo, tier with
      | "bfs", "native" ->
        let levels, dt = time (fun () -> Algorithms.Bfs.native bool_m ~src) in
        Printf.printf "reached %d vertices in %.3f ms\n" (Svector.nvals levels)
          (1000.0 *. dt);
        show_vector
          (List.map (fun (i, l) -> (i, float_of_int l))
             (Algorithms.Bfs.levels_of_svector levels));
        true
      | "bfs", "dsl" ->
        let levels, dt = time (fun () -> Algorithms.Bfs.dsl bool_cont ~src) in
        Printf.printf "reached %d vertices in %.3f ms\n"
          (Ogb.Container.nvals levels) (1000.0 *. dt);
        show_vector (Ogb.Container.vector_entries levels);
        true
      | "bfs", "vm" ->
        let levels, dt = time (fun () -> Algorithms.Bfs.vm_loops bool_cont ~src) in
        Printf.printf "reached %d vertices in %.3f ms\n"
          (Ogb.Container.nvals levels) (1000.0 *. dt);
        show_vector (Ogb.Container.vector_entries levels);
        true
      | "sssp", "native" ->
        let d, dt = time (fun () -> Algorithms.Sssp.native m ~src) in
        Printf.printf "solved in %.3f ms\n" (1000.0 *. dt);
        show_vector (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] d));
        true
      | "sssp", "dsl" ->
        let d, dt = time (fun () -> Algorithms.Sssp.dsl cont ~src) in
        Printf.printf "solved in %.3f ms\n" (1000.0 *. dt);
        show_vector (Algorithms.Sssp.distances_of_container d);
        true
      | "sssp", "vm" ->
        let d, dt = time (fun () -> Algorithms.Sssp.vm_loops cont ~src) in
        Printf.printf "solved in %.3f ms\n" (1000.0 *. dt);
        show_vector (Algorithms.Sssp.distances_of_container d);
        true
      | "pagerank", "native" ->
        let (ranks, iters), dt = time (fun () -> Algorithms.Pagerank.native m) in
        Printf.printf "converged in %d iterations, %.3f ms\n" iters
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] ranks)));
        true
      | "pagerank", "dsl" ->
        let (ranks, iters), dt = time (fun () -> Algorithms.Pagerank.dsl cont) in
        Printf.printf "converged in %d iterations, %.3f ms\n" iters
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Algorithms.Pagerank.ranks_of_container ranks));
        true
      | "pagerank", "nonblocking" ->
        let (ranks, iters), dt =
          time (fun () -> Algorithms.Pagerank.nonblocking cont)
        in
        Printf.printf "converged in %d iterations, %.3f ms\n" iters
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Algorithms.Pagerank.ranks_of_container ranks));
        true
      | "pagerank", "vm" ->
        let ranks, dt = time (fun () -> Algorithms.Pagerank.vm_loops cont) in
        Printf.printf "done in %.3f ms\n" (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (Algorithms.Pagerank.ranks_of_container ranks));
        true
      | "tc", "native" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt = time (fun () -> Algorithms.Triangle.native l) in
        Printf.printf "triangles: %d (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "tc", "dsl" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt =
          time (fun () -> Algorithms.Triangle.dsl (Ogb.Container.of_smatrix l))
        in
        Printf.printf "triangles: %g (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "tc", "nonblocking" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt =
          time (fun () ->
              Algorithms.Triangle.nonblocking (Ogb.Container.of_smatrix l))
        in
        Printf.printf "triangles: %g (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "tc", "vm" ->
        let l = Algorithms.Triangle.of_undirected bool_m in
        let t, dt =
          time (fun () ->
              Algorithms.Triangle.vm_loops (Ogb.Container.of_smatrix l))
        in
        Printf.printf "triangles: %g (%.3f ms)\n" t (1000.0 *. dt);
        true
      | "cc", "native" ->
        let labels, dt =
          time (fun () -> Algorithms.Connected_components.native bool_m)
        in
        Printf.printf "components: %d (%.3f ms)\n"
          (Algorithms.Connected_components.component_count labels)
          (1000.0 *. dt);
        true
      | "bc", "native" ->
        let bc, dt =
          time (fun () -> Algorithms.Bc.native (Smatrix.cast ~into:Dtype.Bool m))
        in
        Printf.printf "betweenness centrality in %.3f ms; top vertices:\n"
          (1000.0 *. dt);
        show_vector
          (List.sort (fun (_, a) (_, b) -> compare b a)
             (List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] bc)));
        true
      | "ktruss", "native" ->
        let adj = Smatrix.cast ~into:Dtype.Bool m in
        let truss, dt = time (fun () -> Algorithms.Ktruss.native ~k:4 adj) in
        Printf.printf "4-truss has %d edges (%.3f ms)\n"
          (Algorithms.Ktruss.edge_count truss) (1000.0 *. dt);
        true
      | "mis", "native" ->
        let iset, dt =
          time (fun () -> Algorithms.Mis.native (Smatrix.cast ~into:Dtype.Bool m))
        in
        Printf.printf "independent set of %d vertices (%.3f ms)\n"
          (Svector.nvals iset) (1000.0 *. dt);
        true
      | "cc", "dsl" ->
        let labels, dt =
          time (fun () -> Algorithms.Connected_components.dsl bool_cont)
        in
        ignore labels;
        Printf.printf "done (%.3f ms)\n" (1000.0 *. dt);
        true
      | _, _ ->
        Printf.eprintf "unsupported algorithm/tier combination %s/%s\n" algo
          tier;
        false
    in
    if ok then 0 else 1

let graph_arg =
  let doc =
    "Graph source: a generator spec (er:n=1024, rmat:scale=10,ef=8, \
     grid:rows=10,cols=10, tree:r=2,h=8, complete:n=16, path:n=100, \
     cycle:n=100, ws:n=1000,k=4,beta=0.1, ba:n=1000,m=3; all accept \
     seed=N) or a MatrixMarket file path."
  in
  Arg.(value & opt string "er:n=1024" & info [ "graph"; "g" ] ~doc)

let run_cmd =
  let algo =
    Arg.(
      required
      & pos 0 (some (enum [ ("bfs", "bfs"); ("sssp", "sssp");
                            ("pagerank", "pagerank"); ("tc", "tc");
                            ("cc", "cc"); ("mis", "mis"); ("bc", "bc");
                            ("ktruss", "ktruss") ])) None
      & info [] ~docv:"ALGORITHM")
  in
  let tier =
    Arg.(
      value
      & opt
          (enum
             [ ("native", "native"); ("dsl", "dsl"); ("vm", "vm");
               ("nonblocking", "nonblocking") ])
          "native"
      & info [ "tier"; "t" ]
          ~doc:"Execution tier: native, dsl, vm or nonblocking.")
  in
  let src =
    Arg.(value & opt int 0 & info [ "src"; "s" ] ~doc:"Source vertex.")
  in
  let sym =
    Arg.(value & flag & info [ "symmetrize" ] ~doc:"Mirror every edge.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Entries to print.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a graph algorithm at a chosen execution tier")
    Term.(const run_algorithm $ algo $ tier $ graph_arg $ src $ sym $ top)

(* -- gen subcommand -- *)

let generate spec out symmetrize =
  match parse_graph_spec spec with
  | `Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | `File _ ->
    Printf.eprintf "error: gen requires a generator spec, not a file\n";
    1
  | `Edges g ->
    let g = if symmetrize then Graphs.Edge_list.symmetrize g else g in
    let m = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
    Matrix_market.write ~comment:("generated from " ^ spec) m out;
    Printf.printf "wrote %d x %d matrix (%d entries) to %s\n"
      (Smatrix.nrows m) (Smatrix.ncols m) (Smatrix.nvals m) out;
    0

let gen_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~doc:"Output MatrixMarket file.")
  in
  let sym =
    Arg.(value & flag & info [ "symmetrize" ] ~doc:"Mirror every edge.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph and save it as MatrixMarket")
    Term.(const generate $ graph_arg $ out $ sym)

(* -- info subcommand -- *)

let info_file path =
  match Matrix_market.read Dtype.FP64 path with
  | exception (Matrix_market.Parse_error e | Sys_error e) ->
    Printf.eprintf "error: %s\n" e;
    1
  | m ->
    let degrees = Utilities.row_degrees m in
    let dmax = Array.fold_left max 0 degrees in
    let total = Array.fold_left ( + ) 0 degrees in
    Printf.printf "%s: %d x %d, %d stored entries\n" path (Smatrix.nrows m)
      (Smatrix.ncols m) (Smatrix.nvals m);
    Printf.printf "out-degree: max %d, mean %.2f\n" dmax
      (float_of_int total /. float_of_int (max 1 (Smatrix.nrows m)));
    0

let info_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "info" ~doc:"Inspect a MatrixMarket file")
    Term.(const info_file $ path)

(* -- jit subcommand -- *)

let print_dispatch_tables () =
  (match Jit.Jit_stats.fusions () with
  | [] -> ()
  | fusions ->
    Printf.printf "fusion rewrites fired:\n";
    List.iter
      (fun (name, count) -> Printf.printf "  %-20s %d\n" name count)
      fusions);
  (match Jit.Jit_stats.per_signature () with
  | [] -> ()
  | sigs ->
    Printf.printf
      "per-signature cache activity (hits+misses=dispatches, fmt=operand \
       layouts):\n";
    List.iter
      (fun (key, hits, misses) ->
        Printf.printf "  %-64s fmt:%-16s %d+%d\n" key
          (Jit.Kernel_sig.formats_of_key key)
          hits misses)
      sigs);
  match Jit.Jit_stats.formats () with
  | [] -> ()
  | counters ->
    Printf.printf "formats:";
    List.iter (fun (name, n) -> Printf.printf " %s=%d" name n) counters;
    print_newline ()

let jit_status action clear =
  match action with
  | Some a when a <> "status" ->
    Printf.eprintf "error: unknown jit action %S (expected \"status\")\n" a;
    1
  | _ ->
  if clear then begin
    Jit.Disk_cache.clear ();
    Printf.printf "cleared kernel cache at %s\n" (Jit.Disk_cache.dir ())
  end;
  Printf.printf "backend: %s\n" (Jit.Native_backend.explain ());
  Printf.printf "effective: %s\n"
    (match Jit.Dispatch.effective_backend () with
    | `Native -> "native"
    | `Closure -> "closure");
  Printf.printf "cache directory: %s\n" (Jit.Disk_cache.dir ());
  Format.printf "stats: %a@." Jit.Jit_stats.pp (Jit.Jit_stats.snapshot ());
  print_dispatch_tables ();
  0

let jit_cmd =
  let action =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ACTION" ~doc:"Optional action; only $(b,status).")
  in
  let clear =
    Arg.(value & flag & info [ "clear" ] ~doc:"Clear the on-disk kernel cache.")
  in
  Cmd.v
    (Cmd.info "jit" ~doc:"Show (or clear) the dynamic-compilation backend state")
    Term.(const jit_status $ action $ clear)

(* -- exec subcommand: dump nonblocking plans and execution traces -- *)

let print_last_trace () =
  match Exec.last_trace () with
  | None -> ()
  | Some t -> print_string (Exec.Trace.to_string t)

let exec_demo demo spec symmetrize domains =
  match load_float_matrix spec symmetrize with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok m ->
    if domains > 0 then Exec.Scheduler.set_domains domains;
    Printf.printf "graph: %d vertices, %d edges; scheduler: %d domain(s)\n\n"
      (Smatrix.nrows m) (Smatrix.nvals m)
      (Exec.Scheduler.domain_count ());
    let open Ogb.Ops.Infix in
    let neg = Jit.Op_spec.Named "AdditiveInverse" in
    (* row-degree vectors of A and A.T as deferred subexpressions *)
    let ac = Ogb.Container.of_smatrix m in
    let u () = Ogb.Ops.reduce_rows !!ac in
    let v () = Ogb.Ops.reduce_rows (tr !!ac) in
    let run_tc () =
      let l =
        Algorithms.Triangle.of_undirected (Smatrix.cast ~into:Dtype.Bool m)
      in
      let lc = Ogb.Container.of_smatrix l in
      let expr () =
        Ogb.Context.with_ops
          [ Ogb.Context.semiring "Arithmetic" ]
          (fun () -> !!lc @. tr !!lc)
      in
      let mask = { Ogb.Expr.container = lc; complemented = false } in
      Printf.printf "== tc: B<L> = L @ L.T (transpose sink + mask push)\n%s"
        (Exec.explain ~mask (expr ()));
      ignore (Exec.force ~mask (expr ()));
      print_last_trace ()
    in
    let run_chain () =
      let base =
        Ogb.Context.with_ops
          [ Ogb.Context.binary "Plus" ]
          (fun () -> u () +: v ())
      in
      let e = Ogb.Ops.apply ~f:neg (Ogb.Ops.apply ~f:neg base) in
      Printf.printf
        "== chain: neg(neg(rowsum(A) + rowsum(A.T))) (apply∘apply, \
         apply∘ewise)\n%s"
        (Exec.explain e);
      ignore (Exec.force e);
      print_last_trace ()
    in
    let run_dot () =
      let diff =
        Ogb.Context.with_ops
          [ Ogb.Context.binary "Minus" ]
          (fun () -> u () +: v ())
      in
      let e =
        Ogb.Context.with_ops
          [ Ogb.Context.binary "Times" ]
          (fun () -> diff *: diff)
      in
      Printf.printf
        "== dot: reduce(d*d), d = rowsum(A)-rowsum(A.T) (CSE + mult∘reduce)\n%s"
        (Exec.explain_reduce ~op:"Plus" ~identity:"0" e);
      let s = Exec.reduce ~op:"Plus" ~identity:"0" e in
      print_last_trace ();
      Printf.printf "result: %g\n" s
    in
    let run_mxv () =
      (* a filled-in operand, so the layout pass can pick the pull
         direction at plan time *)
      let n = Smatrix.nrows m in
      let uc =
        Ogb.Container.of_svector
          (Svector.of_dense Dtype.FP64 (Array.make n 1.0))
      in
      let e =
        Ogb.Context.with_ops
          [ Ogb.Context.semiring "Arithmetic" ]
          (fun () -> tr !!ac @. !!uc)
      in
      Printf.printf
        "== mxv: y = A.T @ u (transpose sink -> cached-CSC dispatch)\n%s"
        (Exec.explain e);
      ignore (Exec.force e);
      print_last_trace ()
    in
    (match demo with
    | "tc" -> run_tc ()
    | "chain" -> run_chain ()
    | "dot" -> run_dot ()
    | "mxv" -> run_mxv ()
    | _ ->
      run_tc ();
      print_newline ();
      run_chain ();
      print_newline ();
      run_dot ();
      print_newline ();
      run_mxv ());
    print_newline ();
    print_dispatch_tables ();
    0

let exec_cmd =
  let demo =
    Arg.(
      value
      & opt
          (enum
             [ ("all", "all"); ("tc", "tc"); ("chain", "chain");
               ("dot", "dot"); ("mxv", "mxv") ])
          "all"
      & info [ "demo"; "d" ]
          ~doc:
            "Which plan to dump: tc (masked matmul), chain (apply fusion), \
             dot (CSE + mult-reduce), mxv (transposed product on the cached \
             CSC side), or all.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:"Worker domains for the scheduler (0 = default/OGB_DOMAINS).")
  in
  let sym =
    Arg.(value & flag & info [ "symmetrize" ] ~doc:"Mirror every edge.")
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Dump nonblocking execution plans (DAG, fusion rewrites) and run \
          them with a per-node trace")
    Term.(const exec_demo $ demo $ graph_arg $ sym $ domains)

(* -- doctor subcommand: resilience-layer health report -- *)

let doctor no_probe =
  let report = Jit.Health.collect ~probe:(not no_probe) () in
  print_string (Jit.Health.to_string report);
  if Jit.Health.healthy report then 0 else 1

let doctor_cmd =
  let no_probe =
    Arg.(
      value & flag
      & info [ "no-probe" ]
          ~doc:
            "Skip the native-backend availability probe (which costs one \
             trivial compile on a cold cache).")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Check the JIT/execution resilience layer: backend probe, on-disk \
          cache integrity (checksums), circuit-breaker state, compile \
          timeout/retry configuration, fault-injection status and the \
          resilience counters.  Exits nonzero when the cache holds corrupt \
          plugins or the breaker is open.")
    Term.(const doctor $ no_probe)

(* -- analyze subcommand: static analysis + ahead-of-time warm-up -- *)

let analyze algo n warm =
  let module T1 = Analysis.Tier1 in
  let module Ks = Jit.Kernel_sig in
  let entries =
    match algo with
    | None -> Ok T1.all
    | Some a -> (
      match T1.find a with
      | Some e -> Ok [ e ]
      | None -> Error (Printf.sprintf "unknown tier-1 encoding %S" a))
  in
  match entries with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok entries ->
    let failed = ref false in
    let sigs = ref [] in
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (e : T1.entry) ->
        Printf.printf "== %s (entry point %s, n=%d)\n" e.name e.entrypoint n;
        (match Analysis.Vm_check.check e.program with
        | [] -> Printf.printf "scope/arity: ok\n"
        | findings ->
          failed := true;
          List.iter
            (fun f ->
              Printf.printf "  FINDING %s\n" (Analysis.Vm_check.describe f))
            findings);
        let ks = T1.signatures e ~n in
        Printf.printf "reachable kernel signatures: %d\n" (List.length ks);
        List.iter
          (fun s ->
            Printf.printf "  %s\n" (Ks.key s);
            if not (Hashtbl.mem seen (Ks.key s)) then begin
              Hashtbl.add seen (Ks.key s) ();
              sigs := s :: !sigs
            end)
          ks;
        print_newline ())
      entries;
    (* representative plan: a shape the scheduler runs concurrently and
       whose pull dispatch races on the shared CSC cache *)
    let m =
      Graphs.Convert.matrix_of_edges Dtype.FP64 (Graphs.Generators.complete 8)
    in
    let ac = Ogb.Container.of_smatrix m in
    let dense x =
      Ogb.Container.of_svector (Svector.of_dense Dtype.FP64 (Array.make 8 x))
    in
    let uc = dense 1.0 and vc = dense 2.0 in
    let open Ogb.Ops.Infix in
    let e =
      Ogb.Context.with_ops
        [ Ogb.Context.semiring "Arithmetic"; Ogb.Context.binary "Plus" ]
        (fun () -> (tr !!ac @. !!uc) +: (tr !!ac @. !!vc))
    in
    Analysis.Hook.install ~fix_races:None ();
    let plan =
      Fun.protect
        ~finally:(fun () -> Analysis.Hook.uninstall ())
        (fun () -> Exec.plan_force e)
    in
    Printf.printf "== plan verification (y = A.T@u + A.T@v, verified at every \
                   rewrite stage)\n%s"
      (Analysis.Verify.report plan);
    (match Analysis.Races.find ~assume_formats:true plan with
    | [] -> Printf.printf "races: none\n"
    | conflicts ->
      List.iter
        (fun c -> Printf.printf "race: %s\n" (Analysis.Races.describe c))
        conflicts;
      ignore
        (Format_stats.with_enabled true (fun () ->
             Analysis.Races.enforce ~strategy:Analysis.Races.Prebuild plan));
      (match Analysis.Races.find ~assume_formats:true plan with
      | [] -> Printf.printf "remedied: CSC indexes prebuilt; scheduler-safe\n"
      | remaining ->
        failed := true;
        List.iter
          (fun c ->
            Printf.printf "UNREMEDIED race: %s\n" (Analysis.Races.describe c))
          remaining));
    if warm then begin
      Printf.printf "\n== ahead-of-time warm-up (%d distinct signatures)\n"
        (List.length !sigs);
      let outcomes = Analysis.Warmup.warm (List.rev !sigs) in
      List.iter
        (fun (o : Analysis.Warmup.outcome) ->
          Printf.printf "  %-72s %s\n" (Ks.key o.Analysis.Warmup.sig_)
            (Analysis.Warmup.status_to_string o.Analysis.Warmup.status))
        outcomes;
      let st = Jit.Jit_stats.snapshot () in
      Printf.printf "warm requests: %d, warm compiles: %d\n"
        st.Jit.Jit_stats.warm_requests st.Jit.Jit_stats.warm_compiles
    end;
    if !failed then 1 else 0

let analyze_cmd =
  let algo =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ALGORITHM"
          ~doc:
            "Restrict to one tier-1 encoding (bfs, pagerank, sssp, triangle); \
             default analyzes all of them.")
  in
  let n =
    Arg.(
      value & opt int 64
      & info [ "n" ]
          ~doc:
            "Vertex count the abstract stand-ins assume (bound constants such \
             as PageRank's teleport term depend on it).")
  in
  let warm =
    Arg.(
      value & flag
      & info [ "warm" ]
          ~doc:
            "After analysis, drive the JIT over every reachable kernel \
             signature so the first real iteration compiles nothing.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically check the tier-1 MiniVM encodings (scope/arity), extract \
          reachable kernel signatures by abstract interpretation, verify a \
          representative plan (shapes, dtypes, scheduler races), and \
          optionally pre-warm the JIT")
    Term.(const analyze $ algo $ n $ warm)

let () =
  let doc = "GraphBLAS DSL with dynamic kernel compilation (PyGB reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ogb" ~version:"1.0.0" ~doc)
          [ run_cmd; gen_cmd; info_cmd; jit_cmd; exec_cmd; analyze_cmd;
            doctor_cmd ]))
