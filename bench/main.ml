(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §7 for the experiment index).

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig10        -- one experiment
     dune exec bench/main.exe -- fig10 --max 2048

   Experiments:
     fig10    four algorithms x three tiers on ER graphs, |E|=|V|^1.5
     fig11    container lifecycle: file read / construct / extract
     compile  JIT pipeline: cold compile vs disk vs memory dispatch
     table1   Table I notation conformance (executable check)
     ablation design-choice ablations (masked mxm, deferred eval, reuse)
     exec     blocking vs nonblocking engine (PageRank, triangles),
              emits BENCH_exec.json
     formats  CSR-only vs format-aware dispatch (PageRank, BFS),
              emits BENCH_formats.json
     parallel strong scaling of the domain-pool kernels (PageRank, BFS,
              triangles at 1/2/4 domains), emits BENCH_parallel.json
     faults   resilience: warm-path overhead of the hardening and chaos
              equivalence under injected faults, emits BENCH_faults.json
     serve    daemon mode: cold one-shot CLI vs resident warm daemon
              request latency, multi-session zero-compile check and
              batched vs unbatched throughput, emits BENCH_serve.json
     cost     cost-model planner: calibrate kernel coefficients from
              timings, then A/B the calibrated schedule search against
              the frozen greedy pipeline, emits BENCH_cost.json
     oocore   out-of-core tiled PageRank: in-memory vs streamed under a
              memory budget (bit-identity + eviction counts), plus the
              checkpointed and delta-restart variants,
              emits BENCH_oocore.json
     workloads all eight tier-1 workloads (bfs, pagerank, sssp,
              triangle, cc, labelprop, ktruss, betweenness), blocking
              vs nonblocking, one timestamped artifact each under
              bench/results/ plus a stable -latest alias; restrict to
              one with --only NAME; tune via OGB_BENCH_REPS /
              OGB_BENCH_N (see bench/workloads/ and bench/history.ml)
     micro    Bechamel micro-benchmarks of the kernel families *)

open Gbtl

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-[reps] wall time, with one warmup run (which also warms the
   JIT caches, as the paper's methodology implies for steady state). *)
let best_of ?(reps = 3) f =
  ignore (f ());
  (* level the GC playing field between configurations *)
  Gc.full_major ();
  let best = ref infinity in
  for _ = 1 to reps do
    let _, dt = time_once f in
    if dt < !best then best := dt
  done;
  !best

let ms dt = 1000.0 *. dt

(* ---------------------------------------------------------------- *)
(* Fig. 10: BFS / SSSP / PageRank / triangle counting at three tiers  *)
(* ---------------------------------------------------------------- *)

type tier_times = { vm : float; dsl : float; whole : float; native : float }

let fig10_algorithms = [ "bfs"; "sssp"; "pagerank"; "triangles" ]

let run_fig10_algo name n =
  let rng = Graphs.Rng.create ~seed:(2018 + n) in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  match name with
  | "bfs" ->
    let adj = Graphs.Convert.bool_adjacency g in
    let cont = Ogb.Container.of_smatrix adj in
    { vm = best_of (fun () -> Algorithms.Bfs.vm_loops cont ~src:0);
      dsl = best_of (fun () -> Algorithms.Bfs.dsl cont ~src:0);
      whole = best_of (fun () -> Algorithms.Bfs.vm_whole cont ~src:0);
      native = best_of (fun () -> Algorithms.Bfs.native adj ~src:0) }
  | "sssp" ->
    let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
    let cont = Ogb.Container.of_smatrix adj in
    { vm = best_of ~reps:2 (fun () -> Algorithms.Sssp.vm_loops cont ~src:0);
      dsl = best_of ~reps:2 (fun () -> Algorithms.Sssp.dsl cont ~src:0);
      whole = best_of ~reps:2 (fun () -> Algorithms.Sssp.vm_whole cont ~src:0);
      native = best_of ~reps:2 (fun () -> Algorithms.Sssp.native adj ~src:0) }
  | "pagerank" ->
    let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
    let cont = Ogb.Container.of_smatrix adj in
    { vm = best_of (fun () -> Algorithms.Pagerank.vm_loops cont);
      dsl = best_of (fun () -> Algorithms.Pagerank.dsl cont);
      whole = best_of (fun () -> Algorithms.Pagerank.vm_whole cont);
      native = best_of (fun () -> Algorithms.Pagerank.native adj) }
  | "triangles" ->
    let sym = Graphs.Edge_list.symmetrize g in
    let adj = Graphs.Convert.bool_adjacency sym in
    let l = Algorithms.Triangle.of_undirected adj in
    let lc = Ogb.Container.of_smatrix l in
    { vm = best_of (fun () -> Algorithms.Triangle.vm_loops lc);
      dsl = best_of (fun () -> Algorithms.Triangle.dsl lc);
      whole = best_of (fun () -> Algorithms.Triangle.vm_whole lc);
      native = best_of (fun () -> Algorithms.Triangle.native l) }
  | _ -> assert false

let fig10 sizes =
  print_endline "== Fig. 10: algorithm run time across execution tiers ==";
  print_endline
    "   tier1 = DSL, outer loops interpreted (MiniVM);\n\
    \   dsl   = the same DSL program with OCaml outer loops (bonus series);\n\
    \   tier2 = one interpreted call into the whole compiled algorithm;\n\
    \   tier3 = native GBTL.  ER graphs with |E| = |V|^1.5.";
  List.iter
    (fun algo ->
      Printf.printf "\n-- %s --\n" algo;
      Printf.printf "%8s %11s %11s %11s %11s %8s %8s\n" "|V|" "tier1(ms)"
        "dsl(ms)" "tier2(ms)" "tier3(ms)" "t1/t3" "t2/t3";
      List.iter
        (fun n ->
          let t = run_fig10_algo algo n in
          Printf.printf "%8d %11.3f %11.3f %11.3f %11.3f %8.2f %8.2f\n" n
            (ms t.vm) (ms t.dsl) (ms t.whole) (ms t.native)
            (t.vm /. t.native) (t.whole /. t.native))
        sizes)
    fig10_algorithms;
  print_endline
    "\nexpected shape (paper): tier1 >= tier2 >= tier3 at small |V|; the\n\
     tier1/tier3 and tier2/tier3 ratios approach 1 as |V| grows."

(* ---------------------------------------------------------------- *)
(* Fig. 11: container lifecycle (read file / construct / extract)     *)
(* ---------------------------------------------------------------- *)

(* The "Python" path loads the file into boxed interpreter lists, builds
   the container by iterating boxed tuples, and extracts back into boxed
   lists; the native path uses plain arrays end to end. *)

let boxed_read path =
  let _, coo = Matrix_market.read_coo Dtype.FP64 path in
  let cells =
    List.map
      (fun (r, c, x) ->
        Minivm.Value.List
          (ref
             [| Minivm.Value.Int r; Minivm.Value.Int c; Minivm.Value.Float x |]))
      coo
  in
  Minivm.Value.List (ref (Array.of_list cells))

let boxed_construct nrows ncols boxed =
  match boxed with
  | Minivm.Value.List cells ->
    let triples = ref [] in
    Array.iter
      (fun cell ->
        match cell with
        | Minivm.Value.List t -> (
          match !t with
          | [| Minivm.Value.Int r; Minivm.Value.Int c; Minivm.Value.Float x |]
            ->
            triples := (r, c, x) :: !triples
          | _ -> failwith "bad cell")
        | _ -> failwith "bad cell")
      !cells;
    Smatrix.of_coo Dtype.FP64 nrows ncols !triples
  | _ -> failwith "bad boxed data"

let boxed_extract m =
  let out = ref [] in
  Smatrix.iter
    (fun r c x ->
      out :=
        Minivm.Value.List
          (ref
             [| Minivm.Value.Int r; Minivm.Value.Int c; Minivm.Value.Float x |])
        :: !out)
    m;
  Minivm.Value.List (ref (Array.of_list !out))

let fig11 sizes =
  print_endline "== Fig. 11: container lifecycle, dynamic vs native path ==";
  print_endline
    "   read = parse MatrixMarket file; construct = build the GraphBLAS\n\
    \   container from the in-memory representation; extract = copy the\n\
    \   data back out.  dyn = boxed interpreter lists, nat = plain arrays.";
  Printf.printf "\n%8s %9s | %10s %10s %10s | %10s %10s %10s\n" "|V|" "nnz"
    "read-dyn" "cons-dyn" "extr-dyn" "read-nat" "cons-nat" "extr-nat";
  List.iter
    (fun n ->
      let rng = Graphs.Rng.create ~seed:4242 in
      let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
      let m = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
      let path = Filename.temp_file "ogb_fig11" ".mtx" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Matrix_market.write m path;
          let nnz = Smatrix.nvals m in
          (* dynamic path *)
          let read_dyn = best_of (fun () -> boxed_read path) in
          let boxed = boxed_read path in
          let cons_dyn = best_of (fun () -> boxed_construct n n boxed) in
          let built = boxed_construct n n boxed in
          let extr_dyn = best_of (fun () -> boxed_extract built) in
          (* native path *)
          let read_nat =
            best_of (fun () -> Matrix_market.read_coo Dtype.FP64 path)
          in
          let _, coo = Matrix_market.read_coo Dtype.FP64 path in
          let cons_nat =
            best_of (fun () -> Smatrix.of_coo Dtype.FP64 n n coo)
          in
          let extr_nat = best_of (fun () -> Smatrix.to_coo built) in
          Printf.printf
            "%8d %9d | %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f\n" n nnz
            (ms read_dyn) (ms cons_dyn) (ms extr_dyn) (ms read_nat)
            (ms cons_nat) (ms extr_nat)))
    sizes;
  print_endline
    "\nexpected shape (paper): the file read dominates the dynamic path;\n\
     once constructed, operations on the container cost the same in both."

(* ---------------------------------------------------------------- *)
(* Compile-time experiment: the Fig. 9 pipeline                       *)
(* ---------------------------------------------------------------- *)

let kernel_workload () =
  (* a representative mix of signatures, as one algorithm suite uses *)
  let f64v n = Svector.of_dense Dtype.FP64 (Array.make n 1.0) in
  let f64m n =
    Smatrix.of_coo Dtype.FP64 n n
      (List.init n (fun i -> (i, (i + 1) mod n, 1.0)))
  in
  let bv n = Svector.of_dense Dtype.Bool (Array.make n true) in
  let bm n =
    Smatrix.of_coo Dtype.Bool n n
      (List.init n (fun i -> (i, (i + 1) mod n, true)))
  in
  let n = 64 in
  [ ( "mxv arithmetic f64",
      fun () ->
        ignore
          (Jit.Kernels.mxv Dtype.FP64 Jit.Op_spec.arithmetic ~transpose:false
             (f64m n) (f64v n)) );
    ( "mxv min-plus f64 (T)",
      fun () ->
        ignore
          (Jit.Kernels.mxv Dtype.FP64 Jit.Op_spec.min_plus ~transpose:true
             (f64m n) (f64v n)) );
    ( "mxv logical bool (T)",
      fun () ->
        ignore
          (Jit.Kernels.mxv Dtype.Bool Jit.Op_spec.logical ~transpose:true
             (bm n) (bv n)) );
    ( "vxm arithmetic f64",
      fun () ->
        ignore
          (Jit.Kernels.vxm Dtype.FP64 Jit.Op_spec.arithmetic ~transpose:false
             (f64v n) (f64m n)) );
    ( "ewise_add Plus f64",
      fun () ->
        ignore (Jit.Kernels.ewise_v `Add Dtype.FP64 ~op:"Plus" (f64v n) (f64v n))
    );
    ( "ewise_mult Times f64",
      fun () ->
        ignore
          (Jit.Kernels.ewise_v `Mult Dtype.FP64 ~op:"Times" (f64v n) (f64v n))
    );
    ( "apply bind2nd(Times,.85)",
      fun () ->
        ignore
          (Jit.Kernels.apply_v Dtype.FP64
             (Jit.Op_spec.Bound { op = "Times"; side = `Second; const = 0.85 })
             (f64v n)) );
    ( "reduce Plus f64",
      fun () ->
        ignore
          (Jit.Kernels.reduce_v_scalar Dtype.FP64 ~op:"Plus" ~identity:"Zero"
             (f64v n)) );
  ]

let compile_experiment () =
  print_endline "== Compile-time experiment: the Fig. 9 dispatch pipeline ==";
  Printf.printf "backend: %s\n\n" (Jit.Native_backend.explain ());
  let run_backend label backend =
    Jit.Dispatch.set_backend backend;
    (* cold: empty disk + memory caches *)
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ogb-bench-cache-%d-%s" (Unix.getpid ()) label)
    in
    Jit.Disk_cache.set_dir dir;
    Jit.Disk_cache.clear ();
    Jit.Dispatch.clear_memory_cache ();
    Jit.Jit_stats.reset ();
    Printf.printf "-- %s backend --\n" label;
    Printf.printf "%-28s %12s %12s %12s\n" "kernel" "cold(ms)" "disk(ms)"
      "memory(us)";
    List.iter
      (fun (name, call) ->
        let _, cold = time_once call in
        (* drop the memory cache so the next dispatch hits the disk *)
        Jit.Dispatch.clear_memory_cache ();
        let _, disk = time_once call in
        let _, warm = time_once call in
        Printf.printf "%-28s %12.3f %12.3f %12.1f\n" name (ms cold) (ms disk)
          (1e6 *. warm))
      (kernel_workload ());
    Format.printf "totals: %a@\n@." Jit.Jit_stats.pp (Jit.Jit_stats.snapshot ());
    Jit.Disk_cache.clear ()
  in
  if Jit.Native_backend.available () then
    run_backend "native" Jit.Dispatch.Native;
  run_backend "closure" Jit.Dispatch.Closure;
  Jit.Dispatch.set_backend Jit.Dispatch.Auto;
  print_endline
    "expected shape (paper): compilation dominates the first call and is\n\
     amortized away by the disk cache across runs and the memory cache\n\
     within a run; steady-state dispatch is microseconds."

(* ---------------------------------------------------------------- *)
(* Table I: executable notation conformance                          *)
(* ---------------------------------------------------------------- *)

let table1 () =
  print_endline "== Table I: GraphBLAS operations in DSL notation ==";
  let open Ogb in
  let open Ogb.Ops.Infix in
  let a =
    Container.matrix_coo ~nrows:3 ~ncols:3
      [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 0, 4.0) ]
  in
  let b = Container.matrix_coo ~nrows:3 ~ncols:3 [ (0, 1, 1.5); (2, 2, 0.5) ] in
  let u = Container.vector_coo ~size:3 [ (0, 1.0); (2, 2.0) ] in
  let v = Container.vector_coo ~size:3 [ (1, 3.0); (2, -1.0) ] in
  let cm = Container.matrix_empty 3 3 in
  let w = Container.vector_empty 3 in
  let row fmt_math fmt_dsl check =
    Printf.printf "  %-34s %-34s %s\n" fmt_math fmt_dsl
      (if check () then "ok" else "MISMATCH")
  in
  Printf.printf "  %-34s %-34s %s\n" "mathematical notation" "DSL form" "check";
  row "C<M,z> = C (.) A +.x B" "set ~mask c (a @. b)" (fun () ->
      Ops.set cm (!!a @. !!b);
      Container.nvals cm > 0);
  row "w<m,z> = w (.) A +.x u" "set ~mask w (a @. u)" (fun () ->
      Ops.set w (!!a @. !!u);
      (* w0 = 1*1 + 2*2 = 5; w2 = 4*1 = 4 *)
      Container.vector_entries w = [ (0, 5.0); (2, 4.0) ]);
  row "C = A x B (eWiseMult)" "set c (a *: b)" (fun () ->
      Ops.set cm (!!a *: !!b);
      Container.nvals cm = 0 (* disjoint structures here *));
  row "w = u + v (eWiseAdd)" "set w (u +: v)" (fun () ->
      Ops.set w (!!u +: !!v);
      Container.nvals w = 3);
  row "w = [+_j A(:,j)] (reduce row)" "set w (reduce_rows a)" (fun () ->
      Ops.set w (Ops.reduce_rows !!a);
      Container.vector_entries w = [ (0, 3.0); (1, 3.0); (2, 4.0) ]);
  row "s = [+_ij A(i,j)] (reduce)" "reduce a" (fun () ->
      Ops.reduce !!a = 10.0);
  row "C = f(A) (apply)" "set c (apply a)" (fun () ->
      Context.with_ops [ Context.unary "AdditiveInverse" ] (fun () ->
          Ops.set cm (Ops.apply !!a));
      Container.matrix_entries cm
      = [ (0, 0, -1.0); (0, 2, -2.0); (1, 1, -3.0); (2, 0, -4.0) ]);
  row "C = A^T" "set c (tr a)" (fun () ->
      Ops.set cm (tr !!a);
      Container.get_matrix_element cm 2 0 = Some 2.0);
  row "C = A(i,j) (extract)" "set c (extract_mat a rows cols)" (fun () ->
      let sub = Container.matrix_empty 2 3 in
      Ops.set sub
        (Expr.extract_mat !!a (Index_set.List [| 0; 2 |]) Index_set.All);
      Container.nvals sub = 3);
  row "C<M>(i,j) = A (assign)" "set_region ~rows ~cols c a" (fun () ->
      let t = Container.matrix_empty 3 3 in
      Ops.set_region ~rows:(Index_set.List [| 0 |]) ~cols:Index_set.All t
        (Expr.extract_mat !!a (Index_set.List [| 0 |]) Index_set.All);
      Container.nvals t = 2);
  row "w<m>(i) = u (assign)" "set_region ~rows w u" (fun () ->
      let t = Container.vector_empty 3 in
      Ops.set_region ~rows:Index_set.All t !!u;
      Container.nvals t = 2);
  row "accumulate: C (.)= T" "update c expr" (fun () ->
      let t = Container.vector_coo ~size:3 [ (0, 10.0) ] in
      Ops.update t !!u;
      Container.vector_entries t = [ (0, 11.0); (2, 2.0) ]);
  ignore v;
  print_newline ()

(* ---------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ---------------------------------------------------------------- *)

let ablation () =
  print_endline "== Ablations of the design choices (DESIGN.md E5) ==";
  (* (a) masked mxm pruning: the deferred-evaluation payoff.  With the
     mask available at evaluation time the dot kernel computes only
     allowed cells; the naive strategy computes the full product and
     masks at the write step. *)
  print_endline "\n(a) triangle counting: mask into the kernel vs full mxm";
  Printf.printf "%8s %9s %14s %14s %8s\n" "|V|" "nnz(L)" "masked(ms)"
    "unmasked(ms)" "speedup";
  List.iter
    (fun n ->
      let rng = Graphs.Rng.create ~seed:7 in
      let g =
        Graphs.Edge_list.symmetrize
          (Graphs.Generators.erdos_renyi_paper rng ~nvertices:n)
      in
      let l =
        Algorithms.Triangle.of_undirected (Graphs.Convert.bool_adjacency g)
      in
      let masked =
        best_of (fun () ->
            let b = Smatrix.create Dtype.Int64 n n in
            Matmul.mxm ~mask:(Mask.mmask l) ~transpose_b:true
              (Semiring.arithmetic Dtype.Int64) ~out:b l l;
            Apply_reduce.reduce_matrix_scalar (Monoid.plus Dtype.Int64) b)
      in
      let unmasked =
        best_of (fun () ->
            let b = Smatrix.create Dtype.Int64 n n in
            let full = Smatrix.create Dtype.Int64 n n in
            Matmul.mxm ~transpose_b:true (Semiring.arithmetic Dtype.Int64)
              ~out:full l l;
            Output.write_matrix ~mask:(Mask.mmask l) ~accum:None
              ~replace:false ~out:b
              ~t:(Array.init n (fun r -> Smatrix.row_entries full r));
            Apply_reduce.reduce_matrix_scalar (Monoid.plus Dtype.Int64) b)
      in
      Printf.printf "%8d %9d %14.3f %14.3f %8.2f\n" n (Smatrix.nvals l)
        (ms masked) (ms unmasked) (unmasked /. masked))
    [ 128; 256; 512 ];

  (* (b) container reuse: C[None] = expr into an existing container vs a
     fresh container per iteration (paper §IV's object-lifecycle
     discussion). *)
  print_endline
    "\n(b) output container reuse vs fresh allocation (mxv x1000)";
  let n = 512 in
  let rng = Graphs.Rng.create ~seed:3 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let a =
    Ogb.Container.of_smatrix (Graphs.Convert.matrix_of_edges Dtype.FP64 g)
  in
  let u = Ogb.Container.vector_dense (List.init n (fun _ -> 1.0)) in
  let open Ogb.Ops.Infix in
  let reuse =
    best_of (fun () ->
        let out = Ogb.Container.vector_empty n in
        for _ = 1 to 1000 do
          Ogb.Ops.set out (!!a @. !!u)
        done)
  in
  let fresh =
    best_of (fun () ->
        for _ = 1 to 1000 do
          ignore (Ogb.Expr.force (!!a @. !!u))
        done)
  in
  Printf.printf "  reuse (C[None] = A @ u): %10.3f ms\n" (ms reuse);
  Printf.printf "  fresh (C = A @ u):       %10.3f ms\n" (ms fresh);

  (* (c) abstraction penalty per operation: the full DSL path (packed
     containers, expression objects, context resolution, dispatch, write
     step) vs a direct call of the same specialized kernel. *)
  print_endline "\n(c) per-operation abstraction penalty (mxv, 1000 calls)";
  Printf.printf "%8s %14s %14s %8s\n" "|V|" "dsl(ms)" "kernel(ms)" "ratio";
  List.iter
    (fun n ->
      let rng = Graphs.Rng.create ~seed:4 in
      let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
      let am = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
      let ac = Ogb.Container.of_smatrix am in
      let uv = Svector.of_dense Dtype.FP64 (Array.make n 1.0) in
      let uc = Ogb.Container.of_svector (Svector.dup uv) in
      let out = Ogb.Container.vector_empty n in
      let w = Svector.create Dtype.FP64 n in
      let dsl =
        best_of (fun () ->
            for _ = 1 to 1000 do
              Ogb.Ops.set out (!!ac @. !!uc)
            done)
      in
      let kernel =
        best_of (fun () ->
            for _ = 1 to 1000 do
              let t =
                Jit.Kernels.mxv Dtype.FP64 Jit.Op_spec.arithmetic
                  ~transpose:false am uv
              in
              Output.write_vector ~mask:Mask.No_vmask ~accum:None
                ~replace:false ~out:w ~t
            done)
      in
      Printf.printf "%8d %14.3f %14.3f %8.2f\n" n (ms dsl) (ms kernel)
        (dsl /. kernel))
    [ 16; 64; 256; 1024 ];
  print_endline
    "\nexpected shape: the DSL/kernel ratio is large for tiny operands and\n\
     approaches 1 as the kernel cost grows (the paper's headline claim).";

  (* (d) operation fusion (paper §V future work, implemented here):
     apply-after-matmul with the fused in-place evaluation vs two
     kernels + an extra temporary. *)
  print_endline "\n(d) operation fusion: apply(A @ u) (1000 evaluations)";
  Printf.printf "%8s %14s %14s %8s\n" "|V|" "fused(ms)" "unfused(ms)"
    "speedup";
  List.iter
    (fun n ->
      let rng = Graphs.Rng.create ~seed:9 in
      let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
      let a =
        Ogb.Container.of_smatrix (Graphs.Convert.matrix_of_edges Dtype.FP64 g)
      in
      let u = Ogb.Container.vector_dense (List.init n (fun _ -> 1.0)) in
      let out = Ogb.Container.vector_empty n in
      let run () =
        Ogb.Context.with_ops
          [ Ogb.Context.unary_bound ~op:"Times" 0.85 ]
          (fun () ->
            for _ = 1 to 1000 do
              Ogb.Ops.set out (Ogb.Ops.apply (!!a @. !!u))
            done)
      in
      Ogb.Expr.set_fusion true;
      let fused = best_of run in
      Ogb.Expr.set_fusion false;
      let unfused = best_of run in
      Ogb.Expr.set_fusion true;
      Printf.printf "%8d %14.3f %14.3f %8.2f\n" n (ms fused) (ms unfused)
        (unfused /. fused))
    [ 64; 256; 1024 ]

(* ---------------------------------------------------------------- *)
(* Nonblocking execution engine: blocking vs DAG-scheduled            *)
(* ---------------------------------------------------------------- *)

(* Same DSL program through both engines: [dsl] evaluates each forced
   expression eagerly (blocking, per the GraphBLAS spec default);
   [nonblocking] lowers to a plan DAG, runs the fusion passes, and
   executes on the domain pool.  The results are bit-identical (the
   test suite's qcheck property); this experiment measures the cost or
   payoff and records which rewrites fired and how the rewritten plans
   hit the kernel cache. *)

type exec_row = {
  n : int;
  blocking : float;
  nonblocking : float;
  agree : bool;
}

let exec_bench () =
  print_endline "== Nonblocking engine: blocking vs plan DAG + fusion ==";
  Printf.printf "domains: %d\n" (Exec.Scheduler.domain_count ());
  let sizes = [ 128; 256; 512 ] in
  Jit.Jit_stats.reset ();
  let run_algo name =
    List.map
      (fun n ->
        let rng = Graphs.Rng.create ~seed:(2018 + n) in
        let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
        match name with
        | "pagerank" ->
          let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
          let cont = Ogb.Container.of_smatrix adj in
          let b_ranks, b_iters = Algorithms.Pagerank.dsl cont in
          let nb_ranks, nb_iters = Algorithms.Pagerank.nonblocking cont in
          { n;
            blocking = best_of (fun () -> Algorithms.Pagerank.dsl cont);
            nonblocking =
              best_of (fun () -> Algorithms.Pagerank.nonblocking cont);
            agree =
              b_iters = nb_iters && Ogb.Container.equal b_ranks nb_ranks }
        | _ ->
          let sym = Graphs.Edge_list.symmetrize g in
          let l =
            Algorithms.Triangle.of_undirected
              (Graphs.Convert.bool_adjacency sym)
          in
          let lc = Ogb.Container.of_smatrix l in
          { n;
            blocking = best_of (fun () -> Algorithms.Triangle.dsl lc);
            nonblocking =
              best_of (fun () -> Algorithms.Triangle.nonblocking lc);
            agree =
              Algorithms.Triangle.dsl lc
              = Algorithms.Triangle.nonblocking lc })
      sizes
  in
  let algos =
    List.map (fun a -> (a, run_algo a)) [ "pagerank"; "triangles" ]
  in
  List.iter
    (fun (name, rows) ->
      Printf.printf "\n-- %s --\n" name;
      Printf.printf "%8s %14s %14s %8s %7s\n" "|V|" "blocking(ms)"
        "nonblock(ms)" "ratio" "agree";
      List.iter
        (fun r ->
          Printf.printf "%8d %14.3f %14.3f %8.2f %7s\n" r.n (ms r.blocking)
            (ms r.nonblocking)
            (r.blocking /. r.nonblocking)
            (if r.agree then "yes" else "NO"))
        rows)
    algos;
  let fusions = Jit.Jit_stats.fusions () in
  let sigs = Jit.Jit_stats.per_signature () in
  let snap = Jit.Jit_stats.snapshot () in
  print_endline "\nfusion rewrites fired across the nonblocking runs:";
  List.iter (fun (name, c) -> Printf.printf "  %-16s %d\n" name c) fusions;
  Printf.printf
    "kernel cache: %d lookups, %d memory hits, %d disk hits, %d compiles\n"
    snap.Jit.Jit_stats.lookups snap.Jit.Jit_stats.memory_hits
    snap.Jit.Jit_stats.disk_hits snap.Jit.Jit_stats.compiles;
  (* machine-readable record for the CI artifact *)
  let oc = open_out "BENCH_exec.json" in
  let out fmt = Printf.fprintf oc fmt in
  let json_rows rows =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "        { \"n\": %d, \"blocking_ms\": %.3f, \
              \"nonblocking_ms\": %.3f, \"speedup\": %.3f, \"agree\": %b }"
             r.n (ms r.blocking) (ms r.nonblocking)
             (r.blocking /. r.nonblocking)
             r.agree)
         rows)
  in
  out "{\n";
  out "  \"experiment\": \"exec\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"domains\": %d,\n" (Exec.Scheduler.domain_count ());
  out "  \"algorithms\": [\n";
  out "%s"
    (String.concat ",\n"
       (List.map
          (fun (name, rows) ->
            Printf.sprintf
              "    { \"name\": %S,\n      \"sizes\": [\n%s\n      ] }" name
              (json_rows rows))
          algos));
  out "\n  ],\n";
  out "  \"fusions\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map (fun (name, c) -> Printf.sprintf "    %S: %d" name c) fusions));
  out "  \"cache\": { \"lookups\": %d, \"memory_hits\": %d, \
       \"disk_hits\": %d, \"compiles\": %d },\n"
    snap.Jit.Jit_stats.lookups snap.Jit.Jit_stats.memory_hits
    snap.Jit.Jit_stats.disk_hits snap.Jit.Jit_stats.compiles;
  out "  \"per_signature\": [\n%s\n  ]\n"
    (String.concat ",\n"
       (List.map
          (fun (key, hits, misses) ->
            Printf.sprintf "    { \"key\": %S, \"hits\": %d, \"misses\": %d }"
              key hits misses)
          sigs));
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_exec.json"

(* ---------------------------------------------------------------- *)
(* Format layer: CSR-only vs format-aware dispatch                    *)
(* ---------------------------------------------------------------- *)

(* The same tier-3 algorithms with the storage-format layer toggled:
   CSR-only (the seed behavior — no CSC caching, no dense vectors, no
   push/pull choice) vs format-aware.  Results must be bit-identical;
   this experiment measures the layout payoff and records the format
   conversion counters.

   The workload is Graph500-style RMAT graphs (edge factor 16) rather
   than the uniform Erdős–Rényi of Figs. 10–11: direction optimization
   and layout choice are about skewed degree distributions — on a
   near-regular ER graph PageRank converges in one iteration and BFS
   frontiers have no hubs, so the format layer has nothing to exploit. *)

let log2i n =
  let s = ref 0 in
  let v = ref n in
  while !v > 1 do
    incr s;
    v := !v / 2
  done;
  !s

type fmt_row = {
  n : int;
  csr_only : float;
  format_aware : float;
  fmt_agree : bool;
}

let formats_bench sizes =
  print_endline "== Format layer: CSR-only vs format-aware dispatch ==";
  Printf.printf "sizes: %s\n"
    (String.concat " " (List.map string_of_int sizes));
  Format_stats.reset ();
  let equal_vec a b =
    Ogb.Container.equal
      (Ogb.Container.of_svector a)
      (Ogb.Container.of_svector b)
  in
  let run_algo name =
    List.map
      (fun n ->
        let rng = Graphs.Rng.create ~seed:(2018 + n) in
        let g =
          Graphs.Generators.rmat rng ~scale:(log2i n) ~edge_factor:16
        in
        match name with
        | "pagerank" ->
          let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
          (* fixed iteration count: with a reachable threshold the
             default 1e-5 is met after one step at these scales, and an
             unreachable one runs to max_iters anyway once the squared
             error hits its floating-point floor — so pin the work to 30
             power iterations for both pipelines *)
          let pr () =
            Algorithms.Pagerank.native ~threshold:0.0 ~max_iters:30 adj
          in
          let base_r, base_i =
            Format_stats.with_enabled false (fun () -> pr ())
          in
          let fmt_r, fmt_i =
            Format_stats.with_enabled true (fun () -> pr ())
          in
          { n;
            csr_only =
              Format_stats.with_enabled false (fun () ->
                  best_of (fun () -> pr ()));
            format_aware =
              Format_stats.with_enabled true (fun () ->
                  best_of (fun () -> pr ()));
            fmt_agree = base_i = fmt_i && equal_vec base_r fmt_r }
        | _ ->
          let adj = Graphs.Convert.bool_adjacency g in
          let base =
            Format_stats.with_enabled false (fun () ->
                Algorithms.Bfs.native adj ~src:0)
          in
          let fmt =
            Format_stats.with_enabled true (fun () ->
                Algorithms.Bfs.native adj ~src:0)
          in
          { n;
            csr_only =
              Format_stats.with_enabled false (fun () ->
                  best_of (fun () -> Algorithms.Bfs.native adj ~src:0));
            format_aware =
              Format_stats.with_enabled true (fun () ->
                  best_of (fun () -> Algorithms.Bfs.native adj ~src:0));
            fmt_agree = equal_vec base fmt })
      sizes
  in
  let algos = List.map (fun a -> (a, run_algo a)) [ "pagerank"; "bfs" ] in
  List.iter
    (fun (name, rows) ->
      Printf.printf "\n-- %s --\n" name;
      Printf.printf "%8s %14s %14s %8s %7s\n" "|V|" "csr-only(ms)"
        "fmt-aware(ms)" "speedup" "agree";
      List.iter
        (fun r ->
          Printf.printf "%8d %14.3f %14.3f %8.2f %7s\n" r.n (ms r.csr_only)
            (ms r.format_aware)
            (r.csr_only /. r.format_aware)
            (if r.fmt_agree then "yes" else "NO"))
        rows)
    algos;
  let counters = Format_stats.counters () in
  Printf.printf "\nformat counters:";
  List.iter (fun (name, c) -> Printf.printf " %s=%d" name c) counters;
  print_newline ();
  let largest rows =
    let r = List.nth rows (List.length rows - 1) in
    r.csr_only /. r.format_aware
  in
  List.iter
    (fun (name, rows) ->
      Printf.printf "largest-size speedup (%s): %.2fx\n" name (largest rows))
    algos;
  (* machine-readable record for the CI artifact *)
  let oc = open_out "BENCH_formats.json" in
  let out fmt = Printf.fprintf oc fmt in
  let json_rows rows =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "        { \"n\": %d, \"csr_only_ms\": %.3f, \
              \"format_aware_ms\": %.3f, \"speedup\": %.3f, \"agree\": %b }"
             r.n (ms r.csr_only) (ms r.format_aware)
             (r.csr_only /. r.format_aware)
             r.fmt_agree)
         rows)
  in
  out "{\n";
  out "  \"experiment\": \"formats\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"algorithms\": [\n";
  out "%s"
    (String.concat ",\n"
       (List.map
          (fun (name, rows) ->
            Printf.sprintf
              "    { \"name\": %S,\n      \"sizes\": [\n%s\n      ] }" name
              (json_rows rows))
          algos));
  out "\n  ],\n";
  out "  \"largest_size_speedups\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map
          (fun (name, rows) -> Printf.sprintf "    %S: %.3f" name (largest rows))
          algos));
  out "  \"format_counters\": {\n%s\n  }\n"
    (String.concat ",\n"
       (List.map (fun (name, c) -> Printf.sprintf "    %S: %d" name c) counters));
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_formats.json"

(* ---------------------------------------------------------------- *)
(* Parallel kernels: strong scaling over the shared domain pool       *)
(* ---------------------------------------------------------------- *)

(* Tier-3 algorithms at pinned pool sizes (1 / 2 / 4 domains), on the
   same RMAT workload as the formats experiment so the hot kernels see
   the skewed degree distributions they were parallelized for.  Every
   configuration must be bit-identical to the single-domain run:
   parallel variants either partition the output space or combine
   chunk partials with an exactly associative monoid, so the domain
   count must never show up in the results themselves — only in the
   times.  The JSON records the machine's core count: on a single-core
   runner the pool inlines chunks sequentially and speedups
   legitimately sit near 1.0, so downstream tooling must read
   [cores] before judging the scaling rows. *)

type par_res =
  | R_ranks of (int * float) list * int
  | R_levels of (int * int) list
  | R_count of int

type par_row = { pd : int; par_ms : float; pagree : bool }

let parallel_bench n =
  print_endline "== Parallel kernels: strong scaling over the domain pool ==";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "machine cores (recommended domains): %d\n" cores;
  Printf.printf "par threshold: %d, |V|=%d\n" (Parallel.Pool.threshold ()) n;
  let rng = Graphs.Rng.create ~seed:(2018 + n) in
  let g = Graphs.Generators.rmat rng ~scale:(log2i n) ~edge_factor:16 in
  let adjf = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let adjb = Graphs.Convert.bool_adjacency g in
  let tri_l =
    Algorithms.Triangle.of_undirected
      (Graphs.Convert.bool_adjacency (Graphs.Edge_list.symmetrize g))
  in
  let algos =
    [ ( "pagerank",
        fun () ->
          let r, i =
            Algorithms.Pagerank.native ~threshold:0.0 ~max_iters:30 adjf
          in
          R_ranks (Svector.to_alist r, i) );
      ( "bfs",
        fun () ->
          R_levels
            (Algorithms.Bfs.levels_of_svector
               (Algorithms.Bfs.native adjb ~src:0)) );
      ("triangles", fun () -> R_count (Algorithms.Triangle.native tri_l)) ]
  in
  let domain_counts = [ 1; 2; 4 ] in
  let at_domains d f =
    Parallel.Pool.set_domains d;
    Fun.protect ~finally:Parallel.Pool.clear_domains_override f
  in
  Parallel.Pool.reset_counters ();
  let results =
    List.map
      (fun (name, run) ->
        let base = at_domains 1 (fun () -> run ()) in
        let rows =
          List.map
            (fun d ->
              at_domains d (fun () ->
                  let res = run () in
                  { pd = d; par_ms = ms (best_of run); pagree = res = base }))
            domain_counts
        in
        (name, rows))
      algos
  in
  let speedup rows r =
    match List.find_opt (fun x -> x.pd = 1) rows with
    | Some base -> base.par_ms /. r.par_ms
    | None -> 1.0
  in
  List.iter
    (fun (name, rows) ->
      Printf.printf "\n-- %s --\n" name;
      Printf.printf "%8s %12s %8s %7s\n" "domains" "time(ms)" "speedup"
        "agree";
      List.iter
        (fun r ->
          Printf.printf "%8d %12.3f %8.2f %7s\n" r.pd r.par_ms
            (speedup rows r)
            (if r.pagree then "yes" else "NO"))
        rows)
    results;
  let counters = Parallel.Pool.counters () in
  Printf.printf "\npool counters:";
  List.iter (fun (name, c) -> Printf.printf " %s=%d" name c) counters;
  Printf.printf " busy=%.3fs\n" (Parallel.Pool.busy_seconds ());
  let all_agree =
    List.for_all (fun (_, rows) -> List.for_all (fun r -> r.pagree) rows)
      results
  in
  Printf.printf "bit-identical across domain counts: %s\n"
    (if all_agree then "yes" else "NO");
  let oc = open_out "BENCH_parallel.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"experiment\": \"parallel\",\n";
  out "  \"cores\": %d,\n" cores;
  out "  \"n\": %d,\n" n;
  out "  \"par_threshold\": %d,\n" (Parallel.Pool.threshold ());
  out "  \"algorithms\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun (name, rows) ->
            Printf.sprintf "    { \"name\": %S,\n      \"rows\": [\n%s\n      ] }"
              name
              (String.concat ",\n"
                 (List.map
                    (fun r ->
                      Printf.sprintf
                        "        { \"domains\": %d, \"ms\": %.3f, \
                         \"speedup\": %.3f, \"agree\": %b }"
                        r.pd r.par_ms (speedup rows r) r.pagree)
                    rows)))
          results));
  out "  \"speedup_at_4_domains\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map
          (fun (name, rows) ->
            let r = List.find (fun x -> x.pd = 4) rows in
            Printf.sprintf "    %S: %.3f" name (speedup rows r))
          results));
  out "  \"pool_counters\": {\n%s\n  },\n"
    (String.concat ",\n"
       (List.map (fun (name, c) -> Printf.sprintf "    %S: %d" name c) counters));
  out "  \"agree\": %b\n" all_agree;
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_parallel.json"

(* ---------------------------------------------------------------- *)
(* Warm-up: cold vs analyzer-pre-warmed first iteration               *)
(* ---------------------------------------------------------------- *)

(* The PyGB pitch is that dynamic compilation amortizes; the analyzer
   makes the first iteration cheap too.  Three measurements per
   algorithm on a scrubbed cache (memory + disk): the cold first call
   (compiles inline), the analyzer-driven warm-up alone, and the first
   call after warm-up (which must compile nothing). *)

type warm_row = {
  w_algo : string;
  cold_first_ms : float;
  cold_compiles : int;
  warmup_ms : float;
  warmup_compiles : int;
  warm_first_ms : float;
  warm_first_compiles : int;
}

let warmup_bench () =
  print_endline
    "== Warm-up: cold vs analyzer-driven pre-warmed first iteration ==";
  let n = 256 in
  let rng = Graphs.Rng.create ~seed:2018 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let cont = Ogb.Container.of_smatrix adj in
  let bool_cont =
    Ogb.Container.of_smatrix (Smatrix.cast ~into:Dtype.Bool adj)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    1000.0 *. (Unix.gettimeofday () -. t0)
  in
  let compiles () = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.compiles in
  let scrub () =
    Jit.Dispatch.clear_memory_cache ();
    Jit.Disk_cache.clear ()
  in
  let row w_algo entry run =
    let sigs = Analysis.Tier1.signatures entry ~n in
    scrub ();
    let c0 = compiles () in
    let cold_first_ms = wall run in
    let cold_compiles = compiles () - c0 in
    scrub ();
    let c1 = compiles () in
    let warmup_ms = wall (fun () -> Analysis.Warmup.warm sigs) in
    let warmup_compiles = compiles () - c1 in
    let c2 = compiles () in
    let warm_first_ms = wall run in
    let warm_first_compiles = compiles () - c2 in
    { w_algo; cold_first_ms; cold_compiles; warmup_ms; warmup_compiles;
      warm_first_ms; warm_first_compiles }
  in
  let entry name = Option.get (Analysis.Tier1.find name) in
  let rows =
    [ row "bfs" (entry "bfs") (fun () ->
          Algorithms.Bfs.vm_loops bool_cont ~src:0);
      row "pagerank" (entry "pagerank") (fun () ->
          Algorithms.Pagerank.vm_loops cont) ]
  in
  Printf.printf "%10s %14s %9s %12s %9s %15s %9s\n" "algo" "cold-1st(ms)"
    "compiles" "warmup(ms)" "compiles" "warm-1st(ms)" "compiles";
  List.iter
    (fun r ->
      Printf.printf "%10s %14.3f %9d %12.3f %9d %15.3f %9d\n" r.w_algo
        r.cold_first_ms r.cold_compiles r.warmup_ms r.warmup_compiles
        r.warm_first_ms r.warm_first_compiles)
    rows;
  let snap = Jit.Jit_stats.snapshot () in
  Printf.printf "warm requests: %d, warm compiles: %d\n"
    snap.Jit.Jit_stats.warm_requests snap.Jit.Jit_stats.warm_compiles;
  let oc = open_out "BENCH_warmup.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"experiment\": \"warmup\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"n\": %d,\n" n;
  out "  \"rows\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    { \"algo\": %S, \"cold_first_ms\": %.3f, \
               \"cold_compiles\": %d, \"warmup_ms\": %.3f, \
               \"warmup_compiles\": %d, \"warm_first_ms\": %.3f, \
               \"warm_first_compiles\": %d }"
              r.w_algo r.cold_first_ms r.cold_compiles r.warmup_ms
              r.warmup_compiles r.warm_first_ms r.warm_first_compiles)
          rows));
  out "  \"warm_requests\": %d,\n" snap.Jit.Jit_stats.warm_requests;
  out "  \"warm_compiles\": %d\n" snap.Jit.Jit_stats.warm_compiles;
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_warmup.json"

(* ---------------------------------------------------------------- *)
(* Fault tolerance: warm-path overhead + chaos equivalence            *)
(* ---------------------------------------------------------------- *)

(* Two claims to keep honest: (1) the hardening (checksums, advisory
   locks, injection-point checks) costs < 5% on the warm path, measured
   by running steady-state nonblocking PageRank with every injection
   point armed in `never` mode — each check pays its full bookkeeping
   cost but nothing fires — against the disarmed run; (2) under real
   injected faults the engine still returns exactly the fault-free
   ranks, with the recovery visible only in the resilience counters. *)

type chaos_row = {
  c_name : string;
  c_spec : string;
  c_agree : bool;
  c_iters : int;
  c_ms : float;
  c_stats : Jit.Jit_stats.snapshot;
}

let faults_bench () =
  print_endline
    "== Fault tolerance: warm-path overhead and chaos equivalence ==";
  let n = 256 in
  let rng = Graphs.Rng.create ~seed:2018 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let cont =
    Ogb.Container.of_smatrix (Graphs.Convert.matrix_of_edges Dtype.FP64 g)
  in
  let ranks_alist c =
    List.sort compare (Algorithms.Pagerank.ranks_of_container c)
  in
  let baseline, base_iters = Algorithms.Pagerank.dsl cont in
  let base_alist = ranks_alist baseline in
  (* warm-path overhead *)
  (* sub-ms per run on one core: best-of-30 tames scheduler jitter *)
  Fault.disarm ();
  let disarmed_ms =
    ms (best_of ~reps:30 (fun () -> Algorithms.Pagerank.nonblocking cont))
  in
  Fault.arm (List.map (fun p -> (p, Fault.Never)) Fault.points);
  let armed_ms =
    ms (best_of ~reps:30 (fun () -> Algorithms.Pagerank.nonblocking cont))
  in
  Fault.disarm ();
  let overhead_pct = 100.0 *. (armed_ms -. disarmed_ms) /. disarmed_ms in
  let overhead_ok = overhead_pct < 5.0 in
  Printf.printf
    "warm PageRank: disarmed %.3fms, armed-inert %.3fms, overhead %+.2f%% \
     (budget 5%%: %s)\n"
    disarmed_ms armed_ms overhead_pct
    (if overhead_ok then "ok" else "EXCEEDED");
  (* chaos equivalence *)
  let specs =
    [ ("native-compile-fail", "native.compile.exit=always");
      ("corrupt-cache", "cache.corrupt.cmxs=always,cache.corrupt.source=once");
      ("worker-exn", "sched.worker.exn=p0.3,seed=7") ]
  in
  let rows =
    List.map
      (fun (c_name, c_spec) ->
        Jit.Dispatch.clear_memory_cache ();
        Jit.Disk_cache.clear ();
        Jit.Breaker.reset ();
        Jit.Jit_stats.reset ();
        (match Fault.arm_spec c_spec with
        | Ok () -> ()
        | Error e -> failwith ("bad chaos spec: " ^ e));
        let (ranks, c_iters), dt =
          time_once (fun () -> Algorithms.Pagerank.nonblocking cont)
        in
        Fault.disarm ();
        let c_stats = Jit.Jit_stats.snapshot () in
        let c_agree =
          ranks_alist ranks = base_alist && c_iters = base_iters
        in
        { c_name; c_spec; c_agree; c_iters; c_ms = ms dt; c_stats })
      specs
  in
  Jit.Breaker.reset ();
  Jit.Jit_stats.reset ();
  Printf.printf "%20s %7s %9s %8s %8s %8s %8s %8s\n" "spec" "agree" "time(ms)"
    "natfail" "quarant" "wrkfail" "seqrrun" "blkfall";
  List.iter
    (fun r ->
      Printf.printf "%20s %7s %9.3f %8d %8d %8d %8d %8d\n" r.c_name
        (if r.c_agree then "yes" else "NO")
        r.c_ms r.c_stats.Jit.Jit_stats.native_failures
        r.c_stats.Jit.Jit_stats.checksum_quarantines
        r.c_stats.Jit.Jit_stats.sched_worker_failures
        r.c_stats.Jit.Jit_stats.sched_seq_reruns
        r.c_stats.Jit.Jit_stats.blocking_fallbacks)
    rows;
  let oc = open_out "BENCH_faults.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"experiment\": \"faults\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"n\": %d,\n" n;
  out
    "  \"warm\": { \"disarmed_ms\": %.3f, \"armed_inert_ms\": %.3f, \
     \"overhead_pct\": %.2f, \"budget_pct\": 5.0, \"pass\": %b },\n"
    disarmed_ms armed_ms overhead_pct overhead_ok;
  out "  \"chaos\": [\n%s\n  ]\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              "    { \"name\": %S, \"spec\": %S, \"agree\": %b, \
               \"iters\": %d, \"ms\": %.3f, \"native_failures\": %d, \
               \"checksum_quarantines\": %d, \"sched_worker_failures\": %d, \
               \"sched_seq_reruns\": %d, \"blocking_fallbacks\": %d }"
              r.c_name r.c_spec r.c_agree r.c_iters r.c_ms
              r.c_stats.Jit.Jit_stats.native_failures
              r.c_stats.Jit.Jit_stats.checksum_quarantines
              r.c_stats.Jit.Jit_stats.sched_worker_failures
              r.c_stats.Jit.Jit_stats.sched_seq_reruns
              r.c_stats.Jit.Jit_stats.blocking_fallbacks)
          rows));
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_faults.json";
  print_newline ()

(* ---------------------------------------------------------------- *)
(* Server mode: cold one-shot CLI vs resident warm daemon             *)
(* ---------------------------------------------------------------- *)

(* The daemon's pitch: one process keeps the loaded graph and the
   signature→kernel cache resident, warmed at startup, so a request
   pays only the compute — where a one-shot CLI invocation pays graph
   construction plus inline JIT compiles every time.  Three
   measurements:

   - cold: scrubbed caches, one PageRank run (the CLI cost model);
   - daemon steady state: the same request through [Daemon.handle] and
     the full JSON codec after warm-up, best-of-[reps] (the acceptance
     bar is ≥ 10× under [daemon_vs_cold_speedup]);
   - a 4-session mixed run that must trigger zero compiles
     ([zero_compiles_after_warm] gates true→false), and batched vs
     unbatched same-signature mxv throughput (context numbers plus a
     [batched_identical] correctness gate). *)

let serve_bench () =
  print_endline "== Server mode: cold one-shot vs resident warm daemon ==";
  let n = 256 in
  let compiles () = (Jit.Jit_stats.snapshot ()).Jit.Jit_stats.compiles in
  let scrub () =
    Jit.Dispatch.clear_memory_cache ();
    Jit.Disk_cache.clear ()
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    1000.0 *. (Unix.gettimeofday () -. t0)
  in
  (* cold: what a one-shot CLI invocation pays — scrubbed cache, graph
     from scratch, compiles inline on first use *)
  scrub ();
  let c0 = compiles () in
  let cold_ms =
    wall (fun () ->
        let rng = Graphs.Rng.create ~seed:2018 in
        let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
        let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
        Algorithms.Pagerank.vm_loops (Ogb.Container.of_smatrix adj))
  in
  let cold_compiles = compiles () - c0 in
  (* daemon: warmed shared state, requests through the JSON codec *)
  scrub ();
  let cfg =
    { Server.Daemon.sock_path = "/tmp/ogb-serve-bench-unused.sock";
      tcp_addr = None;
      workers = 2;
      queue_cap = 16;
      session_budget = Parallel.Pool.domains ();
      batch_window = 0.0005;
      warm_n = n;
      warm = true }
  in
  let warmup_ms, st =
    let t0 = Unix.gettimeofday () in
    let st = Server.Daemon.create_state cfg in
    (1000.0 *. (Unix.gettimeofday () -. t0), st)
  in
  let sess = Server.Session.create () in
  let request s =
    let resp =
      Server.Daemon.handle st sess (Server.Json.parse s)
    in
    ignore (Server.Json.to_string resp);
    resp
  in
  (match
     Server.Json.str_field "status"
       (request
          (Printf.sprintf
             "{\"op\": \"load\", \"name\": \"g\", \"graph\": \"er:n=%d\", \
              \"symmetrize\": false}"
             n))
   with
  | Some "ok" -> ()
  | _ -> failwith "serve bench: load failed");
  let pagerank_req =
    "{\"op\": \"run\", \"algo\": \"pagerank\", \"tier\": \"vm\", \"graph\": \
     \"g\"}"
  in
  (* warm-up phase over: everything after this point must be cache hits *)
  let c_warm = compiles () in
  let reps = 10 in
  let steady_ms = ref infinity in
  for _ = 1 to reps do
    let ms = wall (fun () -> request pagerank_req) in
    if ms < !steady_ms then steady_ms := ms
  done;
  let steady_ms = !steady_ms in
  let speedup = cold_ms /. steady_ms in
  (* multi-session mixed run: 4 concurrent sessions, tier-1 requests,
     responses must agree across sessions and compile nothing *)
  let mixed =
    [ pagerank_req;
      "{\"op\": \"run\", \"algo\": \"bfs\", \"tier\": \"vm\", \"graph\": \
       \"g\", \"src\": 0}" ]
  in
  let run_session () =
    List.map
      (fun r ->
        let resp = Server.Daemon.handle st (Server.Session.create ())
            (Server.Json.parse r) in
        match Server.Json.member "result" resp with
        | Some j -> Server.Json.to_string j
        | None -> Server.Json.to_string resp)
      mixed
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn run_session) in
  let per_session = Array.map Domain.join doms in
  let identical =
    Array.for_all (fun r -> r = per_session.(0)) per_session
  in
  let compiles_after_warm = compiles () - c_warm in
  (* batching: same-signature mxv, 4 domains x 8 requests each, fused
     dispatch vs one dispatch per request *)
  let m =
    match Server.Registry.find (Server.Daemon.registry st) "g" with
    | Some m -> m
    | None -> failwith "serve bench: graph lost"
  in
  let sr = Jit.Op_spec.arithmetic in
  let u = Svector.of_dense Dtype.FP64 (Array.make n 1.0) in
  let expected =
    Entries.to_alist (Jit.Kernels.mxv Dtype.FP64 sr ~transpose:false m u)
  in
  let per_domain = 8 and domains = 4 in
  let requests = per_domain * domains in
  let unbatched_ms =
    wall (fun () ->
        let ds =
          Array.init domains (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to per_domain do
                    ignore
                      (Jit.Kernels.mxv Dtype.FP64 sr ~transpose:false m u)
                  done))
        in
        Array.iter Domain.join ds)
  in
  let bat = Server.Batcher.create ~window_s:0.0005 () in
  let key =
    Server.Batcher.key_of ~op:`Mxv ~graph:"g" ~transpose:false ~sr ~u
  in
  let batched_ok = Atomic.make true in
  let batched_ms =
    wall (fun () ->
        let ds =
          Array.init domains (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to per_domain do
                    match Server.Batcher.run bat key ~sr ~m u with
                    | Ok entries ->
                      if entries <> expected then
                        Atomic.set batched_ok false
                    | Error _ -> Atomic.set batched_ok false
                  done))
        in
        Array.iter Domain.join ds)
  in
  let rps ms = float_of_int requests /. (ms /. 1000.0) in
  let coalesced =
    match List.assoc_opt "batched" (Server.Batcher.counters bat) with
    | Some c -> c
    | None -> 0
  in
  Printf.printf "cold one-shot pagerank: %.1f ms (%d compiles)\n" cold_ms
    cold_compiles;
  Printf.printf "daemon warm-up: %.1f ms; steady-state request: %.3f ms \
                 (%.1fx vs cold)\n"
    warmup_ms steady_ms speedup;
  Printf.printf "multi-session: 4 sessions, identical=%b, compiles after \
                 warm-up: %d\n"
    identical compiles_after_warm;
  Printf.printf "mxv throughput: unbatched %.0f req/s, batched %.0f req/s \
                 (%d of %d coalesced)\n"
    (rps unbatched_ms) (rps batched_ms) coalesced requests;
  let oc = open_out "BENCH_serve.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"experiment\": \"serve\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"n\": %d,\n" n;
  out "  \"cold\": { \"pagerank_ms\": %.3f, \"compiles\": %d },\n" cold_ms
    cold_compiles;
  out "  \"daemon\": { \"warmup_ms\": %.3f, \"steady_ms\": %.3f, \
       \"reps\": %d },\n"
    warmup_ms steady_ms reps;
  out "  \"daemon_vs_cold_speedup\": %.3f,\n" speedup;
  out "  \"multi_session\": { \"sessions\": 4, \"identical\": %b, \
       \"compiles_after_warm\": %d },\n"
    identical compiles_after_warm;
  out "  \"zero_compiles_after_warm\": %b,\n" (compiles_after_warm = 0);
  out "  \"batching\": { \"requests\": %d, \"domains\": %d, \
       \"unbatched_rps\": %.1f, \"batched_rps\": %.1f, \"coalesced\": %d, \
       \"batched_identical\": %b }\n"
    requests domains (rps unbatched_ms) (rps batched_ms) coalesced
    (Atomic.get batched_ok);
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  print_newline ()

(* ---------------------------------------------------------------- *)
(* Per-workload experiments (bench/workloads): all eight tier-1       *)
(* workloads, blocking vs nonblocking, timestamped JSON artifacts     *)
(* ---------------------------------------------------------------- *)

let workloads_bench ~only () =
  (match only with
  | None ->
    Printf.printf "== Workload experiments: %s ==\n"
      (String.concat ", " Bench_workloads.Registry.names)
  | Some name -> Printf.printf "== Workload experiment: %s ==\n" name);
  Printf.printf "   (reps OGB_BENCH_REPS=%d, size override OGB_BENCH_N%s)\n"
    (Bench_workloads.Bench_core.reps ())
    (match Sys.getenv_opt "OGB_BENCH_N" with
    | Some v -> "=" ^ v
    | None -> " unset");
  (match only with
  | None -> Bench_workloads.Registry.run_all ()
  | Some name -> Bench_workloads.Registry.run_one name);
  print_newline ()

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks                                          *)
(* ---------------------------------------------------------------- *)

let micro () =
  print_endline "== Bechamel micro-benchmarks (kernel families, n=512) ==";
  let open Bechamel in
  let n = 512 in
  let rng = Graphs.Rng.create ~seed:5 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let a = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let u = Svector.of_dense Dtype.FP64 (Array.make n 1.0) in
  let v = Svector.of_dense Dtype.FP64 (Array.init n float_of_int) in
  let w = Svector.create Dtype.FP64 n in
  let sr = Semiring.arithmetic Dtype.FP64 in
  let tests =
    [ Test.make ~name:"mxv" (Staged.stage (fun () -> Matmul.mxv sr ~out:w a u));
      Test.make ~name:"mxv_transposed"
        (Staged.stage (fun () -> Matmul.mxv ~transpose_a:true sr ~out:w a u));
      Test.make ~name:"ewise_add"
        (Staged.stage (fun () ->
             Ewise.vector_add (Binop.plus Dtype.FP64) ~out:w u v));
      Test.make ~name:"ewise_mult"
        (Staged.stage (fun () ->
             Ewise.vector_mult (Binop.times Dtype.FP64) ~out:w u v));
      Test.make ~name:"apply"
        (Staged.stage (fun () ->
             Apply_reduce.apply_vector
               (Unaryop.additive_inverse Dtype.FP64)
               ~out:w u));
      Test.make ~name:"reduce"
        (Staged.stage (fun () ->
             ignore
               (Apply_reduce.reduce_vector_scalar (Monoid.plus Dtype.FP64) u)));
      Test.make ~name:"transpose"
        (Staged.stage (fun () -> ignore (Smatrix.transpose a)));
    ]
  in
  let test = Test.make_grouped ~name:"kernels" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let merged = Analyze.merge ols instances results in
  Printf.printf "%-28s %14s\n" "kernel" "ns/run";
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) tbl [] in
      List.iter
        (fun (name, o) ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-28s %14.1f\n" name est
          | _ -> Printf.printf "%-28s %14s\n" name "-")
        (List.sort compare rows))
    merged;
  print_newline ()

(* ---------------------------------------------------------------- *)
(* Cost model: calibrated planner vs greedy schedules                 *)
(* ---------------------------------------------------------------- *)

(* Phase 1 drives the kernels under pinned schedules (both mxv
   directions at several operand fills, plus the real workloads) to
   gather per-family (items, seconds) observations, then persists them
   as a new calibration generation.  Phase 2 re-plans everything with
   the calibrated model and A/Bs the planner's schedule against the
   frozen greedy pipeline (--schedule default).  The whole experiment
   runs under the installed Analysis hook, so every plan — and every
   candidate the search prices — must pass the static verifier.

   The fill sweep brackets the greedy pull/push crossover (fill = 1/4):
   wherever the calibrated crossover lands, some fills sit between it
   and 1/4, and there the planner makes a non-greedy direction choice
   the A/B can measure. *)

module Sched = Cost.Schedule

type cost_row = {
  cname : string;
  greedy_ms : float;
  planner_ms : float;
  cagree : bool;
  cschedule : string;
  non_greedy : bool;
}

let with_pin sched f =
  Exec.Planner.pin sched;
  Fun.protect ~finally:(fun () -> Exec.Planner.pin None) f

let cost_bench max_n =
  let n = max 4096 max_n in
  print_endline "== Cost-model planner: calibrated search vs greedy ==";
  Printf.printf "n=%d, domains: %d\n" n (Exec.Scheduler.domain_count ());
  let rng = Graphs.Rng.create ~seed:(2018 + n) in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let adj = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let cont = Ogb.Container.of_smatrix adj in
  let sym = Graphs.Edge_list.symmetrize g in
  let bool_adj = Graphs.Convert.bool_adjacency sym in
  let bcont = Ogb.Container.of_smatrix bool_adj in
  let lc =
    Ogb.Container.of_smatrix (Algorithms.Triangle.of_undirected bool_adj)
  in
  let vec_repr c =
    String.concat ";"
      (List.map
         (fun (i, x) -> Printf.sprintf "%d:%h" i x)
         (Ogb.Container.vector_entries c))
  in
  let workloads =
    [ ( "pagerank",
        fun () ->
          let r, it = Algorithms.Pagerank.nonblocking cont in
          Printf.sprintf "%d|%s" it (vec_repr r) );
      ( "bfs",
        fun () ->
          vec_repr
            (Exec.with_mode Exec.Nonblocking (fun () ->
                 Algorithms.Bfs.dsl bcont ~src:0)) );
      ( "triangles",
        fun () -> Printf.sprintf "%h" (Algorithms.Triangle.nonblocking lc) )
    ]
  in
  let sweep_vec fill =
    let k = max 1 (int_of_float (fill *. float_of_int n)) in
    Ogb.Container.vector_coo ~size:n
      (List.init k (fun j -> (j * n / k, 1.0 +. float_of_int (j mod 7))))
  in
  let mxv_expr u =
    let open Ogb.Ops.Infix in
    Ogb.Context.with_ops
      [ Ogb.Context.semiring "Arithmetic" ]
      (fun () -> tr !!cont @. !!u)
  in
  let dir_of plan =
    match (Exec.Plan.root plan).Exec.Plan.op with
    | Exec.Plan.MatMul { layout = Exec.Plan.L_csc_pull; _ } -> "pull"
    | Exec.Plan.MatMul { layout = Exec.Plan.L_csc_push; _ } -> "push"
    | _ -> "auto"
  in
  let fills =
    [ 1. /. 16.; 1. /. 8.; 3. /. 16.; 7. /. 32.; 0.24; 0.26; 5. /. 16.;
      3. /. 8.; 1. /. 2. ]
  in
  Analysis.Hook.install ();
  Fun.protect ~finally:(fun () -> Analysis.Hook.uninstall ())
  @@ fun () ->
  (* -- phase 1: observe under pinned schedules, then calibrate -- *)
  print_endline "\n-- phase 1: calibration passes (pinned pull/push) --";
  Jit.Jit_stats.reset ();
  Parallel.Pool.reset_counters ();
  List.iter
    (fun fill ->
      let u = sweep_vec fill in
      with_pin
        (Some { Sched.default with Sched.layout = Sched.Pull })
        (fun () -> ignore (Exec.force (mxv_expr u)));
      with_pin
        (Some { Sched.default with Sched.layout = Sched.Push })
        (fun () -> ignore (Exec.force (mxv_expr u))))
    fills;
  List.iter
    (fun (_, run) -> with_pin (Some Sched.default) (fun () -> ignore (run ())))
    workloads;
  (match Cost.Calibration.save () with
  | Ok path ->
    Printf.printf "calibration saved: %s (generation %d)\n" path
      (Cost.Calibration.generation ())
  | Error e -> Printf.printf "calibration save FAILED: %s\n" e);
  Printf.printf "%-14s %14s %8s\n" "family" "ns/item" "samples";
  List.iter
    (fun (fam, ns, samples) ->
      Printf.printf "%-14s %14.3f %8d\n" fam ns samples)
    (Cost.Calibration.summary ());
  (* -- phase 2: A/B calibrated planner vs frozen greedy -- *)
  print_endline "\n-- phase 2: planner vs greedy (calibrated) --";
  Exec.Planner.clear_cache ();
  Exec.Planner.reset_counters ();
  let ab cname plan_of run =
    let gdir = with_pin (Some Sched.default) (fun () -> dir_of (plan_of ())) in
    let pplan = with_pin None plan_of in
    let pdir = dir_of pplan in
    let g_repr = with_pin (Some Sched.default) run in
    let p_repr = with_pin None run in
    let gm = with_pin (Some Sched.default) (fun () -> best_of run) in
    let pm = with_pin None (fun () -> best_of run) in
    { cname;
      greedy_ms = ms gm;
      planner_ms = ms pm;
      cagree = String.equal g_repr p_repr;
      cschedule = pplan.Exec.Plan.schedule_desc;
      non_greedy = gdir <> pdir }
  in
  let workload_rows =
    List.map
      (fun (name, run) ->
        let row =
          ab name
            (fun () ->
              (* representative plan for the schedule label; algorithm
                 workloads build many plans, the A/B times them all *)
              Exec.plan_force (mxv_expr (sweep_vec 0.5)))
            (fun () -> run ())
        in
        { row with non_greedy = row.cschedule <> "default" })
      workloads
  in
  let sweep_rows =
    List.map
      (fun fill ->
        let u = sweep_vec fill in
        ab
          (Printf.sprintf "mxv fill=%.4f" fill)
          (fun () -> Exec.plan_force (mxv_expr u))
          (fun () -> vec_repr (Exec.force (mxv_expr u))))
      fills
  in
  let rows = workload_rows @ sweep_rows in
  Printf.printf "%-18s %12s %12s %8s %6s %4s  %s\n" "workload" "greedy(ms)"
    "planner(ms)" "speedup" "agree" "alt" "schedule";
  List.iter
    (fun r ->
      Printf.printf "%-18s %12.3f %12.3f %8.2f %6s %4s  %s\n" r.cname
        r.greedy_ms r.planner_ms
        (r.greedy_ms /. r.planner_ms)
        (if r.cagree then "yes" else "NO")
        (if r.non_greedy then "yes" else "-")
        r.cschedule)
    rows;
  let non_greedy_win =
    List.exists
      (fun r -> r.non_greedy && r.greedy_ms /. r.planner_ms > 1.0)
      sweep_rows
  in
  Printf.printf "non-greedy win observed: %b\n" non_greedy_win;
  List.iter
    (fun (k, v) -> Printf.printf "planner %s: %d\n" k v)
    (Exec.Planner.counters ());
  (* machine-readable record for the CI artifact and perf gate *)
  let oc = open_out "BENCH_cost.json" in
  let out fmt = Printf.fprintf oc fmt in
  let json_row r =
    Printf.sprintf
      "    { \"name\": %S, \"n\": %d, \"greedy_ms\": %.3f, \
       \"planner_ms\": %.3f, \"speedup\": %.3f, \"agree\": %b, \
       \"non_greedy\": %b, \"schedule\": %S }"
      r.cname n r.greedy_ms r.planner_ms
      (r.greedy_ms /. r.planner_ms)
      r.cagree r.non_greedy r.cschedule
  in
  out "{\n";
  out "  \"experiment\": \"cost\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"n\": %d,\n" n;
  out "  \"domains\": %d,\n" (Exec.Scheduler.domain_count ());
  out "  \"calibration\": {\n";
  out "    \"generation\": %d,\n" (Cost.Calibration.generation ());
  out "    \"coefficients\": {\n%s\n    }\n"
    (String.concat ",\n"
       (List.map
          (fun (fam, ns, samples) ->
            Printf.sprintf "      %S: { \"ns_per_item\": %.3f, \
                            \"samples\": %d }" fam ns samples)
          (Cost.Calibration.summary ())));
  out "  },\n";
  out "  \"workloads\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_row workload_rows));
  out "  \"mxv_sweep\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_row sweep_rows));
  out "  \"all_agree\": %b,\n" (List.for_all (fun r -> r.cagree) rows);
  out "  \"non_greedy_win\": %b,\n" non_greedy_win;
  out "  \"verified\": true,\n";
  out "  \"planner\": {\n%s\n  }\n"
    (String.concat ",\n"
       (List.map
          (fun (k, v) -> Printf.sprintf "    %S: %d" k v)
          (Exec.Planner.counters ())));
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_cost.json"

(* ---------------------------------------------------------------- *)

(* Out-of-core (tiled) execution: the streamed PageRank must return the
   in-memory ranks bit-for-bit both unbounded and under a memory budget
   small enough to force tile eviction, and the incremental layer's
   certified warm restart must converge in no more iterations than the
   cold rerun it replaces. *)
let oocore_bench () =
  print_endline "== Out-of-core: tiled streaming, eviction, delta ==";
  let n = 512 in
  let tile = (64, 64) in
  let budget = 64 * 1024 in
  (* the default 1e-5 threshold converges in one step on a near-regular
     ER graph; tighten it so iteration, checkpointing and warm restart
     have something to measure *)
  let threshold = 1.e-12 in
  let rng = Graphs.Rng.create ~seed:4242 in
  let g = Graphs.Generators.erdos_renyi_paper rng ~nvertices:n in
  let m = Graphs.Convert.matrix_of_edges Dtype.FP64 g in
  let fresh_dir =
    let k = ref 0 in
    fun () ->
      incr k;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ogb-bench-tiles-%d-%d" (Unix.getpid ()) !k)
  in
  let expect, base_iters =
    Format_stats.with_enabled true (fun () ->
        Algorithms.Pagerank.native ~threshold m)
  in
  let inmem_ms =
    ms
      (best_of (fun () ->
           Format_stats.with_enabled true (fun () ->
               Algorithms.Pagerank.native ~threshold m)))
  in
  let with_tiled ?budget f =
    let t = Tmatrix.of_smatrix ~dir:(fresh_dir ()) ~tile ?budget m in
    Fun.protect ~finally:(fun () -> Tmatrix.destroy t) (fun () -> f t)
  in
  (* unbounded: every tile stays resident *)
  let unbounded_ranks, unbounded_ms =
    with_tiled (fun t ->
        let r, _ = Oocore.Stream.pagerank ~threshold t in
        (r, ms (best_of (fun () -> Oocore.Stream.pagerank ~threshold t))))
  in
  let agree_unbounded = Svector.equal unbounded_ranks expect in
  (* bounded: the budget forces streaming through the tile store *)
  Tile_stats.reset ();
  let bounded_ranks, bounded_iters, bounded_ms =
    with_tiled ~budget (fun t ->
        let r, it = Oocore.Stream.pagerank ~threshold t in
        (r, it, ms (best_of (fun () -> Oocore.Stream.pagerank ~threshold t))))
  in
  let counters = Tile_stats.counters () in
  let evictions = List.assoc "tile_evictions" counters in
  let tile_loads = List.assoc "tile_loads" counters in
  let tile_stores = List.assoc "tile_stores" counters in
  let agree_bounded =
    Svector.equal bounded_ranks expect && bounded_iters = base_iters
  in
  Printf.printf
    "pagerank n=%d: in-memory %.3fms, tiled-unbounded %.3fms, tiled under \
     %dKiB budget %.3fms (%d evictions, %d loads, %d stores) — identical: \
     %s/%s\n"
    n inmem_ms unbounded_ms (budget / 1024) bounded_ms evictions tile_loads
    tile_stores
    (if agree_unbounded then "yes" else "NO")
    (if agree_bounded then "yes" else "NO");
  (* checkpointed run: same ranks, overhead visible, saves counted *)
  Tile_stats.reset ();
  let ckpt_ranks, ckpt_ms =
    with_tiled (fun t ->
        let r, _ = Oocore.Stream.pagerank ~threshold ~ckpt:"bench-pr" ~every:4 t in
        (r, ms (best_of (fun () -> Oocore.Stream.pagerank ~threshold ~ckpt:"bench-pr" ~every:4 t))))
  in
  let ckpt_saves = List.assoc "ckpt_saves" (Tile_stats.counters ()) in
  let agree_ckpt = Svector.equal ckpt_ranks expect in
  Printf.printf
    "checkpointed pagerank: %.3fms (plain tiled %.3fms, %d checkpoint \
     saves) — identical: %s\n"
    ckpt_ms unbounded_ms ckpt_saves
    (if agree_ckpt then "yes" else "NO");
  (* delta layer: converged prev + small batch, warm restart vs cold *)
  let prev = Array.make n 0.0 in
  Svector.iter (fun i v -> prev.(i) <- v) expect;
  let batch = [ (1, n - 2, Some 1.0); (n - 2, 1, Some 1.0) ] in
  let warm_iters, cold_iters, delta_ms, full_ms =
    with_tiled ~budget (fun t ->
        let ((_, warm_iters), _), delta_dt =
          time_once (fun () -> Oocore.Delta.pagerank_after ~threshold ~prev ~batch t)
        in
        let (_, cold_iters), full_dt =
          time_once (fun () -> Oocore.Stream.pagerank ~threshold t)
        in
        (warm_iters, cold_iters, ms delta_dt, ms full_dt))
  in
  let iter_speedup = float_of_int cold_iters /. float_of_int warm_iters in
  let delta_ok = warm_iters <= cold_iters in
  Printf.printf
    "delta restart after 1-edge batch: %d iters warm vs %d cold \
     (iteration speedup %.2fx, %.3fms vs %.3fms): %s\n"
    warm_iters cold_iters iter_speedup delta_ms full_ms
    (if delta_ok then "ok" else "SLOWER");
  let oc = open_out "BENCH_oocore.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"experiment\": \"oocore\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"n\": %d,\n" n;
  out "  \"tile\": \"%dx%d\",\n" (fst tile) (snd tile);
  out "  \"budget_bytes\": %d,\n" budget;
  out "  \"base_iters\": %d,\n" base_iters;
  out "  \"inmem_ms\": %.3f,\n" inmem_ms;
  out "  \"tiled_unbounded_ms\": %.3f,\n" unbounded_ms;
  out "  \"tiled_bounded_ms\": %.3f,\n" bounded_ms;
  out "  \"agree_unbounded\": %b,\n" agree_unbounded;
  out "  \"agree_bounded\": %b,\n" agree_bounded;
  out "  \"evictions\": %d,\n" evictions;
  out "  \"evictions_nonzero\": %b,\n" (evictions > 0);
  out "  \"tile_loads\": %d,\n" tile_loads;
  out "  \"tile_stores\": %d,\n" tile_stores;
  out
    "  \"ckpt\": { \"ms\": %.3f, \"saves\": %d, \"agree\": %b },\n"
    ckpt_ms ckpt_saves agree_ckpt;
  out
    "  \"delta\": { \"warm_iters\": %d, \"cold_iters\": %d, \
     \"iter_speedup\": %.3f, \"warm_not_slower\": %b, \"delta_ms\": %.3f, \
     \"full_ms\": %.3f }\n"
    warm_iters cold_iters iter_speedup delta_ok delta_ms full_ms;
  out "}\n";
  close_out oc;
  print_endline "wrote BENCH_oocore.json";
  print_newline ()

(* ---------------------------------------------------------------- *)

let default_sizes max_n =
  let rec build n acc =
    if n > max_n then List.rev acc else build (2 * n) (n :: acc)
  in
  build 128 []

let () =
  let args = Array.to_list Sys.argv in
  let has name = List.mem name args in
  let max_n =
    let rec find = function
      | "--max" :: v :: _ -> int_of_string v
      | _ :: rest -> find rest
      | [] -> 1024
    in
    find args
  in
  let all =
    not
      (List.exists
         (fun a ->
           List.mem a
             [ "fig10"; "fig11"; "compile"; "table1"; "ablation"; "exec";
               "formats"; "parallel"; "warmup"; "faults"; "serve"; "cost";
               "oocore"; "workloads"; "micro" ])
         args)
  in
  Printf.printf "ogb benchmark harness (JIT: %s)\n\n"
    (match Jit.Dispatch.effective_backend () with
    | `Native -> "native"
    | `Closure -> "closure");
  if all || has "table1" then table1 ();
  if all || has "fig10" then fig10 (default_sizes max_n);
  if all || has "fig11" then fig11 (default_sizes (2 * max_n));
  if all || has "compile" then compile_experiment ();
  if all || has "ablation" then ablation ();
  if all || has "exec" then exec_bench ();
  if all || has "formats" then
    formats_bench
      (let s = default_sizes max_n in
       if List.length s > 3 then
         (* keep the artifact at three sizes: the last three *)
         List.filteri (fun i _ -> i >= List.length s - 3) s
       else s);
  if all || has "parallel" then parallel_bench max_n;
  if all || has "warmup" then warmup_bench ();
  if all || has "faults" then faults_bench ();
  if all || has "serve" then serve_bench ();
  if all || has "cost" then cost_bench max_n;
  if all || has "oocore" then oocore_bench ();
  if all || has "workloads" then
    workloads_bench
      ~only:
        (let rec find = function
           | "--only" :: v :: _ -> Some v
           | _ :: rest -> find rest
           | [] -> None
         in
         find args)
      ();
  if all || has "micro" then micro ()
