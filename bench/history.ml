(* Fold timestamped bench/results artifacts into the cumulative
   BENCH_history.json trajectory and optionally gate on trend decay.

     dune exec bench/history.exe --
       [--results-dir bench/results] [--history FILE]
       [--check-decay] [--print]

   Merge semantics: runs already present in the history (same workload
   and timestamp) are kept as-is; fresh artifacts append.  CI restores
   the previous BENCH_history.json from its cache, runs this after the
   bench matrix, and fails the build when [--check-decay] finds a
   workload whose headline speedup fell strictly on each of the last
   three recorded runs — one slow run is noise, three in a row is a
   trend someone introduced. *)

let () =
  let args = Array.to_list Sys.argv in
  let rec opt name = function
    | a :: v :: _ when a = name -> Some v
    | _ :: rest -> opt name rest
    | [] -> None
  in
  let results_dir =
    Option.value ~default:"bench/results" (opt "--results-dir" args)
  in
  let history_path =
    Option.value ~default:Bench_workloads.History_core.history_file
      (opt "--history" args)
  in
  let check_decay = List.mem "--check-decay" args in
  let print = List.mem "--print" args in
  let prior = Bench_workloads.History_core.load_history history_path in
  let history, fresh =
    Bench_workloads.History_core.fold_results ~results_dir prior
  in
  Bench_workloads.History_core.save history_path history;
  Printf.printf "history: %d fresh run(s) folded into %s\n" fresh history_path;
  if print then Bench_workloads.History_core.print_summary history;
  if check_decay then begin
    match Bench_workloads.History_core.decaying history with
    | [] ->
      Printf.printf
        "decay check: no workload decayed monotonically over the last %d \
         runs\n"
        Bench_workloads.History_core.decay_window
    | offenders ->
      List.iter
        (fun (wl, recent) ->
          Printf.printf
            "FAIL %s: speedup decayed monotonically over the last %d runs: %s\n"
            wl
            Bench_workloads.History_core.decay_window
            (String.concat " -> "
               (List.map
                  (fun (ts, v) -> Printf.sprintf "%.3f (%s)" v ts)
                  recent)))
        offenders;
      exit 1
  end
