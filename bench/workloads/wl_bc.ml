(* Workload: single-source betweenness centrality (forward BFS
   wavefronts plus backward dependency accumulation). *)

let name = "betweenness"

let run () =
  let n = Bench_core.size ~default:256 in
  let adj = Graphs.Convert.bool_adjacency (Bench_core.er_graph ~seed:2025 n) in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Bc.dsl cont ~src:0 in
  let nonblocking () = Algorithms.Bc.nonblocking cont ~src:0 in
  let agree = Ogb.Container.equal (blocking ()) (nonblocking ()) in
  let blocking_ms = Bench_core.(ms (best_of blocking)) in
  let nonblocking_ms = Bench_core.(ms (best_of nonblocking)) in
  Bench_core.emit ~workload:name ~n ~blocking_ms ~nonblocking_ms ~agree ()
