(* Workload: BFS levels (Boolean Or/And semiring frontier expansion). *)

let name = "bfs"

let run () =
  let n = Bench_core.size ~default:512 in
  let adj = Graphs.Convert.bool_adjacency (Bench_core.er_graph ~seed:2018 n) in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Bfs.dsl cont ~src:0 in
  let nonblocking () =
    Exec.with_mode Exec.Nonblocking (fun () -> Algorithms.Bfs.dsl cont ~src:0)
  in
  let agree = Ogb.Container.equal (blocking ()) (nonblocking ()) in
  let blocking_ms = Bench_core.(ms (best_of blocking)) in
  let nonblocking_ms = Bench_core.(ms (best_of nonblocking)) in
  Bench_core.emit ~workload:name ~n ~blocking_ms ~nonblocking_ms ~agree ()
