(* Workload: PageRank (Plus/Times iteration with convergence check). *)

let name = "pagerank"

let run () =
  let n = Bench_core.size ~default:512 in
  let adj =
    Graphs.Convert.matrix_of_edges Gbtl.Dtype.FP64 (Bench_core.er_graph ~seed:2019 n)
  in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Pagerank.dsl cont in
  let nonblocking () = Algorithms.Pagerank.nonblocking cont in
  let rb, ib = blocking () in
  let rn, in_ = nonblocking () in
  let agree = Ogb.Container.equal rb rn && ib = in_ in
  let blocking_ms = Bench_core.(ms (best_of (fun () -> ignore (blocking ())))) in
  let nonblocking_ms =
    Bench_core.(ms (best_of (fun () -> ignore (nonblocking ()))))
  in
  Bench_core.emit ~workload:name ~n
    ~extra:[ ("iterations", Bench_core.Int ib) ]
    ~blocking_ms ~nonblocking_ms ~agree ()
