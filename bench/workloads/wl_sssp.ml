(* Workload: single-source shortest paths (MinPlus semiring). *)

let name = "sssp"

let run () =
  let n = Bench_core.size ~default:512 in
  let rng = Graphs.Rng.create ~seed:2020 in
  let g =
    Graphs.Generators.erdos_renyi_gnm rng ~nvertices:n ~nedges:(6 * n)
      ~weight:(fun r -> 1.0 +. float_of_int (Graphs.Rng.int r 9))
  in
  let adj = Graphs.Convert.matrix_of_edges Gbtl.Dtype.FP64 g in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Sssp.dsl cont ~src:0 in
  let nonblocking () =
    Exec.with_mode Exec.Nonblocking (fun () -> Algorithms.Sssp.dsl cont ~src:0)
  in
  let agree = Ogb.Container.equal (blocking ()) (nonblocking ()) in
  let blocking_ms = Bench_core.(ms (best_of blocking)) in
  let nonblocking_ms = Bench_core.(ms (best_of nonblocking)) in
  Bench_core.emit ~workload:name ~n ~blocking_ms ~nonblocking_ms ~agree ()
