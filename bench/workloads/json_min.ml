(* Dependency-free JSON reader for the bench artifacts (the writer
   lives in {!Bench_core}).  Same subset as the check_regress gate:
   objects, arrays, strings, numbers, booleans, null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'u' -> Buffer.add_string b "\\u"
        | Some c -> Buffer.add_char b c
        | None -> fail "dangling escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  v

let parse_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse data

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_num = function Num f -> Some f | Bool b -> Some (if b then 1.0 else 0.0) | _ -> None
let to_str = function Str s -> Some s | _ -> None
