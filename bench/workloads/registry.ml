(* The eight tier-1 workload experiments, in registry order.  The CI
   bench matrix fans one job out per name; [run_all] is the local
   `bench workloads` entry point. *)

let all : (string * (unit -> unit)) list =
  [ (Wl_bfs.name, Wl_bfs.run);
    (Wl_pagerank.name, Wl_pagerank.run);
    (Wl_sssp.name, Wl_sssp.run);
    (Wl_triangle.name, Wl_triangle.run);
    (Wl_cc.name, Wl_cc.run);
    (Wl_labelprop.name, Wl_labelprop.run);
    (Wl_ktruss.name, Wl_ktruss.run);
    (Wl_bc.name, Wl_bc.run) ]

let names = List.map fst all

let run_one name =
  match List.assoc_opt name all with
  | Some run -> run ()
  | None ->
    Printf.eprintf "unknown workload %S (expected one of: %s)\n" name
      (String.concat ", " names);
    exit 2

let run_all () = List.iter (fun (_, run) -> run ()) all
