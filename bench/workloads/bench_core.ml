(* Shared core for the per-workload benchmark experiments: each module
   in bench/workloads times one tier-1 workload (blocking evaluator vs
   nonblocking engine), verifies the two results agree, and emits a
   JSON artifact under bench/results/ — once under a timestamped name
   (the raw material for BENCH_history.json) and once as the stable
   <name>-latest.json alias the check_regress gate compares against its
   committed baseline.

   Reps and problem size are environment-tunable so the same binaries
   serve CI smoke runs and real measurement sessions:

     OGB_BENCH_REPS   best-of repetitions per timing (default 3)
     OGB_BENCH_N      vertex count override (default per workload)

   Every artifact records the runner's core count: speedup gates are
   meaningless on a single-core box, and check_regress uses the
   recorded value to skip them loudly instead of passing silently. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some k -> k
    | None -> default)
  | None -> default

let reps () = max 1 (env_int "OGB_BENCH_REPS" 3)
let size ~default = max 16 (env_int "OGB_BENCH_N" default)
let cores () = Domain.recommended_domain_count ()

(* ---- timing (the harness-wide best-of-reps methodology) ---- *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let best_of f =
  ignore (f ());
  Gc.full_major ();
  let best = ref infinity in
  for _ = 1 to reps () do
    let _, dt = time_once f in
    if dt < !best then best := dt
  done;
  !best

let ms dt = 1000.0 *. dt

(* ---- minimal JSON writer ---- *)

type json =
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let rec render buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Num f ->
    (* finite fixed-point keeps artifacts diff-friendly; metrics are
       milliseconds and ratios, where 3 decimals is plenty *)
    Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | Str s ->
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (Printf.sprintf "  %S: " k);
        render buf v)
      kvs;
    Buffer.add_string buf "\n}"

let to_string json =
  let buf = Buffer.create 256 in
  render buf json;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- result files ---- *)

let results_dir = "bench/results"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let timestamp () =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* Write the artifact twice: timestamped (appended to history) and as
   the stable -latest alias (gated against the committed baseline). *)
let write_results ~experiment json =
  mkdir_p results_dir;
  let data = to_string json in
  let stamped =
    Filename.concat results_dir
      (Printf.sprintf "%s-%s.json" experiment (timestamp ()))
  in
  let latest =
    Filename.concat results_dir (Printf.sprintf "%s-latest.json" experiment)
  in
  write_file stamped data;
  write_file latest data;
  Printf.printf "wrote %s (+ %s)\n%!" stamped latest

(* ---- the standard workload row ---- *)

(* Blocking-vs-nonblocking is the headline comparison every workload
   shares; [extra] carries workload-specific metrics (iteration counts,
   community counts, ...). *)
let emit ~workload ~n ?(extra = []) ~blocking_ms ~nonblocking_ms ~agree () =
  let speedup = if nonblocking_ms > 0.0 then blocking_ms /. nonblocking_ms else 1.0 in
  write_results ~experiment:workload
    (Obj
       ([ ("experiment", Str workload);
          ("timestamp", Str (timestamp ()));
          ("n", Int n);
          ("reps", Int (reps ()));
          ("cores", Int (cores ()));
          ("blocking_ms", Num blocking_ms);
          ("nonblocking_ms", Num nonblocking_ms);
          ("speedup", Num speedup);
          ("agree", Bool agree) ]
       @ extra));
  Printf.printf
    "  %-12s n=%-6d blocking %8.3f ms  nonblocking %8.3f ms  speedup %5.2fx  agree %b\n%!"
    workload n blocking_ms nonblocking_ms speedup agree

(* Paper-scale ER graph (|E| = |V|^1.5) fixtures shared by the
   workload modules. *)
let er_graph ~seed n =
  Graphs.Generators.erdos_renyi_paper (Graphs.Rng.create ~seed) ~nvertices:n

let sym_graph ~seed n =
  let rng = Graphs.Rng.create ~seed in
  let g =
    Graphs.Generators.erdos_renyi_gnm rng ~nvertices:n ~nedges:(4 * n)
  in
  Graphs.Convert.bool_adjacency (Graphs.Edge_list.symmetrize g)
