(* Trend tracking over the per-workload bench artifacts: fold every
   timestamped bench/results/<workload>-<ts>.json into one cumulative
   BENCH_history.json holding per-workload, per-metric time series.

   The file is merged, not rebuilt: CI restores the previous history
   from its cache, this module appends the runs it has not seen (keyed
   on workload + timestamp), and the decay check then looks at the
   resulting series — so a trend survives even though each CI job only
   ever sees its own fresh artifacts.

   Decay gate: a single slow run is noise, but a headline speedup that
   has dropped strictly on each of the last [window] runs is a trend;
   [check_decay] fails on such monotonic decay per workload. *)

let history_file = "BENCH_history.json"
let decay_window = 3

(* workload -> metric -> (timestamp, value) series, timestamp-sorted *)
type series = (string * (string * (string * float) list) list) list

let metric_of_leaf (k, v) =
  match Json_min.to_num v with
  | Some f when k <> "cores" && k <> "reps" -> Some (k, f)
  | _ -> None

(* ---- loading ---- *)

let load_history path : series =
  if not (Sys.file_exists path) then []
  else
    match Json_min.parse_file path with
    | Json_min.Obj kvs -> (
      match List.assoc_opt "workloads" (List.map (fun x -> x) kvs) with
      | Some (Json_min.Obj workloads) ->
        List.map
          (fun (wl, metrics) ->
            let metrics =
              match metrics with
              | Json_min.Obj ms ->
                List.map
                  (fun (metric, points) ->
                    let pts =
                      match points with
                      | Json_min.Arr ps ->
                        List.filter_map
                          (fun p ->
                            match
                              ( Option.bind (Json_min.member "ts" p)
                                  Json_min.to_str,
                                Option.bind (Json_min.member "value" p)
                                  Json_min.to_num )
                            with
                            | Some ts, Some v -> Some (ts, v)
                            | _ -> None)
                          ps
                      | _ -> []
                    in
                    (metric, pts))
                  ms
              | _ -> []
            in
            (wl, metrics))
          workloads
      | _ -> [])
    | _ -> []
    | exception Json_min.Parse_error _ -> []

(* A timestamped result artifact: <workload>-YYYYmmdd-HHMMSS.json.
   The -latest aliases are duplicates of the newest stamped file and
   are skipped. *)
let stamped_artifact fname =
  if not (Filename.check_suffix fname ".json") then None
  else
    let base = Filename.chop_suffix fname ".json" in
    if Filename.check_suffix base "-latest" then None
    else
      (* split at the -YYYYmmdd-HHMMSS suffix: two dash-separated
         numeric groups of 8 and 6 digits *)
      let l = String.length base in
      if l < 16 then None
      else
        let ts = String.sub base (l - 15) 15 in
        let numeric s =
          String.for_all (function '0' .. '9' -> true | _ -> false) s
        in
        if
          ts.[8] = '-'
          && numeric (String.sub ts 0 8)
          && numeric (String.sub ts 9 6)
          && base.[l - 16] = '-'
        then Some (String.sub base 0 (l - 16), ts)
        else None

let scan_results dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun fname ->
           match stamped_artifact fname with
           | Some (wl, ts) -> Some (wl, ts, Filename.concat dir fname)
           | None -> None)

(* ---- merging ---- *)

let add_point history ~workload ~metric ~ts ~value =
  let upsert_metric metrics =
    let pts = Option.value ~default:[] (List.assoc_opt metric metrics) in
    if List.mem_assoc ts pts then metrics
    else
      (metric, List.sort compare ((ts, value) :: pts))
      :: List.remove_assoc metric metrics
  in
  let metrics = Option.value ~default:[] (List.assoc_opt workload history) in
  (workload, upsert_metric metrics) :: List.remove_assoc workload history

let fold_results ~results_dir history : series * int =
  let fresh = ref 0 in
  let history =
    List.fold_left
      (fun hist (workload, ts, path) ->
        match Json_min.parse_file path with
        | Json_min.Obj kvs ->
          let seen =
            match List.assoc_opt workload hist with
            | Some metrics -> (
              match List.assoc_opt "speedup" metrics with
              | Some pts -> List.mem_assoc ts pts
              | None -> false)
            | None -> false
          in
          if seen then hist
          else begin
            incr fresh;
            List.fold_left
              (fun hist leaf ->
                match metric_of_leaf leaf with
                | Some (metric, value) ->
                  add_point hist ~workload ~metric ~ts ~value
                | None -> hist)
              hist kvs
          end
        | _ | (exception Json_min.Parse_error _) ->
          Printf.eprintf "history: skipping unreadable %s\n" path;
          hist)
      history (scan_results results_dir)
  in
  (List.sort compare history, !fresh)

(* ---- writing ---- *)

let to_json (history : series) =
  let open Bench_core in
  let runs =
    List.fold_left
      (fun acc (_, metrics) ->
        match List.assoc_opt "speedup" metrics with
        | Some pts -> max acc (List.length pts)
        | None -> acc)
      0 history
  in
  Obj
    [ ("runs", Int runs);
      ( "workloads",
        Obj
          (List.map
             (fun (wl, metrics) ->
               ( wl,
                 Obj
                   (List.map
                      (fun (metric, pts) ->
                        ( metric,
                          Arr
                            (List.map
                               (fun (ts, v) ->
                                 Obj [ ("ts", Str ts); ("value", Num v) ])
                               pts) ))
                      (List.sort compare metrics)) ))
             history) ) ]

let save path history =
  Bench_core.write_file path (Bench_core.to_string (to_json history))

(* ---- the decay gate ---- *)

(* Strictly-decreasing headline speedup over the last [decay_window]
   runs: every step down, no recovery.  Returns the offending
   workloads with their recent series. *)
let decaying (history : series) =
  List.filter_map
    (fun (wl, metrics) ->
      match List.assoc_opt "speedup" metrics with
      | Some pts when List.length pts >= decay_window ->
        let recent =
          let skip = List.length pts - decay_window in
          List.filteri (fun i _ -> i >= skip) pts
        in
        let values = List.map snd recent in
        let rec strictly_down = function
          | a :: (b :: _ as rest) -> b < a && strictly_down rest
          | _ -> true
        in
        if strictly_down values then Some (wl, recent) else None
      | _ -> None)
    history

(* ---- reporting (shared with `ogb analyze`) ---- *)

let print_summary ?(out = stdout) (history : series) =
  if history = [] then
    Printf.fprintf out "bench history: no runs recorded yet\n"
  else begin
    Printf.fprintf out "bench history (%s):\n" history_file;
    List.iter
      (fun (wl, metrics) ->
        match List.assoc_opt "speedup" metrics with
        | Some pts ->
          let recent =
            let l = List.length pts in
            List.filteri (fun i _ -> i >= l - 5) pts
          in
          Printf.fprintf out "  %-12s %d run(s), speedup trail: %s\n" wl
            (List.length pts)
            (String.concat " -> "
               (List.map (fun (_, v) -> Printf.sprintf "%.2fx" v) recent))
        | None -> Printf.fprintf out "  %-12s (no speedup series)\n" wl)
      history
  end
