(* Workload: label propagation (argmax-of-neighbour-labels encoding). *)

let name = "labelprop"

let run () =
  let n = Bench_core.size ~default:256 in
  let adj = Bench_core.sym_graph ~seed:2023 n in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Labelprop.dsl cont in
  let nonblocking () = Algorithms.Labelprop.nonblocking cont in
  let lb, rb = blocking () in
  let ln, rn = nonblocking () in
  let agree = Ogb.Container.equal lb ln && rb = rn in
  let blocking_ms = Bench_core.(ms (best_of (fun () -> ignore (blocking ())))) in
  let nonblocking_ms =
    Bench_core.(ms (best_of (fun () -> ignore (nonblocking ()))))
  in
  Bench_core.emit ~workload:name ~n
    ~extra:[ ("rounds", Bench_core.Int rb) ]
    ~blocking_ms ~nonblocking_ms ~agree ()
