(* Workload: triangle counting (masked mxm over the lower triangle). *)

let name = "triangle"

let run () =
  let n = Bench_core.size ~default:512 in
  let adj = Bench_core.sym_graph ~seed:2021 n in
  let lower = Algorithms.Triangle.of_undirected adj in
  let cont = Ogb.Container.of_smatrix lower in
  let blocking () = Algorithms.Triangle.dsl cont in
  let nonblocking () = Algorithms.Triangle.nonblocking cont in
  let tb = blocking () and tn = nonblocking () in
  let agree = tb = tn in
  let blocking_ms = Bench_core.(ms (best_of (fun () -> ignore (blocking ())))) in
  let nonblocking_ms =
    Bench_core.(ms (best_of (fun () -> ignore (nonblocking ()))))
  in
  Bench_core.emit ~workload:name ~n
    ~extra:[ ("triangles", Bench_core.Num tb) ]
    ~blocking_ms ~nonblocking_ms ~agree ()
