(* Workload: 3-truss (iterated triangle-support filtering). *)

let name = "ktruss"

let run () =
  let n = Bench_core.size ~default:256 in
  let adj = Bench_core.sym_graph ~seed:2024 n in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Ktruss.dsl ~k:3 cont in
  let nonblocking () = Algorithms.Ktruss.nonblocking ~k:3 cont in
  let eb = blocking () in
  let agree = Ogb.Container.equal eb (nonblocking ()) in
  let blocking_ms = Bench_core.(ms (best_of (fun () -> ignore (blocking ())))) in
  let nonblocking_ms =
    Bench_core.(ms (best_of (fun () -> ignore (nonblocking ()))))
  in
  Bench_core.emit ~workload:name ~n
    ~extra:[ ("truss_edges", Bench_core.Int (Ogb.Container.nvals eb / 2)) ]
    ~blocking_ms ~nonblocking_ms ~agree ()
