(* Workload: connected components (MinSelect2nd label pulls). *)

let name = "cc"

let run () =
  let n = Bench_core.size ~default:512 in
  let adj = Bench_core.sym_graph ~seed:2022 n in
  let cont = Ogb.Container.of_smatrix adj in
  let blocking () = Algorithms.Connected_components.dsl cont in
  let nonblocking () =
    Exec.with_mode Exec.Nonblocking (fun () ->
        Algorithms.Connected_components.dsl cont)
  in
  let agree = Ogb.Container.equal (blocking ()) (nonblocking ()) in
  let blocking_ms = Bench_core.(ms (best_of blocking)) in
  let nonblocking_ms = Bench_core.(ms (best_of nonblocking)) in
  Bench_core.emit ~workload:name ~n ~blocking_ms ~nonblocking_ms ~agree ()
