(* Perf-regression gate over the BENCH_*.json artifacts.

     dune exec bench/check_regress.exe -- BENCH_parallel.json ...
       [--baseline-dir bench/baselines] [--tolerance 0.15]
       [--absolute] [--update-baselines]

   Each fresh artifact is compared leaf-by-leaf against the committed
   baseline of the same name.  Gating rules:

   - boolean leaves (correctness flags like [agree]) must not regress
     from [true] to [false];
   - relative metrics (any path containing "speedup") must stay within
     [tolerance] of the baseline: fresh >= base * (1 - tolerance).
     Ratios are machine-portable, so these gate by default;
   - absolute times (paths containing "ms") gate only under
     [--absolute] — wall-clock shifts with the runner — with a 1 ms
     slack floor so micro-times don't flake: fresh <= max(base * (1 +
     tolerance), base + 1.0);
   - every other numeric leaf (sizes, counters, core counts) is
     context, not a metric, and is ignored;
   - a metric leaf (boolean, or a "speedup"/"ms" path) present in the
     fresh artifact but absent from the baseline is a failure: a new
     metric must ship with its reference, or the gate would silently
     never cover it.  [--allow-missing] is the explicit escape hatch
     for the run that introduces the metric;
   - speedup gates are skipped — loudly, not silently passed — when
     the fresh artifact records fewer than 2 cores: parallel-vs-serial
     ratios on a single-core runner measure scheduling noise.

   [--update-baselines] rewrites the baselines from the fresh artifacts
   instead of checking (commit the result).  A missing baseline is an
   error without it: the gate must never silently pass because nobody
   committed a reference. *)

(* ---- minimal JSON reader (objects/arrays/strings/numbers/bools) ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'u' ->
          (* keep the escape verbatim; paths never contain \u *)
          Buffer.add_string b "\\u"
        | Some c -> Buffer.add_char b c
        | None -> fail "dangling escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- flatten to (dotted path, leaf) pairs ---- *)

type leaf = L_num of float | L_bool of bool

let flatten json =
  let acc = ref [] in
  let rec go path = function
    | Null | Str _ -> ()
    | Bool b -> acc := (path, L_bool b) :: !acc
    | Num f -> acc := (path, L_num f) :: !acc
    | Arr xs ->
      List.iteri (fun i x -> go (Printf.sprintf "%s.%d" path i) x) xs
    | Obj kvs ->
      List.iter
        (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
        kvs
  in
  go "" json;
  List.rev !acc

let contains_sub hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* ---- the gate ---- *)

type verdict = Pass | Fail of string

let check_leaf ~tolerance ~absolute ~gate_speedups path base fresh =
  match (base, fresh) with
  | L_bool true, L_bool false ->
    Fail (Printf.sprintf "%s: regressed true -> false" path)
  | L_bool _, L_bool _ -> Pass
  | L_num b, L_num f when gate_speedups && contains_sub path "speedup" ->
    let floor_ = b *. (1.0 -. tolerance) in
    if f >= floor_ then Pass
    else
      Fail
        (Printf.sprintf "%s: %.3f below baseline %.3f (tolerance %.0f%%)"
           path f b (100.0 *. tolerance))
  | L_num b, L_num f when absolute && contains_sub path "ms" ->
    let ceil_ = Float.max (b *. (1.0 +. tolerance)) (b +. 1.0) in
    if f <= ceil_ then Pass
    else
      Fail
        (Printf.sprintf "%s: %.3f ms above baseline %.3f ms (tolerance %.0f%%)"
           path f b (100.0 *. tolerance))
  | _ -> Pass

(* A leaf the gate would actually compare: correctness flags and the
   speedup/ms metric paths.  Context numerics (sizes, counters, core
   counts) are exempt from baseline-coverage checking. *)
let is_metric path = function
  | L_bool _ -> true
  | L_num _ -> contains_sub path "speedup" || contains_sub path "ms"

(* The "cores" leaf every artifact row records (satellite of the
   workload harness): below 2 cores a parallel-vs-serial ratio is
   scheduling noise, so speedup gates are skipped with a loud notice. *)
let recorded_cores fresh =
  List.fold_left
    (fun acc (path, leaf) ->
      match leaf with
      | L_num c when path = "cores" || Filename.check_suffix path ".cores" ->
        Some (match acc with Some a -> Float.min a c | None -> c)
      | _ -> acc)
    None fresh

let check_artifact ~tolerance ~absolute ~allow_missing ~baseline_path
    ~fresh_path =
  let base = flatten (parse_json (read_file baseline_path)) in
  let fresh = flatten (parse_json (read_file fresh_path)) in
  let gate_speedups =
    match recorded_cores fresh with
    | Some c when c < 2.0 ->
      Printf.printf
        "NOTICE %s: runner records %.0f core(s); speedup gates skipped \
         (correctness flags and absolute gates still active)\n"
        fresh_path c;
      false
    | _ -> true
  in
  let failures = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (path, b) ->
      match List.assoc_opt path fresh with
      | None ->
        failures :=
          Printf.sprintf "%s: present in baseline, missing in fresh run" path
          :: !failures
      | Some f -> (
        incr checked;
        match check_leaf ~tolerance ~absolute ~gate_speedups path b f with
        | Pass -> ()
        | Fail msg -> failures := msg :: !failures))
    base;
  (* the reverse direction: a gated metric with no committed reference
     would otherwise never be compared, silently, forever *)
  List.iter
    (fun (path, f) ->
      if is_metric path f && not (List.mem_assoc path base) then
        if allow_missing then
          Printf.printf
            "NOTICE %s: metric %s has no baseline leaf (allowed by \
             --allow-missing; refresh the baseline to start gating it)\n"
            fresh_path path
        else
          failures :=
            Printf.sprintf
              "%s: metric present in fresh run but missing from baseline \
               (refresh with --update-baselines, or pass --allow-missing)"
              path
            :: !failures)
    fresh;
  (!checked, List.rev !failures)

let () =
  let args = Array.to_list Sys.argv in
  let rec opt name = function
    | a :: v :: _ when a = name -> Some v
    | _ :: rest -> opt name rest
    | [] -> None
  in
  let tolerance =
    match opt "--tolerance" args with
    | Some v -> float_of_string v
    | None -> 0.15
  in
  let baseline_dir =
    Option.value ~default:"bench/baselines" (opt "--baseline-dir" args)
  in
  let absolute = List.mem "--absolute" args in
  let allow_missing = List.mem "--allow-missing" args in
  let update = List.mem "--update-baselines" args in
  let files =
    List.filter
      (fun a ->
        Filename.check_suffix a ".json"
        && not (String.length a > 1 && a.[0] = '-'))
      (List.tl args)
  in
  if files = [] then begin
    prerr_endline
      "usage: check_regress [--baseline-dir DIR] [--tolerance F] \
       [--absolute] [--allow-missing] [--update-baselines] BENCH_x.json ...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun fresh_path ->
      let baseline_path =
        Filename.concat baseline_dir (Filename.basename fresh_path)
      in
      if update then begin
        (* refresh the committed reference from this run *)
        let data = read_file fresh_path in
        ignore (parse_json data);
        let oc = open_out_bin baseline_path in
        output_string oc data;
        close_out oc;
        Printf.printf "updated %s\n" baseline_path
      end
      else if not (Sys.file_exists baseline_path) then begin
        Printf.printf
          "FAIL %s: no baseline at %s (run with --update-baselines and \
           commit it)\n"
          fresh_path baseline_path;
        failed := true
      end
      else begin
        match
          check_artifact ~tolerance ~absolute ~allow_missing ~baseline_path
            ~fresh_path
        with
        | checked, [] ->
          Printf.printf "ok   %s: %d leaves within %.0f%% of %s\n" fresh_path
            checked (100.0 *. tolerance) baseline_path
        | _, failures ->
          Printf.printf "FAIL %s vs %s:\n" fresh_path baseline_path;
          List.iter (fun m -> Printf.printf "  - %s\n" m) failures;
          failed := true
        | exception Parse_error msg ->
          Printf.printf "FAIL %s: %s\n" fresh_path msg;
          failed := true
      end)
    files;
  if !failed then exit 1
