(** [ogb serve] — the multi-tenant graph-service daemon.

    One process holds the expensive state all clients want to share:
    loaded graphs (immutable, in {!Registry}) and the signature→kernel
    JIT cache, pre-warmed at startup over every tier-1 signature so
    steady-state requests compile nothing.  Each client connection is a
    {!Session} with an isolated operator-context stack; compute comes
    from the shared domain pool under a per-session budget
    ({!Parallel.Pool.with_budget_cap}).

    Wire protocol: line-delimited JSON objects over a Unix socket
    (optionally TCP), one request per line, one response per line.
    Requests carry an ["op"] and an optional ["id"] echoed back;
    responses carry ["status"]: ["ok"], ["error"] or ["shed"] (the
    admission queue was full — retry later).

    The request path is: reader thread (one per connection, pipelined)
    → admission queue (bounded; overflow sheds) → worker domain →
    {!handle} → response.  Same-signature [mxv]/[vxm] requests landing
    together coalesce in the {!Batcher}.

    Failure containment: [serve.accept.exn] costs one connection,
    [serve.session.exn] one session, [serve.batch.partial] one batch
    member — the daemon survives all three and reports them through
    [health]. *)

type config = {
  sock_path : string;  (** Unix-domain socket path *)
  tcp_addr : (string * int) option;  (** extra TCP listener *)
  workers : int;  (** worker domains draining the admission queue *)
  queue_cap : int;  (** admission-queue bound; overflow sheds *)
  session_budget : int;  (** pool-domain cap per session request *)
  batch_window : float;  (** batch-coalescing window, seconds *)
  warm_n : int;  (** vertex count the startup warm-up assumes *)
  warm : bool;  (** run the warm-up at startup and on [load] *)
}

val default_config : unit -> config
(** From the [OGB_SERVE_*] environment: [OGB_SERVE_SOCK],
    [OGB_SERVE_ADDR] (host:port), [OGB_SERVE_WORKERS] (4),
    [OGB_SERVE_QUEUE] (16), [OGB_SERVE_SESSION_DOMAINS] (whole pool),
    [OGB_SERVE_BATCH_WINDOW] (seconds, 0.001), [OGB_SERVE_WARM_N]
    (256), [OGB_SERVE_NO_WARM]. *)

(** {2 In-process core}

    The request handler is callable without any socket, which is how
    the test suite drives multi-session scenarios from concurrent
    domains and how the bench measures steady-state request latency. *)

type state

val create_state : config -> state
(** Builds the registry/batcher/queue and, unless [warm] is off, warms
    the JIT over every tier-1 kernel signature at [warm_n]. *)

val handle : state -> Session.t -> Json.t -> Json.t
(** Execute one request under the session's lock, context stack and
    domain budget; never raises — failures (including the
    [serve.session.exn] injection) become [status: error] responses.
    A response carrying [fatal: true] means the session must be torn
    down (its transport does that; in-process callers just stop using
    the session). *)

val serve_counters : state -> (string * int) list
(** [sessions], [active], [requests], [errors], [shed],
    [accept_failures], [session_kills], [queue_depth] plus the batcher
    counters. *)

val registry : state -> Registry.t
val batcher : state -> Batcher.t
val shutdown_requested : state -> bool

(** {2 The daemon} *)

type running

val start : config -> (running, string) result
(** Bind/listen, spawn the accept domain, worker domains and reader
    threads; returns once the socket is accepting.  [Error] if binding
    fails. *)

val state_of : running -> state

val stop : running -> unit
(** Request shutdown (idempotent, async-signal-safe enough to call
    from a SIGTERM handler: it writes one byte to a self-pipe). *)

val wait : running -> unit
(** Block until the daemon has fully stopped: accept loop exited,
    queue drained/closed, workers joined, every connection shut down
    and the socket file removed. *)
