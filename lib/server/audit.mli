(** Daemon shared-state audit: per-handler manifest of every piece of
    state that outlives one request (with its isolation class), plus
    executable probes for the claims the isolation argument rests on —
    registry bindings are write-once, and the session context protocol
    never leaks an operator stack onto a serving domain.  Run by
    [ogb lint]. *)

type cls =
  | Immutable_registry  (** written once at load, read-only after *)
  | Session_private  (** reached only under the session's lock *)
  | Lock_protected  (** explicit mutex around every access *)
  | Atomic_counter  (** lock-free monotonic counters *)

type claim = { handler : string; state : string; cls : cls }

type finding = { probe : string; detail : string }

val cls_to_string : cls -> string
val describe : finding -> string

val manifest : claim list
(** One row per (handler, shared state) pair the daemon reaches. *)

val run : unit -> finding list
(** Probe the manifest's claims against scratch registry/session
    instances; empty when the isolation argument holds. *)
