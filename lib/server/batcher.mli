(** Request batching: concurrent same-signature matrix–vector products
    from different sessions coalesce into one fused dispatch
    ({!Jit.Kernels.mxv_batch}/[vxm_batch]) — one cache lookup and one
    kernel resolution amortized over every member, instead of each
    session racing the dispatch table separately.

    The first arrival for a signature becomes the batch leader: it
    holds the batch open for a short window while followers append,
    then executes the whole batch and distributes results.  Members
    keyed together are guaranteed to resolve to the same kernel — the
    key includes everything {!Jit.Kernel_sig} derives from the operand
    (operation, graph identity, transpose, semiring, size and the
    density class that picks the pull/push layout).

    Failure containment: the [serve.batch.partial] injection point (and
    any real per-member failure) degrades only that member's request to
    an error; the rest of the batch completes, and a failure of the
    fused call itself falls back to per-member execution. *)

type key

val key_of :
  op:[ `Mxv | `Vxm ] ->
  graph:string ->
  transpose:bool ->
  sr:Jit.Op_spec.semiring ->
  u:float Gbtl.Svector.t ->
  key

type t

val create : ?window_s:float -> unit -> t
(** [window_s] (default 1 ms) is how long a leader holds the batch
    open; [0.] disables the wait (only simultaneous arrivals
    coalesce). *)

val set_window : t -> float -> unit

val run :
  t ->
  key ->
  sr:Jit.Op_spec.semiring ->
  m:float Gbtl.Smatrix.t ->
  float Gbtl.Svector.t ->
  ((int * float) list, string) result
(** Execute one product, possibly as part of a coalesced batch.
    Blocks the calling worker until its member's result is ready. *)

val counters : t -> (string * int) list
(** [batches] (fused dispatches of ≥ 2), [batched] (requests served by
    those), [singles], [partial_failures]. *)
