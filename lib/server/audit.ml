(* Daemon shared-state audit: the claim that concurrent session handlers
   touch no shared mutable state outside the immutable graph registry
   and the per-session context stack, stated as data and then probed.

   The manifest enumerates, per request handler, every piece of state
   that outlives one request together with its isolation class; the
   probes then exercise the two claims that carry the whole argument —
   registry bindings are write-once, and [Session.with_context] never
   leaks an operator stack onto the serving domain — against scratch
   instances, so [ogb lint] re-proves them on every run instead of
   trusting the comment. *)

type cls =
  | Immutable_registry  (* written once at load, read-only after *)
  | Session_private  (* reached only under the session's lock *)
  | Lock_protected  (* explicit mutex around every access *)
  | Atomic_counter  (* lock-free monotonic counters *)

type claim = { handler : string; state : string; cls : cls }

type finding = { probe : string; detail : string }

let cls_to_string = function
  | Immutable_registry -> "immutable-registry"
  | Session_private -> "session-private"
  | Lock_protected -> "lock-protected"
  | Atomic_counter -> "atomic-counter"

let describe f = Printf.sprintf "audit %s: %s" f.probe f.detail

let manifest =
  [ { handler = "ping"; state = "none"; cls = Session_private };
    { handler = "load"; state = "registry name table"; cls = Lock_protected };
    { handler = "load"; state = "registered matrices"; cls = Immutable_registry };
    { handler = "graphs"; state = "registry name table"; cls = Lock_protected };
    { handler = "run"; state = "registered matrices"; cls = Immutable_registry };
    { handler = "run"; state = "session operator stack"; cls = Session_private };
    { handler = "run"; state = "JIT dispatch statistics"; cls = Atomic_counter };
    { handler = "mxv"; state = "registered matrices"; cls = Immutable_registry };
    { handler = "mxv"; state = "session operator stack"; cls = Session_private };
    { handler = "vxm"; state = "registered matrices"; cls = Immutable_registry };
    { handler = "vxm"; state = "session operator stack"; cls = Session_private };
    { handler = "context"; state = "session operator stack"; cls = Session_private };
    { handler = "health"; state = "JIT dispatch statistics"; cls = Atomic_counter };
    { handler = "stats"; state = "session request/error counters"; cls = Session_private };
    { handler = "session"; state = "session id counter"; cls = Atomic_counter };
    { handler = "shutdown"; state = "daemon stop flag"; cls = Atomic_counter } ]

(* probe: a registry binding, once made, cannot change identity *)
let probe_registry () =
  let r = Registry.create () in
  match Registry.load r ~name:"audit" ~spec:"path:n=4" ~symmetrize:false with
  | Error e ->
    [ { probe = "registry";
        detail = Printf.sprintf "scratch load failed: %s" e } ]
  | Ok first -> (
    match Registry.load r ~name:"audit" ~spec:"complete:n=4" ~symmetrize:false with
    | Ok _ ->
      [ { probe = "registry";
          detail = "rebinding a bound name was accepted — a graph can \
                    change identity under a running session" } ]
    | Error _ -> (
      match Registry.find r "audit" with
      | Some m when m == first -> []
      | Some _ ->
        [ { probe = "registry";
            detail = "refused rebind still replaced the stored matrix" } ]
      | None ->
        [ { probe = "registry"; detail = "bound name vanished after rebind" } ]))

(* probe: the session context protocol parks the operator stack in the
   session record and leaves the serving domain's stack empty — on
   normal return and on raise *)
let probe_session_context () =
  let fs = ref [] in
  let fail detail = fs := { probe = "session-context"; detail } :: !fs in
  let saved = Ogb.Context.save () in
  Ogb.Context.reset ();
  let s = Session.create () in
  Session.with_context s (fun () -> Ogb.Context.push (Ogb.Context.binary "Plus"));
  if Ogb.Context.depth () <> 0 then
    fail "operator stack leaked onto the domain after with_context";
  if List.length s.Session.ctx <> 1 then
    fail "session did not capture the operator stack it ran under";
  Session.with_context s (fun () ->
      if Ogb.Context.depth () <> 1 then
        fail "saved session stack was not re-installed on re-entry");
  (try
     Session.with_context s (fun () ->
         Ogb.Context.push (Ogb.Context.binary "Min");
         failwith "audit")
   with Failure _ -> ());
  if Ogb.Context.depth () <> 0 then
    fail "operator stack leaked onto the domain after a raising request";
  let t = Session.create () in
  if t.Session.id = s.Session.id then fail "session ids are not distinct";
  Session.with_context t (fun () ->
      if Ogb.Context.depth () <> 0 then
        fail "one session's operator stack is visible to another");
  Ogb.Context.restore saved;
  List.rev !fs

let run () = probe_registry () @ probe_session_context ()
