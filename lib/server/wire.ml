let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

type conn = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

let conn fd = { fd; buf = Buffer.create 256; eof = false }
let fd c = c.fd

(* Pull one buffered line out, if a terminator has arrived. *)
let take_line c =
  let s = Buffer.contents c.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear c.buf;
    Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.sub s 0 i)

let readable ?timeout_s fd =
  let t = match timeout_s with Some t -> t | None -> -1.0 in
  match retry_eintr (fun () -> Unix.select [ fd ] [] [] t) with
  | [], _, _ -> false
  | _ -> true

let recv_line ?timeout_s c =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line c with
    | Some l -> `Line l
    | None ->
      if c.eof then
        if Buffer.length c.buf > 0 then begin
          let l = Buffer.contents c.buf in
          Buffer.clear c.buf;
          `Line l
        end
        else `Eof
      else if not (readable ?timeout_s c.fd) then `Timeout
      else begin
        (match retry_eintr (fun () -> Unix.read c.fd chunk 0 4096) with
        | 0 -> c.eof <- true
        | k -> Buffer.add_subbytes c.buf chunk 0 k
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          c.eof <- true);
        go ()
      end
  in
  go ()

let send_line c s =
  let data = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      match retry_eintr (fun () -> Unix.write c.fd data off (len - off)) with
      | 0 -> Error "short write"
      | k -> go (off + k)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let shutdown c =
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
