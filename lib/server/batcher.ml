open Gbtl

type key = {
  op : [ `Mxv | `Vxm ];
  graph : string;
  transpose : bool;
  semiring : string;
  size : int;
  dense : bool;  (* the fill class mxv's layout pass keys pull/push on *)
  bucket : int;  (* power-of-two nvals bucket: members share a par grain *)
}

let pow2_ceil x =
  let r = ref 1 in
  while !r < x do
    r := !r * 2
  done;
  !r

let key_of ~op ~graph ~transpose ~(sr : Jit.Op_spec.semiring) ~u =
  let size = Svector.size u in
  let nv = Svector.nvals u in
  { op;
    graph;
    transpose;
    semiring =
      Printf.sprintf "%s|%s|%s" sr.Jit.Op_spec.add_op
        sr.Jit.Op_spec.add_identity sr.Jit.Op_spec.mul_op;
    size;
    dense = 4 * nv >= size && size >= 32;
    bucket = pow2_ceil (max 1 nv) }

type result_ = ((int * float) list, string) result

type member = { u : float Svector.t; mutable result : result_ option }

type group = {
  g_lock : Mutex.t;
  g_done : Condition.t;
  mutable members : member list;  (* reverse arrival order *)
  mutable accepting : bool;
}

type t = {
  lock : Mutex.t;
  groups : (key, group) Hashtbl.t;
  mutable window_s : float;
  mutable batches : int;
  mutable batched : int;
  mutable singles : int;
  mutable partial_failures : int;
}

let create ?(window_s = 0.001) () =
  { lock = Mutex.create ();
    groups = Hashtbl.create 16;
    window_s;
    batches = 0;
    batched = 0;
    singles = 0;
    partial_failures = 0 }

let set_window t w = Mutex.protect t.lock (fun () -> t.window_s <- max 0.0 w)

let counters t =
  Mutex.protect t.lock (fun () ->
      [ ("batches", t.batches);
        ("batched", t.batched);
        ("singles", t.singles);
        ("partial_failures", t.partial_failures) ])

let run_single key ~sr ~m u : result_ =
  try
    Ok
      (Entries.to_alist
         (match key.op with
         | `Mxv -> Jit.Kernels.mxv Dtype.FP64 sr ~transpose:key.transpose m u
         | `Vxm -> Jit.Kernels.vxm Dtype.FP64 sr ~transpose:key.transpose u m))
  with e -> Error (Printexc.to_string e)

let run_fused key ~sr ~m us =
  List.map Entries.to_alist
    (match key.op with
    | `Mxv -> Jit.Kernels.mxv_batch Dtype.FP64 sr ~transpose:key.transpose m us
    | `Vxm -> Jit.Kernels.vxm_batch Dtype.FP64 sr ~transpose:key.transpose m us)

(* Execute a closed batch, yielding one result per member in order.
   The injection point (or a genuine per-member failure) costs exactly
   one member its request; a failure of the fused call itself retries
   every member individually — correctness never depends on the
   coalescing. *)
let execute t key ~sr ~m members =
  let n = List.length members in
  let partial = n >= 2 && Fault.fire "serve.batch.partial" in
  let results =
    if n = 1 then begin
      Mutex.protect t.lock (fun () -> t.singles <- t.singles + 1);
      List.map (fun mem -> run_single key ~sr ~m mem.u) members
    end
    else begin
      Mutex.protect t.lock (fun () ->
          t.batches <- t.batches + 1;
          t.batched <- t.batched + n;
          if partial then t.partial_failures <- t.partial_failures + 1);
      let live, failed =
        if partial then
          ( List.filteri (fun i _ -> i < n - 1) members,
            List.filteri (fun i _ -> i = n - 1) members )
        else (members, [])
      in
      let live_results =
        match run_fused key ~sr ~m (List.map (fun mem -> mem.u) live) with
        | rs -> List.map (fun r -> Ok r) rs
        | exception _ ->
          List.map (fun mem -> run_single key ~sr ~m mem.u) live
      in
      live_results
      @ List.map
          (fun _ -> Error "injected fault: serve.batch.partial")
          failed
    end
  in
  results

let run t key ~sr ~m u =
  let joined =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.groups key with
        | Some g ->
          Mutex.protect g.g_lock (fun () ->
              if g.accepting then begin
                let mem = { u; result = None } in
                g.members <- mem :: g.members;
                Some (g, mem)
              end
              else None)
        | None -> None)
  in
  match joined with
  | Some (g, mem) ->
    (* follower: the leader executes and signals *)
    Mutex.protect g.g_lock (fun () ->
        let rec wait () =
          match mem.result with
          | Some r -> r
          | None ->
            Condition.wait g.g_done g.g_lock;
            wait ()
        in
        wait ())
  | None ->
    (* leader: open a group, hold the window, close, execute *)
    let mem = { u; result = None } in
    let g =
      { g_lock = Mutex.create ();
        g_done = Condition.create ();
        members = [ mem ];
        accepting = true }
    in
    let window =
      Mutex.protect t.lock (fun () ->
          Hashtbl.replace t.groups key g;
          t.window_s)
    in
    if window > 0.0 then Unix.sleepf window;
    let members =
      Mutex.protect t.lock (fun () ->
          (match Hashtbl.find_opt t.groups key with
          | Some g' when g' == g -> Hashtbl.remove t.groups key
          | _ -> ());
          Mutex.protect g.g_lock (fun () ->
              g.accepting <- false;
              List.rev g.members))
    in
    let results =
      (* a raise here would strand the followers mid-wait; degrade every
         member to an error instead *)
      try execute t key ~sr ~m members
      with e ->
        List.map (fun _ -> Error (Printexc.to_string e)) members
    in
    Mutex.protect g.g_lock (fun () ->
        List.iter2 (fun m r -> m.result <- Some r) members results;
        Condition.broadcast g.g_done);
    match mem.result with
    | Some r -> r
    | None -> Error "batch leader lost its own result"
