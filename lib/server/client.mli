(** Minimal client for the daemon's wire protocol — what [ogb client]
    and the CI smoke test use.  One request line out, one response
    line back; {!request} pairs them up. *)

type t

val connect :
  ?sock:string -> ?addr:string * int -> unit -> (t, string) result
(** Unix socket by default ([sock], else the [OGB_SERVE_SOCK]/default
    path); [addr] switches to TCP. *)

val request : t -> Json.t -> (Json.t, string) result
(** Send one request and block for the next response line. *)

val send_raw : t -> string -> (unit, string) result
(** Ship one raw line without waiting — for abort-style tests that
    disconnect mid-exchange. *)

val recv : t -> Json.t option
(** Next response line, [None] on EOF or unparseable data. *)

val close : t -> unit
