(** Admission control: a bounded MPMC queue between connection readers
    and worker domains.  When the queue is full the offer is refused
    immediately — the caller sheds the request with a [status: shed]
    response instead of letting latency grow without bound (the daemon
    prefers fast rejection over slow acceptance). *)

type 'a t

val create : cap:int -> 'a t
(** [cap] is clamped to ≥ 1. *)

val offer : 'a t -> 'a -> bool
(** Non-blocking; [false] means the queue was full (or closed) and the
    item was shed. *)

val take : 'a t -> 'a option
(** Block until an item or {!close}; [None] only after close (items
    still queued at close are dropped — shutdown is tearing the
    connections down anyway). *)

val close : 'a t -> unit
(** Wake every blocked {!take} with [None]; subsequent offers shed. *)

val depth : 'a t -> int

val counters : 'a t -> (string * int) list
(** [offered], [shed], [taken]. *)
