open Gbtl

let parse spec =
  let params rest =
    List.filter_map
      (fun kv ->
        match String.split_on_char '=' kv with
        | [ k; v ] -> Some (k, v)
        | _ -> None)
      (String.split_on_char ',' rest)
  in
  let geti ps key default =
    match List.assoc_opt key ps with Some v -> int_of_string v | None -> default
  in
  match String.index_opt spec ':' with
  | None -> `File spec
  | Some i -> (
    let kind = String.sub spec 0 i in
    let ps = params (String.sub spec (i + 1) (String.length spec - i - 1)) in
    let seed = geti ps "seed" 2018 in
    let rng = Graphs.Rng.create ~seed in
    try
      match kind with
      | "er" ->
        let n = geti ps "n" 1024 in
        `Edges (Graphs.Generators.erdos_renyi_paper rng ~nvertices:n)
      | "rmat" ->
        `Edges
          (Graphs.Generators.rmat rng ~scale:(geti ps "scale" 10)
             ~edge_factor:(geti ps "ef" 8))
      | "grid" ->
        `Edges
          (Graphs.Generators.grid2d ~rows:(geti ps "rows" 10)
             ~cols:(geti ps "cols" 10))
      | "tree" ->
        `Edges
          (Graphs.Generators.balanced_tree ~branching:(geti ps "r" 2)
             ~height:(geti ps "h" 8))
      | "complete" -> `Edges (Graphs.Generators.complete (geti ps "n" 16))
      | "path" -> `Edges (Graphs.Generators.path (geti ps "n" 100))
      | "cycle" -> `Edges (Graphs.Generators.cycle (geti ps "n" 100))
      | "ws" ->
        let beta =
          match List.assoc_opt "beta" ps with
          | Some v -> float_of_string v
          | None -> 0.1
        in
        `Edges
          (Graphs.Generators.watts_strogatz rng ~nvertices:(geti ps "n" 1000)
             ~k:(geti ps "k" 4) ~beta)
      | "ba" ->
        `Edges
          (Graphs.Generators.barabasi_albert rng ~nvertices:(geti ps "n" 1000)
             ~m:(geti ps "m" 3))
      | other -> `Error (Printf.sprintf "unknown generator %S" other)
    with Failure _ ->
      `Error (Printf.sprintf "bad parameter in graph spec %S" spec))

let load_fp64 spec ~symmetrize =
  match parse spec with
  | `Error e -> Error e
  | `File path -> (
    try Ok (Matrix_market.read Dtype.FP64 path) with
    | Matrix_market.Parse_error e -> Error e
    | Sys_error e -> Error e)
  | `Edges g ->
    let g = if symmetrize then Graphs.Edge_list.symmetrize g else g in
    Ok (Graphs.Convert.matrix_of_edges Dtype.FP64 g)
