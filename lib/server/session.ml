type t = {
  id : int;
  lock : Mutex.t;
  mutable ctx : Ogb.Context.entry list;
  mutable requests : int;
  mutable errors : int;
  mutable closed : bool;
}

let next_id = Atomic.make 1

let create () =
  { id = Atomic.fetch_and_add next_id 1;
    lock = Mutex.create ();
    ctx = [];
    requests = 0;
    errors = 0;
    closed = false }

let with_context t f =
  Ogb.Context.reset ();
  Ogb.Context.restore t.ctx;
  Fun.protect
    ~finally:(fun () ->
      t.ctx <- Ogb.Context.save ();
      Ogb.Context.reset ())
    f
