type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  cap : int;
  mutable closed : bool;
  mutable offered : int;
  mutable shed : int;
  mutable taken : int;
}

let create ~cap =
  { lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    cap = max 1 cap;
    closed = false;
    offered = 0;
    shed = 0;
    taken = 0 }

let offer t x =
  Mutex.protect t.lock (fun () ->
      t.offered <- t.offered + 1;
      if t.closed || Queue.length t.items >= t.cap then begin
        t.shed <- t.shed + 1;
        false
      end
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let take t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if t.closed then None
        else if Queue.is_empty t.items then begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
        else begin
          t.taken <- t.taken + 1;
          Some (Queue.pop t.items)
        end
      in
      wait ())

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = Mutex.protect t.lock (fun () -> Queue.length t.items)

let counters t =
  Mutex.protect t.lock (fun () ->
      [ ("offered", t.offered); ("shed", t.shed); ("taken", t.taken) ])
