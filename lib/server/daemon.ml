open Gbtl

type config = {
  sock_path : string;
  tcp_addr : (string * int) option;
  workers : int;
  queue_cap : int;
  session_budget : int;
  batch_window : float;
  warm_n : int;
  warm : bool;
}

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> default)

let env_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> default)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
    let host = String.sub s 0 i in
    let host = if host = "" then "127.0.0.1" else host in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p when p > 0 -> Some (host, p)
    | _ -> None)

let default_sock () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ogb-serve-%d.sock" (Unix.getuid ()))

let default_config () =
  { sock_path =
      (match Sys.getenv_opt "OGB_SERVE_SOCK" with
      | Some p when p <> "" -> p
      | _ -> default_sock ());
    tcp_addr = Option.bind (Sys.getenv_opt "OGB_SERVE_ADDR") parse_addr;
    workers = max 1 (env_int "OGB_SERVE_WORKERS" 4);
    queue_cap = max 1 (env_int "OGB_SERVE_QUEUE" 16);
    session_budget =
      max 1
        (env_int "OGB_SERVE_SESSION_DOMAINS" (Parallel.Pool.domains ()));
    batch_window = Float.max 0.0 (env_float "OGB_SERVE_BATCH_WINDOW" 0.001);
    warm_n = max 2 (env_int "OGB_SERVE_WARM_N" 256);
    warm = Sys.getenv_opt "OGB_SERVE_NO_WARM" = None }

(* -- state -- *)

(* A queued unit of work: the request plus where to send the answer.
   [reply] is transport-supplied (socket write, or a test's collector);
   [fatal] tells the transport to tear the session's connection down. *)
type job = {
  j_session : Session.t;
  j_req : Json.t;
  j_reply : Json.t -> unit;
  j_fatal_close : unit -> unit;
}

type state = {
  cfg : config;
  reg : Registry.t;
  bat : Batcher.t;
  queue : job Admission.t;
  slock : Mutex.t;
  mutable sessions_total : int;
  mutable sessions_active : int;
  mutable requests : int;
  mutable errors : int;
  mutable accept_failures : int;
  mutable session_kills : int;
  mutable warm_sigs : int;
  mutable warm_compiles : int;
  shutdown_req : bool Atomic.t;
}

let registry s = s.reg
let batcher s = s.bat
let shutdown_requested s = Atomic.get s.shutdown_req

let bump s f = Mutex.protect s.slock (fun () -> f s)

let serve_counters s =
  Mutex.protect s.slock (fun () ->
      [ ("sessions", s.sessions_total);
        ("active", s.sessions_active);
        ("requests", s.requests);
        ("errors", s.errors);
        ("accept_failures", s.accept_failures);
        ("session_kills", s.session_kills);
        ("warm_sigs", s.warm_sigs);
        ("warm_compiles", s.warm_compiles);
        ("queue_depth", Admission.depth s.queue) ])
  @ (let sh = List.assoc "shed" (Admission.counters s.queue) in
     [ ("shed", sh) ])
  @ Batcher.counters s.bat
  (* schedule reuse across sessions: the planner cache is process-global
     and keyed by plan-shape digest × calibration generation, so repeat
     request shapes skip the schedule search — visible here *)
  @ List.map
      (fun (k, v) -> ("planner_" ^ k, v))
      (Exec.Planner.counters ())
  @ [ ("planner_cache", Exec.Planner.cache_size ());
      ("calibration_gen", Cost.Calibration.generation ()) ]

(* Warm the JIT over every kernel signature the tier-1 encodings can
   reach at vertex count [n]; repeated per [load] at the real graph
   size so steady-state runs compile nothing. *)
let warm_at s n =
  let module T1 = Analysis.Tier1 in
  let seen = Hashtbl.create 64 in
  let sigs =
    List.concat_map
      (fun e ->
        List.filter
          (fun k ->
            let key = Jit.Kernel_sig.key k in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          (T1.signatures e ~n))
      T1.all
  in
  let outcomes = Analysis.Warmup.warm sigs in
  let compiled =
    List.length
      (List.filter
         (fun (o : Analysis.Warmup.outcome) ->
           o.Analysis.Warmup.status = Analysis.Warmup.Compiled)
         outcomes)
  in
  bump s (fun s ->
      s.warm_sigs <- s.warm_sigs + List.length sigs;
      s.warm_compiles <- s.warm_compiles + compiled);
  (List.length sigs, compiled)

let create_state cfg =
  let s =
    { cfg;
      reg = Registry.create ();
      bat = Batcher.create ~window_s:cfg.batch_window ();
      queue = Admission.create ~cap:cfg.queue_cap;
      slock = Mutex.create ();
      sessions_total = 0;
      sessions_active = 0;
      requests = 0;
      errors = 0;
      accept_failures = 0;
      session_kills = 0;
      warm_sigs = 0;
      warm_compiles = 0;
      shutdown_req = Atomic.make false }
  in
  if cfg.warm then ignore (warm_at s cfg.warm_n);
  s

(* -- request handling -- *)

let ok id fields = Json.Obj (("id", id) :: ("status", Json.Str "ok") :: fields)

let err ?(fatal = false) id msg =
  Json.Obj
    (("id", id) :: ("status", Json.Str "error")
    :: ("error", Json.Str msg)
    :: (if fatal then [ ("fatal", Json.Bool true) ] else []))

let shed_response id =
  Json.Obj
    [ ("id", id);
      ("status", Json.Str "shed");
      ("error", Json.Str "admission queue full; retry later") ]

let entries_json entries =
  Json.Arr
    (List.map
       (fun (i, x) ->
         Json.Arr [ Json.Num (float_of_int i); Json.Num x ])
       entries)

let require_str req field =
  match Json.str_field field req with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" field)

let find_graph s name =
  match Registry.find s.reg name with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "no graph named %S (load it first)" name)

let parse_vector req ~n =
  match Json.member "vector" req with
  | None | Some (Json.Str "ones") ->
    Ok (Svector.of_dense Dtype.FP64 (Array.make n 1.0))
  | Some (Json.Arr elems) -> (
    try
      Ok
        (Svector.of_coo Dtype.FP64 n
           (List.map
              (fun e ->
                match e with
                | Json.Arr [ Json.Num i; Json.Num x ] -> (int_of_float i, x)
                | _ -> failwith "vector entries must be [index, value] pairs")
              elems))
    with Failure m | Invalid_argument m -> Error m)
  | Some _ -> Error "vector must be \"ones\" or a list of [index, value]"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000.0 *. (Unix.gettimeofday () -. t0))

let truncate_top req entries =
  match Json.int_field "top" req with
  | Some t when t > 0 -> List.filteri (fun i _ -> i < t) entries
  | Some _ -> entries
  | None -> List.filteri (fun i _ -> i < 10) entries

let handle_run s id req =
  let ( let* ) r f = match r with Error e -> err id e | Ok v -> f v in
  let* algo = require_str req "algo" in
  let tier = Option.value ~default:"vm" (Json.str_field "tier" req) in
  let* name = require_str req "graph" in
  let* m = find_graph s name in
  let src = Option.value ~default:0 (Json.int_field "src" req) in
  let bool_m () = Smatrix.cast ~into:Dtype.Bool m in
  let cont () = Ogb.Container.of_smatrix m in
  let bool_cont () = Ogb.Container.of_smatrix (bool_m ()) in
  let vec ?iters entries ms =
    ok id
      (("ms", Json.Num ms)
      :: (match iters with
         | Some k -> [ ("iters", Json.Num (float_of_int k)) ]
         | None -> [])
      @ [ ("result", entries_json (truncate_top req entries)) ])
  in
  let scalar x ms = ok id [ ("ms", Json.Num ms); ("value", Json.Num x) ] in
  let float_levels l = List.map (fun (i, v) -> (i, float_of_int v)) l in
  let by_rank l = List.sort (fun (_, a) (_, b) -> compare b a) l in
  let svec_entries v =
    List.rev (Svector.fold (fun acc i x -> (i, x) :: acc) [] v)
  in
  match (algo, tier) with
  | "bfs", "native" ->
    let l, ms = time (fun () -> Algorithms.Bfs.native (bool_m ()) ~src) in
    vec (float_levels (Algorithms.Bfs.levels_of_svector l)) ms
  | "bfs", "dsl" ->
    let l, ms = time (fun () -> Algorithms.Bfs.dsl (bool_cont ()) ~src) in
    vec (float_levels (Algorithms.Bfs.levels_of_container l)) ms
  | "bfs", "vm" ->
    let l, ms = time (fun () -> Algorithms.Bfs.vm_loops (bool_cont ()) ~src) in
    vec (float_levels (Algorithms.Bfs.levels_of_container l)) ms
  | "sssp", "native" ->
    let d, ms = time (fun () -> Algorithms.Sssp.native m ~src) in
    vec (svec_entries d) ms
  | "sssp", "dsl" ->
    let d, ms = time (fun () -> Algorithms.Sssp.dsl (cont ()) ~src) in
    vec (Algorithms.Sssp.distances_of_container d) ms
  | "sssp", "vm" ->
    let d, ms = time (fun () -> Algorithms.Sssp.vm_loops (cont ()) ~src) in
    vec (Algorithms.Sssp.distances_of_container d) ms
  | "pagerank", "native" ->
    let (r, iters), ms = time (fun () -> Algorithms.Pagerank.native m) in
    vec ~iters (by_rank (svec_entries r)) ms
  | "pagerank", "dsl" ->
    let (r, iters), ms = time (fun () -> Algorithms.Pagerank.dsl (cont ())) in
    vec ~iters (by_rank (Algorithms.Pagerank.ranks_of_container r)) ms
  | "pagerank", "nonblocking" ->
    let (r, iters), ms =
      time (fun () -> Algorithms.Pagerank.nonblocking (cont ()))
    in
    vec ~iters (by_rank (Algorithms.Pagerank.ranks_of_container r)) ms
  | "pagerank", "vm" ->
    let r, ms = time (fun () -> Algorithms.Pagerank.vm_loops (cont ())) in
    vec (by_rank (Algorithms.Pagerank.ranks_of_container r)) ms
  | "tc", ("native" | "dsl" | "nonblocking" | "vm") ->
    let l = Algorithms.Triangle.of_undirected (bool_m ()) in
    let t, ms =
      time (fun () ->
          match tier with
          | "native" -> float_of_int (Algorithms.Triangle.native l)
          | "dsl" -> Algorithms.Triangle.dsl (Ogb.Container.of_smatrix l)
          | "nonblocking" ->
            Algorithms.Triangle.nonblocking (Ogb.Container.of_smatrix l)
          | _ -> Algorithms.Triangle.vm_loops (Ogb.Container.of_smatrix l))
    in
    scalar t ms
  | _ ->
    err id (Printf.sprintf "unsupported algorithm/tier %s/%s" algo tier)

let context_entry_of_json req =
  match Json.str_field "kind" req with
  | Some "semiring" -> (
    match Json.str_field "name" req with
    | Some n -> (
      try Ok (Ogb.Context.semiring n)
      with Semiring.Unknown_semiring _ ->
        Error (Printf.sprintf "unknown semiring %S" n))
    | None -> Error "semiring entry needs a name")
  | Some "monoid" -> (
    match (Json.str_field "op" req, Json.str_field "identity" req) with
    | Some op, Some identity -> Ok (Ogb.Context.monoid ~op ~identity)
    | _ -> Error "monoid entry needs op and identity")
  | Some "binary" -> (
    match Json.str_field "name" req with
    | Some n -> Ok (Ogb.Context.binary n)
    | None -> Error "binary entry needs a name")
  | Some "unary" -> (
    match Json.str_field "name" req with
    | Some n -> Ok (Ogb.Context.unary n)
    | None -> Error "unary entry needs a name")
  | Some "accum" -> (
    match Json.str_field "name" req with
    | Some n -> Ok (Ogb.Context.accum n)
    | None -> Error "accum entry needs a name")
  | Some "replace" -> Ok Ogb.Context.replace
  | Some k -> Error (Printf.sprintf "unknown context entry kind %S" k)
  | None -> Error "context push needs an entry {kind, ...}"

let handle_context id req =
  match Json.str_field "action" req with
  | Some "push" -> (
    match
      match Json.member "entry" req with
      | Some e -> context_entry_of_json e
      | None -> Error "context push needs an entry object"
    with
    | Error e -> err id e
    | Ok entry ->
      Ogb.Context.push entry;
      ok id [ ("depth", Json.Num (float_of_int (Ogb.Context.depth ()))) ])
  | Some "pop" ->
    if Ogb.Context.depth () = 0 then err id "context stack is empty"
    else begin
      Ogb.Context.pop ();
      ok id [ ("depth", Json.Num (float_of_int (Ogb.Context.depth ()))) ]
    end
  | Some "clear" ->
    Ogb.Context.reset ();
    ok id [ ("depth", Json.Num 0.0) ]
  | Some a -> err id (Printf.sprintf "unknown context action %S" a)
  | None -> err id "context needs an action (push|pop|clear)"

let handle_product s id req ~which =
  let ( let* ) r f = match r with Error e -> err id e | Ok v -> f v in
  let* name = require_str req "graph" in
  let* m = find_graph s name in
  let transpose = Json.bool_field "transpose" req in
  let n =
    (* operand length: y = A u wants ncols, y = Aᵀ u wants nrows;
       u A wants nrows, u Aᵀ wants ncols *)
    match (which, transpose) with
    | `Mxv, false | `Vxm, true -> Smatrix.ncols m
    | `Mxv, true | `Vxm, false -> Smatrix.nrows m
  in
  let* u = parse_vector req ~n in
  (* The operator comes from the session's context stack — the DSL's
     [with] semantics carried over the wire. *)
  let sr = Ogb.Context.current_semiring () in
  let key = Batcher.key_of ~op:which ~graph:name ~transpose ~sr ~u in
  match Batcher.run s.bat key ~sr ~m u with
  | Ok entries ->
    ok id
      [ ("n", Json.Num (float_of_int (Svector.size u)));
        ("nvals", Json.Num (float_of_int (List.length entries)));
        ("result", entries_json entries) ]
  | Error e -> err id e

let handle_health s id req =
  let probe = Json.bool_field ~default:true "probe" req in
  let report = Jit.Health.collect ~probe () in
  let health_json =
    (* doctor --json, verbatim, as a structured member *)
    try Json.parse (Jit.Health.to_json report)
    with Json.Parse_error e -> Json.Str ("unparseable health report: " ^ e)
  in
  ok id
    [ ("healthy", Json.Bool (Jit.Health.healthy report));
      ("verdict", Json.Str (Jit.Health.verdict_string report));
      ("health", health_json);
      ( "serve",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             (serve_counters s)) ) ]

let handle_load s id req =
  let ( let* ) r f = match r with Error e -> err id e | Ok v -> f v in
  let* name = require_str req "name" in
  let* spec = require_str req "graph" in
  let symmetrize = Json.bool_field "symmetrize" req in
  let* m = Registry.load s.reg ~name ~spec ~symmetrize in
  let warmed, compiled =
    if s.cfg.warm then warm_at s (max 2 (Smatrix.nrows m)) else (0, 0)
  in
  ok id
    [ ("name", Json.Str name);
      ("vertices", Json.Num (float_of_int (Smatrix.nrows m)));
      ("edges", Json.Num (float_of_int (Smatrix.nvals m)));
      ("warmed_signatures", Json.Num (float_of_int warmed));
      ("warm_compiles", Json.Num (float_of_int compiled)) ]

(* Edge batches arrive as [[r, c, v]] (upsert) / [[r, c]] (delete)
   triples; the registry applies them copy-on-write so in-flight
   computations on the old matrix are unaffected. *)
let parse_batch req =
  (* int_of_float would silently truncate 1.7 to 1 (and map NaN to an
     unspecified int): a malformed coordinate must be rejected, not
     become a different edge *)
  let coord which i n =
    if Float.is_integer n && Float.abs n < 1e15 then int_of_float n
    else
      failwith
        (Printf.sprintf "edges[%d]: %s coordinate %g is not an integer" i
           which n)
  in
  match Json.member "edges" req with
  | Some (Json.Arr elems) -> (
    try
      Ok
        (List.mapi
           (fun i e ->
             match e with
             | Json.Arr [ Json.Num r; Json.Num c; Json.Num v ] ->
               (coord "row" i r, coord "col" i c, Some v)
             | Json.Arr [ Json.Num r; Json.Num c ] ->
               (coord "row" i r, coord "col" i c, None)
             | _ ->
               failwith
                 (Printf.sprintf
                    "edges[%d]: entries must be [row, col, value] or [row, \
                     col]"
                    i))
           elems)
    with Failure m -> Error m)
  | Some _ | None -> Error "update needs an \"edges\" list"

let handle_update s id req =
  let ( let* ) r f = match r with Error e -> err id e | Ok v -> f v in
  let* name = require_str req "name" in
  let* batch = parse_batch req in
  let* m, additions, deletions = Registry.update s.reg ~name ~batch in
  ok id
    [ ("name", Json.Str name);
      ("vertices", Json.Num (float_of_int (Smatrix.nrows m)));
      ("edges", Json.Num (float_of_int (Smatrix.nvals m)));
      ("additions", Json.Num (float_of_int additions));
      ("deletions", Json.Num (float_of_int deletions)) ]

let handle_stats s id =
  let st = Jit.Jit_stats.snapshot () in
  ok id
    [ ( "serve",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             (serve_counters s)) );
      ( "jit",
        Json.Obj
          [ ("lookups", Json.Num (float_of_int st.Jit.Jit_stats.lookups));
            ( "memory_hits",
              Json.Num (float_of_int st.Jit.Jit_stats.memory_hits) );
            ("disk_hits", Json.Num (float_of_int st.Jit.Jit_stats.disk_hits));
            ("compiles", Json.Num (float_of_int st.Jit.Jit_stats.compiles));
            ( "warm_compiles",
              Json.Num (float_of_int st.Jit.Jit_stats.warm_compiles) ) ] ) ]

let dispatch s session id req =
  match Json.str_field "op" req with
  | None -> err id "request needs an \"op\" field"
  | Some op -> (
    match op with
    | "ping" -> ok id [ ("pong", Json.Bool true) ]
    | "load" -> handle_load s id req
    | "update" -> handle_update s id req
    | "graphs" ->
      ok id
        [ ( "graphs",
            Json.Arr
              (List.map
                 (fun (name, v, e) ->
                   Json.Obj
                     [ ("name", Json.Str name);
                       ("vertices", Json.Num (float_of_int v));
                       ("edges", Json.Num (float_of_int e)) ])
                 (Registry.names s.reg)) ) ]
    | "run" -> handle_run s id req
    | "mxv" -> handle_product s id req ~which:`Mxv
    | "vxm" -> handle_product s id req ~which:`Vxm
    | "context" -> handle_context id req
    | "health" -> handle_health s id req
    | "stats" -> handle_stats s id
    | "session" ->
      ok id
        [ ("session", Json.Num (float_of_int session.Session.id));
          ("requests", Json.Num (float_of_int session.Session.requests));
          ( "context_depth",
            Json.Num (float_of_int (List.length session.Session.ctx)) ) ]
    | "shutdown" ->
      Atomic.set s.shutdown_req true;
      ok id [ ("stopping", Json.Bool true) ]
    | op -> err id (Printf.sprintf "unknown op %S" op))

let handle s session req =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  Mutex.protect session.Session.lock (fun () ->
      session.Session.requests <- session.Session.requests + 1;
      bump s (fun s -> s.requests <- s.requests + 1);
      let resp =
        try
          if Fault.fire "serve.session.exn" then
            raise (Fault.Injected "serve.session.exn");
          Session.with_context session (fun () ->
              Parallel.Pool.with_budget_cap s.cfg.session_budget (fun () ->
                  dispatch s session id req))
        with
        | Fault.Injected _ ->
          bump s (fun s -> s.session_kills <- s.session_kills + 1);
          err ~fatal:true id "injected fault: serve.session.exn (session closed)"
        | e -> err id (Printexc.to_string e)
      in
      (match resp with
      | Json.Obj kvs when List.assoc_opt "status" kvs = Some (Json.Str "error")
        ->
        session.Session.errors <- session.Session.errors + 1;
        bump s (fun s -> s.errors <- s.errors + 1)
      | _ -> ());
      resp)

(* -- the daemon -- *)

type cconn = {
  wire : Wire.conn;
  wlock : Mutex.t;
  c_session : Session.t;
  mutable alive : bool;
}

type running = {
  r_state : state;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopped : bool Atomic.t;
  mutable listeners : Unix.file_descr list;
  clock : Mutex.t;
  mutable conns : cconn list;
  mutable threads : Thread.t list;
  mutable accept_d : unit Domain.t option;
  mutable workers_d : unit Domain.t list;
}

let state_of r = r.r_state

let stop r =
  if not (Atomic.exchange r.stopped true) then
    (* one byte on the self-pipe; safe from a signal handler *)
    try ignore (Unix.write r.stop_w (Bytes.make 1 's') 0 1)
    with Unix.Unix_error _ -> ()

let send_resp conn resp =
  Mutex.protect conn.wlock (fun () ->
      if conn.alive then
        match Wire.send_line conn.wire (Json.to_string resp) with
        | Ok () -> ()
        | Error _ ->
          (* peer vanished mid-response; its reader will see EOF *)
          ())

let close_conn r conn =
  let was_alive =
    Mutex.protect conn.wlock (fun () ->
        let w = conn.alive in
        conn.alive <- false;
        w)
  in
  if was_alive then begin
    conn.c_session.Session.closed <- true;
    Wire.shutdown conn.wire;
    Wire.close conn.wire;
    Mutex.protect r.clock (fun () ->
        r.conns <- List.filter (fun c -> c != conn) r.conns);
    bump r.r_state (fun s -> s.sessions_active <- s.sessions_active - 1)
  end

let worker_loop r =
  let s = r.r_state in
  let rec go () =
    match Admission.take s.queue with
    | None -> ()
    | Some job ->
      let resp = handle s job.j_session job.j_req in
      job.j_reply resp;
      (match resp with
      | Json.Obj kvs when List.assoc_opt "fatal" kvs = Some (Json.Bool true)
        ->
        job.j_fatal_close ()
      | _ -> ());
      if Atomic.get s.shutdown_req then stop r;
      go ()
  in
  go ()

let reader_loop r conn =
  let s = r.r_state in
  let rec go () =
    match Wire.recv_line conn.wire with
    | `Eof | `Timeout -> ()
    | `Line l ->
      if String.trim l = "" then go ()
      else begin
        (match Json.parse l with
        | exception Json.Parse_error m ->
          send_resp conn (err Json.Null ("bad request: " ^ m))
        | req ->
          let job =
            { j_session = conn.c_session;
              j_req = req;
              j_reply = (fun resp -> send_resp conn resp);
              j_fatal_close = (fun () -> close_conn r conn) }
          in
          if not (Admission.offer s.queue job) then
            send_resp conn
              (shed_response
                 (Option.value ~default:Json.Null (Json.member "id" req))));
        go ()
      end
  in
  (try go () with _ -> ());
  close_conn r conn

let accept_loop r =
  let s = r.r_state in
  let rec go () =
    let readable =
      match
        Wire.retry_eintr (fun () ->
            Unix.select (r.stop_r :: r.listeners) [] [] (-1.0))
      with
      | rs, _, _ -> rs
      | exception Unix.Unix_error _ -> [ r.stop_r ]
    in
    if List.mem r.stop_r readable || Atomic.get r.stopped then ()
    else begin
      List.iter
        (fun lfd ->
          if List.mem lfd readable then
            match Wire.retry_eintr (fun () -> Unix.accept ~cloexec:true lfd) with
            | exception Unix.Unix_error _ ->
              bump s (fun s -> s.accept_failures <- s.accept_failures + 1)
            | fd, _ ->
              if Fault.fire "serve.accept.exn" then begin
                (* the injected accept failure costs this connection
                   only; the loop (and every other session) lives on *)
                bump s (fun s -> s.accept_failures <- s.accept_failures + 1);
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                let conn =
                  { wire = Wire.conn fd;
                    wlock = Mutex.create ();
                    c_session = Session.create ();
                    alive = true }
                in
                Mutex.protect r.clock (fun () ->
                    r.conns <- conn :: r.conns;
                    let t = Thread.create (fun () -> reader_loop r conn) () in
                    r.threads <- t :: r.threads);
                bump s (fun s ->
                    s.sessions_total <- s.sessions_total + 1;
                    s.sessions_active <- s.sessions_active + 1)
              end)
        r.listeners;
      go ()
    end
  in
  go ()

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    (* stale socket from a dead daemon; a live one would error on bind
       anyway, so removal only races other starting daemons *)
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp (host, port) =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_loopback
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let start cfg =
  Wire.ignore_sigpipe ();
  match
    let unix_fd = listen_unix cfg.sock_path in
    let listeners =
      match cfg.tcp_addr with
      | None -> [ unix_fd ]
      | Some a -> (
        match listen_tcp a with
        | tcp_fd -> [ unix_fd; tcp_fd ]
        | exception Unix.Unix_error (e, _, _) ->
          Unix.close unix_fd;
          raise
            (Failure
               (Printf.sprintf "tcp listen failed: %s" (Unix.error_message e))))
    in
    let state = create_state cfg in
    let stop_r, stop_w = Unix.pipe ~cloexec:true () in
    let r =
      { r_state = state;
        stop_r;
        stop_w;
        stopped = Atomic.make false;
        listeners;
        clock = Mutex.create ();
        conns = [];
        threads = [];
        accept_d = None;
        workers_d = [] }
    in
    r.workers_d <-
      List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop r));
    r.accept_d <- Some (Domain.spawn (fun () -> accept_loop r));
    r
  with
  | r -> Ok r
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure m -> Error m

let wait r =
  (match r.accept_d with
  | Some d ->
    Domain.join d;
    r.accept_d <- None
  | None -> ());
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    r.listeners;
  r.listeners <- [];
  Admission.close r.r_state.queue;
  List.iter Domain.join r.workers_d;
  r.workers_d <- [];
  let conns = Mutex.protect r.clock (fun () -> r.conns) in
  List.iter (fun c -> close_conn r c) conns;
  let threads = Mutex.protect r.clock (fun () -> r.threads) in
  List.iter (fun t -> try Thread.join t with _ -> ()) threads;
  (try Unix.close r.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close r.stop_w with Unix.Unix_error _ -> ());
  (* persist kernel-timing observations gathered over the daemon's
     lifetime so the next process starts with a calibrated cost model;
     best-effort (the save path already reports its own failures) *)
  ignore (Cost.Calibration.save ());
  try Unix.unlink r.r_state.cfg.sock_path with Unix.Unix_error _ -> ()
