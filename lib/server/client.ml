type t = Wire.conn

let connect ?sock ?addr () =
  Wire.ignore_sigpipe ();
  match addr with
  | Some (host, port) -> (
    try
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Wire.retry_eintr (fun () ->
          Unix.connect fd (Unix.ADDR_INET (ip, port)));
      Ok (Wire.conn fd)
    with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  | None -> (
    let path =
      match sock with
      | Some p -> p
      | None -> (
        match Sys.getenv_opt "OGB_SERVE_SOCK" with
        | Some p when p <> "" -> p
        | _ ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ogb-serve-%d.sock" (Unix.getuid ())))
    in
    try
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Wire.retry_eintr (fun () -> Unix.connect fd (Unix.ADDR_UNIX path));
      Ok (Wire.conn fd)
    with Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let send_raw t line = Wire.send_line t line

let recv t =
  match Wire.recv_line t with
  | `Eof | `Timeout -> None
  | `Line l -> ( match Json.parse l with j -> Some j | exception _ -> None)

let request t req =
  match Wire.send_line t (Json.to_string req) with
  | Error e -> Error e
  | Ok () -> (
    match recv t with
    | Some resp -> Ok resp
    | None -> Error "connection closed before a response arrived")

let close t = Wire.close t
