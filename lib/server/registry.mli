(** The daemon's shared graph store: named, immutable FP64 adjacency
    matrices loaded once and read by every session concurrently.
    Immutability is the isolation story for data — sessions never write
    into a registered matrix, so no cross-session locking guards the
    compute path; the mutex below only serializes the name table. *)

type t

val create : unit -> t

val load :
  t ->
  name:string ->
  spec:string ->
  symmetrize:bool ->
  (float Gbtl.Smatrix.t, string) result
(** Parse/generate the graph and bind it to [name].  Rebinding an
    existing name is refused — a graph another session already computed
    against must not change identity under it. *)

val find : t -> string -> float Gbtl.Smatrix.t option
val names : t -> (string * int * int) list
(** (name, vertices, edges), sorted by name. *)
