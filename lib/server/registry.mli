(** The daemon's shared graph store: named, immutable FP64 adjacency
    matrices loaded once and read by every session concurrently.
    Immutability is the isolation story for data — sessions never write
    into a registered matrix, so no cross-session locking guards the
    compute path; the mutex below only serializes the name table. *)

type t

val create : unit -> t

val load :
  t ->
  name:string ->
  spec:string ->
  symmetrize:bool ->
  (float Gbtl.Smatrix.t, string) result
(** Parse/generate the graph and bind it to [name].  Rebinding an
    existing name is refused — a graph another session already computed
    against must not change identity under it. *)

val update :
  t ->
  name:string ->
  batch:(int * int * float option) list ->
  (float Gbtl.Smatrix.t * int * int, string) result
(** Apply an edge batch ([Some v] upserts, [None] deletes) to the named
    graph, copy-on-write: the stored matrix is never mutated — the name
    is rebound to an edited copy, so sessions mid-computation on the old
    matrix are unaffected and later {!find}s see the batch.  Returns the
    new matrix and the (additions, deletions) split.  The whole batch is
    bounds-checked before any edit lands (all-or-nothing). *)

val find : t -> string -> float Gbtl.Smatrix.t option
val names : t -> (string * int * int) list
(** (name, vertices, edges), sorted by name. *)
