(** Graph-source specs shared by the CLI and the daemon's [load]
    request: a generator expression ([er:n=1024], [rmat:scale=10,ef=8],
    [grid:rows=10,cols=10], [tree:r=2,h=8], [complete:n=16],
    [path:n=100], [cycle:n=100], [ws:n=1000,k=4,beta=0.1],
    [ba:n=1000,m=3]; all accept [seed=N]) or a MatrixMarket file
    path. *)

val parse :
  string ->
  [ `File of string | `Edges of Graphs.Edge_list.t | `Error of string ]

val load_fp64 :
  string -> symmetrize:bool -> (float Gbtl.Smatrix.t, string) result
(** Resolve a spec all the way to an FP64 adjacency matrix
    ([symmetrize] mirrors every generated edge; files load as
    stored). *)
