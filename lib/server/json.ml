type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let code = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    code
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          let code =
            match hex4 () with
            | c -> c
            | exception _ -> fail "bad \\u escape"
          in
          (* BMP only; requests never carry surrogate pairs *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
        | Some c -> Buffer.add_char b c; advance ()
        | None -> fail "dangling escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string t =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_ = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let list_ = function Arr xs -> Some xs | _ -> None
let str_field k t = Option.bind (member k t) str
let int_field k t = Option.bind (member k t) int_

let bool_field ?(default = false) k t =
  match Option.bind (member k t) bool_ with Some b -> b | None -> default
