(** Per-client session state.  Each connection owns one session; the
    only mutable things a session carries across requests are its
    operator-context stack (the DSL's [with] blocks, [Ogb.Context])
    and its counters.  The stack is captured after every request and
    re-installed — on whichever worker domain picks the session up next
    — before the following one, so context pushed by one tenant can
    never leak into another: the serving domain's stack is reset to
    empty on entry and exit either way.

    MiniVM environments need no such treatment: every [vm_loops] run
    builds a fresh environment, so nothing VM-side survives a request.

    Requests from one session are serialized by [lock]; the pipelined
    reader may enqueue several, but they execute in order. *)

type t = {
  id : int;
  lock : Mutex.t;
  mutable ctx : Ogb.Context.entry list;  (** saved operator stack *)
  mutable requests : int;
  mutable errors : int;
  mutable closed : bool;
}

val create : unit -> t
(** Fresh id from a process-wide counter; empty context. *)

val with_context : t -> (unit -> 'a) -> 'a
(** Install the session's saved operator stack on the calling domain,
    run [f], capture the (possibly modified) stack back into the
    session, and leave the domain's stack empty — even when [f]
    raises. *)
