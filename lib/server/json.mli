(** Dependency-free JSON for the wire protocol: the same minimal value
    model the bench regression gate reads, plus a printer and the
    accessors the request handlers need.  One request or response is
    one JSON object on one line (LF-terminated), so the printer never
    emits newlines. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val to_string : t -> string
(** Single-line rendering; strings are escaped, integral floats print
    without a fractional part. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val str : t -> string option
val num : t -> float option
val int_ : t -> int option
val bool_ : t -> bool option
val list_ : t -> t list option

val str_field : string -> t -> string option
val int_field : string -> t -> int option
val bool_field : ?default:bool -> string -> t -> bool
