(** Line-delimited framing over sockets, hardened for daemon life:
    every syscall retries [EINTR] (the daemon runs with live SIGTERM
    handlers) and writes never raise [SIGPIPE] ({!ignore_sigpipe} is
    installed by both the server and the client entry points, so a peer
    that disconnects mid-response surfaces as [EPIPE], an exception,
    instead of killing the process). *)

val retry_eintr : (unit -> 'a) -> 'a
(** Re-run [f] until it completes without [Unix.EINTR]. *)

val ignore_sigpipe : unit -> unit
(** Idempotent; no-op on platforms without [SIGPIPE]. *)

type conn
(** A buffered, line-framed view over one socket. *)

val conn : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

val recv_line : ?timeout_s:float -> conn -> [ `Line of string | `Eof | `Timeout ]
(** Next LF-terminated line (terminator stripped).  Blocks without
    [timeout_s]; with it, waits at most that long for the next byte.
    A final unterminated line before EOF is delivered as a [`Line]. *)

val send_line : conn -> string -> (unit, string) result
(** Write [s ^ "\n"] completely.  [Error] (not an exception) on a
    disconnected peer ([EPIPE]/[ECONNRESET]) or any other write
    failure. *)

val shutdown : conn -> unit
(** Half-close both directions so a blocked {!recv_line} on another
    thread sees EOF; never raises. *)

val close : conn -> unit
(** Close the descriptor; never raises, idempotent enough for
    shutdown races. *)
