open Gbtl

type t = { lock : Mutex.t; mutable graphs : (string * float Smatrix.t) list }

let create () = { lock = Mutex.create (); graphs = [] }

let load t ~name ~spec ~symmetrize =
  match Graph_spec.load_fp64 spec ~symmetrize with
  | Error e -> Error e
  | Ok m ->
    Mutex.protect t.lock (fun () ->
        if List.mem_assoc name t.graphs then
          Error (Printf.sprintf "graph %S is already loaded" name)
        else begin
          t.graphs <- (name, m) :: t.graphs;
          Ok m
        end)

let update t ~name ~batch =
  Mutex.protect t.lock (fun () ->
      match List.assoc_opt name t.graphs with
      | None -> Error (Printf.sprintf "no graph named %S" name)
      | Some m -> (
        let nr = Smatrix.nrows m and nc = Smatrix.ncols m in
        match
          List.find_opt
            (fun (r, c, _) -> r < 0 || r >= nr || c < 0 || c >= nc)
            batch
        with
        | Some (r, c, _) ->
          Error
            (Printf.sprintf "edge (%d, %d) out of range for %dx%d graph" r c
               nr nc)
        | None ->
          (* Copy-on-write: sessions computing against the old matrix
             keep it untouched; the name is rebound to the edited copy
             so only later [find]s observe the batch. *)
          let m' = Smatrix.of_coo Gbtl.Dtype.FP64 nr nc (Smatrix.to_coo m) in
          let additions = ref 0 and deletions = ref 0 in
          List.iter
            (fun (r, c, v) ->
              match v with
              | Some v ->
                incr additions;
                Smatrix.set m' r c v
              | None ->
                incr deletions;
                Smatrix.remove m' r c)
            batch;
          t.graphs <- (name, m') :: List.remove_assoc name t.graphs;
          Ok (m', !additions, !deletions)))

let find t name = Mutex.protect t.lock (fun () -> List.assoc_opt name t.graphs)

let names t =
  Mutex.protect t.lock (fun () ->
      List.sort compare
        (List.map
           (fun (name, m) -> (name, Smatrix.nrows m, Smatrix.nvals m))
           t.graphs))
