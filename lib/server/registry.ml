open Gbtl

type t = { lock : Mutex.t; mutable graphs : (string * float Smatrix.t) list }

let create () = { lock = Mutex.create (); graphs = [] }

let load t ~name ~spec ~symmetrize =
  match Graph_spec.load_fp64 spec ~symmetrize with
  | Error e -> Error e
  | Ok m ->
    Mutex.protect t.lock (fun () ->
        if List.mem_assoc name t.graphs then
          Error (Printf.sprintf "graph %S is already loaded" name)
        else begin
          t.graphs <- (name, m) :: t.graphs;
          Ok m
        end)

let find t name = Mutex.protect t.lock (fun () -> List.assoc_opt name t.graphs)

let names t =
  Mutex.protect t.lock (fun () ->
      List.sort compare
        (List.map
           (fun (name, m) -> (name, Smatrix.nrows m, Smatrix.nvals m))
           t.graphs))
