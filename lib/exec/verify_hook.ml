(* Inversion point for the static plan verifier.  lib/analysis (which
   depends on this library, so it cannot be called directly) installs a
   checker here; the rewrite pipeline invokes it on the freshly lowered
   plan and again after every pass, and the executor invokes it once
   more just before scheduling.  A checker signals a defect by raising —
   the exception propagates out of Rewrite.run / Exec.run_plan, so a
   fusion pass that breaks shape/dtype inference is rejected as a
   miscompile instead of executing. *)

let hook : (Plan.t -> stage:string -> unit) option ref = ref None

let install f = hook := Some f
let uninstall () = hook := None
let installed () = Option.is_some !hook

let run plan ~stage =
  match !hook with None -> () | Some f -> f plan ~stage
