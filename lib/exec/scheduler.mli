(** Domain-parallel plan execution.  Ready DAG nodes run concurrently on
    a small pool of OCaml domains (work queue + mutex/condvar); with one
    domain the scheduler degrades to a deterministic sequential walk of
    the topological order.  Either way every node is a pure function of
    its dependency values, so results are identical. *)

val set_domains : int -> unit
(** Override the worker-domain count for this process (clamped to
    [>= 1]); takes precedence over [OGB_DOMAINS]. *)

val clear_domains_override : unit -> unit

val domain_count : unit -> int
(** Domains the next run will use: 1 under {!Ogb.Exec_hook.force_sequential}
    (MiniVM re-entrancy), else the {!set_domains} override, else
    [OGB_DOMAINS], else [min 4 (Domain.recommended_domain_count ())]. *)

val run : Plan.t -> Plan.value * Trace.t
(** Execute the (already-optimized) plan and return the root value plus
    the execution trace.  Re-raises the first node failure. *)
