(** Domain-parallel plan execution.  Ready DAG nodes run concurrently on
    a small pool of OCaml domains (work queue + mutex/condvar); with one
    domain the scheduler degrades to a deterministic sequential walk of
    the topological order.  Either way every node is a pure function of
    its dependency values, so results are identical.

    Failure containment: the first node failure cancels every queued
    node, the pool drains and joins, and {!run} re-executes the plan
    sequentially before giving up (the trace's [degraded] flag records
    this).  Failures that survive both attempts surface as located
    {!Node_error} values. *)

exception Node_error of { id : int; label : string; error : exn }
(** A node failure located by plan-node id and operator label. *)

val set_domains : int -> unit
(** Override the worker-domain count for this process (clamped to
    [>= 1]); takes precedence over [OGB_DOMAINS]. *)

val clear_domains_override : unit -> unit

val domain_count : unit -> int
(** Domains the next run will use: 1 under {!Ogb.Exec_hook.force_sequential}
    (MiniVM re-entrancy), else the {!set_domains} override, else
    [OGB_DOMAINS], else [min 4 (Domain.recommended_domain_count ())]. *)

val run : Plan.t -> Plan.value * Trace.t
(** Execute the (already-optimized) plan and return the root value plus
    the execution trace.  A parallel failure triggers one sequential
    re-execution; if that fails too the located {!Node_error} is
    re-raised. *)
