(* Executes a plan's ready nodes concurrently on a small pool of OCaml
   domains (work queue + mutex/condvar — no external dependencies), or
   in deterministic sequential topological order when one domain is
   requested.  Node results are identical either way: every node is a
   pure function of its dependency values, so only the completion order
   varies.

   Failure containment: a node failure on a worker domain is recorded,
   queued nodes are abandoned and the remaining workers drain (in-flight
   siblings finish their current node — OCaml domains cannot be
   preempted — then stop), the pool is joined, and the failure surfaces
   as a located {!Node_error}.  {!run} then degrades gracefully by
   re-executing the whole plan sequentially; only if that fails too does
   the error reach the caller (where {!Exec} falls back to the blocking
   evaluator). *)

exception Node_error of { id : int; label : string; error : exn }

let () =
  Printexc.register_printer (function
    | Node_error { id; label; error } ->
      Some
        (Printf.sprintf "Node_error(n%d %s: %s)" id label
           (Printexc.to_string error))
    | _ -> None)

let now () = Unix.gettimeofday ()

(* Domain budget lives in the shared pool (lib/parallel): the scheduler
   and the chunked kernels draw from the same OGB_DOMAINS allotment
   instead of oversubscribing each other. *)
let set_domains n = Parallel.Pool.set_domains n
let clear_domains_override () = Parallel.Pool.clear_domains_override ()

let domain_count () =
  if !Ogb.Exec_hook.force_sequential then 1 else Parallel.Pool.domains ()

let nvals_of_value = function
  | Plan.V_cont c -> Ogb.Container.nvals c
  | Plan.V_scal _ -> 1

(* Feed the calibration store: every timed node execution becomes an
   (items, seconds) observation for its kernel family, measured with the
   same {!Plan.node_items} formula the planner predicts with — so
   calibrated coefficients and model predictions price the same
   quantity. *)
let observe plan n vals seconds =
  if not plan.Plan.mute_stats then begin
    let dep_nvals i = nvals_of_value vals.(i) in
    let dep_size i =
      match vals.(i) with
      | Plan.V_cont c when not (Ogb.Container.is_matrix c) ->
        Ogb.Container.size c
      | v -> nvals_of_value v
    in
    let items = Plan.node_items plan n ~dep_nvals ~dep_size in
    if items > 0 then
      Jit.Jit_stats.record_kernel_time
        ~family:(Plan.node_family plan n)
        ~items ~seconds
  end

(* Execute one node, threading the scheduler's injection points and
   locating any failure.  The fault points fire on the sequential path
   too: under a persistent fault the sequential re-run fails the same
   way and the degradation ladder continues to the blocking evaluator. *)
let exec_node plan id n vals =
  (* Bracket the node so Parallel.Pool.budget can split the chunk-level
     domain budget between concurrently running nodes: a lone node's
     kernels get the whole pool, siblings share it. *)
  Parallel.Pool.enter_node ();
  Fun.protect ~finally:Parallel.Pool.leave_node @@ fun () ->
  try
    if Fault.fire "sched.worker.slow" then Unix.sleepf 0.02;
    if Fault.fire "sched.worker.exn" then raise (Fault.Injected "sched.worker.exn");
    Plan.execute_node plan n vals
  with
  | Node_error _ as e -> raise e
  | e -> raise (Node_error { id; label = Plan.op_label n.Plan.op; error = e })

let run_sequential plan order =
  let results = Hashtbl.create 32 in
  let events = ref [] in
  List.iter
    (fun id ->
      let n = Plan.node plan id in
      let vals = Array.map (Hashtbl.find results) n.Plan.deps in
      let t0 = now () in
      let v = exec_node plan id n vals in
      let seconds = now () -. t0 in
      observe plan n vals seconds;
      events :=
        { Trace.id;
          label = Plan.op_label n.Plan.op;
          seconds;
          nvals = nvals_of_value v }
        :: !events;
      Hashtbl.replace results id v)
    order;
  (Hashtbl.find results plan.Plan.root, !events)

let run_parallel plan order ndomains =
  let total = List.length order in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let results = Hashtbl.create 32 in
  let pending = Hashtbl.create 32 in
  let dependents = Hashtbl.create 32 in
  let ready = Queue.create () in
  let completed = ref 0 in
  let failed = ref None in
  let events = ref [] in
  (* Count unique dependencies: a node whose two inputs are the same
     shared producer has one edge to wait on, not two. *)
  let uniq_deps n =
    List.sort_uniq compare (Array.to_list n.Plan.deps)
  in
  List.iter
    (fun id ->
      let n = Plan.node plan id in
      let deps = uniq_deps n in
      Hashtbl.replace pending id (List.length deps);
      List.iter (fun d -> Hashtbl.add dependents d id) deps;
      if deps = [] then Queue.push id ready)
    order;
  let finished () = !failed <> None || !completed >= total in
  let worker () =
    let running = ref true in
    while !running do
      Mutex.lock m;
      while Queue.is_empty ready && not (finished ()) do
        Condition.wait cv m
      done;
      if finished () && Queue.is_empty ready then begin
        Mutex.unlock m;
        running := false
      end
      else if Queue.is_empty ready then Mutex.unlock m
      else begin
        let id = Queue.pop ready in
        let n = Plan.node plan id in
        let vals = Array.map (Hashtbl.find results) n.Plan.deps in
        Mutex.unlock m;
        match
          let t0 = now () in
          let v = exec_node plan id n vals in
          (v, now () -. t0)
        with
        | v, seconds ->
          observe plan n vals seconds;
          Mutex.lock m;
          Hashtbl.replace results id v;
          events :=
            { Trace.id;
              label = Plan.op_label n.Plan.op;
              seconds;
              nvals = nvals_of_value v }
            :: !events;
          incr completed;
          List.iter
            (fun c ->
              let p = Hashtbl.find pending c - 1 in
              Hashtbl.replace pending c p;
              if p = 0 then Queue.push c ready)
            (Hashtbl.find_all dependents id);
          Condition.broadcast cv;
          Mutex.unlock m
        | exception e ->
          (* first failure wins; setting it makes finished() true, which
             cancels every queued node and drains the pool *)
          Jit.Jit_stats.record_sched_worker_failure ();
          Mutex.lock m;
          if !failed = None then failed := Some e;
          Condition.broadcast cv;
          Mutex.unlock m;
          running := false
      end
    done
  in
  (* Inter-op workers come from the shared pool rather than freshly
     spawned domains: whatever the pool cannot grant (busy or smaller
     than requested) the caller absorbs by draining the queue itself —
     the worker loop exits only when the plan is finished or failed. *)
  let helpers = Parallel.Pool.spawn_helpers (ndomains - 1) worker in
  worker ();
  Parallel.Pool.join helpers;
  (match !failed with Some e -> raise e | None -> ());
  (Hashtbl.find results plan.Plan.root, !events)

let run plan =
  let order = Plan.topo plan in
  let domains =
    if List.length order <= 1 then 1 else domain_count ()
  in
  let before = Jit.Jit_stats.snapshot () in
  let t0 = now () in
  let value, node_events, degraded =
    if domains = 1 then
      let v, ev = run_sequential plan order in
      (v, ev, false)
    else
      match run_parallel plan order domains with
      | v, ev -> (v, ev, false)
      | exception _ ->
        (* containment, step 1: the pool is already joined; re-execute
           the plan in deterministic sequential order.  A transient
           fault (one bad worker, a poisoned domain-local state) does
           not repeat here; a persistent one re-raises to Exec, which
           falls back to the blocking evaluator. *)
        Jit.Jit_stats.record_sched_seq_rerun ();
        let v, ev = run_sequential plan order in
        (v, ev, true)
  in
  let total_seconds = now () -. t0 in
  let after = Jit.Jit_stats.snapshot () in
  let trace =
    Trace.make ~domains ~degraded ~total_seconds ~nodes:node_events
      ~rewrites:(Plan.events plan) ~cse_merged:(Plan.cse_merged plan)
      ~schedule:plan.Plan.schedule_desc ~predicted_ns:plan.Plan.predicted_ns
      ~before ~after
  in
  (value, trace)
