open Gbtl
module C = Ogb.Container

exception Plan_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

type kind = K_vec | K_mat | K_scalar

(* Storage-layout annotation chosen by Rewrite.select_layout: which side
   of the matrix operand the kernel will walk, and (when the vector
   operand's fill is known at planning time) the push/pull direction. *)
type layout = L_default | L_csc | L_csc_pull | L_csc_push

type op =
  | Leaf of C.t
  | Transpose
  | MatMul of {
      sr : Jit.Op_spec.semiring;
      transpose_a : bool;
      transpose_b : bool;
      masked : Ogb.Expr.mask_spec option;
      layout : layout;
    }
  | Ewise of {
      kind : [ `Add | `Mult ];
      op : string;
      transpose_a : bool;
      transpose_b : bool;
    }
  | ApplyChain of { chain : Jit.Op_spec.unary list; transpose : bool }
  | EwiseApply of {
      kind : [ `Add | `Mult ];
      op : string;
      chain : Jit.Op_spec.unary list;
    }
  | EwiseMultReduce of { op : string; monoid_op : string; identity : string }
  | ReduceRows of { op : string; identity : string; transpose : bool }
  | ReduceScalar of { op : string; identity : string }
  | ExtractVec of Index_set.t
  | ExtractMat of { rows : Index_set.t; cols : Index_set.t; transpose : bool }
  | Select of Select.predicate

type node = {
  id : int;
  mutable op : op;
  mutable deps : int array;
  mutable kind : kind;
}

type t = {
  tbl : (int, node) Hashtbl.t;
  mutable next : int;
  mutable root : int;
  mutable sink_mask : Ogb.Expr.mask_spec option;
  mutable events : (string * int) list;  (* rewrite name -> firings *)
  mutable cse_merged : int;
  mutable mute_stats : bool;
      (* candidate copies the planner evaluates: rewrite passes on them
         must not pollute the global fusion counters *)
  mutable schedule_desc : string;  (* serialized schedule the planner chose *)
  mutable predicted_ns : float;  (* cost model's prediction for this plan *)
}

let node plan id = Hashtbl.find plan.tbl id
let root plan = node plan plan.root
let size plan = Hashtbl.length plan.tbl
let events plan = List.rev plan.events
let cse_merged plan = plan.cse_merged

let record_event plan name count =
  if count > 0 then plan.events <- (name, count) :: plan.events

(* -- labels (trace display and plan dumps) -- *)

let unary_names chain =
  String.concat ";" (List.map Jit.Op_spec.unary_name chain)

let kind_tag = function `Add -> "add" | `Mult -> "mult"

let layout_tag = function
  | L_default -> ""
  | L_csc -> "[a:csc]"
  | L_csc_pull -> "[a:csc][pull]"
  | L_csc_push -> "[a:csc][push]"

let op_label = function
  | Leaf c -> if C.is_matrix c then "leaf:mat" else "leaf:vec"
  | Transpose -> "transpose"
  | MatMul { sr; transpose_a; transpose_b; masked; layout } ->
    Printf.sprintf "mxm[%s.%s]%s%s%s%s" sr.Jit.Op_spec.add_op
      sr.Jit.Op_spec.mul_op
      (if transpose_a then "[Ta]" else "")
      (if transpose_b then "[Tb]" else "")
      (match masked with
      | Some { complemented = true; _ } -> "[mask~]"
      | Some _ -> "[mask]"
      | None -> "")
      (layout_tag layout)
  | Ewise { kind; op; transpose_a; transpose_b } ->
    Printf.sprintf "ewise_%s[%s]%s%s" (kind_tag kind) op
      (if transpose_a then "[Ta]" else "")
      (if transpose_b then "[Tb]" else "")
  | ApplyChain { chain; transpose } ->
    Printf.sprintf "apply[%s]%s" (unary_names chain)
      (if transpose then "[T]" else "")
  | EwiseApply { kind; op; chain } ->
    Printf.sprintf "ewise_%s_apply[%s;%s]" (kind_tag kind) op
      (unary_names chain)
  | EwiseMultReduce { op; monoid_op; identity } ->
    Printf.sprintf "ewise_mult_reduce[%s;%s/%s]" op monoid_op identity
  | ReduceRows { op; identity; transpose } ->
    Printf.sprintf "reduce_rows[%s/%s]%s" op identity
      (if transpose then "[T]" else "")
  | ReduceScalar { op; identity } ->
    Printf.sprintf "reduce_scalar[%s/%s]" op identity
  | ExtractVec _ -> "extract_vec"
  | ExtractMat { transpose; _ } ->
    if transpose then "extract_mat[T]" else "extract_mat"
  | Select _ -> "select"

(* -- candidate copies (the planner evaluates rewrite schedules on
      copies before committing one to the real plan) -- *)

(* Deep copy of the DAG structure: fresh node records (rewrite passes
   mutate them in place), shared [Leaf] containers (physical identity is
   what ties leaves to user data, and nothing mutates them).  The copy
   is marked [mute_stats] so rewriting it stays invisible to the global
   fusion counters. *)
let copy plan =
  let tbl = Hashtbl.create (Hashtbl.length plan.tbl) in
  Hashtbl.iter
    (fun id n ->
      Hashtbl.replace tbl id
        { id; op = n.op; deps = Array.copy n.deps; kind = n.kind })
    plan.tbl;
  { tbl;
    next = plan.next;
    root = plan.root;
    sink_mask = plan.sink_mask;
    events = plan.events;
    cse_merged = plan.cse_merged;
    mute_stats = true;
    schedule_desc = plan.schedule_desc;
    predicted_ns = plan.predicted_ns }

(* -- topological order (deterministic: DFS post-order from the root) -- *)

let topo plan =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      Array.iter visit (node plan id).deps;
      order := id :: !order
    end
  in
  visit plan.root;
  List.rev !order

(* Consumer counts; the sink counts as one consumer of the root. *)
let refcounts plan =
  let counts = Hashtbl.create 32 in
  let bump id =
    Hashtbl.replace counts id
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
  in
  Hashtbl.iter (fun _ n -> Array.iter bump n.deps) plan.tbl;
  bump plan.root;
  counts

(* Drop nodes unreachable from the root (after rewrites alias/absorb). *)
let drop_dead plan =
  let live = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.add live id ()) (topo plan);
  let dead =
    Hashtbl.fold
      (fun id _ acc -> if Hashtbl.mem live id then acc else id :: acc)
      plan.tbl []
  in
  List.iter (Hashtbl.remove plan.tbl) dead;
  List.length dead

(* -- shape digest (schedule-cache key) --
   Stable across runs for structurally identical plans over same-shaped
   operands: topo-renumbered ids, op labels with the layout annotation
   erased (the schedule decides layout, so it must not key the cache),
   and leaves keyed by dimensions plus a power-of-two nvals bucket — a
   PageRank iteration whose frontier drifts a few entries still hits,
   while a frontier an order of magnitude sparser (a different direction
   decision) does not. *)

let pow2_bucket x =
  let r = ref 1 in
  while !r < x do
    r := !r * 2
  done;
  !r

let shape_digest plan =
  let order = topo plan in
  let pos = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace pos id i) order;
  let b = Buffer.create 256 in
  List.iter
    (fun id ->
      let n = node plan id in
      let opk =
        match n.op with
        | Leaf c ->
          if C.is_matrix c then
            let rows, cols = C.shape c in
            Printf.sprintf "leaf:mat:%dx%d:%d" rows cols
              (pow2_bucket (max 1 (C.nvals c)))
          else
            Printf.sprintf "leaf:vec:%d:%d" (C.size c)
              (pow2_bucket (max 1 (C.nvals c)))
        | MatMul m -> op_label (MatMul { m with layout = L_default })
        | op -> op_label op
      in
      Buffer.add_string b (Printf.sprintf "%d=%s(" (Hashtbl.find pos id) opk);
      Array.iter
        (fun d ->
          Buffer.add_string b (string_of_int (Hashtbl.find pos d));
          Buffer.add_char b ',')
        n.deps;
      Buffer.add_string b ");")
    order;
  (match plan.sink_mask with
  | Some { Ogb.Expr.complemented; _ } ->
    Buffer.add_string b (if complemented then "mask~;" else "mask;")
  | None -> ());
  Digest.to_hex (Digest.string (Buffer.contents b))

(* -- cost-model descriptors --
   [node_family] names the kernel family a node will dispatch to (the
   unit the calibration store keys coefficients by); [node_items]
   estimates the entries that kernel touches, from per-dependency
   (nvals, size) figures supplied by the caller — the planner passes
   static estimates, the scheduler passes the actual dependency values,
   so predictions and observations price the same quantity. *)

let node_family plan n =
  match n.op with
  | Leaf _ -> "leaf"
  | Transpose -> "transpose"
  | MatMul { layout; transpose_a; _ } -> (
    match (node plan n.deps.(0)).kind, (node plan n.deps.(1)).kind with
    | K_mat, K_mat -> "mxm"
    | K_mat, K_vec -> (
      match layout with
      | L_csc_pull -> "mxv_pull"
      | L_csc_push -> "mxv_push"
      | _ -> if transpose_a then "mxv_push" else "mxv")
    | K_vec, K_mat -> "vxm"
    | _, _ -> "mxv")
  | Ewise _ -> if n.kind = K_mat then "ewise_m" else "ewise_v"
  | ApplyChain _ -> if n.kind = K_mat then "apply_m" else "apply_v"
  | EwiseApply _ -> "ewise_apply"
  | EwiseMultReduce _ -> "mult_reduce"
  | ReduceRows _ | ReduceScalar _ -> "reduce"
  | ExtractVec _ | ExtractMat _ -> "extract"
  | Select _ -> "select"

let node_items plan n ~dep_nvals ~dep_size =
  let nv i = max 0 (dep_nvals i) and sz i = max 1 (dep_size i) in
  match node_family plan n with
  | "leaf" -> 0
  | "mxv_pull" ->
    (* the pull gather scans every stored matrix entry *)
    nv 0
  | "mxv_push" ->
    (* the scatter walks the frontier's rows: matrix nnz × frontier fill *)
    max 1 (int_of_float (float_of_int (nv 0) *. float_of_int (nv 1)
                         /. float_of_int (sz 1)))
  | "mxv" | "vxm" | "mxm" -> nv 0 + nv 1
  | "mult_reduce" -> min (nv 0) (nv 1)
  | "ewise_v" | "ewise_m" | "ewise_apply" -> nv 0 + nv 1
  | _ -> nv 0

let pp fmt plan =
  List.iter
    (fun id ->
      let n = node plan id in
      Format.fprintf fmt "n%-3d %-40s" n.id (op_label n.op);
      if Array.length n.deps > 0 then begin
        Format.fprintf fmt " <-";
        Array.iter (fun d -> Format.fprintf fmt " n%d" d) n.deps
      end;
      if id = plan.root then Format.fprintf fmt "   (root)";
      Format.fprintf fmt "@\n")
    (topo plan);
  (match plan.sink_mask with
  | Some _ -> Format.fprintf fmt "sink mask: unpushed@\n"
  | None -> ());
  match events plan with
  | [] -> ()
  | evs ->
    Format.fprintf fmt "rewrites:";
    List.iter (fun (name, n) -> Format.fprintf fmt " %s=%d" name n) evs;
    Format.fprintf fmt "@\n"

let to_string plan = Format.asprintf "%a" pp plan

(* -- lowering: Expr.t tree -> DAG with common-subexpression sharing -- *)

let fresh plan op deps kind =
  let id = plan.next in
  plan.next <- id + 1;
  Hashtbl.replace plan.tbl id { id; op; deps; kind };
  id

(* Structural keys for hash-consing.  Only pure, cheaply-keyable ops
   participate; extract/select (closure predicates, index sets) get
   unique nodes. *)
let cse_key op deps =
  let d = String.concat "," (List.map string_of_int (Array.to_list deps)) in
  match op with
  | Transpose -> Some (Printf.sprintf "T(%s)" d)
  (* layout is excluded from the key: lowering always produces
     L_default, and select_layout runs only after CSE. *)
  | MatMul { sr; transpose_a; transpose_b; masked = None; _ } ->
    Some
      (Printf.sprintf "mxm(%s/%s/%s,%b,%b)(%s)" sr.Jit.Op_spec.add_op
         sr.Jit.Op_spec.add_identity sr.Jit.Op_spec.mul_op transpose_a
         transpose_b d)
  | Ewise { kind; op; transpose_a; transpose_b } ->
    Some
      (Printf.sprintf "ewise_%s(%s,%b,%b)(%s)" (kind_tag kind) op transpose_a
         transpose_b d)
  | ApplyChain { chain; transpose } ->
    Some (Printf.sprintf "apply(%s,%b)(%s)" (unary_names chain) transpose d)
  | ReduceRows { op; identity; transpose } ->
    Some (Printf.sprintf "rr(%s/%s,%b)(%s)" op identity transpose d)
  | _ -> None

type builder = {
  plan : t;
  keys : (string, int) Hashtbl.t;
  mutable leaves : (C.t * int) list;  (* physical identity *)
}

let shared b op deps kind =
  match cse_key op deps with
  | None -> fresh b.plan op deps kind
  | Some key -> (
    match Hashtbl.find_opt b.keys key with
    | Some id ->
      b.plan.cse_merged <- b.plan.cse_merged + 1;
      Jit.Jit_stats.record_fusion "cse";
      id
    | None ->
      let id = fresh b.plan op deps kind in
      Hashtbl.add b.keys key id;
      id)

let leaf_node b c =
  match List.find_opt (fun (c', _) -> c' == c) b.leaves with
  | Some (_, id) ->
    b.plan.cse_merged <- b.plan.cse_merged + 1;
    Jit.Jit_stats.record_fusion "cse";
    id
  | None ->
    let kind = if C.is_matrix c then K_mat else K_vec in
    let id = fresh b.plan (Leaf c) [||] kind in
    b.leaves <- (c, id) :: b.leaves;
    id

let child_kind b id = (node b.plan id).kind

let rec lower_expr b (e : Ogb.Expr.t) =
  match e with
  | Leaf c -> leaf_node b c
  | Transpose x ->
    let x' = lower_expr b x in
    shared b Transpose [| x' |] (child_kind b x')
  | MatMul { a; b = bb; sr } ->
    let a' = lower_expr b a and b' = lower_expr b bb in
    let kind =
      match child_kind b a', child_kind b b' with
      | K_mat, K_mat -> K_mat
      | _ -> K_vec
    in
    shared b
      (MatMul
         { sr;
           transpose_a = false;
           transpose_b = false;
           masked = None;
           layout = L_default })
      [| a'; b' |] kind
  | EwiseAdd { a; b = bb; op } ->
    let a' = lower_expr b a and b' = lower_expr b bb in
    shared b
      (Ewise { kind = `Add; op; transpose_a = false; transpose_b = false })
      [| a'; b' |] (child_kind b a')
  | EwiseMult { a; b = bb; op } ->
    let a' = lower_expr b a and b' = lower_expr b bb in
    shared b
      (Ewise { kind = `Mult; op; transpose_a = false; transpose_b = false })
      [| a'; b' |] (child_kind b a')
  | Apply { f; x } ->
    let x' = lower_expr b x in
    shared b
      (ApplyChain { chain = [ f ]; transpose = false })
      [| x' |] (child_kind b x')
  | ReduceRows { op; identity; x } ->
    let x' = lower_expr b x in
    shared b (ReduceRows { op; identity; transpose = false }) [| x' |] K_vec
  | ExtractVec { x; idx } ->
    let x' = lower_expr b x in
    fresh b.plan (ExtractVec idx) [| x' |] K_vec
  | ExtractMat { x; rows; cols } ->
    let x' = lower_expr b x in
    fresh b.plan (ExtractMat { rows; cols; transpose = false }) [| x' |] K_mat
  | Select { pred; x } ->
    let x' = lower_expr b x in
    fresh b.plan (Select pred) [| x' |] (child_kind b x')

let builder () =
  { plan =
      { tbl = Hashtbl.create 32;
        next = 0;
        root = -1;
        sink_mask = None;
        events = [];
        cse_merged = 0;
        mute_stats = false;
        schedule_desc = "";
        predicted_ns = 0.0 };
    keys = Hashtbl.create 32;
    leaves = [] }

let of_expr ?mask e =
  let b = builder () in
  let root = lower_expr b e in
  b.plan.root <- root;
  b.plan.sink_mask <- mask;
  record_event b.plan "cse" b.plan.cse_merged;
  b.plan

let of_expr_reduce ~op ~identity e =
  let b = builder () in
  let x = lower_expr b e in
  b.plan.root <- fresh b.plan (ReduceScalar { op; identity }) [| x |] K_scalar;
  record_event b.plan "cse" b.plan.cse_merged;
  b.plan

(* -- node execution (mirrors Expr's eager evaluator, kernel for kernel,
      so the two modes share Kernel_sig cache entries and produce
      bit-identical containers) -- *)

type value = V_cont of C.t | V_scal of float

let cont = function
  | V_cont c -> c
  | V_scal _ -> perr "expected a container, found a scalar"

let mmask_of_spec (spec : Ogb.Expr.mask_spec) =
  match spec.Ogb.Expr.container with
  | C.Mat (_, m) -> Mask.mmask ~complemented:spec.Ogb.Expr.complemented m
  | C.Vec _ -> raise (Ogb.Expr.Eval_error "matrix operation masked by a vector")

let vec_of_entries dt size entries =
  let out = Svector.create dt size in
  Svector.replace_contents out entries;
  C.Vec (dt, out)

let promote2 ca cb =
  let (Dtype.P dt) = Dtype.promote (C.dtype ca) (C.dtype cb) in
  Dtype.P dt

let check_sizes u v =
  if Svector.size u <> Svector.size v then
    raise
      (Ogb.Expr.Eval_error
         (Printf.sprintf "element-wise operation on vectors of sizes %d and %d"
            (Svector.size u) (Svector.size v)))

let execute_node _plan n (vals : value array) : value =
  match n.op with
  | Leaf c -> V_cont c
  | Transpose -> (
    match cont vals.(0) with
    | C.Mat (dt, m) -> V_cont (C.Mat (dt, Jit.Kernels.transpose_m dt m))
    | C.Vec _ as c -> V_cont c (* vector transpose is the identity *))
  | MatMul { sr; transpose_a = ta; transpose_b = tb; masked; layout } -> (
    let ca = cont vals.(0) and cb = cont vals.(1) in
    let (Dtype.P dt) = promote2 ca cb in
    let ca = Ogb.Expr.unify (Dtype.P dt) ca
    and cb = Ogb.Expr.unify (Dtype.P dt) cb in
    match ca, cb with
    | C.Mat _, C.Mat _ ->
      let ma = C.as_matrix dt ca and mb = C.as_matrix dt cb in
      let mask =
        match masked with
        | Some spec -> mmask_of_spec spec
        | None -> Mask.No_mmask
      in
      V_cont
        (C.Mat
           (dt, Jit.Kernels.mxm dt sr ~transpose_a:ta ~transpose_b:tb ~mask ma mb))
    | C.Mat _, C.Vec _ ->
      let m = C.as_matrix dt ca and v = C.as_vector dt cb in
      let out_size = if ta then Smatrix.ncols m else Smatrix.nrows m in
      (* the schedule's direction choice overrides the kernel's fill
         heuristic; both directions are bit-identical by construction *)
      let direction =
        match layout with
        | L_csc_pull -> `Pull
        | L_csc_push -> `Push
        | L_default | L_csc -> `Auto
      in
      V_cont
        (vec_of_entries dt out_size
           (Jit.Kernels.mxv dt sr ~direction ~transpose:ta m v))
    | C.Vec _, C.Mat _ ->
      let v = C.as_vector dt ca and m = C.as_matrix dt cb in
      let out_size = if tb then Smatrix.nrows m else Smatrix.ncols m in
      V_cont
        (vec_of_entries dt out_size (Jit.Kernels.vxm dt sr ~transpose:tb v m))
    | C.Vec _, C.Vec _ ->
      raise
        (Ogb.Expr.Eval_error
           "@ between two vectors (use eWiseMult + reduce for a dot product)"))
  | Ewise { kind; op; transpose_a = ta; transpose_b = tb } -> (
    let ca = cont vals.(0) and cb = cont vals.(1) in
    let (Dtype.P dt) = promote2 ca cb in
    let ca = Ogb.Expr.unify (Dtype.P dt) ca
    and cb = Ogb.Expr.unify (Dtype.P dt) cb in
    match ca, cb with
    | C.Vec _, C.Vec _ ->
      let u = C.as_vector dt ca and v = C.as_vector dt cb in
      check_sizes u v;
      V_cont
        (vec_of_entries dt (Svector.size u) (Jit.Kernels.ewise_v kind dt ~op u v))
    | C.Mat _, C.Mat _ ->
      let ma = C.as_matrix dt ca and mb = C.as_matrix dt cb in
      V_cont
        (C.Mat
           ( dt,
             Jit.Kernels.ewise_m kind dt ~op ~transpose_a:ta ~transpose_b:tb ma
               mb ))
    | C.Vec _, C.Mat _ | C.Mat _, C.Vec _ ->
      raise
        (Ogb.Expr.Eval_error
           "element-wise operation between a vector and a matrix"))
  | ApplyChain { chain; transpose } -> (
    match cont vals.(0) with
    | C.Vec (dt, v) -> (
      match chain with
      | [ f ] ->
        V_cont (vec_of_entries dt (Svector.size v) (Jit.Kernels.apply_v dt f v))
      | chain ->
        V_cont
          (vec_of_entries dt (Svector.size v)
             (Jit.Kernels.apply_chain_v dt ~chain v)))
    | C.Mat (dt, m) -> (
      match chain with
      | [] -> perr "empty apply chain"
      | f :: rest ->
        let out = Jit.Kernels.apply_m dt f ~transpose m in
        (* remaining stages map the fresh (node-private) result in place,
           like the blocking evaluator's temp-fusion *)
        List.iter
          (fun f ->
            Smatrix.map_inplace out
              ~f:(Jit.Op_spec.instantiate_unary dt f).Unaryop.f)
          rest;
        V_cont (C.Mat (dt, out))))
  | EwiseApply { kind; op; chain } ->
    let ca = cont vals.(0) and cb = cont vals.(1) in
    let (Dtype.P dt) = promote2 ca cb in
    let ca = Ogb.Expr.unify (Dtype.P dt) ca
    and cb = Ogb.Expr.unify (Dtype.P dt) cb in
    let u = C.as_vector dt ca and v = C.as_vector dt cb in
    check_sizes u v;
    V_cont
      (vec_of_entries dt (Svector.size u)
         (Jit.Kernels.ewise_fused_v kind dt ~op ~chain u v))
  | EwiseMultReduce { op; monoid_op; identity } ->
    let ca = cont vals.(0) and cb = cont vals.(1) in
    let (Dtype.P dt) = promote2 ca cb in
    let ca = Ogb.Expr.unify (Dtype.P dt) ca
    and cb = Ogb.Expr.unify (Dtype.P dt) cb in
    let u = C.as_vector dt ca and v = C.as_vector dt cb in
    check_sizes u v;
    V_scal
      (Dtype.to_float dt
         (Jit.Kernels.ewise_mult_reduce_v dt ~op ~monoid_op ~identity u v))
  | ReduceRows { op; identity; transpose } -> (
    match cont vals.(0) with
    | C.Mat (dt, m) ->
      let size = if transpose then Smatrix.ncols m else Smatrix.nrows m in
      V_cont
        (vec_of_entries dt size
           (Jit.Kernels.reduce_rows dt ~op ~identity ~transpose m))
    | C.Vec _ -> raise (Ogb.Expr.Eval_error "reduce_rows on a vector"))
  | ReduceScalar { op; identity } -> (
    match cont vals.(0) with
    | C.Vec (dt, v) ->
      V_scal (Dtype.to_float dt (Jit.Kernels.reduce_v_scalar dt ~op ~identity v))
    | C.Mat (dt, m) ->
      V_scal (Dtype.to_float dt (Jit.Kernels.reduce_m_scalar dt ~op ~identity m)))
  | ExtractVec idx -> (
    match cont vals.(0) with
    | C.Vec (dt, v) ->
      let out = Svector.create dt (Index_set.length idx (Svector.size v)) in
      Extract.vector ~out v idx;
      V_cont (C.Vec (dt, out))
    | C.Mat _ -> raise (Ogb.Expr.Eval_error "vector extract on a matrix"))
  | ExtractMat { rows; cols; transpose } -> (
    match cont vals.(0) with
    | C.Mat (dt, m) ->
      let nrows = if transpose then Smatrix.ncols m else Smatrix.nrows m in
      let ncols = if transpose then Smatrix.nrows m else Smatrix.ncols m in
      let out =
        Smatrix.create dt (Index_set.length rows nrows)
          (Index_set.length cols ncols)
      in
      Extract.matrix ~out ~transpose m rows cols;
      V_cont (C.Mat (dt, out))
    | C.Vec _ -> raise (Ogb.Expr.Eval_error "matrix extract on a vector"))
  | Select pred -> (
    match cont vals.(0) with
    | C.Vec (dt, v) ->
      let out = Svector.create dt (Svector.size v) in
      Select.vector pred ~out v;
      V_cont (C.Vec (dt, out))
    | C.Mat (dt, m) ->
      let out = Smatrix.create dt (Smatrix.nrows m) (Smatrix.ncols m) in
      Select.matrix pred ~out m;
      V_cont (C.Mat (dt, out)))
