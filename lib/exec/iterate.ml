open Gbtl

type 's codec = { encode : 's -> string; decode : string -> 's }

let marshal_codec () =
  { encode = (fun s -> Marshal.to_string s []);
    decode = (fun b -> Marshal.from_string b 0) }

type 's outcome = {
  state : 's;
  iters : int;
  resumed_from : int;
  converged : bool;
}

let default_store () = Tile_store.open_store "ckpt"

(* Checkpoint blob format version; bumped whenever the layout below
   changes so older blobs fail decode and are dropped, never misread. *)
let magic = "ogb-ckpt/v2"

(* One checkpoint blob: format magic + job fingerprint + iteration
   index + encoded state.  The store verifies the checksum sidecar
   before these bytes are decoded; the fingerprint then proves the
   checkpoint belongs to THIS job — checkpoints are keyed only by a
   caller-supplied name in a shared store, so a stale or foreign blob
   (same name, different graph/run/state shape) must read as "no
   checkpoint", not be resumed into out-of-bounds indexing. *)
let save store ~name ~fingerprint ~iter ~(codec : _ codec) state =
  let blob =
    Marshal.to_string (magic, fingerprint, iter, codec.encode state) []
  in
  match Tile_store.put store ~key:name blob with
  | Ok () ->
    Tile_stats.record_ckpt_save ();
    Tile_stats.set_ckpt_generation iter
  | Error _ -> ()  (* counted by the store; the loop goes on *)
  | exception Fault.Injected _ -> Tile_stats.record_write_failure ()

let load store ~name ~fingerprint ~(codec : _ codec) =
  let stale () =
    (* verified bytes that are not this job's checkpoint (stale codec,
       old format, foreign fingerprint) — drop them and start fresh *)
    Tile_store.delete store ~key:name;
    Tile_stats.record_quarantine ();
    None
  in
  match Tile_store.get store ~key:name with
  | exception Fault.Injected _ -> None
  | `Missing | `Corrupt -> None
  | `Ok blob -> (
    match (Marshal.from_string blob 0 : string * string * int * string) with
    | m, fp, iter, enc when m = magic && fp = fingerprint && iter >= 1 -> (
      match codec.decode enc with
      | state -> Some (iter, state)
      | exception _ -> stale ())
    | _ -> stale ()
    | exception _ -> stale ())

let clear ?store ~name () =
  let store = match store with Some s -> s | None -> default_store () in
  Tile_store.delete store ~key:name

let run ?store ?(every = 1) ?(keep = false) ?(fingerprint = "") ~name ~codec
    ~init ~step ~max_iters () =
  let store = match store with Some s -> s | None -> default_store () in
  let every = max 1 every in
  let start_iter, state0, resumed_from =
    match load store ~name ~fingerprint ~codec with
    | Some (iter, state) ->
      Tile_stats.record_ckpt_resume ();
      Tile_stats.set_ckpt_generation iter;
      (iter + 1, state, iter)
    | None -> (1, init (), 0)
  in
  let state = ref state0 in
  let iters = ref (start_iter - 1) in
  let converged = ref false in
  (try
     for i = start_iter to max_iters do
       iters := i;
       match step ~iter:i !state with
       | `Done s ->
         state := s;
         converged := true;
         raise Exit
       | `Continue s ->
         state := s;
         if i mod every = 0 then
           save store ~name ~fingerprint ~iter:i ~codec s
     done
   with Exit -> ());
  if !converged then begin
    if keep then save store ~name ~fingerprint ~iter:!iters ~codec !state
    else Tile_store.delete store ~key:name
  end
  else if !iters >= start_iter then
    (* ran out of budget: persist the newest state so a relaunch
       continues instead of restarting *)
    save store ~name ~fingerprint ~iter:!iters ~codec !state;
  { state = !state; iters = !iters; resumed_from; converged = !converged }
