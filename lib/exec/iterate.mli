(** Checkpointed iteration: a driver for convergence loops (PageRank,
    label propagation, …) that persists its state every few iterations
    through the crash-safe {!Gbtl.Tile_store} (atomic write + checksum
    sidecar) and, when relaunched after a crash, resumes from the last
    good checkpoint instead of iteration 0.

    Crash model: the step function dying (exception, process kill)
    leaves the newest completed checkpoint on disk; a corrupt or
    torn checkpoint fails its checksum on reload, is quarantined, and
    the run falls back to [init] — a bad checkpoint can delay a run,
    never wreck it.  Checkpoint I/O failures (device full, injected
    faults) are contained and counted in {!Gbtl.Tile_stats}; the
    iteration itself never stops because a checkpoint could not be
    written. *)

type 's codec = { encode : 's -> string; decode : string -> 's }

val marshal_codec : unit -> 's codec
(** [Marshal]-based codec — safe here because checkpoints are verified
    against their checksum sidecar before the bytes reach
    [Marshal.from_string]. *)

type 's outcome = {
  state : 's;
  iters : int;  (** iterations reflected in [state] (total, both runs) *)
  resumed_from : int;  (** checkpoint generation resumed from; 0 = fresh *)
  converged : bool;
}

val run :
  ?store:Gbtl.Tile_store.t ->
  ?every:int ->
  ?keep:bool ->
  ?fingerprint:string ->
  name:string ->
  codec:'s codec ->
  init:(unit -> 's) ->
  step:(iter:int -> 's -> [ `Continue of 's | `Done of 's ]) ->
  max_iters:int ->
  unit ->
  's outcome
(** [run ~name ~codec ~init ~step ~max_iters ()] iterates
    [step ~iter state] from [iter = 1], checkpointing the state every
    [every] (default 1) completed iterations under [name] in [store]
    (default: the shared ["ckpt"] store under
    {!Gbtl.Tile_store.root_dir}).  A fresh run starts from [init ()]; a
    relaunch finds the newest verified checkpoint and continues after
    it.  On [`Done] the checkpoint is deleted unless [keep] is true
    (the run is over; a later identically-named run should start
    fresh); on hitting [max_iters] the newest state is checkpointed so
    a relaunch continues the loop.

    [fingerprint] (default [""]) identifies the job: state shape,
    graph dimensions, algorithm parameters — whatever makes a
    checkpoint safe to resume.  It is marshalled into every blob and
    compared on load; checkpoints live in a shared store keyed only by
    [name], so a blob whose fingerprint differs (a stale run, a
    different graph under the same name) is deleted and the run starts
    from [init ()] instead of resuming foreign state. *)

val clear : ?store:Gbtl.Tile_store.t -> name:string -> unit -> unit
(** Drop [name]'s checkpoint (tests, or explicit fresh starts). *)
