type node_event = { id : int; label : string; seconds : float; nvals : int }

type t = {
  domains : int;
  degraded : bool;
  total_seconds : float;
  nodes : node_event list;
  rewrites : (string * int) list;
  cse_merged : int;
  schedule : string;
  predicted_ns : float;
  lookups : int;
  cache_hits : int;
  compiles : int;
}

let make ~domains ~degraded ~total_seconds ~nodes ~rewrites ~cse_merged
    ~schedule ~predicted_ns ~before ~after =
  let d f = f after - f before in
  { domains;
    degraded;
    total_seconds;
    nodes = List.sort (fun a b -> compare a.id b.id) nodes;
    rewrites;
    cse_merged;
    schedule;
    predicted_ns;
    lookups = d (fun (s : Jit.Jit_stats.snapshot) -> s.lookups);
    cache_hits =
      d (fun (s : Jit.Jit_stats.snapshot) -> s.memory_hits + s.disk_hits);
    compiles = d (fun (s : Jit.Jit_stats.snapshot) -> s.compiles) }

let pp fmt t =
  Format.fprintf fmt "execution: %d node%s on %d domain%s in %.6fs%s@\n"
    (List.length t.nodes)
    (if List.length t.nodes = 1 then "" else "s")
    t.domains
    (if t.domains = 1 then "" else "s")
    t.total_seconds
    (if t.degraded then " (degraded: sequential re-run after worker failure)"
     else "");
  Format.fprintf fmt "kernel cache: %d lookups, %d hits, %d compiles@\n"
    t.lookups t.cache_hits t.compiles;
  if t.schedule <> "" then
    Format.fprintf fmt "schedule: %s (predicted %.3fms, measured %.3fms)@\n"
      t.schedule (t.predicted_ns /. 1e6) (t.total_seconds *. 1e3);
  (match t.rewrites with
  | [] -> ()
  | rs ->
    Format.fprintf fmt "rewrites:";
    List.iter (fun (name, n) -> Format.fprintf fmt " %s=%d" name n) rs;
    Format.fprintf fmt "@\n");
  List.iter
    (fun e ->
      Format.fprintf fmt "  n%-3d %-40s %.6fs  nvals=%d@\n" e.id e.label
        e.seconds e.nvals)
    t.nodes

let to_string t = Format.asprintf "%a" pp t
