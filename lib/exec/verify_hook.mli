(** Static-verifier hook.

    The analysis library sits above exec in the build graph, so the
    rewrite pipeline cannot call it directly; instead analysis installs
    a checker here and exec invokes it at every stage:

    - ["lower"] — on the freshly lowered plan, before any rewrite;
    - after each pass: ["sink_transpose"], ["apply_chain"],
      ["apply_ewise"], ["mult_reduce"], ["push_mask"],
      ["select_layout"];
    - ["candidate"] — on every planner candidate after its rewrite
      combination, and ["candidate-final"] — on the same candidate after
      the direction choice pinned its layouts (a raise rejects the
      candidate, not the pipeline);
    - ["pre-schedule"] — in {!Exec.run_plan}, right before the domain
      scheduler starts.

    A checker reports a defect by raising; the exception aborts the
    pipeline, rejecting the rewrite as a miscompile before any kernel
    runs. *)

val install : (Plan.t -> stage:string -> unit) -> unit
val uninstall : unit -> unit
val installed : unit -> bool

val run : Plan.t -> stage:string -> unit
(** No-op when nothing is installed. *)
