(* Cost-model-driven plan optimizer.

   Replaces the fixed greedy pipeline call with a bounded search over
   candidate schedules: fusion-rule subsets × per-node pull/push
   direction choices, priced by {!Cost.Model} over static cardinality
   estimates.  Every candidate is materialized as a {!Plan.copy}, run
   through {!Rewrite.run_with}, and re-checked by the installed
   {!Verify_hook} before its schedule can be adopted — a candidate the
   verifier rejects is discarded and counted, never committed.

   Chosen schedules are cached by shape digest × calibration generation
   (× the format/fusion feature toggles), so structurally recurring
   plans — iterative algorithms, the serve daemon's steady state — skip
   the search entirely.  OGB_SCHEDULE or a programmatic {!pin}
   short-circuits everything for A/B benching. *)

module Sched = Cost.Schedule

(* Test hook: mutate a candidate copy between the rewrite and the final
   verify gate, proving shape-changing candidates are rejected. *)
let candidate_tamper : (Plan.t -> unit) option ref = ref None

(* -- counters (doctor / analyze / daemon health) -- *)

let searches = Atomic.make 0
let cache_hits = Atomic.make 0
let pinned_plans = Atomic.make 0
let candidates_priced = Atomic.make 0
let candidates_rejected = Atomic.make 0

let counters () =
  [ ("searches", Atomic.get searches);
    ("cache_hits", Atomic.get cache_hits);
    ("pinned", Atomic.get pinned_plans);
    ("candidates", Atomic.get candidates_priced);
    ("rejected", Atomic.get candidates_rejected) ]

let reset_counters () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ searches; cache_hits; pinned_plans; candidates_priced;
      candidates_rejected ]

(* -- pinning -- *)

let pin_ref = ref None
let pin s = pin_ref := s

let pinned () =
  match !pin_ref with Some _ as s -> s | None -> Sched.of_env ()

let default_cap = 96

let plan_cap () =
  match Sys.getenv_opt "OGB_PLAN_CAP" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> default_cap)
  | None -> default_cap

(* -- static cardinality estimates --
   One (nvals, size) pair per node, propagated in topo order from the
   leaves' exact figures.  Matrices carry their dimensions so Mat×Vec
   output sizes are exact; everything else degrades gracefully — the
   only estimate the search is sensitive to is the fill ratio feeding a
   transposed Mat×Vec, and there the leaf numbers are exact. *)

type est = { nv : int; sz : int; dims : (int * int) option }

let unknown = { nv = 1; sz = 1; dims = None }

let estimates plan =
  let tbl = Hashtbl.create 32 in
  let est_of id = try Hashtbl.find tbl id with Not_found -> unknown in
  List.iter
    (fun id ->
      let n = Plan.node plan id in
      let dep i = est_of n.Plan.deps.(i) in
      let e =
        match n.Plan.op with
        | Plan.Leaf c ->
          if Ogb.Container.is_matrix c then
            let rows, cols = Ogb.Container.shape c in
            let nv = Ogb.Container.nvals c in
            { nv; sz = max 1 nv; dims = Some (rows, cols) }
          else
            { nv = Ogb.Container.nvals c;
              sz = max 1 (Ogb.Container.size c);
              dims = None }
        | Plan.Transpose ->
          let d = dep 0 in
          { d with
            dims =
              (match d.dims with Some (r, c) -> Some (c, r) | None -> None) }
        | Plan.MatMul { transpose_a; transpose_b; _ } -> (
          let a = dep 0 and b = dep 1 in
          let ka = (Plan.node plan n.Plan.deps.(0)).Plan.kind
          and kb = (Plan.node plan n.Plan.deps.(1)).Plan.kind in
          match ka, kb with
          | Plan.K_mat, Plan.K_vec ->
            let out_sz =
              match a.dims with
              | Some (r, c) -> if transpose_a then c else r
              | None -> b.sz
            in
            let deg = max 1 (a.nv / max 1 b.sz) in
            { nv = min (max 1 out_sz) (max 1 (b.nv * deg));
              sz = max 1 out_sz;
              dims = None }
          | Plan.K_vec, Plan.K_mat ->
            let out_sz =
              match b.dims with
              | Some (r, c) -> if transpose_b then r else c
              | None -> a.sz
            in
            let deg = max 1 (b.nv / max 1 a.sz) in
            { nv = min (max 1 out_sz) (max 1 (a.nv * deg));
              sz = max 1 out_sz;
              dims = None }
          | _, _ ->
            let dims =
              match a.dims, b.dims with
              | Some (ar, ac), Some (br, bc) ->
                let ar', _ = if transpose_a then (ac, ar) else (ar, ac) in
                let _, bc' = if transpose_b then (bc, br) else (br, bc) in
                Some (ar', bc')
              | _ -> None
            in
            { nv = a.nv + b.nv; sz = max 1 (a.nv + b.nv); dims })
        | Plan.Ewise { kind; _ } | Plan.EwiseApply { kind; _ } ->
          let a = dep 0 and b = dep 1 in
          let nv =
            match kind with
            | `Add -> min (max a.sz b.sz) (a.nv + b.nv)
            | `Mult -> min a.nv b.nv
          in
          { nv = max 1 nv; sz = max a.sz b.sz; dims = a.dims }
        | Plan.EwiseMultReduce _ | Plan.ReduceScalar _ ->
          { nv = 1; sz = 1; dims = None }
        | Plan.ReduceRows { transpose; _ } ->
          let a = dep 0 in
          let out_sz =
            match a.dims with
            | Some (r, c) -> if transpose then c else r
            | None -> a.sz
          in
          { nv = min (max 1 out_sz) (max 1 a.nv); sz = max 1 out_sz;
            dims = None }
        | Plan.ApplyChain _ | Plan.Select _ | Plan.ExtractVec _
        | Plan.ExtractMat _ ->
          dep 0
      in
      Hashtbl.replace tbl id e)
    (Plan.topo plan);
  tbl

(* -- pricing -- *)

let node_cost plan ests n =
  let dep_est i =
    try Hashtbl.find ests n.Plan.deps.(i) with Not_found -> unknown
  in
  let items =
    Plan.node_items plan n
      ~dep_nvals:(fun i -> (dep_est i).nv)
      ~dep_size:(fun i -> (dep_est i).sz)
  in
  Cost.Model.node_ns
    { Cost.Model.family = Plan.node_family plan n; items; csc_items = 0;
      fresh_compile = false }

let price_with plan ests =
  List.fold_left
    (fun acc id -> acc +. node_cost plan ests (Plan.node plan id))
    0.0 (Plan.topo plan)

let price plan = price_with plan (estimates plan)

(* -- per-node direction choice --
   For every CSC-dispatched Mat×Vec of a rewritten candidate, price the
   pull gather (work ~ matrix nnz) against the push scatter (work ~
   nnz × operand fill) with the calibrated coefficients and pin the
   cheaper direction when it disagrees with what [Auto] would do.  The
   candidate's annotation is updated so the final pricing sees the
   chosen kernel family.  Vectors below the kernel heuristic's size
   floor are never pinned: there the one-off CSC build and other fixed
   overheads dominate, which a linear-in-items model cannot rank. *)

let pin_floor = 32

let choose_directions cand ests sched =
  List.fold_left
    (fun sched id ->
      let n = Plan.node cand id in
      match n.Plan.op with
      | Plan.MatMul
          ({ transpose_a = true;
             layout = Plan.L_csc | Plan.L_csc_pull | Plan.L_csc_push;
             _ } as m) ->
        let e i =
          try Hashtbl.find ests n.Plan.deps.(i) with Not_found -> unknown
        in
        let a = e 0 and b = e 1 in
        if b.sz < pin_floor then sched
        else
        let pull_ns =
          Cost.Model.node_ns
            { Cost.Model.family = "mxv_pull"; items = a.nv; csc_items = 0;
              fresh_compile = false }
        in
        let push_items =
          max 1
            (int_of_float
               (float_of_int a.nv *. float_of_int b.nv
               /. float_of_int (max 1 b.sz)))
        in
        let push_ns =
          Cost.Model.node_ns
            { Cost.Model.family = "mxv_push"; items = push_items;
              csc_items = 0; fresh_compile = false }
        in
        let choice = if pull_ns <= push_ns then Sched.Pull else Sched.Push in
        let current =
          match m.layout with
          | Plan.L_csc_pull -> Some Sched.Pull
          | Plan.L_csc_push -> Some Sched.Push
          | _ -> None
        in
        n.Plan.op <-
          Plan.MatMul
            { m with
              layout =
                (if choice = Sched.Pull then Plan.L_csc_pull
                 else Plan.L_csc_push) };
        if current = Some choice then sched
        else Sched.with_node_layout sched n.Plan.id choice
      | _ -> sched)
    sched (Plan.topo cand)

(* -- candidate evaluation --
   Copy, rewrite under the candidate schedule, let the test tamper hook
   strike, then re-check through the installed verifier: any exception
   (a Verify_error, or a genuinely broken rewrite) rejects the
   candidate.  Returns the schedule extended with the direction pins,
   the predicted cost, and a per-fusion-family cost breakdown used for
   the branch-and-bound bound. *)

let affected_families = function
  | "apply_chain" -> [ "apply_v"; "apply_m" ]
  | "apply_ewise" -> [ "ewise_apply" ]
  | "mult_reduce" -> [ "mult_reduce" ]
  | _ -> []

let eval_candidate plan base_sched =
  Atomic.incr candidates_priced;
  try
    let cand = Plan.copy plan in
    Rewrite.run_with ~schedule:base_sched cand;
    (match !candidate_tamper with Some f -> f cand | None -> ());
    Verify_hook.run cand ~stage:"candidate";
    let ests = estimates cand in
    let sched = choose_directions cand ests base_sched in
    (* the direction choice rewrote layout annotations: re-verify (and
       re-run the effect analysis on) the candidate the pricing sees *)
    Verify_hook.run cand ~stage:"candidate-final";
    let per_family = Hashtbl.create 8 in
    let total =
      List.fold_left
        (fun acc id ->
          let n = Plan.node cand id in
          let c = node_cost cand ests n in
          let fam = Plan.node_family cand n in
          Hashtbl.replace per_family fam
            (c +. try Hashtbl.find per_family fam with Not_found -> 0.0);
          acc +. c)
        0.0 (Plan.topo cand)
    in
    let affected rule =
      List.fold_left
        (fun acc fam ->
          acc +. try Hashtbl.find per_family fam with Not_found -> 0.0)
        0.0 (affected_families rule)
    in
    Some (Sched.canonical sched, total, affected)
  with _ ->
    Atomic.incr candidates_rejected;
    None

(* -- schedule search --
   Branch-and-bound over the fusion-rule toggles (every undecided rule
   runs enabled, i.e. each DFS node prices the greedy extension of its
   partial assignment).  Flipping a rule off replaces that rule's fused
   nodes with unfused ones whose cost is at least zero, so a valid
   optimistic bound for a subtree is the parent's cost minus the total
   cost its undecided rules' fused nodes carry — with uncalibrated
   (monotone) coefficients the bound prunes everything below the greedy
   root, and the search pays exactly one candidate.  Past the node cap
   the fallback prices greedy plus each single-rule flip (lookahead 1).
   Direction pins ride along inside every candidate either way. *)

let search plan =
  Atomic.incr searches;
  let best = ref (Sched.default, infinity) in
  let consider = function
    | Some (s, c, _) when c < snd !best -> best := (s, c)
    | _ -> ()
  in
  if Plan.size plan > plan_cap () then begin
    consider (eval_candidate plan Sched.default);
    List.iter
      (fun r ->
        consider (eval_candidate plan (Sched.with_rule Sched.default r false)))
      Sched.fusion_rules
  end
  else begin
    let rec dfs sched undecided =
      match eval_candidate plan sched with
      | None -> ()
      | Some (s, c, affected) ->
        if c < snd !best then best := (s, c);
        let rec branch = function
          | [] -> ()
          | r :: rest ->
            let saving =
              List.fold_left (fun a r' -> a +. affected r') 0.0 (r :: rest)
            in
            if c -. saving < snd !best then
              dfs (Sched.with_rule sched r false) rest;
            branch rest
        in
        branch undecided
    in
    dfs Sched.default Sched.fusion_rules
  end;
  if snd !best = infinity then (Sched.default, 0.0) else !best

(* -- schedule cache -- *)

let cache : (string, Sched.t * float) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let max_cache = 256

let cache_key plan =
  Printf.sprintf "%s|g%d|f%b|u%b" (Plan.shape_digest plan)
    (Cost.Calibration.generation ())
    (Gbtl.Format_stats.enabled ())
    (Ogb.Expr.fusion ())

let cache_find key =
  Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache key)

let cache_store key v =
  Mutex.protect cache_lock (fun () ->
      if Hashtbl.length cache >= max_cache then Hashtbl.reset cache;
      Hashtbl.replace cache key v)

let cache_size () = Mutex.protect cache_lock (fun () -> Hashtbl.length cache)
let clear_cache () = Mutex.protect cache_lock (fun () -> Hashtbl.reset cache)

(* -- entry point -- *)

let commit plan sched predicted =
  Rewrite.run_with ~schedule:sched plan;
  plan.Plan.schedule_desc <- Sched.to_string sched;
  plan.Plan.predicted_ns <-
    (if predicted > 0.0 then predicted else price plan)

let optimize plan =
  match pinned () with
  | Some sched ->
    Atomic.incr pinned_plans;
    commit plan sched 0.0
  | None ->
    if Plan.size plan <= 2 then
      (* leaf + root: nothing to search *)
      commit plan Sched.default 0.0
    else begin
      let key = cache_key plan in
      match cache_find key with
      | Some (sched, predicted) ->
        Atomic.incr cache_hits;
        commit plan sched predicted
      | None ->
        let sched, predicted = search plan in
        cache_store key (sched, predicted);
        commit plan sched predicted
    end
