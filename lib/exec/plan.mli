(** Plan IR for the nonblocking engine: an [Expr.t] tree plus its
    assignment sink lowered into an explicit DAG.  Structurally equal
    subtrees (and physically equal leaf containers) become shared nodes,
    so a value referenced twice in the source expression is computed
    once.  The optimizer ({!Rewrite}) mutates node ops in place; the
    scheduler walks {!topo} order and calls {!execute_node}. *)

open Gbtl

exception Plan_error of string

type kind = K_vec | K_mat | K_scalar

type layout = L_default | L_csc | L_csc_pull | L_csc_push
(** Storage-layout annotation set by [Rewrite.select_layout]: [L_csc*]
    marks a transposed Mat×Vec matmul that will dispatch on the matrix's
    CSC side instead of materializing a transpose; the [_pull]/[_push]
    refinements pin the direction (chosen by the schedule — heuristic or
    cost model) and {!execute_node} forces it through the kernel's
    [direction] override.  [L_default]/[L_csc] leave the kernel's own
    runtime fill heuristic in charge.  Either direction computes
    bit-identical results, so the annotation affects time, never
    values. *)

type op =
  | Leaf of Ogb.Container.t
  | Transpose
  | MatMul of {
      sr : Jit.Op_spec.semiring;
      transpose_a : bool;
      transpose_b : bool;
      masked : Ogb.Expr.mask_spec option;
      layout : layout;
    }
  | Ewise of {
      kind : [ `Add | `Mult ];
      op : string;
      transpose_a : bool;
      transpose_b : bool;
    }
  | ApplyChain of { chain : Jit.Op_spec.unary list; transpose : bool }
      (** [chain] innermost-first, as in {!Jit.Kernels.ewise_fused_v}. *)
  | EwiseApply of {
      kind : [ `Add | `Mult ];
      op : string;
      chain : Jit.Op_spec.unary list;
    }  (** apply∘ewise fused into one kernel (vector operands only). *)
  | EwiseMultReduce of { op : string; monoid_op : string; identity : string }
      (** scalar [reduce (u ⊗ v)] without the intermediate vector. *)
  | ReduceRows of { op : string; identity : string; transpose : bool }
  | ReduceScalar of { op : string; identity : string }
  | ExtractVec of Index_set.t
  | ExtractMat of { rows : Index_set.t; cols : Index_set.t; transpose : bool }
  | Select of Select.predicate

type node = {
  id : int;
  mutable op : op;
  mutable deps : int array;
  mutable kind : kind;
}

type t = {
  tbl : (int, node) Hashtbl.t;
  mutable next : int;
  mutable root : int;
  mutable sink_mask : Ogb.Expr.mask_spec option;
      (** write mask from the assignment sink; {!Rewrite.run} pushes it
          into the producing matmul when the blocking evaluator would. *)
  mutable events : (string * int) list;
  mutable cse_merged : int;
  mutable mute_stats : bool;
      (** set on {!copy}: rewrite passes over planner candidates must
          not count in the global fusion statistics. *)
  mutable schedule_desc : string;
      (** serialized schedule the planner committed ("" before planning). *)
  mutable predicted_ns : float;
      (** cost model's prediction for the committed plan (0 when the
          planner has not priced it). *)
}

val of_expr : ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> t
(** Lower an expression destined for a container sink. *)

val of_expr_reduce : op:string -> identity:string -> Ogb.Expr.t -> t
(** Lower an expression terminated by a scalar monoid reduction; the
    reduction becomes the root node. *)

val node : t -> int -> node
val root : t -> node
val size : t -> int

val copy : t -> t
(** Deep copy of the DAG structure (fresh node records, shared leaf
    containers), marked [mute_stats] — the planner's candidate
    workspace. *)

val shape_digest : t -> string
(** Digest of the plan's shape: topo-renumbered structure, op labels
    with layout annotations erased, leaves by dimensions and a
    power-of-two nvals bucket.  The schedule cache keys on this (plus
    the calibration generation), so structurally recurring plans —
    iterative algorithms, the serve daemon's steady state — skip the
    schedule search. *)

val node_family : t -> node -> string
(** Kernel-family name for a node ("mxv_pull", "ewise_v", …) — the unit
    calibration coefficients are keyed by. *)

val node_items : t -> node -> dep_nvals:(int -> int) -> dep_size:(int -> int) -> int
(** Entries the node's kernel will touch, priced from per-dependency
    entry counts/sizes (argument is the dependency {e position}).  The
    planner passes static estimates; the scheduler passes actual values,
    so predictions and observations measure the same quantity. *)

val topo : t -> int list
(** Deterministic topological order (DFS post-order from the root). *)

val refcounts : t -> (int, int) Hashtbl.t
(** Consumer counts per node; the sink counts as one consumer of the
    root.  Rewrites use this to gate fusions to unshared producers. *)

val drop_dead : t -> int
(** Remove nodes unreachable from the root; returns how many died. *)

val events : t -> (string * int) list
val cse_merged : t -> int
val record_event : t -> string -> int -> unit

val op_label : op -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Node execution. *)

type value = V_cont of Ogb.Container.t | V_scal of float

val cont : value -> Ogb.Container.t

val execute_node : t -> node -> value array -> value
(** Evaluate one node given its dependency values (in [deps] order).
    Mirrors the blocking evaluator kernel-for-kernel — same
    {!Jit.Kernel_sig} entries, same entry ordering — and never mutates a
    dependency's value, so CSE-shared results stay valid. *)
