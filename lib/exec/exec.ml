(* Nonblocking execution engine (paper §V's planned lazy-evaluation
   mode): terminating operations lower the deferred expression into a
   plan DAG (CSE), run multi-op fusion rewrites, and execute ready nodes
   on a domain pool.  Registers itself with the core library's
   Exec_hook so Ops.set/update and Expr.force divert here when the mode
   is Nonblocking. *)

module Plan = Plan
module Rewrite = Rewrite
module Scheduler = Scheduler
module Trace = Trace
module Verify_hook = Verify_hook

type mode = Ogb.Exec_hook.mode = Blocking | Nonblocking

let mode = Ogb.Exec_hook.mode
let set_mode = Ogb.Exec_hook.set_mode
let with_mode = Ogb.Exec_hook.with_mode

let last_trace_ref = ref None
let last_trace () = !last_trace_ref

let plan_force ?mask e =
  let p = Plan.of_expr ?mask e in
  Rewrite.run p;
  p

let plan_reduce ~op ~identity e =
  let p = Plan.of_expr_reduce ~op ~identity e in
  Rewrite.run p;
  p

let run_plan p =
  Verify_hook.run p ~stage:"pre-schedule";
  let v, trace = Scheduler.run p in
  last_trace_ref := Some trace;
  v

let force ?mask e =
  match run_plan (plan_force ?mask e) with
  | Plan.V_cont c -> c
  | Plan.V_scal _ -> invalid_arg "Exec.force: plan produced a scalar"

let reduce ~op ~identity e =
  match run_plan (plan_reduce ~op ~identity e) with
  | Plan.V_scal s -> s
  | Plan.V_cont _ -> invalid_arg "Exec.reduce: plan produced a container"

let explain ?mask e = Plan.to_string (plan_force ?mask e)

let explain_reduce ~op ~identity e =
  Plan.to_string (plan_reduce ~op ~identity e)

(* Hook registration: the closures must have exactly the types the core
   library casts them back to (see Exec_hook). *)
let force_hook : ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> Ogb.Container.t =
 fun ?mask e -> force ?mask e

let reduce_hook : op:string -> identity:string -> Ogb.Expr.t -> float =
 fun ~op ~identity e -> reduce ~op ~identity e

let () =
  Ogb.Exec_hook.evaluator := Some (Obj.repr force_hook);
  Ogb.Exec_hook.reducer := Some (Obj.repr reduce_hook)
