(* Nonblocking execution engine (paper §V's planned lazy-evaluation
   mode): terminating operations lower the deferred expression into a
   plan DAG (CSE), run multi-op fusion rewrites, and execute ready nodes
   on a domain pool.  Registers itself with the core library's
   Exec_hook so Ops.set/update and Expr.force divert here when the mode
   is Nonblocking. *)

module Plan = Plan
module Rewrite = Rewrite
module Planner = Planner
module Scheduler = Scheduler
module Trace = Trace
module Verify_hook = Verify_hook
module Iterate = Iterate

type mode = Ogb.Exec_hook.mode = Blocking | Nonblocking

let mode = Ogb.Exec_hook.mode
let set_mode = Ogb.Exec_hook.set_mode
let with_mode = Ogb.Exec_hook.with_mode

let last_trace_ref = ref None
let last_trace () = !last_trace_ref

let plan_force ?mask e =
  let p = Plan.of_expr ?mask e in
  Planner.optimize p;
  p

let plan_reduce ~op ~identity e =
  let p = Plan.of_expr_reduce ~op ~identity e in
  Planner.optimize p;
  p

(* Failure containment (last rung of the degradation ladder): when the
   scheduler fails even after its own sequential re-run, re-evaluate the
   expression on the blocking eager path, which shares no scheduler or
   native-compilation state with the engine.  Scoped to execution only —
   plan-construction and verifier failures still propagate, because a
   rejected plan is a miscompile to report, not a fault to absorb. *)
let containment =
  ref
    (match Sys.getenv_opt "OGB_EXEC_CONTAINMENT" with
    | Some ("0" | "off" | "false") -> false
    | _ -> true)

let set_containment b = containment := b
let containment_enabled () = !containment

let force ?mask e =
  let p = plan_force ?mask e in
  Verify_hook.run p ~stage:"pre-schedule";
  match Scheduler.run p with
  | Plan.V_cont c, trace ->
    last_trace_ref := Some trace;
    c
  | Plan.V_scal _, _ -> invalid_arg "Exec.force: plan produced a scalar"
  | exception ex when !containment ->
    Jit.Jit_stats.record_blocking_fallback ();
    ignore ex;
    Ogb.Expr.force_blocking ?mask e

let reduce ~op ~identity e =
  let p = plan_reduce ~op ~identity e in
  Verify_hook.run p ~stage:"pre-schedule";
  match Scheduler.run p with
  | Plan.V_scal s, trace ->
    last_trace_ref := Some trace;
    s
  | Plan.V_cont _, _ -> invalid_arg "Exec.reduce: plan produced a container"
  | exception ex when !containment ->
    Jit.Jit_stats.record_blocking_fallback ();
    ignore ex;
    Ogb.Expr.reduce_scalar_blocking ~op ~identity e

let explain ?mask e = Plan.to_string (plan_force ?mask e)

let explain_reduce ~op ~identity e =
  Plan.to_string (plan_reduce ~op ~identity e)

(* Hook registration: the closures must have exactly the types the core
   library casts them back to (see Exec_hook). *)
let force_hook : ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> Ogb.Container.t =
 fun ?mask e -> force ?mask e

let reduce_hook : op:string -> identity:string -> Ogb.Expr.t -> float =
 fun ~op ~identity e -> reduce ~op ~identity e

let () =
  Ogb.Exec_hook.evaluator := Some (Obj.repr force_hook);
  Ogb.Exec_hook.reducer := Some (Obj.repr reduce_hook)
