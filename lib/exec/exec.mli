(** Nonblocking execution engine.

    In [Blocking] mode (the default) terminating operations evaluate
    expression trees eagerly, exactly as before.  Under
    [with_mode Nonblocking] they instead lower into a {!Plan} DAG with
    common-subexpression sharing, choose a schedule with the
    cost-model-driven {!Planner} (which applies the {!Rewrite} passes),
    and execute ready nodes concurrently on a domain pool
    ({!Scheduler}) — producing bit-identical containers.

    Loading this module registers the engine with the core library
    ({!Ogb.Exec_hook}), which is what lets [Ops.set]/[update] and
    [Expr.force] divert here without a dependency cycle. *)

module Plan = Plan
module Rewrite = Rewrite
module Planner = Planner
module Scheduler = Scheduler
module Trace = Trace
module Verify_hook = Verify_hook
module Iterate = Iterate

type mode = Ogb.Exec_hook.mode = Blocking | Nonblocking

val mode : unit -> mode
val set_mode : mode -> unit

val with_mode : mode -> (unit -> 'a) -> 'a
(** [with_mode m f] runs [f] with the execution mode set to [m],
    restoring the previous mode afterwards (exception-safe). *)

val set_containment : bool -> unit
(** Enable/disable execution-failure containment (default on; the
    environment variable [OGB_EXEC_CONTAINMENT=0] disables it at
    startup).  With containment on, a scheduler failure that survives
    the sequential re-run makes {!force}/{!reduce} fall back to the
    blocking eager evaluator instead of raising.  Plan-verifier
    rejections always propagate regardless of this setting. *)

val containment_enabled : unit -> bool

val force : ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> Ogb.Container.t
(** Lower, optimize, and execute an expression destined for a container
    sink.  This is what [Expr.force] calls in [Nonblocking] mode. *)

val reduce : op:string -> identity:string -> Ogb.Expr.t -> float
(** Lower, optimize, and execute an expression terminated by a scalar
    monoid reduction. *)

val plan_force : ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> Plan.t
(** The optimized plan {!force} would execute (for tests and the CLI
    plan dump). *)

val plan_reduce : op:string -> identity:string -> Ogb.Expr.t -> Plan.t

val explain : ?mask:Ogb.Expr.mask_spec -> Ogb.Expr.t -> string
val explain_reduce : op:string -> identity:string -> Ogb.Expr.t -> string

val last_trace : unit -> Trace.t option
(** Trace of the most recent nonblocking run in this domain. *)
