(* Multi-op fusion over the plan DAG.  Every pass only rewrites node ops
   and dependency edges — execution semantics per node stay those of the
   blocking evaluator, so the rewritten plan computes bit-identical
   containers.  Fusions that merge a producer into its consumer are
   gated on the producer having exactly one consumer. *)

let record plan name =
  (* candidate copies the planner prices must stay invisible to the
     global fusion statistics; their private event list still fills in
     so a rejected candidate can be dumped for debugging *)
  if not plan.Plan.mute_stats then Jit.Jit_stats.record_fusion name;
  plan.Plan.events <-
    (match plan.Plan.events with
    | (n, c) :: rest when n = name -> (n, c + 1) :: rest
    | evs -> (name, 1) :: evs)

(* Replace every use of [old_id] (including the root) with [new_id]. *)
let redirect plan ~old_id ~new_id =
  Hashtbl.iter
    (fun _ n ->
      Array.iteri
        (fun i d -> if d = old_id then n.Plan.deps.(i) <- new_id)
        n.Plan.deps)
    plan.Plan.tbl;
  if plan.Plan.root = old_id then plan.Plan.root <- new_id

(* -- transpose sinking --
   The blocking evaluator absorbs [Transpose] wrappers into kernel flags
   (eval_operand); mirror that here so no transpose materializes unless
   a consumer has no flag for it.  Also erases identity transposes:
   vector transposes and double transposes. *)
let sink_transpose plan =
  let changed = ref true in
  let total = ref 0 in
  let transpose_child n =
    match n.Plan.op with Plan.Transpose -> Some n.Plan.deps.(0) | _ -> None
  in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        match Hashtbl.find_opt plan.Plan.tbl id with
        | None -> ()
        | Some n -> (
          let dep i = Plan.node plan n.Plan.deps.(i) in
          let absorb i =
            match transpose_child (dep i) with
            | Some child when (dep i).Plan.kind = Plan.K_mat ->
              n.Plan.deps.(i) <- child;
              incr total;
              changed := true;
              true
            | _ -> false
          in
          match n.Plan.op with
          | Plan.Transpose -> (
            let d = dep 0 in
            if d.Plan.kind = Plan.K_vec then begin
              (* vector transpose is the identity *)
              redirect plan ~old_id:id ~new_id:d.Plan.id;
              incr total;
              changed := true
            end
            else
              match transpose_child d with
              | Some grandchild ->
                (* T(T(x)) = x *)
                redirect plan ~old_id:id ~new_id:grandchild;
                incr total;
                changed := true
              | None -> ())
          | Plan.MatMul m ->
            if absorb 0 then
              n.Plan.op <- Plan.MatMul { m with transpose_a = not m.transpose_a };
            (match n.Plan.op with
            | Plan.MatMul m ->
              if absorb 1 then
                n.Plan.op <-
                  Plan.MatMul { m with transpose_b = not m.transpose_b }
            | _ -> ())
          | Plan.Ewise e ->
            if absorb 0 then
              n.Plan.op <- Plan.Ewise { e with transpose_a = not e.transpose_a };
            (match n.Plan.op with
            | Plan.Ewise e ->
              if absorb 1 then
                n.Plan.op <-
                  Plan.Ewise { e with transpose_b = not e.transpose_b }
            | _ -> ())
          | Plan.ApplyChain a ->
            if absorb 0 then
              n.Plan.op <- Plan.ApplyChain { a with transpose = not a.transpose }
          | Plan.ReduceRows r ->
            if absorb 0 then
              n.Plan.op <- Plan.ReduceRows { r with transpose = not r.transpose }
          | Plan.ExtractMat e ->
            if absorb 0 then
              n.Plan.op <- Plan.ExtractMat { e with transpose = not e.transpose }
          | _ -> ()))
      (Plan.topo plan)
  done;
  for _ = 1 to !total do
    record plan "transpose_sink"
  done

(* -- apply∘apply --
   An apply chain feeding another apply chain collapses into one chain
   (one compiled kernel for vectors).  The outer node must not transpose
   the inner result, and the inner node must have no other consumer. *)
let fuse_apply_chain plan =
  let changed = ref true in
  while !changed do
    changed := false;
    let refs = Plan.refcounts plan in
    List.iter
      (fun id ->
        match Hashtbl.find_opt plan.Plan.tbl id with
        | None -> ()
        | Some n -> (
          match n.Plan.op with
          | Plan.ApplyChain { chain = outer; transpose = false } -> (
            let d = Plan.node plan n.Plan.deps.(0) in
            match d.Plan.op, Hashtbl.find_opt refs d.Plan.id with
            | Plan.ApplyChain { chain = inner; transpose }, Some 1 ->
              n.Plan.op <-
                Plan.ApplyChain { chain = inner @ outer; transpose };
              n.Plan.deps <- d.Plan.deps;
              Hashtbl.remove plan.Plan.tbl d.Plan.id;
              record plan "apply_chain";
              changed := true
            | _ -> ())
          | _ -> ()))
      (Plan.topo plan)
  done

(* -- apply∘ewise --
   The blocking evaluator's fused-module path (apply chain over a
   vector element-wise op compiles to one kernel); same gate here:
   both ewise operands statically vectors, plus single-consumer. *)
let fuse_apply_ewise plan =
  let refs = Plan.refcounts plan in
  List.iter
    (fun id ->
      match Hashtbl.find_opt plan.Plan.tbl id with
      | None -> ()
      | Some n -> (
        match n.Plan.op with
        | Plan.ApplyChain { chain; transpose = false } -> (
          let d = Plan.node plan n.Plan.deps.(0) in
          match d.Plan.op, Hashtbl.find_opt refs d.Plan.id with
          | Plan.Ewise { kind; op; _ }, Some 1
            when (Plan.node plan d.Plan.deps.(0)).Plan.kind = Plan.K_vec
                 && (Plan.node plan d.Plan.deps.(1)).Plan.kind = Plan.K_vec ->
            n.Plan.op <- Plan.EwiseApply { kind; op; chain };
            n.Plan.deps <- d.Plan.deps;
            Hashtbl.remove plan.Plan.tbl d.Plan.id;
            record plan "apply_ewise"
          | _ -> ())
        | _ -> ()))
    (Plan.topo plan)

(* -- mult∘reduce --
   A scalar reduction over a vector eWiseMult runs as one intersection
   pass that folds with the monoid, skipping the temporary vector. *)
let fuse_mult_reduce plan =
  let refs = Plan.refcounts plan in
  List.iter
    (fun id ->
      match Hashtbl.find_opt plan.Plan.tbl id with
      | None -> ()
      | Some n -> (
        match n.Plan.op with
        | Plan.ReduceScalar { op = monoid_op; identity } -> (
          let d = Plan.node plan n.Plan.deps.(0) in
          match d.Plan.op, Hashtbl.find_opt refs d.Plan.id with
          | Plan.Ewise { kind = `Mult; op; _ }, Some 1
            when (Plan.node plan d.Plan.deps.(0)).Plan.kind = Plan.K_vec
                 && (Plan.node plan d.Plan.deps.(1)).Plan.kind = Plan.K_vec ->
            n.Plan.op <- Plan.EwiseMultReduce { op; monoid_op; identity };
            n.Plan.deps <- d.Plan.deps;
            Hashtbl.remove plan.Plan.tbl d.Plan.id;
            record plan "mult_reduce"
          | _ -> ())
        | _ -> ()))
    (Plan.topo plan)

(* -- mask push-down --
   The blocking evaluator hands the sink's write mask to the producing
   matmul when (and only when) the expression root is a Mat×Mat matmul,
   letting the kernel prune by mask structure.  Mirror exactly: same
   gate, same single site. *)
let push_mask plan =
  match plan.Plan.sink_mask with
  | None -> ()
  | Some spec -> (
    let r = Plan.root plan in
    match r.Plan.op with
    | Plan.MatMul m
      when (Plan.node plan r.Plan.deps.(0)).Plan.kind = Plan.K_mat
           && (Plan.node plan r.Plan.deps.(1)).Plan.kind = Plan.K_mat ->
      r.Plan.op <- Plan.MatMul { m with masked = Some spec };
      plan.Plan.sink_mask <- None;
      record plan "mask_push"
    | _ -> ())

(* -- layout selection --
   With the format layer on, a Mat×Vec matmul carrying a transpose_a
   flag (sunk there by sink_transpose from an explicit Transpose node)
   dispatches on the matrix's lazily cached CSC side rather than
   materializing Aᵀ.  The direction each such node takes comes from the
   schedule: an explicit per-node or global pull/push pin (the planner's
   cost-model choice, or an OGB_SCHEDULE pin) wins; [Auto] falls back to
   the PR 2 fill heuristic when the vector operand is a plan leaf (pull
   once fill reaches 1/4 of a size-≥32 vector) and otherwise leaves the
   kernel's runtime heuristic in charge ([L_csc]).  Plan.execute_node
   forces pinned directions through the kernel's [direction] override;
   both directions are bit-identical, so this trades time only. *)
let select_layout ?(schedule = Cost.Schedule.default) plan =
  if Gbtl.Format_stats.enabled () then
    List.iter
      (fun id ->
        let n = Plan.node plan id in
        match n.Plan.op with
        | Plan.MatMul ({ transpose_a = true; layout = Plan.L_default; _ } as m)
          when (Plan.node plan n.Plan.deps.(0)).Plan.kind = Plan.K_mat
               && (Plan.node plan n.Plan.deps.(1)).Plan.kind = Plan.K_vec ->
          let heuristic () =
            match (Plan.node plan n.Plan.deps.(1)).Plan.op with
            | Plan.Leaf c when not (Ogb.Container.is_matrix c) ->
              let size = Ogb.Container.size c in
              if size >= 32 && 4 * Ogb.Container.nvals c >= size then
                Plan.L_csc_pull
              else Plan.L_csc_push
            | _ -> Plan.L_csc
          in
          let layout =
            match Cost.Schedule.node_layout schedule id with
            | Cost.Schedule.Pull -> Plan.L_csc_pull
            | Cost.Schedule.Push -> Plan.L_csc_push
            | Cost.Schedule.Auto -> heuristic ()
          in
          n.Plan.op <- Plan.MatMul { m with layout };
          record plan "csc_dispatch";
          (match layout with
          | Plan.L_csc_pull -> record plan "dir_pull"
          | Plan.L_csc_push -> record plan "dir_push"
          | _ -> ())
        | _ -> ())
      (Plan.topo plan)

(* Apply the rewrite pipeline under a schedule: each pass fires only
   when the schedule enables its rule (all on by default — the greedy
   pipeline), and layout selection takes the schedule's direction
   choices.  Each stage re-checks the plan through the installed static
   verifier (no-op when none): a pass that changes a surviving node's
   inferred shape or dtype is a miscompile and aborts here. *)
let run_with ?(schedule = Cost.Schedule.default) plan =
  let enabled r = Cost.Schedule.rule_enabled schedule r in
  let dead = ref 0 in
  let sweep () = dead := !dead + Plan.drop_dead plan in
  let verify stage = Verify_hook.run plan ~stage in
  verify "lower";
  if enabled "sink_transpose" then begin
    sink_transpose plan;
    sweep ();
    verify "sink_transpose"
  end;
  if Ogb.Expr.fusion () then begin
    if enabled "apply_chain" then begin
      fuse_apply_chain plan;
      sweep ();
      verify "apply_chain"
    end;
    if enabled "apply_ewise" then begin
      fuse_apply_ewise plan;
      sweep ();
      verify "apply_ewise"
    end;
    if enabled "mult_reduce" then begin
      fuse_mult_reduce plan;
      sweep ();
      verify "mult_reduce"
    end
  end;
  if enabled "push_mask" then begin
    push_mask plan;
    sweep ();
    verify "push_mask"
  end;
  select_layout ~schedule plan;
  verify "select_layout";
  Plan.record_event plan "dce" !dead

let run plan = run_with plan
