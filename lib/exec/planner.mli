(** Cost-model-driven schedule search over the plan DAG.

    {!optimize} replaces the direct [Rewrite.run] call in plan lowering:
    it resolves a schedule — an [OGB_SCHEDULE]/programmatic pin, a
    cached choice, or a fresh bounded branch-and-bound search over
    fusion-rule subsets with per-node pull/push direction pins — prices
    it with {!Cost.Model} over static cardinality estimates, applies it
    through {!Rewrite.run_with}, and stamps the plan's
    [schedule_desc]/[predicted_ns].  Every search candidate is a
    {!Plan.copy} re-checked by the installed {!Verify_hook} (stage
    ["candidate"]) before its schedule can win; rejected candidates are
    counted and discarded. *)

val optimize : Plan.t -> unit
(** Choose, apply and record a schedule for a freshly lowered plan. *)

val price : Plan.t -> float
(** Model cost (ns) of a plan as currently rewritten/annotated. *)

val pin : Cost.Schedule.t option -> unit
(** Programmatic schedule pin (the CLI's [--schedule]); [None] returns
    control to [OGB_SCHEDULE]/search. *)

val pinned : unit -> Cost.Schedule.t option
(** Effective pin: the programmatic one, else [OGB_SCHEDULE]. *)

val plan_cap : unit -> int
(** Node-count cap above which branch-and-bound yields to the
    greedy-plus-single-flip fallback ([OGB_PLAN_CAP], default 96). *)

val counters : unit -> (string * int) list
(** [searches], [cache_hits], [pinned], [candidates], [rejected]. *)

val reset_counters : unit -> unit

val cache_size : unit -> int
val clear_cache : unit -> unit

val candidate_tamper : (Plan.t -> unit) option ref
(** Test hook: runs on each candidate copy after the rewrite and before
    the verify gate, so tests can prove a shape-changing candidate is
    rejected rather than adopted. *)
