(** Fusion passes over the plan DAG.  Each pass rewrites node ops and
    edges only — per-node semantics stay those of the blocking
    evaluator, so the optimized plan computes bit-identical results.
    Producer-into-consumer fusions are gated on the producer having a
    single consumer ({!Plan.refcounts}). *)

val sink_transpose : Plan.t -> unit
(** Absorb [Transpose] nodes into consumer kernel flags (matmul, ewise,
    apply, reduce-rows, matrix extract), erase vector and double
    transposes; mirrors the blocking evaluator's operand absorption. *)

val fuse_apply_chain : Plan.t -> unit
(** apply∘apply → one [ApplyChain] (one compiled kernel for vectors). *)

val fuse_apply_ewise : Plan.t -> unit
(** apply-chain over a vector ewise → one [EwiseApply] kernel (the
    blocking evaluator's fused-module gate, applied DAG-wide). *)

val fuse_mult_reduce : Plan.t -> unit
(** scalar reduce over vector eWiseMult → one [EwiseMultReduce] pass
    with no intermediate vector. *)

val push_mask : Plan.t -> unit
(** Move the sink's write mask into the producing root Mat×Mat matmul,
    exactly when the blocking evaluator would. *)

val select_layout : ?schedule:Cost.Schedule.t -> Plan.t -> unit
(** When the format layer is on ([Gbtl.Format_stats.enabled]), annotate
    transposed Mat×Vec matmuls with the CSC dispatch the kernel will
    use ({!Plan.layout}).  The schedule's per-node/global pull/push pins
    win; [Auto] refines by the fill heuristic when the vector operand's
    fill ratio is known at planning time.  Records [csc_dispatch] and
    [dir_pull]/[dir_push] events. *)

val run_with : ?schedule:Cost.Schedule.t -> Plan.t -> unit
(** The pipeline under a schedule: transpose sinking, then (when
    {!Ogb.Expr.fusion} is enabled) the three fusion passes, mask
    push-down, layout selection, and dead-node elimination — each pass
    gated on its schedule rule (all enabled in the default schedule).
    The installed {!Verify_hook} re-checks the plan after every pass. *)

val run : Plan.t -> unit
(** [run_with] under the default (greedy, all-passes-on) schedule. *)
