(** Execution trace for one nonblocking run: per-node timings, the
    rewrites that fired, and the kernel-cache activity (lookup/hit/
    compile deltas) attributable to the run. *)

type node_event = { id : int; label : string; seconds : float; nvals : int }
(** [nvals] is the stored-entry count of the node's result container
    (1 for scalar results) — the frontier-size data behind push/pull
    direction choices. *)

type t = {
  domains : int;  (** worker domains the scheduler actually used *)
  degraded : bool;
      (** true when the parallel run failed and the result came from the
          sequential re-execution (failure containment) *)
  total_seconds : float;
  nodes : node_event list;  (** sorted by node id *)
  rewrites : (string * int) list;
  cse_merged : int;
  schedule : string;
      (** serialized schedule the planner committed ("" when the plan
          bypassed the planner) *)
  predicted_ns : float;  (** cost model's prediction for that schedule *)
  lookups : int;
  cache_hits : int;  (** memory + disk hits during this run *)
  compiles : int;
}

val make :
  domains:int ->
  degraded:bool ->
  total_seconds:float ->
  nodes:node_event list ->
  rewrites:(string * int) list ->
  cse_merged:int ->
  schedule:string ->
  predicted_ns:float ->
  before:Jit.Jit_stats.snapshot ->
  after:Jit.Jit_stats.snapshot ->
  t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
