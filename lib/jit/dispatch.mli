(** Kernel dispatch: the [get_module] of paper Fig. 9.

    Lookup order is memory table → disk cache → compile.  "Compile" means
    [ocamlopt -shared] + [Dynlink] under the native backend, or closure
    instantiation (template instantiation without the external compiler)
    under the closure backend.  Every step is recorded in {!Jit_stats}.

    Dispatch is domain-safe, and compilation never blocks unrelated
    lookups: the global lock guards only the kernel table, while a
    per-key in-flight entry makes concurrent requests for the same
    signature wait on the one compile (counted as [inflight_waits])
    instead of duplicating it.  Native failures feed the {!Breaker}
    circuit breaker; with the circuit open, dispatch goes straight to
    the closure backend without probing ocamlopt. *)

type backend = Auto | Closure | Native

val set_backend : backend -> unit
val backend : unit -> backend

val effective_backend : unit -> [ `Closure | `Native ]
(** What [Auto] resolves to after probing the toolchain. *)

val get :
  Kernel_sig.t ->
  build:(unit -> Obj.t) ->
  ?native_source:(key:string -> string option) ->
  unit ->
  Obj.t
(** Returns the kernel for the signature, building/compiling at most once
    per process.  [build] is the closure-backend instantiation;
    [native_source] generates plugin source (absent or [None]-returning
    combinations always use the closure backend). *)

val cached : Kernel_sig.t -> bool
(** Whether the signature is already in the in-memory table (a later
    {!get} would be a memory hit) — lets the AOT warm-up distinguish
    fresh compiles from already-resident kernels. *)

val clear_memory_cache : unit -> unit
(** Forget in-process kernels (the disk cache persists) — lets benchmarks
    re-measure disk hits and recompiles. *)

val memory_cache_size : unit -> int
