type 'a ventry = int array * 'a array * int
type 'a csr = int array * int array * 'a array

(* Growable output buffer without a dummy element requirement beyond the
   caller-provided one. *)
let trim idx vals len = (Array.sub idx 0 len, Array.sub vals 0 len)

let mxv ~add ~mul ~dummy ~nrows ~ncols ~transpose (arp, aci, avs)
    ((uidx, uvls, un) : 'a ventry) =
  if not transpose then begin
    (* gather: w_i = ⊕_j A(i,j) ⊗ u(j) over stored u positions *)
    let u_dense = Array.make ncols dummy in
    let u_occ = Array.make ncols false in
    for k = 0 to un - 1 do
      u_dense.(uidx.(k)) <- uvls.(k);
      u_occ.(uidx.(k)) <- true
    done;
    let out_idx = Array.make nrows 0 and out_vls = Array.make nrows dummy in
    let n = ref 0 in
    for i = 0 to nrows - 1 do
      let acc = ref dummy and hit = ref false in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let j = aci.(p) in
        if u_occ.(j) then begin
          let v = mul avs.(p) u_dense.(j) in
          acc := (if !hit then add !acc v else v);
          hit := true
        end
      done;
      if !hit then begin
        out_idx.(!n) <- i;
        out_vls.(!n) <- !acc;
        incr n
      end
    done;
    trim out_idx out_vls !n
  end
  else begin
    (* scatter: (Aᵀu)_c = ⊕_j A(j,c) ⊗ u(j) *)
    let acc = Array.make ncols dummy in
    let occ = Array.make ncols false in
    for k = 0 to un - 1 do
      let j = uidx.(k) in
      let uj = uvls.(k) in
      for p = arp.(j) to arp.(j + 1) - 1 do
        let c = aci.(p) in
        let v = mul avs.(p) uj in
        if occ.(c) then acc.(c) <- add acc.(c) v
        else begin
          acc.(c) <- v;
          occ.(c) <- true
        end
      done
    done;
    let n = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then incr n
    done;
    let out_idx = Array.make !n 0 and out_vls = Array.make !n dummy in
    let k = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then begin
        out_idx.(!k) <- c;
        out_vls.(!k) <- acc.(c);
        incr k
      end
    done;
    (out_idx, out_vls)
  end

(* Pull form of the transposed product, reading the CSC side of A:
   (Aᵀu)_c = ⊕_j A(j,c) ⊗ u(j), one gather per output position instead
   of one scatter per frontier entry.  Rows ascend within each column,
   so contributions accumulate in the same order as the scatter form
   and the results are bit-identical. *)
let mxv_pull ~add ~mul ~dummy ~nrows ~ncols ((acp, ari, avs) : 'a csr)
    ((uidx, uvls, un) : 'a ventry) =
  let u_dense = Array.make (max nrows 1) dummy in
  let u_occ = Array.make (max nrows 1) false in
  for k = 0 to un - 1 do
    u_dense.(uidx.(k)) <- uvls.(k);
    u_occ.(uidx.(k)) <- true
  done;
  let out_idx = Array.make (max ncols 1) 0 in
  let out_vls = Array.make (max ncols 1) dummy in
  let n = ref 0 in
  for c = 0 to ncols - 1 do
    let acc = ref dummy and hit = ref false in
    for p = acp.(c) to acp.(c + 1) - 1 do
      let j = ari.(p) in
      if u_occ.(j) then begin
        let v = mul avs.(p) u_dense.(j) in
        acc := (if !hit then add !acc v else v);
        hit := true
      end
    done;
    if !hit then begin
      out_idx.(!n) <- c;
      out_vls.(!n) <- !acc;
      incr n
    end
  done;
  trim out_idx out_vls !n

(* Direction-optimized pull for masked transposed products (the BFS
   bottom-up step): only [allowed] output positions are gathered, the
   frontier arrives dense, and a column's gather stops as soon as [stop]
   holds for the accumulator (sound only for saturating ⊕ such as lor,
   where further contributions cannot change the value). *)
let mxv_pull_masked ~add ~mul ~dummy ~stop ~ncols ~visited
    ((acp, ari, avs) : 'a csr) ((uvls, uocc) : 'a array * bool array) =
  let out_idx = Array.make (max ncols 1) 0 in
  let out_vls = Array.make (max ncols 1) dummy in
  let n = ref 0 in
  for c = 0 to ncols - 1 do
    if not visited.(c) then begin
      let acc = ref dummy and hit = ref false in
      let p = ref acp.(c) in
      let stop_p = acp.(c + 1) in
      while !p < stop_p && not (!hit && stop !acc) do
        let j = ari.(!p) in
        if uocc.(j) then begin
          let v = mul avs.(!p) uvls.(j) in
          acc := (if !hit then add !acc v else v);
          hit := true
        end;
        incr p
      done;
      if !hit then begin
        out_idx.(!n) <- c;
        out_vls.(!n) <- !acc;
        incr n
      end
    end
  done;
  trim out_idx out_vls !n

(* Scatter product with a dense frontier, accumulators returned as dense
   (values, occupancy) arrays — the PageRank iteration keeps its vector
   dense end-to-end and skips compaction entirely.  Occupied positions
   are visited in ascending index order, matching the sparse scatter. *)
let vxm_dense ~add ~mul ~dummy ~nrows ~ncols ((uvls, uocc) : 'a array * bool array)
    ((arp, aci, avs) : 'a csr) =
  let acc = Array.make (max ncols 1) dummy in
  let occ = Array.make (max ncols 1) false in
  for i = 0 to nrows - 1 do
    if uocc.(i) then begin
      let ui = uvls.(i) in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let c = aci.(p) in
        let v = mul ui avs.(p) in
        if occ.(c) then acc.(c) <- add acc.(c) v
        else begin
          acc.(c) <- v;
          occ.(c) <- true
        end
      done
    end
  done;
  (acc, occ)

(* Pull form of the dense-frontier product, reading the CSC side of A:
   w_c = ⊕_i u(i) ⊗ A(i,c), one gather per output position.  Each
   accumulator lives in a local ref (no read-modify-write on the output
   arrays, no per-entry occupancy branch on the accumulator), which is
   what makes this the fast path for an iterated product such as
   PageRank once the CSC side is cached.  Rows ascend within each
   column, so contributions fold in the same order as [vxm_dense] and
   the results are bit-identical. *)
let vxm_pull_dense ~add ~mul ~dummy ~ncols ((acp, ari, cvs) : 'a csr)
    ((uvls, uocc) : 'a array * bool array) =
  let acc = Array.make (max ncols 1) dummy in
  let occ = Array.make (max ncols 1) false in
  let full = ref true in
  for i = 0 to Array.length uocc - 1 do
    if not uocc.(i) then full := false
  done;
  if !full then
    (* fully-occupied operand (PageRank's steady state): no occupancy
       test and no hit flag in the inner loop — the first contribution
       seeds the accumulator, exactly the fold the guarded loop
       performs. *)
    for c = 0 to ncols - 1 do
      let lo = acp.(c) and hi = acp.(c + 1) in
      if hi > lo then begin
        let a = ref (mul uvls.(ari.(lo)) cvs.(lo)) in
        for p = lo + 1 to hi - 1 do
          a := add !a (mul uvls.(ari.(p)) cvs.(p))
        done;
        acc.(c) <- !a;
        occ.(c) <- true
      end
    done
  else
    for c = 0 to ncols - 1 do
      let a = ref dummy and hit = ref false in
      for p = acp.(c) to acp.(c + 1) - 1 do
        let i = ari.(p) in
        if uocc.(i) then begin
          let v = mul uvls.(i) cvs.(p) in
          a := (if !hit then add !a v else v);
          hit := true
        end
      done;
      if !hit then begin
        acc.(c) <- !a;
        occ.(c) <- true
      end
    done;
  (acc, occ)

(* Tile continuation of [vxm_pull_dense]: fold one tile's CSC columns
   into the caller's (acc, occ) accumulator in place.  [r0]/[c0] place
   the tile in the global index space.  Seeding each column's local
   accumulator from the entry already in [acc] (when occupied) makes the
   fold a continuation: streaming a block column's tiles in ascending
   block-row order reproduces exactly the sequential column fold of the
   full-matrix kernel — same order, same result, bit for bit, even for
   non-associative ⊕ on floats. *)
let vxm_tile_acc ~add ~mul ~r0 ~c0 ~tncols ((acp, ari, tvs) : 'a csr)
    ((uvls, uocc) : 'a array * bool array) ((acc, occ) : 'a array * bool array)
    =
  for lc = 0 to tncols - 1 do
    let c = c0 + lc in
    let a = ref acc.(c) and hit = ref occ.(c) in
    for p = acp.(lc) to acp.(lc + 1) - 1 do
      let i = r0 + ari.(p) in
      if uocc.(i) then begin
        let v = mul uvls.(i) tvs.(p) in
        a := (if !hit then add !a v else v);
        hit := true
      end
    done;
    if !hit then begin
      acc.(c) <- !a;
      occ.(c) <- true
    end
  done

let vxm ~add ~mul ~dummy ~nrows ~ncols ~transpose ((uidx, uvls, un) : 'a ventry)
    (arp, aci, avs) =
  if not transpose then begin
    (* scatter: w_c = ⊕_i u(i) ⊗ A(i,c) *)
    let acc = Array.make ncols dummy in
    let occ = Array.make ncols false in
    for k = 0 to un - 1 do
      let i = uidx.(k) in
      let ui = uvls.(k) in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let c = aci.(p) in
        let v = mul ui avs.(p) in
        if occ.(c) then acc.(c) <- add acc.(c) v
        else begin
          acc.(c) <- v;
          occ.(c) <- true
        end
      done
    done;
    let n = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then incr n
    done;
    let out_idx = Array.make !n 0 and out_vls = Array.make !n dummy in
    let k = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then begin
        out_idx.(!k) <- c;
        out_vls.(!k) <- acc.(c);
        incr k
      end
    done;
    (out_idx, out_vls)
  end
  else begin
    (* gather: (u Aᵀ)_i = ⊕_j u(j) ⊗ A(i,j) *)
    let u_dense = Array.make ncols dummy in
    let u_occ = Array.make ncols false in
    for k = 0 to un - 1 do
      u_dense.(uidx.(k)) <- uvls.(k);
      u_occ.(uidx.(k)) <- true
    done;
    let out_idx = Array.make nrows 0 and out_vls = Array.make nrows dummy in
    let n = ref 0 in
    for i = 0 to nrows - 1 do
      let acc = ref dummy and hit = ref false in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let j = aci.(p) in
        if u_occ.(j) then begin
          let v = mul u_dense.(j) avs.(p) in
          acc := (if !hit then add !acc v else v);
          hit := true
        end
      done;
      if !hit then begin
        out_idx.(!n) <- i;
        out_vls.(!n) <- !acc;
        incr n
      end
    done;
    trim out_idx out_vls !n
  end

let mxm_gustavson ~add ~mul ~dummy ~nrows_a ~ncols_b (arp, aci, avs)
    (brp, bci, bvs) =
  let spa_vals = Array.make (max ncols_b 1) dummy in
  let spa_occ = Array.make (max ncols_b 1) false in
  let touched = Array.make (max ncols_b 1) 0 in
  let rowptr = Array.make (nrows_a + 1) 0 in
  (* growable output *)
  let cap = ref (max 16 (Array.length avs)) in
  let out_idx = ref (Array.make !cap 0) in
  let out_vls = ref (Array.make !cap dummy) in
  let n = ref 0 in
  let push c v =
    if !n = !cap then begin
      cap := 2 * !cap;
      let idx' = Array.make !cap 0 and vls' = Array.make !cap dummy in
      Array.blit !out_idx 0 idx' 0 !n;
      Array.blit !out_vls 0 vls' 0 !n;
      out_idx := idx';
      out_vls := vls'
    end;
    !out_idx.(!n) <- c;
    !out_vls.(!n) <- v;
    incr n
  in
  for i = 0 to nrows_a - 1 do
    rowptr.(i) <- !n;
    let nt = ref 0 in
    for p = arp.(i) to arp.(i + 1) - 1 do
      let k = aci.(p) in
      let aik = avs.(p) in
      for q = brp.(k) to brp.(k + 1) - 1 do
        let j = bci.(q) in
        let v = mul aik bvs.(q) in
        if spa_occ.(j) then spa_vals.(j) <- add spa_vals.(j) v
        else begin
          spa_occ.(j) <- true;
          spa_vals.(j) <- v;
          touched.(!nt) <- j;
          incr nt
        end
      done
    done;
    let row = Array.sub touched 0 !nt in
    Array.sort Int.compare row;
    Array.iter
      (fun j ->
        push j spa_vals.(j);
        spa_occ.(j) <- false)
      row
  done;
  rowptr.(nrows_a) <- !n;
  (rowptr, Array.sub !out_idx 0 !n, Array.sub !out_vls 0 !n)

let ewise_add_v ~op ((aidx, avls, an) : 'a ventry) ((bidx, bvls, bn) : 'a ventry)
    =
  let cap = an + bn in
  if cap = 0 then ([||], [||])
  else begin
    let dummy = if an > 0 then avls.(0) else bvls.(0) in
    let out_idx = Array.make cap 0 and out_vls = Array.make cap dummy in
    let i = ref 0 and j = ref 0 and n = ref 0 in
    while !i < an || !j < bn do
      let push ix v =
        out_idx.(!n) <- ix;
        out_vls.(!n) <- v;
        incr n
      in
      if !i >= an then begin
        push bidx.(!j) bvls.(!j);
        incr j
      end
      else if !j >= bn then begin
        push aidx.(!i) avls.(!i);
        incr i
      end
      else if aidx.(!i) < bidx.(!j) then begin
        push aidx.(!i) avls.(!i);
        incr i
      end
      else if bidx.(!j) < aidx.(!i) then begin
        push bidx.(!j) bvls.(!j);
        incr j
      end
      else begin
        push aidx.(!i) (op avls.(!i) bvls.(!j));
        incr i;
        incr j
      end
    done;
    trim out_idx out_vls !n
  end

let ewise_mult_v ~op ((aidx, avls, an) : 'a ventry) ((bidx, bvls, bn) : 'a ventry) =
  let cap = min an bn in
  if cap = 0 then ([||], [||])
  else begin
    let dummy = avls.(0) in
    let out_idx = Array.make cap 0 and out_vls = Array.make cap dummy in
    let i = ref 0 and j = ref 0 and n = ref 0 in
    while !i < an && !j < bn do
      if aidx.(!i) < bidx.(!j) then incr i
      else if bidx.(!j) < aidx.(!i) then incr j
      else begin
        out_idx.(!n) <- aidx.(!i);
        out_vls.(!n) <- op avls.(!i) bvls.(!j);
        incr n;
        incr i;
        incr j
      end
    done;
    trim out_idx out_vls !n
  end

let apply_v ~f ((aidx, avls, an) : 'a ventry) =
  (Array.sub aidx 0 an, Array.init an (fun k -> f avls.(k)))

let reduce_v ~op ~identity ((_, avls, an) : 'a ventry) =
  let acc = ref identity in
  for k = 0 to an - 1 do
    acc := op !acc avls.(k)
  done;
  !acc

(* Dense-representation variants: operands and results are (values,
   occupancy) array pairs of equal length.  Unoccupied output slots hold
   [dummy].  Iteration is ascending index, so results match the sparse
   merge kernels entry for entry. *)

let ewise_add_dense ~op ~dummy ((avls, aocc) : 'a array * bool array)
    ((bvls, bocc) : 'a array * bool array) =
  let n = Array.length avls in
  let out = Array.make (max n 1) dummy in
  let occ = Array.make (max n 1) false in
  for i = 0 to n - 1 do
    if aocc.(i) then begin
      out.(i) <- (if bocc.(i) then op avls.(i) bvls.(i) else avls.(i));
      occ.(i) <- true
    end
    else if bocc.(i) then begin
      out.(i) <- bvls.(i);
      occ.(i) <- true
    end
  done;
  (out, occ)

let ewise_mult_dense ~op ~dummy ((avls, aocc) : 'a array * bool array)
    ((bvls, bocc) : 'a array * bool array) =
  let n = Array.length avls in
  let out = Array.make (max n 1) dummy in
  let occ = Array.make (max n 1) false in
  for i = 0 to n - 1 do
    if aocc.(i) && bocc.(i) then begin
      out.(i) <- op avls.(i) bvls.(i);
      occ.(i) <- true
    end
  done;
  (out, occ)

let apply_dense ~f ~dummy ((avls, aocc) : 'a array * bool array) =
  let n = Array.length avls in
  let out = Array.make (max n 1) dummy in
  for i = 0 to n - 1 do
    if aocc.(i) then out.(i) <- f avls.(i)
  done;
  (out, Array.copy aocc)

let reduce_dense ~op ~identity ((avls, aocc) : 'a array * bool array) =
  let acc = ref identity in
  for i = 0 to Array.length avls - 1 do
    if aocc.(i) then acc := op !acc avls.(i)
  done;
  !acc
