open Gbtl

type semiring = { add_op : string; add_identity : string; mul_op : string }

type unary =
  | Named of string
  | Bound of { op : string; side : [ `First | `Second ]; const : float }

let arithmetic = { add_op = "Plus"; add_identity = "Zero"; mul_op = "Times" }
let logical =
  { add_op = "LogicalOr"; add_identity = "False"; mul_op = "LogicalAnd" }
let min_plus = { add_op = "Min"; add_identity = "MinIdentity"; mul_op = "Plus" }

let named_semirings =
  [ ("Arithmetic", arithmetic);
    ("Logical", logical);
    ("MinPlus", min_plus);
    ("MaxPlus", { add_op = "Max"; add_identity = "MaxIdentity"; mul_op = "Plus" });
    ("MinTimes", { add_op = "Min"; add_identity = "MinIdentity"; mul_op = "Times" });
    ("MaxTimes", { add_op = "Max"; add_identity = "MaxIdentity"; mul_op = "Times" });
    ("MinSelect1st", { add_op = "Min"; add_identity = "MinIdentity"; mul_op = "First" });
    ("MinSelect2nd", { add_op = "Min"; add_identity = "MinIdentity"; mul_op = "Second" });
    ("MaxSelect1st", { add_op = "Max"; add_identity = "MaxIdentity"; mul_op = "First" });
    ("MaxSelect2nd", { add_op = "Max"; add_identity = "MaxIdentity"; mul_op = "Second" });
  ]

let semiring_of_name name =
  match List.assoc_opt name named_semirings with
  | Some s -> s
  | None -> raise (Semiring.Unknown_semiring name)

let semiring_name s =
  match List.find_opt (fun (_, s') -> s' = s) named_semirings with
  | Some (n, _) -> n
  | None ->
    Printf.sprintf "Semiring(%s/%s,%s)" s.add_op s.add_identity s.mul_op

let monoid_of_semiring s = (s.add_op, s.add_identity)

let unary_name = function
  | Named n -> n
  | Bound { op; side; const } ->
    Printf.sprintf "%s$bind%s:%.17g" op
      (match side with `First -> "1st" | `Second -> "2nd")
      const

let unary_of_name s =
  (* Inverse of [unary_name]; "Op$bind1st:K" / "Op$bind2nd:K" round-trip
     back into [Bound] (the %.17g constant parses exactly), anything
     else is [Named]. *)
  match String.index_opt s '$' with
  | None -> Named s
  | Some i -> (
    let op = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest ':' with
    | Some j -> (
      let side =
        match String.sub rest 0 j with
        | "bind1st" -> Some `First
        | "bind2nd" -> Some `Second
        | _ -> None
      in
      let const =
        float_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1))
      in
      match side, const with
      | Some side, Some const -> Bound { op; side; const }
      | _ -> Named s)
    | None -> Named s)

let instantiate_semiring dt s =
  Semiring.make
    (Monoid.of_names ~op:s.add_op ~identity:s.add_identity dt)
    (Binop.of_name s.mul_op dt)

let instantiate_unary (type a) (dt : a Dtype.t) u : a Unaryop.t =
  match u with
  | Named n -> Unaryop.of_name n dt
  | Bound { op; side; const } -> (
    let b = Binop.of_name op dt in
    let k = Dtype.of_float dt const in
    match side with
    | `First -> Unaryop.bind1st dt b k
    | `Second -> Unaryop.bind2nd dt b k)

let instantiate_monoid dt ~op ~identity = Monoid.of_names ~op ~identity dt
