(* Hardened on-disk kernel cache.  Every write is atomic (temp file +
   rename), directory creation tolerates concurrent creators, compiled
   artifacts carry content checksums that are verified before Dynlink
   ever sees them, and a per-hash advisory file lock gives cross-process
   single-flight compilation.  Write failures never escape: a cache that
   cannot be written degrades the pipeline to in-memory closures, it
   does not crash the computation. *)

let default_dir () =
  match Sys.getenv_opt "OGB_JIT_CACHE" with
  | Some d -> d
  | None ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ogb-jit-cache-%d" (Unix.getuid ()))

let the_dir = ref None

let set_dir d = the_dir := Some d

(* mkdir -p that treats EEXIST as success: between a [file_exists] probe
   and the [mkdir] another process (or an injected race) can create the
   directory first, and losing that race is fine. *)
let rec mkdir_p d =
  if d = "" || d = Filename.dirname d then ()
  else
    match Unix.mkdir d 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      mkdir_p (Filename.dirname d);
      (try Unix.mkdir d 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let dir () =
  let d = match !the_dir with Some d -> d | None -> default_dir () in
  (* Under the injected race the existence probe is treated as stale
     (reporting "absent" even when the directory exists), which is
     exactly the TOCTOU window a concurrent creator exploits; mkdir_p
     must absorb the resulting EEXIST. *)
  if Fault.fire "cache.mkdir.race" || not (Sys.file_exists d) then mkdir_p d;
  the_dir := Some d;
  d

let source_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.ml" hash)
let cmxs_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.cmxs" hash)
let marker_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.built" hash)
let stderr_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.stderr" hash)
let sum_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.sum" hash)
let lock_path hash = Filename.concat (dir ()) (Printf.sprintf "Kern_%s.lock" hash)

(* -- atomic, fault-checked writes -- *)

let simulated_write_fault () =
  if Fault.fire "cache.write.eacces" then
    Some (Unix.Unix_error (Unix.EACCES, "open", "injected"))
  else if Fault.fire "cache.write.enospc" then
    Some (Unix.Unix_error (Unix.ENOSPC, "write", "injected"))
  else None

let write_file_atomic path contents =
  match simulated_write_fault () with
  | Some e ->
    Jit_stats.record_cache_write_failure ();
    Error (Printexc.to_string e)
  | None -> (
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    try
      let oc = open_out_bin tmp in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
          output_string oc contents);
      Unix.rename tmp path;
      Ok ()
    with (Sys_error _ | Unix.Unix_error _) as e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Jit_stats.record_cache_write_failure ();
      Error (Printexc.to_string e))

let store_source hash src = write_file_atomic (source_path hash) src

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_source hash =
  let path = source_path hash in
  if Sys.file_exists path then
    match read_file path with s -> Some s | exception Sys_error _ -> None
  else None

let has_cmxs hash = Sys.file_exists (cmxs_path hash)
let has_marker hash = Sys.file_exists (marker_path hash)

let touch_marker hash =
  match write_file_atomic (marker_path hash) "" with
  | Ok () | Error _ -> ()

(* -- content checksums -- *)

(* Deterministic corruption: when the injection point fires, the
   artifact is replaced with garbage on disk before verification looks
   at it — the real recovery machinery (quarantine + recompile) then
   runs against real corruption, not a simulated flag.  The replacement
   goes through rename (a new inode) rather than truncation in place:
   an already-Dynlinked plugin stays mmapped, and truncating a mapped
   file delivers SIGBUS to the whole process — exactly the kind of
   collateral damage the injection must not cause. *)
let maybe_corrupt point path =
  if Fault.fire point && Sys.file_exists path then (
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    output_string oc "\x00corrupt";
    close_out_noerr oc;
    try Unix.rename tmp path
    with Unix.Unix_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))

let digest_line label path =
  Printf.sprintf "%s:%s" label (Digest.to_hex (Digest.file path))

let store_sums hash =
  let src = source_path hash and cmxs = cmxs_path hash in
  if Sys.file_exists src && Sys.file_exists cmxs then
    match
      write_file_atomic (sum_path hash)
        (digest_line "src" src ^ "\n" ^ digest_line "cmxs" cmxs ^ "\n")
    with
    | Ok () | Error _ -> ()

let read_sum hash label =
  let path = sum_path hash in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error _ -> None
    | contents ->
      List.find_map
        (fun line ->
          match String.index_opt line ':' with
          | Some i when String.sub line 0 i = label ->
            Some (String.sub line (i + 1) (String.length line - i - 1))
          | _ -> None)
        (String.split_on_char '\n' contents)

let verify_against hash label path =
  match read_sum hash label with
  | None -> `No_sum
  | Some expected ->
    if
      Sys.file_exists path
      && (match Digest.to_hex (Digest.file path) with
         | actual -> actual = expected
         | exception Sys_error _ -> false)
    then `Ok
    else `Mismatch

let verify_cmxs hash =
  maybe_corrupt "cache.corrupt.cmxs" (cmxs_path hash);
  verify_against hash "cmxs" (cmxs_path hash)

let verify_source hash =
  maybe_corrupt "cache.corrupt.source" (source_path hash);
  verify_against hash "src" (source_path hash)

let quarantine hash =
  Jit_stats.record_checksum_quarantine ();
  let bad = cmxs_path hash ^ ".bad" in
  (try Unix.rename (cmxs_path hash) bad
   with Unix.Unix_error _ | Sys_error _ -> (
     try Sys.remove (cmxs_path hash) with Sys_error _ -> ()));
  try Sys.remove (sum_path hash) with Sys_error _ -> ()

(* -- cross-process advisory lock (single-flight compilation) -- *)

(* A daemon with active signal handlers (SIGTERM/SIGPIPE in the server)
   can see any blocking syscall interrupted; EINTR on open or lockf is a
   retry, not a failure. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let with_lock hash f =
  match
    retry_eintr (fun () ->
        Unix.openfile (lock_path hash) [ Unix.O_CREAT; Unix.O_RDWR ] 0o644)
  with
  | exception Unix.Unix_error _ ->
    (* can't lock (read-only cache dir): compile unlocked, duplicated
       work across processes is still correct *)
    f ()
  | fd ->
    Fun.protect
      ~finally:(fun () ->
        (try retry_eintr (fun () -> Unix.lockf fd Unix.F_ULOCK 0)
         with Unix.Unix_error _ -> ());
        retry_eintr (fun () -> Unix.close fd))
      (fun () ->
        (try retry_eintr (fun () -> Unix.lockf fd Unix.F_LOCK 0)
         with Unix.Unix_error _ -> ());
        f ())

(* -- cache-wide maintenance -- *)

let clear () =
  let d = dir () in
  let prefixed p f =
    String.length f >= String.length p && String.sub f 0 (String.length p) = p
  in
  let suffixed s f =
    String.length f >= String.length s
    && String.sub f (String.length f - String.length s) (String.length s) = s
  in
  Array.iter
    (fun f ->
      (* Kern_* covers sources, plugins, markers, checksums, locks and
         quarantined artifacts; probe_* and bare *.stderr cover what the
         availability probe and pre-hardening builds left behind. *)
      if prefixed "Kern_" f || prefixed "probe_" f || suffixed ".stderr" f then
        try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
    (Sys.readdir d)

let integrity_scan () =
  let d = dir () in
  let entries = ref [] in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".cmxs" && String.length f > 8
         && String.sub f 0 5 = "Kern_"
      then begin
        let hash = String.sub f 5 (String.length f - 10) in
        (* direct verification, no fault injection: the scan is a
           read-only diagnostic *)
        entries :=
          (hash, verify_against hash "cmxs" (Filename.concat d f)) :: !entries
      end)
    (Sys.readdir d);
  List.sort compare !entries
