(** Parallel twins of the {!Array_kernels} algorithms, chunked over the
    shared domain pool.  Bit-identity with the sequential kernel is the
    contract: gather/dense kernels partition the output space (the fold
    at each output position is unchanged); scatter and reduce kernels
    combine per-chunk partials in ascending chunk order and must only be
    dispatched for exactly associative ⊕ (see [Kernels.exact_assoc]).
    The [grain] argument fixes the chunk decomposition; it must be a
    pure function of the operand size so results are independent of the
    domain count. *)

type 'a ventry = 'a Array_kernels.ventry
type 'a csr = 'a Array_kernels.csr

val mxv_gather :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** Row-blocked gather [A ⊕.⊗ u]; also serves the CSC pull dispatch
    (swapped dimensions).  Exact for every operator. *)

val vxm_gather :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** Gather form of [u ⊕.⊗ A] (⊗ operand order swapped). *)

val mxv_pull_masked :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  stop:('a -> bool) ->
  ncols:int ->
  visited:bool array ->
  'a csr ->
  'a array * bool array ->
  int array * 'a array
(** Column-blocked masked CSC pull with per-column early exit. *)

val vxm_pull_dense :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  ncols:int ->
  'a csr ->
  'a array * bool array ->
  'a array * bool array
(** Column-blocked pull form of the dense-frontier product; disjoint
    in-place writes, exact for every operator. *)

val mxv_scatter :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  ncols:int ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** Frontier-blocked push form of [Aᵀ ⊕.⊗ u]; requires exactly
    associative ⊕. *)

val vxm_scatter :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  ncols:int ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** Frontier-blocked push form of [u ⊕.⊗ A]; requires exactly
    associative ⊕. *)

val vxm_dense :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  'a array * bool array ->
  'a csr ->
  'a array * bool array
(** Row-blocked push with a dense frontier; requires exactly associative
    ⊕. *)

val mxm_gustavson :
  grain:int ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows_a:int ->
  ncols_b:int ->
  'a csr ->
  'a csr ->
  'a csr
(** Row-partitioned Gustavson product; blocks concatenate in row order,
    exact for every operator. *)

val ewise_add_dense :
  grain:int ->
  op:('a -> 'a -> 'a) ->
  dummy:'a ->
  'a array * bool array ->
  'a array * bool array ->
  'a array * bool array

val ewise_mult_dense :
  grain:int ->
  op:('a -> 'a -> 'a) ->
  dummy:'a ->
  'a array * bool array ->
  'a array * bool array ->
  'a array * bool array

val apply_dense :
  grain:int ->
  f:('a -> 'a) ->
  dummy:'a ->
  'a array * bool array ->
  'a array * bool array

val apply_v : grain:int -> f:('a -> 'a) -> 'a ventry -> int array * 'a array

val reduce_dense :
  grain:int ->
  op:('a -> 'a -> 'a) ->
  identity:'a ->
  'a array * bool array ->
  'a
(** Chunk-combined dense reduce; requires exactly associative ⊕. *)

val reduce_v : grain:int -> op:('a -> 'a -> 'a) -> identity:'a -> 'a ventry -> 'a
(** Chunk-combined sparse reduce; requires exactly associative ⊕. *)

(** Static certification surface: the chunk decomposition and the safety
    argument of every kernel in this module, as data.  The analyzer's
    parallel-safety certifier ({!Analysis.Certify}) checks chunk
    write-set disjointness and [0, n) coverage for [Output_partitioned]
    kernels and [Kernels.exact_assoc] gating for [Chunk_combined] ones. *)
module Certify : sig
  type decomposition =
    | Output_partitioned
        (** chunks own disjoint output slices; exact for every ⊕ *)
    | Chunk_combined
        (** per-chunk partials combined in chunk order; needs exactly
            associative ⊕, so dispatch must gate on
            [Kernels.exact_assoc] *)

  type descriptor = {
    name : string;
    decomposition : decomposition;
    chunks : n:int -> grain:int -> (int * int) array;
        (** the index-space split, [(lo, hi)] half-open per chunk —
            must tile [0, n) exactly as [Pool.parallel_for] does *)
  }

  val pool_chunks : n:int -> grain:int -> (int * int) array
  (** The canonical [Pool.parallel_for] decomposition
      ([ci*g, min (n, ci*g+g))). *)

  val registry : unit -> descriptor list
  (** One descriptor per kernel in this module. *)

  val set_tamper : (descriptor -> descriptor) option -> unit
  (** Test hook: rewrite descriptors on their way out of {!registry}
      (seeded-defect tests hand the certifier a broken decomposition). *)
end
