(** Typed kernel entry points: each call keys a {!Kernel_sig}, obtains the
    (closure- or natively-compiled) kernel from {!Dispatch}, and marshals
    GraphBLAS containers across the ABI boundary.

    The vector family goes through the array ABI and has native codegen;
    the matrix family wraps the GBTL operations as closure kernels (the
    signature still flows through the cache, so dispatch statistics count
    every operation). *)

open Gbtl

val exact_assoc : dtype:string -> op:string -> bool
(** Whether ⊕ is exactly associative on the machine representation of
    [dtype] — the licence for dispatching a chunk-combined parallel
    kernel (regrouping a left fold is bit-identical only then).
    Min/Max/LogicalOr/LogicalAnd always; Plus/Times except on floats. *)

val set_assoc_override : (dtype:string -> op:string -> bool) option -> unit
(** Test hook: replace the {!exact_assoc} judgment (seeded-defect tests
    break the gate for real and assert the certifier notices). *)

type par_gate = Ungated | Gated_exact_assoc

val par_gates : (string * par_gate) list
(** Per parallel kernel (by [Par_kernels] name), whether its dispatch
    sites gate on {!exact_assoc} ([Gated_exact_assoc], the
    chunk-combined kernels) or dispatch for every operator ([Ungated],
    the output-partitioned ones). *)

val mxv :
  'a Dtype.t ->
  Op_spec.semiring ->
  ?direction:[ `Auto | `Pull | `Push ] ->
  transpose:bool ->
  'a Smatrix.t ->
  'a Svector.t ->
  'a Entries.t
(** Raw result [T = A ⊕.⊗ u] as entries; masking/accumulation happen in
    the caller's write step.  With [transpose] and the format layer on,
    a filled-in operand (fill ≥ 1/4, size ≥ 32) dispatches the CSC pull
    kernel instead of the CSR scatter; results are bit-identical.
    [direction] (default [`Auto], the fill heuristic) lets the plan
    optimizer force pull or push for the transposed product; it is
    ignored when [transpose] is false or the format layer is off. *)

val mxv_pull_masked :
  'a Dtype.t ->
  Op_spec.semiring ->
  visited:bool array ->
  'a Smatrix.t ->
  'a array * bool array ->
  'a Entries.t
(** Direction-optimized [Aᵀ ⊕.⊗ u] over the CSC side: output positions
    with [visited.(c)] set are skipped (the result is already
    complement-masked), the frontier arrives as a dense
    (values, occupancy) pair, and each column's gather exits early when
    the semiring's ⊕ saturates (BFS's lor; non-saturating monoids gather
    exhaustively).  The all-array ABI compiles natively. *)

val mxv_batch :
  'a Dtype.t ->
  Op_spec.semiring ->
  transpose:bool ->
  'a Smatrix.t ->
  'a Svector.t list ->
  'a Entries.t list
(** Coalesced dispatch for a batch of same-signature products: the
    kernel is resolved once (one cache lookup, at most one compile) from
    the first operand's layout, then applied to every vector in order.
    Results are element-wise identical to mapping {!mxv}, provided the
    operands share the layout class the batcher keys on. *)

val vxm :
  'a Dtype.t ->
  Op_spec.semiring ->
  transpose:bool ->
  'a Svector.t ->
  'a Smatrix.t ->
  'a Entries.t

val vxm_batch :
  'a Dtype.t ->
  Op_spec.semiring ->
  transpose:bool ->
  'a Smatrix.t ->
  'a Svector.t list ->
  'a Entries.t list
(** Batch twin of {!vxm}; matrix-first like {!mxv_batch} so the two
    share a call shape in the server's batcher. *)

val vxm_dense :
  'a Dtype.t ->
  Op_spec.semiring ->
  'a array * bool array ->
  'a Smatrix.t ->
  'a array * bool array
(** [u ⊕.⊗ A] with a dense operand and dense result, as a CSR scatter —
    the PageRank iteration's layout (no compaction between steps). *)

val vxm_pull_dense :
  'a Dtype.t ->
  Op_spec.semiring ->
  'a array * bool array ->
  'a Smatrix.t ->
  'a array * bool array
(** [u ⊕.⊗ A] in pull form over the cached CSC side; bit-identical to
    {!vxm_dense}.  Preferable when the CSC build is amortized over many
    products against the same matrix (PageRank's iteration). *)

val vxm_tile_acc :
  'a Dtype.t ->
  Op_spec.semiring ->
  tile_tag:string ->
  r0:int ->
  c0:int ->
  'a Smatrix.t ->
  'a array * bool array ->
  'a array * bool array ->
  unit
(** Tile continuation of {!vxm_pull_dense}: fold one CSR tile (placed at
    global offset [(r0, c0)]) into the caller's global dense
    (values, occupancy) accumulator in place, reading the tile's cached
    CSC side.  [tile_tag] (e.g. ["512x512"], {!Gbtl.Tmatrix.format_tag})
    rides in the signature's formats field, so each tiling caches its
    own compiled module.  Streaming every tile of a block column in
    ascending block-row order is bit-identical to {!vxm_pull_dense} on
    the untiled matrix — the out-of-core streaming product. *)

val ewise_v :
  [ `Add | `Mult ] ->
  'a Dtype.t ->
  op:string ->
  'a Svector.t ->
  'a Svector.t ->
  'a Entries.t

val ewise_fused_v :
  [ `Add | `Mult ] ->
  'a Dtype.t ->
  op:string ->
  chain:Op_spec.unary list ->
  'a Svector.t ->
  'a Svector.t ->
  'a Entries.t
(** One kernel (one compiled module) for a whole deferred chain
    [apply fk (... (a ⊕ b))]; [chain] innermost-first.  The signature
    carries the entire chain, so each distinct pipeline is its own cached
    module — the granularity trade-off the paper discusses in §V. *)

val apply_v : 'a Dtype.t -> Op_spec.unary -> 'a Svector.t -> 'a Entries.t

val apply_chain_v :
  'a Dtype.t -> chain:Op_spec.unary list -> 'a Svector.t -> 'a Entries.t
(** One kernel for a whole apply chain over a vector ([chain]
    innermost-first) — the nonblocking engine's apply∘apply fusion. *)

val ewise_mult_reduce_v :
  'a Dtype.t ->
  op:string ->
  monoid_op:string ->
  identity:string ->
  'a Svector.t ->
  'a Svector.t ->
  'a
(** [reduce (u ⊗ v)] in one pass: the eWiseMult intersection kernel's
    output folded with the monoid without materializing the intermediate
    vector — the nonblocking engine's mult∘reduce fusion. *)

val reduce_v_scalar :
  'a Dtype.t -> op:string -> identity:string -> 'a Svector.t -> 'a

(** {2 Dense-vector kernel variants}

    Operands and results are [(values, occupancy)] pairs; signatures
    carry [formats] entries (["u"/"v" -> "dense"]) so these cache
    separately from the sparse kernels.  Entry-for-entry identical
    results. *)

val ewise_v_dense :
  [ `Add | `Mult ] ->
  'a Dtype.t ->
  op:string ->
  'a array * bool array ->
  'a array * bool array ->
  'a array * bool array

val apply_v_dense :
  'a Dtype.t -> Op_spec.unary -> 'a array * bool array -> 'a array * bool array

val reduce_v_scalar_dense :
  'a Dtype.t -> op:string -> identity:string -> 'a array * bool array -> 'a

val mxm :
  'a Dtype.t ->
  Op_spec.semiring ->
  transpose_a:bool ->
  transpose_b:bool ->
  mask:Mask.mmask ->
  'a Smatrix.t ->
  'a Smatrix.t ->
  'a Smatrix.t
(** Fresh result matrix (pruned by the mask's structure when profitable);
    the caller's write step applies the full mask semantics. *)

val ewise_m :
  [ `Add | `Mult ] ->
  'a Dtype.t ->
  op:string ->
  transpose_a:bool ->
  transpose_b:bool ->
  'a Smatrix.t ->
  'a Smatrix.t ->
  'a Smatrix.t

val apply_m : 'a Dtype.t -> Op_spec.unary -> transpose:bool -> 'a Smatrix.t -> 'a Smatrix.t

val reduce_rows :
  'a Dtype.t ->
  op:string ->
  identity:string ->
  transpose:bool ->
  'a Smatrix.t ->
  'a Entries.t

val reduce_m_scalar :
  'a Dtype.t -> op:string -> identity:string -> 'a Smatrix.t -> 'a

val transpose_m : 'a Dtype.t -> 'a Smatrix.t -> 'a Smatrix.t
