(* Circuit breaker over the native compile pipeline.  After [threshold]
   consecutive native failures the breaker opens: dispatch stops probing
   ocamlopt entirely (saving the failed-compile latency on every new
   signature) and serves closures.  After [cooldown] seconds it
   half-opens and admits exactly one trial compile; success closes the
   circuit, failure re-opens it for another cooldown. *)

type state = Closed | Open | Half_open

let lock = Mutex.create ()

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some x when x >= 0.0 -> x
  | _ -> default

let threshold = ref (env_int "OGB_JIT_BREAKER_K" 5)
let cooldown = ref (env_float "OGB_JIT_BREAKER_COOLDOWN" 30.0)

let st = ref Closed
let consecutive_failures = ref 0
let opened_at = ref 0.0

let set_threshold k = Mutex.protect lock (fun () -> threshold := max 1 k)
let set_cooldown s = Mutex.protect lock (fun () -> cooldown := max 0.0 s)
let get_threshold () = !threshold
let get_cooldown () = !cooldown

let reset () =
  Mutex.protect lock @@ fun () ->
  st := Closed;
  consecutive_failures := 0

let state () = Mutex.protect lock (fun () -> !st)

let state_string () =
  match state () with
  | Closed -> "closed"
  | Open ->
    Printf.sprintf "open (cooldown %.1fs, %.1fs elapsed)" !cooldown
      (Unix.gettimeofday () -. !opened_at)
  | Half_open -> "half-open (one trial in flight)"

let allow () =
  Mutex.protect lock @@ fun () ->
  match !st with
  | Closed -> true
  | Half_open ->
    (* one trial at a time; everyone else keeps using closures *)
    Jit_stats.record_breaker_short_circuit ();
    false
  | Open ->
    if Unix.gettimeofday () -. !opened_at >= !cooldown then begin
      st := Half_open;
      true
    end
    else begin
      Jit_stats.record_breaker_short_circuit ();
      false
    end

let success () =
  Mutex.protect lock @@ fun () ->
  consecutive_failures := 0;
  st := Closed

let failure () =
  Mutex.protect lock @@ fun () ->
  match !st with
  | Half_open ->
    (* the trial failed: straight back to open, fresh cooldown *)
    st := Open;
    opened_at := Unix.gettimeofday ();
    Jit_stats.record_breaker_trip ()
  | Open -> ()
  | Closed ->
    incr consecutive_failures;
    if !consecutive_failures >= !threshold then begin
      st := Open;
      opened_at := Unix.gettimeofday ();
      Jit_stats.record_breaker_trip ()
    end
