type t = {
  op : string;
  dtypes : (string * string) list;
  operators : (string * string) list;
  formats : (string * string) list;
  flags : string list;
  par : string;
}

let sort_pairs = List.sort (fun (a, _) (b, _) -> String.compare a b)

let make ~op ?(dtypes = []) ?(operators = []) ?(formats = []) ?(flags = [])
    ?(par = "") () =
  { op;
    dtypes = sort_pairs dtypes;
    operators = sort_pairs operators;
    formats = sort_pairs formats;
    flags = List.sort_uniq String.compare flags;
    par }

let key t =
  let pairs l = String.concat "," (List.map (fun (k, v) -> k ^ ":" ^ v) l) in
  let base =
    Printf.sprintf "%s|%s|%s|%s|%s" t.op (pairs t.dtypes) (pairs t.operators)
      (pairs t.formats)
      (String.concat "," t.flags)
  in
  (* Sequential signatures keep the five-field key (stable disk hashes
     across this revision's warm caches); parallel variants append the
     grain as a sixth field. *)
  if t.par = "" then base else base ^ "|" ^ t.par

(* Field 4 of a [key] string — the per-signature format column the CLI
   cache table shows. *)
let formats_of_key k =
  match String.split_on_char '|' k with
  | _ :: _ :: _ :: f :: _ -> if f = "" then "-" else f
  | _ -> "-"

(* FNV-1a, 64-bit. *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let sanitize op =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    op

(* Bump whenever the generated source for an existing key changes shape:
   disk artifacts are addressed by hash, so without the salt a warm
   cache would keep loading the stale module. *)
let codegen_rev = 3

let hash_key t =
  Printf.sprintf "%s_%016Lx" (sanitize t.op)
    (fnv1a (Printf.sprintf "r%d|%s" codegen_rev (key t)))

let pp fmt t = Format.pp_print_string fmt (key t)
