type backend = Auto | Closure | Native

let the_backend = ref Auto

let set_backend b = the_backend := b
let backend () = !the_backend

let effective_backend () =
  match !the_backend with
  | Closure -> `Closure
  | Native -> `Native
  | Auto -> if Native_backend.available () then `Native else `Closure

let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 256

(* One coarse lock makes dispatch domain-safe: kernel compilation is rare
   and a warm hit only holds it for a hashtable probe. *)
let lock = Mutex.create ()

let now () = Unix.gettimeofday ()

let closure_compile ~key ~hash ~build ~source =
  (* The closure backend still runs codegen when available and persists
     the source plus a build marker, mirroring the native pipeline's disk
     artifacts; the "compiled module" is the specialized closure. *)
  let t0 = now () in
  let kernel = build () in
  (match source with Some src -> Disk_cache.store_source hash src | None -> ());
  Disk_cache.touch_marker hash;
  Jit_stats.record_compile ~native:false ~seconds:(now () -. t0);
  Jit_stats.record_signature key ~hit:false;
  kernel

let get sig_ ~build ?native_source () =
  Mutex.protect lock @@ fun () ->
  Jit_stats.record_lookup ();
  let key = Kernel_sig.key sig_ in
  match Hashtbl.find_opt table key with
  | Some k ->
    Jit_stats.record_memory_hit ();
    Jit_stats.record_signature key ~hit:true;
    k
  | None ->
    let hash = Kernel_sig.hash_key sig_ in
    let source =
      match native_source with Some f -> f ~key | None -> None
    in
    let kernel =
      match effective_backend (), source with
      | `Native, Some src -> (
        if Disk_cache.has_cmxs hash then
          match Native_backend.load_cached ~hash ~key with
          | Ok k ->
            Jit_stats.record_disk_hit ();
            Jit_stats.record_signature key ~hit:true;
            k
          | Error _ ->
            (* stale artifact: recompile *)
            let t0 = now () in
            (match Native_backend.compile_and_load ~hash ~source:src ~key with
            | Ok k ->
              Jit_stats.record_compile ~native:true ~seconds:(now () -. t0);
              Jit_stats.record_signature key ~hit:false;
              k
            | Error _ ->
              Jit_stats.record_native_failure ();
              closure_compile ~key ~hash ~build ~source:(Some src))
        else
          let t0 = now () in
          match Native_backend.compile_and_load ~hash ~source:src ~key with
          | Ok k ->
            Jit_stats.record_compile ~native:true ~seconds:(now () -. t0);
            Jit_stats.record_signature key ~hit:false;
            k
          | Error _ ->
            Jit_stats.record_native_failure ();
            closure_compile ~key ~hash ~build ~source:(Some src))
      | `Native, None | `Closure, _ ->
        if Disk_cache.has_marker hash then begin
          Jit_stats.record_disk_hit ();
          Jit_stats.record_signature key ~hit:true;
          let kernel = build () in
          kernel
        end
        else closure_compile ~key ~hash ~build ~source
    in
    Hashtbl.replace table key kernel;
    kernel

let cached sig_ =
  Mutex.protect lock (fun () -> Hashtbl.mem table (Kernel_sig.key sig_))

let clear_memory_cache () = Mutex.protect lock (fun () -> Hashtbl.reset table)

let memory_cache_size () =
  Mutex.protect lock (fun () -> Hashtbl.length table)
