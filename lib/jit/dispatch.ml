type backend = Auto | Closure | Native

let the_backend = ref Auto

let set_backend b = the_backend := b
let backend () = !the_backend

let effective_backend () =
  match !the_backend with
  | Closure -> `Closure
  | Native -> `Native
  | Auto -> if Native_backend.available () then `Native else `Closure

let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 256

(* The global lock now guards only the two tables (warm hits hold it for
   a hashtable probe).  Compilation happens outside it: the first caller
   for a key parks an in-flight entry, compiles unlocked, and publishes;
   concurrent callers for the same key block on that entry's condvar
   while callers for other keys — e.g. warm hits on other domains — are
   unaffected.  Before this, a ~100ms native compile stalled every
   lookup in the process. *)
let lock = Mutex.create ()

type inflight_entry = {
  m : Mutex.t;
  cv : Condition.t;
  mutable outcome : [ `Pending | `Done of Obj.t | `Failed of exn ];
}

let inflight : (string, inflight_entry) Hashtbl.t = Hashtbl.create 16

let now () = Unix.gettimeofday ()

let closure_compile ~key ~hash ~build ~source =
  (* The closure backend still runs codegen when available and persists
     the source plus a build marker, mirroring the native pipeline's disk
     artifacts; the "compiled module" is the specialized closure. *)
  let t0 = now () in
  let kernel = build () in
  (match source with
  | Some src -> ignore (Disk_cache.store_source hash src)
  | None -> ());
  Disk_cache.touch_marker hash;
  Jit_stats.record_compile ~native:false ~seconds:(now () -. t0);
  Jit_stats.record_signature key ~hit:false;
  kernel

(* The native pipeline for one signature: checksum-verified disk load
   when possible, else compile (single-flight across processes, with
   timeout and retry inside Native_backend), falling back to the closure
   backend on any failure.  Every outcome feeds the circuit breaker. *)
let native_compile ~key ~hash ~src ~build =
  let fresh () =
    let t0 = now () in
    match Native_backend.compile_and_load ~hash ~source:src ~key with
    | Ok k ->
      Jit_stats.record_compile ~native:true ~seconds:(now () -. t0);
      Jit_stats.record_signature key ~hit:false;
      Breaker.success ();
      k
    | Error _ ->
      Jit_stats.record_native_failure ();
      Breaker.failure ();
      closure_compile ~key ~hash ~build ~source:(Some src)
  in
  let cached_valid =
    Disk_cache.has_cmxs hash
    &&
    match Disk_cache.verify_cmxs hash with
    | `Ok | `No_sum -> true
    | `Mismatch ->
      (* corrupt artifact: quarantine it and recompile from source *)
      Disk_cache.quarantine hash;
      false
  in
  if cached_valid then
    match Native_backend.load_cached ~hash ~key with
    | Ok k ->
      Jit_stats.record_disk_hit ();
      Jit_stats.record_signature key ~hit:true;
      Breaker.success ();
      k
    | Error _ -> fresh ()
  else fresh ()

(* Build/compile the kernel for a missing key (runs with no lock held). *)
let produce sig_ ~key ~build ~native_source =
  let hash = Kernel_sig.hash_key sig_ in
  let source = match native_source with Some f -> f ~key | None -> None in
  match effective_backend (), source with
  | `Native, Some src ->
    if Breaker.allow () then native_compile ~key ~hash ~src ~build
    else closure_compile ~key ~hash ~build ~source:(Some src)
  | `Native, None | `Closure, _ ->
    if Disk_cache.has_marker hash then begin
      Jit_stats.record_disk_hit ();
      Jit_stats.record_signature key ~hit:true;
      build ()
    end
    else closure_compile ~key ~hash ~build ~source

let rec get sig_ ~build ?native_source () =
  let key = Kernel_sig.key sig_ in
  Mutex.lock lock;
  Jit_stats.record_lookup ();
  match Hashtbl.find_opt table key with
  | Some k ->
    Jit_stats.record_memory_hit ();
    Mutex.unlock lock;
    Jit_stats.record_signature key ~hit:true;
    k
  | None -> (
    match Hashtbl.find_opt inflight key with
    | Some entry -> (
      (* someone else is compiling this key: wait for their result *)
      Jit_stats.record_inflight_wait ();
      Mutex.unlock lock;
      Mutex.lock entry.m;
      while entry.outcome = `Pending do
        Condition.wait entry.cv entry.m
      done;
      let outcome = entry.outcome in
      Mutex.unlock entry.m;
      match outcome with
      | `Done k ->
        Jit_stats.record_memory_hit ();
        Jit_stats.record_signature key ~hit:true;
        k
      | `Failed _ | `Pending ->
        (* the producer failed; retry from scratch (our own attempt may
           take a different path, e.g. the closure backend) *)
        get sig_ ~build ?native_source ())
    | None ->
      let entry =
        { m = Mutex.create (); cv = Condition.create (); outcome = `Pending }
      in
      Hashtbl.replace inflight key entry;
      Mutex.unlock lock;
      let outcome =
        match produce sig_ ~key ~build ~native_source with
        | k -> `Done k
        | exception e -> `Failed e
      in
      Mutex.lock lock;
      (match outcome with
      | `Done k -> Hashtbl.replace table key k
      | `Failed _ | `Pending -> ());
      Hashtbl.remove inflight key;
      Mutex.unlock lock;
      Mutex.lock entry.m;
      entry.outcome <- outcome;
      Condition.broadcast entry.cv;
      Mutex.unlock entry.m;
      (match outcome with
      | `Done k -> k
      | `Failed e -> raise e
      | `Pending -> assert false))

let cached sig_ =
  Mutex.protect lock (fun () -> Hashtbl.mem table (Kernel_sig.key sig_))

let clear_memory_cache () = Mutex.protect lock (fun () -> Hashtbl.reset table)

let memory_cache_size () =
  Mutex.protect lock (fun () -> Hashtbl.length table)
