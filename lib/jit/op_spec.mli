(** Operator specifications by {e name} — what flows from the DSL's
    context stack into kernel signatures, and only then gets instantiated
    at a concrete dtype (PyGB's [-DADD_BINOP=Plus -DIDENTITY=0 ...]
    preprocessor defines, see paper Fig. 9). *)

type semiring = { add_op : string; add_identity : string; mul_op : string }

type unary =
  | Named of string
  | Bound of { op : string; side : [ `First | `Second ]; const : float }
      (** a binary operator with one operand fixed, e.g.
          [Times $ 0.85] in PageRank's damping step *)

val arithmetic : semiring
val logical : semiring
val min_plus : semiring

val semiring_of_name : string -> semiring
(** Accepts the GBTL names ({!Gbtl.Semiring.names}).
    @raise Gbtl.Semiring.Unknown_semiring *)

val semiring_name : semiring -> string
(** Stable name for signatures (the GBTL name when it is one). *)

val monoid_of_semiring : semiring -> string * string
(** (op, identity) of the additive monoid. *)

val unary_name : unary -> string

val unary_of_name : string -> unary
(** Inverse of {!unary_name}: parses ["Op$bind1st:K"]/["Op$bind2nd:K"]
    back into [Bound] (exact round-trip through the %.17g constant);
    any other string is [Named].  Used by the AOT warm-up to rebuild
    operators from inferred signature strings. *)

val instantiate_semiring : 'a Gbtl.Dtype.t -> semiring -> 'a Gbtl.Semiring.t
val instantiate_unary : 'a Gbtl.Dtype.t -> unary -> 'a Gbtl.Unaryop.t
val instantiate_monoid :
  'a Gbtl.Dtype.t -> op:string -> identity:string -> 'a Gbtl.Monoid.t
