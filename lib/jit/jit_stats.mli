(** Dispatch statistics: how often kernels were served from the in-memory
    table, from the on-disk cache, or freshly compiled — the data behind
    the compile-time experiment (E3 in DESIGN.md). *)

type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;  (** subset of [compiles] that ran ocamlopt *)
  native_failures : int;  (** native attempts that fell back to closures *)
  compile_seconds : float;  (** cumulative wall time spent compiling *)
  warm_requests : int;  (** signatures the AOT warm-up was asked to build *)
  warm_compiles : int;  (** warm-up requests that triggered a compile *)
  cache_write_failures : int;  (** disk-cache writes that failed (EACCES…) *)
  checksum_quarantines : int;  (** corrupt artifacts quarantined + recompiled *)
  compile_timeouts : int;  (** runaway ocamlopt processes killed *)
  compile_retries : int;  (** transient compile failures retried *)
  breaker_trips : int;  (** circuit breaker Closed→Open transitions *)
  breaker_short_circuits : int;  (** native attempts denied by an open breaker *)
  inflight_waits : int;  (** dispatches that waited on another domain's compile *)
  sched_worker_failures : int;  (** plan-node failures on worker domains *)
  sched_seq_reruns : int;  (** plans re-executed sequentially after a failure *)
  blocking_fallbacks : int;  (** expressions re-evaluated on the blocking path *)
  effects_checks : int;  (** effect-analysis passes over a plan *)
  effects_hazards : int;  (** footprint hazards found (pre-remedy) *)
  effects_rejections : int;  (** planner candidates rejected for a hazard *)
  effects_degraded : int;  (** analysis crashes contained (loud degrade) *)
}

val record_lookup : unit -> unit
val record_memory_hit : unit -> unit
val record_disk_hit : unit -> unit
val record_compile : native:bool -> seconds:float -> unit
val record_native_failure : unit -> unit

val record_warm_request : unit -> unit
val record_warm_compile : unit -> unit
(** Ahead-of-time warm-up bookkeeping (driven by the static analyzer). *)

val record_cache_write_failure : unit -> unit
val record_checksum_quarantine : unit -> unit
val record_compile_timeout : unit -> unit
val record_compile_retry : unit -> unit
val record_breaker_trip : unit -> unit
val record_breaker_short_circuit : unit -> unit
val record_inflight_wait : unit -> unit
val record_sched_worker_failure : unit -> unit
val record_sched_seq_rerun : unit -> unit
val record_blocking_fallback : unit -> unit
(** Resilience bookkeeping (fed by the hardened cache/compile pipeline,
    the circuit breaker and the scheduler's failure containment). *)

val record_effects_check : unit -> unit
val record_effects_hazard : count:int -> unit
val record_effects_rejection : unit -> unit
val record_effects_degraded : unit -> unit
(** Effect-analysis bookkeeping (fed by [Analysis.Effects] through the
    verifier hook: checks run, hazards found before any remedy, planner
    candidates rejected for a footprint hazard, and analysis failures
    contained as loud degrades). *)

val record_signature : string -> hit:bool -> unit
(** Tally one dispatch of the given {!Kernel_sig.key} as a cache hit
    (memory or disk) or a miss (fresh compile). *)

val record_fusion : string -> unit
(** Count one firing of a fusion rewrite (by rewrite name); fed by the
    nonblocking engine's optimizer. *)

val per_signature : unit -> (string * int * int) list
(** [(signature key, hits, misses)] sorted by key. *)

val record_kernel_time : family:string -> items:int -> seconds:float -> unit
(** Tally one timed kernel execution under a coarse family name
    ("mxv_pull", "ewise_v", …): the raw observations the cost model's
    calibration (lib/cost) normalizes into ns/item coefficients.
    Non-positive item counts are dropped. *)

val kernel_times : unit -> (string * float * float * int) list
(** [(family, total items, total seconds, samples)] sorted by family. *)

val fusions : unit -> (string * int) list
(** [(rewrite name, firings)] sorted by name. *)

val formats : unit -> (string * int) list
(** Storage-format counters (CSC builds, densify/sparsify conversions,
    auto-switch decisions, push/pull steps, sparse masks) — re-exported
    from [Gbtl.Format_stats]. *)

val pool : unit -> (string * int) list
(** Domain-pool counters (parallel/sequential jobs, chunks, tasks,
    sequential degrades) — re-exported from [Parallel.Pool]. *)

val tiles : unit -> (string * int) list
(** Out-of-core tile counters (loads, stores, evictions, quarantines,
    rebuilds, checkpoint generations, delta plans, resident gauges) —
    re-exported from [Gbtl.Tile_stats]. *)

val pool_busy_seconds : unit -> float
(** Cumulative wall time pool domains spent inside chunk bodies —
    re-exported from [Parallel.Pool]. *)

val snapshot : unit -> snapshot
val reset : unit -> unit
val pp : Format.formatter -> snapshot -> unit
