(** Dispatch statistics: how often kernels were served from the in-memory
    table, from the on-disk cache, or freshly compiled — the data behind
    the compile-time experiment (E3 in DESIGN.md). *)

type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;  (** subset of [compiles] that ran ocamlopt *)
  native_failures : int;  (** native attempts that fell back to closures *)
  compile_seconds : float;  (** cumulative wall time spent compiling *)
  warm_requests : int;  (** signatures the AOT warm-up was asked to build *)
  warm_compiles : int;  (** warm-up requests that triggered a compile *)
}

val record_lookup : unit -> unit
val record_memory_hit : unit -> unit
val record_disk_hit : unit -> unit
val record_compile : native:bool -> seconds:float -> unit
val record_native_failure : unit -> unit

val record_warm_request : unit -> unit
val record_warm_compile : unit -> unit
(** Ahead-of-time warm-up bookkeeping (driven by the static analyzer). *)

val record_signature : string -> hit:bool -> unit
(** Tally one dispatch of the given {!Kernel_sig.key} as a cache hit
    (memory or disk) or a miss (fresh compile). *)

val record_fusion : string -> unit
(** Count one firing of a fusion rewrite (by rewrite name); fed by the
    nonblocking engine's optimizer. *)

val per_signature : unit -> (string * int * int) list
(** [(signature key, hits, misses)] sorted by key. *)

val fusions : unit -> (string * int) list
(** [(rewrite name, firings)] sorted by name. *)

val formats : unit -> (string * int) list
(** Storage-format counters (CSC builds, densify/sparsify conversions,
    auto-switch decisions, push/pull steps, sparse masks) — re-exported
    from [Gbtl.Format_stats]. *)

val snapshot : unit -> snapshot
val reset : unit -> unit
val pp : Format.formatter -> snapshot -> unit
