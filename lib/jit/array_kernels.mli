(** The kernel algorithms on raw arrays — the bodies that dynamic
    compilation specializes.  The closure backend instantiates these with
    operator closures; the native backend's generated source is the
    monomorphized text of the same algorithms ({!Codegen}).

    ABI conventions (what crosses the [Obj.t] boundary):
    - a sparse vector is [(indices, values, nvals)], indices ascending;
    - a CSR matrix is [(rowptr, colidx, values)];
    - results come back as exactly-sized [(indices, values)] pairs. *)

type 'a ventry = int array * 'a array * int
type 'a csr = int array * int array * 'a array

val mxv :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  transpose:bool ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** [w = A ⊕.⊗ u] (or [Aᵀ ⊕.⊗ u]); output size is [nrows] ([ncols] when
    transposed). *)

val mxv_pull :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  'a csr ->
  'a ventry ->
  int array * 'a array
(** [w = Aᵀ ⊕.⊗ u] in pull form over the CSC arrays of [A] (passed as
    [(colptr, rowidx, cvals)]); [nrows]/[ncols] are A's.  Bit-identical
    to [mxv ~transpose:true]. *)

val mxv_pull_masked :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  stop:('a -> bool) ->
  ncols:int ->
  visited:bool array ->
  'a csr ->
  'a array * bool array ->
  int array * 'a array
(** Masked pull with a dense frontier: output positions with
    [visited.(c)] set are skipped (the result is already complement-
    masked), and each column's gather exits early once [stop acc] holds —
    [stop] must only hold when ⊕ can no longer change the accumulator
    (constant-false is always sound). *)

val vxm_pull_dense :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  ncols:int ->
  'a csr ->
  'a array * bool array ->
  'a array * bool array
(** [w = u ⊕.⊗ A] in pull form over the CSC arrays of [A] (passed as
    [(colptr, rowidx, cvals)]); dense operand, dense result.
    Bit-identical to [vxm_dense]. *)

val vxm_dense :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  'a array * bool array ->
  'a csr ->
  'a array * bool array
(** [w = u ⊕.⊗ A] with a dense operand and dense (values, occupancy)
    result. *)

val vxm_tile_acc :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  r0:int ->
  c0:int ->
  tncols:int ->
  'a csr ->
  'a array * bool array ->
  'a array * bool array ->
  unit
(** Tile continuation of {!vxm_pull_dense}: fold one tile's CSC arrays
    (tile-local indices; [r0]/[c0] place it globally) into the caller's
    global (values, occupancy) accumulator {e in place}, seeding each
    column from the value already accumulated.  Streaming a block
    column's tiles in ascending block-row order therefore reproduces the
    full-matrix column fold exactly — bit-identical even for float ⊕. *)

val vxm :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows:int ->
  ncols:int ->
  transpose:bool ->
  'a ventry ->
  'a csr ->
  int array * 'a array

val mxm_gustavson :
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  dummy:'a ->
  nrows_a:int ->
  ncols_b:int ->
  'a csr ->
  'a csr ->
  int array * int array * 'a array
(** Row-wise SPA product [C = A ⊕.⊗ B]; result as CSR
    (rowptr, colidx, values). *)

val ewise_add_v :
  op:('a -> 'a -> 'a) -> 'a ventry -> 'a ventry -> int array * 'a array

val ewise_mult_v :
  op:('a -> 'a -> 'a) -> 'a ventry -> 'a ventry -> int array * 'a array

val apply_v : f:('a -> 'a) -> 'a ventry -> int array * 'a array

val reduce_v : op:('a -> 'a -> 'a) -> identity:'a -> 'a ventry -> 'a

(** {2 Dense-vector variants}

    Operands and results are [(values, occupancy)] pairs of equal
    length; unoccupied output slots hold [dummy].  Entry-for-entry
    identical to the sparse kernels above. *)

val ewise_add_dense :
  op:('a -> 'a -> 'a) ->
  dummy:'a ->
  'a array * bool array ->
  'a array * bool array ->
  'a array * bool array

val ewise_mult_dense :
  op:('a -> 'a -> 'a) ->
  dummy:'a ->
  'a array * bool array ->
  'a array * bool array ->
  'a array * bool array

val apply_dense :
  f:('a -> 'a) -> dummy:'a -> 'a array * bool array -> 'a array * bool array

val reduce_dense :
  op:('a -> 'a -> 'a) -> identity:'a -> 'a array * bool array -> 'a
