type t = {
  backend : string;
  effective : string;
  breaker : string;
  breaker_threshold : int;
  breaker_cooldown : float;
  compile_timeout : float;
  compile_retries : int;
  cache_dir : string;
  cache_ok : int;
  cache_no_sum : int;
  cache_mismatch : int;
  faults : string;
  fault_counters : (string * int * int) list;
  stats : Jit_stats.snapshot;
  pool_domains : int;
  pool_threshold : int;
  pool_counters : (string * int) list;
  pool_busy_seconds : float;
}

let collect ?(probe = true) () =
  let scan = Disk_cache.integrity_scan () in
  let count v = List.length (List.filter (fun (_, s) -> s = v) scan) in
  { backend =
      (if probe then Native_backend.explain ()
       else "not probed (pass --probe)");
    effective =
      (if probe then
         match Dispatch.effective_backend () with
         | `Native -> "native"
         | `Closure -> "closure"
       else
         match Dispatch.backend () with
         | Dispatch.Auto -> "auto (unresolved)"
         | Dispatch.Closure -> "closure"
         | Dispatch.Native -> "native");
    breaker = Breaker.state_string ();
    breaker_threshold = Breaker.get_threshold ();
    breaker_cooldown = Breaker.get_cooldown ();
    compile_timeout = Native_backend.compile_timeout ();
    compile_retries = Native_backend.compile_retries ();
    cache_dir = Disk_cache.dir ();
    cache_ok = count `Ok;
    cache_no_sum = count `No_sum;
    cache_mismatch = count `Mismatch;
    faults = Fault.describe ();
    fault_counters = Fault.counters ();
    stats = Jit_stats.snapshot ();
    pool_domains = Parallel.Pool.domains ();
    pool_threshold = Parallel.Pool.threshold ();
    pool_counters = Jit_stats.pool ();
    pool_busy_seconds = Jit_stats.pool_busy_seconds () }

let healthy t = t.cache_mismatch = 0 && Breaker.state () <> Breaker.Open

let pp fmt t =
  Format.fprintf fmt "backend:          %s@\n" t.backend;
  Format.fprintf fmt "effective:        %s@\n" t.effective;
  Format.fprintf fmt "circuit breaker:  %s (threshold=%d, cooldown=%.1fs)@\n"
    t.breaker t.breaker_threshold t.breaker_cooldown;
  Format.fprintf fmt "compile timeout:  %.1fs, retries: %d@\n"
    t.compile_timeout t.compile_retries;
  Format.fprintf fmt "cache directory:  %s@\n" t.cache_dir;
  Format.fprintf fmt
    "cache integrity:  %d ok, %d unchecksummed, %d corrupt@\n" t.cache_ok
    t.cache_no_sum t.cache_mismatch;
  Format.fprintf fmt "fault injection:  %s@\n" t.faults;
  List.iter
    (fun (point, attempts, fired) ->
      Format.fprintf fmt "  %-28s attempts=%d fired=%d@\n" point attempts
        fired)
    t.fault_counters;
  Format.fprintf fmt "stats: %a@\n" Jit_stats.pp t.stats;
  Format.fprintf fmt "domain pool:      %d domains, par threshold %d@\n"
    t.pool_domains t.pool_threshold;
  Format.fprintf fmt "pool stats:       %s busy=%.6fs@\n"
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) t.pool_counters))
    t.pool_busy_seconds;
  Format.fprintf fmt "verdict:          %s@\n"
    (if healthy t then "healthy" else "DEGRADED")

let to_string t = Format.asprintf "%a" pp t
