type t = {
  backend : string;
  effective : string;
  breaker : string;
  breaker_threshold : int;
  breaker_cooldown : float;
  compile_timeout : float;
  compile_retries : int;
  cache_dir : string;
  cache_ok : int;
  cache_no_sum : int;
  cache_mismatch : int;
  faults : string;
  fault_counters : (string * int * int) list;
  stats : Jit_stats.snapshot;
  pool_domains : int;
  pool_threshold : int;
  pool_counters : (string * int) list;
  pool_busy_seconds : float;
  tile_store_dir : string;
  tile_disk_blobs : int;
  tile_disk_bytes : int;
  tile_disk_quarantined : int;
  tile_counters : (string * int) list;
}

let collect ?(probe = true) () =
  let scan = Disk_cache.integrity_scan () in
  let count v = List.length (List.filter (fun (_, s) -> s = v) scan) in
  let tile_fp = Gbtl.Tile_store.scan_root () in
  { backend =
      (if probe then Native_backend.explain ()
       else "not probed (pass --probe)");
    effective =
      (if probe then
         match Dispatch.effective_backend () with
         | `Native -> "native"
         | `Closure -> "closure"
       else
         match Dispatch.backend () with
         | Dispatch.Auto -> "auto (unresolved)"
         | Dispatch.Closure -> "closure"
         | Dispatch.Native -> "native");
    breaker = Breaker.state_string ();
    breaker_threshold = Breaker.get_threshold ();
    breaker_cooldown = Breaker.get_cooldown ();
    compile_timeout = Native_backend.compile_timeout ();
    compile_retries = Native_backend.compile_retries ();
    cache_dir = Disk_cache.dir ();
    cache_ok = count `Ok;
    cache_no_sum = count `No_sum;
    cache_mismatch = count `Mismatch;
    faults = Fault.describe ();
    fault_counters = Fault.counters ();
    stats = Jit_stats.snapshot ();
    pool_domains = Parallel.Pool.domains ();
    pool_threshold = Parallel.Pool.threshold ();
    pool_counters = Jit_stats.pool ();
    pool_busy_seconds = Jit_stats.pool_busy_seconds ();
    tile_store_dir = Gbtl.Tile_store.root_dir ();
    tile_disk_blobs = tile_fp.Gbtl.Tile_store.blobs;
    tile_disk_bytes = tile_fp.Gbtl.Tile_store.bytes;
    tile_disk_quarantined = tile_fp.Gbtl.Tile_store.quarantined;
    tile_counters = Jit_stats.tiles () }

let healthy t = t.cache_mismatch = 0 && Breaker.state () <> Breaker.Open

(* Exit-code contract (ogb doctor, server health endpoint): corrupt
   artifacts in the cache are a hard failure (integrity is gone until
   someone clears or quarantines them), while an open breaker is a
   degradation (every dispatch still succeeds on the closure backend). *)
let verdict t =
  if t.cache_mismatch > 0 then `Failed
  else if Breaker.state () = Breaker.Open then `Degraded
  else `Healthy

let verdict_string t =
  match verdict t with
  | `Healthy -> "healthy"
  | `Degraded -> "degraded"
  | `Failed -> "failed"

(* Machine-readable form of the exact same report: [ogb doctor --json]
   prints it, and the server's [health] response embeds it verbatim. *)
let to_json t =
  let b = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str s = Printf.sprintf "%S" s in
  out "{";
  out "\"backend\": %s, " (str t.backend);
  out "\"effective\": %s, " (str t.effective);
  out "\"breaker\": { \"state\": %s, \"threshold\": %d, \"cooldown_s\": %g }, "
    (str t.breaker) t.breaker_threshold t.breaker_cooldown;
  out "\"compile\": { \"timeout_s\": %g, \"retries\": %d }, "
    t.compile_timeout t.compile_retries;
  out "\"cache\": { \"dir\": %s, \"ok\": %d, \"no_sum\": %d, \"mismatch\": %d }, "
    (str t.cache_dir) t.cache_ok t.cache_no_sum t.cache_mismatch;
  out "\"faults\": %s, " (str t.faults);
  out "\"fault_counters\": [%s], "
    (String.concat ", "
       (List.map
          (fun (p, a, f) ->
            Printf.sprintf
              "{ \"point\": %s, \"attempts\": %d, \"fired\": %d }" (str p) a f)
          t.fault_counters));
  let s = t.stats in
  out
    "\"stats\": { \"lookups\": %d, \"memory_hits\": %d, \"disk_hits\": %d, \
     \"compiles\": %d, \"native_compiles\": %d, \"native_failures\": %d, \
     \"compile_seconds\": %.6f, \"warm_requests\": %d, \"warm_compiles\": %d, \
     \"cache_write_failures\": %d, \"checksum_quarantines\": %d, \
     \"compile_timeouts\": %d, \"compile_retries\": %d, \"breaker_trips\": %d, \
     \"breaker_short_circuits\": %d, \"inflight_waits\": %d, \
     \"sched_worker_failures\": %d, \"sched_seq_reruns\": %d, \
     \"blocking_fallbacks\": %d, \"effects_checks\": %d, \
     \"effects_hazards\": %d, \"effects_rejections\": %d, \
     \"effects_degraded\": %d }, "
    s.Jit_stats.lookups s.Jit_stats.memory_hits s.Jit_stats.disk_hits
    s.Jit_stats.compiles s.Jit_stats.native_compiles s.Jit_stats.native_failures
    s.Jit_stats.compile_seconds s.Jit_stats.warm_requests
    s.Jit_stats.warm_compiles s.Jit_stats.cache_write_failures
    s.Jit_stats.checksum_quarantines s.Jit_stats.compile_timeouts
    s.Jit_stats.compile_retries s.Jit_stats.breaker_trips
    s.Jit_stats.breaker_short_circuits s.Jit_stats.inflight_waits
    s.Jit_stats.sched_worker_failures s.Jit_stats.sched_seq_reruns
    s.Jit_stats.blocking_fallbacks s.Jit_stats.effects_checks
    s.Jit_stats.effects_hazards s.Jit_stats.effects_rejections
    s.Jit_stats.effects_degraded;
  out "\"pool\": { \"domains\": %d, \"threshold\": %d, \"busy_seconds\": %.6f%s }, "
    t.pool_domains t.pool_threshold t.pool_busy_seconds
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf ", %s: %d" (Printf.sprintf "%S" k) v)
          t.pool_counters));
  out
    "\"tiles\": { \"store_dir\": %s, \"disk_blobs\": %d, \"disk_bytes\": %d, \
     \"disk_quarantined\": %d%s }, "
    (str t.tile_store_dir) t.tile_disk_blobs t.tile_disk_bytes
    t.tile_disk_quarantined
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf ", %S: %d" k v)
          t.tile_counters));
  out "\"healthy\": %b, " (healthy t);
  out "\"verdict\": %s" (str (verdict_string t));
  out "}";
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "backend:          %s@\n" t.backend;
  Format.fprintf fmt "effective:        %s@\n" t.effective;
  Format.fprintf fmt "circuit breaker:  %s (threshold=%d, cooldown=%.1fs)@\n"
    t.breaker t.breaker_threshold t.breaker_cooldown;
  Format.fprintf fmt "compile timeout:  %.1fs, retries: %d@\n"
    t.compile_timeout t.compile_retries;
  Format.fprintf fmt "cache directory:  %s@\n" t.cache_dir;
  Format.fprintf fmt
    "cache integrity:  %d ok, %d unchecksummed, %d corrupt@\n" t.cache_ok
    t.cache_no_sum t.cache_mismatch;
  Format.fprintf fmt "fault injection:  %s@\n" t.faults;
  List.iter
    (fun (point, attempts, fired) ->
      Format.fprintf fmt "  %-28s attempts=%d fired=%d@\n" point attempts
        fired)
    t.fault_counters;
  Format.fprintf fmt "stats: %a@\n" Jit_stats.pp t.stats;
  Format.fprintf fmt "domain pool:      %d domains, par threshold %d@\n"
    t.pool_domains t.pool_threshold;
  Format.fprintf fmt "pool stats:       %s busy=%.6fs@\n"
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) t.pool_counters))
    t.pool_busy_seconds;
  Format.fprintf fmt "tile store:       %s (%d blobs, %d bytes, %d quarantined)@\n"
    t.tile_store_dir t.tile_disk_blobs t.tile_disk_bytes
    t.tile_disk_quarantined;
  Format.fprintf fmt "tile stats:       %s@\n"
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) t.tile_counters));
  Format.fprintf fmt "verdict:          %s@\n"
    (if healthy t then "healthy" else "DEGRADED")

let to_string t = Format.asprintf "%a" pp t
