(** Circuit breaker guarding the native compile pipeline.

    [Closed] (healthy): native compiles are attempted normally.  After
    [threshold] {e consecutive} failures the breaker trips to [Open]:
    every dispatch goes straight to the closure backend without paying
    for a doomed ocamlopt run (counted as a short circuit).  Once the
    cooldown elapses the next dispatch half-opens the circuit and runs
    one trial compile — success re-closes it, failure re-opens it for
    another cooldown.  Trips and short circuits are counted in
    {!Jit_stats}. *)

type state = Closed | Open | Half_open

val state : unit -> state
val state_string : unit -> string

val set_threshold : int -> unit
(** Consecutive failures before tripping (clamped to [>= 1]; default 5
    or [$OGB_JIT_BREAKER_K]). *)

val set_cooldown : float -> unit
(** Seconds from trip to half-open (default 30 or
    [$OGB_JIT_BREAKER_COOLDOWN]). *)

val get_threshold : unit -> int
val get_cooldown : unit -> float

val allow : unit -> bool
(** May dispatch attempt the native pipeline now?  [false] records a
    short circuit.  In [Open] state a lapsed cooldown transitions to
    [Half_open] and admits the caller as the single trial. *)

val success : unit -> unit
(** A native compile+load succeeded: reset the failure streak, close
    the circuit. *)

val failure : unit -> unit
(** A native compile+load failed (after its own retries): lengthen the
    streak, possibly trip; a half-open trial failure re-opens. *)

val reset : unit -> unit
(** Back to [Closed] with a clean streak (tests, cache clear). *)
