(* Kernel source templates.  The loop bodies are the monomorphized text of
   the Array_kernels algorithms; keep the two in sync. *)

type cls = F | I | B

let cls_of_dtype = function
  | "double" | "f64" -> Some F
  | "int64_t" | "i64" -> Some I
  | "bool" | "b" -> Some B
  | _ -> None

let supported_dtype d = cls_of_dtype d <> None

let ty = function F -> "float" | I -> "int" | B -> "bool"

let float_lit f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ "."

let const_lit cls f =
  match cls with
  | F -> float_lit f
  | I -> string_of_int (int_of_float f)
  | B -> if f <> 0.0 then "true" else "false"

let binop_expr_cls cls name =
  let f_truth = "(fun x -> x <> 0.)" and i_truth = "(fun x -> x <> 0)" in
  match cls, name with
  | F, "Plus" -> Some "(fun x y -> x +. y)"
  | F, "Minus" -> Some "(fun x y -> x -. y)"
  | F, "Times" -> Some "(fun x y -> x *. y)"
  | F, "Div" -> Some "(fun x y -> x /. y)"
  | F, "Min" -> Some "(fun (x : float) y -> if x <= y then x else y)"
  | F, "Max" -> Some "(fun (x : float) y -> if x >= y then x else y)"
  | F, "First" -> Some "(fun (x : float) (_ : float) -> x)"
  | F, "Second" -> Some "(fun (_ : float) (y : float) -> y)"
  | F, "LogicalOr" ->
    Some
      (Printf.sprintf "(fun x y -> if %s x || %s y then 1. else 0.)" f_truth
         f_truth)
  | F, "LogicalAnd" ->
    Some
      (Printf.sprintf "(fun x y -> if %s x && %s y then 1. else 0.)" f_truth
         f_truth)
  | F, "LogicalXor" ->
    Some
      (Printf.sprintf "(fun x y -> if %s x <> %s y then 1. else 0.)" f_truth
         f_truth)
  | F, "Equal" -> Some "(fun (x : float) y -> if x = y then 1. else 0.)"
  | F, "NotEqual" -> Some "(fun (x : float) y -> if x <> y then 1. else 0.)"
  | F, "LessThan" -> Some "(fun (x : float) y -> if x < y then 1. else 0.)"
  | F, "GreaterThan" -> Some "(fun (x : float) y -> if x > y then 1. else 0.)"
  | F, "LessEqual" -> Some "(fun (x : float) y -> if x <= y then 1. else 0.)"
  | F, "GreaterEqual" -> Some "(fun (x : float) y -> if x >= y then 1. else 0.)"
  | I, "Plus" -> Some "(fun x y -> x + y)"
  | I, "Minus" -> Some "(fun x y -> x - y)"
  | I, "Times" -> Some "(fun x y -> x * y)"
  | I, "Div" -> Some "(fun x y -> if y = 0 then 0 else x / y)"
  | I, "Min" -> Some "(fun (x : int) y -> if x <= y then x else y)"
  | I, "Max" -> Some "(fun (x : int) y -> if x >= y then x else y)"
  | I, "First" -> Some "(fun (x : int) (_ : int) -> x)"
  | I, "Second" -> Some "(fun (_ : int) (y : int) -> y)"
  | I, "LogicalOr" ->
    Some
      (Printf.sprintf "(fun x y -> if %s x || %s y then 1 else 0)" i_truth
         i_truth)
  | I, "LogicalAnd" ->
    Some
      (Printf.sprintf "(fun x y -> if %s x && %s y then 1 else 0)" i_truth
         i_truth)
  | I, "LogicalXor" ->
    Some
      (Printf.sprintf "(fun x y -> if %s x <> %s y then 1 else 0)" i_truth
         i_truth)
  | I, "Equal" -> Some "(fun (x : int) y -> if x = y then 1 else 0)"
  | I, "NotEqual" -> Some "(fun (x : int) y -> if x <> y then 1 else 0)"
  | I, "LessThan" -> Some "(fun (x : int) y -> if x < y then 1 else 0)"
  | I, "GreaterThan" -> Some "(fun (x : int) y -> if x > y then 1 else 0)"
  | I, "LessEqual" -> Some "(fun (x : int) y -> if x <= y then 1 else 0)"
  | I, "GreaterEqual" -> Some "(fun (x : int) y -> if x >= y then 1 else 0)"
  | B, "Plus" -> Some "(fun x y -> x || y)"
  | B, "Minus" -> Some "(fun (x : bool) y -> x <> y)"
  | B, "Times" -> Some "(fun x y -> x && y)"
  | B, "Div" -> Some "(fun (x : bool) (_ : bool) -> x)"
  | B, "Min" -> Some "(fun x y -> x && y)"
  | B, "Max" -> Some "(fun x y -> x || y)"
  | B, "First" -> Some "(fun (x : bool) (_ : bool) -> x)"
  | B, "Second" -> Some "(fun (_ : bool) (y : bool) -> y)"
  | B, "LogicalOr" -> Some "(fun x y -> x || y)"
  | B, "LogicalAnd" -> Some "(fun x y -> x && y)"
  | B, "LogicalXor" -> Some "(fun (x : bool) y -> x <> y)"
  | B, "Equal" -> Some "(fun (x : bool) y -> x = y)"
  | B, "NotEqual" -> Some "(fun (x : bool) y -> x <> y)"
  | B, "LessThan" -> Some "(fun x y -> (not x) && y)"
  | B, "GreaterThan" -> Some "(fun x y -> x && not y)"
  | B, "LessEqual" -> Some "(fun x y -> not (x && not y))"
  | B, "GreaterEqual" -> Some "(fun x y -> not ((not x) && y))"
  | (F | I | B), _ -> None

let identity_expr_cls cls name =
  match cls, name with
  | F, ("Zero" | "False") -> Some "0."
  | F, ("One" | "True") -> Some "1."
  | F, "MinIdentity" -> Some "infinity"
  | F, "MaxIdentity" -> Some "neg_infinity"
  | I, ("Zero" | "False") -> Some "0"
  | I, ("One" | "True") -> Some "1"
  | I, "MinIdentity" -> Some "max_int"
  | I, "MaxIdentity" -> Some "min_int"
  | B, ("Zero" | "False") -> Some "false"
  | B, ("One" | "True" | "MinIdentity") -> Some "true"
  | B, "MaxIdentity" -> Some "false"
  | (F | I | B), _ -> None

let unary_expr_cls cls (u : Op_spec.unary) =
  match u with
  | Op_spec.Named name -> (
    match cls, name with
    | _, "Identity" -> Some "(fun x -> x)"
    | F, "AdditiveInverse" -> Some "(fun x -> -. x)"
    | I, "AdditiveInverse" -> Some "(fun x -> - x)"
    | B, "AdditiveInverse" -> Some "(fun (x : bool) -> x)"
    | F, "LogicalNot" -> Some "(fun x -> if x = 0. then 1. else 0.)"
    | I, "LogicalNot" -> Some "(fun x -> if x = 0 then 1 else 0)"
    | B, "LogicalNot" -> Some "(fun x -> not x)"
    | F, "MultiplicativeInverse" -> Some "(fun x -> 1. /. x)"
    | I, "MultiplicativeInverse" -> Some "(fun x -> if x = 0 then 0 else 1 / x)"
    | B, "MultiplicativeInverse" -> Some "(fun (_ : bool) -> true)"
    | (F | I | B), _ -> None)
  | Op_spec.Bound { op; side; const } -> (
    match binop_expr_cls cls op with
    | None -> None
    | Some op_expr ->
      let k = const_lit cls const in
      Some
        (match side with
        | `First -> Printf.sprintf "(fun x -> %s %s x)" op_expr k
        | `Second -> Printf.sprintf "(fun x -> %s x %s)" op_expr k))

let with_cls dtype f = Option.bind (cls_of_dtype dtype) f

let binop_expr ~dtype name = with_cls dtype (fun c -> binop_expr_cls c name)
let identity_expr ~dtype name = with_cls dtype (fun c -> identity_expr_cls c name)
let unary_expr ~dtype u = with_cls dtype (fun c -> unary_expr_cls c u)

let header key =
  Printf.sprintf
    "(* generated by ogb-jit; kernel %s *)\n[@@@warning \"-26-27-32\"]\n" key

let register key =
  Printf.sprintf "let () = Jit_plugin_api.register %S (Obj.repr kernel)\n" key

(* The mxv/vxm bodies share the gather/scatter loops with the operand
   order of ⊗ spliced in. *)
let matvec_body ~t ~gather_term ~scatter_term =
  Printf.sprintf
    {|let kernel (arg : Obj.t) : Obj.t =
  let (arp, aci, avs, uidx, uvls, un, nrows, ncols, transpose) =
    (Obj.obj arg
      : int array * int array * %s array * int array * %s array * int * int
        * int * bool)
  in
  if not transpose then begin
    let u_dense = Array.make ncols identity_ in
    let u_occ = Array.make ncols false in
    for k = 0 to un - 1 do
      u_dense.(uidx.(k)) <- uvls.(k);
      u_occ.(uidx.(k)) <- true
    done;
    let out_idx = Array.make (max nrows 1) 0
    and out_vls = Array.make (max nrows 1) identity_ in
    let n = ref 0 in
    for i = 0 to nrows - 1 do
      let acc = ref identity_ and hit = ref false in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let j = aci.(p) in
        if u_occ.(j) then begin
          let v = %s in
          acc := (if !hit then add_ !acc v else v);
          hit := true
        end
      done;
      if !hit then begin
        out_idx.(!n) <- i;
        out_vls.(!n) <- !acc;
        incr n
      end
    done;
    Obj.repr (Array.sub out_idx 0 !n, Array.sub out_vls 0 !n)
  end
  else begin
    let acc = Array.make (max ncols 1) identity_ in
    let occ = Array.make (max ncols 1) false in
    for k = 0 to un - 1 do
      let j = uidx.(k) in
      let uj = uvls.(k) in
      for p = arp.(j) to arp.(j + 1) - 1 do
        let c = aci.(p) in
        let v = %s in
        if occ.(c) then acc.(c) <- add_ acc.(c) v
        else begin
          acc.(c) <- v;
          occ.(c) <- true
        end
      done
    done;
    let n = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then incr n
    done;
    let out_idx = Array.make (max !n 1) 0
    and out_vls = Array.make (max !n 1) identity_ in
    let k = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then begin
        out_idx.(!k) <- c;
        out_vls.(!k) <- acc.(c);
        incr k
      end
    done;
    Obj.repr (Array.sub out_idx 0 !n, Array.sub out_vls 0 !n)
  end
|}
    t t gather_term scatter_term

let matvec_source ~orientation ~dtype ~(sr : Op_spec.semiring) ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        let t = ty cls in
        (* mxv: term = A_value ⊗ u_value; vxm: u_value ⊗ A_value.  In the
           gather loop the matrix value is avs.(p) and the vector value is
           u_dense.(j); in the scatter loop they are avs.(p) and uj. *)
        let gather_term, scatter_term =
          match orientation with
          | `Mxv -> ("mul_ avs.(p) u_dense.(j)", "mul_ avs.(p) uj")
          | `Vxm -> ("mul_ u_dense.(j) avs.(p)", "mul_ uj avs.(p)")
        in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let identity_ : %s = %s\n" t ident;
               matvec_body ~t ~gather_term ~scatter_term;
               register key;
             ])
      | _, _, _ -> None)

let mxv_source ~dtype ~sr ~key = matvec_source ~orientation:`Mxv ~dtype ~sr ~key

(* vxm swaps the roles: the non-transposed direction is the scatter; the
   wrapper passes a [transpose] flag that the shared body interprets as
   "use the gather loop", so we must swap the branch meaning here.  To
   keep the generated code identical in structure, the wrapper for vxm
   passes [transpose = not gather_is_needed]; see Kernels.vxm. *)
let vxm_source ~dtype ~sr ~key = matvec_source ~orientation:`Vxm ~dtype ~sr ~key

(* CSC pull dispatch of the transposed product reuses the gather loop
   verbatim: the wrapper hands over the CSC arrays with swapped
   dimensions and the ABI flag false, so only the cache key (which
   carries the formats field) distinguishes the module. *)
let mxv_pull_source ~dtype ~sr ~key =
  matvec_source ~orientation:`Mxv ~dtype ~sr ~key

(* Scatter product with a dense frontier and dense (values, occupancy)
   accumulator output — the monomorphized text of
   Array_kernels.vxm_dense. *)
let vxm_dense_source ~dtype ~(sr : Op_spec.semiring) ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        let t = ty cls in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let identity_ : %s = %s\n" t ident;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (uvls, uocc, arp, aci, avs, nrows, ncols) =
    (Obj.obj arg
      : %s array * bool array * int array * int array * %s array * int * int)
  in
  let acc = Array.make (max ncols 1) identity_ in
  let occ = Array.make (max ncols 1) false in
  for i = 0 to nrows - 1 do
    if uocc.(i) then begin
      let ui = uvls.(i) in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let c = aci.(p) in
        let v = mul_ ui avs.(p) in
        if occ.(c) then acc.(c) <- add_ acc.(c) v
        else begin
          acc.(c) <- v;
          occ.(c) <- true
        end
      done
    end
  done;
  Obj.repr (acc, occ)
|}
                 t t;
               register key;
             ])
      | _, _, _ -> None)

(* Pull form of the dense-frontier product over the CSC arrays — the
   monomorphized text of Array_kernels.vxm_pull_dense.  One local
   accumulator per output position instead of a read-modify-write on the
   output arrays; rows ascend within each column, so the fold order (and
   hence the result) is identical to vxm_dense_source. *)
let vxm_pull_dense_source ~dtype ~(sr : Op_spec.semiring) ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        let t = ty cls in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let identity_ : %s = %s\n" t ident;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (uvls, uocc, acp, ari, avs, ncols) =
    (Obj.obj arg
      : %s array * bool array * int array * int array * %s array * int)
  in
  let acc = Array.make (max ncols 1) identity_ in
  let occ = Array.make (max ncols 1) false in
  let full = ref true in
  for i = 0 to Array.length uocc - 1 do
    if not uocc.(i) then full := false
  done;
  if !full then
    for c = 0 to ncols - 1 do
      let lo = acp.(c) and hi = acp.(c + 1) in
      if hi > lo then begin
        let a = ref (mul_ uvls.(ari.(lo)) avs.(lo)) in
        for p = lo + 1 to hi - 1 do
          a := add_ !a (mul_ uvls.(ari.(p)) avs.(p))
        done;
        acc.(c) <- !a;
        occ.(c) <- true
      end
    done
  else
    for c = 0 to ncols - 1 do
      let a = ref identity_ and hit = ref false in
      for p = acp.(c) to acp.(c + 1) - 1 do
        let i = ari.(p) in
        if uocc.(i) then begin
          let v = mul_ uvls.(i) avs.(p) in
          a := (if !hit then add_ !a v else v);
          hit := true
        end
      done;
      if !hit then begin
        acc.(c) <- !a;
        occ.(c) <- true
      end
    done;
  Obj.repr (acc, occ)
|}
                 t t;
               register key;
             ])
      | _, _, _ -> None)

(* Tile continuation of the pull product — the monomorphized text of
   Array_kernels.vxm_tile_acc.  Folds one tile's CSC columns into the
   caller's global accumulator in place; the cache key carries the tile
   shape in its formats field, so each tiling is its own module. *)
let vxm_tile_acc_source ~dtype ~(sr : Op_spec.semiring) ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op )
      with
      | Some add, Some mul ->
        let t = ty cls in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (uvls, uocc, r0, acp, ari, avs, c0, tncols, acc, occ) =
    (Obj.obj arg
      : %s array * bool array * int * int array * int array * %s array
        * int * int * %s array * bool array)
  in
  for lc = 0 to tncols - 1 do
    let c = c0 + lc in
    let a = ref acc.(c) and hit = ref occ.(c) in
    for p = acp.(lc) to acp.(lc + 1) - 1 do
      let i = r0 + ari.(p) in
      if uocc.(i) then begin
        let v = mul_ uvls.(i) avs.(p) in
        a := (if !hit then add_ !a v else v);
        hit := true
      end
    done;
    if !hit then begin
      acc.(c) <- !a;
      occ.(c) <- true
    end
  done;
  Obj.repr ()
|}
                 t t t;
               register key;
             ])
      | _, _ -> None)

(* Predicate text for "⊕ can no longer change this accumulator" — the
   early-exit test of the masked pull.  Only saturating monoids have
   one; for everything else the constant-false predicate keeps the loop
   exhaustive (and still correct). *)
let saturating_expr_cls cls add_op =
  match cls, add_op with
  | B, ("LogicalOr" | "Plus" | "Max") -> Some "(fun (x : bool) -> x)"
  | F, "LogicalOr" -> Some "(fun x -> x <> 0.)"
  | I, "LogicalOr" -> Some "(fun x -> x <> 0)"
  | (F | I | B), _ -> None

(* Masked pull over the CSC arrays with a dense frontier and a validity
   bitmap as the (complemented) mask — the monomorphized text of
   Array_kernels.mxv_pull_masked with [allowed c = not visited.(c)]. *)
let mxv_pull_masked_source ~dtype ~(sr : Op_spec.semiring) ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        let t = ty cls in
        let sat =
          match saturating_expr_cls cls sr.Op_spec.add_op with
          | Some e -> e
          | None -> Printf.sprintf "(fun (_ : %s) -> false)" t
        in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let sat_ = %s\n" sat;
               Printf.sprintf "let identity_ : %s = %s\n" t ident;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (acp, ari, avs, uvls, uocc, visited, ncols) =
    (Obj.obj arg
      : int array * int array * %s array * %s array * bool array * bool array
        * int)
  in
  let out_idx = Array.make (max ncols 1) 0 in
  let out_vls = Array.make (max ncols 1) identity_ in
  let n = ref 0 in
  for c = 0 to ncols - 1 do
    if not visited.(c) then begin
      let acc = ref identity_ and hit = ref false in
      let p = ref acp.(c) in
      let stop_p = acp.(c + 1) in
      while !p < stop_p && not (!hit && sat_ !acc) do
        let j = ari.(!p) in
        if uocc.(j) then begin
          let v = mul_ avs.(!p) uvls.(j) in
          acc := (if !hit then add_ !acc v else v);
          hit := true
        end;
        incr p
      done;
      if !hit then begin
        out_idx.(!n) <- c;
        out_vls.(!n) <- !acc;
        incr n
      end
    end
  done;
  Obj.repr (Array.sub out_idx 0 !n, Array.sub out_vls 0 !n)
|}
                 t t;
               register key;
             ])
      | _, _, _ -> None)

(* [post] is spliced in just before the result is boxed: the fused-module
   variant maps the unary chain over the output values there, covering
   both combined and passthrough entries. *)
let ewise_body ?(post = "") ~t ~kind () =
  match kind with
  | `Add ->
    Printf.sprintf
      {|let kernel (arg : Obj.t) : Obj.t =
  let (aidx, avls, an, bidx, bvls, bn) =
    (Obj.obj arg : int array * %s array * int * int array * %s array * int)
  in
  let cap = an + bn in
  if cap = 0 then Obj.repr (([||] : int array), ([||] : %s array))
  else begin
    let dummy = if an > 0 then avls.(0) else bvls.(0) in
    let out_idx = Array.make cap 0 and out_vls = Array.make cap dummy in
    let i = ref 0 and j = ref 0 and n = ref 0 in
    while !i < an || !j < bn do
      if !i >= an then begin
        out_idx.(!n) <- bidx.(!j); out_vls.(!n) <- bvls.(!j);
        incr n; incr j
      end
      else if !j >= bn then begin
        out_idx.(!n) <- aidx.(!i); out_vls.(!n) <- avls.(!i);
        incr n; incr i
      end
      else if aidx.(!i) < bidx.(!j) then begin
        out_idx.(!n) <- aidx.(!i); out_vls.(!n) <- avls.(!i);
        incr n; incr i
      end
      else if bidx.(!j) < aidx.(!i) then begin
        out_idx.(!n) <- bidx.(!j); out_vls.(!n) <- bvls.(!j);
        incr n; incr j
      end
      else begin
        out_idx.(!n) <- aidx.(!i); out_vls.(!n) <- op_ avls.(!i) bvls.(!j);
        incr n; incr i; incr j
      end
    done;
    %sObj.repr (Array.sub out_idx 0 !n, Array.sub out_vls 0 !n)
  end
|}
      t t t post
  | `Mult ->
    Printf.sprintf
      {|let kernel (arg : Obj.t) : Obj.t =
  let (aidx, avls, an, bidx, bvls, bn) =
    (Obj.obj arg : int array * %s array * int * int array * %s array * int)
  in
  let cap = if an < bn then an else bn in
  if cap = 0 then Obj.repr (([||] : int array), ([||] : %s array))
  else begin
    let dummy = avls.(0) in
    let out_idx = Array.make cap 0 and out_vls = Array.make cap dummy in
    let i = ref 0 and j = ref 0 and n = ref 0 in
    while !i < an && !j < bn do
      if aidx.(!i) < bidx.(!j) then incr i
      else if bidx.(!j) < aidx.(!i) then incr j
      else begin
        out_idx.(!n) <- aidx.(!i); out_vls.(!n) <- op_ avls.(!i) bvls.(!j);
        incr n; incr i; incr j
      end
    done;
    %sObj.repr (Array.sub out_idx 0 !n, Array.sub out_vls 0 !n)
  end
|}
      t t t post

let ewise_source ~kind ~dtype ~op ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op with
      | Some op_expr ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               ewise_body ~t:(ty cls) ~kind ();
               register key;
             ])
      | None -> None)

(* Fused module: the merge runs with the raw operator, then the whole
   unary chain is mapped over the output values in the same compiled
   unit — one module for the entire deferred pipeline. *)
let ewise_fused_source ~kind ~dtype ~op ~chain ~key =
  with_cls dtype (fun cls ->
      let chain_exprs = List.map (fun u -> unary_expr_cls cls u) chain in
      match binop_expr_cls cls op with
      | Some op_expr when List.for_all Option.is_some chain_exprs ->
        let fs = List.map Option.get chain_exprs in
        let defs =
          List.mapi (fun i f -> Printf.sprintf "let f%d_ = %s\n" i f) fs
        in
        let applied =
          List.fold_left
            (fun acc i -> Printf.sprintf "f%d_ (%s)" i acc)
            "v"
            (List.init (List.length fs) Fun.id)
        in
        let post =
          Printf.sprintf
            "for k_ = 0 to !n - 1 do\n\
            \      out_vls.(k_) <- g_ out_vls.(k_)\n\
            \    done;\n\
            \    "
        in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               String.concat "" defs;
               Printf.sprintf "let g_ = fun v -> %s\n" applied;
               ewise_body ~post ~t:(ty cls) ~kind ();
               register key;
             ])
      | _ -> None)

let mxm_body ~t =
  Printf.sprintf
    {|let kernel (arg : Obj.t) : Obj.t =
  let (arp, aci, avs, brp, bci, bvs, nrows_a, ncols_b) =
    (Obj.obj arg
      : int array * int array * %s array * int array * int array * %s array
        * int * int)
  in
  let spa_vals = Array.make (max ncols_b 1) identity_ in
  let spa_occ = Array.make (max ncols_b 1) false in
  let touched = Array.make (max ncols_b 1) 0 in
  let rowptr = Array.make (nrows_a + 1) 0 in
  let cap = ref (max 16 (Array.length avs)) in
  let out_idx = ref (Array.make !cap 0) in
  let out_vls = ref (Array.make !cap identity_) in
  let n = ref 0 in
  let push c v =
    if !n = !cap then begin
      cap := 2 * !cap;
      let idx' = Array.make !cap 0 and vls' = Array.make !cap identity_ in
      Array.blit !out_idx 0 idx' 0 !n;
      Array.blit !out_vls 0 vls' 0 !n;
      out_idx := idx';
      out_vls := vls'
    end;
    !out_idx.(!n) <- c;
    !out_vls.(!n) <- v;
    incr n
  in
  for i = 0 to nrows_a - 1 do
    rowptr.(i) <- !n;
    let nt = ref 0 in
    for p = arp.(i) to arp.(i + 1) - 1 do
      let k = aci.(p) in
      let aik = avs.(p) in
      for q = brp.(k) to brp.(k + 1) - 1 do
        let j = bci.(q) in
        let v = mul_ aik bvs.(q) in
        if spa_occ.(j) then spa_vals.(j) <- add_ spa_vals.(j) v
        else begin
          spa_occ.(j) <- true;
          spa_vals.(j) <- v;
          touched.(!nt) <- j;
          incr nt
        end
      done
    done;
    let row = Array.sub touched 0 !nt in
    Array.sort Int.compare row;
    Array.iter
      (fun j ->
        push j spa_vals.(j);
        spa_occ.(j) <- false)
      row
  done;
  rowptr.(nrows_a) <- !n;
  Obj.repr (rowptr, Array.sub !out_idx 0 !n, Array.sub !out_vls 0 !n)
|}
    t t

let mxm_source ~dtype ~(sr : Op_spec.semiring) ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let identity_ : %s = %s\n" (ty cls) ident;
               mxm_body ~t:(ty cls);
               register key;
             ])
      | _, _, _ -> None)

(* Dense-vector elementwise merge: operands and result are (values,
   occupancy) pairs of one fixed length; the zero literal fills
   unoccupied output slots. *)
let ewise_dense_source ~kind ~dtype ~op ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op with
      | Some op_expr ->
        let t = ty cls in
        let body =
          match kind with
          | `Add ->
            {|    if aocc.(i) then begin
      out.(i) <- (if bocc.(i) then op_ avls.(i) bvls.(i) else avls.(i));
      occ.(i) <- true
    end
    else if bocc.(i) then begin
      out.(i) <- bvls.(i);
      occ.(i) <- true
    end|}
          | `Mult ->
            {|    if aocc.(i) && bocc.(i) then begin
      out.(i) <- op_ avls.(i) bvls.(i);
      occ.(i) <- true
    end|}
        in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               Printf.sprintf "let zero_ : %s = %s\n" t (const_lit cls 0.0);
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, aocc, bvls, bocc) =
    (Obj.obj arg : %s array * bool array * %s array * bool array)
  in
  let len = Array.length avls in
  let out = Array.make (max len 1) zero_ in
  let occ = Array.make (max len 1) false in
  for i = 0 to len - 1 do
%s
  done;
  Obj.repr (out, occ)
|}
                 t t body;
               register key;
             ])
      | None -> None)

let apply_dense_source ~dtype ~f ~key =
  with_cls dtype (fun cls ->
      match unary_expr_cls cls f with
      | Some f_expr ->
        let t = ty cls in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let f_ = %s\n" f_expr;
               Printf.sprintf "let zero_ : %s = %s\n" t (const_lit cls 0.0);
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, aocc) = (Obj.obj arg : %s array * bool array) in
  let len = Array.length avls in
  let out = Array.make (max len 1) zero_ in
  for i = 0 to len - 1 do
    if aocc.(i) then out.(i) <- f_ avls.(i)
  done;
  Obj.repr (out, Array.copy aocc)
|}
                 t;
               register key;
             ])
      | None -> None)

let reduce_dense_source ~dtype ~op ~identity ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op, identity_expr_cls cls identity with
      | Some op_expr, Some ident ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               Printf.sprintf "let identity_ : %s = %s\n" (ty cls) ident;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, aocc) = (Obj.obj arg : %s array * bool array) in
  let acc = ref identity_ in
  for i = 0 to Array.length avls - 1 do
    if aocc.(i) then acc := op_ !acc avls.(i)
  done;
  Obj.repr !acc
|}
                 (ty cls);
               register key;
             ])
      | _, _ -> None)

let apply_source ~dtype ~f ~key =
  with_cls dtype (fun cls ->
      match unary_expr_cls cls f with
      | Some f_expr ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let f_ = %s\n" f_expr;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (aidx, avls, an) = (Obj.obj arg : int array * %s array * int) in
  Obj.repr (Array.sub aidx 0 an, Array.init an (fun k -> f_ avls.(k)))
|}
                 (ty cls);
               register key;
             ])
      | None -> None)

let reduce_source ~dtype ~op ~identity ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op, identity_expr_cls cls identity with
      | Some op_expr, Some ident ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               Printf.sprintf "let identity_ : %s = %s\n" (ty cls) ident;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, an) = (Obj.obj arg : %s array * int) in
  let acc = ref identity_ in
  for k = 0 to an - 1 do
    acc := op_ !acc avls.(k)
  done;
  Obj.repr !acc
|}
                 (ty cls);
               register key;
             ])
      | _, _ -> None)

(* {2 Parallel variants}

   Chunked over [!Jit_plugin_api.par_for] — the host installs its shared
   domain pool there at startup; the default runs the same chunk
   decomposition sequentially, so a module loaded without the pool still
   computes the identical result.  The chunk grain is a compile-time
   literal (it is part of the cache key), so the decomposition — and for
   the chunk-merged kernels the exact regrouping of ⊕ — is frozen into
   the module and independent of the domain count.  Loop bodies are the
   monomorphized text of the Par_kernels algorithms; keep them in
   sync. *)

let grain_def grain = Printf.sprintf "let grain_ = %d\n" grain

(* Row-blocked gather branch; the scatter branch (reached only when the
   wrapper passes the transpose flag, which the parallel dispatch never
   does) stays sequential verbatim. *)
let matvec_par_body ~t ~gather_term ~scatter_term =
  Printf.sprintf
    {|let kernel (arg : Obj.t) : Obj.t =
  let (arp, aci, avs, uidx, uvls, un, nrows, ncols, transpose) =
    (Obj.obj arg
      : int array * int array * %s array * int array * %s array * int * int
        * int * bool)
  in
  if not transpose then begin
    let u_dense = Array.make ncols identity_ in
    let u_occ = Array.make ncols false in
    for k = 0 to un - 1 do
      u_dense.(uidx.(k)) <- uvls.(k);
      u_occ.(uidx.(k)) <- true
    done;
    let nchunks = (nrows + grain_ - 1) / grain_ in
    let parts_idx = Array.make (max nchunks 1) ([||] : int array) in
    let parts_vls = Array.make (max nchunks 1) ([||] : %s array) in
    !Jit_plugin_api.par_for ~n:nrows ~grain:grain_ (fun clo chi ->
        let ci = clo / grain_ in
        let idx = Array.make (chi - clo) 0 in
        let vls = Array.make (chi - clo) identity_ in
        let k = ref 0 in
        for i = clo to chi - 1 do
          let acc = ref identity_ and hit = ref false in
          for p = arp.(i) to arp.(i + 1) - 1 do
            let j = aci.(p) in
            if u_occ.(j) then begin
              let v = %s in
              acc := (if !hit then add_ !acc v else v);
              hit := true
            end
          done;
          if !hit then begin
            idx.(!k) <- i;
            vls.(!k) <- !acc;
            incr k
          end
        done;
        parts_idx.(ci) <- Array.sub idx 0 !k;
        parts_vls.(ci) <- Array.sub vls 0 !k);
    let total = Array.fold_left (fun a p -> a + Array.length p) 0 parts_idx in
    let out_idx = Array.make (max total 1) 0 in
    let out_vls = Array.make (max total 1) identity_ in
    let off = ref 0 in
    for ci = 0 to nchunks - 1 do
      let len = Array.length parts_idx.(ci) in
      Array.blit parts_idx.(ci) 0 out_idx !off len;
      Array.blit parts_vls.(ci) 0 out_vls !off len;
      off := !off + len
    done;
    Obj.repr (Array.sub out_idx 0 total, Array.sub out_vls 0 total)
  end
  else begin
    let acc = Array.make (max ncols 1) identity_ in
    let occ = Array.make (max ncols 1) false in
    for k = 0 to un - 1 do
      let j = uidx.(k) in
      let uj = uvls.(k) in
      for p = arp.(j) to arp.(j + 1) - 1 do
        let c = aci.(p) in
        let v = %s in
        if occ.(c) then acc.(c) <- add_ acc.(c) v
        else begin
          acc.(c) <- v;
          occ.(c) <- true
        end
      done
    done;
    let n = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then incr n
    done;
    let out_idx = Array.make (max !n 1) 0
    and out_vls = Array.make (max !n 1) identity_ in
    let k = ref 0 in
    for c = 0 to ncols - 1 do
      if occ.(c) then begin
        out_idx.(!k) <- c;
        out_vls.(!k) <- acc.(c);
        incr k
      end
    done;
    Obj.repr (Array.sub out_idx 0 !n, Array.sub out_vls 0 !n)
  end
|}
    t t t gather_term scatter_term

let matvec_par_source ~orientation ~dtype ~(sr : Op_spec.semiring) ~grain ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        let t = ty cls in
        let gather_term, scatter_term =
          match orientation with
          | `Mxv -> ("mul_ avs.(p) u_dense.(j)", "mul_ avs.(p) uj")
          | `Vxm -> ("mul_ u_dense.(j) avs.(p)", "mul_ uj avs.(p)")
        in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let identity_ : %s = %s\n" t ident;
               grain_def grain;
               matvec_par_body ~t ~gather_term ~scatter_term;
               register key;
             ])
      | _, _, _ -> None)

let mxv_par_source ~dtype ~sr ~grain ~key =
  matvec_par_source ~orientation:`Mxv ~dtype ~sr ~grain ~key

let vxm_par_source ~dtype ~sr ~grain ~key =
  matvec_par_source ~orientation:`Vxm ~dtype ~sr ~grain ~key

let mxv_pull_par_source ~dtype ~sr ~grain ~key =
  matvec_par_source ~orientation:`Mxv ~dtype ~sr ~grain ~key

(* Column-blocked pull product: disjoint in-place writes, exact for every
   operator. *)
let vxm_pull_dense_par_source ~dtype ~(sr : Op_spec.semiring) ~grain ~key =
  with_cls dtype (fun cls ->
      match
        ( binop_expr_cls cls sr.Op_spec.add_op,
          binop_expr_cls cls sr.Op_spec.mul_op,
          identity_expr_cls cls sr.Op_spec.add_identity )
      with
      | Some add, Some mul, Some ident ->
        let t = ty cls in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let add_ = %s\n" add;
               Printf.sprintf "let mul_ = %s\n" mul;
               Printf.sprintf "let identity_ : %s = %s\n" t ident;
               grain_def grain;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (uvls, uocc, acp, ari, avs, ncols) =
    (Obj.obj arg
      : %s array * bool array * int array * int array * %s array * int)
  in
  let acc = Array.make (max ncols 1) identity_ in
  let occ = Array.make (max ncols 1) false in
  let full = ref true in
  for i = 0 to Array.length uocc - 1 do
    if not uocc.(i) then full := false
  done;
  if !full then
    !Jit_plugin_api.par_for ~n:ncols ~grain:grain_ (fun clo chi ->
        for c = clo to chi - 1 do
          let lo = acp.(c) and hi = acp.(c + 1) in
          if hi > lo then begin
            let a = ref (mul_ uvls.(ari.(lo)) avs.(lo)) in
            for p = lo + 1 to hi - 1 do
              a := add_ !a (mul_ uvls.(ari.(p)) avs.(p))
            done;
            acc.(c) <- !a;
            occ.(c) <- true
          end
        done)
  else
    !Jit_plugin_api.par_for ~n:ncols ~grain:grain_ (fun clo chi ->
        for c = clo to chi - 1 do
          let a = ref identity_ and hit = ref false in
          for p = acp.(c) to acp.(c + 1) - 1 do
            let i = ari.(p) in
            if uocc.(i) then begin
              let v = mul_ uvls.(i) avs.(p) in
              a := (if !hit then add_ !a v else v);
              hit := true
            end
          done;
          if !hit then begin
            acc.(c) <- !a;
            occ.(c) <- true
          end
        done);
  Obj.repr (acc, occ)
|}
                 t t;
               register key;
             ])
      | _, _, _ -> None)

(* Index-blocked dense elementwise: disjoint in-place writes. *)
let ewise_dense_par_source ~kind ~dtype ~op ~grain ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op with
      | Some op_expr ->
        let t = ty cls in
        let body =
          match kind with
          | `Add ->
            {|      if aocc.(i) then begin
        out.(i) <- (if bocc.(i) then op_ avls.(i) bvls.(i) else avls.(i));
        occ.(i) <- true
      end
      else if bocc.(i) then begin
        out.(i) <- bvls.(i);
        occ.(i) <- true
      end|}
          | `Mult ->
            {|      if aocc.(i) && bocc.(i) then begin
        out.(i) <- op_ avls.(i) bvls.(i);
        occ.(i) <- true
      end|}
        in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               Printf.sprintf "let zero_ : %s = %s\n" t (const_lit cls 0.0);
               grain_def grain;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, aocc, bvls, bocc) =
    (Obj.obj arg : %s array * bool array * %s array * bool array)
  in
  let len = Array.length avls in
  let out = Array.make (max len 1) zero_ in
  let occ = Array.make (max len 1) false in
  !Jit_plugin_api.par_for ~n:len ~grain:grain_ (fun clo chi ->
    for i = clo to chi - 1 do
%s
    done);
  Obj.repr (out, occ)
|}
                 t t body;
               register key;
             ])
      | None -> None)

let apply_dense_par_source ~dtype ~f ~grain ~key =
  with_cls dtype (fun cls ->
      match unary_expr_cls cls f with
      | Some f_expr ->
        let t = ty cls in
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let f_ = %s\n" f_expr;
               Printf.sprintf "let zero_ : %s = %s\n" t (const_lit cls 0.0);
               grain_def grain;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, aocc) = (Obj.obj arg : %s array * bool array) in
  let len = Array.length avls in
  let out = Array.make (max len 1) zero_ in
  !Jit_plugin_api.par_for ~n:len ~grain:grain_ (fun clo chi ->
      for i = clo to chi - 1 do
        if aocc.(i) then out.(i) <- f_ avls.(i)
      done);
  Obj.repr (out, Array.copy aocc)
|}
                 t;
               register key;
             ])
      | None -> None)

(* Chunk-combined reduces: per-chunk partials fold without the identity
   seed, combine in ascending chunk order, then seed with the identity
   exactly as the sequential left fold does.  The dispatcher gates these
   to exactly associative ⊕ (Kernels.exact_assoc). *)
let reduce_dense_par_source ~dtype ~op ~identity ~grain ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op, identity_expr_cls cls identity with
      | Some op_expr, Some ident ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               Printf.sprintf "let identity_ : %s = %s\n" (ty cls) ident;
               grain_def grain;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, aocc) = (Obj.obj arg : %s array * bool array) in
  let len = Array.length avls in
  let nchunks = (len + grain_ - 1) / grain_ in
  let hitp = Array.make (max nchunks 1) false in
  let accp = Array.make (max nchunks 1) identity_ in
  !Jit_plugin_api.par_for ~n:len ~grain:grain_ (fun clo chi ->
      let ci = clo / grain_ in
      let acc = ref identity_ and hit = ref false in
      for i = clo to chi - 1 do
        if aocc.(i) then begin
          acc := (if !hit then op_ !acc avls.(i) else avls.(i));
          hit := true
        end
      done;
      hitp.(ci) <- !hit;
      accp.(ci) <- !acc);
  let acc = ref identity_ and any = ref false in
  for ci = 0 to nchunks - 1 do
    if hitp.(ci) then begin
      acc := (if !any then op_ !acc accp.(ci) else accp.(ci));
      any := true
    end
  done;
  Obj.repr (if !any then op_ identity_ !acc else identity_)
|}
                 (ty cls);
               register key;
             ])
      | _, _ -> None)

let reduce_par_source ~dtype ~op ~identity ~grain ~key =
  with_cls dtype (fun cls ->
      match binop_expr_cls cls op, identity_expr_cls cls identity with
      | Some op_expr, Some ident ->
        Some
          (String.concat ""
             [ header key;
               Printf.sprintf "let op_ = %s\n" op_expr;
               Printf.sprintf "let identity_ : %s = %s\n" (ty cls) ident;
               grain_def grain;
               Printf.sprintf
                 {|let kernel (arg : Obj.t) : Obj.t =
  let (avls, an) = (Obj.obj arg : %s array * int) in
  let nchunks = (an + grain_ - 1) / grain_ in
  let accp = Array.make (max nchunks 1) identity_ in
  !Jit_plugin_api.par_for ~n:an ~grain:grain_ (fun clo chi ->
      let ci = clo / grain_ in
      let acc = ref avls.(clo) in
      for k = clo + 1 to chi - 1 do
        acc := op_ !acc avls.(k)
      done;
      accp.(ci) <- !acc);
  let acc = ref identity_ in
  for ci = 0 to nchunks - 1 do
    acc := op_ !acc accp.(ci)
  done;
  Obj.repr !acc
|}
                 (ty cls);
               register key;
             ])
      | _, _ -> None)
