let log_src = Logs.Src.create "ogb.jit" ~doc:"ogb JIT backend"

module Log = (val Logs.src_log log_src)

(* -- locating the Jit_plugin_api compiled interfaces -- *)

let api_objs_suffix =
  Filename.concat
    (Filename.concat "lib" "jit_api")
    ".jit_plugin_api.objs"

let candidate_roots () =
  let rec ancestors acc dir n =
    if n = 0 || dir = Filename.dirname dir then acc
    else ancestors (dir :: acc) (Filename.dirname dir) (n - 1)
  in
  let from_exe = ancestors [] (Filename.dirname Sys.executable_name) 8 in
  let from_cwd = ancestors [] (Sys.getcwd ()) 8 in
  from_exe @ from_cwd

let find_api_dirs () =
  match Sys.getenv_opt "OGB_JIT_INCLUDE" with
  | Some dirs -> Some (String.split_on_char ':' dirs)
  | None ->
    let check root =
      let objs =
        Filename.concat root (Filename.concat "_build/default" api_objs_suffix)
      in
      let byte = Filename.concat objs "byte" in
      let native = Filename.concat objs "native" in
      if Sys.file_exists (Filename.concat byte "jit_plugin_api.cmi") then
        Some [ byte; native ]
      else None
    in
    List.find_map check (candidate_roots ())

let find_ocamlopt () =
  let from_path =
    match Sys.getenv_opt "PATH" with
    | None -> None
    | Some path ->
      List.find_map
        (fun dir ->
          let p = Filename.concat dir "ocamlopt" in
          if Sys.file_exists p then Some p else None)
        (String.split_on_char ':' path)
  in
  from_path

(* -- compile configuration: wall-clock timeout and bounded retry -- *)

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some x when x >= 0.0 -> x
  | _ -> default

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n >= 0 -> n
  | _ -> default

let timeout = ref (env_float "OGB_JIT_TIMEOUT" 20.0)
let retries = ref (env_int "OGB_JIT_RETRIES" 1)

let set_compile_timeout s = timeout := max 0.0 s
let compile_timeout () = !timeout
let set_compile_retries n = retries := max 0 n
let compile_retries () = !retries

(* -- compile + load -- *)

type run_status = Exited of int | Signaled of int | Timed_out

(* Run the compiler with a wall-clock deadline: poll the child with
   WNOHANG (backing off to 20ms) and SIGKILL it past the deadline.  A
   hung ocamlopt therefore costs one timeout, not the whole process. *)
let run_command argv ~stderr_file =
  let fd =
    Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout fd
  in
  Unix.close fd;
  let deadline =
    if !timeout > 0.0 then Some (Unix.gettimeofday () +. !timeout) else None
  in
  let rec wait pause =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> (
      match deadline with
      | Some t when Unix.gettimeofday () > t ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Timed_out
      | _ ->
        Unix.sleepf pause;
        wait (min 0.02 (pause *. 2.0)))
    | _, Unix.WEXITED n -> Exited n
    | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> Signaled n
  in
  wait 0.001

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error _ -> ""

let compile_once ~ocamlopt ~incs ~hash =
  let src = Disk_cache.source_path hash in
  let out = Disk_cache.cmxs_path hash in
  let inc_args = List.concat_map (fun d -> [ "-I"; d ]) incs in
  let argv =
    if Fault.fire "native.compile.hang" then
      (* a compiler that never returns: exercises the deadline kill *)
      [| "sleep"; "3600" |]
    else
      Array.of_list
        ([ ocamlopt; "-shared"; "-O2" ] @ inc_args @ [ "-o"; out; src ])
  in
  let stderr_file = Disk_cache.stderr_path hash in
  let status =
    if Fault.fire "native.compile.exit" then Exited 2
    else if Fault.fire "native.compile.signal" then Signaled Sys.sigkill
    else run_command argv ~stderr_file
  in
  match status with
  | Exited 0 -> Ok out
  | Exited n ->
    Error
      (`Permanent,
       Printf.sprintf "ocamlopt exited %d: %s" n (read_file stderr_file))
  | Signaled n ->
    Error (`Transient, Printf.sprintf "ocamlopt killed by signal %d" n)
  | Timed_out ->
    Jit_stats.record_compile_timeout ();
    Error
      (`Transient,
       Printf.sprintf "ocamlopt timed out after %.1fs (killed)" !timeout)

(* Bounded retry with backoff for transient failures (signal kills,
   timeouts); a nonzero compiler exit is deterministic and not retried. *)
let compile ~hash =
  match find_ocamlopt (), find_api_dirs () with
  | None, _ -> Error "ocamlopt not found on PATH"
  | _, None -> Error "Jit_plugin_api build artifacts not found"
  | Some ocamlopt, Some incs ->
    let rec attempt n =
      match compile_once ~ocamlopt ~incs ~hash with
      | Ok out -> Ok out
      | Error (`Permanent, e) -> Error e
      | Error (`Transient, e) ->
        if n < !retries then begin
          Jit_stats.record_compile_retry ();
          Unix.sleepf (0.02 *. float_of_int (1 lsl n));
          attempt (n + 1)
        end
        else Error e
    in
    attempt 0

let load ~cmxs ~key =
  if Fault.fire "native.load.dynlink" then
    Error "injected: Dynlink load failure"
  else
    match Dynlink.loadfile_private cmxs with
    | () -> (
      match Jit_plugin_api.lookup key with
      | Some _ when Fault.fire "native.load.unregistered" ->
        Error (Printf.sprintf "injected: key %S not registered" key)
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "plugin loaded but key %S not registered" key))
    | exception Dynlink.Error e -> Error (Dynlink.error_message e)

(* Cross-process single flight: compilation of one hash runs under the
   cache's advisory file lock, and re-checks for a valid artifact after
   acquiring it — the process that lost the race loads what the winner
   built instead of compiling again. *)
let compile_and_load ~hash ~source ~key =
  Disk_cache.with_lock hash @@ fun () ->
  let fresh_compile () =
    match Disk_cache.store_source hash source with
    | Error e -> Error ("cache write failed: " ^ e)
    | Ok () -> (
      match compile ~hash with
      | Error _ as e -> e
      | Ok cmxs ->
        Disk_cache.store_sums hash;
        load ~cmxs ~key)
  in
  if Disk_cache.has_cmxs hash then
    match Disk_cache.verify_cmxs hash with
    | `Ok -> (
      (* another process finished while we waited for the lock *)
      match load ~cmxs:(Disk_cache.cmxs_path hash) ~key with
      | Ok _ as ok -> ok
      | Error _ -> fresh_compile ())
    | `No_sum | `Mismatch ->
      Disk_cache.quarantine hash;
      fresh_compile ()
  else fresh_compile ()

let load_cached ~hash ~key = load ~cmxs:(Disk_cache.cmxs_path hash) ~key

(* -- availability probe: actually compile and load a trivial kernel -- *)

let probe_result : (unit, string) result option ref = ref None

let probe () =
  if not Dynlink.is_native then Error "bytecode runtime (Dynlink not native)"
  else
    match find_ocamlopt (), find_api_dirs () with
    | None, _ -> Error "ocamlopt not found on PATH"
    | _, None -> Error "Jit_plugin_api build artifacts not found"
    | Some _, Some _ ->
      let key = Printf.sprintf "probe|%d" (Unix.getpid ()) in
      let hash = Printf.sprintf "probe_%d" (Unix.getpid ()) in
      let source =
        Printf.sprintf
          "let kernel (x : Obj.t) : Obj.t = x\n\
           let () = Jit_plugin_api.register %S (Obj.repr kernel)\n"
          key
      in
      let cleanup () =
        (* the probe is a health check, not a cache entry: leave nothing
           behind (source, cmxs, cmx/o side products, stderr, sums, lock) *)
        List.iter
          (fun path -> try Sys.remove path with Sys_error _ -> ())
          [ Disk_cache.source_path hash;
            Disk_cache.cmxs_path hash;
            Disk_cache.marker_path hash;
            Disk_cache.stderr_path hash;
            Disk_cache.sum_path hash;
            Filename.concat (Disk_cache.dir ())
              (Printf.sprintf "Kern_%s.lock" hash);
            Filename.concat (Disk_cache.dir ())
              (Printf.sprintf "Kern_%s.cmx" hash);
            Filename.concat (Disk_cache.dir ())
              (Printf.sprintf "Kern_%s.cmi" hash);
            Filename.concat (Disk_cache.dir ())
              (Printf.sprintf "Kern_%s.o" hash) ]
      in
      Fun.protect ~finally:cleanup (fun () ->
          match compile_and_load ~hash ~source ~key with
          | Ok _ -> Ok ()
          | Error e -> Error e)

let probe_cached () =
  match !probe_result with
  | Some r -> r
  | None ->
    let r = probe () in
    (match r with
    | Ok () -> Log.info (fun m -> m "native JIT backend available")
    | Error e -> Log.info (fun m -> m "native JIT backend unavailable: %s" e));
    probe_result := Some r;
    r

let available () = match probe_cached () with Ok () -> true | Error _ -> false

let explain () =
  match probe_cached () with
  | Ok () -> "native backend available"
  | Error e -> "native backend unavailable: " ^ e
