(** Kernel signatures: the cache key of the dynamic-compilation pipeline
    (paper Fig. 9, where the kwargs of [operate] — operation name, operand
    dtypes, operator names, flags — select or build the compiled module). *)

type t = private {
  op : string;  (** operation name, e.g. ["mxv"], or ["algo:bfs"] *)
  dtypes : (string * string) list;  (** role -> dtype name, sorted by role *)
  operators : (string * string) list;  (** role -> operator name, sorted *)
  formats : (string * string) list;
      (** role -> storage format, sorted, e.g. [("a", "csc")] or
          [("u", "dense")].  Empty means the default layout (CSR
          matrices, sparse vectors). *)
  flags : string list;  (** set flags, sorted, e.g. ["transpose_a"] *)
  par : string;
      (** parallelism descriptor, e.g. ["g4096"] (chunk grain) — empty
          for the sequential variant.  Part of the cache key, so native
          kernels are generated and cached per grain. *)
}

val make :
  op:string ->
  ?dtypes:(string * string) list ->
  ?operators:(string * string) list ->
  ?formats:(string * string) list ->
  ?flags:string list ->
  ?par:string ->
  unit ->
  t

val key : t -> string
(** Canonical human-readable key, stable across runs.  Five
    [|]-separated fields: op, dtypes, operators, formats, flags — keys
    (and thus disk-cache hashes) from the four-field era do not
    collide with these.  Parallel variants ([par <> ""]) append the
    parallelism descriptor as a sixth field. *)

val formats_of_key : string -> string
(** The formats field of a {!key} string, or ["-"] when empty /
    unparsable (the per-signature format column in [ogb_cli jit
    status]). *)

val hash_key : t -> string
(** [op ^ "_" ^ 16-hex FNV-1a of key] — filesystem- and module-name-safe
    (used as [Kern_<hash_key>]). *)

val pp : Format.formatter -> t -> unit
