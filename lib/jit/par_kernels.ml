(* Parallel twins of the Array_kernels algorithms, chunked over the
   shared domain pool (Parallel.Pool).  Loop bodies are kept textually
   in sync with their sequential counterparts — bit-identical results
   are the contract, not an aspiration:

   - gather/dense kernels partition the *output* index space; each
     output position folds its contributions in exactly the sequential
     order, so results match for every operator, floats included;
   - scatter and reduce kernels fold per-chunk partials and combine
     them in ascending chunk order — callers gate these to exactly
     associative ⊕ (see Kernels.exact_assoc), where regrouping a left
     fold cannot change the value;
   - chunk boundaries come from the kernel signature's grain, a pure
     function of the operand size, so the decomposition (and therefore
     the result) is independent of the domain count. *)

module Pool = Parallel.Pool

type 'a ventry = 'a Array_kernels.ventry
type 'a csr = 'a Array_kernels.csr

(* Chunked gather with compaction: evaluate [eval c] over [0, n), keep
   hits as (index, value) runs per chunk, concatenate in chunk order. *)
let gather_compact ~grain ~n ~dummy eval =
  let nchunks = (n + grain - 1) / grain in
  let parts_idx = Array.make (max nchunks 1) [||] in
  let parts_vls = Array.make (max nchunks 1) [||] in
  Pool.parallel_for ~n ~grain (fun lo hi ->
      let ci = lo / grain in
      let idx = Array.make (hi - lo) 0 in
      let vls = Array.make (hi - lo) dummy in
      let k = ref 0 in
      for c = lo to hi - 1 do
        match eval c with
        | Some v ->
          idx.(!k) <- c;
          vls.(!k) <- v;
          incr k
        | None -> ()
      done;
      parts_idx.(ci) <- Array.sub idx 0 !k;
      parts_vls.(ci) <- Array.sub vls 0 !k);
  let total = Array.fold_left (fun a p -> a + Array.length p) 0 parts_idx in
  let out_idx = Array.make total 0 in
  let out_vls = Array.make total dummy in
  let off = ref 0 in
  for ci = 0 to nchunks - 1 do
    let len = Array.length parts_idx.(ci) in
    Array.blit parts_idx.(ci) 0 out_idx !off len;
    Array.blit parts_vls.(ci) 0 out_vls !off len;
    off := !off + len
  done;
  (out_idx, out_vls)

let densify ~dummy ~size ((uidx, uvls, un) : 'a ventry) =
  let u_dense = Array.make (max size 1) dummy in
  let u_occ = Array.make (max size 1) false in
  for k = 0 to un - 1 do
    u_dense.(uidx.(k)) <- uvls.(k);
    u_occ.(uidx.(k)) <- true
  done;
  (u_dense, u_occ)

(* Row-blocked gather form of mxv (also serves the CSC pull dispatch,
   which passes the CSC arrays with swapped dimensions). *)
let mxv_gather ~grain ~add ~mul ~dummy ~nrows ~ncols
    ((arp, aci, avs) : 'a csr) (u : 'a ventry) =
  let u_dense, u_occ = densify ~dummy ~size:ncols u in
  gather_compact ~grain ~n:nrows ~dummy (fun i ->
      let acc = ref dummy and hit = ref false in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let j = aci.(p) in
        if u_occ.(j) then begin
          let v = mul avs.(p) u_dense.(j) in
          acc := (if !hit then add !acc v else v);
          hit := true
        end
      done;
      if !hit then Some !acc else None)

(* Gather form of vxm (semantic transpose): ⊗ operand order swapped. *)
let vxm_gather ~grain ~add ~mul ~dummy ~nrows ~ncols
    ((arp, aci, avs) : 'a csr) (u : 'a ventry) =
  let u_dense, u_occ = densify ~dummy ~size:ncols u in
  gather_compact ~grain ~n:nrows ~dummy (fun i ->
      let acc = ref dummy and hit = ref false in
      for p = arp.(i) to arp.(i + 1) - 1 do
        let j = aci.(p) in
        if u_occ.(j) then begin
          let v = mul u_dense.(j) avs.(p) in
          acc := (if !hit then add !acc v else v);
          hit := true
        end
      done;
      if !hit then Some !acc else None)

(* Column-blocked masked pull (BFS bottom-up). *)
let mxv_pull_masked ~grain ~add ~mul ~dummy ~stop ~ncols ~visited
    ((acp, ari, avs) : 'a csr) ((uvls, uocc) : 'a array * bool array) =
  gather_compact ~grain ~n:ncols ~dummy (fun c ->
      if visited.(c) then None
      else begin
        let acc = ref dummy and hit = ref false in
        let p = ref acp.(c) in
        let stop_p = acp.(c + 1) in
        while !p < stop_p && not (!hit && stop !acc) do
          let j = ari.(!p) in
          if uocc.(j) then begin
            let v = mul avs.(!p) uvls.(j) in
            acc := (if !hit then add !acc v else v);
            hit := true
          end;
          incr p
        done;
        if !hit then Some !acc else None
      end)

(* Column-blocked pull form of the dense-frontier product: disjoint
   in-place writes, exact for every operator. *)
let vxm_pull_dense ~grain ~add ~mul ~dummy ~ncols ((acp, ari, cvs) : 'a csr)
    ((uvls, uocc) : 'a array * bool array) =
  let acc = Array.make (max ncols 1) dummy in
  let occ = Array.make (max ncols 1) false in
  let full = ref true in
  for i = 0 to Array.length uocc - 1 do
    if not uocc.(i) then full := false
  done;
  if !full then
    Pool.parallel_for ~n:ncols ~grain (fun clo chi ->
        for c = clo to chi - 1 do
          let lo = acp.(c) and hi = acp.(c + 1) in
          if hi > lo then begin
            let a = ref (mul uvls.(ari.(lo)) cvs.(lo)) in
            for p = lo + 1 to hi - 1 do
              a := add !a (mul uvls.(ari.(p)) cvs.(p))
            done;
            acc.(c) <- !a;
            occ.(c) <- true
          end
        done)
  else
    Pool.parallel_for ~n:ncols ~grain (fun clo chi ->
        for c = clo to chi - 1 do
          let a = ref dummy and hit = ref false in
          for p = acp.(c) to acp.(c + 1) - 1 do
            let i = ari.(p) in
            if uocc.(i) then begin
              let v = mul uvls.(i) cvs.(p) in
              a := (if !hit then add !a v else v);
              hit := true
            end
          done;
          if !hit then begin
            acc.(c) <- !a;
            occ.(c) <- true
          end
        done);
  (acc, occ)

(* Source-blocked scatter with per-chunk private accumulators, merged in
   ascending chunk order.  Sequential scatter folds each output's
   contributions in ascending source order; chunks are ascending source
   blocks, so for an exactly associative ⊕ the chunk-partial regrouping
   is the same value bit for bit.  The merge itself writes disjoint
   output positions, so its own chunking is unconstrained. *)
let scatter_merge ~grain ~add ~dummy ~nsrc ~ncols chunk_scatter =
  if nsrc = 0 then
    (* no chunks run at all; hand back empty dense accumulators *)
    (Array.make (max ncols 1) dummy, Array.make (max ncols 1) false)
  else begin
  let nchunks = (nsrc + grain - 1) / grain in
  let parts_acc = Array.make (max nchunks 1) [||] in
  let parts_occ = Array.make (max nchunks 1) [||] in
  Pool.parallel_for ~n:nsrc ~grain (fun lo hi ->
      let ci = lo / grain in
      let acc = Array.make (max ncols 1) dummy in
      let occ = Array.make (max ncols 1) false in
      chunk_scatter lo hi acc occ;
      parts_acc.(ci) <- acc;
      parts_occ.(ci) <- occ);
  let acc = parts_acc.(0) and occ = parts_occ.(0) in
  if nchunks > 1 then
    Pool.parallel_for ~n:ncols ~grain:(Pool.grain_for ncols) (fun clo chi ->
        for c = clo to chi - 1 do
          for ci = 1 to nchunks - 1 do
            if parts_occ.(ci).(c) then
              if occ.(c) then acc.(c) <- add acc.(c) parts_acc.(ci).(c)
              else begin
                acc.(c) <- parts_acc.(ci).(c);
                occ.(c) <- true
              end
          done
        done);
  (acc, occ)
  end

let compact ~dummy ~ncols (acc : 'a array) (occ : bool array) =
  let n = ref 0 in
  for c = 0 to ncols - 1 do
    if occ.(c) then incr n
  done;
  let out_idx = Array.make !n 0 and out_vls = Array.make !n dummy in
  let k = ref 0 in
  for c = 0 to ncols - 1 do
    if occ.(c) then begin
      out_idx.(!k) <- c;
      out_vls.(!k) <- acc.(c);
      incr k
    end
  done;
  (out_idx, out_vls)

(* Frontier-blocked push form of mxv (transposed scatter); ⊕ must be
   exactly associative (caller-gated). *)
let mxv_scatter ~grain ~add ~mul ~dummy ~ncols ((arp, aci, avs) : 'a csr)
    ((uidx, uvls, un) : 'a ventry) =
  let acc, occ =
    scatter_merge ~grain ~add ~dummy ~nsrc:un ~ncols (fun lo hi acc occ ->
        for k = lo to hi - 1 do
          let j = uidx.(k) in
          let uj = uvls.(k) in
          for p = arp.(j) to arp.(j + 1) - 1 do
            let c = aci.(p) in
            let v = mul avs.(p) uj in
            if occ.(c) then acc.(c) <- add acc.(c) v
            else begin
              acc.(c) <- v;
              occ.(c) <- true
            end
          done
        done)
  in
  compact ~dummy ~ncols acc occ

(* Frontier-blocked push form of vxm; ⊕ must be exactly associative. *)
let vxm_scatter ~grain ~add ~mul ~dummy ~ncols ((arp, aci, avs) : 'a csr)
    ((uidx, uvls, un) : 'a ventry) =
  let acc, occ =
    scatter_merge ~grain ~add ~dummy ~nsrc:un ~ncols (fun lo hi acc occ ->
        for k = lo to hi - 1 do
          let i = uidx.(k) in
          let ui = uvls.(k) in
          for p = arp.(i) to arp.(i + 1) - 1 do
            let c = aci.(p) in
            let v = mul ui avs.(p) in
            if occ.(c) then acc.(c) <- add acc.(c) v
            else begin
              acc.(c) <- v;
              occ.(c) <- true
            end
          done
        done)
  in
  compact ~dummy ~ncols acc occ

(* Row-blocked push with a dense frontier; ⊕ must be exactly
   associative. *)
let vxm_dense ~grain ~add ~mul ~dummy ~nrows ~ncols
    ((uvls, uocc) : 'a array * bool array) ((arp, aci, avs) : 'a csr) =
  scatter_merge ~grain ~add ~dummy ~nsrc:nrows ~ncols (fun lo hi acc occ ->
      for i = lo to hi - 1 do
        if uocc.(i) then begin
          let ui = uvls.(i) in
          for p = arp.(i) to arp.(i + 1) - 1 do
            let c = aci.(p) in
            let v = mul ui avs.(p) in
            if occ.(c) then acc.(c) <- add acc.(c) v
            else begin
              acc.(c) <- v;
              occ.(c) <- true
            end
          done
        end
      done)

(* Row-partitioned Gustavson: each chunk runs the sequential algorithm
   over its row block with a private SPA; blocks concatenate in row
   order, so the result is exact for every operator. *)
let mxm_gustavson ~grain ~add ~mul ~dummy ~nrows_a ~ncols_b
    ((arp, aci, avs) : 'a csr) (b : 'a csr) =
  let nchunks = (nrows_a + grain - 1) / grain in
  let parts = Array.make (max nchunks 1) ([||], [||], [||]) in
  Pool.parallel_for ~n:nrows_a ~grain (fun lo hi ->
      let ci = lo / grain in
      (* row-pointer slice keeps absolute positions into aci/avs, which
         the sequential kernel only uses as ranges *)
      let arp_slice = Array.sub arp lo (hi - lo + 1) in
      parts.(ci) <-
        Array_kernels.mxm_gustavson ~add ~mul ~dummy ~nrows_a:(hi - lo)
          ~ncols_b (arp_slice, aci, avs) b);
  let total =
    Array.fold_left (fun a (_, idx, _) -> a + Array.length idx) 0 parts
  in
  let rowptr = Array.make (nrows_a + 1) 0 in
  let out_idx = Array.make total 0 in
  let out_vls = Array.make total dummy in
  let off = ref 0 in
  Array.iteri
    (fun ci (rp, idx, vls) ->
      let lo = ci * grain in
      for r = 0 to Array.length rp - 2 do
        rowptr.(lo + r) <- !off + rp.(r)
      done;
      Array.blit idx 0 out_idx !off (Array.length idx);
      Array.blit vls 0 out_vls !off (Array.length vls);
      off := !off + Array.length idx)
    parts;
  rowptr.(nrows_a) <- !off;
  (rowptr, out_idx, out_vls)

(* Index-blocked dense elementwise/apply: disjoint in-place writes,
   exact for every operator. *)
let ewise_add_dense ~grain ~op ~dummy ((avls, aocc) : 'a array * bool array)
    ((bvls, bocc) : 'a array * bool array) =
  let n = Array.length avls in
  let out = Array.make (max n 1) dummy in
  let occ = Array.make (max n 1) false in
  Pool.parallel_for ~n ~grain (fun lo hi ->
      for i = lo to hi - 1 do
        if aocc.(i) then begin
          out.(i) <- (if bocc.(i) then op avls.(i) bvls.(i) else avls.(i));
          occ.(i) <- true
        end
        else if bocc.(i) then begin
          out.(i) <- bvls.(i);
          occ.(i) <- true
        end
      done);
  (out, occ)

let ewise_mult_dense ~grain ~op ~dummy ((avls, aocc) : 'a array * bool array)
    ((bvls, bocc) : 'a array * bool array) =
  let n = Array.length avls in
  let out = Array.make (max n 1) dummy in
  let occ = Array.make (max n 1) false in
  Pool.parallel_for ~n ~grain (fun lo hi ->
      for i = lo to hi - 1 do
        if aocc.(i) && bocc.(i) then begin
          out.(i) <- op avls.(i) bvls.(i);
          occ.(i) <- true
        end
      done);
  (out, occ)

let apply_dense ~grain ~f ~dummy ((avls, aocc) : 'a array * bool array) =
  let n = Array.length avls in
  let out = Array.make (max n 1) dummy in
  Pool.parallel_for ~n ~grain (fun lo hi ->
      for i = lo to hi - 1 do
        if aocc.(i) then out.(i) <- f avls.(i)
      done);
  (out, Array.copy aocc)

let apply_v ~grain ~f ((aidx, avls, an) : 'a ventry) =
  if an = 0 then ([||], [||])
  else begin
    let out = Array.make an (f avls.(0)) in
    Pool.parallel_for ~n:an ~grain (fun lo hi ->
        for k = lo to hi - 1 do
          out.(k) <- f avls.(k)
        done);
    (Array.sub aidx 0 an, out)
  end

(* Chunk-combined reduce: per-chunk partials fold without the identity
   seed (hit flag), combine in ascending chunk order, then seed with the
   identity exactly as the sequential left fold does.  ⊕ must be
   exactly associative (caller-gated). *)
let reduce_dense ~grain ~op ~identity ((avls, aocc) : 'a array * bool array) =
  let n = Array.length avls in
  let nchunks = (n + grain - 1) / grain in
  let hitp = Array.make (max nchunks 1) false in
  let accp = Array.make (max nchunks 1) identity in
  Pool.parallel_for ~n ~grain (fun lo hi ->
      let ci = lo / grain in
      let acc = ref identity and hit = ref false in
      for i = lo to hi - 1 do
        if aocc.(i) then begin
          acc := (if !hit then op !acc avls.(i) else avls.(i));
          hit := true
        end
      done;
      hitp.(ci) <- !hit;
      accp.(ci) <- !acc);
  let acc = ref identity and any = ref false in
  for ci = 0 to nchunks - 1 do
    if hitp.(ci) then begin
      acc := (if !any then op !acc accp.(ci) else accp.(ci));
      any := true
    end
  done;
  if !any then op identity !acc else identity

(* -- static certification surface --

   Every kernel above decomposes its index space with the same
   [Pool.parallel_for] arithmetic; [Certify] exposes that decomposition
   (and which of the two safety arguments each kernel relies on) as
   data, so the static analyzer can re-derive the PR 5 safety claims —
   chunk write-set disjointness for output-partitioned kernels, an
   exactly associative ⊕ for chunk-combined ones — instead of trusting
   the comments.  [set_tamper] lets the seeded-defect tests hand the
   certifier a deliberately broken decomposition. *)

module Certify = struct
  type decomposition =
    | Output_partitioned
    | Chunk_combined

  type descriptor = {
    name : string;
    decomposition : decomposition;
    chunks : n:int -> grain:int -> (int * int) array;
  }

  (* Mirrors Pool.parallel_for: chunk ci covers [ci*g, min(n, ci*g+g)). *)
  let pool_chunks ~n ~grain =
    if n <= 0 then [||]
    else begin
      let g = max 1 grain in
      let nchunks = (n + g - 1) / g in
      Array.init nchunks (fun ci ->
          let lo = ci * g in
          (lo, min n (lo + g)))
    end

  let tamper : (descriptor -> descriptor) option ref = ref None
  let set_tamper f = tamper := f

  let base =
    let k name decomposition = { name; decomposition; chunks = pool_chunks } in
    [ k "mxv_gather" Output_partitioned;
      k "vxm_gather" Output_partitioned;
      k "mxv_pull_masked" Output_partitioned;
      k "vxm_pull_dense" Output_partitioned;
      k "mxm_gustavson" Output_partitioned;
      k "ewise_add_dense" Output_partitioned;
      k "ewise_mult_dense" Output_partitioned;
      k "apply_dense" Output_partitioned;
      k "apply_v" Output_partitioned;
      k "mxv_scatter" Chunk_combined;
      k "vxm_scatter" Chunk_combined;
      k "vxm_dense" Chunk_combined;
      k "reduce_dense" Chunk_combined;
      k "reduce_v" Chunk_combined ]

  let registry () =
    match !tamper with None -> base | Some f -> List.map f base
end

let reduce_v ~grain ~op ~identity ((_, avls, an) : 'a ventry) =
  let nchunks = (an + grain - 1) / grain in
  let accp = Array.make (max nchunks 1) identity in
  Pool.parallel_for ~n:an ~grain (fun lo hi ->
      let ci = lo / grain in
      let acc = ref avls.(lo) in
      for k = lo + 1 to hi - 1 do
        acc := op !acc avls.(k)
      done;
      accp.(ci) <- !acc);
  let acc = ref identity in
  for ci = 0 to nchunks - 1 do
    acc := op !acc accp.(ci)
  done;
  !acc
