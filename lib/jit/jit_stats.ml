type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;
  native_failures : int;
  compile_seconds : float;
  warm_requests : int;
  warm_compiles : int;
}

let lookups = ref 0
let memory_hits = ref 0
let disk_hits = ref 0
let compiles = ref 0
let native_compiles = ref 0
let native_failures = ref 0
let compile_seconds = ref 0.0
let warm_requests = ref 0
let warm_compiles = ref 0

let record_lookup () = incr lookups
let record_memory_hit () = incr memory_hits
let record_disk_hit () = incr disk_hits

(* Per-signature dispatch tallies and fusion-rewrite counters (fed by the
   nonblocking execution engine).  Guarded by a lock of their own: the
   scheduler's worker domains dispatch kernels concurrently, and the
   dispatch lock is not held around these calls. *)

type sig_tally = { mutable hits : int; mutable misses : int }

let tally_lock = Mutex.create ()
let sig_table : (string, sig_tally) Hashtbl.t = Hashtbl.create 64
let fusion_table : (string, int) Hashtbl.t = Hashtbl.create 16

let record_signature key ~hit =
  Mutex.protect tally_lock @@ fun () ->
  let t =
    match Hashtbl.find_opt sig_table key with
    | Some t -> t
    | None ->
      let t = { hits = 0; misses = 0 } in
      Hashtbl.add sig_table key t;
      t
  in
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1

let record_fusion kind =
  Mutex.protect tally_lock @@ fun () ->
  Hashtbl.replace fusion_table kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt fusion_table kind))

let per_signature () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare
    (Hashtbl.fold
       (fun key t acc -> (key, t.hits, t.misses) :: acc)
       sig_table [])

let fusions () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) fusion_table [])

(* Storage-format counters live in Gbtl.Format_stats (the containers
   record conversions themselves); re-exported here so the CLI reads all
   dispatch-related statistics from one module. *)
let formats = Gbtl.Format_stats.counters

let record_compile ~native ~seconds =
  incr compiles;
  if native then incr native_compiles;
  compile_seconds := !compile_seconds +. seconds

let record_native_failure () = incr native_failures

(* Ahead-of-time warm-up bookkeeping (lib/analysis drives the warm-up;
   the counters live here next to the compile counters they offset). *)
let record_warm_request () = incr warm_requests
let record_warm_compile () = incr warm_compiles

let snapshot () =
  { lookups = !lookups;
    memory_hits = !memory_hits;
    disk_hits = !disk_hits;
    compiles = !compiles;
    native_compiles = !native_compiles;
    native_failures = !native_failures;
    compile_seconds = !compile_seconds;
    warm_requests = !warm_requests;
    warm_compiles = !warm_compiles }

let reset () =
  lookups := 0;
  memory_hits := 0;
  disk_hits := 0;
  compiles := 0;
  native_compiles := 0;
  native_failures := 0;
  compile_seconds := 0.0;
  warm_requests := 0;
  warm_compiles := 0;
  Mutex.protect tally_lock (fun () ->
      Hashtbl.reset sig_table;
      Hashtbl.reset fusion_table)

let pp fmt s =
  Format.fprintf fmt
    "lookups=%d memory_hits=%d disk_hits=%d compiles=%d (native=%d, \
     failures=%d) compile_time=%.6fs warm=%d/%d"
    s.lookups s.memory_hits s.disk_hits s.compiles s.native_compiles
    s.native_failures s.compile_seconds s.warm_compiles s.warm_requests
