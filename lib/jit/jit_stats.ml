type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;
  native_failures : int;
  compile_seconds : float;
  warm_requests : int;
  warm_compiles : int;
  (* resilience counters (the fault-tolerance layer) *)
  cache_write_failures : int;
  checksum_quarantines : int;
  compile_timeouts : int;
  compile_retries : int;
  breaker_trips : int;
  breaker_short_circuits : int;
  inflight_waits : int;
  sched_worker_failures : int;
  sched_seq_reruns : int;
  blocking_fallbacks : int;
}

let lookups = ref 0
let memory_hits = ref 0
let disk_hits = ref 0
let compiles = ref 0
let native_compiles = ref 0
let native_failures = ref 0
let compile_seconds = ref 0.0
let warm_requests = ref 0
let warm_compiles = ref 0
let cache_write_failures = ref 0
let checksum_quarantines = ref 0
let compile_timeouts = ref 0
let compile_retries = ref 0
let breaker_trips = ref 0
let breaker_short_circuits = ref 0
let inflight_waits = ref 0
let sched_worker_failures = ref 0
let sched_seq_reruns = ref 0
let blocking_fallbacks = ref 0

let record_lookup () = incr lookups
let record_memory_hit () = incr memory_hits
let record_disk_hit () = incr disk_hits

(* Per-signature dispatch tallies and fusion-rewrite counters (fed by the
   nonblocking execution engine).  Guarded by a lock of their own: the
   scheduler's worker domains dispatch kernels concurrently, and the
   dispatch lock is not held around these calls. *)

type sig_tally = { mutable hits : int; mutable misses : int }

let tally_lock = Mutex.create ()
let sig_table : (string, sig_tally) Hashtbl.t = Hashtbl.create 64
let fusion_table : (string, int) Hashtbl.t = Hashtbl.create 16

let record_signature key ~hit =
  Mutex.protect tally_lock @@ fun () ->
  let t =
    match Hashtbl.find_opt sig_table key with
    | Some t -> t
    | None ->
      let t = { hits = 0; misses = 0 } in
      Hashtbl.add sig_table key t;
      t
  in
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1

let record_fusion kind =
  Mutex.protect tally_lock @@ fun () ->
  Hashtbl.replace fusion_table kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt fusion_table kind))

let per_signature () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare
    (Hashtbl.fold
       (fun key t acc -> (key, t.hits, t.misses) :: acc)
       sig_table [])

let fusions () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) fusion_table [])

(* Storage-format counters live in Gbtl.Format_stats (the containers
   record conversions themselves); re-exported here so the CLI reads all
   dispatch-related statistics from one module. *)
let formats = Gbtl.Format_stats.counters

let record_compile ~native ~seconds =
  incr compiles;
  if native then incr native_compiles;
  compile_seconds := !compile_seconds +. seconds

let record_native_failure () = incr native_failures

(* Resilience counters.  Like the cache counters above they are plain
   increments: losing one under a rare cross-domain race is acceptable,
   and the chaos tests that assert exact values run single-threaded. *)
let record_cache_write_failure () = incr cache_write_failures
let record_checksum_quarantine () = incr checksum_quarantines
let record_compile_timeout () = incr compile_timeouts
let record_compile_retry () = incr compile_retries
let record_breaker_trip () = incr breaker_trips
let record_breaker_short_circuit () = incr breaker_short_circuits
let record_inflight_wait () = incr inflight_waits
let record_sched_worker_failure () = incr sched_worker_failures
let record_sched_seq_rerun () = incr sched_seq_reruns
let record_blocking_fallback () = incr blocking_fallbacks

(* Ahead-of-time warm-up bookkeeping (lib/analysis drives the warm-up;
   the counters live here next to the compile counters they offset). *)
let record_warm_request () = incr warm_requests
let record_warm_compile () = incr warm_compiles

let snapshot () =
  { lookups = !lookups;
    memory_hits = !memory_hits;
    disk_hits = !disk_hits;
    compiles = !compiles;
    native_compiles = !native_compiles;
    native_failures = !native_failures;
    compile_seconds = !compile_seconds;
    warm_requests = !warm_requests;
    warm_compiles = !warm_compiles;
    cache_write_failures = !cache_write_failures;
    checksum_quarantines = !checksum_quarantines;
    compile_timeouts = !compile_timeouts;
    compile_retries = !compile_retries;
    breaker_trips = !breaker_trips;
    breaker_short_circuits = !breaker_short_circuits;
    inflight_waits = !inflight_waits;
    sched_worker_failures = !sched_worker_failures;
    sched_seq_reruns = !sched_seq_reruns;
    blocking_fallbacks = !blocking_fallbacks }

let reset () =
  lookups := 0;
  memory_hits := 0;
  disk_hits := 0;
  compiles := 0;
  native_compiles := 0;
  native_failures := 0;
  compile_seconds := 0.0;
  warm_requests := 0;
  warm_compiles := 0;
  cache_write_failures := 0;
  checksum_quarantines := 0;
  compile_timeouts := 0;
  compile_retries := 0;
  breaker_trips := 0;
  breaker_short_circuits := 0;
  inflight_waits := 0;
  sched_worker_failures := 0;
  sched_seq_reruns := 0;
  blocking_fallbacks := 0;
  Mutex.protect tally_lock (fun () ->
      Hashtbl.reset sig_table;
      Hashtbl.reset fusion_table)

let pp fmt s =
  Format.fprintf fmt
    "lookups=%d memory_hits=%d disk_hits=%d compiles=%d (native=%d, \
     failures=%d) compile_time=%.6fs warm=%d/%d"
    s.lookups s.memory_hits s.disk_hits s.compiles s.native_compiles
    s.native_failures s.compile_seconds s.warm_compiles s.warm_requests;
  let faults =
    s.cache_write_failures + s.checksum_quarantines + s.compile_timeouts
    + s.compile_retries + s.breaker_trips + s.breaker_short_circuits
    + s.sched_worker_failures + s.sched_seq_reruns + s.blocking_fallbacks
  in
  if faults > 0 then
    Format.fprintf fmt
      "@\nresilience: cache_write_fail=%d quarantined=%d timeouts=%d \
       retries=%d breaker_trips=%d short_circuits=%d worker_fail=%d \
       seq_reruns=%d blocking_fallbacks=%d"
      s.cache_write_failures s.checksum_quarantines s.compile_timeouts
      s.compile_retries s.breaker_trips s.breaker_short_circuits
      s.sched_worker_failures s.sched_seq_reruns s.blocking_fallbacks
