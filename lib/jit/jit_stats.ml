type snapshot = {
  lookups : int;
  memory_hits : int;
  disk_hits : int;
  compiles : int;
  native_compiles : int;
  native_failures : int;
  compile_seconds : float;
  warm_requests : int;
  warm_compiles : int;
  (* resilience counters (the fault-tolerance layer) *)
  cache_write_failures : int;
  checksum_quarantines : int;
  compile_timeouts : int;
  compile_retries : int;
  breaker_trips : int;
  breaker_short_circuits : int;
  inflight_waits : int;
  sched_worker_failures : int;
  sched_seq_reruns : int;
  blocking_fallbacks : int;
  (* effect-analysis counters (the static footprint/race stage) *)
  effects_checks : int;
  effects_hazards : int;
  effects_rejections : int;
  effects_degraded : int;
}

(* Counters are atomics: the scheduler's worker domains and the pool's
   chunk tasks record events concurrently, and a plain [int ref]
   increment is a load + store that loses updates under contention (the
   counter-race test in test_parallel pins this down). *)
let lookups = Atomic.make 0
let memory_hits = Atomic.make 0
let disk_hits = Atomic.make 0
let compiles = Atomic.make 0
let native_compiles = Atomic.make 0
let native_failures = Atomic.make 0
let warm_requests = Atomic.make 0
let warm_compiles = Atomic.make 0
let cache_write_failures = Atomic.make 0
let checksum_quarantines = Atomic.make 0
let compile_timeouts = Atomic.make 0
let compile_retries = Atomic.make 0
let breaker_trips = Atomic.make 0
let breaker_short_circuits = Atomic.make 0
let inflight_waits = Atomic.make 0
let sched_worker_failures = Atomic.make 0
let sched_seq_reruns = Atomic.make 0
let blocking_fallbacks = Atomic.make 0
let effects_checks = Atomic.make 0
let effects_hazards = Atomic.make 0
let effects_rejections = Atomic.make 0
let effects_degraded = Atomic.make 0

(* Float accumulation has no atomic fetch-and-add; a mutex is fine at
   compile frequency. *)
let seconds_lock = Mutex.create ()
let compile_seconds = ref 0.0

let record_lookup () = Atomic.incr lookups
let record_memory_hit () = Atomic.incr memory_hits
let record_disk_hit () = Atomic.incr disk_hits

(* Per-signature dispatch tallies and fusion-rewrite counters (fed by the
   nonblocking execution engine).  Guarded by a lock of their own: the
   scheduler's worker domains dispatch kernels concurrently, and the
   dispatch lock is not held around these calls. *)

type sig_tally = { mutable hits : int; mutable misses : int }

let tally_lock = Mutex.create ()
let sig_table : (string, sig_tally) Hashtbl.t = Hashtbl.create 64
let fusion_table : (string, int) Hashtbl.t = Hashtbl.create 16

let record_signature key ~hit =
  Mutex.protect tally_lock @@ fun () ->
  let t =
    match Hashtbl.find_opt sig_table key with
    | Some t -> t
    | None ->
      let t = { hits = 0; misses = 0 } in
      Hashtbl.add sig_table key t;
      t
  in
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1

let record_fusion kind =
  Mutex.protect tally_lock @@ fun () ->
  Hashtbl.replace fusion_table kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt fusion_table kind))

(* Per-family kernel timing tallies: the raw observations behind the
   cost model's calibration (lib/cost reads these, normalizes them to
   ns/item coefficients and persists them next to the JIT disk cache).
   Families are coarser than full signature keys — "mxv_pull",
   "ewise_v", … — because the planner needs a coefficient before it has
   chosen the exact signature. *)

type time_tally = {
  mutable t_items : float;  (* float: totals overflow int on long runs *)
  mutable t_seconds : float;
  mutable t_samples : int;
}

let time_table : (string, time_tally) Hashtbl.t = Hashtbl.create 32

let record_kernel_time ~family ~items ~seconds =
  if items > 0 && seconds >= 0.0 then
    Mutex.protect tally_lock @@ fun () ->
    let t =
      match Hashtbl.find_opt time_table family with
      | Some t -> t
      | None ->
        let t = { t_items = 0.0; t_seconds = 0.0; t_samples = 0 } in
        Hashtbl.add time_table family t;
        t
    in
    t.t_items <- t.t_items +. float_of_int items;
    t.t_seconds <- t.t_seconds +. seconds;
    t.t_samples <- t.t_samples + 1

let kernel_times () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare
    (Hashtbl.fold
       (fun family t acc ->
         (family, t.t_items, t.t_seconds, t.t_samples) :: acc)
       time_table [])

let per_signature () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare
    (Hashtbl.fold
       (fun key t acc -> (key, t.hits, t.misses) :: acc)
       sig_table [])

let fusions () =
  Mutex.protect tally_lock @@ fun () ->
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) fusion_table [])

(* Storage-format counters live in Gbtl.Format_stats (the containers
   record conversions themselves); re-exported here so the CLI reads all
   dispatch-related statistics from one module. *)
let formats = Gbtl.Format_stats.counters

(* Domain-pool counters live in Parallel.Pool (the pool records its own
   jobs/chunks/degrades); re-exported for the same one-stop reason. *)
let pool = Parallel.Pool.counters
let pool_busy_seconds = Parallel.Pool.busy_seconds

(* Out-of-core tile counters live in Gbtl.Tile_stats (the tiled
   containers and the checkpointed driver record their own traffic);
   re-exported for the same one-stop reason. *)
let tiles = Gbtl.Tile_stats.counters

let record_compile ~native ~seconds =
  Atomic.incr compiles;
  if native then Atomic.incr native_compiles;
  Mutex.protect seconds_lock (fun () ->
      compile_seconds := !compile_seconds +. seconds)

let record_native_failure () = Atomic.incr native_failures

let record_cache_write_failure () = Atomic.incr cache_write_failures
let record_checksum_quarantine () = Atomic.incr checksum_quarantines
let record_compile_timeout () = Atomic.incr compile_timeouts
let record_compile_retry () = Atomic.incr compile_retries
let record_breaker_trip () = Atomic.incr breaker_trips
let record_breaker_short_circuit () = Atomic.incr breaker_short_circuits
let record_inflight_wait () = Atomic.incr inflight_waits
let record_sched_worker_failure () = Atomic.incr sched_worker_failures
let record_sched_seq_rerun () = Atomic.incr sched_seq_reruns
let record_blocking_fallback () = Atomic.incr blocking_fallbacks

(* Effect-analysis bookkeeping (lib/analysis runs the checks; the
   counters live here so doctor/health report them with the rest). *)
let record_effects_check () = Atomic.incr effects_checks
let record_effects_hazard ~count =
  if count > 0 then ignore (Atomic.fetch_and_add effects_hazards count)
let record_effects_rejection () = Atomic.incr effects_rejections
let record_effects_degraded () = Atomic.incr effects_degraded

(* Ahead-of-time warm-up bookkeeping (lib/analysis drives the warm-up;
   the counters live here next to the compile counters they offset). *)
let record_warm_request () = Atomic.incr warm_requests
let record_warm_compile () = Atomic.incr warm_compiles

let snapshot () =
  { lookups = Atomic.get lookups;
    memory_hits = Atomic.get memory_hits;
    disk_hits = Atomic.get disk_hits;
    compiles = Atomic.get compiles;
    native_compiles = Atomic.get native_compiles;
    native_failures = Atomic.get native_failures;
    compile_seconds = Mutex.protect seconds_lock (fun () -> !compile_seconds);
    warm_requests = Atomic.get warm_requests;
    warm_compiles = Atomic.get warm_compiles;
    cache_write_failures = Atomic.get cache_write_failures;
    checksum_quarantines = Atomic.get checksum_quarantines;
    compile_timeouts = Atomic.get compile_timeouts;
    compile_retries = Atomic.get compile_retries;
    breaker_trips = Atomic.get breaker_trips;
    breaker_short_circuits = Atomic.get breaker_short_circuits;
    inflight_waits = Atomic.get inflight_waits;
    sched_worker_failures = Atomic.get sched_worker_failures;
    sched_seq_reruns = Atomic.get sched_seq_reruns;
    blocking_fallbacks = Atomic.get blocking_fallbacks;
    effects_checks = Atomic.get effects_checks;
    effects_hazards = Atomic.get effects_hazards;
    effects_rejections = Atomic.get effects_rejections;
    effects_degraded = Atomic.get effects_degraded }

let reset () =
  Atomic.set lookups 0;
  Atomic.set memory_hits 0;
  Atomic.set disk_hits 0;
  Atomic.set compiles 0;
  Atomic.set native_compiles 0;
  Atomic.set native_failures 0;
  Mutex.protect seconds_lock (fun () -> compile_seconds := 0.0);
  Atomic.set warm_requests 0;
  Atomic.set warm_compiles 0;
  Atomic.set cache_write_failures 0;
  Atomic.set checksum_quarantines 0;
  Atomic.set compile_timeouts 0;
  Atomic.set compile_retries 0;
  Atomic.set breaker_trips 0;
  Atomic.set breaker_short_circuits 0;
  Atomic.set inflight_waits 0;
  Atomic.set sched_worker_failures 0;
  Atomic.set sched_seq_reruns 0;
  Atomic.set blocking_fallbacks 0;
  Atomic.set effects_checks 0;
  Atomic.set effects_hazards 0;
  Atomic.set effects_rejections 0;
  Atomic.set effects_degraded 0;
  Mutex.protect tally_lock (fun () ->
      Hashtbl.reset sig_table;
      Hashtbl.reset fusion_table;
      Hashtbl.reset time_table)

let pp fmt s =
  Format.fprintf fmt
    "lookups=%d memory_hits=%d disk_hits=%d compiles=%d (native=%d, \
     failures=%d) compile_time=%.6fs warm=%d/%d"
    s.lookups s.memory_hits s.disk_hits s.compiles s.native_compiles
    s.native_failures s.compile_seconds s.warm_compiles s.warm_requests;
  let faults =
    s.cache_write_failures + s.checksum_quarantines + s.compile_timeouts
    + s.compile_retries + s.breaker_trips + s.breaker_short_circuits
    + s.sched_worker_failures + s.sched_seq_reruns + s.blocking_fallbacks
  in
  if faults > 0 then
    Format.fprintf fmt
      "@\nresilience: cache_write_fail=%d quarantined=%d timeouts=%d \
       retries=%d breaker_trips=%d short_circuits=%d worker_fail=%d \
       seq_reruns=%d blocking_fallbacks=%d"
      s.cache_write_failures s.checksum_quarantines s.compile_timeouts
      s.compile_retries s.breaker_trips s.breaker_short_circuits
      s.sched_worker_failures s.sched_seq_reruns s.blocking_fallbacks;
  if s.effects_checks + s.effects_hazards + s.effects_rejections
     + s.effects_degraded > 0
  then
    Format.fprintf fmt
      "@\neffects: checks=%d hazards=%d rejections=%d degraded=%d"
      s.effects_checks s.effects_hazards s.effects_rejections
      s.effects_degraded
