(** Structured health report over the resilience layer: backend probe,
    circuit-breaker state, compile timeout/retry configuration, cache
    integrity scan, fault-injection status and the {!Jit_stats}
    counters.  Backs the [ogb_cli doctor] subcommand. *)

type t = {
  backend : string;  (** availability-probe outcome *)
  effective : string;  (** what [Auto] resolves to *)
  breaker : string;  (** circuit-breaker state description *)
  breaker_threshold : int;
  breaker_cooldown : float;
  compile_timeout : float;
  compile_retries : int;
  cache_dir : string;
  cache_ok : int;  (** cached plugins whose checksum verifies *)
  cache_no_sum : int;  (** pre-hardening entries with no checksum *)
  cache_mismatch : int;  (** corrupt plugins found by the scan *)
  faults : string;  (** armed fault spec, or ["disarmed"] *)
  fault_counters : (string * int * int) list;  (** point, attempts, fired *)
  stats : Jit_stats.snapshot;
  pool_domains : int;  (** resolved domain budget *)
  pool_threshold : int;  (** parallel-dispatch work threshold *)
  pool_counters : (string * int) list;  (** jobs/chunks/tasks/degrades *)
  pool_busy_seconds : float;  (** wall time inside chunk bodies *)
  tile_store_dir : string;  (** root of the out-of-core tile stores *)
  tile_disk_blobs : int;  (** tile/checkpoint blobs on disk *)
  tile_disk_bytes : int;  (** on-disk footprint of the tile stores *)
  tile_disk_quarantined : int;  (** quarantined ([.bad]) tile blobs *)
  tile_counters : (string * int) list;
      (** loads/stores/evictions/quarantines/rebuilds/checkpoints/
          delta plans + resident gauges ({!Jit_stats.tiles}) *)
}

val collect : ?probe:bool -> unit -> t
(** Assemble a report.  [probe] (default true) runs the native-backend
    availability probe, which costs one trivial compile on first call. *)

val healthy : t -> bool
(** No corrupt cache entries and the breaker is not open. *)

val verdict : t -> [ `Healthy | `Degraded | `Failed ]
(** The [ogb doctor] exit-code contract: [`Failed] (exit 2) when the
    cache scan found corrupt plugins, [`Degraded] (exit 1) when the
    circuit breaker is open (dispatch still works, on closures),
    [`Healthy] (exit 0) otherwise. *)

val verdict_string : t -> string

val to_json : t -> string
(** One JSON object carrying the whole report — what [ogb doctor
    --json] prints and the server's [health] response embeds
    verbatim. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
