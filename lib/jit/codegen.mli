(** OCaml source generation for native kernels — the analogue of PyGB's
    templated [operation_binding.cpp] instantiated through [-D] defines
    (paper Fig. 9).  Generated modules are self-contained except for the
    {!Jit_plugin_api.register} call that hands the kernel to the host.

    Codegen covers the vector-kernel family (mxv, vxm, eWiseAdd/Mult,
    apply, reduce) over the [double], [int64_t] and [bool] dtypes — the
    kernels the paper's four benchmark algorithms are built from.  Other
    combinations return [None] and dispatch falls back to the closure
    backend. *)

val supported_dtype : string -> bool

val binop_expr : dtype:string -> string -> string option
(** OCaml source text of a named binary operator at a dtype. *)

val identity_expr : dtype:string -> string -> string option
val unary_expr : dtype:string -> Op_spec.unary -> string option

val mxv_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option

val vxm_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option

val mxv_pull_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** CSC pull dispatch of [Aᵀ ⊕.⊗ u] — same gather body as {!mxv_source}
    (the wrapper passes the CSC arrays with swapped dimensions), keyed
    separately by the signature's formats field. *)

val vxm_dense_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** Scatter product with a dense frontier; result is a dense
    (values, occupancy) pair. *)

val vxm_pull_dense_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** Pull form of the dense-frontier product over the CSC arrays; result
    is a dense (values, occupancy) pair, bit-identical to
    {!vxm_dense_source}. *)

val vxm_tile_acc_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** Tile continuation of the pull product: folds one tile's CSC columns
    into the caller's global (values, occupancy) accumulator in place.
    Keyed per tile shape through the signature's formats field. *)

val mxv_pull_masked_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** Masked CSC pull with a dense frontier, a validity bitmap as the
    complemented mask, and per-column early exit for saturating ⊕ (a
    constant-false exit predicate otherwise). *)

val ewise_source :
  kind:[ `Add | `Mult ] -> dtype:string -> op:string -> key:string ->
  string option

val ewise_fused_source :
  kind:[ `Add | `Mult ] ->
  dtype:string ->
  op:string ->
  chain:Op_spec.unary list ->
  key:string ->
  string option
(** A {e single} compiled module for [apply fk (... (apply f1 (a ⊕ b)))]
    — the paper's §V "series of operations deferred until a single binary
    module containing all of them is compiled".  [chain] is
    innermost-first. *)

val mxm_source :
  dtype:string -> sr:Op_spec.semiring -> key:string -> string option
(** Gustavson row-wise SPA product (unmasked; masked products use the
    closure backend's dot kernel). *)

val apply_source :
  dtype:string -> f:Op_spec.unary -> key:string -> string option

val reduce_source :
  dtype:string -> op:string -> identity:string -> key:string -> string option

(** {2 Dense-vector variants} — operands and results are
    [(values, occupancy)] array pairs. *)

val ewise_dense_source :
  kind:[ `Add | `Mult ] -> dtype:string -> op:string -> key:string ->
  string option

val apply_dense_source :
  dtype:string -> f:Op_spec.unary -> key:string -> string option

val reduce_dense_source :
  dtype:string -> op:string -> identity:string -> key:string -> string option

(** {2 Parallel variants} — chunked over [!Jit_plugin_api.par_for] with
    the grain embedded as a compile-time literal (it is part of the
    cache key), so the decomposition is frozen into the module and
    independent of the domain count.  Gather/dense kernels partition
    the output space and are bit-identical to their sequential twins
    for every operator; the chunk-combined reduces are gated by the
    dispatcher to exactly associative ⊕. *)

val mxv_par_source :
  dtype:string -> sr:Op_spec.semiring -> grain:int -> key:string ->
  string option

val vxm_par_source :
  dtype:string -> sr:Op_spec.semiring -> grain:int -> key:string ->
  string option

val mxv_pull_par_source :
  dtype:string -> sr:Op_spec.semiring -> grain:int -> key:string ->
  string option

val vxm_pull_dense_par_source :
  dtype:string -> sr:Op_spec.semiring -> grain:int -> key:string ->
  string option

val ewise_dense_par_source :
  kind:[ `Add | `Mult ] -> dtype:string -> op:string -> grain:int ->
  key:string -> string option

val apply_dense_par_source :
  dtype:string -> f:Op_spec.unary -> grain:int -> key:string -> string option

val reduce_dense_par_source :
  dtype:string -> op:string -> identity:string -> grain:int -> key:string ->
  string option

val reduce_par_source :
  dtype:string -> op:string -> identity:string -> grain:int -> key:string ->
  string option
