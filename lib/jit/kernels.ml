open Gbtl

let semiring_ops (sr : Op_spec.semiring) =
  [ ("add", sr.Op_spec.add_op);
    ("identity", sr.Op_spec.add_identity);
    ("mul", sr.Op_spec.mul_op) ]

let entries_of_pair (type a) ((idx, vals) : int array * a array) =
  Entries.of_arrays_unsafe idx vals ~len:(Array.length idx)

module Pool = Parallel.Pool

(* Gate for the chunk-merged parallel kernels (scatter push, reduce):
   regrouping a left fold of ⊕ is bit-identical only when ⊕ is exactly
   associative on the machine representation.  Min/Max/LogicalOr/
   LogicalAnd always are; Plus/Times are for the wrapping integer and
   bool dtypes but not for floats.  Output-partitioned kernels (gather,
   dense elementwise/apply) never regroup and are not gated. *)
let float_dtype = function
  | "float" | "double" | "f32" | "f64" -> true
  | _ -> false

(* Test hook: the seeded-defect suite replaces the associativity
   judgment to prove the parallel-safety certifier notices a broken
   gate; the dispatch sites below consult it too, so the defect is the
   real thing, not a simulation. *)
let assoc_override : (dtype:string -> op:string -> bool) option ref = ref None
let set_assoc_override f = assoc_override := f

let exact_assoc ~dtype ~op =
  match !assoc_override with
  | Some f -> f ~dtype ~op
  | None -> (
    match op with
    | "Min" | "Max" | "LogicalOr" | "LogicalAnd" -> true
    | "Plus" | "Times" -> not (float_dtype dtype)
    | _ -> false)

(* Which safety argument licenses each parallel twin's dispatch: the
   chunk-combined kernels are reachable only behind an [exact_assoc]
   test at their dispatch site (mxv_plan's transposed scatter,
   vxm_plan's, vxm_dense's, and both scalar reduces below); the
   output-partitioned ones dispatch unconditionally.  The certifier
   cross-checks this table against [Par_kernels.Certify.registry]. *)
type par_gate = Ungated | Gated_exact_assoc

let par_gates =
  [ ("mxv_gather", Ungated);
    ("vxm_gather", Ungated);
    ("mxv_pull_masked", Ungated);
    ("vxm_pull_dense", Ungated);
    ("mxm_gustavson", Ungated);
    ("ewise_add_dense", Ungated);
    ("ewise_mult_dense", Ungated);
    ("apply_dense", Ungated);
    ("apply_v", Ungated);
    ("mxv_scatter", Gated_exact_assoc);
    ("vxm_scatter", Gated_exact_assoc);
    ("vxm_dense", Gated_exact_assoc);
    ("reduce_dense", Gated_exact_assoc);
    ("reduce_v", Gated_exact_assoc) ]

let par_tag = function
  | Some grain -> "g" ^ string_of_int grain
  | None -> ""

(* -- vector family: array ABI with native codegen -- *)

type 'a matvec_arg =
  int array * int array * 'a array * int array * 'a array * int * int * int
  * bool

let matvec_arg (type a) (m : a Smatrix.t) (u : a Svector.t) flag : a matvec_arg
    =
  ( Smatrix.unsafe_rowptr m,
    Smatrix.unsafe_colidx m,
    Smatrix.unsafe_values m,
    Svector.unsafe_indices u,
    Svector.unsafe_values u,
    Svector.nvals u,
    Smatrix.nrows m,
    Smatrix.ncols m,
    flag )

(* The dispatch half of [mxv], factored out so a coalesced batch of
   same-signature products (the server's request batcher) pays for one
   cache lookup and shares one fetched kernel across every member.
   Layout and grain decisions come from the representative operand
   [u0]; the returned [run] is correct for any conformant vector (both
   the pull and the scatter loop accept arbitrary fills), so batch
   members keyed to the same signature stay bit-identical to their
   solo dispatches. *)
let mxv_plan (type a) (dt : a Dtype.t) (sr : Op_spec.semiring)
    ?(direction = `Auto) ~transpose m (u0 : a Svector.t) =
  (* Direction choice for the transposed product: a filled-in frontier
     favors pulling over the CSC side (one gather per output position);
     a sparse frontier favors the CSR scatter.  Both accumulate each
     output's contributions in ascending source-index order, so the
     results are bit-identical — which is what lets the plan optimizer
     override the fill heuristic through [direction] without changing
     results.  The override is only meaningful for the transposed
     product with the format layer on; elsewhere it is ignored. *)
  let use_pull =
    transpose
    && Format_stats.enabled ()
    &&
    match direction with
    | `Pull -> true
    | `Push -> false
    | `Auto -> Svector.size u0 >= 32 && 4 * Svector.nvals u0 >= Svector.size u0
  in
  (* Row blocks for the gather/pull loops (exact for every operator);
     frontier blocks for the scatter push, gated to exactly associative
     ⊕ because the merge regroups each output's fold. *)
  let nnz = Array.length (Smatrix.unsafe_values m) in
  let par_plan =
    if use_pull then Pool.plan ~work:nnz ~n:(Smatrix.ncols m) ()
    else if transpose then
      if exact_assoc ~dtype:(Dtype.name dt) ~op:sr.Op_spec.add_op then
        Pool.plan ~divisor:4 ~work:nnz ~n:(Svector.nvals u0) ()
      else None
    else Pool.plan ~work:nnz ~n:(Smatrix.nrows m) ()
  in
  let sig_ =
    Kernel_sig.make ~op:"mxv"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:(semiring_ops sr)
      ~formats:(if use_pull then [ ("a", "csc") ] else [])
      ~flags:(if transpose then [ "transpose_a" ] else [])
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let s = Op_spec.instantiate_semiring dt sr in
    let add = Semiring.add s and mul = Semiring.mul s in
    let dummy = Semiring.zero s in
    match par_plan with
    | Some grain ->
      Obj.repr (fun (arg : Obj.t) ->
          let arp, aci, avs, uidx, uvls, un, nrows, ncols, tr =
            (Obj.obj arg : a matvec_arg)
          in
          Obj.repr
            (if tr then
               Par_kernels.mxv_scatter ~grain ~add ~mul ~dummy ~ncols
                 (arp, aci, avs) (uidx, uvls, un)
             else
               Par_kernels.mxv_gather ~grain ~add ~mul ~dummy ~nrows ~ncols
                 (arp, aci, avs) (uidx, uvls, un)))
    | None ->
      Obj.repr (fun (arg : Obj.t) ->
          let arp, aci, avs, uidx, uvls, un, nrows, ncols, tr =
            (Obj.obj arg : a matvec_arg)
          in
          Obj.repr
            (Array_kernels.mxv ~add ~mul ~dummy ~nrows ~ncols ~transpose:tr
               (arp, aci, avs) (uidx, uvls, un)))
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      if use_pull then
        Codegen.mxv_pull_par_source ~dtype:(Dtype.name dt) ~sr ~grain ~key
      else if transpose then None (* chunk-merged scatter: closure backend *)
      else Codegen.mxv_par_source ~dtype:(Dtype.name dt) ~sr ~grain ~key
    | None ->
      if use_pull then Codegen.mxv_pull_source ~dtype:(Dtype.name dt) ~sr ~key
      else Codegen.mxv_source ~dtype:(Dtype.name dt) ~sr ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  (* ABI flag for mxv: true selects the scatter (transposed) loop.  The
     pull dispatch hands the gather loop the CSC arrays with swapped
     dimensions, which computes the transposed product directly. *)
  let run (u : a Svector.t) =
    if transpose && Format_stats.enabled () then
      if use_pull then Format_stats.record_pull ()
      else Format_stats.record_push ();
    let arg : a matvec_arg =
      if use_pull then
        ( Smatrix.unsafe_colptr m,
          Smatrix.unsafe_rowidx m,
          Smatrix.unsafe_cvals m,
          Svector.unsafe_indices u,
          Svector.unsafe_values u,
          Svector.nvals u,
          Smatrix.ncols m,
          Smatrix.nrows m,
          false )
      else matvec_arg m u transpose
    in
    let result = kernel (Obj.repr arg) in
    entries_of_pair (Obj.obj result : int array * a array)
  in
  (sig_, run)

let mxv dt sr ?direction ~transpose m u =
  snd (mxv_plan dt sr ?direction ~transpose m u) u

let mxv_batch dt sr ~transpose m = function
  | [] -> []
  | u0 :: _ as us ->
    let _, run = mxv_plan dt sr ~transpose m u0 in
    List.map run us

(* "⊕ can no longer change this accumulator" — the early-exit predicate
   of the masked pull.  Only saturating monoids have one; constant-false
   keeps the gather exhaustive (and still correct) for the rest.  Must
   stay in sync with Codegen.saturating_expr_cls. *)
let saturating_check (type a) (dt : a Dtype.t) (sr : Op_spec.semiring) :
    a -> bool =
  match sr.Op_spec.add_op with
  | "LogicalOr" -> Dtype.to_bool dt
  | "Plus" | "Max" -> (
    match dt with Dtype.Bool -> fun b -> b | _ -> fun _ -> false)
  | _ -> fun _ -> false

let mxv_pull_masked (type a) (dt : a Dtype.t) (sr : Op_spec.semiring)
    ~(visited : bool array) (m : a Smatrix.t)
    ((uvls, uocc) : a array * bool array) =
  (* The BFS bottom-up step: gather only unvisited output positions from
     the CSC side, stopping each column early once the saturating ⊕
     cannot change the accumulator.  The mask is the visited bitmap
     itself (complemented) and the exit predicate comes from the
     semiring, so the whole ABI is concrete arrays and the kernel
     compiles natively. *)
  (* Column blocks: each output column folds its contributions in the
     sequential order, so parallelization is exact for every operator. *)
  let par_plan =
    Pool.plan
      ~work:(Array.length (Smatrix.unsafe_cvals m))
      ~n:(Smatrix.ncols m) ()
  in
  let sig_ =
    Kernel_sig.make ~op:"mxv"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:(semiring_ops sr)
      ~formats:[ ("a", "csc"); ("u", "dense") ]
      ~flags:[ "masked_pull"; "transpose_a" ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let s = Op_spec.instantiate_semiring dt sr in
    let add = Semiring.add s and mul = Semiring.mul s in
    let dummy = Semiring.zero s in
    let stop = saturating_check dt sr in
    Obj.repr (fun (arg : Obj.t) ->
        let acp, ari, avs, uvls, uocc, visited, ncols =
          (Obj.obj arg
            : int array * int array * a array * a array * bool array
              * bool array * int)
        in
        Obj.repr
          (match par_plan with
          | Some grain ->
            Par_kernels.mxv_pull_masked ~grain ~add ~mul ~dummy ~stop ~ncols
              ~visited (acp, ari, avs) (uvls, uocc)
          | None ->
            Array_kernels.mxv_pull_masked ~add ~mul ~dummy ~stop ~ncols
              ~visited (acp, ari, avs) (uvls, uocc)))
  in
  let native_source ~key =
    match par_plan with
    | Some _ -> None (* parallel masked pull: closure backend *)
    | None -> Codegen.mxv_pull_masked_source ~dtype:(Dtype.name dt) ~sr ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg =
    ( Smatrix.unsafe_colptr m,
      Smatrix.unsafe_rowidx m,
      Smatrix.unsafe_cvals m,
      uvls,
      uocc,
      visited,
      Smatrix.ncols m )
  in
  entries_of_pair (Obj.obj (kernel (Obj.repr arg)) : int array * a array)

(* Batch seam for [vxm], mirroring {!mxv_plan}. *)
let vxm_plan (type a) (dt : a Dtype.t) (sr : Op_spec.semiring) ~transpose
    (u0 : a Svector.t) m =
  (* Semantic transpose runs the gather loop (row blocks, exact for
     every operator); the plain product is the scatter push, gated to
     exactly associative ⊕. *)
  let nnz = Array.length (Smatrix.unsafe_values m) in
  let par_plan =
    if transpose then Pool.plan ~work:nnz ~n:(Smatrix.nrows m) ()
    else if exact_assoc ~dtype:(Dtype.name dt) ~op:sr.Op_spec.add_op then
      Pool.plan ~divisor:4 ~work:nnz ~n:(Svector.nvals u0) ()
    else None
  in
  let sig_ =
    Kernel_sig.make ~op:"vxm"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:(semiring_ops sr)
      ~flags:(if transpose then [ "transpose_a" ] else [])
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let s = Op_spec.instantiate_semiring dt sr in
    let add = Semiring.add s and mul = Semiring.mul s in
    let dummy = Semiring.zero s in
    match par_plan with
    | Some grain ->
      Obj.repr (fun (arg : Obj.t) ->
          let arp, aci, avs, uidx, uvls, un, nrows, ncols, flag =
            (Obj.obj arg : a matvec_arg)
          in
          Obj.repr
            (if flag then
               Par_kernels.vxm_scatter ~grain ~add ~mul ~dummy ~ncols
                 (arp, aci, avs) (uidx, uvls, un)
             else
               Par_kernels.vxm_gather ~grain ~add ~mul ~dummy ~nrows ~ncols
                 (arp, aci, avs) (uidx, uvls, un)))
    | None ->
      Obj.repr (fun (arg : Obj.t) ->
          let arp, aci, avs, uidx, uvls, un, nrows, ncols, flag =
            (Obj.obj arg : a matvec_arg)
          in
          (* ABI flag false = gather loop; Array_kernels.vxm gathers when
             its [transpose] is true. *)
          Obj.repr
            (Array_kernels.vxm ~add ~mul ~dummy ~nrows ~ncols
               ~transpose:(not flag) (uidx, uvls, un) (arp, aci, avs)))
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      if transpose then
        Codegen.vxm_par_source ~dtype:(Dtype.name dt) ~sr ~grain ~key
      else None (* chunk-merged scatter: closure backend *)
    | None -> Codegen.vxm_source ~dtype:(Dtype.name dt) ~sr ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  (* Semantic transpose means the gather loop, which the shared kernel
     body runs when the ABI flag is false. *)
  let run (u : a Svector.t) =
    let result = kernel (Obj.repr (matvec_arg m u (not transpose))) in
    entries_of_pair (Obj.obj result : int array * a array)
  in
  (sig_, run)

let vxm dt sr ~transpose u m = snd (vxm_plan dt sr ~transpose u m) u

let vxm_batch dt sr ~transpose m = function
  | [] -> []
  | u0 :: _ as us ->
    let _, run = vxm_plan dt sr ~transpose u0 m in
    List.map run us

let vxm_dense (type a) (dt : a Dtype.t) (sr : Op_spec.semiring)
    ((uvls, uocc) : a array * bool array) (m : a Smatrix.t) :
    a array * bool array =
  (* Row-blocked scatter push: chunk-merged, so gated to exactly
     associative ⊕. *)
  let par_plan =
    if exact_assoc ~dtype:(Dtype.name dt) ~op:sr.Op_spec.add_op then
      Pool.plan ~divisor:4
        ~work:(Array.length (Smatrix.unsafe_values m))
        ~n:(Smatrix.nrows m) ()
    else None
  in
  let sig_ =
    Kernel_sig.make ~op:"vxm"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:(semiring_ops sr)
      ~formats:[ ("u", "dense"); ("w", "dense") ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let s = Op_spec.instantiate_semiring dt sr in
    let add = Semiring.add s and mul = Semiring.mul s in
    let dummy = Semiring.zero s in
    Obj.repr (fun (arg : Obj.t) ->
        let uvls, uocc, arp, aci, avs, nrows, ncols =
          (Obj.obj arg
            : a array * bool array * int array * int array * a array * int
              * int)
        in
        Obj.repr
          (match par_plan with
          | Some grain ->
            Par_kernels.vxm_dense ~grain ~add ~mul ~dummy ~nrows ~ncols
              (uvls, uocc) (arp, aci, avs)
          | None ->
            Array_kernels.vxm_dense ~add ~mul ~dummy ~nrows ~ncols (uvls, uocc)
              (arp, aci, avs)))
  in
  let native_source ~key =
    match par_plan with
    | Some _ -> None (* chunk-merged scatter: closure backend *)
    | None -> Codegen.vxm_dense_source ~dtype:(Dtype.name dt) ~sr ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg =
    ( uvls,
      uocc,
      Smatrix.unsafe_rowptr m,
      Smatrix.unsafe_colidx m,
      Smatrix.unsafe_values m,
      Smatrix.nrows m,
      Smatrix.ncols m )
  in
  (Obj.obj (kernel (Obj.repr arg)) : a array * bool array)

let vxm_pull_dense (type a) (dt : a Dtype.t) (sr : Op_spec.semiring)
    ((uvls, uocc) : a array * bool array) (m : a Smatrix.t) :
    a array * bool array =
  (* Pull form of [vxm_dense] over the cached CSC side: one gather (and
     one local accumulator) per output position instead of a
     read-modify-write scatter — the fast path for an iterated product
     such as PageRank, where building the CSC side once is amortized
     over every iteration.  Rows ascend within each column, so the fold
     order (and the result) is identical to the scatter. *)
  (* Column blocks over the CSC side: each output folds its column in
     the sequential order, so parallelization is exact for every
     operator — the PageRank hot loop. *)
  let par_plan =
    Pool.plan
      ~work:(Array.length (Smatrix.unsafe_cvals m))
      ~n:(Smatrix.ncols m) ()
  in
  let sig_ =
    Kernel_sig.make ~op:"vxm"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:(semiring_ops sr)
      ~formats:[ ("a", "csc"); ("u", "dense"); ("w", "dense") ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let s = Op_spec.instantiate_semiring dt sr in
    let add = Semiring.add s and mul = Semiring.mul s in
    let dummy = Semiring.zero s in
    Obj.repr (fun (arg : Obj.t) ->
        let uvls, uocc, acp, ari, avs, ncols =
          (Obj.obj arg
            : a array * bool array * int array * int array * a array * int)
        in
        Obj.repr
          (match par_plan with
          | Some grain ->
            Par_kernels.vxm_pull_dense ~grain ~add ~mul ~dummy ~ncols
              (acp, ari, avs) (uvls, uocc)
          | None ->
            Array_kernels.vxm_pull_dense ~add ~mul ~dummy ~ncols
              (acp, ari, avs) (uvls, uocc)))
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      Codegen.vxm_pull_dense_par_source ~dtype:(Dtype.name dt) ~sr ~grain ~key
    | None -> Codegen.vxm_pull_dense_source ~dtype:(Dtype.name dt) ~sr ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg =
    ( uvls,
      uocc,
      Smatrix.unsafe_colptr m,
      Smatrix.unsafe_rowidx m,
      Smatrix.unsafe_cvals m,
      Smatrix.ncols m )
  in
  (Obj.obj (kernel (Obj.repr arg)) : a array * bool array)

let vxm_tile_acc (type a) (dt : a Dtype.t) (sr : Op_spec.semiring)
    ~(tile_tag : string) ~(r0 : int) ~(c0 : int) (tile : a Smatrix.t)
    ((uvls, uocc) : a array * bool array)
    ((acc, occ) : a array * bool array) : unit =
  (* Tile continuation of [vxm_pull_dense]: the tile shape rides in the
     signature's formats field, so each tiling compiles (and caches) its
     own module — the out-of-core analogue of the CSR/CSC format key.
     Sequential on purpose: exactness of the streamed product rests on
     folding each output column in ascending global row order across
     tiles, which a per-tile continuation preserves and chunk merging
     would not. *)
  let sig_ =
    Kernel_sig.make ~op:"vxm_tile"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:(semiring_ops sr)
      ~formats:
        [ ("a", "csc"); ("u", "dense"); ("w", "dense"); ("tile", tile_tag) ]
      ()
  in
  let build () =
    let s = Op_spec.instantiate_semiring dt sr in
    let add = Semiring.add s and mul = Semiring.mul s in
    Obj.repr (fun (arg : Obj.t) ->
        let uvls, uocc, r0, acp, ari, avs, c0, tncols, acc, occ =
          (Obj.obj arg
            : a array * bool array * int * int array * int array * a array
              * int * int * a array * bool array)
        in
        Array_kernels.vxm_tile_acc ~add ~mul ~r0 ~c0 ~tncols (acp, ari, avs)
          (uvls, uocc) (acc, occ);
        Obj.repr ())
  in
  let native_source ~key =
    Codegen.vxm_tile_acc_source ~dtype:(Dtype.name dt) ~sr ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg =
    ( uvls,
      uocc,
      r0,
      Smatrix.unsafe_colptr tile,
      Smatrix.unsafe_rowidx tile,
      Smatrix.unsafe_cvals tile,
      c0,
      Smatrix.ncols tile,
      acc,
      occ )
  in
  ignore (kernel (Obj.repr arg))

type 'a ewise_arg = int array * 'a array * int * int array * 'a array * int

type 'a dense_pair_arg = 'a array * bool array * 'a array * bool array

let ewise_v_dense (type a) kind (dt : a Dtype.t) ~op
    ((avls, aocc) : a array * bool array) ((bvls, bocc) : a array * bool array)
    : a array * bool array =
  let kind_name =
    match kind with `Add -> "ewise_add_v" | `Mult -> "ewise_mult_v"
  in
  (* Index blocks with disjoint in-place writes: exact for every
     operator. *)
  let len = Array.length avls in
  let par_plan = Pool.plan ~work:len ~n:len () in
  let sig_ =
    Kernel_sig.make ~op:kind_name
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op) ]
      ~formats:[ ("u", "dense"); ("v", "dense") ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let f = (Binop.of_name op dt).Binop.f in
    let dummy = Dtype.zero dt in
    Obj.repr (fun (arg : Obj.t) ->
        let avls, aocc, bvls, bocc = (Obj.obj arg : a dense_pair_arg) in
        let result =
          match kind, par_plan with
          | `Add, Some grain ->
            Par_kernels.ewise_add_dense ~grain ~op:f ~dummy (avls, aocc)
              (bvls, bocc)
          | `Mult, Some grain ->
            Par_kernels.ewise_mult_dense ~grain ~op:f ~dummy (avls, aocc)
              (bvls, bocc)
          | `Add, None ->
            Array_kernels.ewise_add_dense ~op:f ~dummy (avls, aocc)
              (bvls, bocc)
          | `Mult, None ->
            Array_kernels.ewise_mult_dense ~op:f ~dummy (avls, aocc)
              (bvls, bocc)
        in
        Obj.repr result)
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      Codegen.ewise_dense_par_source ~kind ~dtype:(Dtype.name dt) ~op ~grain
        ~key
    | None -> Codegen.ewise_dense_source ~kind ~dtype:(Dtype.name dt) ~op ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg : a dense_pair_arg = (avls, aocc, bvls, bocc) in
  (Obj.obj (kernel (Obj.repr arg)) : a array * bool array)

let apply_v_dense (type a) (dt : a Dtype.t) (f : Op_spec.unary)
    ((avls, aocc) : a array * bool array) : a array * bool array =
  let len = Array.length avls in
  let par_plan = Pool.plan ~work:len ~n:len () in
  let sig_ =
    Kernel_sig.make ~op:"apply_v"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("f", Op_spec.unary_name f) ]
      ~formats:[ ("u", "dense") ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let g = (Op_spec.instantiate_unary dt f).Unaryop.f in
    let dummy = Dtype.zero dt in
    Obj.repr (fun (arg : Obj.t) ->
        let avls, aocc = (Obj.obj arg : a array * bool array) in
        Obj.repr
          (match par_plan with
          | Some grain -> Par_kernels.apply_dense ~grain ~f:g ~dummy (avls, aocc)
          | None -> Array_kernels.apply_dense ~f:g ~dummy (avls, aocc)))
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      Codegen.apply_dense_par_source ~dtype:(Dtype.name dt) ~f ~grain ~key
    | None -> Codegen.apply_dense_source ~dtype:(Dtype.name dt) ~f ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  (Obj.obj (kernel (Obj.repr (avls, aocc))) : a array * bool array)

let reduce_v_scalar_dense (type a) (dt : a Dtype.t) ~op ~identity
    ((avls, aocc) : a array * bool array) : a =
  (* Chunk-combined reduce: gated to exactly associative ⊕ (float Plus
     stays sequential, preserving exact PageRank norms). *)
  let len = Array.length avls in
  let par_plan =
    if exact_assoc ~dtype:(Dtype.name dt) ~op then
      Pool.plan ~work:len ~n:len ()
    else None
  in
  let sig_ =
    Kernel_sig.make ~op:"reduce_v_scalar"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op); ("identity", identity) ]
      ~formats:[ ("u", "dense") ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let m = Op_spec.instantiate_monoid dt ~op ~identity in
    let f = m.Monoid.op.Binop.f and id = m.Monoid.identity in
    Obj.repr (fun (arg : Obj.t) ->
        let avls, aocc = (Obj.obj arg : a array * bool array) in
        Obj.repr
          (match par_plan with
          | Some grain ->
            Par_kernels.reduce_dense ~grain ~op:f ~identity:id (avls, aocc)
          | None -> Array_kernels.reduce_dense ~op:f ~identity:id (avls, aocc)))
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      Codegen.reduce_dense_par_source ~dtype:(Dtype.name dt) ~op ~identity
        ~grain ~key
    | None ->
      Codegen.reduce_dense_source ~dtype:(Dtype.name dt) ~op ~identity ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  (Obj.obj (kernel (Obj.repr (avls, aocc))) : a)

let ewise_v (type a) kind (dt : a Dtype.t) ~op (u : a Svector.t)
    (v : a Svector.t) =
  let kind_name = match kind with `Add -> "ewise_add_v" | `Mult -> "ewise_mult_v" in
  let sig_ =
    Kernel_sig.make ~op:kind_name
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op) ]
      ()
  in
  let build () =
    let f = (Binop.of_name op dt).Binop.f in
    Obj.repr (fun (arg : Obj.t) ->
        let aidx, avls, an, bidx, bvls, bn = (Obj.obj arg : a ewise_arg) in
        let result =
          match kind with
          | `Add -> Array_kernels.ewise_add_v ~op:f (aidx, avls, an) (bidx, bvls, bn)
          | `Mult ->
            Array_kernels.ewise_mult_v ~op:f (aidx, avls, an) (bidx, bvls, bn)
        in
        Obj.repr result)
  in
  let native_source ~key =
    Codegen.ewise_source ~kind ~dtype:(Dtype.name dt) ~op ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg : a ewise_arg =
    ( Svector.unsafe_indices u,
      Svector.unsafe_values u,
      Svector.nvals u,
      Svector.unsafe_indices v,
      Svector.unsafe_values v,
      Svector.nvals v )
  in
  entries_of_pair (Obj.obj (kernel (Obj.repr arg)) : int array * a array)

let ewise_fused_v (type a) kind (dt : a Dtype.t) ~op ~chain (u : a Svector.t)
    (v : a Svector.t) =
  let kind_name =
    match kind with
    | `Add -> "ewise_add_fused_v"
    | `Mult -> "ewise_mult_fused_v"
  in
  let chain_name =
    String.concat ";" (List.map Op_spec.unary_name chain)
  in
  let sig_ =
    Kernel_sig.make ~op:kind_name
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op); ("chain", chain_name) ]
      ()
  in
  let build () =
    let raw = (Binop.of_name op dt).Binop.f in
    let fs =
      List.map (fun u -> (Op_spec.instantiate_unary dt u).Unaryop.f) chain
    in
    let g v = List.fold_left (fun acc f -> f acc) v fs in
    Obj.repr (fun (arg : Obj.t) ->
        let aidx, avls, an, bidx, bvls, bn = (Obj.obj arg : a ewise_arg) in
        let ridx, rvls =
          match kind with
          | `Add ->
            Array_kernels.ewise_add_v ~op:raw (aidx, avls, an) (bidx, bvls, bn)
          | `Mult ->
            Array_kernels.ewise_mult_v ~op:raw (aidx, avls, an)
              (bidx, bvls, bn)
        in
        (* the chain runs over every output value, passthroughs included *)
        for k = 0 to Array.length rvls - 1 do
          rvls.(k) <- g rvls.(k)
        done;
        Obj.repr (ridx, rvls))
  in
  let native_source ~key =
    Codegen.ewise_fused_source ~kind ~dtype:(Dtype.name dt) ~op ~chain ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg : a ewise_arg =
    ( Svector.unsafe_indices u,
      Svector.unsafe_values u,
      Svector.nvals u,
      Svector.unsafe_indices v,
      Svector.unsafe_values v,
      Svector.nvals v )
  in
  entries_of_pair (Obj.obj (kernel (Obj.repr arg)) : int array * a array)

let apply_chain_v (type a) (dt : a Dtype.t) ~chain (u : a Svector.t) =
  (* One compiled module for a whole [fk (... (f1 x))] apply chain over a
     vector (the nonblocking engine's apply∘apply fusion); [chain] is
     innermost-first, like [ewise_fused_v]. *)
  let chain_name = String.concat ";" (List.map Op_spec.unary_name chain) in
  let sig_ =
    Kernel_sig.make ~op:"apply_chain_v"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("chain", chain_name) ]
      ()
  in
  let build () =
    let fs =
      List.map (fun u -> (Op_spec.instantiate_unary dt u).Unaryop.f) chain
    in
    let g v = List.fold_left (fun acc f -> f acc) v fs in
    Obj.repr (fun (arg : Obj.t) ->
        let aidx, avls, an = (Obj.obj arg : int array * a array * int) in
        Obj.repr (Array_kernels.apply_v ~f:g (aidx, avls, an)))
  in
  let kernel : Obj.t -> Obj.t = Obj.obj (Dispatch.get sig_ ~build ()) in
  let arg =
    (Svector.unsafe_indices u, Svector.unsafe_values u, Svector.nvals u)
  in
  entries_of_pair (Obj.obj (kernel (Obj.repr arg)) : int array * a array)

let ewise_mult_reduce_v (type a) (dt : a Dtype.t) ~op ~monoid_op ~identity
    (u : a Svector.t) (v : a Svector.t) : a =
  (* eWiseMult feeding a scalar reduce, fused into one pass (the
     nonblocking engine's mult∘reduce rewrite): the intersection kernel's
     output values are folded on the fly instead of materializing the
     intermediate vector.  Entry order matches the unfused pipeline, so
     the result is bit-identical. *)
  let sig_ =
    Kernel_sig.make ~op:"ewise_mult_reduce_v"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op); ("monoid", monoid_op); ("identity", identity) ]
      ()
  in
  let build () =
    let f = (Binop.of_name op dt).Binop.f in
    let m = Op_spec.instantiate_monoid dt ~op:monoid_op ~identity in
    let acc_f = m.Monoid.op.Binop.f and id = m.Monoid.identity in
    Obj.repr (fun (arg : Obj.t) ->
        let aidx, avls, an, bidx, bvls, bn = (Obj.obj arg : a ewise_arg) in
        let _, rvls =
          Array_kernels.ewise_mult_v ~op:f (aidx, avls, an) (bidx, bvls, bn)
        in
        Obj.repr
          (Array_kernels.reduce_v ~op:acc_f ~identity:id
             ([||], rvls, Array.length rvls)))
  in
  let kernel : Obj.t -> Obj.t = Obj.obj (Dispatch.get sig_ ~build ()) in
  let arg : a ewise_arg =
    ( Svector.unsafe_indices u,
      Svector.unsafe_values u,
      Svector.nvals u,
      Svector.unsafe_indices v,
      Svector.unsafe_values v,
      Svector.nvals v )
  in
  (Obj.obj (kernel (Obj.repr arg)) : a)

let apply_v (type a) (dt : a Dtype.t) (f : Op_spec.unary) (u : a Svector.t) =
  let nvals = Svector.nvals u in
  let par_plan = Pool.plan ~work:nvals ~n:nvals () in
  let sig_ =
    Kernel_sig.make ~op:"apply_v"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("f", Op_spec.unary_name f) ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let g = (Op_spec.instantiate_unary dt f).Unaryop.f in
    Obj.repr (fun (arg : Obj.t) ->
        let aidx, avls, an = (Obj.obj arg : int array * a array * int) in
        Obj.repr
          (match par_plan with
          | Some grain -> Par_kernels.apply_v ~grain ~f:g (aidx, avls, an)
          | None -> Array_kernels.apply_v ~f:g (aidx, avls, an)))
  in
  let native_source ~key =
    match par_plan with
    | Some _ -> None (* parallel sparse apply: closure backend *)
    | None -> Codegen.apply_source ~dtype:(Dtype.name dt) ~f ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg =
    (Svector.unsafe_indices u, Svector.unsafe_values u, Svector.nvals u)
  in
  entries_of_pair (Obj.obj (kernel (Obj.repr arg)) : int array * a array)

let reduce_v_scalar (type a) (dt : a Dtype.t) ~op ~identity (u : a Svector.t) :
    a =
  (* Chunk-combined reduce, gated to exactly associative ⊕. *)
  let nvals = Svector.nvals u in
  let par_plan =
    if exact_assoc ~dtype:(Dtype.name dt) ~op then
      Pool.plan ~work:nvals ~n:nvals ()
    else None
  in
  let sig_ =
    Kernel_sig.make ~op:"reduce_v_scalar"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op); ("identity", identity) ]
      ~par:(par_tag par_plan) ()
  in
  let build () =
    let m = Op_spec.instantiate_monoid dt ~op ~identity in
    let f = m.Monoid.op.Binop.f and id = m.Monoid.identity in
    Obj.repr (fun (arg : Obj.t) ->
        let avls, an = (Obj.obj arg : a array * int) in
        Obj.repr
          (match par_plan with
          | Some grain ->
            Par_kernels.reduce_v ~grain ~op:f ~identity:id ([||], avls, an)
          | None -> Array_kernels.reduce_v ~op:f ~identity:id ([||], avls, an)))
  in
  let native_source ~key =
    match par_plan with
    | Some grain ->
      Codegen.reduce_par_source ~dtype:(Dtype.name dt) ~op ~identity ~grain
        ~key
    | None -> Codegen.reduce_source ~dtype:(Dtype.name dt) ~op ~identity ~key
  in
  let kernel : Obj.t -> Obj.t =
    Obj.obj (Dispatch.get sig_ ~build ~native_source ())
  in
  let arg = (Svector.unsafe_values u, Svector.nvals u) in
  (Obj.obj (kernel (Obj.repr arg)) : a)

(* -- matrix family: closure kernels wrapping the GBTL operations -- *)

let mask_flags = function
  | Mask.No_mmask -> []
  | Mask.Mmask { complemented; _ } ->
    if complemented then [ "mask"; "mask_complement" ] else [ "mask" ]

type 'a mxm_arg =
  int array * int array * 'a array * int array * int array * 'a array * int
  * int

let mxm (type a) (dt : a Dtype.t) (sr : Op_spec.semiring) ~transpose_a
    ~transpose_b ~mask (a : a Smatrix.t) (b : a Smatrix.t) : a Smatrix.t =
  match mask with
  | Mask.No_mmask ->
    (* unmasked: Gustavson over the array ABI, native codegen.  Input
       transposes are zero-copy views of the cached CSC side when the
       format layer is on (the kernel only reads the arrays);
       materialized host-side otherwise (as GBTL does). *)
    let flip m =
      if Format_stats.enabled () then Smatrix.unsafe_transpose_view m
      else Smatrix.transpose m
    in
    let a = if transpose_a then flip a else a in
    let b = if transpose_b then flip b else b in
    if Smatrix.ncols a <> Smatrix.nrows b then
      Error.raise_dims ~op:"mxm"
        ~expected:(Printf.sprintf "inner dimension %d" (Smatrix.ncols a))
        ~actual:(string_of_int (Smatrix.nrows b));
    (* Row-partitioned Gustavson: blocks concatenate in row order, exact
       for every operator.  Work estimate is the combined nonzero count;
       divisor 4 bounds the per-chunk SPA memory. *)
    let par_plan =
      Pool.plan ~divisor:4
        ~work:
          (Array.length (Smatrix.unsafe_values a)
          + Array.length (Smatrix.unsafe_values b))
        ~n:(Smatrix.nrows a) ()
    in
    let sig_ =
      Kernel_sig.make ~op:"mxm"
        ~dtypes:[ ("T", Dtype.name dt) ]
        ~operators:(semiring_ops sr)
        ~flags:[ "gustavson" ] ~par:(par_tag par_plan) ()
    in
    let build () =
      let s = Op_spec.instantiate_semiring dt sr in
      let add = Semiring.add s and mul = Semiring.mul s in
      let dummy = Semiring.zero s in
      Obj.repr (fun (arg : Obj.t) ->
          let arp, aci, avs, brp, bci, bvs, nrows_a, ncols_b =
            (Obj.obj arg : a mxm_arg)
          in
          Obj.repr
            (match par_plan with
            | Some grain ->
              Par_kernels.mxm_gustavson ~grain ~add ~mul ~dummy ~nrows_a
                ~ncols_b (arp, aci, avs) (brp, bci, bvs)
            | None ->
              Array_kernels.mxm_gustavson ~add ~mul ~dummy ~nrows_a ~ncols_b
                (arp, aci, avs) (brp, bci, bvs)))
    in
    let native_source ~key =
      match par_plan with
      | Some _ -> None (* row-partitioned Gustavson: closure backend *)
      | None -> Codegen.mxm_source ~dtype:(Dtype.name dt) ~sr ~key
    in
    let kernel : Obj.t -> Obj.t =
      Obj.obj (Dispatch.get sig_ ~build ~native_source ())
    in
    let arg : a mxm_arg =
      ( Smatrix.unsafe_rowptr a,
        Smatrix.unsafe_colidx a,
        Smatrix.unsafe_values a,
        Smatrix.unsafe_rowptr b,
        Smatrix.unsafe_colidx b,
        Smatrix.unsafe_values b,
        Smatrix.nrows a,
        Smatrix.ncols b )
    in
    let rowptr, colidx, values =
      (Obj.obj (kernel (Obj.repr arg)) : int array * int array * a array)
    in
    Smatrix.of_csr_unsafe dt ~nrows:(Smatrix.nrows a) ~ncols:(Smatrix.ncols b)
      ~rowptr ~colidx ~values
  | Mask.Mmask _ ->
    (* masked: the dot-product/pruned kernels of the library, as a
       closure kernel *)
    let flags =
      (if transpose_a then [ "transpose_a" ] else [])
      @ (if transpose_b then [ "transpose_b" ] else [])
      @ mask_flags mask
    in
    let sig_ =
      Kernel_sig.make ~op:"mxm"
        ~dtypes:[ ("T", Dtype.name dt) ]
        ~operators:(semiring_ops sr) ~flags ()
    in
    let build () =
      let s = Op_spec.instantiate_semiring dt sr in
      Obj.repr
        (fun ((a, b, mask) : a Smatrix.t * a Smatrix.t * Mask.mmask) ->
          let nrows =
            if transpose_a then Smatrix.ncols a else Smatrix.nrows a
          in
          let ncols =
            if transpose_b then Smatrix.nrows b else Smatrix.ncols b
          in
          let out = Smatrix.create dt nrows ncols in
          Matmul.mxm ~mask ~transpose_a ~transpose_b s ~out a b;
          out)
    in
    let kernel : a Smatrix.t * a Smatrix.t * Mask.mmask -> a Smatrix.t =
      Obj.obj (Dispatch.get sig_ ~build ())
    in
    kernel (a, b, mask)

let ewise_m (type a) kind (dt : a Dtype.t) ~op ~transpose_a ~transpose_b
    (a : a Smatrix.t) (b : a Smatrix.t) : a Smatrix.t =
  let kind_name = match kind with `Add -> "ewise_add_m" | `Mult -> "ewise_mult_m" in
  let flags =
    (if transpose_a then [ "transpose_a" ] else [])
    @ if transpose_b then [ "transpose_b" ] else []
  in
  let sig_ =
    Kernel_sig.make ~op:kind_name
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op) ]
      ~flags ()
  in
  let build () =
    let f = Binop.of_name op dt in
    Obj.repr (fun ((a, b) : a Smatrix.t * a Smatrix.t) ->
        let a' = if transpose_a then Smatrix.transpose a else a in
        let out = Smatrix.create dt (Smatrix.nrows a') (Smatrix.ncols a') in
        (match kind with
        | `Add ->
          Ewise.matrix_add ~transpose_a ~transpose_b f ~out a b
        | `Mult -> Ewise.matrix_mult ~transpose_a ~transpose_b f ~out a b);
        out)
  in
  let kernel : a Smatrix.t * a Smatrix.t -> a Smatrix.t =
    Obj.obj (Dispatch.get sig_ ~build ())
  in
  kernel (a, b)

let apply_m (type a) (dt : a Dtype.t) (f : Op_spec.unary) ~transpose
    (a : a Smatrix.t) : a Smatrix.t =
  let sig_ =
    Kernel_sig.make ~op:"apply_m"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("f", Op_spec.unary_name f) ]
      ~flags:(if transpose then [ "transpose_a" ] else [])
      ()
  in
  let build () =
    let g = Op_spec.instantiate_unary dt f in
    Obj.repr (fun (a : a Smatrix.t) ->
        let nrows = if transpose then Smatrix.ncols a else Smatrix.nrows a in
        let ncols = if transpose then Smatrix.nrows a else Smatrix.ncols a in
        let out = Smatrix.create dt nrows ncols in
        Apply_reduce.apply_matrix ~transpose g ~out a;
        out)
  in
  let kernel : a Smatrix.t -> a Smatrix.t =
    Obj.obj (Dispatch.get sig_ ~build ())
  in
  kernel a

let reduce_rows (type a) (dt : a Dtype.t) ~op ~identity ~transpose
    (a : a Smatrix.t) : a Entries.t =
  let sig_ =
    Kernel_sig.make ~op:"reduce_rows"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op); ("identity", identity) ]
      ~flags:(if transpose then [ "transpose_a" ] else [])
      ()
  in
  let build () =
    let m = Op_spec.instantiate_monoid dt ~op ~identity in
    Obj.repr (fun (a : a Smatrix.t) ->
        let size = if transpose then Smatrix.ncols a else Smatrix.nrows a in
        let out = Svector.create dt size in
        Apply_reduce.reduce_rows ~transpose m ~out a;
        Svector.entries out)
  in
  let kernel : a Smatrix.t -> a Entries.t =
    Obj.obj (Dispatch.get sig_ ~build ())
  in
  kernel a

let reduce_m_scalar (type a) (dt : a Dtype.t) ~op ~identity (a : a Smatrix.t) :
    a =
  let sig_ =
    Kernel_sig.make ~op:"reduce_m_scalar"
      ~dtypes:[ ("T", Dtype.name dt) ]
      ~operators:[ ("op", op); ("identity", identity) ]
      ()
  in
  let build () =
    let m = Op_spec.instantiate_monoid dt ~op ~identity in
    Obj.repr (fun (a : a Smatrix.t) -> Apply_reduce.reduce_matrix_scalar m a)
  in
  let kernel : a Smatrix.t -> a = Obj.obj (Dispatch.get sig_ ~build ()) in
  kernel a

let transpose_m (type a) (dt : a Dtype.t) (a : a Smatrix.t) : a Smatrix.t =
  let sig_ =
    Kernel_sig.make ~op:"transpose" ~dtypes:[ ("T", Dtype.name dt) ] ()
  in
  let build () = Obj.repr (fun (a : a Smatrix.t) -> Smatrix.transpose a) in
  let kernel : a Smatrix.t -> a Smatrix.t =
    Obj.obj (Dispatch.get sig_ ~build ())
  in
  kernel a
