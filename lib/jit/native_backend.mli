(** The real dynamic-compilation backend: generated kernel source is
    compiled with [ocamlopt -shared] into a [.cmxs] plugin and loaded with
    [Dynlink] — the OCaml analogue of PyGB's [g++ ... -o mod.so] +
    [import_module] (paper Fig. 9).

    Hardened: compiles run under a wall-clock deadline (a hung ocamlopt
    is SIGKILLed and costs one timeout, not the process), transient
    failures (signal kills, timeouts) get a bounded retry with backoff,
    and compilation of one hash is single-flight across processes via
    the cache's advisory file lock.  Named {!Fault} injection points
    cover every failure class.

    Availability is probed once per process: native [Dynlink] support,
    an [ocamlopt] on PATH, and the [Jit_plugin_api] compiled interfaces
    (located via [$OGB_JIT_INCLUDE] or by searching for the dune [_build]
    tree).  When any piece is missing, dispatch silently uses the closure
    backend.  The probe cleans up every artifact it creates. *)

val available : unit -> bool

val explain : unit -> string
(** Human-readable probe outcome (for logs and the compile bench). *)

val set_compile_timeout : float -> unit
(** Wall-clock budget per ocamlopt run in seconds; [0.0] disables the
    deadline.  Default 20 or [$OGB_JIT_TIMEOUT]. *)

val compile_timeout : unit -> float

val set_compile_retries : int -> unit
(** Extra attempts after a transient failure (signal kill / timeout);
    nonzero compiler exits are deterministic and never retried.
    Default 1 or [$OGB_JIT_RETRIES]. *)

val compile_retries : unit -> int

val compile_and_load :
  hash:string -> source:string -> key:string -> (Obj.t, string) result
(** Write [source] to the disk cache, compile it (timeout + retry),
    checksum the artifacts, [Dynlink] the result and look up [key] in
    the plugin registry — all under the per-hash file lock, re-checking
    for a concurrently built valid artifact first. *)

val load_cached : hash:string -> key:string -> (Obj.t, string) result
(** Load a previously compiled [.cmxs] from the disk cache. *)
