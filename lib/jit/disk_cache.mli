(** On-disk kernel cache (level 2 of the lookup in paper Fig. 9: memory →
    disk → compile), hardened: atomic writes (temp file + rename),
    EEXIST-tolerant directory creation, content checksums with
    quarantine, and a per-hash advisory file lock for cross-process
    single-flight compilation.  A cache write that fails (permissions,
    full disk) is counted in {!Jit_stats} and absorbed — the pipeline
    degrades to in-memory closures instead of crashing. *)

val dir : unit -> string
(** Cache directory (created on first use, parents included; concurrent
    creation is safe).  Defaults to [$OGB_JIT_CACHE] or
    [<tmpdir>/ogb-jit-cache-<uid>]. *)

val set_dir : string -> unit

val source_path : string -> string
(** [source_path hash] — where the generated source for a kernel lives. *)

val cmxs_path : string -> string
val marker_path : string -> string

val stderr_path : string -> string
(** Compiler diagnostics for the hash ([Kern_<hash>.stderr], so
    {!clear} sweeps it with the other artifacts). *)

val sum_path : string -> string
(** Checksum sidecar ([src:<md5>] and [cmxs:<md5>] lines). *)

val store_source : string -> string -> (unit, string) result
(** [store_source hash src] — atomic: a concurrent reader sees either
    the previous content or all of [src], never a torn write.  [Error]
    (with the counter bumped) on a failed write. *)

val read_source : string -> string option
val has_cmxs : string -> bool
val has_marker : string -> bool
val touch_marker : string -> unit

val store_sums : string -> unit
(** Record checksums of the stored source and compiled plugin (called
    after a successful compile). *)

val verify_cmxs : string -> [ `Ok | `No_sum | `Mismatch ]
(** Checksum the on-disk plugin against its sidecar.  [`No_sum] means a
    pre-hardening entry with no recorded checksum (accepted, like the
    seed behavior). *)

val verify_source : string -> [ `Ok | `No_sum | `Mismatch ]

val quarantine : string -> unit
(** Move a corrupt plugin aside ([.cmxs.bad]) and drop its checksums so
    the next dispatch recompiles; counted in {!Jit_stats}. *)

val with_lock : string -> (unit -> 'a) -> 'a
(** Run under the per-hash advisory file lock: at most one process
    compiles a given hash at a time (callers re-check the cache after
    acquiring).  Falls back to running unlocked if the lock file cannot
    be created — duplicated work, still correct. *)

val clear : unit -> unit
(** Remove every cache artifact, including compiler stderr captures,
    checksum/lock sidecars, quarantined plugins and availability-probe
    leftovers (used by tests and the compile bench). *)

val integrity_scan : unit -> (string * [ `Ok | `No_sum | `Mismatch ]) list
(** Verify every cached plugin against its checksum (read-only, no
    fault injection) — the [ogb_cli doctor] cache report. *)
