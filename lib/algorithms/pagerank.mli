(** PageRank (paper Figs. 7–8): power iteration with damping over the
    row-normalized adjacency matrix, converging on the squared error of
    successive rank vectors.

    Returns the rank vector and the number of iterations executed. *)

open Gbtl

val native :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  float Smatrix.t ->
  float Svector.t * int
(** Tier 3: specialized kernels (see {!Bfs.native}'s doc).  With the
    storage-format layer on, the iteration runs on dense
    (values, validity) pairs end-to-end and the product pulls over the
    cached CSC side; otherwise the original sparse-vector pipeline runs.
    Both return bit-identical ranks and iteration counts. *)

val generic :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  float Smatrix.t ->
  float Svector.t * int
(** Paper Fig. 8 against the polymorphic library — correctness
    reference. *)

val dsl :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  Ogb.Container.t ->
  Ogb.Container.t * int

val nonblocking :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  Ogb.Container.t ->
  Ogb.Container.t * int
(** The Fig. 7 program under the nonblocking engine
    ([Exec.with_mode Nonblocking]): the convergence check runs as one
    plan DAG with the difference subtree shared (CSE) and the eWiseMult
    fused into the scalar reduce. *)

val vm_program : Minivm.Ast.block
val vm_loops :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  Ogb.Container.t ->
  Ogb.Container.t

val vm_whole :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  Ogb.Container.t ->
  Ogb.Container.t

val ranks_of_container : Ogb.Container.t -> (int * float) list
