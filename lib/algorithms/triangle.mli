(** Triangle counting (paper Fig. 5): with [L] the strict lower triangle
    of an undirected adjacency matrix,

    {v B<L> = L ⊕.⊗ Lᵀ;  triangles = reduce(B) v}

    Each triangle {i, j, k} is counted exactly once.  The masked
    [mxm]-with-transposed-B form hits the dot-product kernel that only
    evaluates mask-allowed output cells. *)

open Gbtl

val native : int Smatrix.t -> int
(** [native l] — [l] must be strictly lower triangular with unit
    entries. *)

val generic : int Smatrix.t -> int
(** Alias of {!native}: the masked [mxm] already runs the shared
    dot-product kernel, so the library tier and the specialized tier
    coincide for this algorithm. *)

val of_undirected : bool Smatrix.t -> int Smatrix.t
(** Extract the strict lower triangle as an int64 matrix of ones. *)

val dsl : Ogb.Container.t -> float

val nonblocking : Ogb.Container.t -> float
(** {!dsl} under the nonblocking engine: the plan rewrites sink the
    [L.T] transpose into the mxm flag and push the sink mask into the
    kernel before the domain pool executes the DAG. *)

val vm_program : Minivm.Ast.block
val vm_loops : Ogb.Container.t -> float
val vm_whole : Ogb.Container.t -> float
