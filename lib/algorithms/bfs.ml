open Gbtl

(* The generic-library tier: the GBTL program of paper Fig. 2c against
   the polymorphic operations. *)
let generic graph ~src =
  let n = Smatrix.nrows graph in
  let frontier = Svector.create Dtype.Bool n in
  Svector.set frontier src true;
  let levels = Svector.create Dtype.Int64 n in
  let logical = Semiring.logical Dtype.Bool in
  let depth = ref 0 in
  while Svector.nvals frontier > 0 do
    incr depth;
    (* levels<frontier, merge> = depth *)
    Assign.vector_scalar
      ~mask:(Mask.vmask frontier)
      ~out:levels !depth Index_set.All;
    (* frontier<!levels, replace> = graphᵀ ⊕.⊗ frontier *)
    let lmask =
      Mask.Vmask
        { dense = Svector.to_bool_dense (Svector.cast ~into:Dtype.Bool levels);
          complemented = true }
    in
    Matmul.mxv ~mask:lmask ~replace:true ~transpose_a:true logical
      ~out:frontier graph frontier
  done;
  levels

(* Tier 3: the same loop over the specialized kernels.  Two pipelines,
   chosen by the storage-format layer:

   - [native_sparse] (format layer off — the CSR-only baseline): the
     frontier and levels live in sparse vectors and every step goes
     through the masked entry-merge write path.
   - [native_dense] (format layer on): the frontier is an index array
     over a dense staging pair, levels are a dense (values, validity)
     pair, and the expansion is direction-optimized — a thin frontier
     pushes (CSR scatter, then a ¬visited filter); a thick one pulls
     (CSC gather over unvisited vertices only, with early exit once the
     lor accumulator saturates).

   Both expansion directions accumulate per-vertex contributions in
   ascending neighbor order and both pipelines assign depths to the same
   frontier sets, so the returned levels are bit-identical. *)
let pull_threshold = 8 (* pull once frontier fill reaches 1/8 *)

let native_sparse graph ~src =
  let n = Smatrix.nrows graph in
  let frontier = Svector.create Dtype.Bool n in
  Svector.set frontier src true;
  let levels = Svector.create Dtype.Int64 n in
  let visited = Array.make n false in
  (* dense frontier staging for the pull direction, reused across
     iterations *)
  let uvls = Array.make n false and uocc = Array.make n false in
  let depth = ref 0 in
  while Svector.nvals frontier > 0 do
    incr depth;
    (* levels<frontier, merge> = depth *)
    Assign.vector_scalar
      ~mask:(Mask.vmask frontier)
      ~out:levels !depth Index_set.All;
    Svector.iter (fun i _ -> visited.(i) <- true) frontier;
    (* frontier<!levels, replace> = graphᵀ ⊕.⊗ frontier *)
    let use_pull =
      Format_stats.enabled ()
      && n >= 32
      && pull_threshold * Svector.nvals frontier >= n
    in
    if use_pull then begin
      Format_stats.record_pull ();
      Array.fill uvls 0 n false;
      Array.fill uocc 0 n false;
      Svector.iter
        (fun i b ->
          uvls.(i) <- b;
          uocc.(i) <- true)
        frontier;
      let t =
        Jit.Kernels.mxv_pull_masked Dtype.Bool Jit.Op_spec.logical ~visited
          graph (uvls, uocc)
      in
      Output.write_vector ~mask:Mask.No_vmask ~accum:None ~replace:true
        ~out:frontier ~t
    end
    else begin
      let t =
        Jit.Kernels.mxv Dtype.Bool Jit.Op_spec.logical ~transpose:true graph
          frontier
      in
      Output.write_vector
        ~mask:(Mask.Vmask { dense = visited; complemented = true })
        ~accum:None ~replace:true ~out:frontier ~t
    end
  done;
  levels

let native_dense graph ~src =
  let n = Smatrix.nrows graph in
  let levels_v = Array.make n 0 in
  let levels_occ = Array.make n false in
  let visited = Array.make n false in
  (* dense frontier staging for the pull direction, reused across
     iterations *)
  let uvls = Array.make n false and uocc = Array.make n false in
  let frontier = ref [| src |] in
  let depth = ref 0 in
  while Array.length !frontier > 0 do
    incr depth;
    (* levels<frontier, merge> = depth *)
    Array.iter
      (fun i ->
        levels_v.(i) <- !depth;
        levels_occ.(i) <- true;
        visited.(i) <- true)
      !frontier;
    (* frontier<!levels, replace> = graphᵀ ⊕.⊗ frontier *)
    let fn = Array.length !frontier in
    let use_pull = n >= 32 && pull_threshold * fn >= n in
    let next =
      if use_pull then begin
        Format_stats.record_pull ();
        Array.fill uvls 0 n false;
        Array.fill uocc 0 n false;
        Array.iter
          (fun i ->
            uvls.(i) <- true;
            uocc.(i) <- true)
          !frontier;
        let t =
          Jit.Kernels.mxv_pull_masked Dtype.Bool Jit.Op_spec.logical ~visited
            graph (uvls, uocc)
        in
        (* already complement-masked, and lor over a bool graph only
           produces true — the new frontier is just the index set *)
        Array.init (Entries.length t) (Entries.get_idx t)
      end
      else begin
        (* push: the CSR scatter on the sparse frontier (mxv records the
           direction counter), then the ¬visited filter *)
        let fv = Svector.create Dtype.Bool n in
        Svector.replace_contents fv
          (Entries.of_arrays_unsafe !frontier (Array.make fn true) ~len:fn);
        let t =
          Jit.Kernels.mxv Dtype.Bool Jit.Op_spec.logical ~transpose:true graph
            fv
        in
        let out = Array.make (Entries.length t) 0 in
        let k = ref 0 in
        Entries.iter
          (fun i _ ->
            if not visited.(i) then begin
              out.(!k) <- i;
              incr k
            end)
          t;
        Array.sub out 0 !k
      end
    in
    frontier := next
  done;
  Svector.of_dense_unsafe Dtype.Int64 ~vals:levels_v ~valid:levels_occ

(* Layout-aware dispatch between the two pipelines above. *)
let native graph ~src =
  if Format_stats.enabled () then native_dense graph ~src
  else native_sparse graph ~src

(* Tier "PyGB": deferred expressions + context stack (paper Fig. 2b). *)
let dsl graph ~src =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = fst (Container.shape graph) in
  let frontier =
    Container.vector_coo ~dtype:(Dtype.P Dtype.Bool) ~size:n [ (src, 1.0) ]
  in
  let levels = Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  let depth = ref 0 in
  while Container.nvals frontier > 0 do
    incr depth;
    (* levels[front][:] = depth *)
    Ops.assign_scalar ~mask:(Ops.Mask frontier) levels (float_of_int !depth);
    (* with gb.LogicalSemiring, gb.Replace:
         frontier[~levels] = graph.T @ frontier *)
    Context.with_ops
      [ Context.semiring "Logical"; Context.replace ]
      (fun () ->
        Ops.set ~mask:(~~levels) frontier (tr !!graph @. !!frontier))
  done;
  levels

(* Tier 1: the same program interpreted by the MiniVM. *)
let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  [ Def
      ( "bfs",
        [ "graph"; "frontier"; "levels" ],
        [ Assign ("depth", Const (Minivm.Value.Int 0));
          While
            ( Binary
                (">", Attr (Var "frontier", "nvals"), Const (Minivm.Value.Int 0)),
              [ Assign ("depth", Binary ("+", Var "depth", Const (Minivm.Value.Int 1)));
                (* levels[front][:] = depth *)
                SetIndex
                  (Index (Var "levels", Var "frontier"), Var "AllIndices", Var "depth");
                (* with gb.LogicalSemiring, gb.Replace: ... *)
                With
                  ( [ Call (Var "Semiring", [ Const (Minivm.Value.Str "Logical") ]);
                      Var "Replace" ],
                    [ SetIndex
                        ( Var "frontier",
                          Unary ("~", Var "levels"),
                          Binary ("@", Attr (Var "graph", "T"), Var "frontier")
                        ) ] ) ] );
          Return (Var "levels") ] ) ]

let vm_loops graph ~src =
  let open Ogb in
  let n = fst (Container.shape graph) in
  let frontier =
    Container.vector_coo ~dtype:(Dtype.P Dtype.Bool) ~size:n [ (src, 1.0) ]
  in
  let levels = Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  match
    Vm_runtime.call_program vm_program "bfs"
      [ Ogb.Vm_bridge.wrap_container graph;
        Ogb.Vm_bridge.wrap_container frontier;
        Ogb.Vm_bridge.wrap_container levels ]
  with
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
  | _ -> levels

(* Tier 2: one interpreted call into the whole compiled algorithm. *)
let vm_whole graph ~src =
  let kernel =
    Vm_runtime.whole_algorithm ~name:"bfs" ~dtype:"bool" (fun () ->
        Obj.repr (fun (g, s) -> native g ~src:s))
  in
  let f : bool Smatrix.t * int -> int Svector.t = Obj.obj kernel in
  let env = Vm_runtime.fresh_env () in
  Minivm.Env.define env "bfs_compiled"
    (Minivm.Value.Builtin
       ( "bfs_compiled",
         fun args ->
           match args with
           | [ g; Minivm.Value.Int s ] ->
             let c = Ogb.Vm_bridge.unwrap_container g in
             let c =
               if Ogb.Container.dtype_name c = "bool" then c
               else Ogb.Container.cast (Dtype.P Dtype.Bool) c
             in
             let m = Ogb.Container.as_matrix Dtype.Bool c in
             Ogb.Vm_bridge.wrap_container
               (Ogb.Container.of_svector (f (m, s)))
           | _ -> raise (Minivm.Value.Type_error "bfs_compiled: bad arguments")
       ));
  let open Minivm.Ast in
  let program =
    [ Assign ("result", Call (Var "bfs_compiled", [ Var "g"; Var "s" ])) ]
  in
  Minivm.Env.define env "g" (Ogb.Vm_bridge.wrap_container graph);
  Minivm.Env.define env "s" (Minivm.Value.Int src);
  Minivm.Interp.exec_block env program;
  Ogb.Vm_bridge.unwrap_container (Minivm.Env.lookup env "result")

let levels_of_svector levels =
  List.rev (Svector.fold (fun acc i d -> (i, d) :: acc) [] levels)

let levels_of_container c =
  List.map
    (fun (i, x) -> (i, int_of_float x))
    (Ogb.Container.vector_entries c)
