open Gbtl

let native ~k graph =
  if k < 3 then invalid_arg "Ktruss.native: k must be >= 3";
  let n = Smatrix.nrows graph in
  let threshold = float_of_int (k - 2) in
  let e = ref (Smatrix.cast ~into:Dtype.Int64 graph) in
  (* normalize stored values to ones *)
  e := Smatrix.map !e ~f:(fun _ -> 1);
  let arithmetic = Semiring.arithmetic Dtype.Int64 in
  let continue_ = ref true in
  while !continue_ do
    (* support<E> = E ⊕.⊗ Eᵀ : common-neighbour count per edge *)
    let support = Smatrix.create Dtype.Int64 n n in
    Matmul.mxm ~mask:(Mask.mmask !e) ~transpose_b:true arithmetic
      ~out:support !e !e;
    (* keep the edges with enough support *)
    let keep = Smatrix.create Dtype.Int64 n n in
    Select.matrix (Select.Value_ge threshold) ~out:keep support;
    if Smatrix.nvals keep = Smatrix.nvals !e then continue_ := false
    else e := Smatrix.map keep ~f:(fun _ -> 1)
  done;
  Smatrix.cast ~into:Dtype.Bool !e

let edge_count adj = Smatrix.nvals adj / 2

let dsl ~k graph =
  if k < 3 then invalid_arg "Ktruss.dsl: k must be >= 3";
  let open Ogb in
  let open Ogb.Ops.Infix in
  let nrows, ncols = Container.shape graph in
  let threshold = float_of_int (k - 2) in
  let e = ref (Container.cast (Dtype.P Dtype.Int64) graph) in
  let continue_ = ref true in
  Context.with_ops
    [ Context.semiring "Arithmetic" ]
    (fun () ->
      while !continue_ do
        (* support[E] = E @ E.T *)
        let support = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols in
        Ops.set ~mask:(Ops.Mask !e) support (!!(!e) @. tr !!(!e));
        (* E' = ones over select(support >= k-2) *)
        let keep = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols in
        Ops.set keep (Ops.select (Gbtl.Select.Value_ge threshold) !!support);
        if Container.nvals keep = Container.nvals !e then continue_ := false
        else begin
          let next = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols in
          Context.with_ops
            [ Context.unary_bound ~op:"First" ~side:`First 1.0 ]
            (fun () -> Ops.set next (Ops.apply !!keep));
          e := next
        end
      done);
  !e

(* The same computation under the nonblocking engine: the masked mxm,
   the select and the re-oneing apply all lower to plan nodes. *)
let nonblocking ~k graph = Exec.with_mode Exec.Nonblocking (fun () -> dsl ~k graph)

(* Tier 1: the filtering loop as a MiniVM script.  The edge matrix is
   pruned in place, so the masked support recomputation runs under
   Replace (stale support entries outside the shrinking mask must not
   survive); pruning an already-fixed edge set is a no-op, so a round
   budget [rounds >= the fixpoint depth] is bit-identical to the
   fixpoint loops above. *)
let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  let str s = Const (Minivm.Value.Str s) in
  [ Def
      ( "ktruss",
        [ "e"; "support"; "thresh"; "rounds" ],
        [ With
            ( [ Call (Var "Semiring", [ str "Arithmetic" ]) ],
              [ For
                  ( "i",
                    Var "rounds",
                    [ With
                        ( [ Var "Replace" ],
                          [ SetIndex
                              ( Var "support",
                                Var "e",
                                Binary ("@", Var "e", Attr (Var "e", "T")) )
                          ] );
                      With
                        ( [ Call (Var "UnaryOp", [ str "Second"; Const (Minivm.Value.Float 1.0) ]) ],
                          [ SetIndex
                              ( Var "e",
                                Const Minivm.Value.Nil,
                                Call
                                  ( Var "apply",
                                    [ Call
                                        ( Var "select",
                                          [ str "ge"; Var "thresh"; Var "support" ] )
                                    ] ) ) ] ) ] ) ] );
          Return (Var "e") ] ) ]

let default_rounds = 32

let vm_loops ?(rounds = default_rounds) ~k graph =
  if k < 3 then invalid_arg "Ktruss.vm_loops: k must be >= 3";
  let nrows, ncols = Ogb.Container.shape graph in
  let e = Ogb.Container.cast (Dtype.P Dtype.Int64) graph in
  let support =
    Ogb.Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) nrows ncols
  in
  match
    Vm_runtime.call_program vm_program "ktruss"
      [ Ogb.Vm_bridge.wrap_container e;
        Ogb.Vm_bridge.wrap_container support;
        Minivm.Value.Float (float_of_int (k - 2));
        Minivm.Value.Int rounds ]
  with
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
  | _ -> e
