open Gbtl

let native l =
  let n = Smatrix.nrows l in
  let b = Smatrix.create Dtype.Int64 n n in
  (* B<L> = L ⊕.⊗ Lᵀ *)
  Matmul.mxm ~mask:(Mask.mmask l) ~transpose_b:true
    (Semiring.arithmetic Dtype.Int64) ~out:b l l;
  Apply_reduce.reduce_matrix_scalar (Monoid.plus Dtype.Int64) b

let generic = native

let of_undirected g =
  let ones = Smatrix.map (Smatrix.cast ~into:Dtype.Int64 g) ~f:(fun _ -> 1) in
  Utilities.lower_triangle ~strict:true ones

let dsl l =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let nrows, ncols = Container.shape l in
  let b = Container.matrix_empty ~dtype:(Container.dtype l) nrows ncols in
  (* with gb.ArithmeticSemiring: B[L] = L @ L.T *)
  Context.with_ops
    [ Context.semiring "Arithmetic" ]
    (fun () -> Ops.set ~mask:(Ops.Mask l) b (!!l @. tr !!l));
  (* triangles = gb.reduce(B) *)
  Ops.reduce !!b

(* Nonblocking tier: same Fig. 5 program under the lib/exec engine — the
   plan rewrites sink L.T's transpose into the mxm flag and push the
   sink's mask into the kernel, then the domain pool runs the DAG. *)
let nonblocking l = Exec.with_mode Exec.Nonblocking (fun () -> dsl l)

let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  [ Def
      ( "triangle_count",
        [ "L"; "B" ],
        [ With
            ( [ Call (Var "Semiring", [ Const (Minivm.Value.Str "Arithmetic") ]) ],
              [ (* B[L] = L @ L.T *)
                SetIndex
                  ( Var "B",
                    Var "L",
                    Binary ("@", Var "L", Attr (Var "L", "T")) ) ] );
          Return (Call (Var "reduce", [ Var "B" ])) ] ) ]

let vm_loops l =
  let nrows, ncols = Ogb.Container.shape l in
  let b = Ogb.Container.matrix_empty ~dtype:(Ogb.Container.dtype l) nrows ncols in
  match
    Vm_runtime.call_program vm_program "triangle_count"
      [ Ogb.Vm_bridge.wrap_container l; Ogb.Vm_bridge.wrap_container b ]
  with
  | Minivm.Value.Float f -> f
  | Minivm.Value.Int i -> float_of_int i
  | _ -> nan

let vm_whole l =
  let kernel =
    Vm_runtime.whole_algorithm ~name:"triangle_count" ~dtype:"int64_t"
      (fun () -> Obj.repr (fun g -> native g))
  in
  let f : int Smatrix.t -> int = Obj.obj kernel in
  let env = Vm_runtime.fresh_env () in
  Minivm.Env.define env "tc_compiled"
    (Minivm.Value.Builtin
       ( "tc_compiled",
         fun args ->
           match args with
           | [ g ] ->
             let c = Ogb.Vm_bridge.unwrap_container g in
             let c =
               if Ogb.Container.dtype_name c = "int64_t" then c
               else Ogb.Container.cast (Dtype.P Dtype.Int64) c
             in
             Minivm.Value.Int (f (Ogb.Container.as_matrix Dtype.Int64 c))
           | _ -> raise (Minivm.Value.Type_error "tc_compiled: bad arguments")
       ));
  Minivm.Env.define env "l" (Ogb.Vm_bridge.wrap_container l);
  let open Minivm.Ast in
  Minivm.Interp.exec_block env
    [ Assign ("result", Call (Var "tc_compiled", [ Var "l" ])) ];
  match Minivm.Env.lookup env "result" with
  | Minivm.Value.Int i -> float_of_int i
  | Minivm.Value.Float f -> f
  | _ -> nan
