(** Betweenness centrality (Brandes' algorithm in GraphBLAS form, the
    companion algorithm GBTL ships alongside the paper's four): a forward
    sweep of masked [vxm] frontier expansions recording per-depth
    frontiers and shortest-path counts, then a backward dependency
    accumulation of masked [mxv] / element-wise updates.

    Unweighted directed graphs; BC(v) = Σ_{s≠v≠t} σ_st(v) / σ_st. *)

open Gbtl

val native : ?sources:int list -> bool Smatrix.t -> float Svector.t
(** Dense centrality vector.  [sources] selects a batch (default: every
    vertex, i.e. exact BC). *)

(** {2 Single-source tiers (the eighth tier-1 workload)}

    One source's dependency contribution: the partial centrality
    [delta_s(v) = sum_t sigma_st(v) / sigma_st].  The forward sweep
    starts from the unit vector [e_src] and expands through the masked
    [vxm] uniformly, so a self-loop at the source is dropped (it is
    never on a shortest path); on loop-free graphs this matches the
    batched {!native} restricted to one source exactly. *)

val single_source : bool Smatrix.t -> src:int -> float Svector.t
(** Tier 3 reference over the specialized kernels. *)

val dsl : Ogb.Container.t -> src:int -> Ogb.Container.t
(** The deferred-expression program (blocking evaluator): forward
    masked [vxm] wavefronts accumulating path counts, backward [mxv] /
    eWiseMult dependency flow over Plus/Times. *)

val nonblocking : Ogb.Container.t -> src:int -> Ogb.Container.t
(** {!dsl} under the nonblocking engine. *)

val vm_program : Minivm.Ast.block
(** The MiniVM script: the forward sweep stamps a levels vector (the
    BFS idiom) and the backward sweep recovers wave [i] as
    [select("eq", i, levels)]. *)

val vm_loops : Ogb.Container.t -> src:int -> Ogb.Container.t
(** Run {!vm_program} through the VM bridge. *)
