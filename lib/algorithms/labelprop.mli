(** Label propagation (synchronous LPA): every vertex simultaneously
    adopts the most frequent label among its neighbours, ties broken
    toward the smallest label — community detection as an
    argmax-of-neighbour-labels semiring program (the sixth tier-1
    workload).

    The algebraic tiers pack (count, n - label) into one Int64 per
    candidate, [count*(n+1) + (n - label)], so a single Max row
    reduction performs the deterministic argmax; the one-hot scatter and
    the decode are shared host-side glue ({!Ogb.Vm_bridge}).

    Synchronous updates can oscillate (bipartite structures), so every
    tier runs at most [rounds] sweeps (default 16) and stops early at a
    fixpoint — which is bit-identical to running the budget out. *)

open Gbtl

val default_rounds : int

val native : ?rounds:int -> bool Smatrix.t -> int Svector.t
(** Tier 3 reference: adjacency-list sweeps with the same tie-break. *)

val dsl : ?rounds:int -> Ogb.Container.t -> Ogb.Container.t * int
(** The deferred-expression program (blocking evaluator); returns the
    Int64 label vector and the number of sweeps executed. *)

val nonblocking : ?rounds:int -> Ogb.Container.t -> Ogb.Container.t * int
(** {!dsl} under the nonblocking engine. *)

val vm_program : Minivm.Ast.block
(** The same program as a MiniVM script ([rounds] bounded sweeps of
    scatter / masked histogram mxm / encode / Max row reduce /
    decode). *)

val vm_loops : ?rounds:int -> Ogb.Container.t -> Ogb.Container.t
(** Run {!vm_program} through the VM bridge (labels seeded [v -> v]). *)

val seed_labels : int -> Ogb.Container.t
val tie_break_diagonal : int -> Ogb.Container.t
(** The [D[l,l] = n - l] diagonal the encoding multiplies against
    (exposed for the Tier1 registry's stand-in arguments). *)

val community_count : int Svector.t -> int
