let fresh_env () =
  let env = Minivm.Env.create () in
  Minivm.Builtins.install env;
  Ogb.Vm_bridge.install env;
  env

let call_program program fn args =
  (* VM-driven programs stay on the deterministic sequential schedule
     even when the nonblocking engine is active (tier-1 parity). *)
  Ogb.Exec_hook.with_sequential @@ fun () ->
  let env = fresh_env () in
  Minivm.Interp.exec_block env program;
  Minivm.Interp.call_value (Minivm.Env.lookup env fn) args

let whole_algorithm ~name ~dtype build =
  let sig_ =
    Jit.Kernel_sig.make ~op:("algo:" ^ name) ~dtypes:[ ("T", dtype) ] ()
  in
  Jit.Dispatch.get sig_ ~build ()
