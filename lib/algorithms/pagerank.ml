open Gbtl

let f64 = Dtype.FP64

(* The generic-library tier: the GBTL program of paper Fig. 8. *)
let generic ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000) graph
    =
  let rows = Smatrix.nrows graph in
  let rows_f = float_of_int rows in
  let normalized = Smatrix.dup graph in
  Utilities.normalize_rows normalized;
  (* m = normalized * damping *)
  let m = Smatrix.create f64 rows (Smatrix.ncols graph) in
  Apply_reduce.apply_matrix
    (Unaryop.bind2nd f64 (Binop.times f64) damping)
    ~out:m normalized;
  let add_scaled_teleport =
    Unaryop.bind2nd f64 (Binop.plus f64) ((1.0 -. damping) /. rows_f)
  in
  let page_rank = Svector.create f64 rows in
  Assign.vector_scalar ~out:page_rank (1.0 /. rows_f) Index_set.All;
  let new_rank = Svector.create f64 rows in
  let delta = Svector.create f64 rows in
  let arithmetic = Semiring.arithmetic f64 in
  let iters = ref 0 in
  (try
     for i = 1 to max_iters do
       iters := i;
       (* new_rank[None] += page_rank @ m, accumulating with Second *)
       Matmul.vxm ~accum:(Binop.second f64) arithmetic ~out:new_rank page_rank
         m;
       Apply_reduce.apply_vector add_scaled_teleport ~out:new_rank new_rank;
       Ewise.vector_add (Binop.minus f64) ~out:delta page_rank new_rank;
       Ewise.vector_mult (Binop.times f64) ~out:delta delta delta;
       let squared_error =
         Apply_reduce.reduce_vector_scalar (Monoid.plus f64) delta
       in
       Svector.replace_contents page_rank (Svector.entries new_rank);
       if squared_error /. rows_f < threshold then raise Exit
     done
   with Exit -> ());
  (* page_rank<~page_rank> = page_rank + teleport: fill untouched entries *)
  Assign.vector_scalar ~out:new_rank ((1.0 -. damping) /. rows_f)
    Index_set.All;
  let mask =
    Mask.Vmask { dense = Svector.to_bool_dense page_rank; complemented = true }
  in
  Ewise.vector_add ~mask (Binop.plus f64) ~out:page_rank page_rank new_rank;
  (page_rank, !iters)

(* Tier 3 with the format layer on: the iteration runs on dense
   (values, occupancy) pairs end-to-end — no compaction or entry copies
   between kernels, which is where the sparse pipeline spends its time
   once the rank vector is fully filled in (after one iteration on any
   graph without empty columns).  Kernels visit occupied positions in
   ascending index order, so every intermediate matches the sparse
   pipeline entry for entry and the returned ranks are bit-identical. *)
let native_dense ~damping ~threshold ~max_iters graph =
  let rows = Smatrix.nrows graph in
  let rows_f = float_of_int rows in
  let normalized = Smatrix.dup graph in
  Utilities.normalize_rows normalized;
  let m =
    Jit.Kernels.apply_m f64
      (Jit.Op_spec.Bound { op = "Times"; side = `Second; const = damping })
      ~transpose:false normalized
  in
  let teleport =
    Jit.Op_spec.Bound
      { op = "Plus"; side = `Second; const = (1.0 -. damping) /. rows_f }
  in
  let pr = ref (Array.make rows (1.0 /. rows_f), Array.make rows true) in
  let nr_vals = ref (Array.make rows 0.0) in
  let nr_occ = ref (Array.make rows false) in
  let arith = Jit.Op_spec.arithmetic in
  let iters = ref 0 in
  (try
     for i = 1 to max_iters do
       iters := i;
       (* new_rank[None] += page_rank @ m, accumulating with Second:
          product entries win, untouched new_rank entries survive *)
       let t_vals, t_occ = Jit.Kernels.vxm_pull_dense f64 arith !pr m in
       for j = 0 to rows - 1 do
         if t_occ.(j) then begin
           !nr_vals.(j) <- t_vals.(j);
           !nr_occ.(j) <- true
         end
       done;
       let ap = Jit.Kernels.apply_v_dense f64 teleport (!nr_vals, !nr_occ) in
       nr_vals := fst ap;
       nr_occ := snd ap;
       let d = Jit.Kernels.ewise_v_dense `Add f64 ~op:"Minus" !pr ap in
       let d2 = Jit.Kernels.ewise_v_dense `Mult f64 ~op:"Times" d d in
       let squared_error =
         Jit.Kernels.reduce_v_scalar_dense f64 ~op:"Plus" ~identity:"Zero" d2
       in
       pr := (Array.copy !nr_vals, Array.copy !nr_occ);
       if squared_error /. rows_f < threshold then raise Exit
     done
   with Exit -> ());
  let page_rank = Svector.of_dense_unsafe f64 ~vals:(fst !pr) ~valid:(snd !pr) in
  (* page_rank<~page_rank> = page_rank + teleport: fill untouched entries *)
  let new_rank = Svector.create f64 rows in
  Assign.vector_scalar ~out:new_rank ((1.0 -. damping) /. rows_f)
    Index_set.All;
  let mask =
    Mask.Vmask { dense = Svector.to_bool_dense page_rank; complemented = true }
  in
  Output.write_vector ~mask ~accum:None ~replace:false ~out:page_rank
    ~t:(Jit.Kernels.ewise_v `Add f64 ~op:"Plus" page_rank new_rank);
  (page_rank, !iters)

(* Tier 3 with the format layer off: the original sparse-vector
   pipeline. *)
let native_sparse ~damping ~threshold ~max_iters graph =
  let rows = Smatrix.nrows graph in
  let rows_f = float_of_int rows in
  let normalized = Smatrix.dup graph in
  Utilities.normalize_rows normalized;
  let m =
    Jit.Kernels.apply_m f64
      (Jit.Op_spec.Bound { op = "Times"; side = `Second; const = damping })
      ~transpose:false normalized
  in
  let teleport = Jit.Op_spec.Bound { op = "Plus"; side = `Second; const = (1.0 -. damping) /. rows_f } in
  let page_rank = Svector.create f64 rows in
  Assign.vector_scalar ~out:page_rank (1.0 /. rows_f) Index_set.All;
  let new_rank = Svector.create f64 rows in
  let delta = Svector.create f64 rows in
  let write ?accum out t =
    Output.write_vector ~mask:Mask.No_vmask ~accum ~replace:false ~out ~t
  in
  let iters = ref 0 in
  (try
     for i = 1 to max_iters do
       iters := i;
       (* new_rank[None] += page_rank @ m, accumulating with Second *)
       write ~accum:(Binop.second f64) new_rank
         (Jit.Kernels.vxm f64 Jit.Op_spec.arithmetic ~transpose:false
            page_rank m);
       write new_rank (Jit.Kernels.apply_v f64 teleport new_rank);
       write delta
         (Jit.Kernels.ewise_v `Add f64 ~op:"Minus" page_rank new_rank);
       write delta (Jit.Kernels.ewise_v `Mult f64 ~op:"Times" delta delta);
       let squared_error =
         Jit.Kernels.reduce_v_scalar f64 ~op:"Plus" ~identity:"Zero" delta
       in
       Svector.replace_contents page_rank (Svector.entries new_rank);
       if squared_error /. rows_f < threshold then raise Exit
     done
   with Exit -> ());
  Assign.vector_scalar ~out:new_rank ((1.0 -. damping) /. rows_f)
    Index_set.All;
  let mask =
    Mask.Vmask { dense = Svector.to_bool_dense page_rank; complemented = true }
  in
  Output.write_vector ~mask ~accum:None ~replace:false ~out:page_rank
    ~t:(Jit.Kernels.ewise_v `Add f64 ~op:"Plus" page_rank new_rank);
  (page_rank, !iters)

(* Tier 3: layout-aware dispatch between the two pipelines above. *)
let native ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000) graph
    =
  if Format_stats.enabled () then
    native_dense ~damping ~threshold ~max_iters graph
  else native_sparse ~damping ~threshold ~max_iters graph

(* Tier "PyGB": the program of paper Fig. 7, statement for statement. *)
let dsl ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000) graph =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let rows, _cols = Container.shape graph in
  let rows_f = float_of_int rows in
  (* m = gb.Matrix(shape, float); m[None] = graph *)
  let m = Container.matrix_empty ~dtype:(Dtype.P f64) rows rows in
  Ops.set m !!graph;
  (* gb.utilities.normalize_rows(m) *)
  (match m with
  | Container.Mat (Dtype.FP64, mm) -> Utilities.normalize_rows mm
  | Container.Mat _ | Container.Vec _ -> assert false);
  (* with gb.UnaryOp("Times", damping): m[None] = gb.apply(m) *)
  Context.with_ops
    [ Context.unary_bound ~op:"Times" damping ]
    (fun () -> Ops.set m (Ops.apply !!m));
  (* page_rank[:] = 1.0 / rows *)
  let page_rank = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  Ops.assign_scalar page_rank (1.0 /. rows_f);
  let new_rank = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  let delta = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  let iters = ref 0 in
  let result = ref page_rank in
  (try
     for i = 1 to max_iters do
       iters := i;
       (* with gb.Accumulator("Second"), gb.Semiring(PlusMonoid, "Times"):
            new_rank[None] += page_rank @ m *)
       Context.with_ops
         [ Context.accum "Second";
           Context.custom_semiring ~add_op:"Plus" ~add_identity:"Zero"
             ~mul_op:"Times" ]
         (fun () -> Ops.update new_rank (!!page_rank @. !!m));
       (* with gb.UnaryOp("Plus", (1-d)/rows): new_rank[None] = apply(...) *)
       Context.with_ops
         [ Context.unary_bound ~op:"Plus" ((1.0 -. damping) /. rows_f) ]
         (fun () -> Ops.set new_rank (Ops.apply !!new_rank));
       (* with gb.BinaryOp("Minus"): delta[None] = page_rank + new_rank *)
       Context.with_ops
         [ Context.binary "Minus" ]
         (fun () -> Ops.set delta (!!page_rank +: !!new_rank));
       (* delta[None] = delta * delta; squared_error = reduce(delta) *)
       Ops.set delta (!!delta *: !!delta);
       let squared_error = Ops.reduce !!delta in
       (* page_rank[:] = new_rank *)
       Ops.set page_rank !!new_rank;
       if squared_error /. rows_f < threshold then raise Exit
     done
   with Exit -> ());
  (* new_rank[:] = (1-d)/rows;
     with gb.BinaryOp("Plus"): page_rank[~page_rank] = page_rank + new_rank *)
  Ops.assign_scalar new_rank ((1.0 -. damping) /. rows_f);
  Context.with_ops
    [ Context.binary "Plus" ]
    (fun () ->
      Ops.set ~mask:(~~page_rank) page_rank (!!page_rank +: !!new_rank));
  (!result, !iters)

(* Nonblocking tier: the Fig. 7 program under the lib/exec engine.  The
   convergence check is phrased as one deferred expression,
   reduce((page_rank - new_rank) ⊗ (page_rank - new_rank)), so the plan
   DAG shares the difference subtree (CSE) and fuses the eWiseMult into
   the scalar reduction — no delta temporary at all. *)
let nonblocking ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000)
    graph =
  Exec.with_mode Exec.Nonblocking @@ fun () ->
  let open Ogb in
  let open Ogb.Ops.Infix in
  let rows, _cols = Container.shape graph in
  let rows_f = float_of_int rows in
  let m = Container.matrix_empty ~dtype:(Dtype.P f64) rows rows in
  Ops.set m !!graph;
  (match m with
  | Container.Mat (Dtype.FP64, mm) -> Utilities.normalize_rows mm
  | Container.Mat _ | Container.Vec _ -> assert false);
  Context.with_ops
    [ Context.unary_bound ~op:"Times" damping ]
    (fun () -> Ops.set m (Ops.apply !!m));
  let page_rank = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  Ops.assign_scalar page_rank (1.0 /. rows_f);
  let new_rank = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  let iters = ref 0 in
  (try
     for i = 1 to max_iters do
       iters := i;
       Context.with_ops
         [ Context.accum "Second";
           Context.custom_semiring ~add_op:"Plus" ~add_identity:"Zero"
             ~mul_op:"Times" ]
         (fun () -> Ops.update new_rank (!!page_rank @. !!m));
       Context.with_ops
         [ Context.unary_bound ~op:"Plus" ((1.0 -. damping) /. rows_f) ]
         (fun () -> Ops.set new_rank (Ops.apply !!new_rank));
       let diff =
         Context.with_ops
           [ Context.binary "Minus" ]
           (fun () -> !!page_rank +: !!new_rank)
       in
       let squared_error =
         Context.with_ops
           [ Context.binary "Times" ]
           (fun () -> Ops.reduce (diff *: diff))
       in
       Ops.set page_rank !!new_rank;
       if squared_error /. rows_f < threshold then raise Exit
     done
   with Exit -> ());
  Ops.assign_scalar new_rank ((1.0 -. damping) /. rows_f);
  Context.with_ops
    [ Context.binary "Plus" ]
    (fun () ->
      Ops.set ~mask:(~~page_rank) page_rank (!!page_rank +: !!new_rank));
  (page_rank, !iters)

(* Tier 1: the MiniVM encoding of Fig. 7. *)
let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  let open Minivm.Value in
  let s x = Const (Str x) in
  let f x = Const (Float x) in
  let i x = Const (Int x) in
  [ Def
      ( "page_rank",
        [ "graph"; "m"; "page_rank"; "new_rank"; "delta"; "damping";
          "threshold"; "max_iters"; "rows" ],
        [ (* m[None] = graph; normalize_rows(m); m = apply(m) * damping *)
          SetIndex (Var "m", Const Nil, Var "graph");
          ExprStmt (Call (Var "normalize_rows", [ Var "m" ]));
          With
            ( [ Call (Var "UnaryOp", [ s "Times"; Var "damping" ]) ],
              [ SetIndex (Var "m", Const Nil, Call (Var "apply", [ Var "m" ])) ]
            );
          (* page_rank[:] = 1.0 / rows *)
          SetIndex
            ( Var "page_rank",
              Var "AllIndices",
              Binary ("/", f 1.0, Var "rows") );
          Assign ("iters", i 0);
          Assign ("done_", Const (Bool false));
          While
            ( Binary
                ( "and",
                  Unary ("not", Var "done_"),
                  Binary ("<", Var "iters", Var "max_iters") ),
              [ Assign ("iters", Binary ("+", Var "iters", i 1));
                With
                  ( [ Call (Var "Accumulator", [ s "Second" ]);
                      Call (Var "Semiring", [ s "Plus"; s "Zero"; s "Times" ])
                    ],
                    [ ExprStmt
                        (Method
                           ( Var "new_rank",
                             "update",
                             [ Const Nil;
                               Binary ("@", Var "page_rank", Var "m") ] )) ] );
                With
                  ( [ Call
                        ( Var "UnaryOp",
                          [ s "Plus";
                            Binary
                              ( "/",
                                Binary ("-", f 1.0, Var "damping"),
                                Var "rows" ) ] ) ],
                    [ SetIndex
                        ( Var "new_rank",
                          Const Nil,
                          Call (Var "apply", [ Var "new_rank" ]) ) ] );
                With
                  ( [ Call (Var "BinaryOp", [ s "Minus" ]) ],
                    [ SetIndex
                        ( Var "delta",
                          Const Nil,
                          Binary ("+", Var "page_rank", Var "new_rank") ) ] );
                SetIndex
                  (Var "delta", Const Nil, Binary ("*", Var "delta", Var "delta"));
                Assign ("squared_error", Call (Var "reduce", [ Var "delta" ]));
                SetIndex (Var "page_rank", Var "AllIndices", Var "new_rank");
                If
                  ( Binary
                      ( "<",
                        Binary ("/", Var "squared_error", Var "rows"),
                        Var "threshold" ),
                    [ Assign ("done_", Const (Bool true)) ],
                    [] ) ] );
          (* new_rank[:] = (1-d)/rows; page_rank[~page_rank] += ... *)
          SetIndex
            ( Var "new_rank",
              Var "AllIndices",
              Binary ("/", Binary ("-", f 1.0, Var "damping"), Var "rows") );
          With
            ( [ Call (Var "BinaryOp", [ s "Plus" ]) ],
              [ SetIndex
                  ( Var "page_rank",
                    Unary ("~", Var "page_rank"),
                    Binary ("+", Var "page_rank", Var "new_rank") ) ] );
          Return (Var "page_rank") ] ) ]

let vm_loops ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000)
    graph =
  let open Ogb in
  let rows, _ = Container.shape graph in
  let m = Container.matrix_empty ~dtype:(Dtype.P f64) rows rows in
  let page_rank = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  let new_rank = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  let delta = Container.vector_empty ~dtype:(Dtype.P f64) rows in
  match
    Vm_runtime.call_program vm_program "page_rank"
      [ Vm_bridge.wrap_container graph;
        Vm_bridge.wrap_container m;
        Vm_bridge.wrap_container page_rank;
        Vm_bridge.wrap_container new_rank;
        Vm_bridge.wrap_container delta;
        Minivm.Value.Float damping;
        Minivm.Value.Float threshold;
        Minivm.Value.Int max_iters;
        Minivm.Value.Float (float_of_int rows) ]
  with
  | Minivm.Value.Foreign (Vm_bridge.Cont c) -> c
  | _ -> page_rank

let vm_whole ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000)
    graph =
  let kernel =
    Vm_runtime.whole_algorithm ~name:"page_rank" ~dtype:"double" (fun () ->
        Obj.repr (fun (g, d, t, mi) ->
            fst (native ~damping:d ~threshold:t ~max_iters:mi g)))
  in
  let f : float Smatrix.t * float * float * int -> float Svector.t =
    Obj.obj kernel
  in
  let env = Vm_runtime.fresh_env () in
  Minivm.Env.define env "pr_compiled"
    (Minivm.Value.Builtin
       ( "pr_compiled",
         fun args ->
           match args with
           | [ g; Minivm.Value.Float d; Minivm.Value.Float t;
               Minivm.Value.Int mi ] ->
             let c = Ogb.Vm_bridge.unwrap_container g in
             let m = Ogb.Container.as_matrix f64 c in
             Ogb.Vm_bridge.wrap_container
               (Ogb.Container.of_svector (f (m, d, t, mi)))
           | _ -> raise (Minivm.Value.Type_error "pr_compiled: bad arguments")
       ));
  Minivm.Env.define env "g" (Ogb.Vm_bridge.wrap_container graph);
  let open Minivm.Ast in
  Minivm.Interp.exec_block env
    [ Assign
        ( "result",
          Call
            ( Var "pr_compiled",
              [ Var "g";
                Const (Minivm.Value.Float damping);
                Const (Minivm.Value.Float threshold);
                Const (Minivm.Value.Int max_iters) ] ) ) ];
  Ogb.Vm_bridge.unwrap_container (Minivm.Env.lookup env "result")

let ranks_of_container = Ogb.Container.vector_entries
