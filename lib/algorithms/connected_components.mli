(** Connected components by min-label propagation over the
    MinSelect2nd semiring — an extension beyond the paper's four
    algorithms (its §VIII argues the DSL generalizes; this exercises the
    Min* semirings it never benchmarks).

    Works on undirected (symmetric) adjacency; labels converge to the
    minimum vertex id of each component in O(diameter) pulls. *)

open Gbtl

val native : bool Smatrix.t -> int Svector.t
(** Dense label vector: every vertex gets its component id. *)

val dsl : Ogb.Container.t -> Ogb.Container.t

val vm_program : Minivm.Ast.block
(** The propagation loop as a MiniVM script ([n] bounded rounds of
    [labels.update(None, graph.T @ labels)] under
    [Semiring("MinSelect2nd")]/[Accumulator("Min")]); the fifth tier-1
    workload. *)

val vm_loops : Ogb.Container.t -> Ogb.Container.t
(** Run {!vm_program} through the VM bridge: labels seeded [v -> v]
    (Int64), graph passed as-is (bool adjacency, like {!dsl}). *)

val component_count : int Svector.t -> int
