open Gbtl

let f64 = Dtype.FP64

(* One source's dependency accumulation (the LAGraph formulation with a
   dense bcu of ones). *)
let accumulate_source adj_f centrality s =
  let n = Smatrix.nrows adj_f in
  (* forward: frontier carries shortest-path counts *)
  let nsp = Svector.create f64 n in
  Svector.set nsp s 1.0;
  let frontier = Smatrix.extract_row adj_f s in
  let sigmas = ref [] in
  let arithmetic = Semiring.arithmetic f64 in
  while Svector.nvals frontier > 0 do
    (* record this wave's pattern (counts are >= 1, so truthy) *)
    sigmas := Svector.cast ~into:Dtype.Bool frontier :: !sigmas;
    (* nsp += frontier *)
    Output.write_vector ~mask:Mask.No_vmask ~accum:(Some (Binop.plus f64))
      ~replace:false ~out:nsp ~t:(Svector.entries frontier);
    (* frontier<¬nsp, replace> = frontier ⊕.⊗ A *)
    Matmul.vxm
      ~mask:(Mask.vmask ~complemented:true nsp)
      ~replace:true arithmetic ~out:frontier frontier adj_f
  done;
  let waves = Array.of_list (List.rev !sigmas) in
  let depth = Array.length waves in
  if depth > 0 then begin
    (* backward: bcu starts as dense ones *)
    let bcu = Svector.of_dense f64 (Array.make n 1.0) in
    let nspinv = Svector.create f64 n in
    Apply_reduce.apply_vector (Unaryop.multiplicative_inverse f64)
      ~out:nspinv nsp;
    let w = Svector.create f64 n in
    for i = depth - 1 downto 1 do
      (* w<S_i, replace> = bcu ⊗ 1/nsp *)
      Ewise.vector_mult
        ~mask:(Mask.vmask waves.(i))
        ~replace:true (Binop.times f64) ~out:w bcu nspinv;
      (* w = A ⊕.⊗ w : dependencies flow back along edges *)
      Matmul.mxv arithmetic ~out:w adj_f w;
      (* bcu<S_{i-1}> += w ⊗ nsp *)
      let t = Svector.create f64 n in
      Ewise.vector_mult (Binop.times f64) ~out:t w nsp;
      Output.write_vector
        ~mask:(Mask.vmask waves.(i - 1))
        ~accum:(Some (Binop.plus f64)) ~replace:false ~out:bcu
        ~t:(Svector.entries t)
    done;
    (* centrality += bcu - 1, excluding the source *)
    Svector.iter
      (fun v x ->
        if v <> s && x <> 1.0 then
          Svector.set centrality v
            ((match Svector.get centrality v with Some c -> c | None -> 0.0)
            +. x -. 1.0))
      bcu
  end

let native ?sources graph =
  let n = Smatrix.nrows graph in
  let adj_f = Smatrix.cast ~into:f64 graph in
  let centrality = Svector.of_dense f64 (Array.make n 0.0) in
  let sources =
    match sources with Some l -> l | None -> List.init n Fun.id
  in
  List.iter (fun s -> accumulate_source adj_f centrality s) sources;
  centrality

(* ------------------------------------------------------------------ *)
(* Single-source tiers (the eighth tier-1 workload).                   *)
(*                                                                     *)
(* Same Brandes formulation, but the forward sweep starts from the     *)
(* unit vector e_s and expands through the masked vxm uniformly — the  *)
(* first wave is e_s (+.x) A under <~nsp, replace>, which equals the    *)
(* extracted row s on loop-free graphs and additionally drops a         *)
(* self-loop at the source (which is never on a shortest path).        *)
(* ------------------------------------------------------------------ *)

let single_source graph ~src =
  let n = Smatrix.nrows graph in
  let adj_f = Smatrix.cast ~into:f64 graph in
  let arithmetic = Semiring.arithmetic f64 in
  let nsp = Svector.create f64 n in
  Svector.set nsp src 1.0;
  let frontier = Svector.create f64 n in
  Svector.set frontier src 1.0;
  let sigmas = ref [] in
  let continue_ = ref true in
  while !continue_ do
    (* frontier<~nsp, replace> = frontier (+.x) A *)
    Matmul.vxm
      ~mask:(Mask.vmask ~complemented:true nsp)
      ~replace:true arithmetic ~out:frontier frontier adj_f;
    if Svector.nvals frontier = 0 then continue_ := false
    else begin
      sigmas := Svector.cast ~into:Dtype.Bool frontier :: !sigmas;
      Output.write_vector ~mask:Mask.No_vmask ~accum:(Some (Binop.plus f64))
        ~replace:false ~out:nsp ~t:(Svector.entries frontier)
    end
  done;
  let waves = Array.of_list (List.rev !sigmas) in
  let depth = Array.length waves in
  let bcu = Svector.of_dense f64 (Array.make n 1.0) in
  if depth > 0 then begin
    let nspinv = Svector.create f64 n in
    Apply_reduce.apply_vector (Unaryop.multiplicative_inverse f64)
      ~out:nspinv nsp;
    let w = Svector.create f64 n in
    for i = depth - 1 downto 1 do
      Ewise.vector_mult
        ~mask:(Mask.vmask waves.(i))
        ~replace:true (Binop.times f64) ~out:w bcu nspinv;
      Matmul.mxv arithmetic ~out:w adj_f w;
      let t = Svector.create f64 n in
      Ewise.vector_mult (Binop.times f64) ~out:t w nsp;
      Output.write_vector
        ~mask:(Mask.vmask waves.(i - 1))
        ~accum:(Some (Binop.plus f64)) ~replace:false ~out:bcu
        ~t:(Svector.entries t)
    done
  end;
  (* centrality = bcu - 1 over the reached set, excluding the source *)
  let centrality = Svector.of_dense f64 (Array.make n 0.0) in
  Svector.iter
    (fun v x -> if v <> src && x <> 1.0 then Svector.set centrality v (x -. 1.0))
    bcu;
  centrality

(* Decode shared by the DSL and VM tiers (identical to the native
   post-pass above, over containers). *)
let centrality_of_bcu ~n ~src bcu =
  let centrality =
    Ogb.Container.vector_dense ~dtype:(Dtype.P f64)
      (List.init n (fun _ -> 0.0))
  in
  List.iter
    (fun (v, x) ->
      if v <> src && x <> 1.0 then
        Ogb.Container.set_vector_element centrality v (x -. 1.0))
    (Ogb.Container.vector_entries bcu);
  centrality

(* The DSL body shared by the blocking and nonblocking tiers. *)
let run graph ~src =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = fst (Container.shape graph) in
  let adj = Container.cast (Dtype.P f64) graph in
  let nsp =
    Container.vector_coo ~dtype:(Dtype.P f64) ~size:n [ (src, 1.0) ]
  in
  let frontier =
    Container.vector_coo ~dtype:(Dtype.P f64) ~size:n [ (src, 1.0) ]
  in
  let waves = ref [] in
  Context.with_ops
    [ Context.semiring "Arithmetic" ]
    (fun () ->
      let continue_ = ref true in
      while !continue_ do
        Context.with_ops
          [ Context.replace ]
          (fun () -> Ops.set ~mask:(~~nsp) frontier (!!frontier @. !!adj));
        if Container.nvals frontier = 0 then continue_ := false
        else begin
          waves := Container.dup frontier :: !waves;
          Context.with_ops
            [ Context.accum "Plus" ]
            (fun () -> Ops.update nsp !!frontier)
        end
      done);
  let waves = Array.of_list (List.rev !waves) in
  let depth = Array.length waves in
  let bcu =
    Ogb.Container.vector_dense ~dtype:(Dtype.P f64)
      (List.init n (fun _ -> 1.0))
  in
  if depth > 0 then begin
    let nspinv = Container.vector_empty ~dtype:(Dtype.P f64) n in
    Context.with_ops
      [ Context.unary "MultiplicativeInverse" ]
      (fun () -> Ops.set nspinv (Ops.apply !!nsp));
    let w = Container.vector_empty ~dtype:(Dtype.P f64) n in
    for i = depth - 1 downto 1 do
      (* w<S_i, replace> = bcu (x) 1/nsp *)
      Context.with_ops
        [ Context.binary "Times"; Context.replace ]
        (fun () -> Ops.set ~mask:(Ops.Mask waves.(i)) w (!!bcu *: !!nspinv));
      (* w = A (+.x) w : dependencies flow back along edges *)
      Context.with_ops
        [ Context.semiring "Arithmetic" ]
        (fun () -> Ops.set w (!!adj @. !!w));
      (* bcu<S_{i-1}> += w (x) nsp *)
      Context.with_ops
        [ Context.binary "Times"; Context.accum "Plus" ]
        (fun () -> Ops.update ~mask:(Ops.Mask waves.(i - 1)) bcu (!!w *: !!nsp))
    done
  end;
  centrality_of_bcu ~n ~src bcu

(* Tier "PyGB": deferred expressions + context stack. *)
let dsl graph ~src = run graph ~src

(* The same body under the nonblocking engine: forward vxm wavefronts
   and backward mxv/eWiseMult dependency flow all lower to plans. *)
let nonblocking graph ~src =
  Exec.with_mode Exec.Nonblocking (fun () -> run graph ~src)

(* Tier 1: the MiniVM script.  The per-depth wavefronts are not stored
   in interpreter lists; instead the forward sweep stamps a levels
   vector (the BFS idiom) and the backward sweep recovers wave i with
   [select("eq", i, levels)]. *)
let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  let str s = Const (Minivm.Value.Str s) in
  let int i = Const (Minivm.Value.Int i) in
  [ Def
      ( "bc",
        [ "graph"; "nsp"; "frontier"; "levels"; "bcu"; "nspinv"; "w"; "t";
          "wave"; "wavep" ],
        [ Assign ("depth", int 0);
          With
            ( [ Call (Var "Semiring", [ str "Arithmetic" ]) ],
              [ While
                  ( Binary (">", Attr (Var "frontier", "nvals"), int 0),
                    [ With
                        ( [ Var "Replace" ],
                          [ SetIndex
                              ( Var "frontier",
                                Unary ("~", Var "nsp"),
                                Binary ("@", Var "frontier", Var "graph") )
                          ] );
                      If
                        ( Binary (">", Attr (Var "frontier", "nvals"), int 0),
                          [ Assign ("depth", Binary ("+", Var "depth", int 1));
                            SetIndex
                              ( Index (Var "levels", Var "frontier"),
                                Var "AllIndices",
                                Var "depth" );
                            With
                              ( [ Call (Var "Accumulator", [ str "Plus" ]) ],
                                [ ExprStmt
                                    (Method
                                       ( Var "nsp",
                                         "update",
                                         [ Const Minivm.Value.Nil;
                                           Var "frontier" ] )) ] ) ],
                          [] ) ] ) ] );
          If
            ( Binary (">", Var "depth", int 0),
              [ With
                  ( [ Call (Var "UnaryOp", [ str "MultiplicativeInverse" ]) ],
                    [ SetIndex
                        ( Var "nspinv",
                          Const Minivm.Value.Nil,
                          Call (Var "apply", [ Var "nsp" ]) ) ] );
                Assign ("lvl", Var "depth");
                While
                  ( Binary (">", Var "lvl", int 1),
                    [ SetIndex
                        ( Var "wave",
                          Const Minivm.Value.Nil,
                          Call (Var "select", [ str "eq"; Var "lvl"; Var "levels" ]) );
                      With
                        ( [ Call (Var "BinaryOp", [ str "Times" ]); Var "Replace" ],
                          [ SetIndex
                              ( Var "w",
                                Var "wave",
                                Binary ("*", Var "bcu", Var "nspinv") ) ] );
                      With
                        ( [ Call (Var "Semiring", [ str "Arithmetic" ]) ],
                          [ SetIndex
                              ( Var "w",
                                Const Minivm.Value.Nil,
                                Binary ("@", Var "graph", Var "w") ) ] );
                      SetIndex
                        ( Var "wavep",
                          Const Minivm.Value.Nil,
                          Call
                            ( Var "select",
                              [ str "eq";
                                Binary ("-", Var "lvl", int 1);
                                Var "levels" ] ) );
                      With
                        ( [ Call (Var "BinaryOp", [ str "Times" ]) ],
                          [ SetIndex
                              ( Var "t",
                                Const Minivm.Value.Nil,
                                Binary ("*", Var "w", Var "nsp") ) ] );
                      With
                        ( [ Call (Var "Accumulator", [ str "Plus" ]) ],
                          [ ExprStmt
                              (Method
                                 ( Var "bcu",
                                   "update",
                                   [ Var "wavep"; Var "t" ] )) ] );
                      Assign ("lvl", Binary ("-", Var "lvl", int 1)) ] ) ],
              [] );
          Return (Var "bcu") ] ) ]

let vm_loops graph ~src =
  let n = fst (Ogb.Container.shape graph) in
  let fp = Dtype.P f64 in
  let adj = Ogb.Container.cast fp graph in
  let nsp = Ogb.Container.vector_coo ~dtype:fp ~size:n [ (src, 1.0) ] in
  let frontier = Ogb.Container.vector_coo ~dtype:fp ~size:n [ (src, 1.0) ] in
  let levels = Ogb.Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  let bcu =
    Ogb.Container.vector_dense ~dtype:fp (List.init n (fun _ -> 1.0))
  in
  let vec () = Ogb.Container.vector_empty ~dtype:fp n in
  let wave = Ogb.Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  let wavep = Ogb.Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  let result =
    Vm_runtime.call_program vm_program "bc"
      [ Ogb.Vm_bridge.wrap_container adj;
        Ogb.Vm_bridge.wrap_container nsp;
        Ogb.Vm_bridge.wrap_container frontier;
        Ogb.Vm_bridge.wrap_container levels;
        Ogb.Vm_bridge.wrap_container bcu;
        Ogb.Vm_bridge.wrap_container (vec ());
        Ogb.Vm_bridge.wrap_container (vec ());
        Ogb.Vm_bridge.wrap_container (vec ());
        Ogb.Vm_bridge.wrap_container wave;
        Ogb.Vm_bridge.wrap_container wavep ]
  in
  let bcu =
    match result with
    | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
    | _ -> bcu
  in
  centrality_of_bcu ~n ~src bcu
