(** Breadth-first search by repeated masked [mxv] over the logical
    semiring (paper Figs. 1–2).  [levels] are 1-based: the source vertex
    gets level 1, unreachable vertices get no entry.

    Three execution tiers, matching the paper's Fig. 10 configurations:
    - {!native}: direct GBTL calls (Fig. 2c);
    - {!dsl}: the PyGB-style program, deferred expressions + context
      stack + per-operation JIT dispatch (Fig. 2b), outer loop in OCaml;
    - {!vm_loops}: the same program {e interpreted} by the MiniVM (outer
      loop and every dispatch boxed, tier 1);
    - {!vm_whole}: one interpreted call into the whole compiled
      algorithm (tier 2). *)

open Gbtl

val native : bool Smatrix.t -> src:int -> int Svector.t
(** Tier 3: OCaml loops over the specialized (monomorphic) kernels — the
    analogue of GBTL C++ with its templates statically instantiated.  All
    tiers share these kernels; they differ only in dispatch overhead, as
    in the paper's experiment.  With the storage-format layer on
    ({!Gbtl.Format_stats.enabled}), dispatches to {!native_dense};
    otherwise {!native_sparse}.  The two produce bit-identical levels. *)

val native_sparse : bool Smatrix.t -> src:int -> int Svector.t
(** The CSR-only pipeline: sparse frontier and levels vectors, push-only
    expansion through the masked entry-merge write path. *)

val native_dense : bool Smatrix.t -> src:int -> int Svector.t
(** The format-aware pipeline: dense levels/frontier staging and
    direction-optimized expansion (CSR push for thin frontiers, masked
    CSC pull with early exit for thick ones). *)

val generic : bool Smatrix.t -> src:int -> int Svector.t
(** The same program against the polymorphic [Gbtl] operations (paper
    Fig. 2c verbatim) — the closure-parameterized library tier, used as
    the correctness reference. *)

val dsl : Ogb.Container.t -> src:int -> Ogb.Container.t
(** [dsl graph ~src] — [graph] must be a square matrix; levels come back
    as an [int64_t] vector container. *)

val vm_program : Minivm.Ast.block
(** The tier-1 MiniVM encoding (the paper's Fig. 2b, line for line). *)

val vm_loops : Ogb.Container.t -> src:int -> Ogb.Container.t
val vm_whole : Ogb.Container.t -> src:int -> Ogb.Container.t

val levels_of_container : Ogb.Container.t -> (int * int) list
(** (vertex, level) pairs, for comparing tiers in tests. *)

val levels_of_svector : int Svector.t -> (int * int) list
