open Gbtl

let native graph =
  let n = Smatrix.nrows graph in
  let adj = Smatrix.cast ~into:Dtype.Int64 graph in
  let labels = Svector.create Dtype.Int64 n in
  for v = 0 to n - 1 do
    Svector.set labels v v
  done;
  let min_select2nd = Semiring.min_select2nd Dtype.Int64 in
  let min_accum = Binop.min Dtype.Int64 in
  let next = Svector.create Dtype.Int64 n in
  let changed = ref true in
  while !changed do
    (* next = labels; next[None] min= adjᵀ min.2nd labels *)
    Svector.replace_contents next (Svector.entries labels);
    Matmul.mxv ~accum:min_accum ~transpose_a:true min_select2nd ~out:next adj
      labels;
    changed := not (Svector.equal next labels);
    Svector.replace_contents labels (Svector.entries next)
  done;
  labels

let dsl graph =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = fst (Container.shape graph) in
  let labels =
    Container.vector_coo ~dtype:(Dtype.P Dtype.Int64) ~size:n
      (List.init n (fun v -> (v, float_of_int v)))
  in
  let changed = ref true in
  Context.with_ops
    [ Context.semiring "MinSelect2nd"; Context.accum "Min" ]
    (fun () ->
      while !changed do
        let before = Container.dup labels in
        Ops.update labels (tr !!graph @. !!labels);
        changed := not (Container.equal before labels)
      done);
  labels

let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  [ Def
      ( "cc",
        [ "graph"; "labels" ],
        [ With
            ( [ Call
                  (Var "Semiring", [ Const (Minivm.Value.Str "MinSelect2nd") ]);
                Call (Var "Accumulator", [ Const (Minivm.Value.Str "Min") ]) ],
              [ For
                  ( "i",
                    Index
                      (Attr (Var "graph", "shape"), Const (Minivm.Value.Int 0)),
                    [ ExprStmt
                        (Method
                           ( Var "labels",
                             "update",
                             [ Const Minivm.Value.Nil;
                               Binary
                                 ("@", Attr (Var "graph", "T"), Var "labels")
                             ] )) ] ) ] );
          Return (Var "labels") ] ) ]

let seed_labels n =
  Ogb.Container.vector_coo ~dtype:(Dtype.P Dtype.Int64) ~size:n
    (List.init n (fun v -> (v, float_of_int v)))

let vm_loops graph =
  let n = fst (Ogb.Container.shape graph) in
  let labels = seed_labels n in
  match
    Vm_runtime.call_program vm_program "cc"
      [ Ogb.Vm_bridge.wrap_container graph; Ogb.Vm_bridge.wrap_container labels ]
  with
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
  | _ -> labels

let component_count labels =
  let seen = Hashtbl.create 16 in
  Svector.iter (fun _ l -> Hashtbl.replace seen l ()) labels;
  Hashtbl.length seen
