(** k-truss: the maximal subgraph in which every edge participates in at
    least [k - 2] triangles.  Uses masked [mxm] for per-edge support and
    {!Gbtl.Select} for pruning — a further extension combining the
    paper's triangle-counting pattern with the select operation. *)

open Gbtl

val native : k:int -> bool Smatrix.t -> bool Smatrix.t
(** [native ~k adj] — [adj] must be symmetric and loop-free; the result
    is the (symmetric) adjacency of the k-truss. *)

val edge_count : bool Smatrix.t -> int
(** Undirected edge count (stored entries / 2). *)

val dsl : k:int -> Ogb.Container.t -> Ogb.Container.t
(** The same computation written in the DSL:
    [support[E] = E @ E.T; E = select (>= k-2) support] iterated to a
    fixpoint. *)

val nonblocking : k:int -> Ogb.Container.t -> Ogb.Container.t
(** {!dsl} under the nonblocking engine (the seventh tier-1
    workload). *)

val vm_program : Minivm.Ast.block
(** The filtering loop as a MiniVM script: [rounds] bounded iterations
    of the Replace-masked support mxm and the select/re-one apply;
    pruning a fixed edge set is a no-op, so any budget at or beyond the
    fixpoint depth is bit-identical to the fixpoint loops. *)

val default_rounds : int

val vm_loops : ?rounds:int -> k:int -> Ogb.Container.t -> Ogb.Container.t
(** Run {!vm_program} through the VM bridge on an Int64 copy of the
    adjacency. *)
