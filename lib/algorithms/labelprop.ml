open Gbtl

(* Synchronous label propagation: every vertex simultaneously adopts the
   label that occurs most often among its neighbours, ties broken toward
   the smallest label, isolated vertices keep their label.  The update is
   a pure function of the label vector, so stopping at a fixpoint is
   bit-identical to running out the round budget; graphs that oscillate
   (bipartite structures under synchronous updates) are cut off after
   [rounds] sweeps in every tier.

   The algebraic form runs entirely in the Arithmetic/Max semirings over
   Int64 with an argmax encoding:

     onehot[v, labels v] = 1                (host-side scatter)
     counts = A (+.x) onehot                (neighbour label histogram)
     enc    = counts*(n+1) (+) counts (+.2nd) D   with D[l,l] = n - l
     best   = reduce_rows Max enc
     labels v = n - (best v mod (n+1))      (host-side decode)

   enc packs (count, n - label) into one Int64 so one Max reduction picks
   the largest count and, on ties, the smallest label. *)

let default_rounds = 16

(* Tier 3 reference: plain adjacency-list sweeps with the same argmax
   tie-break. *)
let native ?(rounds = default_rounds) graph =
  let n = Smatrix.nrows graph in
  let adj = Array.make n [] in
  Smatrix.iter (fun i j _ -> adj.(i) <- j :: adj.(i)) graph;
  let labels = Array.init n Fun.id in
  let next = Array.make n 0 in
  let cnt = Array.make n 0 in
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < rounds do
    incr round;
    changed := false;
    for v = 0 to n - 1 do
      match adj.(v) with
      | [] -> next.(v) <- labels.(v)
      | neighbours ->
        let touched = ref [] in
        List.iter
          (fun u ->
            let l = labels.(u) in
            if cnt.(l) = 0 then touched := l :: !touched;
            cnt.(l) <- cnt.(l) + 1)
          neighbours;
        let best_c = ref 0 and best_l = ref 0 in
        List.iter
          (fun l ->
            if cnt.(l) > !best_c || (cnt.(l) = !best_c && l < !best_l) then begin
              best_c := cnt.(l);
              best_l := l
            end;
            cnt.(l) <- 0)
          !touched;
        next.(v) <- !best_l
    done;
    for v = 0 to n - 1 do
      if next.(v) <> labels.(v) then begin
        changed := true;
        labels.(v) <- next.(v)
      end
    done
  done;
  let out = Svector.create Dtype.Int64 n in
  Array.iteri (fun v l -> Svector.set out v l) labels;
  out

(* The DSL body shared by the blocking and nonblocking tiers. *)
let run ?(rounds = default_rounds) graph =
  let open Ogb in
  let open Ogb.Ops.Infix in
  let n = fst (Container.shape graph) in
  let nf = float_of_int n in
  let adj = Container.cast (Dtype.P Dtype.Int64) graph in
  let labels =
    Container.vector_coo ~dtype:(Dtype.P Dtype.Int64) ~size:n
      (List.init n (fun v -> (v, float_of_int v)))
  in
  (* D[l,l] = n - l: the tie-break diagonal of the argmax encoding *)
  let diag =
    Container.matrix_coo ~dtype:(Dtype.P Dtype.Int64) ~nrows:n ~ncols:n
      (List.init n (fun l -> (l, l, nf -. float_of_int l)))
  in
  let onehot = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) n n in
  let counts = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) n n in
  let enc = Container.matrix_empty ~dtype:(Dtype.P Dtype.Int64) n n in
  let best = Container.vector_empty ~dtype:(Dtype.P Dtype.Int64) n in
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < rounds do
    incr round;
    let before = Container.dup labels in
    Vm_bridge.label_onehot_into labels onehot;
    Context.with_ops
      [ Context.semiring "Arithmetic" ]
      (fun () -> Ops.set counts (!!adj @. !!onehot));
    (* enc = counts*(n+1) (+) tie-break term *)
    let scaled =
      Context.with_ops
        [ Context.unary_bound ~op:"Times" (nf +. 1.0) ]
        (fun () -> Ops.apply !!counts)
    in
    let tieb =
      Context.with_ops
        [ Context.custom_semiring ~add_op:"Plus" ~add_identity:"Zero"
            ~mul_op:"Second" ]
        (fun () -> !!counts @. !!diag)
    in
    Context.with_ops
      [ Context.binary "Plus" ]
      (fun () -> Ops.set enc (scaled +: tieb));
    Context.with_ops
      [ Context.monoid ~op:"Max" ~identity:"MaxIdentity" ]
      (fun () -> Ops.set best (Ops.reduce_rows !!enc));
    Vm_bridge.label_decode_into best labels;
    changed := not (Container.equal before labels)
  done;
  (labels, !round)

(* Tier "PyGB": the deferred-expression program under the blocking
   evaluator. *)
let dsl ?rounds graph = run ?rounds graph

(* The same body under the nonblocking engine: every statement lowers to
   a plan DAG (mxm, apply, eWiseAdd, reduce_rows) before materializing. *)
let nonblocking ?rounds graph =
  Exec.with_mode Exec.Nonblocking (fun () -> run ?rounds graph)

(* Tier 1: the same program interpreted by the MiniVM. *)
let vm_program : Minivm.Ast.block =
  let open Minivm.Ast in
  let str s = Const (Minivm.Value.Str s) in
  let int i = Const (Minivm.Value.Int i) in
  [ Def
      ( "labelprop",
        [ "graph"; "diag"; "labels"; "rounds" ],
        [ Assign ("n", Index (Attr (Var "graph", "shape"), int 0));
          Assign ("scale", Binary ("+", Var "n", int 1));
          Assign ("onehot", Call (Var "Matrix", [ Var "n"; Var "n"; str "int64_t" ]));
          Assign ("counts", Call (Var "Matrix", [ Var "n"; Var "n"; str "int64_t" ]));
          Assign ("enc", Call (Var "Matrix", [ Var "n"; Var "n"; str "int64_t" ]));
          Assign ("best", Call (Var "Vector", [ Var "n"; str "int64_t" ]));
          For
            ( "i",
              Var "rounds",
              [ ExprStmt (Call (Var "label_onehot", [ Var "labels"; Var "onehot" ]));
                With
                  ( [ Call (Var "Semiring", [ str "Arithmetic" ]) ],
                    [ SetIndex
                        ( Var "counts",
                          Const Minivm.Value.Nil,
                          Binary ("@", Var "graph", Var "onehot") ) ] );
                With
                  ( [ Call (Var "UnaryOp", [ str "Times"; Var "scale" ]) ],
                    [ Assign ("scaled", Call (Var "apply", [ Var "counts" ])) ]
                  );
                With
                  ( [ Call (Var "Semiring", [ str "Plus"; str "Zero"; str "Second" ]) ],
                    [ Assign ("tieb", Binary ("@", Var "counts", Var "diag")) ]
                  );
                With
                  ( [ Call (Var "BinaryOp", [ str "Plus" ]) ],
                    [ SetIndex
                        ( Var "enc",
                          Const Minivm.Value.Nil,
                          Binary ("+", Var "scaled", Var "tieb") ) ] );
                With
                  ( [ Call (Var "Monoid", [ str "Max"; str "MaxIdentity" ]) ],
                    [ SetIndex
                        ( Var "best",
                          Const Minivm.Value.Nil,
                          Call (Var "reduce_rows", [ Var "enc" ]) ) ] );
                ExprStmt (Call (Var "label_decode", [ Var "best"; Var "labels" ]))
              ] );
          Return (Var "labels") ] ) ]

let seed_labels n =
  Ogb.Container.vector_coo ~dtype:(Dtype.P Dtype.Int64) ~size:n
    (List.init n (fun v -> (v, float_of_int v)))

let tie_break_diagonal n =
  let nf = float_of_int n in
  Ogb.Container.matrix_coo ~dtype:(Dtype.P Dtype.Int64) ~nrows:n ~ncols:n
    (List.init n (fun l -> (l, l, nf -. float_of_int l)))

let vm_loops ?(rounds = default_rounds) graph =
  let n = fst (Ogb.Container.shape graph) in
  let adj = Ogb.Container.cast (Dtype.P Dtype.Int64) graph in
  let labels = seed_labels n in
  match
    Vm_runtime.call_program vm_program "labelprop"
      [ Ogb.Vm_bridge.wrap_container adj;
        Ogb.Vm_bridge.wrap_container (tie_break_diagonal n);
        Ogb.Vm_bridge.wrap_container labels;
        Minivm.Value.Int rounds ]
  with
  | Minivm.Value.Foreign (Ogb.Vm_bridge.Cont c) -> c
  | _ -> labels

let community_count labels =
  let seen = Hashtbl.create 16 in
  Svector.iter (fun _ l -> Hashtbl.replace seen l ()) labels;
  Hashtbl.length seen
