(** Execution-mode switch and planner hooks.

    The nonblocking execution engine lives in [lib/exec], one library
    above this one, so [Expr.force] cannot call it directly.  Instead the
    engine registers evaluator closures here at initialization, and
    [Expr.force] / [Expr.reduce_scalar] divert through them whenever the
    mode is [Nonblocking].  With no engine linked (or in the default
    [Blocking] mode) behavior is exactly the seed's eager evaluator. *)

type mode = Blocking | Nonblocking

val mode : unit -> mode
val set_mode : mode -> unit

val with_mode : mode -> (unit -> 'a) -> 'a
(** Run [f] under the given mode, restoring the previous mode on exit
    (also on exception). *)

val force_sequential : bool ref
(** When set (e.g. while MiniVM interprets a tier-1 program), the
    scheduler must execute plans sequentially in topological order. *)

val with_sequential : (unit -> 'a) -> 'a

val evaluator : Obj.t option ref
(** [?mask:Expr.mask_spec -> Expr.t -> Container.t], installed by
    [Exec]. *)

val reducer : Obj.t option ref
(** [op:string -> identity:string -> Expr.t -> float], installed by
    [Exec]. *)
