(** The operator context stack — the DSL rendering of PyGB's [with]
    blocks (paper §IV).

    [with_ops [semiring "MinPlus"; accum "Min"] (fun () -> ...)] pushes a
    frame for the dynamic extent of the thunk.  When an operation needs an
    operator it searches the stack top-down for the nearest entry it can
    use; in particular an accumulator request falls back to the nearest
    monoid or semiring's additive operator (the paper's
    [path[None] += ...] example), and the replace flag is itself a context
    entry ([gb.Replace] in Fig. 2b).

    The stack is {e domain-local} (one independent stack per OCaml 5
    domain) — lifting the threading limitation PyGB documents in its §IV
    GIL discussion: parallel domains can each hold their own operator
    contexts. *)

type entry =
  | Semiring of Jit.Op_spec.semiring
  | Monoid of { op : string; identity : string }
  | Binary of string
  | Unary of Jit.Op_spec.unary
  | Accum of string
  | Replace

(** {2 Convenience constructors (the [gb.*] names)} *)

val semiring : string -> entry
(** By GBTL name, e.g. [semiring "MinPlus"].
    @raise Gbtl.Semiring.Unknown_semiring *)

val custom_semiring :
  add_op:string -> add_identity:string -> mul_op:string -> entry

val monoid : op:string -> identity:string -> entry
val binary : string -> entry
val unary : string -> entry
val unary_bound : op:string -> ?side:[ `First | `Second ] -> float -> entry
(** [gb.UnaryOp ("Times", 0.85)] — a binary operator with a bound
    constant (default side: [`Second]). *)

val accum : string -> entry
val replace : entry

(** {2 Scoping} *)

val with_ops : entry list -> (unit -> 'r) -> 'r
val push : entry -> unit
val pop : unit -> unit
(** Explicit frames for the MiniVM bridge; prefer {!with_ops}. *)

val depth : unit -> int

val save : unit -> entry list
val restore : entry list -> unit
val reset : unit -> unit
(** Whole-stack capture for the server's per-session isolation: a
    session's operator stack is [save]d after each request and
    [restore]d (on whichever domain serves it next) before the next
    one; [reset] clears the serving domain's stack between sessions.
    Innermost entry first, as {!push} maintains it. *)

(** {2 Resolution (used by expression construction)} *)

val current_semiring : unit -> Jit.Op_spec.semiring
(** Nearest semiring; defaults to Arithmetic. *)

val current_add_binop : unit -> string
(** For [eWiseAdd] ([+]): nearest binary op, monoid op or semiring ⊕. *)

val current_mult_binop : unit -> string
(** For [eWiseMult] ([*]): nearest binary op, semiring ⊗ or monoid op. *)

val current_accum : unit -> string option
(** For [+=]: nearest accumulator, else monoid/semiring ⊕, else [None]. *)

val current_unary : unit -> Jit.Op_spec.unary
(** For [apply]: nearest unary; defaults to Identity. *)

val current_monoid : unit -> string * string
(** For [reduce]: nearest monoid or semiring's additive monoid; defaults
    to (Plus, Zero). *)

val replace_flag : unit -> bool
