type entry =
  | Semiring of Jit.Op_spec.semiring
  | Monoid of { op : string; identity : string }
  | Binary of string
  | Unary of Jit.Op_spec.unary
  | Accum of string
  | Replace

let semiring name = Semiring (Jit.Op_spec.semiring_of_name name)

let custom_semiring ~add_op ~add_identity ~mul_op =
  Semiring { Jit.Op_spec.add_op; add_identity; mul_op }

let monoid ~op ~identity = Monoid { op; identity }
let binary name = Binary name
let unary name = Unary (Jit.Op_spec.Named name)

let unary_bound ~op ?(side = `Second) const =
  Unary (Jit.Op_spec.Bound { op; side; const })

let accum name = Accum name
let replace = Replace

(* Innermost entry first.  Domain-local: each OCaml 5 domain gets its own
   operator stack, which removes the threading limitation PyGB documents
   in §IV (one global stack under the GIL). *)
let stack_key : entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let push e =
  let s = stack () in
  s := e :: !s

let pop () =
  let s = stack () in
  match !s with
  | [] -> invalid_arg "Context.pop: empty stack"
  | _ :: rest -> s := rest

let with_ops entries f =
  let n = List.length entries in
  List.iter push entries;
  Fun.protect
    ~finally:(fun () ->
      for _ = 1 to n do
        pop ()
      done)
    f

let depth () = List.length !(stack ())

(* Whole-stack save/restore: the server's session isolation.  A session
   handler installs the session's saved stack before evaluating a
   request on whatever worker domain picked it up, and captures the
   (possibly mutated) stack back into the session record afterwards —
   so one session's pushed operators can never leak into another
   session served later by the same domain. *)
let save () = !(stack ())
let restore entries = stack () := entries
let reset () = stack () := []

let find_map f = List.find_map f !(stack ())

let current_semiring () =
  match find_map (function Semiring s -> Some s | _ -> None) with
  | Some s -> s
  | None -> Jit.Op_spec.arithmetic

let current_add_binop () =
  match
    find_map (function
      | Binary b -> Some b
      | Monoid { op; _ } -> Some op
      | Semiring s -> Some s.Jit.Op_spec.add_op
      | Unary _ | Accum _ | Replace -> None)
  with
  | Some op -> op
  | None -> "Plus"

let current_mult_binop () =
  match
    find_map (function
      | Binary b -> Some b
      | Monoid { op; _ } -> Some op
      | Semiring s -> Some s.Jit.Op_spec.mul_op
      | Unary _ | Accum _ | Replace -> None)
  with
  | Some op -> op
  | None -> "Times"

(* An explicit accumulator anywhere in scope wins; the fallback to the
   nearest monoid/semiring ⊕ (the paper's SSSP example) only applies when
   no accumulator entry exists at all. *)
let current_accum () =
  match find_map (function Accum a -> Some a | _ -> None) with
  | Some a -> Some a
  | None ->
    find_map (function
      | Monoid { op; _ } -> Some op
      | Semiring s -> Some s.Jit.Op_spec.add_op
      | Accum _ | Binary _ | Unary _ | Replace -> None)

let current_unary () =
  match find_map (function Unary u -> Some u | _ -> None) with
  | Some u -> u
  | None -> Jit.Op_spec.Named "Identity"

let current_monoid () =
  match
    find_map (function
      | Monoid { op; identity } -> Some (op, identity)
      | Semiring s -> Some (Jit.Op_spec.monoid_of_semiring s)
      | Binary _ | Unary _ | Accum _ | Replace -> None)
  with
  | Some m -> m
  | None -> ("Plus", "Zero")

let replace_flag () = List.exists (fun e -> e = Replace) !(stack ())
