(** Deferred expression objects (paper §IV "deferred operator
    evaluation").

    Building an expression captures the operators currently in context —
    a [+] built under [with_ops [binary "Minus"]] stays a Minus even if
    evaluated later — and no kernel runs until the expression reaches a
    terminating operation: assignment into a container ({!Ops.set} /
    {!Ops.update}), {!force}, or a scalar reduce.  Assignment-site
    evaluation is what lets the output's mask reach the [mxm] kernel (the
    triangle-counting [B[L] = L @ L.T] optimization). *)

exception Eval_error of string

type t =
  | Leaf of Container.t
  | Transpose of t
  | MatMul of { a : t; b : t; sr : Jit.Op_spec.semiring }
  | EwiseAdd of { a : t; b : t; op : string }
  | EwiseMult of { a : t; b : t; op : string }
  | Apply of { f : Jit.Op_spec.unary; x : t }
  | ReduceRows of { op : string; identity : string; x : t }
  | ExtractVec of { x : t; idx : Gbtl.Index_set.t }
  | ExtractMat of { x : t; rows : Gbtl.Index_set.t; cols : Gbtl.Index_set.t }
  | Select of { pred : Gbtl.Select.predicate; x : t }

val of_container : Container.t -> t

(** {2 Constructors that capture the operator context} *)

val matmul : t -> t -> t
(** [A @ B] with the nearest semiring. *)

val add : t -> t -> t
(** [A + B] (eWiseAdd) with the nearest binary operator. *)

val mult : t -> t -> t
(** [A * B] (eWiseMult). *)

val transpose : t -> t
val apply : ?f:Jit.Op_spec.unary -> t -> t
(** [gb.apply(x)]; operator from context unless given. *)

val reduce_rows : t -> t
(** Row-reduce a matrix to a vector with the context monoid. *)

val extract_vec : t -> Gbtl.Index_set.t -> t
val extract_mat : t -> Gbtl.Index_set.t -> Gbtl.Index_set.t -> t

val select : Gbtl.Select.predicate -> t -> t
(** Keep only the entries satisfying the predicate (GrB_select; an
    extension beyond the paper's Table I). *)

(** {2 Evaluation} *)

type mask_spec = { container : Container.t; complemented : bool }

val force : ?mask:mask_spec -> t -> Container.t
(** Evaluate to a fresh container.  The optional mask reaches structural
    pruning of a top-level [MatMul] (it does {e not} apply write-mask
    semantics — that is the caller's write step).  Under
    [Exec_hook.Nonblocking] with an engine installed, evaluation goes
    through the plan/fuse/schedule pipeline of [lib/exec] instead of the
    recursive evaluator; results are identical. *)

val force_blocking : ?mask:mask_spec -> t -> Container.t
(** The seed's eager recursive evaluator, regardless of mode.  The
    nonblocking engine uses it as its reference semantics. *)

val reduce_scalar : t -> float
(** Terminating scalar reduce with the context monoid, cast to float. *)

val reduce_scalar_blocking : op:string -> identity:string -> t -> float
(** Eager scalar reduce with an explicit monoid, regardless of mode. *)

val result_dtype : t -> Gbtl.Dtype.packed
(** The dtype the expression evaluates at (operand promotion, paper §V). *)

val unify : Gbtl.Dtype.packed -> Container.t -> Container.t
(** Cast to the given dtype when it differs (no copy otherwise). *)

val set_fusion : bool -> unit
(** Toggle operation fusion: with fusion on (default), [apply] over a
    computed sub-expression maps the operator over the temporary in
    place — one fewer kernel dispatch and container per chain (the
    paper's §V planned lazy-evaluation improvement).  Semantics are
    unchanged either way. *)

val fusion : unit -> bool
