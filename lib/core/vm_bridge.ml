open Minivm

type Value.foreign +=
  | Cont of Container.t
  | Ex of Expr.t
  | Op_entry of Context.entry
  | Mask_arg of Ops.mask
  | All_indices
  | Masked_view of Container.t * Ops.mask option

let terr fmt = Printf.ksprintf (fun s -> raise (Value.Type_error s)) fmt

let wrap_container c = Value.Foreign (Cont c)

let unwrap_container = function
  | Value.Foreign (Cont c) -> c
  | v -> terr "expected a container, got %s" (Value.type_name v)

(* Lift a VM value into a deferred expression. *)
let as_expr = function
  | Value.Foreign (Cont c) -> Some (Expr.of_container c)
  | Value.Foreign (Ex e) -> Some e
  | _ -> None

let as_mask = function
  | Value.Nil -> None
  | Value.Foreign (Cont c) -> Some (Ops.Mask c)
  | Value.Foreign (Mask_arg m) -> Some m
  | v -> terr "invalid mask argument: %s" (Value.type_name v)

let as_number = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let foreign_binary op a b =
  match as_expr a, as_expr b with
  | Some ea, Some eb -> (
    match op with
    | "@" -> Some (Value.Foreign (Ex (Expr.matmul ea eb)))
    | "+" -> Some (Value.Foreign (Ex (Expr.add ea eb)))
    | "*" -> Some (Value.Foreign (Ex (Expr.mult ea eb)))
    | _ -> None)
  | _, _ -> None

let foreign_unary op v =
  match op, v with
  | "~", Value.Foreign (Cont c) -> Some (Value.Foreign (Mask_arg (Ops.Mask_complement c)))
  | "-", _ -> (
    match as_expr v with
    | Some e ->
      Some
        (Value.Foreign
           (Ex (Expr.apply ~f:(Jit.Op_spec.Named "AdditiveInverse") e)))
    | None -> None)
  | _, _ -> None

let foreign_attr f name =
  match f, name with
  | Cont c, "T" -> Some (Value.Foreign (Ex (Expr.transpose (Expr.of_container c))))
  | Ex e, "T" -> Some (Value.Foreign (Ex (Expr.transpose e)))
  | Cont c, "nvals" -> Some (Value.Int (Container.nvals c))
  | Cont c, "size" -> Some (Value.Int (Container.size c))
  | Cont c, "shape" ->
    let r, cl = Container.shape c in
    Some (Value.List (ref [| Value.Int r; Value.Int cl |]))
  | Cont c, "dtype" -> Some (Value.Str (Container.dtype_name c))
  | _, _ -> None

let foreign_method f name args =
  match f, name, args with
  | Cont c, "dup", [] -> Some (wrap_container (Container.dup c))
  | Cont c, "clear", [] ->
    Container.clear c;
    Some Value.Nil
  | Cont c, "get", [ Value.Int i ] ->
    Some
      (match Container.get_vector_element c i with
      | Some x -> Value.Float x
      | None -> Value.Nil)
  | Cont c, "set", [ Value.Int i; v ] -> (
    match as_number v with
    | Some x ->
      Container.set_vector_element c i x;
      Some Value.Nil
    | None -> None)
  | Cont c, "update", [ m; v ] -> (
    (* C[m] += expr — Python's __iadd__ through __setitem__ *)
    match as_expr v with
    | Some e ->
      Ops.update ?mask:(as_mask m) c e;
      Some Value.Nil
    | None -> (
      match as_number v with
      | Some _ -> terr "+= with a scalar is not a GraphBLAS operation"
      | None -> None))
  | _, _, _ -> None

let foreign_index_get f key =
  match f, key with
  | Cont c, Value.Int i ->
    Some
      (match Container.get_vector_element c i with
      | Some x -> Value.Float x
      | None -> Value.Nil)
  | Cont c, (Value.Nil | Value.Foreign (Cont _) | Value.Foreign (Mask_arg _))
    ->
    Some (Value.Foreign (Masked_view (c, as_mask key)))
  | Cont c, Value.Foreign All_indices ->
    Some (Value.Foreign (Masked_view (c, None)))
  | _, _ -> None

let do_set target mask value =
  match value with
  | Value.Foreign (Ex e) -> Ops.set ?mask target e
  | Value.Foreign (Cont c) -> Ops.set ?mask target (Expr.of_container c)
  | v -> (
    match as_number v with
    | Some s -> Ops.assign_scalar ?mask target s
    | None -> terr "cannot assign %s into a container" (Value.type_name v))

let foreign_index_set f key value =
  match f, key with
  | Cont c, (Value.Nil | Value.Foreign All_indices) ->
    do_set c None value;
    true
  | Cont c, (Value.Foreign (Cont _) | Value.Foreign (Mask_arg _)) ->
    do_set c (as_mask key) value;
    true
  | Cont c, Value.Int i -> (
    match as_number value with
    | Some x ->
      Container.set_vector_element c i x;
      true
    | None -> false)
  | Masked_view (c, m), (Value.Nil | Value.Foreign All_indices) ->
    do_set c m value;
    true
  | _, _ -> false

let context_enter = function
  | Value.Foreign (Op_entry e) ->
    Context.push e;
    true
  | _ -> false

let context_exit = function
  | Value.Foreign (Op_entry _) -> Context.pop ()
  | _ -> ()

(* Host-side glue shared by the label-propagation DSL tier and the VM
   builtins of the same names: the one-hot scatter and the
   argmax-encoding decode are library writes (no kernels), and both
   tiers must perform them identically for bit-identity. *)

let select_predicate name threshold =
  match name with
  | "gt" -> Gbtl.Select.Value_gt threshold
  | "ge" -> Gbtl.Select.Value_ge threshold
  | "eq" -> Gbtl.Select.Value_eq threshold
  | s -> terr "select: unknown predicate %S (gt, ge, eq)" s

let label_onehot_into labels onehot =
  Container.clear onehot;
  List.iter
    (fun (v, l) -> Container.set_matrix_element onehot v (int_of_float l) 1.0)
    (Container.vector_entries labels)

let label_decode_into best labels =
  let n = Container.size labels in
  List.iter
    (fun (v, b) ->
      let l = n - (int_of_float b mod (n + 1)) in
      Container.set_vector_element labels v (float_of_int l))
    (Container.vector_entries best)

let hooks =
  { Interp.foreign_binary;
    foreign_unary;
    foreign_attr;
    foreign_method;
    foreign_index_get;
    foreign_index_set;
    context_enter;
    context_exit }

let expr_arg = function
  | [ v ] -> (
    match as_expr v with
    | Some e -> e
    | None -> terr "expected a container or expression")
  | _ -> terr "expected one argument"

let install env =
  Interp.set_hooks hooks;
  (Value.foreign_printer :=
     function
     | Cont c -> Some (Container.to_string c)
     | Ex _ -> Some "<deferred expression>"
     | Op_entry _ -> Some "<operator>"
     | Mask_arg _ -> Some "<mask>"
     | All_indices -> Some "<all-indices>"
     | Masked_view _ -> Some "<masked view>"
     | _ -> None);
  let def name f = Env.define env name (Value.Builtin (name, f)) in
  def "Vector" (function
    | [ Value.Int n ] -> wrap_container (Container.vector_empty n)
    | [ Value.Int n; Value.Str dt ] ->
      wrap_container (Container.vector_empty ~dtype:(Gbtl.Dtype.of_name dt) n)
    | [ Value.List items ] ->
      wrap_container
        (Container.vector_dense
           (Array.to_list
              (Array.map
                 (fun v ->
                   match as_number v with
                   | Some x -> x
                   | None -> terr "Vector: expected numbers")
                 !items)))
    | _ -> terr "Vector: bad arguments");
  def "Matrix" (function
    | [ Value.Int r; Value.Int c ] -> wrap_container (Container.matrix_empty r c)
    | [ Value.Int r; Value.Int c; Value.Str dt ] ->
      wrap_container
        (Container.matrix_empty ~dtype:(Gbtl.Dtype.of_name dt) r c)
    | _ -> terr "Matrix: bad arguments");
  def "Semiring" (function
    | [ Value.Str name ] -> Value.Foreign (Op_entry (Context.semiring name))
    | [ Value.Str add; Value.Str identity; Value.Str mul ] ->
      Value.Foreign
        (Op_entry
           (Context.custom_semiring ~add_op:add ~add_identity:identity
              ~mul_op:mul))
    | _ -> terr "Semiring: bad arguments");
  def "Monoid" (function
    | [ Value.Str op; Value.Str identity ] ->
      Value.Foreign (Op_entry (Context.monoid ~op ~identity))
    | _ -> terr "Monoid: bad arguments");
  def "BinaryOp" (function
    | [ Value.Str op ] -> Value.Foreign (Op_entry (Context.binary op))
    | _ -> terr "BinaryOp: bad arguments");
  def "UnaryOp" (function
    | [ Value.Str op ] -> Value.Foreign (Op_entry (Context.unary op))
    | [ Value.Str op; v ] -> (
      match as_number v with
      | Some k -> Value.Foreign (Op_entry (Context.unary_bound ~op k))
      | None -> terr "UnaryOp: bound constant must be a number")
    | _ -> terr "UnaryOp: bad arguments");
  def "Accumulator" (function
    | [ Value.Str op ] -> Value.Foreign (Op_entry (Context.accum op))
    | _ -> terr "Accumulator: bad arguments");
  Env.define env "Replace" (Value.Foreign (Op_entry Context.replace));
  Env.define env "NoMask" Value.Nil;
  Env.define env "AllIndices" (Value.Foreign All_indices);
  def "reduce" (fun args -> Value.Float (Ops.reduce (expr_arg args)));
  def "apply" (fun args -> Value.Foreign (Ex (Ops.apply (expr_arg args))));
  def "reduce_rows" (fun args ->
      Value.Foreign (Ex (Ops.reduce_rows (expr_arg args))));
  def "normalize_rows" (function
    | [ Value.Foreign (Cont (Container.Mat (Gbtl.Dtype.FP64, m))) ] ->
      Gbtl.Utilities.normalize_rows m;
      Value.Nil
    | _ -> terr "normalize_rows: expected a double matrix");
  def "select" (function
    | [ Value.Str pred; k; e ] -> (
      match as_number k, as_expr e with
      | Some threshold, Some e ->
        Value.Foreign (Ex (Ops.select (select_predicate pred threshold) e))
      | _, _ -> terr "select: expected (predicate, threshold, expression)")
    | _ -> terr "select: bad arguments");
  def "label_onehot" (function
    | [ Value.Foreign (Cont labels); Value.Foreign (Cont onehot) ] ->
      label_onehot_into labels onehot;
      Value.Nil
    | _ -> terr "label_onehot: expected (labels vector, one-hot matrix)");
  def "label_decode" (function
    | [ Value.Foreign (Cont best); Value.Foreign (Cont labels) ] ->
      label_decode_into best labels;
      Value.Nil
    | _ -> terr "label_decode: expected (encoded vector, labels vector)")

(* Static registry of the bridge surface for the analyzer's scope/arity
   checker (lib/analysis).  Kept in sync with [install] and the hooks
   above; the checker treats any attr/method/arity outside these lists
   as a defect before the program runs. *)

let known_attrs = [ "T"; "nvals"; "size"; "shape"; "dtype" ]

let known_methods =
  [ ("dup", [ 0 ]); ("clear", [ 0 ]); ("get", [ 1 ]); ("set", [ 2 ]);
    ("update", [ 2 ]) ]

let builtin_arities =
  [ ("Vector", [ 1; 2 ]); ("Matrix", [ 2; 3 ]); ("Semiring", [ 1; 3 ]);
    ("Monoid", [ 2 ]); ("BinaryOp", [ 1 ]); ("UnaryOp", [ 1; 2 ]);
    ("Accumulator", [ 1 ]); ("reduce", [ 1 ]); ("apply", [ 1 ]);
    ("reduce_rows", [ 1 ]); ("normalize_rows", [ 1 ]); ("select", [ 3 ]);
    ("label_onehot", [ 2 ]); ("label_decode", [ 2 ]) ]
