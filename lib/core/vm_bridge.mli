(** Hosting the DSL inside the MiniVM — the PyGB experience: containers
    respond to [@], [+], [*], [~], [.T], [.nvals], subscript assignment
    with masks, and [with] operator contexts, all dispatched dynamically
    through the interpreter (paper §IV's magic methods).

    Tier-1 benchmark programs run on the MiniVM with these hooks
    installed; every GraphBLAS operation they perform goes through
    expression construction and the JIT dispatch, with the outer loops
    interpreted. *)

type Minivm.Value.foreign +=
  | Cont of Container.t
  | Ex of Expr.t
  | Op_entry of Context.entry
  | Mask_arg of Ops.mask
  | All_indices
  | Masked_view of Container.t * Ops.mask option

val install : Minivm.Env.t -> unit
(** Installs the interpreter hooks (process-global) and seeds the
    environment with the [gb]-style builtins: [Vector], [Matrix],
    [Semiring], [Monoid], [BinaryOp], [UnaryOp], [Accumulator],
    [Replace], [NoMask], [AllIndices], [reduce], [apply],
    [reduce_rows], [select], [label_onehot], [label_decode]. *)

val wrap_container : Container.t -> Minivm.Value.t
val unwrap_container : Minivm.Value.t -> Container.t
(** @raise Minivm.Value.Type_error *)

(** {2 Host-side glue}

    Shared by the label-propagation DSL tier and the VM builtins of the
    same names — both tiers must scatter and decode identically for
    bit-identity. *)

val label_onehot_into : Container.t -> Container.t -> unit
(** [label_onehot_into labels onehot] clears [onehot] and sets
    [onehot[v, labels v] = 1] for every entry of [labels]. *)

val label_decode_into : Container.t -> Container.t -> unit
(** [label_decode_into best labels] decodes the argmax encoding
    [count * (n+1) + (n - label)]: for every entry [(v, b)] of [best],
    sets [labels v := n - (b mod (n+1))]. *)

(** {2 Registry for static analysis}

    The surface [install] provides, as data: the analyzer's scope/arity
    checker validates MiniVM programs against these without running
    them. *)

val known_attrs : string list
(** Attributes foreign containers/expressions answer ([.T], [.nvals],
    [.size], [.shape], [.dtype]). *)

val known_methods : (string * int list) list
(** Foreign method names with their accepted argument counts. *)

val builtin_arities : (string * int list) list
(** Bridge builtins with their accepted argument counts ([Vector]'s
    1-argument form also accepts a list literal). *)
