type mode = Blocking | Nonblocking

let current = ref Blocking

let mode () = !current
let set_mode m = current := m

let with_mode m f =
  let prev = !current in
  current := m;
  Fun.protect ~finally:(fun () -> current := prev) f

(* Set while a MiniVM program is interpreting (the tier-1 path): the
   scheduler then runs plans in deterministic sequential topological
   order even if a domain pool is configured. *)
let force_sequential = ref false

let with_sequential f =
  let prev = !force_sequential in
  force_sequential := true;
  Fun.protect ~finally:(fun () -> force_sequential := prev) f

(* Installed by Exec (lib/exec) at module initialization.  Stored as
   [Obj.t] because the hook types mention [Expr.t], which is defined
   after this module; [Expr.force] downcasts at the call site.  The same
   technique the JIT dispatch table uses for kernels. *)

let evaluator : Obj.t option ref = ref None
(* ?mask:Expr.mask_spec -> Expr.t -> Container.t *)

let reducer : Obj.t option ref = ref None
(* op:string -> identity:string -> Expr.t -> float *)
