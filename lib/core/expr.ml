open Gbtl

exception Eval_error of string

let eerr fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

type t =
  | Leaf of Container.t
  | Transpose of t
  | MatMul of { a : t; b : t; sr : Jit.Op_spec.semiring }
  | EwiseAdd of { a : t; b : t; op : string }
  | EwiseMult of { a : t; b : t; op : string }
  | Apply of { f : Jit.Op_spec.unary; x : t }
  | ReduceRows of { op : string; identity : string; x : t }
  | ExtractVec of { x : t; idx : Index_set.t }
  | ExtractMat of { x : t; rows : Index_set.t; cols : Index_set.t }
  | Select of { pred : Select.predicate; x : t }

type mask_spec = { container : Container.t; complemented : bool }

let of_container c = Leaf c

let matmul a b = MatMul { a; b; sr = Context.current_semiring () }
let add a b = EwiseAdd { a; b; op = Context.current_add_binop () }
let mult a b = EwiseMult { a; b; op = Context.current_mult_binop () }
let transpose x = Transpose x

let apply ?f x =
  let f = match f with Some f -> f | None -> Context.current_unary () in
  Apply { f; x }

let reduce_rows x =
  let op, identity = Context.current_monoid () in
  ReduceRows { op; identity; x }

let extract_vec x idx = ExtractVec { x; idx }
let extract_mat x rows cols = ExtractMat { x; rows; cols }
let select pred x = Select { pred; x }

let rec result_dtype = function
  | Leaf c -> Container.dtype c
  | Transpose x | Apply { x; _ } | ReduceRows { x; _ }
  | ExtractVec { x; _ } | ExtractMat { x; _ } | Select { x; _ } ->
    result_dtype x
  | MatMul { a; b; _ } | EwiseAdd { a; b; _ } | EwiseMult { a; b; _ } ->
    Dtype.promote (result_dtype a) (result_dtype b)

(* Cast a container to the expression dtype when needed. *)
let unify (Dtype.P _ as packed) c =
  if Dtype.equal_packed (Container.dtype c) packed then c
  else Container.cast packed c

let mmask_of_spec spec =
  match spec.container with
  | Container.Mat (dt, m) ->
    ignore dt;
    Gbtl.Mask.mmask ~complemented:spec.complemented m
  | Container.Vec _ -> eerr "matrix operation masked by a vector"

(* Operation fusion toggle (exposed for the ablation benchmark). *)
let fusion_enabled = ref true
let set_fusion b = fusion_enabled := b
let fusion () = !fusion_enabled

(* Does evaluating the expression hand back a container owned by the
   user (which must not be mutated)? *)
let rec borrows_container = function
  | Leaf _ -> true
  | Transpose x -> borrows_container x
  | MatMul _ | EwiseAdd _ | EwiseMult _ | Apply _ | ReduceRows _
  | ExtractVec _ | ExtractMat _ | Select _ ->
    false

(* The container kind an expression will evaluate to, decidable without
   evaluation (used to gate the fused-module path). *)
let rec static_kind = function
  | Leaf (Container.Vec _) -> `Vec
  | Leaf (Container.Mat _) -> `Mat
  | Transpose x | Apply { x; _ } -> static_kind x
  | MatMul { a; b; _ } -> (
    match static_kind a, static_kind b with
    | `Mat, `Mat -> `Mat
    | `Mat, `Vec | `Vec, `Mat | `Vec, `Vec -> `Vec)
  | EwiseAdd { a; _ } | EwiseMult { a; _ } -> static_kind a
  | ReduceRows _ | ExtractVec _ -> `Vec
  | ExtractMat _ -> `Mat
  | Select { x; _ } -> static_kind x

(* Fused-module detection: an apply-chain whose base is an element-wise
   operation over vectors compiles into one kernel (paper §V's "single
   binary module containing all the previously deferred operations"). *)
let fused_candidate f x =
  if not !fusion_enabled then None
  else begin
    let rec collect acc = function
      | Apply { f; x } -> collect (f :: acc) x
      | base -> (acc, base)
    in
    match collect [ f ] x with
    | chain, EwiseAdd { a; b; op }
      when static_kind a = `Vec && static_kind b = `Vec ->
      Some (chain, `Add, op, a, b)
    | chain, EwiseMult { a; b; op }
      when static_kind a = `Vec && static_kind b = `Vec ->
      Some (chain, `Mult, op, a, b)
    | _, _ -> None
  end

(* Evaluate an operand, absorbing transpose wrappers into a flag. *)
let rec eval_operand e =
  match e with
  | Transpose x ->
    let c, t = eval_operand x in
    (c, not t)
  | e -> (eval e, false)

and eval ?mask (e : t) : Container.t =
  match e with
  | Leaf c -> c
  | Transpose x -> (
    let c, transposed = eval_operand (Transpose x) in
    match c, transposed with
    | c, false -> c
    | Container.Mat (dt, m), true ->
      Container.Mat (dt, Jit.Kernels.transpose_m dt m)
    | Container.Vec _, true -> c (* vector transpose is the identity *))
  | MatMul { a; b; sr } -> (
    let ca, ta = eval_operand a in
    let cb, tb = eval_operand b in
    let (Dtype.P dt) =
      Dtype.promote (Container.dtype ca) (Container.dtype cb)
    in
    let ca = unify (Dtype.P dt) ca and cb = unify (Dtype.P dt) cb in
    match ca, cb with
    | Container.Mat (_, _), Container.Mat (_, _) ->
      let ma = Container.as_matrix dt ca and mb = Container.as_matrix dt cb in
      let mask =
        match mask with
        | Some spec -> mmask_of_spec spec
        | None -> Gbtl.Mask.No_mmask
      in
      Container.Mat
        (dt, Jit.Kernels.mxm dt sr ~transpose_a:ta ~transpose_b:tb ~mask ma mb)
    | Container.Mat (_, _), Container.Vec (_, _) ->
      let m = Container.as_matrix dt ca and v = Container.as_vector dt cb in
      let out_size = if ta then Smatrix.ncols m else Smatrix.nrows m in
      let entries = Jit.Kernels.mxv dt sr ~transpose:ta m v in
      let out = Svector.create dt out_size in
      Svector.replace_contents out entries;
      Container.Vec (dt, out)
    | Container.Vec (_, _), Container.Mat (_, _) ->
      let v = Container.as_vector dt ca and m = Container.as_matrix dt cb in
      let out_size = if tb then Smatrix.nrows m else Smatrix.ncols m in
      let entries = Jit.Kernels.vxm dt sr ~transpose:tb v m in
      let out = Svector.create dt out_size in
      Svector.replace_contents out entries;
      Container.Vec (dt, out)
    | Container.Vec (_, _), Container.Vec (_, _) ->
      eerr "@ between two vectors (use eWiseMult + reduce for a dot product)")
  | EwiseAdd { a; b; op } -> eval_ewise `Add op a b
  | EwiseMult { a; b; op } -> eval_ewise `Mult op a b
  | Apply { f; x } when fused_candidate f x <> None -> (
    (* one compiled module for the whole apply-over-eWise pipeline *)
    match fused_candidate f x with
    | None -> assert false
    | Some (chain, kind, op, a, b) ->
      let ca, _ = eval_operand a in
      let cb, _ = eval_operand b in
      let (Dtype.P dt) =
        Dtype.promote (Container.dtype ca) (Container.dtype cb)
      in
      let ca = unify (Dtype.P dt) ca and cb = unify (Dtype.P dt) cb in
      let u = Container.as_vector dt ca and v = Container.as_vector dt cb in
      if Svector.size u <> Svector.size v then
        eerr "element-wise operation on vectors of sizes %d and %d"
          (Svector.size u) (Svector.size v);
      let entries = Jit.Kernels.ewise_fused_v kind dt ~op ~chain u v in
      let out = Svector.create dt (Svector.size u) in
      Svector.replace_contents out entries;
      Container.Vec (dt, out))
  | Apply { f; x } -> (
    let c, transposed = eval_operand x in
    (* Operation fusion (the paper's §V planned lazy-evaluation feature):
       when the operand is itself a computed temporary (not a leaf
       borrowed from the user), map the unary over it in place instead of
       dispatching a second kernel into a fresh container. *)
    let fresh = !fusion_enabled && not (borrows_container x) in
    match c with
    | Container.Vec (dt, v) ->
      if fresh then begin
        Svector.map_inplace v
          ~f:(Jit.Op_spec.instantiate_unary dt f).Unaryop.f;
        c
      end
      else begin
        let entries = Jit.Kernels.apply_v dt f v in
        let out = Svector.create dt (Svector.size v) in
        Svector.replace_contents out entries;
        Container.Vec (dt, out)
      end
    | Container.Mat (dt, m) ->
      if fresh && not transposed then begin
        Smatrix.map_inplace m
          ~f:(Jit.Op_spec.instantiate_unary dt f).Unaryop.f;
        c
      end
      else Container.Mat (dt, Jit.Kernels.apply_m dt f ~transpose:transposed m))
  | ReduceRows { op; identity; x } -> (
    let c, transposed = eval_operand x in
    match c with
    | Container.Mat (dt, m) ->
      let entries =
        Jit.Kernels.reduce_rows dt ~op ~identity ~transpose:transposed m
      in
      let size = if transposed then Smatrix.ncols m else Smatrix.nrows m in
      let out = Svector.create dt size in
      Svector.replace_contents out entries;
      Container.Vec (dt, out)
    | Container.Vec _ -> eerr "reduce_rows on a vector")
  | ExtractVec { x; idx } -> (
    match eval x with
    | Container.Vec (dt, v) ->
      let out =
        Svector.create dt (Index_set.length idx (Svector.size v))
      in
      Extract.vector ~out v idx;
      Container.Vec (dt, out)
    | Container.Mat _ -> eerr "vector extract on a matrix")
  | ExtractMat { x; rows; cols } -> (
    let c, transposed = eval_operand x in
    match c with
    | Container.Mat (dt, m) ->
      let nrows = if transposed then Smatrix.ncols m else Smatrix.nrows m in
      let ncols = if transposed then Smatrix.nrows m else Smatrix.ncols m in
      let out =
        Smatrix.create dt
          (Index_set.length rows nrows)
          (Index_set.length cols ncols)
      in
      Extract.matrix ~out ~transpose:transposed m rows cols;
      Container.Mat (dt, out)
    | Container.Vec _ -> eerr "matrix extract on a vector")
  | Select { pred; x } -> (
    match eval x with
    | Container.Vec (dt, v) ->
      let out = Svector.create dt (Svector.size v) in
      Gbtl.Select.vector pred ~out v;
      Container.Vec (dt, out)
    | Container.Mat (dt, m) ->
      let out = Smatrix.create dt (Smatrix.nrows m) (Smatrix.ncols m) in
      Gbtl.Select.matrix pred ~out m;
      Container.Mat (dt, out))

and eval_ewise kind op a b =
  let ca, ta = eval_operand a in
  let cb, tb = eval_operand b in
  let (Dtype.P dt) = Dtype.promote (Container.dtype ca) (Container.dtype cb) in
  let ca = unify (Dtype.P dt) ca and cb = unify (Dtype.P dt) cb in
  match ca, cb with
  | Container.Vec (_, _), Container.Vec (_, _) ->
    let u = Container.as_vector dt ca and v = Container.as_vector dt cb in
    if Svector.size u <> Svector.size v then
      eerr "element-wise operation on vectors of sizes %d and %d"
        (Svector.size u) (Svector.size v);
    let entries = Jit.Kernels.ewise_v kind dt ~op u v in
    let out = Svector.create dt (Svector.size u) in
    Svector.replace_contents out entries;
    Container.Vec (dt, out)
  | Container.Mat (_, _), Container.Mat (_, _) ->
    let ma = Container.as_matrix dt ca and mb = Container.as_matrix dt cb in
    Container.Mat
      (dt, Jit.Kernels.ewise_m kind dt ~op ~transpose_a:ta ~transpose_b:tb ma mb)
  | Container.Vec _, Container.Mat _ | Container.Mat _, Container.Vec _ ->
    eerr "element-wise operation between a vector and a matrix"

let force_blocking ?mask e = eval ?mask e

(* Terminating operations divert to the nonblocking engine when one is
   installed and the mode asks for it; [lib/exec] registers the hooks at
   initialization (see Exec_hook). *)
let force ?mask e =
  match Exec_hook.mode (), !Exec_hook.evaluator with
  | Exec_hook.Nonblocking, Some f ->
    (Obj.obj f : ?mask:mask_spec -> t -> Container.t) ?mask e
  | (Exec_hook.Blocking | Exec_hook.Nonblocking), _ -> eval ?mask e

let reduce_scalar_blocking ~op ~identity e =
  match eval e with
  | Container.Vec (dt, v) ->
    Dtype.to_float dt (Jit.Kernels.reduce_v_scalar dt ~op ~identity v)
  | Container.Mat (dt, m) ->
    Dtype.to_float dt (Jit.Kernels.reduce_m_scalar dt ~op ~identity m)

let reduce_scalar e =
  let op, identity = Context.current_monoid () in
  match Exec_hook.mode (), !Exec_hook.reducer with
  | Exec_hook.Nonblocking, Some f ->
    (Obj.obj f : op:string -> identity:string -> t -> float) ~op ~identity e
  | (Exec_hook.Blocking | Exec_hook.Nonblocking), _ ->
    reduce_scalar_blocking ~op ~identity e
