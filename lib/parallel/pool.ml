(* Shared, lazily-started domain pool: one set of helper domains sized
   by OGB_DOMAINS, reused by both the exec scheduler (inter-op node
   workers) and the kernels (intra-op chunked parallel-for), so the two
   levels of parallelism cooperate over one budget instead of
   oversubscribing the machine.

   Determinism contract: {!parallel_for} splits [0, n) into fixed-size
   chunks whose boundaries are a pure function of [n] and [grain] —
   never of the domain count or of scheduling order.  Callers either
   write disjoint output slices per chunk (gather/dense kernels) or
   combine per-chunk partials with their monoid in ascending chunk
   order (reduce/scatter kernels, gated to exactly-associative
   operators by the callers), so results are bit-identical at every
   OGB_DOMAINS value, including 1.

   Failure containment: a chunk failure (including the par.worker.exn
   injection point) marks the job failed, remaining chunks are
   abandoned, in-flight chunks drain, and the caller re-executes every
   chunk sequentially — chunk bodies are required to be idempotent
   (pure writes into caller-owned buffers), which every kernel in this
   repository satisfies. *)

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None -> None)

(* -- domain-count resolution (shared with the exec scheduler) -- *)

let override_domains = ref None
let set_domains n = override_domains := Some (max 1 n)
let clear_domains_override () = override_domains := None

let domains () =
  match !override_domains with
  | Some n -> n
  | None -> (
    match env_int "OGB_DOMAINS" with
    | Some n when n >= 1 -> n
    | Some _ -> 1
    | None -> min 4 (Domain.recommended_domain_count ()))

let workers () = domains () - 1

(* -- size threshold and grain planning -- *)

let default_threshold = 4096
let override_threshold = ref None
let set_threshold n = override_threshold := Some (max 0 n)
let clear_threshold_override () = override_threshold := None

let threshold () =
  match !override_threshold with
  | Some n -> n
  | None -> (
    match env_int "OGB_PAR_THRESHOLD" with
    | Some n when n >= 0 -> n
    | _ -> default_threshold)

let with_threshold n f =
  let saved = !override_threshold in
  override_threshold := Some (max 0 n);
  Fun.protect ~finally:(fun () -> override_threshold := saved) f

let pow2_ceil x =
  let r = ref 1 in
  while !r < x do
    r := !r * 2
  done;
  !r

(* Grain is a pure function of the loop length (power-of-two bucketed so
   per-grain JIT keys stay few): at most [divisor] chunks, at least 64
   iterations each.  The default divisor 16 over-decomposes a 4-domain
   pool for load balance; merge-style kernels (scatter push) pass 4 to
   bound the per-chunk accumulator memory.

   A calibration hook (installed by lib/cost, which sits above this
   library) may coarsen the grain from measured per-item chunk timings.
   Coarsen only: the [divisor] bound exists so merge-style kernels cap
   their per-chunk accumulator memory at [divisor] buffers, and a finer
   grain would break that.  The result stays a power of two (bucketed
   JIT keys) and never exceeds the loop, so determinism and the chunk
   contract are unchanged — only chunk boundaries move, and kernels are
   bit-identical across chunkings by construction. *)
let grain_hook : (n:int -> base:int -> int option) ref =
  ref (fun ~n:_ ~base:_ -> None)

let set_grain_hook f = grain_hook := f
let clear_grain_hook () = grain_hook := fun ~n:_ ~base:_ -> None

let with_grain_hook f k =
  let saved = !grain_hook in
  grain_hook := f;
  Fun.protect ~finally:(fun () -> grain_hook := saved) k

let grain_for ?(divisor = 16) n =
  let base = max 64 (pow2_ceil ((n + divisor - 1) / divisor)) in
  match !grain_hook ~n ~base with
  | None -> base
  | Some g -> min (pow2_ceil (max g base)) (pow2_ceil (max 1 n))

let plan ?divisor ~work ~n () =
  if workers () < 1 || work < threshold () || n < 2 then None
  else
    let g = grain_for ?divisor n in
    if n <= g then None else Some g

(* -- pool state: task queue + lazily spawned worker domains -- *)

let qlock = Mutex.create ()
let qcv = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let spawned : unit Domain.t list ref = ref []
let quit = ref false
let idle = ref 0

(* management operations (spawn/resize/shutdown) serialize here; the
   queue lock stays fine-grained *)
let mgmt = Mutex.create ()

(* -- counters (surfaced through Jit_stats / ogb doctor) -- *)

let stats_lock = Mutex.create ()
let par_jobs = ref 0 (* parallel_for calls that used the pool *)
let seq_jobs = ref 0 (* parallel_for calls run inline (no pool help) *)
let chunks_run = ref 0 (* chunk bodies executed (all domains) *)
let tasks_run = ref 0 (* pool tasks executed by worker domains *)
let degrades = ref 0 (* jobs re-run sequentially after a chunk failure *)
let busy = ref 0.0 (* seconds spent inside chunk bodies *)
let items_run = ref 0 (* loop iterations covered by those chunk bodies *)

let bump c = Mutex.protect stats_lock (fun () -> incr c)

let counters () =
  Mutex.protect stats_lock (fun () ->
      [ ("par_jobs", !par_jobs);
        ("seq_jobs", !seq_jobs);
        ("chunks", !chunks_run);
        ("tasks", !tasks_run);
        ("degrades", !degrades);
        ("items", !items_run) ])

let busy_seconds () = Mutex.protect stats_lock (fun () -> !busy)

let reset_counters () =
  Mutex.protect stats_lock (fun () ->
      par_jobs := 0;
      seq_jobs := 0;
      chunks_run := 0;
      tasks_run := 0;
      degrades := 0;
      busy := 0.0;
      items_run := 0)

(* -- worker domains -- *)

let rec worker_loop () =
  Mutex.lock qlock;
  incr idle;
  while Queue.is_empty queue && not !quit do
    Condition.wait qcv qlock
  done;
  decr idle;
  if not (Queue.is_empty queue) then begin
    let task = Queue.pop queue in
    Mutex.unlock qlock;
    bump tasks_run;
    (try task () with _ -> ());
    worker_loop ()
  end
  else (* quit, queue drained *)
    Mutex.unlock qlock

let shutdown () =
  Mutex.protect mgmt @@ fun () ->
  let ds =
    Mutex.protect qlock (fun () ->
        quit := true;
        Condition.broadcast qcv;
        let ds = !spawned in
        spawned := [];
        ds)
  in
  List.iter Domain.join ds;
  Mutex.protect qlock (fun () -> quit := false)

let () = at_exit shutdown

let spawned_count () = Mutex.protect qlock (fun () -> List.length !spawned)

let ensure_started () =
  let want = workers () in
  if spawned_count () <> want then begin
    if spawned_count () > 0 then shutdown ();
    if want > 0 then
      Mutex.protect mgmt (fun () ->
          Mutex.protect qlock (fun () ->
              if !spawned = [] then
                spawned := List.init want (fun _ -> Domain.spawn worker_loop)))
  end

(* Enqueue up to [min k free-workers] copies of [make_task ()]; stale
   tasks must be cheap no-ops (every consumer below checks shared job
   state first), so capping by currently idle workers only bounds queue
   garbage, not correctness. *)
let submit_capped k make_task =
  Mutex.protect qlock (fun () ->
      let free = max 0 (!idle - Queue.length queue) in
      let take = min free k in
      for _ = 1 to take do
        Queue.push (make_task ()) queue
      done;
      if take > 0 then Condition.broadcast qcv;
      take)

(* -- domain-budget negotiation with the exec scheduler -- *)

let active_nodes = Atomic.make 0
let enter_node () = Atomic.incr active_nodes
let leave_node () = Atomic.decr active_nodes

(* Per-caller budget cap (domain-local): the server brackets each
   session's request in [with_budget_cap] so one tenant's kernels can
   claim at most its configured share of the pool, however idle the
   rest of the machine is.  The cap rides on the calling domain because
   that is where [parallel_for] decides how many helpers to request. *)
let budget_cap_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref max_int)

let with_budget_cap n f =
  let cap = Domain.DLS.get budget_cap_key in
  let saved = !cap in
  cap := max 1 n;
  Fun.protect ~finally:(fun () -> cap := saved) f

(* A node running alone (or a kernel called outside the scheduler) gets
   the whole pool; [k] concurrently executing nodes split it; a session
   cap clamps the result regardless. *)
let budget () =
  let a = max 1 (Atomic.get active_nodes) in
  let cap = !(Domain.DLS.get budget_cap_key) in
  max 1 (min cap ((workers () + 1) / a))

(* -- chunked parallel for -- *)

let run_chunks_seq ~n ~grain body =
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + grain) in
    body !lo hi;
    lo := hi
  done

let parallel_for ~n ~grain body =
  if n > 0 then begin
    let g = max 1 grain in
    let nchunks = (n + g - 1) / g in
    let helpers_wanted = min (budget () - 1) (nchunks - 1) in
    if nchunks < 2 || helpers_wanted < 1 || workers () < 1 then begin
      bump seq_jobs;
      run_chunks_seq ~n ~grain:g body
    end
    else begin
      ensure_started ();
      let jm = Mutex.create () in
      let jcv = Condition.create () in
      let next = ref 0 in
      let running = ref 0 in
      let failed = ref None in
      let participate () =
        let continue_ = ref true in
        while !continue_ do
          Mutex.lock jm;
          if !failed <> None || !next >= nchunks then begin
            Mutex.unlock jm;
            continue_ := false
          end
          else begin
            let ci = !next in
            incr next;
            incr running;
            Mutex.unlock jm;
            let res =
              try
                if Fault.fire "par.worker.exn" then
                  raise (Fault.Injected "par.worker.exn");
                if Fault.fire "par.worker.slow" then Unix.sleepf 0.005;
                let lo = ci * g and hi = min n ((ci + 1) * g) in
                let t0 = Unix.gettimeofday () in
                body lo hi;
                let dt = Unix.gettimeofday () -. t0 in
                Mutex.protect stats_lock (fun () ->
                    incr chunks_run;
                    items_run := !items_run + (hi - lo);
                    busy := !busy +. dt);
                None
              with e -> Some e
            in
            Mutex.lock jm;
            decr running;
            (match res with
            | Some e -> if !failed = None then failed := Some e
            | None -> ());
            if !running = 0 then Condition.broadcast jcv;
            Mutex.unlock jm
          end
        done
      in
      ignore (submit_capped helpers_wanted (fun () -> participate));
      bump par_jobs;
      participate ();
      Mutex.lock jm;
      while !running > 0 do
        Condition.wait jcv jm
      done;
      let err = !failed in
      Mutex.unlock jm;
      match err with
      | None -> ()
      | Some _ ->
        (* containment: chunk bodies are idempotent, so re-running every
           chunk sequentially (injection sites not consulted — they
           belong to the pool path) recovers exactly the sequential
           result; a genuine kernel bug re-raises here. *)
        bump degrades;
        run_chunks_seq ~n ~grain:g body
    end
  end

(* -- long-lived helper tasks for the exec scheduler -- *)

type handle = { hm : Mutex.t; hcv : Condition.t; mutable left : int }

let spawn_helpers k f =
  let h = { hm = Mutex.create (); hcv = Condition.create (); left = 0 } in
  if k > 0 && workers () > 0 then begin
    ensure_started ();
    h.left <- k;
    let task () =
      (try f () with _ -> ());
      Mutex.protect h.hm (fun () ->
          h.left <- h.left - 1;
          if h.left <= 0 then Condition.broadcast h.hcv)
    in
    let took = submit_capped k (fun () -> task) in
    Mutex.protect h.hm (fun () ->
        h.left <- h.left - (k - took);
        if h.left <= 0 then Condition.broadcast h.hcv)
  end;
  h

let join h =
  Mutex.lock h.hm;
  while h.left > 0 do
    Condition.wait h.hcv h.hm
  done;
  Mutex.unlock h.hm

(* Native plugins (Dynlink'd kernel modules) link only against
   Jit_plugin_api; installing the pool's parallel-for there at startup
   lets generated parallel kernels share this pool too. *)
let () = Jit_plugin_api.par_for := fun ~n ~grain f -> parallel_for ~n ~grain f
