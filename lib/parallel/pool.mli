(** Shared, lazily-started domain pool for intra-op (chunked kernels)
    and inter-op (exec scheduler) parallelism.

    Sized by [OGB_DOMAINS] (helper domains = domains − 1; the caller is
    the remaining worker).  Chunk boundaries in {!parallel_for} are a
    pure function of the loop length — never of the domain count — so a
    kernel that writes disjoint slices per chunk, or combines per-chunk
    partials with an exactly-associative monoid in ascending chunk
    order, produces bit-identical results at every domain count. *)

val domains : unit -> int
(** Resolved domain budget: programmatic override, else [OGB_DOMAINS],
    else [min 4 (Domain.recommended_domain_count ())]. *)

val set_domains : int -> unit
(** Override the domain budget (clamped to ≥ 1).  The pool resizes
    lazily on the next use. *)

val clear_domains_override : unit -> unit

val workers : unit -> int
(** Helper domains the pool may run ([domains () - 1]). *)

val threshold : unit -> int
(** Minimum work (loop-body executions) below which kernels stay on
    their sequential twins; override, else [OGB_PAR_THRESHOLD], else
    4096. *)

val set_threshold : int -> unit
val clear_threshold_override : unit -> unit

val with_threshold : int -> (unit -> 'a) -> 'a
(** Run with a temporary threshold override (restored afterwards). *)

val grain_for : ?divisor:int -> int -> int
(** Chunk length for a loop of the given length: at most [divisor]
    (default 16) chunks of at least 64 iterations, power-of-two
    bucketed so per-grain JIT cache keys stay few.  Pure in its
    arguments given a fixed {!set_grain_hook} installation — this is
    what keeps chunked folds deterministic. *)

val set_grain_hook : (n:int -> base:int -> int option) -> unit
(** Install a calibration-aware grain policy (lib/cost does this at
    startup from persisted per-item chunk timings).  The hook receives
    the loop length and the power-of-two [base] grain and may return a
    coarser suggestion; {!grain_for} clamps the result to
    [[base, pow2_ceil n]] and re-buckets it to a power of two, so the
    hook can only merge chunks, never fragment below the [divisor]
    memory bound.  [None] keeps the default formula. *)

val clear_grain_hook : unit -> unit

val with_grain_hook : (n:int -> base:int -> int option) -> (unit -> 'a) -> 'a
(** Run with a temporary grain hook, restoring whatever hook was
    installed before (e.g. the lib/cost calibration hook) afterwards —
    unlike {!clear_grain_hook}, which would drop it for good.  Tests
    that force a specific grain use this. *)

val plan : ?divisor:int -> work:int -> n:int -> unit -> int option
(** [Some grain] when a kernel with [work] body executions over a loop
    of length [n] should dispatch its parallel variant; [None] keeps
    the sequential twin (small operand, single-domain budget, or a loop
    too short to split). *)

val parallel_for : n:int -> grain:int -> (int -> int -> unit) -> unit
(** [parallel_for ~n ~grain body] runs [body lo hi] over consecutive
    chunks of [0, n).  The caller participates; idle pool workers claim
    chunks concurrently.  Chunk bodies must be idempotent and must only
    write caller-owned state disjoint per chunk: on a chunk failure
    (e.g. the [par.worker.exn] injection point) the job degrades to a
    sequential re-run of every chunk. *)

type handle
(** Completion handle for {!spawn_helpers}. *)

val spawn_helpers : int -> (unit -> unit) -> handle
(** Offer up to [k] copies of a worker function to idle pool domains
    (the exec scheduler's inter-op workers).  Fewer (possibly zero) may
    actually start when the pool is busy or smaller; the function must
    be written so the caller completes all work alone in that case. *)

val join : handle -> unit
(** Wait until every actually-started helper has returned. *)

val enter_node : unit -> unit
val leave_node : unit -> unit
(** Domain-budget negotiation: the scheduler brackets each node's
    execution so {!budget} can split the pool between concurrently
    running nodes. *)

val budget : unit -> int
(** Domains available to one kernel right now: the whole pool when
    nothing else runs, [pool / active-nodes] under the scheduler —
    clamped by the calling domain's {!with_budget_cap} if one is
    active. *)

val with_budget_cap : int -> (unit -> 'a) -> 'a
(** [with_budget_cap k f] runs [f] with this domain's kernels limited
    to at most [k] domains of pool help (clamped to ≥ 1; restored
    afterwards).  The server wraps each session request in this so
    concurrent tenants split the pool by configuration instead of by
    arrival order. *)

val counters : unit -> (string * int) list
(** [par_jobs], [seq_jobs], [chunks], [tasks], [degrades], [items]
    (loop iterations covered by timed chunk bodies — with
    {!busy_seconds} this is the pool's per-item calibration signal). *)

val busy_seconds : unit -> float
(** Cumulative wall time spent inside chunk bodies (all domains). *)

val reset_counters : unit -> unit

val shutdown : unit -> unit
(** Join all pool domains (registered [at_exit]; also used before
    resizing). *)
