(** Persisted cost-model coefficients, calibrated from measured kernel
    timings.

    The scheduler and the pool record per-family execution timings
    ({!Jit.Jit_stats.record_kernel_time}, [Parallel.Pool.counters]);
    {!absorb} normalizes them into ns/item coefficients, and {!save}
    persists them as a versioned, checksummed file next to the JIT disk
    cache.  {!load} runs lazily on first query: a missing file means
    uncalibrated defaults, and a corrupt file (bad header, bad
    checksum, or the [cost.calib.corrupt] injection point) is loudly
    quarantined to [.bad] — mirroring the JIT cache quarantine — and
    falls back to the defaults, never to garbage coefficients.

    At module initialization this installs the pool's calibration-aware
    grain hook ({!Parallel.Pool.set_grain_hook}): when a [pool.chunk]
    coefficient is known, chunk grains are coarsened so one chunk costs
    roughly [chunk_target_ns]; without data the pool keeps its fixed
    power-of-two formula. *)

val path : unit -> string
(** Calibration file ([calibration.v1] inside {!Jit.Disk_cache.dir}). *)

val generation : unit -> int
(** Version of the loaded calibration: 0 when uncalibrated, else the
    generation counter persisted in the file (bumped by every {!save}).
    Schedule caches key on this so re-calibration invalidates them. *)

val calibrated : unit -> bool

val ns_per_item : string -> float option
(** Calibrated coefficient for a kernel family ("mxv_pull",
    "pool.chunk", …), in nanoseconds per item; [None] when the family
    has no measured data. *)

val absorb : unit -> int
(** Fold the timing tallies currently in [Jit_stats] (and the pool's
    busy-time counters) into the in-memory coefficient table, averaging
    with previously loaded values.  Returns the number of families
    updated. *)

val save : unit -> (string, string) result
(** {!absorb}, bump the generation and atomically persist.  [Ok path]
    on success. *)

val reload : unit -> unit
(** Drop in-memory state and re-read the file on next query (tests and
    the daemon's reload path). *)

val quarantines : unit -> int
(** Corrupt calibration files moved aside since startup. *)

val chunk_target_ns : float
(** Per-chunk duration the grain hook aims for. *)

val summary : unit -> (string * float * int) list
(** [(family, ns/item, samples)] for every loaded/absorbed coefficient,
    sorted by family — surfaced by [ogb analyze]. *)
