(** Per-node cost model over neutral node descriptors.

    The planner (lib/exec) summarizes each plan node into a
    {!node_desc} — kernel family, an item count standing for the work
    the kernel will touch, plus flags for a CSC build and an expected
    fresh compile — and this module prices it in nanoseconds using the
    calibrated coefficients ({!Calibration.ns_per_item}) with built-in
    defaults as fallback.  The defaults are chosen so the uncalibrated
    model reproduces the PR 2 push/pull heuristic (pull/push coefficient
    ratio = the 1/4 fill threshold); calibration is what lets the
    planner disagree with the greedy choice. *)

type node_desc = {
  family : string;  (** kernel family, e.g. "mxv_pull", "ewise_v" *)
  items : int;  (** work estimate: entries the kernel touches *)
  csc_items : int;  (** nnz to convert if a CSC build is required, else 0 *)
  fresh_compile : bool;  (** signature likely not yet in the JIT cache *)
}

val default_ns_per_item : string -> float
(** Built-in fallback coefficient for a family (ns/item). *)

val ns_per_item : string -> float
(** Calibrated coefficient when available, else the default. *)

val node_ns : node_desc -> float
(** Predicted cost of one node in nanoseconds. *)

val families : string list
(** Families the model knows defaults for (documentation/analyze). *)
