(** Serialized execution schedules: which rewrite rules fire and which
    direction transposed Mat×Vec nodes take.

    This is the value the planner searches over, the value [OGB_SCHEDULE]
    / [--schedule] pins for A/B benching, and the value the schedule
    cache stores.  Grammar (comma-separated, order-free):

    {v
    fuse=on|off                   all three fusion rules at once
    sink_transpose=on|off         individual rewrite rules
    apply_chain=on|off
    apply_ewise=on|off
    mult_reduce=on|off
    push_mask=on|off
    layout=auto|pull|push|csr     direction policy for transposed mxv
                                  (csr is an alias for push: stay on the
                                  CSR scatter kernel, build no CSC)
    node<i>.layout=auto|pull|push per-node pin (planner output)
    v}

    An empty string or "default" is the all-on, auto-layout schedule. *)

type layout_choice = Auto | Pull | Push

type t = {
  rules : (string * bool) list;  (** rule overrides; missing = enabled *)
  layout : layout_choice;  (** global direction policy *)
  node_layouts : (int * layout_choice) list;  (** per-node pins *)
}

val rule_names : string list
val fusion_rules : string list
(** The three producer-into-consumer fusion rules the planner searches
    over (subset of {!rule_names}). *)

val default : t
val is_default : t -> bool
val rule_enabled : t -> string -> bool
val node_layout : t -> int -> layout_choice
(** Per-node pin when present, else the global policy. *)

val with_rule : t -> string -> bool -> t
val with_node_layout : t -> int -> layout_choice -> t

val canonical : t -> t
(** Drop redundant overrides (enabled rules, [Auto] pins) and sort, so
    structurally equal schedules serialize identically. *)

val parse : string -> (t, string) result
val to_string : t -> string
(** Canonical serialization ("default" for {!default}); [parse] and
    [to_string] round-trip. *)

val equal : t -> t -> bool

val of_env : unit -> t option
(** The schedule pinned by [OGB_SCHEDULE], if any.  A malformed value
    is a loud no-op on stderr (like [OGB_FAULTS]). *)
