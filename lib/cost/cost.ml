(* Cost-model-driven planning support: calibrated per-node cost model
   (Model) backed by a persisted coefficient store (Calibration), and
   the serialized schedule values the planner searches and OGB_SCHEDULE
   pins (Schedule).  The planner itself lives in lib/exec (it needs the
   plan representation); this layer is deliberately below exec so the
   JIT, the pool and the bench can share it. *)

module Calibration = Calibration
module Model = Model
module Schedule = Schedule
