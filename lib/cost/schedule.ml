type layout_choice = Auto | Pull | Push

type t = {
  rules : (string * bool) list;
  layout : layout_choice;
  node_layouts : (int * layout_choice) list;
}

(* The three fuse=... rules are the multi-op fusions PR 1 gates behind
   Expr.fusion; sink_transpose and push_mask are the structural
   rewrites.  Names match Rewrite's pass/event names. *)
let fusion_rules = [ "apply_chain"; "apply_ewise"; "mult_reduce" ]
let rule_names = "sink_transpose" :: fusion_rules @ [ "push_mask" ]

let default = { rules = []; layout = Auto; node_layouts = [] }

(* keep only overrides that differ from the default (rules enabled,
   layout auto), sorted — the canonical form to_string/equal use *)
let canonical t =
  { t with
    rules = List.sort compare (List.filter (fun (_, on) -> not on) t.rules);
    node_layouts =
      List.sort compare (List.filter (fun (_, l) -> l <> Auto) t.node_layouts)
  }

let normalize = canonical

let is_default t =
  let t = canonical t in
  t.rules = [] && t.layout = Auto && t.node_layouts = []

let rule_enabled t r =
  match List.assoc_opt r t.rules with Some on -> on | None -> true

let node_layout t id =
  match List.assoc_opt id t.node_layouts with
  | Some l -> l
  | None -> t.layout

let with_rule t r on =
  { t with rules = (r, on) :: List.remove_assoc r t.rules }

let with_node_layout t id l =
  { t with node_layouts = (id, l) :: List.remove_assoc id t.node_layouts }

let layout_to_string = function
  | Auto -> "auto"
  | Pull -> "pull"
  | Push -> "push"

let layout_of_string = function
  | "auto" -> Ok Auto
  | "pull" -> Ok Pull
  | "push" | "csr" -> Ok Push
  | s -> Error (Printf.sprintf "unknown layout %S" s)

let to_string t =
  let t = canonical t in
  let parts =
    List.map (fun (r, _) -> r ^ "=off") t.rules
    @ (if t.layout = Auto then []
       else [ "layout=" ^ layout_to_string t.layout ])
    @ List.map
        (fun (id, l) ->
          Printf.sprintf "node%d.layout=%s" id (layout_to_string l))
        t.node_layouts
  in
  if parts = [] then "default" else String.concat "," parts

let equal a b =
  let a = canonical a and b = canonical b in
  a.rules = b.rules && a.layout = b.layout && a.node_layouts = b.node_layouts

let parse s =
  let s = String.trim s in
  if s = "" || s = "default" then Ok default
  else
    let entries =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun e -> e <> "")
    in
    let bool_of = function
      | "on" -> Ok true
      | "off" -> Ok false
      | v -> Error (Printf.sprintf "expected on/off, got %S" v)
    in
    let node_prefix k =
      (* "node<i>.layout" *)
      if String.length k > 11 && String.sub k 0 4 = "node"
         && String.sub k (String.length k - 7) 7 = ".layout"
      then int_of_string_opt (String.sub k 4 (String.length k - 11))
      else None
    in
    let rec go acc = function
      | [] -> Ok (normalize acc)
      | entry :: rest -> (
        match String.index_opt entry '=' with
        | None ->
          Error (Printf.sprintf "malformed entry %S (expected key=value)" entry)
        | Some i -> (
          let k = String.sub entry 0 i in
          let v = String.sub entry (i + 1) (String.length entry - i - 1) in
          match k with
          | "fuse" -> (
            match bool_of v with
            | Ok on ->
              go
                (List.fold_left (fun t r -> with_rule t r on) acc fusion_rules)
                rest
            | Error e -> Error e)
          | "layout" -> (
            match layout_of_string v with
            | Ok l -> go { acc with layout = l } rest
            | Error e -> Error e)
          | _ when List.mem k rule_names -> (
            match bool_of v with
            | Ok on -> go (with_rule acc k on) rest
            | Error e -> Error e)
          | _ -> (
            match node_prefix k with
            | Some id -> (
              match layout_of_string v with
              | Ok l -> go (with_node_layout acc id l) rest
              | Error e -> Error e)
            | None -> Error (Printf.sprintf "unknown schedule key %S" k))))
    in
    go default entries

let of_env () =
  match Sys.getenv_opt "OGB_SCHEDULE" with
  | None | Some "" -> None
  | Some spec -> (
    match parse spec with
    | Ok t -> Some t
    | Error e ->
      Printf.eprintf "OGB_SCHEDULE ignored: %s\n%!" e;
      None)
