type node_desc = {
  family : string;
  items : int;
  csc_items : int;
  fresh_compile : bool;
}

(* Built-in ns/item fallbacks.  Absolute values only matter relative to
   each other (the planner compares candidate sums): mxv_pull/mxv_push
   are pinned at ratio 1/4 so the uncalibrated crossover fill matches
   the PR 2 runtime heuristic (pull when 4·nvals ≥ size), and
   csc.build is priced high enough that a one-shot pull never looks
   free when the CSC side must be built first. *)
let defaults =
  [ ("mxv_push", 12.0);
    ("mxv_pull", 3.0);
    ("mxv", 6.0);
    ("vxm", 6.0);
    ("mxm", 8.0);
    ("ewise_v", 4.0);
    ("ewise_m", 4.0);
    ("apply_v", 3.0);
    ("apply_m", 3.0);
    ("apply_chain", 3.5);
    ("ewise_apply", 4.5);
    ("mult_reduce", 5.0);
    ("reduce", 2.5);
    ("extract", 2.0);
    ("select", 3.0);
    ("transpose", 6.0);
    ("leaf", 0.0);
    ("csc.build", 10.0);
    ("pool.chunk", 5.0);
    ("compile", 15e6) ]

let families = List.map fst defaults

let default_ns_per_item family =
  match List.assoc_opt family defaults with
  | Some ns -> ns
  | None -> 5.0 (* unknown family: a middling guess *)

let ns_per_item family =
  match Calibration.ns_per_item family with
  | Some ns when ns > 0.0 -> ns
  | _ -> default_ns_per_item family

let node_ns d =
  let items = float_of_int (max 0 d.items) in
  let base = items *. ns_per_item d.family in
  let csc =
    if d.csc_items > 0 then
      float_of_int d.csc_items *. ns_per_item "csc.build"
    else 0.0
  in
  let compile = if d.fresh_compile then ns_per_item "compile" else 0.0 in
  base +. csc +. compile
