(* Versioned on-disk calibration for the cost model.

   File format (text, one record per line, checksummed):

     ogb-calibration 1
     generation <n>
     coef <family> <ns-per-item> <samples>
     ...
     sum <md5 of every preceding line>

   The write is atomic (temp file + rename, like the JIT disk cache)
   and the read path treats *any* irregularity — wrong magic, torn
   line, checksum mismatch, or the cost.calib.corrupt injection point —
   as corruption: the file is renamed to .bad, a loud warning goes to
   stderr, and the process continues on uncalibrated defaults.  A bad
   calibration must never silently steer the planner. *)

let file_version = 1
let chunk_target_ns = 200_000.0 (* ~200µs per pool chunk *)

type coef = { mutable ns : float; mutable samples : int }

type state = {
  coefs : (string, coef) Hashtbl.t;
  mutable gen : int;
}

let lock = Mutex.create ()
let state : state option ref = ref None (* None = not loaded yet *)
let quarantined = ref 0

let path () = Filename.concat (Jit.Disk_cache.dir ()) "calibration.v1"

(* -- parsing / serialization -- *)

let serialize st =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "ogb-calibration %d\n" file_version);
  Buffer.add_string b (Printf.sprintf "generation %d\n" st.gen);
  Hashtbl.fold (fun fam c acc -> (fam, c) :: acc) st.coefs []
  |> List.sort compare
  |> List.iter (fun (fam, c) ->
         Buffer.add_string b
           (Printf.sprintf "coef %s %.6f %d\n" fam c.ns c.samples));
  let body = Buffer.contents b in
  body ^ Printf.sprintf "sum %s\n" (Digest.to_hex (Digest.string body))

let parse contents =
  let fail msg = Error msg in
  match String.index_opt contents '\n' with
  | None -> fail "empty file"
  | Some _ -> (
    (* split off the trailing "sum" line and verify it first *)
    let len = String.length contents in
    let sum_at =
      let rec find i =
        if i < 0 then None
        else if i + 4 <= len && String.sub contents i 4 = "sum "
                && (i = 0 || contents.[i - 1] = '\n')
        then Some i
        else find (i - 1)
      in
      find (len - 1)
    in
    match sum_at with
    | None -> fail "missing checksum line"
    | Some i ->
      let body = String.sub contents 0 i in
      let sum_line = String.trim (String.sub contents i (len - i)) in
      let expect = "sum " ^ Digest.to_hex (Digest.string body) in
      if not (String.equal sum_line expect) then fail "checksum mismatch"
      else
        let lines =
          String.split_on_char '\n' body
          |> List.map String.trim
          |> List.filter (fun l -> l <> "")
        in
        let st = { coefs = Hashtbl.create 32; gen = 0 } in
        let rec go = function
          | [] -> Ok st
          | line :: rest -> (
            match String.split_on_char ' ' line with
            | [ "ogb-calibration"; v ]
              when int_of_string_opt v = Some file_version -> go rest
            | [ "ogb-calibration"; v ] ->
              fail (Printf.sprintf "unsupported version %s" v)
            | [ "generation"; g ] -> (
              match int_of_string_opt g with
              | Some g when g >= 0 ->
                st.gen <- g;
                go rest
              | _ -> fail "bad generation")
            | [ "coef"; fam; ns; samples ] -> (
              match (float_of_string_opt ns, int_of_string_opt samples) with
              | Some ns, Some s when ns > 0.0 && s >= 0 ->
                Hashtbl.replace st.coefs fam { ns; samples = s };
                go rest
              | _ -> fail (Printf.sprintf "bad coef line %S" line))
            | _ -> fail (Printf.sprintf "unrecognized line %S" line))
        in
        go lines)

(* -- atomic write + corruption simulation (mirrors Disk_cache) -- *)

let write_atomic p contents =
  let tmp = p ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp p

(* The injection point rewrites the file through a rename — a new inode
   with garbage content, never a truncate of the live file — so a
   concurrent reader still sees either the old bytes or the garbage,
   exactly like cache.corrupt.* in Disk_cache. *)
let maybe_corrupt p =
  if Sys.file_exists p && Fault.fire "cost.calib.corrupt" then
    write_atomic p "\x00corrupt"

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let quarantine p reason =
  incr quarantined;
  let bad = p ^ ".bad" in
  (try Sys.rename p bad with Sys_error _ -> ());
  Printf.eprintf
    "ogb: calibration file %s is corrupt (%s); quarantined to %s, \
     falling back to uncalibrated defaults\n%!"
    p reason bad

(* -- lazy load -- *)

let load_locked () =
  match !state with
  | Some st -> st
  | None ->
    let p = path () in
    maybe_corrupt p;
    let st =
      if not (Sys.file_exists p) then { coefs = Hashtbl.create 32; gen = 0 }
      else
        match parse (read_file p) with
        | Ok st -> st
        | Error reason ->
          quarantine p reason;
          { coefs = Hashtbl.create 32; gen = 0 }
        | exception _ ->
          quarantine p "unreadable";
          { coefs = Hashtbl.create 32; gen = 0 }
    in
    state := Some st;
    st

let with_state f = Mutex.protect lock (fun () -> f (load_locked ()))

let generation () = with_state (fun st -> st.gen)
let calibrated () = with_state (fun st -> Hashtbl.length st.coefs > 0)

let ns_per_item family =
  with_state (fun st ->
      Option.map (fun c -> c.ns) (Hashtbl.find_opt st.coefs family))

let quarantines () = Mutex.protect lock (fun () -> !quarantined)

let summary () =
  with_state (fun st ->
      Hashtbl.fold (fun fam c acc -> (fam, c.ns, c.samples) :: acc) st.coefs []
      |> List.sort compare)

(* -- absorbing fresh measurements -- *)

let merge st family ~ns ~samples =
  if ns > 0.0 && samples > 0 then begin
    (match Hashtbl.find_opt st.coefs family with
    | Some c ->
      (* equal-weight blend of old and new: coefficients converge over
         repeated calibration runs without one noisy run dominating *)
      c.ns <- 0.5 *. (c.ns +. ns);
      c.samples <- c.samples + samples
    | None -> Hashtbl.replace st.coefs family { ns; samples });
    true
  end
  else false

let absorb () =
  with_state @@ fun st ->
  let updated = ref 0 in
  List.iter
    (fun (family, items, seconds, samples) ->
      if items > 0.0 then
        let ns = seconds *. 1e9 /. items in
        if merge st family ~ns ~samples then incr updated)
    (Jit.Jit_stats.kernel_times ());
  (* pool chunks: busy seconds over covered iterations *)
  let pc = Parallel.Pool.counters () in
  let items = Option.value ~default:0 (List.assoc_opt "items" pc) in
  let chunks = Option.value ~default:0 (List.assoc_opt "chunks" pc) in
  if items > 0 && chunks > 0 then begin
    let ns = Parallel.Pool.busy_seconds () *. 1e9 /. float_of_int items in
    if merge st "pool.chunk" ~ns ~samples:chunks then incr updated
  end;
  (* compile amortization: mean wall time of one fresh compile *)
  let js = Jit.Jit_stats.snapshot () in
  if js.Jit.Jit_stats.compiles > 0 then begin
    let ns =
      js.Jit.Jit_stats.compile_seconds *. 1e9
      /. float_of_int js.Jit.Jit_stats.compiles
    in
    if merge st "compile" ~ns ~samples:js.Jit.Jit_stats.compiles then
      incr updated
  end;
  !updated

let save () =
  ignore (absorb ());
  with_state @@ fun st ->
  st.gen <- st.gen + 1;
  let p = path () in
  match write_atomic p (serialize st) with
  | () -> Ok p
  | exception Sys_error e ->
    st.gen <- st.gen - 1;
    Error e

let reload () = Mutex.protect lock (fun () -> state := None)

(* -- pool grain hook: coarsen chunks toward chunk_target_ns -- *)

let () =
  Parallel.Pool.set_grain_hook (fun ~n ~base ->
      if n <= base then None
      else
        match ns_per_item "pool.chunk" with
        | None -> None
        | Some ns when ns <= 0.0 -> None
        | Some ns ->
          let target = chunk_target_ns /. ns in
          if target <= float_of_int base || target > 1e9 then None
          else Some (int_of_float target))
