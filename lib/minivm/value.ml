type t =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t array ref
  | Dict of (string, t) Hashtbl.t
  | Closure of closure
  | Builtin of string * (t list -> t)
  | Foreign of foreign

and closure = { name : string; params : string list; body : Obj.t; env : Obj.t }

and foreign = ..

exception Type_error of string

let foreign_printer : (foreign -> string option) ref = ref (fun _ -> None)

let truthy = function
  | Nil -> false
  | Bool b -> b
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Str s -> s <> ""
  | List l -> Array.length !l > 0
  | Dict d -> Hashtbl.length d > 0
  | Closure _ | Builtin _ | Foreign _ -> true

let type_name = function
  | Nil -> "nil"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | List _ -> "list"
  | Dict _ -> "dict"
  | Closure _ -> "function"
  | Builtin _ -> "builtin"
  | Foreign _ -> "foreign"

let rec to_string = function
  | Nil -> "nil"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.12g" f
  | Str s -> s
  | List l ->
    "[" ^ String.concat ", " (Array.to_list (Array.map to_string !l)) ^ "]"
  | Dict d ->
    "{"
    ^ String.concat ", "
        (Hashtbl.fold (fun k v acc -> (k ^ ": " ^ to_string v) :: acc) d [])
    ^ "}"
  | Closure { params; _ } ->
    Printf.sprintf "<function/%d>" (List.length params)
  | Builtin (name, _) -> Printf.sprintf "<builtin %s>" name
  | Foreign f -> (
    match !foreign_printer f with
    | Some s -> s
    | None -> "<foreign>")

let rec equal a b =
  match a, b with
  | Nil, Nil -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> x = y
  | List x, List y ->
    Array.length !x = Array.length !y
    && Array.for_all2 equal !x !y
  | Dict x, Dict y -> x == y
  | Closure x, Closure y -> x == y
  | Builtin (_, f), Builtin (_, g) -> f == g
  | Foreign x, Foreign y -> x == y
  | _, _ -> false
