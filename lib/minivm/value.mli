(** Boxed runtime values of the MiniVM — the dynamically typed host
    language standing in for Python in the tier-1 experiments.  Every
    value is heap-tagged and every operation dispatches on tags at
    runtime, reproducing the mechanism (not the constants) of CPython's
    per-operation overhead. *)

type t =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t array ref  (** mutable, growable via reassignment *)
  | Dict of (string, t) Hashtbl.t
  | Closure of closure
  | Builtin of string * (t list -> t)
  | Foreign of foreign
      (** host objects (DSL containers, expressions, operator specs) *)

and closure = { name : string; params : string list; body : Obj.t; env : Obj.t }
(** [name] is the [def] name (["<lambda>"] for anonymous functions) and
    locates unbound-variable diagnostics ({!Vm_error}); body/env are
    [Ast.block]/[Env.t]; [Obj.t] breaks the module cycle and is re-typed
    inside {!Interp}. *)

and foreign = ..
(** Extended by bridge modules (e.g. the DSL bridge adds containers). *)

exception Type_error of string

val truthy : t -> bool
val type_name : t -> string
val to_string : t -> string
val equal : t -> t -> bool

val foreign_printer : (foreign -> string option) ref
(** Bridges may install a printer for their foreign constructors. *)
