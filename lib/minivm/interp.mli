(** Tree-walking evaluator.  Bridges (like the DSL bridge) install hooks
    to give [Foreign] values behaviour under operators, attribute and
    method access, subscripts and [with]-contexts — the MiniVM analogue of
    Python magic methods ([__matmul__], [__setitem__], [__enter__], ...,
    paper §IV). *)

exception Runtime_error of string

type hooks = {
  foreign_binary : string -> Value.t -> Value.t -> Value.t option;
      (** called when either operand of a binary operator is [Foreign];
          [None] means unsupported (a runtime error) *)
  foreign_unary : string -> Value.t -> Value.t option;
  foreign_attr : Value.foreign -> string -> Value.t option;
  foreign_method : Value.foreign -> string -> Value.t list -> Value.t option;
  foreign_index_get : Value.foreign -> Value.t -> Value.t option;
  foreign_index_set : Value.foreign -> Value.t -> Value.t -> bool;
  context_enter : Value.t -> bool;  (** false = not a context manager *)
  context_exit : Value.t -> unit;
}

val no_hooks : hooks
val set_hooks : hooks -> unit
val hooks : unit -> hooks

val eval : Env.t -> Ast.expr -> Value.t
val exec_block : Env.t -> Ast.block -> unit
(** @raise Runtime_error on dynamic type errors.
    @raise Vm_error.Unbound_variable on unbound names (located with the
    enclosing function). *)

val run : ?env:Env.t -> Ast.block -> Env.t
(** Execute a program in a fresh (or given) global environment seeded
    with {!Builtins.install}; returns the environment for inspection. *)

val call_value : Value.t -> Value.t list -> Value.t
(** Apply a [Closure] or [Builtin] value. *)
