(** Lexically chained string-keyed environments (Python-style dict-based
    scoping: every variable access is a runtime hash lookup). *)

type t

val create : ?parent:t -> unit -> t
val define : t -> string -> Value.t -> unit
val assign : t -> string -> Value.t -> unit
(** Rebinds in the closest scope that defines the name; defines in the
    current scope if none does (Python's assignment-creates-local rule,
    simplified: MiniVM assignment rebinds outward — documented difference
    that algorithm encodings rely on for loop counters). *)

val lookup : t -> string -> Value.t
(** @raise Vm_error.Unbound_variable (located: carries the variable name
    and the enclosing function from {!Vm_error.current_function}). *)

val mem : t -> string -> bool
