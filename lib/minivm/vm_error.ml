(* Located MiniVM diagnostics.  The tree-walking interpreter and the
   static analyzer (lib/analysis) both funnel unbound-name failures
   through this module so they report the identical message: variable
   name plus the enclosing function (tracked dynamically by
   [Interp.call_value], lexically by the analyzer). *)

exception Unbound_variable of { name : string; enclosing : string option }

let message ~name ~enclosing =
  match enclosing with
  | Some fn -> Printf.sprintf "unbound variable %s in function %s" name fn
  | None -> Printf.sprintf "unbound variable %s at top level" name

let current_function : string option ref = ref None

let in_function name f =
  let saved = !current_function in
  current_function := Some name;
  Fun.protect ~finally:(fun () -> current_function := saved) f

let unbound name =
  raise (Unbound_variable { name; enclosing = !current_function })

let to_string = function
  | Unbound_variable { name; enclosing } -> Some (message ~name ~enclosing)
  | _ -> None
