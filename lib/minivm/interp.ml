open Value

exception Runtime_error of string

exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

type hooks = {
  foreign_binary : string -> Value.t -> Value.t -> Value.t option;
  foreign_unary : string -> Value.t -> Value.t option;
  foreign_attr : Value.foreign -> string -> Value.t option;
  foreign_method : Value.foreign -> string -> Value.t list -> Value.t option;
  foreign_index_get : Value.foreign -> Value.t -> Value.t option;
  foreign_index_set : Value.foreign -> Value.t -> Value.t -> bool;
  context_enter : Value.t -> bool;
  context_exit : Value.t -> unit;
}

let no_hooks =
  { foreign_binary = (fun _ _ _ -> None);
    foreign_unary = (fun _ _ -> None);
    foreign_attr = (fun _ _ -> None);
    foreign_method = (fun _ _ _ -> None);
    foreign_index_get = (fun _ _ -> None);
    foreign_index_set = (fun _ _ _ -> false);
    context_enter = (fun _ -> false);
    context_exit = (fun _ -> ()) }

let the_hooks = ref no_hooks

let set_hooks h = the_hooks := h
let hooks () = !the_hooks

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> err "expected a number, got %s" (type_name v)

let numeric_binary op a b =
  match op, a, b with
  | "+", Int x, Int y -> Int (x + y)
  | "-", Int x, Int y -> Int (x - y)
  | "*", Int x, Int y -> Int (x * y)
  | "%", Int x, Int y ->
    if y = 0 then err "modulo by zero" else Int (((x mod y) + y) mod y)
  | "//", Int x, Int y ->
    if y = 0 then err "integer division by zero"
    else Int (int_of_float (floor (float_of_int x /. float_of_int y)))
  | "/", (Int _ | Float _), (Int _ | Float _) ->
    Float (as_float a /. as_float b)
  | ("+" | "-" | "*"), (Int _ | Float _), (Int _ | Float _) ->
    let x = as_float a and y = as_float b in
    Float
      (match op with
      | "+" -> x +. y
      | "-" -> x -. y
      | _ -> x *. y)
  | "+", Str x, Str y -> Str (x ^ y)
  | "+", List x, List y -> List (ref (Array.append !x !y))
  | _, _, _ ->
    err "unsupported operand types for %s: %s and %s" op (type_name a)
      (type_name b)

let compare_values op a b =
  let c =
    match a, b with
    | Int x, Int y -> compare x y
    | (Int _ | Float _), (Int _ | Float _) -> compare (as_float a) (as_float b)
    | Str x, Str y -> compare x y
    | Bool x, Bool y -> compare x y
    | _, _ ->
      err "cannot order %s and %s" (type_name a) (type_name b)
  in
  Bool
    (match op with
    | "<" -> c < 0
    | "<=" -> c <= 0
    | ">" -> c > 0
    | ">=" -> c >= 0
    | _ -> err "unknown comparison %s" op)

let rec eval env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Const v -> v
  | Ast.Var name -> Env.lookup env name
  | Ast.Unary (op, e1) -> (
    let v = eval env e1 in
    match op, v with
    | "-", Int i -> Int (-i)
    | "-", Float f -> Float (-.f)
    | "not", v -> Bool (not (truthy v))
    | _, Foreign _ -> (
      match (hooks ()).foreign_unary op v with
      | Some r -> r
      | None -> err "unsupported unary %s on foreign value" op)
    | _, _ -> err "unsupported unary %s on %s" op (type_name v))
  | Ast.Binary ("and", e1, e2) ->
    let v = eval env e1 in
    if truthy v then eval env e2 else v
  | Ast.Binary ("or", e1, e2) ->
    let v = eval env e1 in
    if truthy v then v else eval env e2
  | Ast.Binary (op, e1, e2) -> (
    let a = eval env e1 in
    let b = eval env e2 in
    match a, b with
    | Foreign _, _ | _, Foreign _ -> (
      match (hooks ()).foreign_binary op a b with
      | Some r -> r
      | None -> err "unsupported binary %s on foreign values" op)
    | _, _ -> (
      match op with
      | "==" -> Bool (Value.equal a b)
      | "!=" -> Bool (not (Value.equal a b))
      | "<" | "<=" | ">" | ">=" -> compare_values op a b
      | _ -> numeric_binary op a b))
  | Ast.Call (f, args) ->
    let fv = eval env f in
    let argv = List.map (eval env) args in
    call_value fv argv
  | Ast.Method (obj, name, args) -> (
    let ov = eval env obj in
    let argv = List.map (eval env) args in
    match ov with
    | List l -> (
      match name, argv with
      | "append", [ v ] ->
        l := Array.append !l [| v |];
        Nil
      | "pop", [] when Array.length !l > 0 ->
        let v = !l.(Array.length !l - 1) in
        l := Array.sub !l 0 (Array.length !l - 1);
        v
      | _, _ -> err "unknown list method %s/%d" name (List.length argv))
    | Dict d -> (
      match name, argv with
      | "get", [ Str k ] -> (
        match Hashtbl.find_opt d k with Some v -> v | None -> Nil)
      | "set", [ Str k; v ] ->
        Hashtbl.replace d k v;
        Nil
      | _, _ -> err "unknown dict method %s" name)
    | Foreign f -> (
      match (hooks ()).foreign_method f name argv with
      | Some r -> r
      | None -> err "unknown foreign method %s" name)
    | v -> err "%s has no methods" (type_name v))
  | Ast.Attr (obj, name) -> (
    match eval env obj with
    | Foreign f -> (
      match (hooks ()).foreign_attr f name with
      | Some r -> r
      | None -> err "unknown foreign attribute %s" name)
    | List l when name = "length" -> Int (Array.length !l)
    | v -> err "%s has no attribute %s" (type_name v) name)
  | Ast.Index (obj, k) -> (
    let ov = eval env obj in
    let kv = eval env k in
    match ov, kv with
    | List l, Int i ->
      if i < 0 || i >= Array.length !l then err "list index %d out of range" i
      else !l.(i)
    | Dict d, Str s -> (
      match Hashtbl.find_opt d s with
      | Some v -> v
      | None -> err "missing key %s" s)
    | Foreign f, _ -> (
      match (hooks ()).foreign_index_get f kv with
      | Some r -> r
      | None -> err "unsupported foreign subscript")
    | v, _ -> err "%s is not subscriptable" (type_name v))
  | Ast.ListLit es -> List (ref (Array.of_list (List.map (eval env) es)))
  | Ast.Lambda (params, body) ->
    Closure { name = "<lambda>"; params; body = Obj.repr body;
              env = Obj.repr env }

and call_value fv argv =
  match fv with
  | Builtin (_, f) -> f argv
  | Closure { name; params; body; env } ->
    if List.length params <> List.length argv then
      err "arity mismatch: expected %d arguments, got %d" (List.length params)
        (List.length argv);
    let call_env = Env.create ~parent:(Obj.obj env : Env.t) () in
    List.iter2 (Env.define call_env) params argv;
    Vm_error.in_function name (fun () ->
        try
          exec_block call_env (Obj.obj body : Ast.block);
          Nil
        with Return_exc v -> v)
  | v -> err "%s is not callable" (type_name v)

and exec env (s : Ast.stmt) : unit =
  match s with
  | Ast.ExprStmt e -> ignore (eval env e)
  | Ast.Assign (name, e) -> Env.assign env name (eval env e)
  | Ast.SetIndex (obj, k, v) -> (
    let ov = eval env obj in
    let kv = eval env k in
    let vv = eval env v in
    match ov, kv with
    | List l, Int i ->
      if i < 0 || i >= Array.length !l then err "list index %d out of range" i
      else !l.(i) <- vv
    | Dict d, Str s -> Hashtbl.replace d s vv
    | Foreign f, _ ->
      if not ((hooks ()).foreign_index_set f kv vv) then
        err "unsupported foreign subscript assignment"
    | v, _ -> err "%s does not support subscript assignment" (type_name v))
  | Ast.SetAttr (_, name, _) -> err "attributes are read-only (%s)" name
  | Ast.If (cond, then_, else_) ->
    if truthy (eval env cond) then exec_block env then_
    else exec_block env else_
  | Ast.While (cond, body) -> (
    try
      while truthy (eval env cond) do
        try exec_block env body with Continue_exc -> ()
      done
    with Break_exc -> ())
  | Ast.For (name, iter, body) -> (
    let items =
      match eval env iter with
      | List l -> !l
      | Int n -> Array.init (max n 0) (fun i -> Int i)
      | v -> err "cannot iterate over %s" (type_name v)
    in
    try
      Array.iter
        (fun item ->
          Env.define env name item;
          try exec_block env body with Continue_exc -> ())
        items
    with Break_exc -> ())
  | Ast.With (ctxs, body) ->
    let entered = ref [] in
    let enter e =
      let v = eval env e in
      if not ((hooks ()).context_enter v) then
        err "%s is not a context manager" (type_name v);
      entered := v :: !entered
    in
    Fun.protect
      ~finally:(fun () -> List.iter (hooks ()).context_exit !entered)
      (fun () ->
        List.iter enter ctxs;
        exec_block env body)
  | Ast.Def (name, params, body) ->
    Env.define env name
      (Closure { name; params; body = Obj.repr body; env = Obj.repr env })
  | Ast.Return e -> raise (Return_exc (eval env e))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Pass -> ()

and exec_block env block = List.iter (exec env) block

let run ?env block =
  let env =
    match env with
    | Some e -> e
    | None ->
      let e = Env.create () in
      Builtins.install e;
      e
  in
  exec_block env block;
  env
