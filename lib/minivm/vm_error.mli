(** Located MiniVM diagnostics, shared by the interpreter and the static
    analyzer so both report the same message for the same defect. *)

exception Unbound_variable of { name : string; enclosing : string option }
(** An undefined variable, with the function whose body referenced it
    ([None] at top level). *)

val message : name:string -> enclosing:string option -> string
(** The one rendering of an unbound-variable diagnostic. *)

val current_function : string option ref
(** Dynamically scoped name of the function currently executing;
    maintained by {!Interp.call_value} via {!in_function}. *)

val in_function : string -> (unit -> 'a) -> 'a
(** [in_function name f] runs [f] with {!current_function} set to
    [name], restoring the previous value on exit (including raise). *)

val unbound : string -> 'a
(** @raise Unbound_variable carrying {!current_function}. *)

val to_string : exn -> string option
(** [Some msg] for {!Unbound_variable}, [None] otherwise. *)
