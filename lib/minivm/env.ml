type t = { table : (string, Value.t) Hashtbl.t; parent : t option }

let create ?parent () = { table = Hashtbl.create 16; parent }

let define env name v = Hashtbl.replace env.table name v

let rec assign env name v =
  if Hashtbl.mem env.table name then Hashtbl.replace env.table name v
  else
    match env.parent with
    | Some p when mem p name -> assign p name v
    | Some _ | None -> Hashtbl.replace env.table name v

and mem env name =
  Hashtbl.mem env.table name
  || match env.parent with Some p -> mem p name | None -> false

let rec lookup env name =
  match Hashtbl.find_opt env.table name with
  | Some v -> v
  | None -> (
    match env.parent with
    | Some p -> lookup p name
    | None -> Vm_error.unbound name)
