open Gbtl

let f64 = Dtype.FP64

(* Per-tile damped normalization: a scaled copy of the tile (the stored
   tile stays raw), sharing nothing mutable with the cache.  The arrays
   are cut to exact length so the adopted CSR is well-formed. *)
let scaled_tile (type a) (dt : a Dtype.t) ~r0 ~(scale : int -> a -> a) tile =
  let nr = Smatrix.nrows tile and nv = Smatrix.nvals tile in
  let rp = Array.sub (Smatrix.unsafe_rowptr tile) 0 (nr + 1) in
  let ci = Array.sub (Smatrix.unsafe_colidx tile) 0 nv in
  let vs = Array.sub (Smatrix.unsafe_values tile) 0 nv in
  for r = 0 to nr - 1 do
    for p = rp.(r) to rp.(r + 1) - 1 do
      vs.(p) <- scale (r0 + r) vs.(p)
    done
  done;
  Smatrix.of_csr_unsafe dt ~nrows:nr ~ncols:(Smatrix.ncols tile) ~rowptr:rp
    ~colidx:ci ~values:vs

let vxm_tiled (type a) ?scale (dt : a Dtype.t) (sr : Jit.Op_spec.semiring)
    ((uvls, uocc) : a array * bool array) (t : a Tmatrix.t) :
    a array * bool array =
  let n = Tmatrix.ncols t in
  let zero = Semiring.zero (Jit.Op_spec.instantiate_semiring dt sr) in
  let acc = Array.make (max n 1) zero in
  let occ = Array.make (max n 1) false in
  let trows, tcols = Tmatrix.tile_shape t in
  let brows, bcols = Tmatrix.grid t in
  let tag = Tmatrix.format_tag t in
  (* Block-row-major: for every output column, tile contributions arrive
     in ascending global row order — the exact fold order of the
     in-memory pull kernel, which is what makes streaming bit-exact. *)
  for bi = 0 to brows - 1 do
    let r0 = bi * trows in
    for bj = 0 to bcols - 1 do
      if Tmatrix.tile_nvals t bi bj > 0 then
        Tmatrix.with_tile t bi bj (fun tile ->
            let tile =
              match scale with
              | Some f -> scaled_tile dt ~r0 ~scale:f tile
              | None -> tile
            in
            Jit.Kernels.vxm_tile_acc dt sr ~tile_tag:tag ~r0 ~c0:(bj * tcols)
              tile (uvls, uocc) (acc, occ))
    done
  done;
  (acc, occ)

let row_sums (t : float Tmatrix.t) =
  let sums = Array.make (Tmatrix.nrows t) 0.0 in
  let trows, _ = Tmatrix.tile_shape t in
  let brows, bcols = Tmatrix.grid t in
  for bi = 0 to brows - 1 do
    let r0 = bi * trows in
    (* bj ascending: each row's entries fold left in ascending column
       order, matching Utilities.normalize_rows on the assembled
       matrix *)
    for bj = 0 to bcols - 1 do
      if Tmatrix.tile_nvals t bi bj > 0 then
        Tmatrix.with_tile t bi bj (fun tile ->
            let rp = Smatrix.unsafe_rowptr tile
            and vs = Smatrix.unsafe_values tile in
            for r = 0 to Smatrix.nrows tile - 1 do
              for p = rp.(r) to rp.(r + 1) - 1 do
                sums.(r0 + r) <- sums.(r0 + r) +. vs.(p)
              done
            done)
    done
  done;
  sums

(* One PageRank iteration over the dense state, mirroring
   Algorithms.Pagerank.native_dense statement for statement; the only
   difference is the streamed product (and the scale hook standing in
   for the pre-scaled matrix m — same per-entry floats, same order). *)
type pr_state = float array * bool array * float array * bool array

let pr_step g ~scale ~teleport ~threshold ~rows_f ((pv, po, nv, no) : pr_state)
    =
  let arith = Jit.Op_spec.arithmetic in
  let t_vals, t_occ = vxm_tiled ~scale f64 arith (pv, po) g in
  (* new_rank[None] += page_rank @ m, accumulating with Second *)
  let nv = Array.copy nv and no = Array.copy no in
  for j = 0 to Array.length nv - 1 do
    if t_occ.(j) then begin
      nv.(j) <- t_vals.(j);
      no.(j) <- true
    end
  done;
  let av, ao = Jit.Kernels.apply_v_dense f64 teleport (nv, no) in
  let d = Jit.Kernels.ewise_v_dense `Add f64 ~op:"Minus" (pv, po) (av, ao) in
  let d2 = Jit.Kernels.ewise_v_dense `Mult f64 ~op:"Times" d d in
  let squared_error =
    Jit.Kernels.reduce_v_scalar_dense f64 ~op:"Plus" ~identity:"Zero" d2
  in
  let st : pr_state = (Array.copy av, Array.copy ao, av, ao) in
  if squared_error /. rows_f < threshold then `Done st else `Continue st

let pagerank ?(damping = 0.85) ?(threshold = 1.e-5) ?(max_iters = 100000)
    ?prev ?ckpt ?(every = 4) (g : float Tmatrix.t) =
  let rows = Tmatrix.nrows g in
  let rows_f = float_of_int rows in
  let sums = row_sums g in
  let scale r v = (if sums.(r) <> 0.0 then v /. sums.(r) else v) *. damping in
  let teleport =
    Jit.Op_spec.Bound
      { op = "Plus"; side = `Second; const = (1.0 -. damping) /. rows_f }
  in
  let init () : pr_state =
    let pv =
      match prev with
      | Some p when Array.length p = rows -> Array.copy p
      | Some _ | None -> Array.make rows (1.0 /. rows_f)
    in
    (pv, Array.make rows true, Array.make rows 0.0, Array.make rows false)
  in
  let step = pr_step g ~scale ~teleport ~threshold ~rows_f in
  let (pv, po, _, _), iters =
    match ckpt with
    | Some name ->
      (* ties the checkpoint to this graph and parameterization, so a
         leftover blob under the same name (different graph, different
         damping) reads as "no checkpoint" rather than resuming a
         wrong-length state *)
      let fingerprint =
        Printf.sprintf "pr_state/v1 n=%d damping=%h threshold=%h" rows damping
          threshold
      in
      let o =
        Exec.Iterate.run ~name ~fingerprint
          ~codec:(Exec.Iterate.marshal_codec ())
          ~every ~init
          ~step:(fun ~iter:_ st -> step st)
          ~max_iters ()
      in
      (o.Exec.Iterate.state, o.Exec.Iterate.iters)
    | None ->
      let st = ref (init ()) in
      let iters = ref 0 in
      (try
         for i = 1 to max_iters do
           iters := i;
           match step !st with
           | `Done s ->
             st := s;
             raise Exit
           | `Continue s -> st := s
         done
       with Exit -> ());
      (!st, !iters)
  in
  let page_rank = Svector.of_dense_unsafe f64 ~vals:pv ~valid:po in
  (* page_rank<~page_rank> = page_rank + teleport: fill untouched
     entries, as in the in-memory pipelines *)
  let new_rank = Svector.create f64 rows in
  Assign.vector_scalar ~out:new_rank ((1.0 -. damping) /. rows_f)
    Index_set.All;
  let mask =
    Mask.Vmask { dense = Svector.to_bool_dense page_rank; complemented = true }
  in
  Output.write_vector ~mask ~accum:None ~replace:false ~out:page_rank
    ~t:(Jit.Kernels.ewise_v `Add f64 ~op:"Plus" page_rank new_rank);
  (page_rank, iters)
