open Gbtl

let update = Tmatrix.update_edges

let batch_counts batch =
  List.fold_left
    (fun (a, d) (_, _, v) ->
      match v with Some _ -> (a + 1, d) | None -> (a, d + 1))
    (0, 0) batch

(* Stream the rows of a frontier through the tile grid: group the rows
   by block row, then touch each tile of those block rows once and scan
   all grouped rows inside it — tile-friendly neighborhood expansion. *)
let expand (g : _ Tmatrix.t) rows f =
  let trows, tcols = Tmatrix.tile_shape g in
  let brows, bcols = Tmatrix.grid g in
  let by_block = Array.make brows [] in
  List.iter (fun r -> by_block.(r / trows) <- r :: by_block.(r / trows)) rows;
  for bi = 0 to brows - 1 do
    match by_block.(bi) with
    | [] -> ()
    | group ->
      let r0 = bi * trows in
      for bj = 0 to bcols - 1 do
        if Tmatrix.tile_nvals g bi bj > 0 then
          Tmatrix.with_tile g bi bj (fun tile ->
              List.iter
                (fun r ->
                  Smatrix.iter_row
                    (fun c v -> f r ((bj * tcols) + c) v)
                    tile (r - r0))
                group)
      done
  done

(* Monotone relaxation to the least fixed point: every improved vertex
   re-enters the frontier, so the result is order-independent — exactly
   the fixed point a from-scratch run reaches (the certifier's
   equivalence argument). *)
let relax g values ~improves seeds =
  let frontier = ref (List.sort_uniq compare seeds) in
  while !frontier <> [] do
    let next = ref [] in
    expand g !frontier (fun u c _ ->
        match improves values.(u) values.(c) with
        | Some better ->
          values.(c) <- better;
          next := c :: !next
        | None -> ());
    frontier := List.sort_uniq compare !next
  done

let dense_of_svector ~n ~fill v =
  let a = Array.make n fill in
  Svector.iter (fun i x -> a.(i) <- x) v;
  a

let bfs_full g ~src =
  let n = Tmatrix.nrows g in
  dense_of_svector ~n ~fill:0
    (Algorithms.Bfs.native (Tmatrix.to_smatrix g) ~src)

let cc_full g =
  let n = Tmatrix.nrows g in
  dense_of_svector ~n ~fill:0
    (Algorithms.Connected_components.native (Tmatrix.to_smatrix g))

let bfs_after ~src ~prev ~batch g =
  let additions, deletions = batch_counts batch in
  ignore (update g batch);
  let verdict = Analysis.Incr.certify Analysis.Incr.Bfs ~additions ~deletions in
  match verdict with
  | Analysis.Incr.Exact_incremental _ ->
    let level = Array.copy prev in
    (* a new edge (u, v) can only help v through u: level 0 means
       unreachable, anything reachable improves on it *)
    let seeds =
      List.filter_map
        (fun (u, v, _) ->
          if
            level.(u) > 0
            && (level.(v) = 0 || level.(v) > level.(u) + 1)
          then begin
            level.(v) <- level.(u) + 1;
            Some v
          end
          else None)
        batch
    in
    relax g level
      ~improves:(fun lu lc ->
        if lu > 0 && (lc = 0 || lc > lu + 1) then Some (lu + 1) else None)
      seeds;
    (level, verdict)
  | Analysis.Incr.Warm_restart _ | Analysis.Incr.Full_recompute _ ->
    (bfs_full g ~src, verdict)

let cc_after ~prev ~batch g =
  let additions, deletions = batch_counts batch in
  ignore (update g batch);
  let verdict = Analysis.Incr.certify Analysis.Incr.Cc ~additions ~deletions in
  match verdict with
  | Analysis.Incr.Exact_incremental _ ->
    let comp = Array.copy prev in
    (* Seed strictly along the edge direction: the full algorithm only
       propagates labels from u to v across an edge (u, v)
       (next[v] min= labels of in-neighbors), so an asymmetric edge must
       not pull v's label back into u — a symmetric batch carries the
       reverse edge explicitly and seeds it on its own. *)
    let seeds =
      List.filter_map
        (fun (u, v, _) ->
          if comp.(v) > comp.(u) then begin
            comp.(v) <- comp.(u);
            Some v
          end
          else None)
        batch
    in
    relax g comp
      ~improves:(fun cu cc -> if cc > cu then Some cu else None)
      seeds;
    (comp, verdict)
  | Analysis.Incr.Warm_restart _ | Analysis.Incr.Full_recompute _ ->
    (cc_full g, verdict)

let pagerank_after ?damping ?threshold ?max_iters ~prev ~batch g =
  let additions, deletions = batch_counts batch in
  ignore (update g batch);
  let verdict =
    Analysis.Incr.certify Analysis.Incr.Pagerank ~additions ~deletions
  in
  let prev =
    match verdict with
    | Analysis.Incr.Warm_restart _ | Analysis.Incr.Exact_incremental _ ->
      Some prev
    | Analysis.Incr.Full_recompute _ -> None
  in
  (Stream.pagerank ?damping ?threshold ?max_iters ?prev g, verdict)
