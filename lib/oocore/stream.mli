(** Streamed (out-of-core) execution over tiled matrices.

    The streaming product {!vxm_tiled} visits tiles in block-row-major
    order and folds each tile into the global accumulator with the
    continuation kernel {!Jit.Kernels.vxm_tile_acc}: for every output
    column, contributions arrive in ascending global row order — exactly
    the fold order of the in-memory {!Jit.Kernels.vxm_pull_dense} — so
    the streamed result is {e bit-identical} to the unconstrained
    in-memory run, for every operator including float [Plus], no matter
    how small the tile cache's memory budget is.

    {!pagerank} is the paper's PageRank pipeline
    ({!Algorithms.Pagerank.native_dense}) restaged over tiles: the
    damped row normalization is applied per streamed tile from an O(n)
    row-sum vector (the matrix itself stays raw and immutable on disk),
    and the iteration state can be checkpointed through
    {!Exec.Iterate} so a crashed run resumes from its last good
    iteration. *)

open Gbtl

val vxm_tiled :
  ?scale:(int -> 'a -> 'a) ->
  'a Dtype.t ->
  Jit.Op_spec.semiring ->
  'a array * bool array ->
  'a Tmatrix.t ->
  'a array * bool array
(** [vxm_tiled dt sr (uvls, uocc) t] — dense-operand [u ⊕.⊗ T] streamed
    over the tiles of [t]; bit-identical to
    [Jit.Kernels.vxm_pull_dense dt sr (uvls, uocc) (Tmatrix.to_smatrix t)].
    [scale] (given the {e global} row index and the stored value) is
    applied to each tile entry before the product — the hook the
    PageRank driver uses for damped row normalization without mutating
    the stored tiles. *)

val row_sums : float Tmatrix.t -> float array
(** Per-row entry sums, streamed one tile at a time in ascending column
    order — the same left fold as {!Gbtl.Utilities.normalize_rows} on
    the assembled matrix, hence bitwise-equal sums. *)

val pagerank :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  ?prev:float array ->
  ?ckpt:string ->
  ?every:int ->
  float Tmatrix.t ->
  float Svector.t * int
(** Streamed PageRank over a tiled graph; same defaults, same iteration
    and same results as {!Algorithms.Pagerank.native_dense} on the
    assembled matrix — bit-identical ranks under any memory budget.
    [prev] warm-starts the iteration from previous ranks (the certified
    delta plan for edge batches); [ckpt] names a checkpoint stream: the
    iteration state is persisted every [every] (default 4) iterations
    through {!Exec.Iterate}, and a relaunch with the same [ckpt]
    resumes after the last good checkpoint instead of iteration 0 (the
    checkpoint is cleared once the run converges). *)
