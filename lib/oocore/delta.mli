(** Incremental (delta) recompute after an edge batch.

    An edge batch lands through {!Gbtl.Tmatrix.update_edges}, which
    invalidates only the touched tiles; the algorithms here then reuse
    the previous result instead of recomputing from scratch — but only
    after {!Analysis.Incr.certify} proves the delta plan equivalent to
    the full recompute (monotone reseeding for BFS/CC additions,
    contraction warm-restart for PageRank).  A rejected plan (e.g.
    BFS/CC with deletions) falls back to the full recompute
    automatically, so every entry point is total: the verdict in the
    result says which path ran.

    BFS levels are 1-based with 0 = unreachable
    ({!Algorithms.Bfs.native} semantics); CC labels are minimum member
    vertex ids ({!Algorithms.Connected_components.native} semantics).
    Both reseed strictly along edge direction — exactly how the full
    algorithms propagate — so the bit-equality guarantee holds for
    general (asymmetric) adjacencies too; symmetric input gives the
    usual undirected reading. *)

open Gbtl

val update : 'a Tmatrix.t -> (int * int * 'a option) list -> int
(** Apply an edge batch ([Some v] upserts, [None] deletes); returns the
    number of tiles invalidated — {!Gbtl.Tmatrix.update_edges}. *)

val batch_counts : (int * int * 'a option) list -> int * int
(** (additions, deletions) of a batch, as fed to the certifier. *)

val dense_of_svector : n:int -> fill:'a -> 'a Svector.t -> 'a array
(** Densify a result vector into the [prev] arrays the deltas consume. *)

val bfs_full : bool Tmatrix.t -> src:int -> int array
(** Full (from-scratch) BFS levels of the tiled graph — the reference
    the incremental path is proven against. *)

val cc_full : bool Tmatrix.t -> int array
(** Full connected-components labels, same role. *)

val pagerank_after :
  ?damping:float ->
  ?threshold:float ->
  ?max_iters:int ->
  prev:float array ->
  batch:(int * int * float option) list ->
  float Tmatrix.t ->
  (float Svector.t * int) * Analysis.Incr.verdict
(** Apply [batch] to the graph, then recompute PageRank restarting from
    [prev] (certified warm restart: same unique fixed point as the full
    recompute, within the convergence threshold). *)

val bfs_after :
  src:int ->
  prev:int array ->
  batch:(int * int * bool option) list ->
  bool Tmatrix.t ->
  int array * Analysis.Incr.verdict
(** Apply [batch], then update the BFS level array.  Additions-only
    batches run the certified affected-frontier reseeding (bit-equal to
    a full BFS); a batch with deletions is rejected by the certifier
    and recomputed in full.  [prev] must be the exact levels of the
    graph before the batch, with [prev.(src) = 1]. *)

val cc_after :
  prev:int array ->
  batch:(int * int * bool option) list ->
  bool Tmatrix.t ->
  int array * Analysis.Incr.verdict
(** Same contract for connected components: an added edge [(u, v)]
    propagates [u]'s smaller label to [v] (edge direction only, like
    the native iteration); deletions force the full recompute. *)
