(* Unified gbtl error channel.  Every dimension conformance failure in the
   storage layer and the GraphBLAS operations raises the single
   [Dim_mismatch] exception with an "expected vs actual" message, so
   callers (and the static plan verifier, which mirrors these checks
   ahead of execution) match one constructor instead of a zoo of
   per-module strings. *)

exception Dim_mismatch of string

let dim_msg ~op ~expected ~actual =
  Printf.sprintf "%s: expected %s, actual %s" op expected actual

let raise_dims ~op ~expected ~actual =
  raise (Dim_mismatch (dim_msg ~op ~expected ~actual))

let shape_str nrows ncols = Printf.sprintf "%dx%d" nrows ncols
let size_str n = Printf.sprintf "size %d" n

let message = function Dim_mismatch m -> Some m | _ -> None
