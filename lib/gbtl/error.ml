(* Unified gbtl error channel.  Every dimension conformance failure in the
   storage layer and the GraphBLAS operations raises the single
   [Dim_mismatch] exception with an "expected vs actual" message, so
   callers (and the static plan verifier, which mirrors these checks
   ahead of execution) match one constructor instead of a zoo of
   per-module strings. *)

exception Dim_mismatch of string

let dim_msg ~op ~expected ~actual =
  Printf.sprintf "%s: expected %s, actual %s" op expected actual

let raise_dims ~op ~expected ~actual =
  raise (Dim_mismatch (dim_msg ~op ~expected ~actual))

let shape_str nrows ncols = Printf.sprintf "%dx%d" nrows ncols
let size_str n = Printf.sprintf "size %d" n

let message = function Dim_mismatch m -> Some m | _ -> None

(* Located error values for the [_result] I/O entry points: malformed
   external input is data, so it comes back as [Error] pointing at the
   offending file and line rather than an exception from inside a
   parser. *)

type t = { what : string; file : string option; line : int option }

let msg what = { what; file = None; line = None }
let in_file ~file what = { what; file = Some file; line = None }
let at_line ~file ~line what = { what; file = Some file; line = Some line }

let to_string e =
  match (e.file, e.line) with
  | Some f, Some l -> Printf.sprintf "%s:%d: %s" f l e.what
  | Some f, None -> Printf.sprintf "%s: %s" f e.what
  | None, _ -> e.what
