(** Unified gbtl error channel.

    All dimension conformance failures across svector/smatrix and the
    GraphBLAS operations raise [Dim_mismatch] with a uniform
    ["op: expected E, actual A"] message.  [Svector.Dimension_mismatch]
    and [Smatrix.Dimension_mismatch] are rebindings of this exception,
    kept for source compatibility: matching either catches the same
    failures. *)

exception Dim_mismatch of string

val dim_msg : op:string -> expected:string -> actual:string -> string
(** ["op: expected E, actual A"] — the one message format. *)

val raise_dims : op:string -> expected:string -> actual:string -> 'a
(** @raise Dim_mismatch with {!dim_msg}. *)

val shape_str : int -> int -> string
(** [shape_str r c] is ["RxC"]. *)

val size_str : int -> string
(** [size_str n] is ["size N"]. *)

val message : exn -> string option
(** [Some msg] for [Dim_mismatch msg], [None] otherwise. *)
