(** Unified gbtl error channel.

    Two shapes live here.  [Dim_mismatch] is the one exception every
    dimension conformance failure across svector/smatrix and the
    GraphBLAS operations raises, with a uniform
    ["op: expected E, actual A"] message; [Svector.Dimension_mismatch]
    and [Smatrix.Dimension_mismatch] are rebindings kept for source
    compatibility.

    {!t} is the located error value the [_result] I/O entry points
    return (Matrix Market ingest, tiled-file construction): malformed
    external input is data, not a programming error, so it surfaces as
    [Error] carrying the file and line that offended instead of an
    exception from deep inside a parser. *)

exception Dim_mismatch of string

val dim_msg : op:string -> expected:string -> actual:string -> string
(** ["op: expected E, actual A"] — the one message format. *)

val raise_dims : op:string -> expected:string -> actual:string -> 'a
(** @raise Dim_mismatch with {!dim_msg}. *)

val shape_str : int -> int -> string
(** [shape_str r c] is ["RxC"]. *)

val size_str : int -> string
(** [size_str n] is ["size N"]. *)

val message : exn -> string option
(** [Some msg] for [Dim_mismatch msg], [None] otherwise. *)

(** {2 Located errors} *)

type t = {
  what : string;  (** what went wrong, human-readable *)
  file : string option;  (** offending file, when known *)
  line : int option;  (** 1-based line within [file], when known *)
}

val msg : string -> t
val in_file : file:string -> string -> t
val at_line : file:string -> line:int -> string -> t

val to_string : t -> string
(** ["file:line: what"], degrading gracefully when location is
    partial. *)
