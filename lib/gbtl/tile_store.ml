type t = { path : string }

let root_dir () =
  match Sys.getenv_opt "OGB_TILE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
    (* prefer the per-user runtime dir (already 0700, owned by us) over
       the world-writable temp dir *)
    let base =
      match Sys.getenv_opt "XDG_RUNTIME_DIR" with
      | Some d when d <> "" -> d
      | _ -> Filename.get_temp_dir_name ()
    in
    Filename.concat base (Printf.sprintf "ogb-tiles-%d" (Unix.getuid ()))

(* mkdir -p with EEXIST treated as success (concurrent creators are
   fine), mirroring the JIT disk cache.  Tiles are private data, so
   everything is created 0700. *)
let rec mkdir_p d =
  if d = "" || d = Filename.dirname d then ()
  else
    match Unix.mkdir d 0o700 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      mkdir_p (Filename.dirname d);
      (try Unix.mkdir d 0o700
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

(* The default root lives under a shared, world-writable temp dir, so a
   pre-created directory there may belong to someone else — and the MD5
   sidecars prove integrity, not authenticity: blobs planted by another
   user would sail through verification into [Marshal.from_string].
   Refuse any default root that is not a real directory (no symlink)
   owned by the current uid, and pull its permissions back to 0700. *)
let check_owned_root root =
  match Unix.lstat root with
  | { Unix.st_kind = Unix.S_DIR; st_uid; st_perm; _ }
    when st_uid = Unix.getuid () ->
    if st_perm land 0o077 <> 0 then (
      try Unix.chmod root 0o700 with Unix.Unix_error _ -> ())
  | _ ->
    failwith
      (Printf.sprintf
         "tile store root %S exists but is not a directory owned by uid %d \
          — refusing to trust its contents (set OGB_TILE_DIR to a private \
          location)"
         root (Unix.getuid ()))
  | exception Unix.Unix_error _ ->
    failwith (Printf.sprintf "tile store root %S cannot be created" root)

(* Key hygiene: keys become file names, so anything outside the safe
   alphabet is mapped away — a key can never escape the store dir. *)
let sanitize key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> c
      | _ -> '_')
    key

let open_store ?dir name =
  let base, caller_chosen =
    match dir with
    | Some d -> (d, true)
    | None ->
      ( root_dir (),
        match Sys.getenv_opt "OGB_TILE_DIR" with
        | Some d -> d <> ""
        | None -> false )
  in
  mkdir_p base;
  (* an explicitly chosen directory is the caller's trust decision; the
     ambient default must prove it is ours before any blob is decoded *)
  if not caller_chosen then check_owned_root base;
  let path = Filename.concat base (sanitize name) in
  mkdir_p path;
  { path }

let dir t = t.path

let blob_path t key = Filename.concat t.path (sanitize key ^ ".blob")
let sum_path t key = Filename.concat t.path (sanitize key ^ ".sum")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file_atomic path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc contents);
     Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let put t ~key blob =
  if Fault.fire "tile.io.exn" then raise (Fault.Injected "tile.io.exn");
  if Fault.fire "tile.write.enospc" then begin
    Tile_stats.record_write_failure ();
    Error "ENOSPC (injected): tile store device full"
  end
  else
    try
      write_file_atomic (blob_path t key) blob;
      write_file_atomic (sum_path t key) (Digest.to_hex (Digest.string blob));
      Tile_stats.record_store ();
      Ok ()
    with Sys_error _ | Unix.Unix_error _ ->
      Tile_stats.record_write_failure ();
      (* a half-written pair must not verify later: drop the sidecar *)
      (try Sys.remove (sum_path t key) with Sys_error _ -> ());
      Error (Printf.sprintf "tile store write failed for %S" key)

let quarantine t key =
  Tile_stats.record_quarantine ();
  let blob = blob_path t key in
  (* rename to a new inode rather than truncating in place, like the JIT
     cache: nothing mmaps tiles today, but the discipline is uniform *)
  (try Unix.rename blob (blob ^ ".bad")
   with Unix.Unix_error _ | Sys_error _ -> (
     try Sys.remove blob with Sys_error _ -> ()));
  try Sys.remove (sum_path t key) with Sys_error _ -> ()

(* Deterministic corruption: garble the on-disk blob through a rename so
   the verify-quarantine-rebuild machinery runs against real corruption,
   not a simulated flag. *)
let maybe_corrupt t key =
  if Fault.fire "tile.read.corrupt" && Sys.file_exists (blob_path t key) then begin
    try write_file_atomic (blob_path t key) "\x00corrupt tile"
    with Sys_error _ | Unix.Unix_error _ -> ()
  end

let get t ~key =
  if Fault.fire "tile.io.exn" then raise (Fault.Injected "tile.io.exn");
  maybe_corrupt t key;
  let blob = blob_path t key in
  if not (Sys.file_exists blob) then `Missing
  else
    match read_file blob with
    | exception Sys_error _ -> `Missing
    | contents -> (
      let expected =
        match read_file (sum_path t key) with
        | s -> Some (String.trim s)
        | exception Sys_error _ -> None
      in
      match expected with
      | Some sum when sum = Digest.to_hex (Digest.string contents) ->
        Tile_stats.record_load ();
        `Ok contents
      | Some _ | None ->
        (* no sidecar is treated as corrupt: unverified bytes must never
           reach Marshal.from_string *)
        quarantine t key;
        `Corrupt)

let mem t ~key = Sys.file_exists (blob_path t key)

let delete t ~key =
  (try Sys.remove (blob_path t key) with Sys_error _ -> ());
  try Sys.remove (sum_path t key) with Sys_error _ -> ()

let list_dir path =
  match Sys.readdir path with
  | files -> Array.to_list files
  | exception Sys_error _ -> []

let keys t =
  List.sort compare
    (List.filter_map
       (fun f ->
         if Filename.check_suffix f ".blob" then
           Some (Filename.chop_suffix f ".blob")
         else None)
       (list_dir t.path))

let has_sub hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= hn && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let clear t =
  List.iter
    (fun f ->
      if
        Filename.check_suffix f ".blob" || Filename.check_suffix f ".sum"
        || Filename.check_suffix f ".bad" || has_sub f ".tmp."
      then try Sys.remove (Filename.concat t.path f) with Sys_error _ -> ())
    (list_dir t.path)

type footprint = { blobs : int; bytes : int; quarantined : int }

let scan_dir path =
  List.fold_left
    (fun acc f ->
      let full = Filename.concat path f in
      let size () = try (Unix.stat full).Unix.st_size with Unix.Unix_error _ -> 0 in
      if Filename.check_suffix f ".blob" then
        { acc with blobs = acc.blobs + 1; bytes = acc.bytes + size () }
      else if Filename.check_suffix f ".bad" then
        { acc with quarantined = acc.quarantined + 1; bytes = acc.bytes + size () }
      else if Filename.check_suffix f ".sum" then
        { acc with bytes = acc.bytes + size () }
      else acc)
    { blobs = 0; bytes = 0; quarantined = 0 }
    (list_dir path)

let scan t = scan_dir t.path

let scan_root () =
  let root = root_dir () in
  List.fold_left
    (fun acc sub ->
      let full = Filename.concat root sub in
      if try Sys.is_directory full with Sys_error _ -> false then begin
        let f = scan_dir full in
        { blobs = acc.blobs + f.blobs;
          bytes = acc.bytes + f.bytes;
          quarantined = acc.quarantined + f.quarantined }
      end
      else acc)
    { blobs = 0; bytes = 0; quarantined = 0 }
    (list_dir root)
