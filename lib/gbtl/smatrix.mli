(** Sparse GraphBLAS matrix.  CSR (compressed sparse row) is the
    canonical, always-present side; a CSC side — the same entries in
    column-major order, equivalently the CSR of the transpose — is built
    on demand by {!ensure_csc} and cached until the next mutation.
    Column-oriented consumers ({!extract_col}, transpose-mxv pull
    dispatch, unmasked transposed mxm) read the cached CSC arrays
    instead of rescanning the CSR side or materializing a transpose.

    Stored entries are explicit; row entries are kept in ascending column
    order.  Point mutation ([set]/[remove]) rebuilds the affected arrays
    and is O(nvals); bulk construction goes through {!of_coo}. *)

type 'a t

exception Dimension_mismatch of string
(** Rebinding of {!Error.Dim_mismatch}: every dimension conformance
    failure across gbtl raises this one exception. *)

exception Index_out_of_bounds of string

val create : 'a Dtype.t -> int -> int -> 'a t
(** [create dt nrows ncols] — empty matrix. *)

val dtype : 'a t -> 'a Dtype.t
val nrows : 'a t -> int
val ncols : 'a t -> int
val shape : 'a t -> int * int
val nvals : 'a t -> int

val csc_cached : 'a t -> bool
val rep_name : 'a t -> string
(** ["csr"] or ["csr+csc"] — the format component kernels put in their
    {!Jit.Kernel_sig} cache keys. *)

val ensure_csr : 'a t -> unit
(** CSR is always present; provided for API symmetry with
    {!ensure_csc}. *)

val ensure_csc : 'a t -> unit
(** Build and cache the CSC side if absent (O(nvals + ncols) counting
    sort).  Invalidated by any mutation. *)

val of_coo :
  ?dup:'a Binop.t -> 'a Dtype.t -> int -> int -> (int * int * 'a) list -> 'a t
(** Build from (row, col, value) triples; duplicates combined with [dup]
    (default last-wins). @raise Index_out_of_bounds *)

val of_dense : 'a Dtype.t -> 'a array array -> 'a t
(** Stores every element including zeros (PyGB's copy-from-nested-list). *)

val of_dense_drop_zeros : 'a Dtype.t -> 'a array array -> 'a t

val of_rows_unsafe : 'a Dtype.t -> nrows:int -> ncols:int -> 'a Entries.t array -> 'a t
(** Trusted builder from per-row sorted entries; [Entries.t array] must
    have length [nrows]. *)

val of_csr_unsafe :
  'a Dtype.t ->
  nrows:int ->
  ncols:int ->
  rowptr:int array ->
  colidx:int array ->
  values:'a array ->
  'a t
(** Adopts well-formed CSR arrays without copying (kernel results). *)

val get : 'a t -> int -> int -> 'a option
val get_exn : 'a t -> int -> int -> 'a
val mem : 'a t -> int -> int -> bool
val set : 'a t -> int -> int -> 'a -> unit
val remove : 'a t -> int -> int -> unit
val clear : 'a t -> unit
val dup : 'a t -> 'a t

val replace_contents : 'a t -> 'a t -> unit
(** [replace_contents dst src] copies [src]'s entries into [dst] in place
    (same shape required). @raise Dimension_mismatch *)

val row_nvals : 'a t -> int -> int
val iter_row : (int -> 'a -> unit) -> 'a t -> int -> unit
(** [iter_row f m r] applies [f col value] over row [r]. *)

val fold_row : ('acc -> int -> 'a -> 'acc) -> 'acc -> 'a t -> int -> 'acc
val row_entries : 'a t -> int -> 'a Entries.t
val extract_row : 'a t -> int -> 'a Svector.t

val extract_col : 'a t -> int -> 'a Svector.t
(** Served from the cached CSC side (builds it on first use). *)

val col_nvals : 'a t -> int -> int
val iter_col : (int -> 'a -> unit) -> 'a t -> int -> unit
(** [iter_col f m c] applies [f row value] over column [c] in ascending
    row order (via the cached CSC side). *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> int -> int -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_coo : 'a t -> (int * int * 'a) list
val to_dense : fill:'a -> 'a t -> 'a array array
val transpose : 'a t -> 'a t
(** Fresh matrix — copies of the cached CSC arrays (built on first
    use). *)

val unsafe_transpose_view : 'a t -> 'a t
(** Zero-copy transpose: a matrix whose CSR arrays {e are} the cached
    CSC arrays of the original (and vice versa).  Strictly read-only —
    mutating either matrix afterwards corrupts the other. *)

val cast : into:'b Dtype.t -> 'a t -> 'b t
val map : 'a t -> f:('a -> 'a) -> 'a t
val map_inplace : 'a t -> f:('a -> 'a) -> unit
val equal : 'a t -> 'a t -> bool
val pp : Format.formatter -> 'a t -> unit

(** {2 Direct CSR access for kernels}

    The returned arrays are the live internal buffers: only the first
    [nvals] cells of [colidx]/[values] are meaningful, and they must not
    be mutated by callers. *)

val unsafe_rowptr : 'a t -> int array
val unsafe_colidx : 'a t -> int array
val unsafe_values : 'a t -> 'a array

val unsafe_colptr : 'a t -> int array
val unsafe_rowidx : 'a t -> int array
val unsafe_cvals : 'a t -> 'a array
(** CSC-side counterparts; each builds and caches the CSC side if
    absent.  Same read-only contract. *)
